//! Fused Gram + projection products for communication-avoiding
//! orthogonalization.
//!
//! The classic block-Arnoldi step issues one reduction per product: `CᴴW`
//! (recycle projection), `VᴴW` (Hessenberg projection), `WᴴW` (CholQR Gram).
//! [`fused_gram`] computes the stacked product `[B₀ B₁ …]ᴴ·W` for a list of
//! column-major source panels in a single depth-blocked sweep: each `KB × p`
//! panel of `W` is loaded once and reused across *every* source column, so
//! all the partial products advance together in one pass over memory — and,
//! in a distributed run, the stacked result is **one** all-reduce where the
//! classic path pays one per panel (the §III-D latency the paper counts).
//!
//! [`fused_update`] is the matching projection update `W ⟵ W − Σ B_b·C_b`,
//! again one depth-blocked sweep of `W` for all panels.
//!
//! Panels are borrowed views ([`ColsRef`]), so the leading columns of a
//! pre-allocated basis enter the product without being copied out first.

use crate::DMat;
use kryst_scalar::Scalar;

/// A borrowed column-major panel (`nrows × ncols`) — e.g. the leading
/// columns of a wider basis matrix, viewed without copying.
#[derive(Clone, Copy)]
pub struct ColsRef<'a, S> {
    data: &'a [S],
    nrows: usize,
    ncols: usize,
}

impl<'a, S: Scalar> ColsRef<'a, S> {
    /// View over a raw column-major slice of shape `nrows × ncols`.
    pub fn new(data: &'a [S], nrows: usize, ncols: usize) -> Self {
        assert_eq!(data.len(), nrows * ncols);
        Self { data, nrows, ncols }
    }

    /// The leading `ncols` columns of `m`, borrowed (columns are contiguous
    /// in the column-major layout, so this is a plain sub-slice).
    pub fn leading(m: &'a DMat<S>, ncols: usize) -> Self {
        assert!(ncols <= m.ncols());
        Self::new(&m.as_slice()[..ncols * m.nrows()], m.nrows(), ncols)
    }

    /// View of the whole matrix.
    pub fn whole(m: &'a DMat<S>) -> Self {
        Self::new(m.as_slice(), m.nrows(), m.ncols())
    }

    /// Panel column count.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Panel row count.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    fn col(&self, j: usize) -> &'a [S] {
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }
}

/// Depth (row) blocking for the fused sweeps: a `KB × p` panel of `W` stays
/// resident in cache while every source column is streamed against it.
const KB: usize = 512;

/// Conjugated dot product over equal-length slices, split across four
/// accumulators to break the FMA dependence chain.
#[inline]
fn dot_conj<S: Scalar>(a: &[S], b: &[S]) -> S {
    let n = a.len();
    let n4 = n & !3;
    let mut acc = [S::zero(); 4];
    let mut i = 0;
    while i < n4 {
        acc[0] += a[i].conj() * b[i];
        acc[1] += a[i + 1].conj() * b[i + 1];
        acc[2] += a[i + 2].conj() * b[i + 2];
        acc[3] += a[i + 3].conj() * b[i + 3];
        i += 4;
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    while i < n {
        s += a[i].conj() * b[i];
        i += 1;
    }
    s
}

/// Stacked adjoint product `[B₀; B₁; …] = [B₀ B₁ …]ᴴ · W`, one depth-blocked
/// pass over `W`. The output is `(Σ ncols) × p` with panel `b`'s rows
/// starting at `Σ_{a<b} ncols_a`. All panels must share `W`'s row count.
pub fn fused_gram<S: Scalar>(blocks: &[ColsRef<'_, S>], w: &DMat<S>) -> DMat<S> {
    let n = w.nrows();
    let p = w.ncols();
    let total: usize = blocks.iter().map(|b| b.ncols).sum();
    let mut out = DMat::zeros(total, p);
    let od = out.as_mut_slice();
    let mut k0 = 0;
    while k0 < n {
        let k1 = (k0 + KB).min(n);
        let mut row0 = 0;
        for b in blocks {
            assert_eq!(b.nrows, n, "panel row count must match W");
            for i in 0..b.ncols {
                let bi = &b.col(i)[k0..k1];
                for l in 0..p {
                    od[l * total + row0 + i] += dot_conj(bi, &w.col(l)[k0..k1]);
                }
            }
            row0 += b.ncols;
        }
        k0 = k1;
    }
    out
}

/// Fused projection update `W ⟵ W − Σ_b B_b·C_b`, one depth-blocked sweep
/// of `W` for all panels. `coeffs[b]` must be `blocks[b].ncols × p`.
pub fn fused_update<S: Scalar>(blocks: &[ColsRef<'_, S>], coeffs: &[&DMat<S>], w: &mut DMat<S>) {
    assert_eq!(blocks.len(), coeffs.len());
    let n = w.nrows();
    let p = w.ncols();
    for (b, c) in blocks.iter().zip(coeffs) {
        assert_eq!(b.nrows, n, "panel row count must match W");
        assert_eq!(c.nrows(), b.ncols, "coefficient rows must match panel");
        assert_eq!(c.ncols(), p, "coefficient columns must match W");
    }
    let mut k0 = 0;
    while k0 < n {
        let k1 = (k0 + KB).min(n);
        for l in 0..p {
            let wl = &mut w.col_mut(l)[k0..k1];
            for (b, c) in blocks.iter().zip(coeffs) {
                for i in 0..b.ncols {
                    let cil = c[(i, l)];
                    if cil == S::zero() {
                        continue;
                    }
                    let bi = &b.col(i)[k0..k1];
                    for (wk, bk) in wl.iter_mut().zip(bi) {
                        *wk -= cil * *bk;
                    }
                }
            }
        }
        k0 = k1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{self, Op};
    use kryst_scalar::C64;

    #[test]
    fn fused_gram_matches_separate_products() {
        let n = 1100; // crosses the KB boundary
        let a = DMat::from_fn(n, 3, |i, j| ((i * 3 + j * 7) % 11) as f64 - 5.0);
        let v = DMat::from_fn(n, 5, |i, j| ((i + j * 13) % 17) as f64 - 8.0);
        let w = DMat::from_fn(n, 2, |i, j| ((i * 2 + j) % 9) as f64 - 4.0);
        let s = fused_gram(
            &[ColsRef::whole(&a), ColsRef::whole(&v), ColsRef::whole(&w)],
            &w,
        );
        assert_eq!(s.nrows(), 10);
        assert_eq!(s.ncols(), 2);
        let aw = blas::adjoint_times(&a, &w);
        let vw = blas::adjoint_times(&v, &w);
        let ww = blas::adjoint_times(&w, &w);
        for l in 0..2 {
            for i in 0..3 {
                assert!((s[(i, l)] - aw[(i, l)]).abs() < 1e-9 * aw[(i, l)].abs().max(1.0));
            }
            for i in 0..5 {
                assert!((s[(3 + i, l)] - vw[(i, l)]).abs() < 1e-9 * vw[(i, l)].abs().max(1.0));
            }
            for i in 0..2 {
                assert!((s[(8 + i, l)] - ww[(i, l)]).abs() < 1e-9 * ww[(i, l)].abs().max(1.0));
            }
        }
    }

    #[test]
    fn leading_view_borrows_prefix_columns() {
        let v = DMat::from_fn(40, 6, |i, j| (i * 6 + j) as f64);
        let w = DMat::from_fn(40, 2, |i, j| ((i + j) % 5) as f64 - 2.0);
        let s = fused_gram(&[ColsRef::leading(&v, 4)], &w);
        let vlead = v.cols(0, 4);
        let want = blas::adjoint_times(&vlead, &w);
        for i in 0..4 {
            for l in 0..2 {
                assert!((s[(i, l)] - want[(i, l)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn fused_update_matches_gemm() {
        let n = 700;
        let v = DMat::from_fn(n, 4, |i, j| ((i * 5 + j) % 13) as f64 - 6.0);
        let c = DMat::from_fn(4, 3, |i, j| (i as f64 - j as f64) * 0.5);
        let w0 = DMat::from_fn(n, 3, |i, j| ((i + 2 * j) % 7) as f64 - 3.0);
        let mut w = w0.clone();
        fused_update(&[ColsRef::whole(&v)], &[&c], &mut w);
        let mut want = w0.clone();
        blas::gemm(-1.0, &v, Op::None, &c, Op::None, 1.0, &mut want);
        for i in 0..n {
            for l in 0..3 {
                assert!((w[(i, l)] - want[(i, l)]).abs() < 1e-10, "({i},{l})");
            }
        }
    }

    #[test]
    fn complex_fused_gram_conjugates() {
        let n = 50;
        let a = DMat::<C64>::from_fn(n, 2, |i, j| {
            C64::from_parts((i % 5) as f64, (j + 1) as f64 * 0.5)
        });
        let w = DMat::<C64>::from_fn(n, 2, |i, j| {
            C64::from_parts(((i + j) % 3) as f64 - 1.0, (i % 4) as f64)
        });
        let s = fused_gram(&[ColsRef::whole(&a)], &w);
        let want = blas::adjoint_times(&a, &w);
        for i in 0..2 {
            for l in 0..2 {
                assert!((s[(i, l)] - want[(i, l)]).abs() < 1e-10);
            }
        }
    }
}
