//! BLAS-3-style general matrix–matrix multiply.
//!
//! `gemm` computes `C ⟵ α·op(A)·op(B) + β·C` where `op` is identity,
//! transpose, or conjugate transpose. For the block Krylov solvers the two
//! hot shapes are tall–skinny × small (basis updates) and
//! small-adjoint × tall–skinny (Gram / projection coefficients); both are
//! parallelized over the columns of `C` with rayon once the work is large
//! enough to amortize the fork–join.

#![allow(clippy::needless_range_loop)] // index loops mirror the BLAS/LAPACK reference forms

use crate::DMat;
use kryst_rt::par::for_each_chunk_mut;
use kryst_scalar::Scalar;

/// How an operand enters the product.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Use the matrix as stored.
    None,
    /// Use the transpose.
    Trans,
    /// Use the conjugate transpose (adjoint).
    ConjTrans,
}

impl Op {
    /// Rows of `op(A)` given the stored shape.
    fn rows(self, a: &DMat<impl Scalar>) -> usize {
        match self {
            Op::None => a.nrows(),
            _ => a.ncols(),
        }
    }
    /// Columns of `op(A)` given the stored shape.
    fn cols(self, a: &DMat<impl Scalar>) -> usize {
        match self {
            Op::None => a.ncols(),
            _ => a.nrows(),
        }
    }
}

/// Work threshold (in multiply–adds) below which gemm stays single-threaded.
const PAR_THRESHOLD: usize = 64 * 1024;

/// `C ⟵ α·op(A)·op(B) + β·C`.
///
/// Panics on dimension mismatch.
pub fn gemm<S: Scalar>(
    alpha: S,
    a: &DMat<S>,
    opa: Op,
    b: &DMat<S>,
    opb: Op,
    beta: S,
    c: &mut DMat<S>,
) {
    let m = opa.rows(a);
    let k = opa.cols(a);
    let k2 = opb.rows(b);
    let n = opb.cols(b);
    assert_eq!(k, k2, "gemm: inner dimensions {k} vs {k2}");
    assert_eq!(c.nrows(), m, "gemm: C row mismatch");
    assert_eq!(c.ncols(), n, "gemm: C col mismatch");

    let work = m * n * k;
    let ldc = c.nrows();
    let cdata = c.as_mut_slice();

    let col_kernel = |j: usize, ccol: &mut [S]| {
        // Scale the output column first.
        if beta == S::zero() {
            ccol.iter_mut().for_each(|x| *x = S::zero());
        } else if beta != S::one() {
            ccol.iter_mut().for_each(|x| *x *= beta);
        }
        match (opa, opb) {
            (Op::None, Op::None) => {
                // C[:,j] += alpha * A * B[:,j]  — stream columns of A (axpy form).
                let bcol = b.col(j);
                for l in 0..k {
                    let blj = alpha * bcol[l];
                    if blj == S::zero() {
                        continue;
                    }
                    let acol = a.col(l);
                    for i in 0..m {
                        ccol[i] += acol[i] * blj;
                    }
                }
            }
            (Op::ConjTrans, Op::None) => {
                // C[i,j] += alpha * conj(A[:,i]) · B[:,j]  — dot form.
                let bcol = b.col(j);
                for i in 0..m {
                    let acol = a.col(i);
                    let mut acc = S::zero();
                    for l in 0..k {
                        acc += acol[l].conj() * bcol[l];
                    }
                    ccol[i] += alpha * acc;
                }
            }
            (Op::Trans, Op::None) => {
                let bcol = b.col(j);
                for i in 0..m {
                    let acol = a.col(i);
                    let mut acc = S::zero();
                    for l in 0..k {
                        acc += acol[l] * bcol[l];
                    }
                    ccol[i] += alpha * acc;
                }
            }
            _ => {
                // General fallback for transposed B: elementwise definition.
                for i in 0..m {
                    let mut acc = S::zero();
                    for l in 0..k {
                        let aval = match opa {
                            Op::None => a[(i, l)],
                            Op::Trans => a[(l, i)],
                            Op::ConjTrans => a[(l, i)].conj(),
                        };
                        let bval = match opb {
                            Op::None => b[(l, j)],
                            Op::Trans => b[(j, l)],
                            Op::ConjTrans => b[(j, l)].conj(),
                        };
                        acc += aval * bval;
                    }
                    ccol[i] += alpha * acc;
                }
            }
        }
    };

    if work >= PAR_THRESHOLD && n > 1 {
        for_each_chunk_mut(cdata, ldc, 0, col_kernel);
    } else {
        for (j, ccol) in cdata.chunks_mut(ldc).enumerate() {
            col_kernel(j, ccol);
        }
    }
}

/// Convenience: allocate and return `op(A)·op(B)`.
pub fn matmul<S: Scalar>(a: &DMat<S>, opa: Op, b: &DMat<S>, opb: Op) -> DMat<S> {
    let mut c = DMat::zeros(opa.rows(a), opb.cols(b));
    gemm(S::one(), a, opa, b, opb, S::zero(), &mut c);
    c
}

/// Gram matrix `Aᴴ·B` — one fused "reduction" in the distributed setting.
pub fn adjoint_times<S: Scalar>(a: &DMat<S>, b: &DMat<S>) -> DMat<S> {
    matmul(a, Op::ConjTrans, b, Op::None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kryst_scalar::C64;

    fn naive<S: Scalar>(a: &DMat<S>, b: &DMat<S>) -> DMat<S> {
        DMat::from_fn(a.nrows(), b.ncols(), |i, j| {
            let mut acc = S::zero();
            for l in 0..a.ncols() {
                acc += a[(i, l)] * b[(l, j)];
            }
            acc
        })
    }

    #[test]
    fn gemm_matches_naive_real() {
        let a = DMat::<f64>::from_fn(7, 5, |i, j| (i as f64 - 2.0) * (j as f64 + 1.0) + 0.5);
        let b = DMat::<f64>::from_fn(5, 4, |i, j| (i + 2 * j) as f64 - 3.0);
        let c = matmul(&a, Op::None, &b, Op::None);
        let r = naive(&a, &b);
        for i in 0..7 {
            for j in 0..4 {
                assert!((c[(i, j)] - r[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gemm_adjoint_complex() {
        let a = DMat::<C64>::from_fn(6, 3, |i, j| C64::from_parts(i as f64, (j as f64) - 1.0));
        let b = DMat::<C64>::from_fn(6, 2, |i, j| C64::from_parts((i * j) as f64, 1.0));
        let c = adjoint_times(&a, &b);
        let ah = a.adjoint();
        let r = naive(&ah, &b);
        for i in 0..3 {
            for j in 0..2 {
                assert!((c[(i, j)] - r[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gemm_accumulates_with_beta() {
        let a = DMat::<f64>::eye(3);
        let b = DMat::<f64>::from_fn(3, 3, |i, j| (i + j) as f64);
        let mut c = DMat::<f64>::from_fn(3, 3, |i, j| if i == j { 10.0 } else { 0.0 });
        gemm(2.0, &a, Op::None, &b, Op::None, 0.5, &mut c);
        // c = 2*b + 0.5*diag(10)
        assert_eq!(c[(0, 0)], 5.0);
        assert_eq!(c[(1, 2)], 6.0);
        assert_eq!(c[(2, 2)], 13.0);
    }

    #[test]
    fn gemm_trans_b_fallback() {
        let a = DMat::<f64>::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let b = DMat::<f64>::from_fn(5, 4, |i, j| (i as f64) - (j as f64));
        let c = matmul(&a, Op::None, &b, Op::Trans);
        let bt = b.transpose();
        let r = naive(&a, &bt);
        for i in 0..3 {
            for j in 0..5 {
                assert!((c[(i, j)] - r[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn large_gemm_parallel_path_consistent() {
        let a = DMat::<f64>::from_fn(200, 60, |i, j| ((i * 31 + j * 7) % 13) as f64 - 6.0);
        let b = DMat::<f64>::from_fn(60, 50, |i, j| ((i * 17 + j * 3) % 11) as f64 - 5.0);
        let c = matmul(&a, Op::None, &b, Op::None);
        let r = naive(&a, &b);
        for i in (0..200).step_by(37) {
            for j in (0..50).step_by(7) {
                assert!((c[(i, j)] - r[(i, j)]).abs() < 1e-9);
            }
        }
    }
}
