//! BLAS-3-style general matrix–matrix multiply.
//!
//! `gemm` computes `C ⟵ α·op(A)·op(B) + β·C` where `op` is identity,
//! transpose, or conjugate transpose. For the block Krylov solvers the two
//! hot shapes are tall–skinny × small (basis updates) and
//! small-adjoint × tall–skinny (Gram / projection coefficients).
//!
//! Large products go through a cache-blocked, register-tiled path: `op(A)` /
//! `op(B)` panels are packed (the op — including conjugation — is applied
//! during the copy, so every op combination shares one microkernel), and a
//! fixed [`MR`]`×`[`NR`] microkernel with an unrolled k-loop accumulates in
//! registers over [`KC`]-deep k-panels. Work is partitioned into
//! [`MC`]`×`[`NC`] tiles of `C` and dispatched onto the persistent
//! `kryst-rt` worker pool; the tile grid is independent of the thread count,
//! so results are bit-identical for any `KRYST_THREADS`. Small products keep
//! the reference column-at-a-time forms below, byte-for-byte unchanged.

#![allow(clippy::needless_range_loop)] // index loops mirror the BLAS/LAPACK reference forms

use crate::DMat;
use kryst_rt::par::{for_each_chunk_mut, for_each_range, SendPtr};
use kryst_scalar::Scalar;

/// How an operand enters the product.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Use the matrix as stored.
    None,
    /// Use the transpose.
    Trans,
    /// Use the conjugate transpose (adjoint).
    ConjTrans,
}

impl Op {
    /// Rows of `op(A)` given the stored shape.
    fn rows(self, a: &DMat<impl Scalar>) -> usize {
        match self {
            Op::None => a.nrows(),
            _ => a.ncols(),
        }
    }
    /// Columns of `op(A)` given the stored shape.
    fn cols(self, a: &DMat<impl Scalar>) -> usize {
        match self {
            Op::None => a.ncols(),
            _ => a.nrows(),
        }
    }
    /// Element `(i, j)` of `op(A)`.
    #[inline(always)]
    fn at<S: Scalar>(self, a: &DMat<S>, i: usize, j: usize) -> S {
        match self {
            Op::None => a[(i, j)],
            Op::Trans => a[(j, i)],
            Op::ConjTrans => a[(j, i)].conj(),
        }
    }
}

/// Work threshold (in multiply–adds) below which gemm stays single-threaded.
const PAR_THRESHOLD: usize = 64 * 1024;

/// Microkernel tile rows (rows of `C` accumulated in registers).
pub const MR: usize = 4;
/// Microkernel tile columns.
pub const NR: usize = 4;
/// k-panel depth: packed panels stream `KC` multiply–adds per register tile.
pub const KC: usize = 256;
/// Row band per parallel task (multiple of [`MR`]).
pub const MC: usize = 128;
/// Column band per parallel task (multiple of [`NR`]).
pub const NC: usize = 64;

/// Work threshold above which the packed/blocked path is used (when the
/// output is at least a full microkernel tile in both dimensions).
const BLOCK_THRESHOLD: usize = 64 * 1024;

/// `C ⟵ α·op(A)·op(B) + β·C`.
///
/// Panics on dimension mismatch.
pub fn gemm<S: Scalar>(
    alpha: S,
    a: &DMat<S>,
    opa: Op,
    b: &DMat<S>,
    opb: Op,
    beta: S,
    c: &mut DMat<S>,
) {
    let m = opa.rows(a);
    let k = opa.cols(a);
    let k2 = opb.rows(b);
    let n = opb.cols(b);
    assert_eq!(k, k2, "gemm: inner dimensions {k} vs {k2}");
    assert_eq!(c.nrows(), m, "gemm: C row mismatch");
    assert_eq!(c.ncols(), n, "gemm: C col mismatch");

    let work = m * n * k;
    if work >= BLOCK_THRESHOLD && m >= MR && n >= NR {
        gemm_blocked(alpha, a, opa, b, opb, beta, c);
        return;
    }

    let ldc = c.nrows();
    let cdata = c.as_mut_slice();

    let col_kernel = |j: usize, ccol: &mut [S]| {
        // Scale the output column first.
        if beta == S::zero() {
            ccol.iter_mut().for_each(|x| *x = S::zero());
        } else if beta != S::one() {
            ccol.iter_mut().for_each(|x| *x *= beta);
        }
        match (opa, opb) {
            (Op::None, Op::None) => {
                // C[:,j] += alpha * A * B[:,j]  — stream columns of A (axpy form).
                let bcol = b.col(j);
                for l in 0..k {
                    let blj = alpha * bcol[l];
                    if blj == S::zero() {
                        continue;
                    }
                    let acol = a.col(l);
                    for i in 0..m {
                        ccol[i] += acol[i] * blj;
                    }
                }
            }
            (Op::ConjTrans, Op::None) => {
                // C[i,j] += alpha * conj(A[:,i]) · B[:,j]  — dot form.
                let bcol = b.col(j);
                for i in 0..m {
                    let acol = a.col(i);
                    let mut acc = S::zero();
                    for l in 0..k {
                        acc += acol[l].conj() * bcol[l];
                    }
                    ccol[i] += alpha * acc;
                }
            }
            (Op::Trans, Op::None) => {
                let bcol = b.col(j);
                for i in 0..m {
                    let acol = a.col(i);
                    let mut acc = S::zero();
                    for l in 0..k {
                        acc += acol[l] * bcol[l];
                    }
                    ccol[i] += alpha * acc;
                }
            }
            _ => {
                // General fallback for transposed B: elementwise definition.
                for i in 0..m {
                    let mut acc = S::zero();
                    for l in 0..k {
                        acc += opa.at(a, i, l) * opb.at(b, l, j);
                    }
                    ccol[i] += alpha * acc;
                }
            }
        }
    };

    if work >= PAR_THRESHOLD && n > 1 {
        for_each_chunk_mut(cdata, ldc, 0, col_kernel);
    } else if work >= PAR_THRESHOLD && (opa, opb) == (Op::None, Op::None) {
        // Tall gemv (n == 1): split the axpy form over row ranges. Each
        // output element keeps its serial accumulation order, so the result
        // is identical for any thread count.
        let bcol = b.col(0);
        let base = SendPtr::new(cdata.as_mut_ptr());
        for_each_range(m, 0, |r0, r1| {
            // SAFETY: row ranges are disjoint and `cdata` outlives the call.
            let ccol = unsafe { std::slice::from_raw_parts_mut(base.ptr().add(r0), r1 - r0) };
            if beta == S::zero() {
                ccol.iter_mut().for_each(|x| *x = S::zero());
            } else if beta != S::one() {
                ccol.iter_mut().for_each(|x| *x *= beta);
            }
            for l in 0..k {
                let blj = alpha * bcol[l];
                if blj == S::zero() {
                    continue;
                }
                let acol = &a.col(l)[r0..r1];
                for (ci, &av) in ccol.iter_mut().zip(acol) {
                    *ci += av * blj;
                }
            }
        });
    } else {
        for (j, ccol) in cdata.chunks_mut(ldc).enumerate() {
            col_kernel(j, ccol);
        }
    }
}

/// Packed, register-tiled gemm for large products.
///
/// Partitioning: `C` is cut into `MC × NC` bands; each band is one parallel
/// task. Within a task the k-dimension is walked in `KC`-deep panels;
/// `op(A)` / `op(B)` sub-panels are packed (zero-padded to `MR` / `NR`
/// multiples, op and conjugation applied during the copy) and consumed by
/// the `MR × NR` microkernel. The k-panel order is fixed, so floating-point
/// results do not depend on the thread count.
fn gemm_blocked<S: Scalar>(
    alpha: S,
    a: &DMat<S>,
    opa: Op,
    b: &DMat<S>,
    opb: Op,
    beta: S,
    c: &mut DMat<S>,
) {
    let m = opa.rows(a);
    let k = opa.cols(a);
    let n = opb.cols(b);
    let ldc = c.nrows();

    if beta == S::zero() {
        c.set_zero();
    } else if beta != S::one() {
        c.scale(beta);
    }

    let row_bands = m.div_ceil(MC);
    let col_bands = n.div_ceil(NC);
    let cptr = SendPtr::new(c.as_mut_slice().as_mut_ptr());

    for_each_range(row_bands * col_bands, 0, |t0, t1| {
        // Pack buffers are reused across every task and k-panel this part
        // owns (sized for the largest band).
        let mb_max = MC.min(m).div_ceil(MR) * MR;
        let nb_max = NC.min(n).div_ceil(NR) * NR;
        let kb_max = KC.min(k);
        let mut apack = vec![S::zero(); mb_max * kb_max];
        let mut bpack = vec![S::zero(); kb_max * nb_max];
        for t in t0..t1 {
            let (bi, bj) = (t / col_bands, t % col_bands);
            let (i0, i1) = (bi * MC, (bi * MC + MC).min(m));
            let (j0, j1) = (bj * NC, (bj * NC + NC).min(n));
            let mut k0 = 0;
            while k0 < k {
                let k1 = (k0 + KC).min(k);
                pack_a(a, opa, i0, i1, k0, k1, &mut apack);
                pack_b(b, opb, k0, k1, j0, j1, &mut bpack);
                let kb = k1 - k0;
                let mtiles = (i1 - i0).div_ceil(MR);
                let ntiles = (j1 - j0).div_ceil(NR);
                for jt in 0..ntiles {
                    let bp = &bpack[jt * kb * NR..(jt + 1) * kb * NR];
                    let nr_valid = NR.min(j1 - j0 - jt * NR);
                    for it in 0..mtiles {
                        let ap = &apack[it * kb * MR..(it + 1) * kb * MR];
                        let mr_valid = MR.min(i1 - i0 - it * MR);
                        microkernel(
                            kb,
                            alpha,
                            ap,
                            bp,
                            cptr,
                            ldc,
                            i0 + it * MR,
                            j0 + jt * NR,
                            mr_valid,
                            nr_valid,
                        );
                    }
                }
                k0 = k1;
            }
        }
    });
}

/// Pack `op(A)[i0..i1, k0..k1]` into `MR`-row panels: element `(r, l)` of
/// panel `it` lands at `it·(MR·kb) + l·MR + r`. Rows beyond `i1` are
/// zero-padded so the microkernel never branches on the row remainder.
fn pack_a<S: Scalar>(
    a: &DMat<S>,
    opa: Op,
    i0: usize,
    i1: usize,
    k0: usize,
    k1: usize,
    out: &mut [S],
) {
    let kb = k1 - k0;
    let mtiles = (i1 - i0).div_ceil(MR);
    for it in 0..mtiles {
        let panel = &mut out[it * kb * MR..(it + 1) * kb * MR];
        let ibase = i0 + it * MR;
        for l in 0..kb {
            for r in 0..MR {
                let i = ibase + r;
                panel[l * MR + r] = if i < i1 {
                    opa.at(a, i, k0 + l)
                } else {
                    S::zero()
                };
            }
        }
    }
}

/// Pack `op(B)[k0..k1, j0..j1]` into `NR`-column panels: element `(l, q)` of
/// panel `jt` lands at `jt·(kb·NR) + l·NR + q`, zero-padded past `j1`.
fn pack_b<S: Scalar>(
    b: &DMat<S>,
    opb: Op,
    k0: usize,
    k1: usize,
    j0: usize,
    j1: usize,
    out: &mut [S],
) {
    let kb = k1 - k0;
    let ntiles = (j1 - j0).div_ceil(NR);
    for jt in 0..ntiles {
        let panel = &mut out[jt * kb * NR..(jt + 1) * kb * NR];
        let jbase = j0 + jt * NR;
        for l in 0..kb {
            for q in 0..NR {
                let j = jbase + q;
                panel[l * NR + q] = if j < j1 {
                    opb.at(b, k0 + l, j)
                } else {
                    S::zero()
                };
            }
        }
    }
}

/// `MR × NR` register tile: `C[i.., j..] += α · Ap · Bp` over a `kb`-deep
/// packed panel pair. The k-loop is unrolled by four; the accumulators live
/// in a fixed-size array the compiler keeps in registers.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn microkernel<S: Scalar>(
    kb: usize,
    alpha: S,
    ap: &[S],
    bp: &[S],
    cptr: SendPtr<S>,
    ldc: usize,
    i: usize,
    j: usize,
    mr_valid: usize,
    nr_valid: usize,
) {
    let mut acc = [S::zero(); MR * NR];
    macro_rules! fma_step {
        ($l:expr) => {{
            let av = &ap[$l * MR..$l * MR + MR];
            let bv = &bp[$l * NR..$l * NR + NR];
            for q in 0..NR {
                let bq = bv[q];
                for r in 0..MR {
                    acc[q * MR + r] += av[r] * bq;
                }
            }
        }};
    }
    let kb4 = kb & !3;
    let mut l = 0;
    while l < kb4 {
        fma_step!(l);
        fma_step!(l + 1);
        fma_step!(l + 2);
        fma_step!(l + 3);
        l += 4;
    }
    while l < kb {
        fma_step!(l);
        l += 1;
    }
    for q in 0..nr_valid {
        for r in 0..mr_valid {
            // SAFETY: each parallel task owns a disjoint `C` band and
            // `(i + r, j + q)` stays inside this task's band.
            unsafe {
                *cptr.ptr().add((j + q) * ldc + i + r) += alpha * acc[q * MR + r];
            }
        }
    }
}

/// Convenience: allocate and return `op(A)·op(B)`.
pub fn matmul<S: Scalar>(a: &DMat<S>, opa: Op, b: &DMat<S>, opb: Op) -> DMat<S> {
    let mut c = DMat::zeros(opa.rows(a), opb.cols(b));
    gemm(S::one(), a, opa, b, opb, S::zero(), &mut c);
    c
}

/// Gram matrix `Aᴴ·B` — one fused "reduction" in the distributed setting.
pub fn adjoint_times<S: Scalar>(a: &DMat<S>, b: &DMat<S>) -> DMat<S> {
    matmul(a, Op::ConjTrans, b, Op::None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kryst_scalar::C64;

    fn naive<S: Scalar>(a: &DMat<S>, b: &DMat<S>) -> DMat<S> {
        DMat::from_fn(a.nrows(), b.ncols(), |i, j| {
            let mut acc = S::zero();
            for l in 0..a.ncols() {
                acc += a[(i, l)] * b[(l, j)];
            }
            acc
        })
    }

    #[test]
    fn gemm_matches_naive_real() {
        let a = DMat::<f64>::from_fn(7, 5, |i, j| (i as f64 - 2.0) * (j as f64 + 1.0) + 0.5);
        let b = DMat::<f64>::from_fn(5, 4, |i, j| (i + 2 * j) as f64 - 3.0);
        let c = matmul(&a, Op::None, &b, Op::None);
        let r = naive(&a, &b);
        for i in 0..7 {
            for j in 0..4 {
                assert!((c[(i, j)] - r[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gemm_adjoint_complex() {
        let a = DMat::<C64>::from_fn(6, 3, |i, j| C64::from_parts(i as f64, (j as f64) - 1.0));
        let b = DMat::<C64>::from_fn(6, 2, |i, j| C64::from_parts((i * j) as f64, 1.0));
        let c = adjoint_times(&a, &b);
        let ah = a.adjoint();
        let r = naive(&ah, &b);
        for i in 0..3 {
            for j in 0..2 {
                assert!((c[(i, j)] - r[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gemm_accumulates_with_beta() {
        let a = DMat::<f64>::eye(3);
        let b = DMat::<f64>::from_fn(3, 3, |i, j| (i + j) as f64);
        let mut c = DMat::<f64>::from_fn(3, 3, |i, j| if i == j { 10.0 } else { 0.0 });
        gemm(2.0, &a, Op::None, &b, Op::None, 0.5, &mut c);
        // c = 2*b + 0.5*diag(10)
        assert_eq!(c[(0, 0)], 5.0);
        assert_eq!(c[(1, 2)], 6.0);
        assert_eq!(c[(2, 2)], 13.0);
    }

    #[test]
    fn gemm_trans_b_fallback() {
        let a = DMat::<f64>::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let b = DMat::<f64>::from_fn(5, 4, |i, j| (i as f64) - (j as f64));
        let c = matmul(&a, Op::None, &b, Op::Trans);
        let bt = b.transpose();
        let r = naive(&a, &bt);
        for i in 0..3 {
            for j in 0..5 {
                assert!((c[(i, j)] - r[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn large_gemm_parallel_path_consistent() {
        let a = DMat::<f64>::from_fn(200, 60, |i, j| ((i * 31 + j * 7) % 13) as f64 - 6.0);
        let b = DMat::<f64>::from_fn(60, 50, |i, j| ((i * 17 + j * 3) % 11) as f64 - 5.0);
        let c = matmul(&a, Op::None, &b, Op::None);
        let r = naive(&a, &b);
        for i in (0..200).step_by(37) {
            for j in (0..50).step_by(7) {
                assert!((c[(i, j)] - r[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn blocked_path_matches_reference_across_ops() {
        // Big enough to cross BLOCK_THRESHOLD with awkward remainders.
        let m = 67;
        let k = 131;
        let n = 23;
        let mk = DMat::<f64>::from_fn(m, k, |i, j| ((i * 13 + j * 5) % 17) as f64 - 8.0);
        let km = mk.transpose();
        let kn = DMat::<f64>::from_fn(k, n, |i, j| ((i * 7 + j * 11) % 19) as f64 - 9.0);
        let nk = kn.transpose();
        for (a, opa) in [(&mk, Op::None), (&km, Op::Trans), (&km, Op::ConjTrans)] {
            for (b, opb) in [(&kn, Op::None), (&nk, Op::Trans), (&nk, Op::ConjTrans)] {
                let c = matmul(a, opa, b, opb);
                let r = naive(&mk, &kn);
                for i in (0..m).step_by(13) {
                    for j in 0..n {
                        assert!(
                            (c[(i, j)] - r[(i, j)]).abs() < 1e-9,
                            "({opa:?},{opb:?}) at ({i},{j})"
                        );
                    }
                }
            }
        }
    }
}
