#![warn(missing_docs)]
//! Dense linear-algebra kernels for the `kryst` workspace.
//!
//! Everything a block/recycling Krylov solver needs on the *small* side of the
//! problem — matrices of dimension `O(m·p)` where `m` is the restart length
//! and `p` the number of right-hand sides:
//!
//! * [`DMat`]: a column-major dense matrix / multivector,
//! * [`gemm`]: general matrix–matrix multiply with (conjugate-)transpose ops,
//! * [`qr`]: Householder QR and the [`qr::IncrementalQr`] used to factorize
//!   the block Hessenberg matrix one block column per iteration (the paper's
//!   eq. (2) relies on this),
//! * [`chol`]: Cholesky, pivoted (rank-revealing) Cholesky, and CholQR — the
//!   orthogonalization scheme the paper advocates (§III-A),
//! * [`gs`]: classical / modified / iterated-modified Gram–Schmidt, plus the
//!   low-synchronization fused block orthogonalization (§III-D),
//! * [`fused`]: fused Gram+projection products — `[CᴴW; VᴴW; WᴴW]` in one
//!   sweep, one reduction instead of `j+2`,
//! * [`tsqr`]: communication-avoiding tall-skinny QR by tree reduction,
//! * [`lu`]: LU with partial pivoting (complex-capable),
//! * [`eig`]: complex Hessenberg QR eigensolver with Schur vectors, plus the
//!   generalized eigensolver used by GCRO-DR's deflation (eq. (3)),
//! * [`tri`]: triangular multi-RHS solves.
//!
//! All kernels are generic over [`kryst_scalar::Scalar`] so the same code
//! serves real (Poisson, elasticity) and complex (Maxwell) problems.

pub mod blas;
pub mod chol;
pub mod eig;
pub mod fused;
pub mod gs;
pub mod lu;
pub mod mat;
pub mod qr;
pub mod tri;
pub mod tsqr;

pub use blas::{gemm, Op};
pub use mat::DMat;

/// Convenience re-export of the scalar abstraction.
pub use kryst_scalar::{Complex, Real, Scalar, C64};
