//! Dense triangular multi-RHS solves.

use crate::DMat;
use kryst_scalar::Scalar;

/// Solve `R · X = B` in place for upper-triangular `R` (leading `n × n` block
/// of `r`), overwriting the first `n` rows of each column of `b`.
///
/// Only rows/columns `0..n` of `r` are referenced, so a larger workspace
/// matrix (e.g. the incremental-QR `R` factor allocated for the full restart
/// length) can be reused without copying.
pub fn solve_upper_in_place<S: Scalar>(r: &DMat<S>, n: usize, b: &mut DMat<S>) {
    assert!(n <= r.nrows() && n <= r.ncols());
    assert!(b.nrows() >= n);
    for col in 0..b.ncols() {
        let x = b.col_mut(col);
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in i + 1..n {
                acc -= r[(i, j)] * x[j];
            }
            x[i] = acc / r[(i, i)];
        }
    }
}

/// Solve `Rᴴ · X = B` in place (forward substitution with the adjoint of the
/// stored upper triangle).
pub fn solve_upper_adjoint_in_place<S: Scalar>(r: &DMat<S>, n: usize, b: &mut DMat<S>) {
    assert!(n <= r.nrows() && n <= r.ncols());
    assert!(b.nrows() >= n);
    for col in 0..b.ncols() {
        let x = b.col_mut(col);
        for i in 0..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= r[(j, i)].conj() * x[j];
            }
            x[i] = acc / r[(i, i)].conj();
        }
    }
}

/// Solve `L · X = B` in place for lower-triangular `L` (leading `n × n`
/// block), optionally with an implicit unit diagonal.
pub fn solve_lower_in_place<S: Scalar>(l: &DMat<S>, n: usize, unit_diag: bool, b: &mut DMat<S>) {
    assert!(n <= l.nrows() && n <= l.ncols());
    assert!(b.nrows() >= n);
    for col in 0..b.ncols() {
        let x = b.col_mut(col);
        for i in 0..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= l[(i, j)] * x[j];
            }
            x[i] = if unit_diag { acc } else { acc / l[(i, i)] };
        }
    }
}

/// `X ⟵ X · R⁻¹` for upper-triangular `R` — the "scale the basis by the
/// inverse R factor" step of CholQR / recycled-space updates (`U_k ⟵ U_k R⁻¹`
/// in Fig. 1 lines 6, 20, 37 of the paper).
pub fn right_solve_upper<S: Scalar>(x: &mut DMat<S>, r: &DMat<S>) {
    let k = x.ncols();
    assert!(r.nrows() >= k && r.ncols() >= k);
    // Column j of X·R⁻¹ solves  (X·R⁻¹)[:,j] = (X[:,j] − Σ_{l<j} (XR⁻¹)[:,l]·R[l,j]) / R[j,j].
    for j in 0..k {
        for l in 0..j {
            let rlj = r[(l, j)];
            if rlj == S::zero() {
                continue;
            }
            let (dst, src) = x.two_cols_mut(j, l);
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d -= rlj * *s;
            }
        }
        let d = S::one() / r[(j, j)];
        x.scale_col(j, d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{matmul, Op};
    use kryst_scalar::C64;

    fn upper(n: usize) -> DMat<f64> {
        DMat::from_fn(n, n, |i, j| {
            if i <= j {
                1.0 + (i + 2 * j) as f64 * 0.3 + if i == j { 2.0 } else { 0.0 }
            } else {
                0.0
            }
        })
    }

    #[test]
    fn upper_solve_roundtrip() {
        let r = upper(5);
        let x = DMat::from_fn(5, 3, |i, j| (i as f64) - (j as f64) * 0.5);
        let mut b = matmul(&r, Op::None, &x, Op::None);
        solve_upper_in_place(&r, 5, &mut b);
        for i in 0..5 {
            for j in 0..3 {
                assert!((b[(i, j)] - x[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn upper_adjoint_solve_complex() {
        let r = DMat::<C64>::from_fn(4, 4, |i, j| {
            if i <= j {
                C64::from_parts(1.0 + i as f64, j as f64 - 1.5)
            } else {
                C64::zero()
            }
        });
        let x = DMat::<C64>::from_fn(4, 2, |i, j| C64::from_parts(i as f64, -(j as f64)));
        let rh = r.adjoint();
        let mut b = matmul(&rh, Op::None, &x, Op::None);
        solve_upper_adjoint_in_place(&r, 4, &mut b);
        for i in 0..4 {
            for j in 0..2 {
                assert!((b[(i, j)] - x[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn lower_unit_diag() {
        let l = DMat::<f64>::from_fn(4, 4, |i, j| {
            if i > j {
                0.25 * (i + j) as f64
            } else if i == j {
                1.0
            } else {
                0.0
            }
        });
        let x = DMat::from_fn(4, 2, |i, j| (i + j) as f64 + 1.0);
        let mut b = matmul(&l, Op::None, &x, Op::None);
        solve_lower_in_place(&l, 4, true, &mut b);
        for i in 0..4 {
            for j in 0..2 {
                assert!((b[(i, j)] - x[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn right_solve_matches_explicit_inverse() {
        let r = upper(4);
        let x = DMat::from_fn(6, 4, |i, j| ((i * 5 + j) % 7) as f64 - 3.0);
        let mut y = x.clone();
        right_solve_upper(&mut y, &r);
        // Verify y * r == x
        let back = matmul(&y, Op::None, &r, Op::None);
        for i in 0..6 {
            for j in 0..4 {
                assert!((back[(i, j)] - x[(i, j)]).abs() < 1e-11);
            }
        }
    }
}
