//! Householder QR and the incremental QR used by (block) GMRES.
//!
//! The incremental variant maintains the QR factorization of the block
//! Hessenberg matrix `H̄` while the Arnoldi process appends `p` columns per
//! iteration (the paper, §III-A: "our implementation of (Block) GMRES
//! computes the QR factorization of H̄ₘ incrementally — i.e., p column(s) of
//! Q and R are determined per iteration"). This gives
//!
//! * per-right-hand-side residual norms for free (tail of the transformed
//!   right-hand side),
//! * the triangular solve for the least-squares coefficients `Yₘ`,
//! * the cheap harmonic-Ritz left-hand side of the paper's eq. (2).

use crate::tri;
use crate::DMat;
use kryst_scalar::{Real, Scalar};

/// Generate an elementary (complex-capable) Householder reflector.
///
/// Given `x`, computes `tau` and overwrites `x` with `[beta, v₁, …]` such that
/// `H = I − tau·v·vᴴ` (with `v₀ = 1`) maps the original `x` to `beta·e₁`,
/// `beta` real. Returns `tau` (zero means "no reflection needed").
pub fn householder_reflector<S: Scalar>(x: &mut [S]) -> S {
    let n = x.len();
    if n == 0 {
        return S::zero();
    }
    let alpha = x[0];
    let mut xnorm_sqr = S::Real::zero();
    for &v in &x[1..] {
        xnorm_sqr += v.abs_sqr();
    }
    if xnorm_sqr == S::Real::zero() && alpha.im() == S::Real::zero() {
        return S::zero(); // already of the form beta·e₁ with beta real
    }
    let beta_mag = (alpha.abs_sqr() + xnorm_sqr).sqrt();
    // beta takes the opposite sign of Re(alpha) for stability.
    let beta = if alpha.re() >= S::Real::zero() {
        -beta_mag
    } else {
        beta_mag
    };
    let beta_s = S::from_real(beta);
    let tau = (beta_s - alpha) / beta_s;
    let scale = S::one() / (alpha - beta_s);
    for v in &mut x[1..] {
        *v *= scale;
    }
    x[0] = beta_s;
    tau
}

/// Apply `H = I − tau·v·vᴴ` (or its adjoint) to rows `r0..r0+len` of the
/// columns `cols` of `m`. `v` has implicit leading 1 followed by `vtail`.
fn apply_reflector<S: Scalar>(
    m: &mut DMat<S>,
    r0: usize,
    vtail: &[S],
    tau: S,
    adjoint: bool,
    col_range: std::ops::Range<usize>,
) {
    if tau == S::zero() {
        return;
    }
    let t = if adjoint { tau.conj() } else { tau };
    for j in col_range {
        let col = m.col_mut(j);
        // w = vᴴ·col = col[r0] + Σ conj(vtail)·col[r0+1..]
        let mut w = col[r0];
        for (i, &vi) in vtail.iter().enumerate() {
            w += vi.conj() * col[r0 + 1 + i];
        }
        w *= t;
        col[r0] -= w;
        for (i, &vi) in vtail.iter().enumerate() {
            col[r0 + 1 + i] -= vi * w;
        }
    }
}

/// Compact Householder QR factorization `A = Q·R`.
///
/// Reflector vectors are stored below the diagonal of `qr`, `R` on and above
/// it, LAPACK-style.
pub struct HouseholderQr<S> {
    qr: DMat<S>,
    tau: Vec<S>,
}

impl<S: Scalar> HouseholderQr<S> {
    /// Factor `a` (consumed). Requires `nrows ≥ ncols`.
    pub fn factor(mut a: DMat<S>) -> Self {
        let _t = kryst_obs::profile(kryst_obs::Phase::SmallDense);
        let m = a.nrows();
        let n = a.ncols();
        assert!(m >= n, "HouseholderQr requires a tall (or square) matrix");
        let mut tau = Vec::with_capacity(n);
        for k in 0..n {
            let t = {
                let col = &mut a.col_mut(k)[k..m];
                householder_reflector(col)
            };
            tau.push(t);
            let vtail = a.col(k)[k + 1..m].to_vec();
            apply_reflector(&mut a, k, &vtail, t, true, k + 1..n);
        }
        Self { qr: a, tau }
    }

    /// Number of rows of the factored matrix.
    pub fn nrows(&self) -> usize {
        self.qr.nrows()
    }

    /// Number of columns (= number of reflectors).
    pub fn ncols(&self) -> usize {
        self.qr.ncols()
    }

    /// The upper-triangular factor `R` (`n × n`).
    pub fn r(&self) -> DMat<S> {
        let n = self.ncols();
        DMat::from_fn(
            n,
            n,
            |i, j| if i <= j { self.qr[(i, j)] } else { S::zero() },
        )
    }

    /// Apply `Qᴴ` to `b` in place (`b` must have `nrows` rows).
    pub fn apply_qh(&self, b: &mut DMat<S>) {
        assert_eq!(b.nrows(), self.nrows());
        let m = self.nrows();
        for k in 0..self.ncols() {
            let vtail = self.qr.col(k)[k + 1..m].to_vec();
            apply_reflector(b, k, &vtail, self.tau[k], true, 0..b.ncols());
        }
    }

    /// Apply `Q` to `b` in place.
    pub fn apply_q(&self, b: &mut DMat<S>) {
        assert_eq!(b.nrows(), self.nrows());
        let m = self.nrows();
        for k in (0..self.ncols()).rev() {
            let vtail = self.qr.col(k)[k + 1..m].to_vec();
            apply_reflector(b, k, &vtail, self.tau[k], false, 0..b.ncols());
        }
    }

    /// Thin `Q` factor (`m × n`).
    pub fn q_thin(&self) -> DMat<S> {
        let m = self.nrows();
        let n = self.ncols();
        let mut q = DMat::zeros(m, n);
        for j in 0..n {
            q[(j, j)] = S::one();
        }
        self.apply_q(&mut q);
        q
    }

    /// Least-squares solution of `min ‖A·x − b‖` for each column of `b`.
    pub fn solve_ls(&self, b: &DMat<S>) -> DMat<S> {
        let n = self.ncols();
        let mut work = b.clone();
        self.apply_qh(&mut work);
        let mut x = work.block(0, 0, n, b.ncols());
        tri::solve_upper_in_place(&self.r(), n, &mut x);
        x
    }
}

/// Incrementally updated QR factorization for (block) Hessenberg systems.
///
/// Columns arrive `p` at a time; each new column is reduced by the previously
/// stored reflectors, then a fresh reflector annihilates its subdiagonal
/// entries. The transformed least-squares right-hand side `g = Qᴴ·[S₁; 0]` is
/// maintained alongside, so the current residual norm of right-hand side `l`
/// is the norm of the tail of `g`'s column `l`.
pub struct IncrementalQr<S> {
    /// Reflectors (below diagonal) and `R` (upper triangle); `max_rows × max_cols`.
    fac: DMat<S>,
    tau: Vec<S>,
    /// Row extent of each reflector: reflector `k` acts on rows `k..row_end[k]`.
    row_end: Vec<usize>,
    /// Transformed right-hand side `Qᴴ·[S₁; 0]`, `max_rows × p`.
    g: DMat<S>,
    ncols: usize,
    nrows: usize,
    p: usize,
}

impl<S: Scalar> IncrementalQr<S> {
    /// Workspace for at most `max_block_cols` block columns of width `p`.
    pub fn new(max_block_cols: usize, p: usize) -> Self {
        let max_cols = max_block_cols * p;
        let max_rows = (max_block_cols + 1) * p;
        Self {
            fac: DMat::zeros(max_rows, max_cols),
            tau: Vec::with_capacity(max_cols),
            row_end: Vec::with_capacity(max_cols),
            g: DMat::zeros(max_rows, p),
            ncols: 0,
            nrows: p,
            p,
        }
    }

    /// Reset for a new cycle with initial right-hand-side block `s1` (`p × p`;
    /// for `p = 1`, the scalar `‖r₀‖`).
    pub fn reset(&mut self, s1: &DMat<S>) {
        assert_eq!(s1.nrows(), self.p);
        assert_eq!(s1.ncols(), self.p);
        self.fac.set_zero();
        self.g.set_zero();
        self.tau.clear();
        self.row_end.clear();
        self.ncols = 0;
        self.nrows = self.p;
        self.g.set_block(0, 0, s1);
    }

    /// Number of scalar columns factored so far.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Block width `p`.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Append one block column of the block Hessenberg matrix.
    ///
    /// `cols` is `(j+2)p × p` where `j` is the number of block columns already
    /// absorbed — i.e. the new Hessenberg block column including its
    /// subdiagonal block.
    pub fn push_block(&mut self, cols: &DMat<S>) {
        let j = self.ncols / self.p;
        let new_rows = (j + 2) * self.p;
        assert_eq!(cols.nrows(), new_rows, "Hessenberg column height mismatch");
        assert_eq!(cols.ncols(), self.p);
        let c0 = self.ncols;
        // Stage the new columns into the factor storage.
        self.fac.set_block(0, c0, cols);
        // Reduce by existing reflectors.
        for k in 0..c0 {
            let vtail = self.fac.col(k)[k + 1..self.row_end[k]].to_vec();
            apply_reflector(&mut self.fac, k, &vtail, self.tau[k], true, c0..c0 + self.p);
        }
        // Create new reflectors for the p new columns.
        for t in 0..self.p {
            let k = c0 + t;
            let tau = {
                let col = &mut self.fac.col_mut(k)[k..new_rows];
                householder_reflector(col)
            };
            self.tau.push(tau);
            self.row_end.push(new_rows);
            let vtail = self.fac.col(k)[k + 1..new_rows].to_vec();
            // Reduce the remaining new columns …
            apply_reflector(&mut self.fac, k, &vtail, tau, true, k + 1..c0 + self.p);
            // … and the transformed right-hand side.
            apply_reflector(&mut self.g, k, &vtail, tau, true, 0..self.p);
        }
        self.ncols += self.p;
        self.nrows = new_rows;
    }

    /// Residual norm of right-hand side `l`: `‖g[ncols.., l]‖`.
    pub fn residual_norm(&self, l: usize) -> S::Real {
        let mut acc = S::Real::zero();
        let col = self.g.col(l);
        for &v in &col[self.ncols..self.nrows] {
            acc += v.abs_sqr();
        }
        acc.sqrt()
    }

    /// All residual norms.
    pub fn residual_norms(&self) -> Vec<S::Real> {
        (0..self.p).map(|l| self.residual_norm(l)).collect()
    }

    /// Solve for the least-squares coefficients `Y` (`ncols × p`).
    pub fn solve_y(&self) -> DMat<S> {
        let mut y = self.g.block(0, 0, self.ncols, self.p);
        tri::solve_upper_in_place(&self.fac, self.ncols, &mut y);
        y
    }

    /// The current `R` factor (`ncols × ncols` upper triangle).
    pub fn r(&self) -> DMat<S> {
        DMat::from_fn(self.ncols, self.ncols, |i, j| {
            if i <= j {
                self.fac[(i, j)]
            } else {
                S::zero()
            }
        })
    }

    /// Solve `Rᴴ · X = B` in place using the internal factor.
    pub fn solve_r_adjoint_in_place(&self, b: &mut DMat<S>) {
        tri::solve_upper_adjoint_in_place(&self.fac, self.ncols, b);
    }

    /// Solve `R · X = B` in place using the internal factor.
    pub fn solve_r_in_place(&self, b: &mut DMat<S>) {
        tri::solve_upper_in_place(&self.fac, self.ncols, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{matmul, Op};
    use kryst_scalar::C64;

    fn check_qr<S: Scalar>(a: &DMat<S>, tol: f64) {
        let f = HouseholderQr::factor(a.clone());
        let q = f.q_thin();
        let r = f.r();
        // A ≈ Q·R
        let qr = matmul(&q, Op::None, &r, Op::None);
        for i in 0..a.nrows() {
            for j in 0..a.ncols() {
                assert!(
                    (qr[(i, j)] - a[(i, j)]).abs().to_f64() < tol,
                    "QR reconstruction failed at ({i},{j})"
                );
            }
        }
        // QᴴQ ≈ I
        let qtq = matmul(&q, Op::ConjTrans, &q, Op::None);
        for i in 0..a.ncols() {
            for j in 0..a.ncols() {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((qtq[(i, j)].re().to_f64() - expect).abs() < tol);
                assert!(qtq[(i, j)].im().to_f64().abs() < tol);
            }
        }
    }

    #[test]
    fn qr_real_tall() {
        let a = DMat::<f64>::from_fn(9, 4, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
        check_qr(&a, 1e-12);
    }

    #[test]
    fn qr_complex_tall() {
        let a = DMat::<C64>::from_fn(8, 5, |i, j| {
            C64::from_parts(
                ((i * 5 + j) % 7) as f64 - 3.0,
                ((i + j * 3) % 5) as f64 - 2.0,
            )
        });
        check_qr(&a, 1e-12);
    }

    #[test]
    fn qr_least_squares_matches_normal_equations() {
        let a = DMat::<f64>::from_fn(10, 3, |i, j| ((i + 1) as f64).powi(j as i32));
        let b = DMat::<f64>::from_fn(10, 2, |i, j| (i as f64) * 0.5 + j as f64);
        let f = HouseholderQr::factor(a.clone());
        let x = f.solve_ls(&b);
        // Normal equations residual AᴴA x = Aᴴ b
        let ata = matmul(&a, Op::ConjTrans, &a, Op::None);
        let atb = matmul(&a, Op::ConjTrans, &b, Op::None);
        let atax = matmul(&ata, Op::None, &x, Op::None);
        for i in 0..3 {
            for j in 0..2 {
                assert!((atax[(i, j)] - atb[(i, j)]).abs() < 1e-9);
            }
        }
    }

    /// Build a random block Hessenberg matrix with block width p and jmax
    /// block columns and validate the incremental QR against a one-shot QR.
    fn check_incremental(p: usize, jmax: usize) {
        let rows = (jmax + 1) * p;
        let cols = jmax * p;
        // Block Hessenberg: entry (i,q) nonzero iff i < (q/p + 2) * p.
        let h = DMat::<f64>::from_fn(rows, cols, |i, q| {
            if i < (q / p + 2) * p {
                (((i * 13 + q * 7) % 17) as f64) - 8.0
            } else {
                0.0
            }
        });
        let s1 = DMat::<f64>::from_fn(p, p, |i, j| if i <= j { (i + j + 1) as f64 } else { 0.0 });
        let mut rhs = DMat::<f64>::zeros(rows, p);
        rhs.set_block(0, 0, &s1);

        let mut inc = IncrementalQr::new(jmax, p);
        inc.reset(&s1);
        for j in 0..jmax {
            let block = h.block(0, j * p, (j + 2) * p, p);
            inc.push_block(&block);

            // Reference: full QR of the leading (j+2)p × (j+1)p Hessenberg panel.
            let sub = h.block(0, 0, (j + 2) * p, (j + 1) * p);
            let f = HouseholderQr::factor(sub.clone());
            let ls = f.solve_ls(&rhs.block(0, 0, (j + 2) * p, p));
            let y = inc.solve_y();
            for i in 0..(j + 1) * p {
                for l in 0..p {
                    assert!(
                        (y[(i, l)] - ls[(i, l)]).abs() < 1e-9,
                        "LS mismatch at iter {j}, ({i},{l})"
                    );
                }
            }
            // Residual norms must match the true LS residual.
            let ax = matmul(&sub, Op::None, &y, Op::None);
            for l in 0..p {
                let mut acc = 0.0;
                for i in 0..(j + 2) * p {
                    let d = ax[(i, l)] - rhs[(i, l)];
                    acc += d * d;
                }
                let true_res = acc.sqrt();
                assert!(
                    (inc.residual_norm(l) - true_res).abs() < 1e-9,
                    "residual mismatch at iter {j}, rhs {l}: {} vs {}",
                    inc.residual_norm(l),
                    true_res
                );
            }
        }
    }

    #[test]
    fn incremental_qr_scalar() {
        check_incremental(1, 6);
    }

    #[test]
    fn incremental_qr_block() {
        check_incremental(3, 4);
    }

    #[test]
    fn reflector_annihilates() {
        let mut x = vec![3.0f64, 4.0, 0.0, 12.0];
        let orig = x.clone();
        let tau = householder_reflector(&mut x);
        // |beta| = ‖x‖ = 13
        assert!((x[0].abs() - 13.0).abs() < 1e-12);
        // Verify H·orig = beta·e1 by applying the reflector to orig.
        let mut m = DMat::from_col_major(4, 1, orig);
        let vtail = x[1..].to_vec();
        apply_reflector(&mut m, 0, &vtail, tau, true, 0..1);
        assert!((m[(0, 0)] - x[0]).abs() < 1e-12);
        for i in 1..4 {
            assert!(m[(i, 0)].abs() < 1e-12);
        }
    }
}
