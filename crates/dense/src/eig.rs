//! Dense eigensolvers for the deflation step of GCRO-DR.
//!
//! GCRO-DR needs, once per restart, the `k` eigenvectors associated with the
//! smallest-magnitude eigenvalues of either
//!
//! * a standard problem `H·z = θ·z` (first cycle, paper's eq. (2)), or
//! * a generalized problem `T·z = θ·W·z` (later cycles, eq. (3a)/(3b)),
//!
//! where the matrices have dimension `m·p ≲ a few hundred`. These are solved
//! *redundantly on every process* in the paper, so a robust serial dense
//! algorithm is exactly what is required.
//!
//! Everything runs in complex arithmetic (real inputs are promoted): complex
//! Hessenberg reduction, a shifted QR iteration to Schur form with
//! accumulated unitary transforms, and eigenvector extraction by triangular
//! back-substitution.

use crate::lu::Lu;
use crate::DMat;
use kryst_scalar::{Complex, Real, Scalar};

/// Eigendecomposition `A·V = V·diag(values)` (up to numerical accuracy).
pub struct EigDecomp<R: Real> {
    /// Eigenvalues, in Schur (quasi-arbitrary) order.
    pub values: Vec<Complex<R>>,
    /// Right eigenvectors as columns, normalized to unit 2-norm.
    pub vectors: DMat<Complex<R>>,
    /// False when the QR iteration hit its iteration cap before full
    /// deflation (results are then best-effort).
    pub converged: bool,
}

/// Promote a real or complex matrix to explicit complex storage.
pub fn to_complex<S: Scalar>(a: &DMat<S>) -> DMat<Complex<S::Real>> {
    DMat::from_fn(a.nrows(), a.ncols(), |i, j| {
        Complex::new(a[(i, j)].re(), a[(i, j)].im())
    })
}

/// Complex Givens rotation: returns `(c, s)` with `c` real so that
/// `[c, s; -conj(s), c]·[a; b] = [r; 0]`.
fn givens<R: Real>(a: Complex<R>, b: Complex<R>) -> (R, Complex<R>) {
    let an = a.abs();
    let bn = b.abs();
    if bn == R::zero() {
        return (R::one(), Complex::zero());
    }
    if an == R::zero() {
        return (R::zero(), b.conj().scale(R::one() / bn));
    }
    let t = an.hypot(bn);
    let c = an / t;
    // s = (a/|a|)·conj(b)/t
    let phase = a.scale(R::one() / an);
    let s = phase * b.conj().scale(R::one() / t);
    (c, s)
}

/// Hessenberg reduction `QᴴAQ = H` by Householder similarity transforms.
/// Returns `(h, q)`.
fn hessenberg<R: Real>(a: &DMat<Complex<R>>) -> (DMat<Complex<R>>, DMat<Complex<R>>) {
    let n = a.nrows();
    let mut h = a.clone();
    let mut q = DMat::<Complex<R>>::eye(n);
    if n < 3 {
        return (h, q);
    }
    for k in 0..n - 2 {
        // Reflector annihilating H[k+2.., k].
        let mut x: Vec<Complex<R>> = (k + 1..n).map(|i| h[(i, k)]).collect();
        let tau = crate::qr::householder_reflector(&mut x);
        if tau == Complex::zero() {
            continue;
        }
        let beta = x[0];
        let v: Vec<Complex<R>> = std::iter::once(Complex::one())
            .chain(x[1..].iter().copied())
            .collect();
        // Left: rows k+1..n of all columns k..n get Hᴴ = I − conj(tau)·v·vᴴ.
        for j in k..n {
            let mut w = Complex::zero();
            for (t, &vi) in v.iter().enumerate() {
                w += vi.conj() * h[(k + 1 + t, j)];
            }
            w *= tau.conj();
            for (t, &vi) in v.iter().enumerate() {
                let upd = vi * w;
                h[(k + 1 + t, j)] -= upd;
            }
        }
        // Right: columns k+1..n of all rows get H = I − tau·v·vᴴ.
        for i in 0..n {
            let mut w = Complex::zero();
            for (t, &vi) in v.iter().enumerate() {
                w += h[(i, k + 1 + t)] * vi;
            }
            w *= tau;
            for (t, &vi) in v.iter().enumerate() {
                let upd = w * vi.conj();
                h[(i, k + 1 + t)] -= upd;
            }
        }
        // Accumulate Q ⟵ Q·H.
        for i in 0..n {
            let mut w = Complex::zero();
            for (t, &vi) in v.iter().enumerate() {
                w += q[(i, k + 1 + t)] * vi;
            }
            w *= tau;
            for (t, &vi) in v.iter().enumerate() {
                let upd = w * vi.conj();
                q[(i, k + 1 + t)] -= upd;
            }
        }
        // Explicit zeros + the beta entry.
        h[(k + 1, k)] = beta;
        for i in k + 2..n {
            h[(i, k)] = Complex::zero();
        }
    }
    (h, q)
}

/// Wilkinson shift from the trailing 2×2 of the active block.
fn wilkinson_shift<R: Real>(h: &DMat<Complex<R>>, hi: usize) -> Complex<R> {
    let a = h[(hi - 1, hi - 1)];
    let b = h[(hi - 1, hi)];
    let c = h[(hi, hi - 1)];
    let d = h[(hi, hi)];
    let tr_half = (a + d).scale(R::from_f64(0.5));
    let det = a * d - b * c;
    let disc = (tr_half * tr_half - det).sqrt();
    let l1 = tr_half + disc;
    let l2 = tr_half - disc;
    if (l1 - d).abs() <= (l2 - d).abs() {
        l1
    } else {
        l2
    }
}

/// Shifted QR iteration on an upper Hessenberg matrix, accumulating the
/// unitary transform into `q`. On return `h` is upper triangular (Schur form)
/// when `true` is returned.
fn schur_qr<R: Real>(h: &mut DMat<Complex<R>>, q: &mut DMat<Complex<R>>) -> bool {
    let n = h.nrows();
    if n <= 1 {
        return true;
    }
    let eps = R::epsilon();
    let max_total_iters = 40 * n.max(8);
    let mut hi = n - 1;
    let mut iters = 0;
    let mut stagnation = 0usize;
    while hi > 0 {
        if iters >= max_total_iters {
            return false;
        }
        iters += 1;
        // Deflation scan within 0..=hi.
        let mut deflated = false;
        for i in (0..hi).rev() {
            let tol = eps * (h[(i, i)].abs() + h[(i + 1, i + 1)].abs());
            if h[(i + 1, i)].abs() <= tol {
                h[(i + 1, i)] = Complex::zero();
                if i + 1 == hi {
                    // Bottom 1×1 deflated.
                    hi -= 1;
                    deflated = true;
                    stagnation = 0;
                    break;
                }
            }
        }
        if deflated {
            continue;
        }
        // Find `lo`: start of the trailing unreduced block ending at hi.
        let mut lo = hi;
        while lo > 0 && h[(lo, lo - 1)] != Complex::zero() {
            lo -= 1;
        }
        if lo == hi {
            hi -= 1;
            continue;
        }
        // Exceptional shift every 12 stagnating sweeps.
        stagnation += 1;
        let mu = if stagnation % 13 == 12 {
            h[(hi, hi - 1)].scale(R::from_f64(1.5)) + h[(hi, hi)]
        } else {
            wilkinson_shift(h, hi)
        };
        // Explicit single-shift QR step on the window [lo, hi].
        for i in lo..=hi {
            h[(i, i)] -= mu;
        }
        let mut rots: Vec<(R, Complex<R>)> = Vec::with_capacity(hi - lo);
        for i in lo..hi {
            let (c, s) = givens(h[(i, i)], h[(i + 1, i)]);
            rots.push((c, s));
            // Left rotation on rows i, i+1, columns i..n.
            for j in i..n {
                let x = h[(i, j)];
                let y = h[(i + 1, j)];
                h[(i, j)] = x.scale(c) + s * y;
                h[(i + 1, j)] = -(s.conj() * x) + y.scale(c);
            }
        }
        for (idx, &(c, s)) in rots.iter().enumerate() {
            let i = lo + idx;
            // Right rotation Gᴴ on columns i, i+1, rows 0..=i+1.
            for r in 0..=(i + 1).min(n - 1) {
                let x = h[(r, i)];
                let y = h[(r, i + 1)];
                h[(r, i)] = x.scale(c) + y * s.conj();
                h[(r, i + 1)] = -(x * s) + y.scale(c);
            }
            // Accumulate into Q (all rows).
            for r in 0..n {
                let x = q[(r, i)];
                let y = q[(r, i + 1)];
                q[(r, i)] = x.scale(c) + y * s.conj();
                q[(r, i + 1)] = -(x * s) + y.scale(c);
            }
        }
        for i in lo..=hi {
            h[(i, i)] += mu;
        }
    }
    true
}

/// Eigenvectors of an upper-triangular `t`, transformed back through `q`.
fn eigvecs_from_schur<R: Real>(t: &DMat<Complex<R>>, q: &DMat<Complex<R>>) -> DMat<Complex<R>> {
    let n = t.nrows();
    let tnorm = t.max_abs().max(R::epsilon());
    let smin = R::epsilon() * tnorm;
    let mut vecs = DMat::<Complex<R>>::zeros(n, n);
    let mut y = vec![Complex::<R>::zero(); n];
    for k in 0..n {
        let lambda = t[(k, k)];
        y.iter_mut().for_each(|v| *v = Complex::zero());
        y[k] = Complex::one();
        for i in (0..k).rev() {
            let mut acc = Complex::<R>::zero();
            for (j, &yj) in y.iter().enumerate().take(k + 1).skip(i + 1) {
                acc += t[(i, j)] * yj;
            }
            let mut den = t[(i, i)] - lambda;
            if den.abs() < smin {
                den = Complex::new(smin, R::zero());
            }
            y[i] = -acc / den;
        }
        // v = Q·y, normalized.
        let mut nrm = R::zero();
        for i in 0..n {
            let mut acc = Complex::<R>::zero();
            for (j, &yj) in y.iter().enumerate().take(k + 1) {
                acc += q[(i, j)] * yj;
            }
            vecs[(i, k)] = acc;
            nrm += acc.norm_sqr();
        }
        let nrm = nrm.sqrt();
        if nrm > R::zero() {
            let inv = Complex::new(R::one() / nrm, R::zero());
            for i in 0..n {
                vecs[(i, k)] *= inv;
            }
        }
    }
    vecs
}

/// Full eigendecomposition of a general square matrix.
pub fn eig<S: Scalar>(a: &DMat<S>) -> EigDecomp<S::Real> {
    let _t = kryst_obs::profile(kryst_obs::Phase::SmallDense);
    let ac = to_complex(a);
    let (mut h, mut q) = hessenberg(&ac);
    let converged = schur_qr(&mut h, &mut q);
    let n = a.nrows();
    let values: Vec<Complex<S::Real>> = (0..n).map(|i| h[(i, i)]).collect();
    let vectors = eigvecs_from_schur(&h, &q);
    EigDecomp {
        values,
        vectors,
        converged,
    }
}

/// Generalized eigenproblem `T·z = θ·W·z`, reduced to the standard problem
/// `(W⁻¹T)·z = θ·z` via an LU solve (the matrices are tiny and `W` is a Gram
/// product of Krylov bases, safely invertible after the paper's column
/// scaling — a diagonal Tikhonov fallback covers the degenerate case).
pub fn eig_generalized<S: Scalar>(t: &DMat<S>, w: &DMat<S>) -> EigDecomp<S::Real> {
    let _t = kryst_obs::profile(kryst_obs::Phase::SmallDense);
    let n = t.nrows();
    assert_eq!(t.ncols(), n);
    assert_eq!(w.nrows(), n);
    assert_eq!(w.ncols(), n);
    let tc = to_complex(t);
    let mut wc = to_complex(w);
    let mut f = Lu::factor(wc.clone());
    if f.is_singular() {
        // Regularize: W + ε‖W‖·I.
        let shift =
            w.max_abs().max(S::Real::epsilon()) * S::Real::epsilon() * S::Real::from_f64(1e4);
        for i in 0..n {
            wc[(i, i)] += Complex::new(shift, S::Real::zero());
        }
        f = Lu::factor(wc);
    }
    let m = f.solve(&tc);
    let (mut h, mut q) = hessenberg(&m);
    let converged = schur_qr(&mut h, &mut q);
    let values: Vec<Complex<S::Real>> = (0..n).map(|i| h[(i, i)]).collect();
    let vectors = eigvecs_from_schur(&h, &q);
    EigDecomp {
        values,
        vectors,
        converged,
    }
}

impl<R: Real> EigDecomp<R> {
    /// Indices of the `k` eigenvalues of smallest magnitude.
    pub fn smallest_indices(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.values.len()).collect();
        idx.sort_by(|&a, &b| {
            self.values[a]
                .abs()
                .partial_cmp(&self.values[b].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(k);
        idx
    }

    /// The eigenvector matrix restricted to the `k` smallest-magnitude
    /// eigenvalues — the `P_k` of the paper's Fig. 1 (lines 17 and 34).
    pub fn smallest_vectors(&self, k: usize) -> DMat<Complex<R>> {
        let idx = self.smallest_indices(k);
        let n = self.vectors.nrows();
        DMat::from_fn(n, idx.len(), |i, j| self.vectors[(i, idx[j])])
    }
}

/// Take the real part of a complex matrix (valid when the original problem
/// was real and eigenvectors are wanted in the original scalar type; complex
/// conjugate pairs are rotated to real form first via column phase).
pub fn realize_columns<R>(m: &DMat<Complex<R>>) -> DMat<R>
where
    R: Real + Scalar<Real = R>,
{
    // Rotate each column by the phase of its largest entry so that a
    // genuinely real eigenvector (up to phase) becomes real.
    let mut out = DMat::zeros(m.nrows(), m.ncols());
    for j in 0..m.ncols() {
        let mut best = Complex::<R>::zero();
        let mut best_abs = <R as Real>::zero();
        for i in 0..m.nrows() {
            let v = m[(i, j)];
            if v.abs() > best_abs {
                best_abs = v.abs();
                best = v;
            }
        }
        let phase = if best_abs > <R as Real>::zero() {
            best.conj().scale(<R as Real>::one() / best_abs)
        } else {
            Complex::one()
        };
        for i in 0..m.nrows() {
            out[(i, j)] = (m[(i, j)] * phase).re;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{matmul, Op};
    use kryst_scalar::C64;

    fn residual_ok<S: Scalar>(a: &DMat<S>, d: &EigDecomp<S::Real>, tol: f64) {
        let ac = to_complex(a);
        let av = matmul(&ac, Op::None, &d.vectors, Op::None);
        for j in 0..a.ncols() {
            for i in 0..a.nrows() {
                let want = d.vectors[(i, j)] * d.values[j];
                let diff = (av[(i, j)] - want).abs().to_f64();
                assert!(
                    diff < tol * (1.0 + d.values[j].abs().to_f64()),
                    "eig residual {diff} at ({i},{j}), λ = {:?}",
                    d.values[j]
                );
            }
        }
    }

    #[test]
    fn eig_diagonal() {
        let a = DMat::<f64>::from_fn(4, 4, |i, j| if i == j { (i + 1) as f64 } else { 0.0 });
        let d = eig(&a);
        assert!(d.converged);
        let mut vals: Vec<f64> = d.values.iter().map(|v| v.re).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (i, v) in vals.iter().enumerate() {
            assert!((v - (i + 1) as f64).abs() < 1e-10);
        }
        residual_ok(&a, &d, 1e-9);
    }

    #[test]
    fn eig_symmetric_real() {
        // Tridiagonal 1D Laplacian: eigenvalues 2 − 2cos(kπ/(n+1)).
        let n = 12;
        let a = DMat::<f64>::from_fn(n, n, |i, j| {
            if i == j {
                2.0
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let d = eig(&a);
        assert!(d.converged);
        residual_ok(&a, &d, 1e-8);
        let mut vals: Vec<f64> = d.values.iter().map(|v| v.re).collect();
        vals.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for (k, v) in vals.iter().enumerate() {
            let expect =
                2.0 - 2.0 * (std::f64::consts::PI * (k + 1) as f64 / (n as f64 + 1.0)).cos();
            assert!((v - expect).abs() < 1e-8, "λ_{k} = {v}, expect {expect}");
        }
    }

    #[test]
    fn eig_real_with_complex_pairs() {
        // Rotation-like block has complex eigenvalues ±i plus real 3.
        let mut a = DMat::<f64>::zeros(3, 3);
        a[(0, 1)] = -1.0;
        a[(1, 0)] = 1.0;
        a[(2, 2)] = 3.0;
        let d = eig(&a);
        assert!(d.converged);
        residual_ok(&a, &d, 1e-9);
        let mut found_i = 0;
        for v in &d.values {
            if (v.re).abs() < 1e-9 && (v.im.abs() - 1.0).abs() < 1e-9 {
                found_i += 1;
            }
        }
        assert_eq!(found_i, 2, "expected the ±i pair, got {:?}", d.values);
    }

    #[test]
    fn eig_complex_matrix() {
        let a = DMat::<C64>::from_fn(6, 6, |i, j| {
            C64::from_parts(
                ((i * 5 + j * 3) % 7) as f64 - 3.0,
                ((i + 2 * j) % 5) as f64 - 2.0,
            ) + if i == j {
                C64::from_parts(6.0, 0.0)
            } else {
                C64::zero()
            }
        });
        let d = eig(&a);
        assert!(d.converged);
        residual_ok(&a, &d, 1e-8);
    }

    #[test]
    fn eig_nonnormal_hessenberg() {
        // A genuinely non-normal upper Hessenberg matrix like a GMRES H.
        let n = 10;
        let a = DMat::<f64>::from_fn(n, n, |i, j| {
            if i <= j + 1 {
                (((i * 7 + j * 11) % 13) as f64 - 6.0) / 3.0 + if i == j { 4.0 } else { 0.0 }
            } else {
                0.0
            }
        });
        let d = eig(&a);
        assert!(d.converged);
        residual_ok(&a, &d, 1e-7);
    }

    #[test]
    fn generalized_reduces_to_standard_when_w_is_identity() {
        let a = DMat::<f64>::from_fn(5, 5, |i, j| {
            ((i + 2 * j) % 5) as f64 + if i == j { 4.0 } else { 0.0 }
        });
        let w = DMat::<f64>::eye(5);
        let dg = eig_generalized(&a, &w);
        let ds = eig(&a);
        let mut g: Vec<f64> = dg.values.iter().map(|v| v.abs()).collect();
        let mut s: Vec<f64> = ds.values.iter().map(|v| v.abs()).collect();
        g.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (x, y) in g.iter().zip(&s) {
            assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    fn generalized_eig_residual() {
        // T z = θ W z with W SPD.
        let n = 6;
        let t = DMat::<f64>::from_fn(n, n, |i, j| {
            ((i * 3 + j) % 7) as f64 - 3.0 + if i == j { 5.0 } else { 0.0 }
        });
        let m = DMat::<f64>::from_fn(n, n, |i, j| ((i + j * 2) % 5) as f64 * 0.2);
        let mut w = matmul(&m, Op::ConjTrans, &m, Op::None);
        for i in 0..n {
            w[(i, i)] += 3.0;
        }
        let d = eig_generalized(&t, &w);
        assert!(d.converged);
        let tc = to_complex(&t);
        let wc = to_complex(&w);
        let tv = matmul(&tc, Op::None, &d.vectors, Op::None);
        let wv = matmul(&wc, Op::None, &d.vectors, Op::None);
        for j in 0..n {
            for i in 0..n {
                let want = wv[(i, j)] * d.values[j];
                assert!(
                    (tv[(i, j)] - want).abs() < 1e-7 * (1.0 + d.values[j].abs()),
                    "generalized residual at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn smallest_selection() {
        let a = DMat::<f64>::from_fn(5, 5, |i, j| {
            if i == j {
                [5.0, -0.5, 3.0, 0.1, -2.0][i]
            } else {
                0.0
            }
        });
        let d = eig(&a);
        let idx = d.smallest_indices(2);
        let mags: Vec<f64> = idx.iter().map(|&i| d.values[i].abs()).collect();
        assert!((mags[0] - 0.1).abs() < 1e-12);
        assert!((mags[1] - 0.5).abs() < 1e-12);
        assert_eq!(d.smallest_vectors(2).ncols(), 2);
    }
}
