//! Tall-Skinny QR (TSQR) by binary tree reduction.
//!
//! The communication-avoiding QR first studied for CA-GMRES (paper §III-A):
//! the tall matrix is split into row blocks, each block is QR-factored
//! locally, the small `R` factors are reduced pairwise up a binary tree
//! (one tree reduction = one "global reduction" in the distributed cost
//! model), and the final `R` is broadcast. The orthogonal factor is applied
//! implicitly: `Q = V·R⁻¹` is *not* formed by this routine; callers that need
//! `Q` explicitly use [`tsqr_orthonormalize`].

use crate::qr::HouseholderQr;
use crate::tri;
use crate::DMat;
use kryst_rt::par::map_range;
use kryst_scalar::Scalar;

/// Compute the `R` factor of a QR factorization of `v` using a TSQR tree over
/// `nblocks` row blocks. Returns the `p × p` upper-triangular factor with the
/// convention of a non-negative real diagonal... (sign conventions follow the
/// local Householder kernels; only `RᴴR = VᴴV` is guaranteed).
pub fn tsqr_r<S: Scalar>(v: &DMat<S>, nblocks: usize) -> DMat<S> {
    let n = v.nrows();
    let p = v.ncols();
    assert!(n >= p, "TSQR requires a tall matrix");
    let nblocks = nblocks.max(1).min(n / p.max(1)).max(1);
    let rows_per = n.div_ceil(nblocks);

    // Leaf factorizations (parallel).
    let mut rs: Vec<DMat<S>> = map_range(nblocks, |b| {
        let r0 = b * rows_per;
        let r1 = ((b + 1) * rows_per).min(n);
        let block = v.block(r0, 0, r1 - r0, p);
        if r1 - r0 >= p {
            HouseholderQr::factor(block).r()
        } else {
            // Short leaf: pad with zero rows so the QR is well-defined.
            let mut padded = DMat::zeros(p, p);
            padded.set_block(0, 0, &block);
            HouseholderQr::factor(padded).r()
        }
    });

    // Pairwise tree reduction.
    while rs.len() > 1 {
        let npairs = rs.len().div_ceil(2);
        rs = map_range(npairs, |i| {
            if 2 * i + 1 >= rs.len() {
                rs[2 * i].clone()
            } else {
                let mut stacked = DMat::zeros(2 * p, p);
                stacked.set_block(0, 0, &rs[2 * i]);
                stacked.set_block(p, 0, &rs[2 * i + 1]);
                HouseholderQr::factor(stacked).r()
            }
        });
    }
    rs.pop().unwrap()
}

/// Orthonormalize `v` in place using TSQR: computes `R` by tree reduction and
/// scales `v ⟵ v·R⁻¹`. Returns `R`.
///
/// This matches CholQR's communication profile (one tree reduction) with
/// better numerical behaviour on ill-conditioned blocks.
pub fn tsqr_orthonormalize<S: Scalar>(v: &mut DMat<S>, nblocks: usize) -> DMat<S> {
    let r = tsqr_r(v, nblocks);
    tri::right_solve_upper(v, &r);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{adjoint_times, matmul, Op};
    use kryst_scalar::{Scalar, C64};

    #[test]
    fn tsqr_r_matches_gram() {
        let v = DMat::<f64>::from_fn(97, 5, |i, j| ((i * 13 + j * 7) % 23) as f64 - 11.0);
        for nb in [1, 2, 4, 7] {
            let r = tsqr_r(&v, nb);
            let rtr = matmul(&r, Op::ConjTrans, &r, Op::None);
            let g = adjoint_times(&v, &v);
            for i in 0..5 {
                for j in 0..5 {
                    assert!(
                        (rtr[(i, j)] - g[(i, j)]).abs() < 1e-8 * g.max_abs(),
                        "nb={nb}: RᴴR mismatch at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn tsqr_orthonormalizes() {
        let mut v = DMat::<f64>::from_fn(64, 4, |i, j| ((i * 3 + j * 17) % 31) as f64 - 15.0);
        let orig = v.clone();
        let r = tsqr_orthonormalize(&mut v, 4);
        let g = adjoint_times(&v, &v);
        for i in 0..4 {
            for j in 0..4 {
                let e = if i == j { 1.0 } else { 0.0 };
                assert!((g[(i, j)] - e).abs() < 1e-9);
            }
        }
        let rec = matmul(&v, Op::None, &r, Op::None);
        for i in 0..64 {
            for j in 0..4 {
                assert!((rec[(i, j)] - orig[(i, j)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn tsqr_complex() {
        let mut v = DMat::<C64>::from_fn(50, 3, |i, j| {
            C64::from_parts(
                ((i * 7 + j) % 13) as f64 - 6.0,
                ((i + 5 * j) % 9) as f64 - 4.0,
            )
        });
        let _r = tsqr_orthonormalize(&mut v, 3);
        let g = adjoint_times(&v, &v);
        for i in 0..3 {
            for j in 0..3 {
                let e = if i == j { 1.0 } else { 0.0 };
                assert!((g[(i, j)].re() - e).abs() < 1e-9);
                assert!(g[(i, j)].im().abs() < 1e-9);
            }
        }
    }
}
