//! Column-major dense matrix / multivector.

use kryst_scalar::Scalar;
use std::fmt;

/// Column-major dense matrix.
///
/// The workspace uses `DMat` both for genuinely dense matrices (Hessenberg,
/// Gram, eigenvector matrices) and as the *multivector* type: a block of `p`
/// right-hand sides or Krylov basis vectors is an `n × p` `DMat`, stored so
/// that each vector (column) is contiguous.
#[derive(Clone, PartialEq)]
pub struct DMat<S> {
    data: Vec<S>,
    nrows: usize,
    ncols: usize,
}

impl<S: Scalar> DMat<S> {
    /// `nrows × ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            data: vec![S::zero(); nrows * ncols],
            nrows,
            ncols,
        }
    }

    /// Identity matrix of dimension `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = S::one();
        }
        m
    }

    /// Matrix whose entry `(i, j)` is `f(i, j)`.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> S) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                data.push(f(i, j));
            }
        }
        Self { data, nrows, ncols }
    }

    /// Build from a column-major data vector.
    pub fn from_col_major(nrows: usize, ncols: usize, data: Vec<S>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "data length mismatch");
        Self { data, nrows, ncols }
    }

    /// Build an `n × 1` matrix (a vector) from a slice.
    pub fn from_vec(v: Vec<S>) -> Self {
        let n = v.len();
        Self::from_col_major(n, 1, v)
    }

    /// Consume the matrix and return its column-major backing buffer
    /// (capacity preserved — buffer pools reshape through this).
    pub fn into_vec(self) -> Vec<S> {
        self.data
    }

    /// Number of rows.
    #[inline(always)]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `true` if the matrix holds no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat column-major data.
    #[inline(always)]
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// Mutable flat column-major data.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Column `j` as a slice.
    #[inline(always)]
    pub fn col(&self, j: usize) -> &[S] {
        debug_assert!(j < self.ncols);
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a mutable slice.
    #[inline(always)]
    pub fn col_mut(&mut self, j: usize) -> &mut [S] {
        debug_assert!(j < self.ncols);
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Two distinct mutable columns at once (for rotations / swaps).
    pub fn two_cols_mut(&mut self, j0: usize, j1: usize) -> (&mut [S], &mut [S]) {
        assert!(j0 != j1 && j0 < self.ncols && j1 < self.ncols);
        let n = self.nrows;
        if j0 < j1 {
            let (a, b) = self.data.split_at_mut(j1 * n);
            (&mut a[j0 * n..j0 * n + n], &mut b[..n])
        } else {
            let (a, b) = self.data.split_at_mut(j0 * n);
            (&mut b[..n], &mut a[j1 * n..j1 * n + n])
        }
    }

    /// Fill with a constant.
    pub fn fill(&mut self, v: S) {
        self.data.iter_mut().for_each(|x| *x = v);
    }

    /// Set all entries to zero.
    pub fn set_zero(&mut self) {
        self.fill(S::zero());
    }

    /// Copy entries from `other` (same shape required).
    pub fn copy_from(&mut self, other: &Self) {
        assert_eq!((self.nrows, self.ncols), (other.nrows, other.ncols));
        self.data.copy_from_slice(&other.data);
    }

    /// Contiguous sub-block copy: `self[r0.., c0..] ⟵ block`.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Self) {
        assert!(r0 + block.nrows <= self.nrows && c0 + block.ncols <= self.ncols);
        for j in 0..block.ncols {
            let src = block.col(j);
            let dst = &mut self.col_mut(c0 + j)[r0..r0 + block.nrows];
            dst.copy_from_slice(src);
        }
    }

    /// Extract the sub-block `self[r0..r0+nr, c0..c0+nc]` as a new matrix.
    pub fn block(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> Self {
        assert!(r0 + nr <= self.nrows && c0 + nc <= self.ncols);
        Self::from_fn(nr, nc, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Columns `c0..c0+nc` as a new matrix (cheap memcpy per column).
    pub fn cols(&self, c0: usize, nc: usize) -> Self {
        assert!(c0 + nc <= self.ncols);
        let data = self.data[c0 * self.nrows..(c0 + nc) * self.nrows].to_vec();
        Self::from_col_major(self.nrows, nc, data)
    }

    /// Append the columns of `other` on the right.
    pub fn hcat(&self, other: &Self) -> Self {
        assert_eq!(self.nrows, other.nrows);
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Self::from_col_major(self.nrows, self.ncols + other.ncols, data)
    }

    /// (Conjugate) transpose.
    pub fn adjoint(&self) -> Self {
        Self::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)].conj())
    }

    /// Plain transpose (no conjugation).
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)])
    }

    /// In-place scaling: `self ⟵ α·self`.
    pub fn scale(&mut self, alpha: S) {
        self.data.iter_mut().for_each(|x| *x *= alpha);
    }

    /// Scale column `j` by `alpha`.
    pub fn scale_col(&mut self, j: usize, alpha: S) {
        self.col_mut(j).iter_mut().for_each(|x| *x *= alpha);
    }

    /// `self ⟵ self + α·other` (same shape).
    pub fn axpy(&mut self, alpha: S, other: &Self) {
        assert_eq!((self.nrows, self.ncols), (other.nrows, other.ncols));
        for (x, y) in self.data.iter_mut().zip(&other.data) {
            *x += alpha * *y;
        }
    }

    /// Euclidean norm of column `j`.
    pub fn col_norm(&self, j: usize) -> S::Real {
        let mut acc = <S::Real as kryst_scalar::Real>::zero();
        for &x in self.col(j) {
            acc += x.abs_sqr();
        }
        kryst_scalar::Real::sqrt(acc)
    }

    /// Euclidean norms of every column.
    pub fn col_norms(&self) -> Vec<S::Real> {
        (0..self.ncols).map(|j| self.col_norm(j)).collect()
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> S::Real {
        let mut acc = <S::Real as kryst_scalar::Real>::zero();
        for &x in &self.data {
            acc += x.abs_sqr();
        }
        kryst_scalar::Real::sqrt(acc)
    }

    /// Inner product of columns: `conj(self[:,i]) · other[:,j]`.
    pub fn col_dot(&self, i: usize, other: &Self, j: usize) -> S {
        assert_eq!(self.nrows, other.nrows);
        let a = self.col(i);
        let b = other.col(j);
        let mut acc = S::zero();
        for (&x, &y) in a.iter().zip(b) {
            acc += x.conj() * y;
        }
        acc
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> S::Real {
        let mut m = <S::Real as kryst_scalar::Real>::zero();
        for &x in &self.data {
            m = kryst_scalar::Real::max(m, x.abs());
        }
        m
    }

    /// Swap two columns in place.
    pub fn swap_cols(&mut self, j0: usize, j1: usize) {
        if j0 == j1 {
            return;
        }
        let (a, b) = self.two_cols_mut(j0, j1);
        a.swap_with_slice(b);
    }

    /// Swap two rows in place.
    pub fn swap_rows(&mut self, i0: usize, i1: usize) {
        if i0 == i1 {
            return;
        }
        for j in 0..self.ncols {
            let base = j * self.nrows;
            self.data.swap(base + i0, base + i1);
        }
    }
}

impl<S: Scalar> std::ops::Index<(usize, usize)> for DMat<S> {
    type Output = S;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &S {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[j * self.nrows + i]
    }
}

impl<S: Scalar> std::ops::IndexMut<(usize, usize)> for DMat<S> {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut S {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[j * self.nrows + i]
    }
}

impl<S: Scalar> fmt::Debug for DMat<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DMat {}x{} [", self.nrows, self.ncols)?;
        let rmax = self.nrows.min(8);
        let cmax = self.ncols.min(8);
        for i in 0..rmax {
            write!(f, "  ")?;
            for j in 0..cmax {
                write!(f, "{:?} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if cmax < self.ncols { "…" } else { "" })?;
        }
        if rmax < self.nrows {
            writeln!(f, "  ⋮")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_column_major() {
        let m = DMat::<f64>::from_col_major(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m[(0, 0)], 1.);
        assert_eq!(m[(1, 0)], 2.);
        assert_eq!(m[(0, 1)], 3.);
        assert_eq!(m[(1, 2)], 6.);
        assert_eq!(m.col(1), &[3., 4.]);
    }

    #[test]
    fn block_and_set_block_roundtrip() {
        let m = DMat::<f64>::from_fn(5, 5, |i, j| (i * 10 + j) as f64);
        let b = m.block(1, 2, 3, 2);
        assert_eq!(b[(0, 0)], 12.0);
        assert_eq!(b[(2, 1)], 33.0);
        let mut z = DMat::<f64>::zeros(5, 5);
        z.set_block(1, 2, &b);
        assert_eq!(z[(1, 2)], 12.0);
        assert_eq!(z[(3, 3)], 33.0);
        assert_eq!(z[(0, 0)], 0.0);
    }

    #[test]
    fn adjoint_conjugates() {
        use kryst_scalar::C64;
        let m = DMat::<C64>::from_fn(2, 3, |i, j| C64::from_parts(i as f64, j as f64));
        let a = m.adjoint();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a[(2, 1)], C64::from_parts(1.0, -2.0));
    }

    #[test]
    fn norms_and_dots() {
        let m = DMat::<f64>::from_col_major(3, 2, vec![3., 4., 0., 1., 1., 1.]);
        assert!((m.col_norm(0) - 5.0).abs() < 1e-15);
        assert!((m.col_norm(1) - 3f64.sqrt()).abs() < 1e-15);
        assert!((m.col_dot(0, &m, 1) - 7.0).abs() < 1e-15);
        assert!((m.fro_norm() - 28f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn swap_rows_cols() {
        let mut m = DMat::<f64>::from_fn(3, 3, |i, j| (3 * i + j) as f64);
        m.swap_rows(0, 2);
        assert_eq!(m[(0, 0)], 6.0);
        m.swap_cols(0, 1);
        assert_eq!(m[(0, 0)], 7.0);
    }

    #[test]
    fn hcat_concatenates() {
        let a = DMat::<f64>::from_fn(2, 1, |i, _| i as f64);
        let b = DMat::<f64>::from_fn(2, 2, |i, j| (10 + i + j) as f64);
        let c = a.hcat(&b);
        assert_eq!(c.ncols(), 3);
        assert_eq!(c[(1, 0)], 1.0);
        assert_eq!(c[(0, 2)], 11.0);
    }
}
