//! Cholesky factorization and CholQR orthogonalization.
//!
//! The paper (§III-A) uses **CholQR** to orthogonalize blocks of `p·k`
//! vectors in a single global reduction: form the Gram matrix `G = VᴴV`
//! (one all-reduce in the distributed setting), factor `G = RᴴR` redundantly
//! on every process, and scale `Q = V·R⁻¹`. The **rank-revealing** variant
//! (pivoted Cholesky with a drop tolerance) is what §V-C uses "for detecting
//! breakdowns at each restart" of the block methods.

use crate::blas;
use crate::tri;
use crate::DMat;
use kryst_scalar::{Real, Scalar};

/// Plain (unpivoted) Cholesky `A = RᴴR` of a Hermitian positive-definite
/// matrix; returns the upper-triangular `R`, or `None` if a non-positive
/// pivot is met.
pub fn cholesky<S: Scalar>(a: &DMat<S>) -> Option<DMat<S>> {
    let n = a.nrows();
    assert_eq!(n, a.ncols());
    let mut r: DMat<S> = DMat::zeros(n, n);
    for j in 0..n {
        // Diagonal entry.
        let mut d = a[(j, j)].re();
        for k in 0..j {
            d -= r[(k, j)].abs_sqr();
        }
        if d <= S::Real::zero() || !d.is_finite() {
            return None;
        }
        let rjj = d.sqrt();
        r[(j, j)] = S::from_real(rjj);
        // Off-diagonal row j of R.
        for i in j + 1..n {
            let mut v = a[(j, i)];
            for k in 0..j {
                v -= r[(k, j)].conj() * r[(k, i)];
            }
            r[(j, i)] = v / S::from_real(rjj);
        }
    }
    Some(r)
}

/// Result of a pivoted (rank-revealing) Cholesky factorization.
pub struct PivotedCholesky<S> {
    /// Upper-triangular factor of the permuted matrix: `Pᵀ·A·P = RᴴR`.
    pub r: DMat<S>,
    /// Column permutation: `perm[k]` is the original index of pivot `k`.
    pub perm: Vec<usize>,
    /// Numerical rank detected with the relative drop tolerance.
    pub rank: usize,
}

/// Pivoted Cholesky with diagonal pivoting; stops when the largest remaining
/// diagonal falls below `tol · max_initial_diagonal`.
pub fn pivoted_cholesky<S: Scalar>(a: &DMat<S>, tol: S::Real) -> PivotedCholesky<S> {
    let n = a.nrows();
    assert_eq!(n, a.ncols());
    let mut work = a.clone();
    let mut r = DMat::zeros(n, n);
    let mut perm: Vec<usize> = (0..n).collect();
    let mut diag_max = S::Real::zero();
    for i in 0..n {
        diag_max = diag_max.max(work[(i, i)].re());
    }
    let threshold = diag_max * tol;
    let mut rank = 0;
    for k in 0..n {
        // Find the pivot: largest remaining diagonal.
        let mut best = k;
        let mut best_val = work[(k, k)].re();
        for i in k + 1..n {
            let v = work[(i, i)].re();
            if v > best_val {
                best = i;
                best_val = v;
            }
        }
        if best_val <= threshold || !best_val.is_finite() {
            break;
        }
        // Symmetric permutation of `work` and the computed rows of `r`.
        if best != k {
            work.swap_rows(k, best);
            work.swap_cols(k, best);
            r.swap_cols(k, best);
            perm.swap(k, best);
        }
        let rkk = best_val.sqrt();
        r[(k, k)] = S::from_real(rkk);
        for j in k + 1..n {
            r[(k, j)] = work[(k, j)] / S::from_real(rkk);
        }
        // Rank-1 downdate of the trailing block.
        for j in k + 1..n {
            for i in k + 1..=j {
                let upd = r[(k, i)].conj() * r[(k, j)];
                let v = work[(i, j)] - upd;
                work[(i, j)] = v;
                if i != j {
                    work[(j, i)] = v.conj();
                }
            }
        }
        rank = k + 1;
    }
    PivotedCholesky { r, perm, rank }
}

/// Outcome of a CholQR orthogonalization.
pub struct CholQr<S: Scalar> {
    /// Upper-triangular factor with `V = Q·R`.
    pub r: DMat<S>,
    /// Numerical rank of the block (equal to `ncols` when no breakdown).
    pub rank: usize,
    /// Smallest/largest diagonal ratio seen — a cheap conditioning estimate.
    pub cond_estimate: S::Real,
}

/// CholQR: orthogonalize the columns of `v` in place.
///
/// One Gram-matrix product (a single reduction in the distributed setting,
/// cf. §III-D), one redundant Cholesky, one triangular right-solve. If the
/// Gram matrix is not numerically positive definite the factorization falls
/// back to the **rank-revealing** pivoted variant and the near-dependent
/// columns are replaced by re-orthogonalized unit vectors, mirroring the
/// paper's breakdown detection.
pub fn cholqr<S: Scalar>(v: &mut DMat<S>) -> CholQr<S> {
    cholqr_within(v, &[])
}

/// [`cholqr`] with replacement columns kept orthogonal to external bases.
///
/// On the breakdown path the deficient columns are replaced by
/// re-orthogonalized canonical directions; each `(block, ncols)` pair in
/// `ext` names an orthonormal block the replacements must ALSO be
/// orthogonal to (the recycled space `C` and the Arnoldi basis `V`). The
/// fused communication-avoiding path needs this: its Gram downdate assumes
/// every basis column is orthogonal to `C` and the earlier `V` columns, an
/// invariant a plain canonical-vector fixup silently breaks. With `ext`
/// empty this is exactly [`cholqr`]; the well-conditioned fast path never
/// looks at `ext` at all.
pub fn cholqr_within<S: Scalar>(v: &mut DMat<S>, ext: &[(&DMat<S>, usize)]) -> CholQr<S> {
    let p = v.ncols();
    let gram = blas::adjoint_times(v, v);
    if let Some(r) = cholesky(&gram) {
        let mut dmin = S::Real::max_value();
        let mut dmax = S::Real::zero();
        for j in 0..p {
            let d = r[(j, j)].re();
            dmin = dmin.min(d);
            dmax = dmax.max(d);
        }
        // Well-conditioned: accept the plain factorization. The margin sits
        // well above the √eps-level diagonal a rounded-to-positive singular
        // Gram produces, so exact rank deficiency always takes the
        // rank-revealing path instead of flipping a coin on rounding noise.
        let eps_cut = S::Real::epsilon().sqrt() * S::Real::from_f64(32.0);
        if dmax > S::Real::zero() && dmin > dmax * eps_cut {
            tri::right_solve_upper(v, &r);
            return CholQr {
                r,
                rank: p,
                cond_estimate: dmin / dmax,
            };
        }
    }
    // Breakdown path: rank-revealing factorization of the Gram matrix.
    let piv = pivoted_cholesky(&gram, S::Real::epsilon() * S::Real::from_f64(256.0));
    rank_revealing_fixup(v, piv, ext)
}

/// Apply the pivoted-Cholesky factor to produce an orthonormal `Q` spanning
/// the numerical range, with deficient columns replaced (re-orthogonalized
/// canonical directions) so downstream code always sees a full block.
fn rank_revealing_fixup<S: Scalar>(
    v: &mut DMat<S>,
    piv: PivotedCholesky<S>,
    ext: &[(&DMat<S>, usize)],
) -> CholQr<S> {
    let p = v.ncols();
    let rank = piv.rank.max(1).min(p);
    // Permute columns of V to pivot order, solve against the leading rank×rank R.
    let mut vp = DMat::zeros(v.nrows(), p);
    for k in 0..p {
        vp.col_mut(k).copy_from_slice(v.col(piv.perm[k]));
    }
    let r_lead = piv.r.block(0, 0, rank, rank);
    let mut q_lead = vp.cols(0, rank);
    tri::right_solve_upper(&mut q_lead, &r_lead);
    // Deficient trailing columns: replace with canonical vectors
    // orthogonalized against the leading block (two MGS passes).
    for k in rank..p {
        let n = v.nrows();
        let mut e = vec![S::zero(); n];
        e[k % n] = S::one();
        // Orthogonalize against everything accumulated so far — external
        // bases (recycled space / Arnoldi basis), the leading range AND
        // earlier replacement columns. The replacements multiply zero rows
        // of R, so reshaping them never perturbs the factorization V = Q·R.
        for _pass in 0..2 {
            for (m, nc) in ext {
                for j in 0..*nc {
                    let mj = m.col(j);
                    let mut dot = S::zero();
                    for (qi, ei) in mj.iter().zip(e.iter()) {
                        dot += qi.conj() * *ei;
                    }
                    for (qi, ei) in mj.iter().zip(e.iter_mut()) {
                        *ei -= dot * *qi;
                    }
                }
            }
            for j in 0..q_lead.ncols() {
                let qj = q_lead.col(j);
                let mut dot = S::zero();
                for (qi, ei) in qj.iter().zip(e.iter()) {
                    dot += qi.conj() * *ei;
                }
                for (qi, ei) in qj.iter().zip(e.iter_mut()) {
                    *ei -= dot * *qi;
                }
            }
        }
        let mut nrm = S::Real::zero();
        for x in &e {
            nrm += x.abs_sqr();
        }
        let nrm = nrm.sqrt();
        let inv = S::one() / S::from_real(nrm);
        for x in &mut e {
            *x *= inv;
        }
        q_lead = q_lead.hcat(&DMat::from_vec(e));
    }
    // Store Q in pivot order: with R_orig = R_piv · Pᵀ below, the identity
    // V[:, perm[k]] = Q · R_orig[:, perm[k]] = Q_lead · R_piv[:, k] only
    // holds when column k of Q is q_lead[:, k] — scattering Q back through
    // the permutation while leaving the R rows unpermuted would break
    // V = Q·R for any nontrivial pivoting.
    for k in 0..p {
        v.col_mut(k).copy_from_slice(q_lead.col(k));
    }
    // R = R_piv · Pᵀ restricted to the leading rank rows (upper triangular
    // up to the column permutation).
    let mut r = DMat::zeros(p, p);
    for k in 0..p {
        for i in 0..rank.min(k + 1) {
            r[(i, piv.perm[k])] = piv.r[(i, k)];
        }
    }
    CholQr {
        r,
        rank,
        cond_estimate: S::Real::zero(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{matmul, Op};
    use kryst_scalar::C64;

    #[test]
    fn cholesky_reconstructs() {
        // SPD matrix: B + n·I with B = MᴴM.
        let m = DMat::<f64>::from_fn(5, 5, |i, j| ((i * 3 + j) % 7) as f64 - 3.0);
        let mut a = matmul(&m, Op::ConjTrans, &m, Op::None);
        for i in 0..5 {
            a[(i, i)] += 5.0;
        }
        let r = cholesky(&a).expect("SPD");
        let rtr = matmul(&r, Op::ConjTrans, &r, Op::None);
        for i in 0..5 {
            for j in 0..5 {
                assert!((rtr[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut a = DMat::<f64>::eye(3);
        a[(2, 2)] = -1.0;
        assert!(cholesky(&a).is_none());
    }

    #[test]
    fn cholqr_orthogonalizes_well_conditioned_block() {
        let mut v = DMat::<f64>::from_fn(40, 4, |i, j| {
            ((i * 17 + j * 5) % 13) as f64 - 6.0 + if i == j { 20.0 } else { 0.0 }
        });
        let orig = v.clone();
        let out = cholqr(&mut v);
        assert_eq!(out.rank, 4);
        let g = matmul(&v, Op::ConjTrans, &v, Op::None);
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (g[(i, j)] - expect).abs() < 1e-10,
                    "Gram ({i},{j}) = {}",
                    g[(i, j)]
                );
            }
        }
        // V = Q·R
        let qr = matmul(&v, Op::None, &out.r, Op::None);
        for i in 0..40 {
            for j in 0..4 {
                assert!((qr[(i, j)] - orig[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn cholqr_complex() {
        let mut v = DMat::<C64>::from_fn(30, 3, |i, j| {
            C64::from_parts(((i + j * 7) % 11) as f64 - 5.0, ((i * 3 + j) % 5) as f64)
        });
        let out = cholqr(&mut v);
        assert_eq!(out.rank, 3);
        let g = matmul(&v, Op::ConjTrans, &v, Op::None);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((g[(i, j)].re() - expect).abs() < 1e-10);
                assert!(g[(i, j)].im().abs() < 1e-10);
            }
        }
    }

    #[test]
    fn cholqr_detects_rank_deficiency() {
        // Two identical columns → rank 2 of 3.
        let mut v = DMat::<f64>::from_fn(20, 3, |i, j| match j {
            0 => (i as f64).sin(),
            1 => (i as f64).cos(),
            _ => (i as f64).sin(), // duplicate of column 0
        });
        let out = cholqr(&mut v);
        assert_eq!(out.rank, 2, "duplicate column must be detected");
        // Output block is still orthonormal.
        let g = matmul(&v, Op::ConjTrans, &v, Op::None);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (g[(i, j)] - expect).abs() < 1e-8,
                    "Gram ({i},{j}) = {}",
                    g[(i, j)]
                );
            }
        }
    }

    #[test]
    fn pivoted_cholesky_rank() {
        // Gram matrix of rank 2.
        let b = DMat::<f64>::from_fn(6, 2, |i, j| {
            (i + j + 1) as f64 * if j == 0 { 1.0 } else { -0.3 }
        });
        let v = matmul(&b, Op::None, &b.transpose(), Op::None); // 6×6 rank ≤ 2
        let piv = pivoted_cholesky(&v, 1e-12);
        assert_eq!(piv.rank, 2);
    }
}
