//! Dense LU factorization with partial pivoting.
//!
//! Used by the eigensolver (reduction of the generalized problem `T·z = θ·W·z`
//! to standard form via `W⁻¹T`, cf. the paper's eq. (3)) and by small exact
//! solves in tests. Works for real and complex scalars.

use crate::tri;
use crate::DMat;
use kryst_scalar::{Real, Scalar};

/// Compact LU factorization `P·A = L·U` with partial (row) pivoting.
pub struct Lu<S> {
    /// `L` (unit lower, below diagonal) and `U` (upper) packed together.
    lu: DMat<S>,
    /// Row permutation: row `i` of the factored matrix came from `piv[i]`.
    piv: Vec<usize>,
    /// Sign bookkeeping (even/odd permutation) — kept for determinant use.
    nswaps: usize,
    singular: bool,
}

impl<S: Scalar> Lu<S> {
    /// Factor `a` (consumed). Never panics on singularity; check
    /// [`Lu::is_singular`] before solving.
    pub fn factor(mut a: DMat<S>) -> Self {
        let _t = kryst_obs::profile(kryst_obs::Phase::SmallDense);
        let n = a.nrows();
        assert_eq!(n, a.ncols(), "LU requires a square matrix");
        let mut piv: Vec<usize> = (0..n).collect();
        let mut nswaps = 0;
        let mut singular = false;
        for k in 0..n {
            // Pivot search in column k.
            let mut pk = k;
            let mut pmax = a[(k, k)].abs();
            for i in k + 1..n {
                let v = a[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    pk = i;
                }
            }
            if pmax == S::Real::zero() || !pmax.is_finite() {
                singular = true;
                continue;
            }
            if pk != k {
                a.swap_rows(k, pk);
                piv.swap(k, pk);
                nswaps += 1;
            }
            let inv = S::one() / a[(k, k)];
            for i in k + 1..n {
                let lik = a[(i, k)] * inv;
                a[(i, k)] = lik;
                if lik == S::zero() {
                    continue;
                }
                for j in k + 1..n {
                    let u = a[(k, j)];
                    a[(i, j)] -= lik * u;
                }
            }
        }
        Self {
            lu: a,
            piv,
            nswaps,
            singular,
        }
    }

    /// Whether a zero pivot was met.
    pub fn is_singular(&self) -> bool {
        self.singular
    }

    /// Number of row swaps (parity of the permutation).
    pub fn swap_count(&self) -> usize {
        self.nswaps
    }

    /// `(min, max)` absolute pivot magnitudes — a cheap conditioning probe.
    pub fn pivot_range(&self) -> (S::Real, S::Real) {
        let n = self.lu.nrows();
        let mut lo = S::Real::max_value();
        let mut hi = S::Real::zero();
        for i in 0..n {
            let v = self.lu[(i, i)].abs();
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Solve `A·X = B` for all columns of `b`, in place.
    pub fn solve_in_place(&self, b: &mut DMat<S>) {
        assert!(!self.singular, "LU solve on a singular factorization");
        let n = self.lu.nrows();
        assert_eq!(b.nrows(), n);
        // Apply the permutation.
        let mut permuted = DMat::zeros(n, b.ncols());
        for i in 0..n {
            for j in 0..b.ncols() {
                permuted[(i, j)] = b[(self.piv[i], j)];
            }
        }
        tri::solve_lower_in_place(&self.lu, n, true, &mut permuted);
        tri::solve_upper_in_place(&self.lu, n, &mut permuted);
        b.copy_from(&permuted);
    }

    /// Solve and return a fresh matrix.
    pub fn solve(&self, b: &DMat<S>) -> DMat<S> {
        let mut x = b.clone();
        self.solve_in_place(&mut x);
        x
    }
}

/// Convenience: solve `A·X = B` in one call (factors `A` internally).
/// Returns `None` when `A` is numerically singular.
pub fn solve<S: Scalar>(a: &DMat<S>, b: &DMat<S>) -> Option<DMat<S>> {
    let f = Lu::factor(a.clone());
    if f.is_singular() {
        None
    } else {
        Some(f.solve(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{matmul, Op};
    use kryst_scalar::C64;

    #[test]
    fn lu_solves_real() {
        let a = DMat::<f64>::from_fn(6, 6, |i, j| {
            ((i * 7 + j * 5) % 11) as f64 - 5.0 + if i == j { 12.0 } else { 0.0 }
        });
        let x_true = DMat::<f64>::from_fn(6, 2, |i, j| (i as f64) - 2.0 * (j as f64));
        let b = matmul(&a, Op::None, &x_true, Op::None);
        let x = solve(&a, &b).expect("nonsingular");
        for i in 0..6 {
            for j in 0..2 {
                assert!((x[(i, j)] - x_true[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn lu_solves_complex() {
        let a = DMat::<C64>::from_fn(5, 5, |i, j| {
            C64::from_parts(
                ((i * 3 + j) % 7) as f64 - 3.0 + if i == j { 8.0 } else { 0.0 },
                ((i + j * 2) % 5) as f64 - 2.0,
            )
        });
        let x_true = DMat::<C64>::from_fn(5, 1, |i, _| C64::from_parts(i as f64, -1.0));
        let b = matmul(&a, Op::None, &x_true, Op::None);
        let x = solve(&a, &b).expect("nonsingular");
        for i in 0..5 {
            assert!((x[(i, 0)] - x_true[(i, 0)]).abs() < 1e-10);
        }
    }

    #[test]
    fn lu_detects_singularity() {
        let a = DMat::<f64>::from_fn(4, 4, |i, _| i as f64); // rank 1
        let f = Lu::factor(a);
        assert!(f.is_singular());
        assert!(solve(&DMat::<f64>::zeros(3, 3), &DMat::zeros(3, 1)).is_none());
    }

    #[test]
    fn lu_pivots_on_zero_diagonal() {
        // Requires pivoting: a[0][0] = 0.
        let a = DMat::<f64>::from_col_major(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let b = DMat::<f64>::from_col_major(2, 1, vec![2.0, 3.0]);
        let x = solve(&a, &b).unwrap();
        // [[0,1],[1,0]] x = b → x = [3, 2]
        assert!((x[(0, 0)] - 3.0).abs() < 1e-14);
        assert!((x[(1, 0)] - 2.0).abs() < 1e-14);
    }
}
