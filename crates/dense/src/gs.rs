//! Gram–Schmidt orthogonalization schemes.
//!
//! The Arnoldi step of every solver in `kryst-core` orthogonalizes the new
//! candidate block `W` against the existing basis `V` and then within itself.
//! The paper's §III-D counts the *global reductions* of each scheme, which is
//! why several are provided:
//!
//! * **Classical (CGS)** — one fused projection (`VᴴW` in one reduction) but
//!   less stable,
//! * **Modified (MGS)** — one reduction *per basis column*, the stable
//!   textbook choice,
//! * **Iterated Modified (IMGS)** — Belos' default: MGS repeated until the
//!   norm stops dropping (here: a fixed two passes, the standard
//!   "twice-is-enough" criterion),
//! * **CholQR** for the intra-block step (see [`crate::chol`]).

use crate::blas::{self, Op};
use crate::chol;
use crate::fused::{self, ColsRef};
use crate::tri;
use crate::DMat;
use kryst_scalar::{Real, Scalar};

/// Which orthogonalization scheme the solvers use.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum OrthScheme {
    /// Classical Gram–Schmidt (single fused reduction), re-orthogonalized once.
    Cgs,
    /// Modified Gram–Schmidt.
    Mgs,
    /// Iterated (two-pass) modified Gram–Schmidt — Belos' default.
    Imgs,
    /// Cholesky-QR for the intra-block factorization (paper's choice).
    CholQr,
}

impl OrthScheme {
    /// Stable lowercase name used in solver traces.
    pub fn name(self) -> &'static str {
        match self {
            OrthScheme::Cgs => "cgs",
            OrthScheme::Mgs => "mgs",
            OrthScheme::Imgs => "imgs",
            OrthScheme::CholQr => "cholqr",
        }
    }
}

/// Projection coefficients produced by [`orthogonalize_block`]: the new block
/// satisfies `W_orig = V·C + Q·R` with `Q` the orthonormalized output block.
pub struct BlockOrth<S: Scalar> {
    /// Coefficients against the existing basis (`V.ncols() × p`).
    pub coeffs: DMat<S>,
    /// Intra-block triangular factor (`p × p`).
    pub r: DMat<S>,
    /// Numerical rank of the block after projection.
    pub rank: usize,
    /// Number of global reductions this call would cost in a distributed run.
    pub reductions: usize,
    /// Total scalar elements those reductions carry (§III-D byte accounting):
    /// the sum over every reduced product of its element count.
    pub reduction_elems: usize,
}

/// Orthogonalize `w` (n×p) against the first `ncols` columns of `v` (n×·) and
/// then orthonormalize it internally, returning the projection coefficients.
///
/// `v` may be wider than `ncols`; only the leading columns are used, which
/// lets callers keep one pre-allocated basis for a whole restart cycle.
pub fn orthogonalize_block<S: Scalar>(
    v: &DMat<S>,
    ncols: usize,
    w: &mut DMat<S>,
    scheme: OrthScheme,
) -> BlockOrth<S> {
    let _t = kryst_obs::profile(kryst_obs::Phase::OrthGram);
    assert!(ncols <= v.ncols());
    assert_eq!(v.nrows(), w.nrows());
    let p = w.ncols();
    let mut coeffs = DMat::zeros(ncols, p);
    let mut reductions = 0;
    let mut elems = 0;

    match scheme {
        OrthScheme::Cgs => {
            for _pass in 0..2 {
                if ncols > 0 {
                    let vlead = v.cols(0, ncols);
                    let c = blas::adjoint_times(&vlead, w); // one fused reduction
                    reductions += 1;
                    elems += ncols * p;
                    blas::gemm(-S::one(), &vlead, Op::None, &c, Op::None, S::one(), w);
                    coeffs.axpy(S::one(), &c);
                }
            }
        }
        OrthScheme::Mgs | OrthScheme::Imgs => {
            let passes = if scheme == OrthScheme::Imgs { 2 } else { 1 };
            for _pass in 0..passes {
                for j in 0..ncols {
                    let vj = v.col(j).to_vec();
                    for l in 0..p {
                        let wl = w.col_mut(l);
                        let mut dot = S::zero();
                        for (a, b) in vj.iter().zip(wl.iter()) {
                            dot += a.conj() * *b;
                        }
                        for (a, b) in vj.iter().zip(wl.iter_mut()) {
                            *b -= dot * *a;
                        }
                        coeffs[(j, l)] += dot;
                    }
                    reductions += 1; // one reduction per basis column (dots fused over l)
                    elems += p;
                }
            }
        }
        OrthScheme::CholQr => {
            // Projection uses one CGS pass (fused), repeated twice for stability.
            for _pass in 0..2 {
                if ncols > 0 {
                    let vlead = v.cols(0, ncols);
                    let c = blas::adjoint_times(&vlead, w);
                    reductions += 1;
                    elems += ncols * p;
                    blas::gemm(-S::one(), &vlead, Op::None, &c, Op::None, S::one(), w);
                    coeffs.axpy(S::one(), &c);
                }
            }
        }
    }

    // Intra-block orthonormalization.
    let (r, rank, intra_reductions, intra_elems) = match scheme {
        OrthScheme::CholQr | OrthScheme::Cgs => {
            let out = chol::cholqr(w);
            (out.r, out.rank, 1, p * p)
        }
        OrthScheme::Mgs | OrthScheme::Imgs => {
            let mut r = DMat::zeros(p, p);
            let mut rank = p;
            let mut reds = 0;
            for l in 0..p {
                // Project against the already-normalized columns of w.
                for j in 0..l {
                    let dot = w.col_dot(j, w, l);
                    let (dst, src) = w.two_cols_mut(l, j);
                    for (d, s) in dst.iter_mut().zip(src.iter()) {
                        *d -= dot * *s;
                    }
                    r[(j, l)] = dot;
                    reds += 1;
                }
                let nrm = w.col_norm(l);
                reds += 1;
                if nrm <= S::Real::epsilon() {
                    rank = rank.min(l);
                    r[(l, l)] = S::zero();
                } else {
                    r[(l, l)] = S::from_real(nrm);
                    w.scale_col(l, S::one() / S::from_real(nrm));
                }
            }
            // Each intra reduction carries a single scalar (one dot or norm).
            (r, rank, reds, reds)
        }
    };

    BlockOrth {
        coeffs,
        r,
        rank,
        reductions: reductions + intra_reductions,
        reduction_elems: elems + intra_elems,
    }
}

/// Projection coefficients produced by [`fused_orthogonalize_block`]: the new
/// block satisfies `W_orig = C·Cc + V·Cv + Q·R` with `Q` the orthonormalized
/// output block (the `C` term only when a recycle projector was supplied).
pub struct FusedOrth<S: Scalar> {
    /// Coefficients against the recycle projector `C` (`C.ncols() × p`),
    /// present iff a projector was supplied.
    pub c_coeffs: Option<DMat<S>>,
    /// Coefficients against the existing basis (`ncols × p`).
    pub coeffs: DMat<S>,
    /// Intra-block triangular factor (`p × p`).
    pub r: DMat<S>,
    /// Numerical rank of the block after projection.
    pub rank: usize,
    /// Number of global reductions this call would cost in a distributed run.
    pub reductions: usize,
    /// Number of logically separate products batched into those reductions
    /// (`CᴴW`, `VᴴW`, `WᴴW` count as three parts of one fused reduction).
    pub reduction_parts: usize,
    /// Total scalar elements the reductions carry.
    pub reduction_elems: usize,
    /// Fused passes performed (1, or 2 when re-orthogonalization triggered).
    pub passes: usize,
    /// Whether the Cholesky of the downdated Gram was rejected and a full
    /// CholQR refresh (one genuine extra reduction) ran instead.
    pub refreshed: bool,
    /// Cancellation amplification of the first pass: `max_l √(g_ll/g'_ll)`,
    /// clamped to ≥ 1. A single-pass step amplifies whatever mutual
    /// non-orthogonality the basis already carries by about this factor
    /// *squared* (projection residue × normalization scaling), so callers
    /// chain `amp²` into a running loss estimate (see
    /// [`fused_orthogonalize_block`]'s `loss` parameter).
    pub amp: f64,
}

/// Low-synchronization block orthogonalization: one **fused** reduction per
/// pass computes `[CᴴW; VᴴW; WᴴW]` together, the projection is applied, and
/// the intra-block factor comes from a *Gram downdate* instead of a fresh
/// product — `W'ᴴW' = WᴴW − SᴄᴴSᴄ − SᵥᴴSᵥ` exactly when `C` and `V` are
/// orthonormal with `C ⟂ V` — so the CholQR step costs **zero** extra
/// reductions. This is the paper's §III-D latency argument turned into code:
/// one reduction per iteration (two with re-orthogonalization) versus the
/// classic `j+2`-style accumulation of separate products.
///
/// A second fused pass runs when `reorth` is set, or adaptively. Two distinct
/// hazards drive the adaptive trigger:
///
/// * **Downdate accuracy** — the downdate's absolute error is O(ε·g), so if
///   only a fraction `t < ε^(1/4)` of a column's squared mass survives the
///   projection, the free CholQR factor would carry a relative error above
///   ~ε^(3/4);
/// * **Accumulated orthogonality loss** — a single-pass projection against a
///   basis with mutual non-orthogonality `loss` leaves a residue of about
///   `loss · amp` in the new vector (`amp = max √(g/g')`, the pass's
///   cancellation factor), and normalizing the cancelled column scales that
///   residue up by another factor `amp` — so each single-pass step multiplies
///   the basis loss by `amp²` (observable empirically: the measured
///   `‖VᴴV − I‖` tracks `ε·∏ ampⱼ²` step for step). The caller threads its
///   running estimate in through `loss` (start a fresh orthonormal basis at
///   machine ε, multiply by `amp²` after every single-pass step); once
///   `loss · amp²` would exceed ~ε^(5/8) the second pass fires and the
///   estimate stops growing. This is what keeps long single-pass streaks
///   from silently compounding — per-step cancellation can look harmless
///   while the product over a cycle climbs into the solver's tolerance.
///
/// If the downdated Gram is not safely positive definite the routine falls
/// back to a full [`chol::cholqr`] refresh — one genuine extra reduction,
/// flagged in [`FusedOrth::refreshed`].
pub fn fused_orthogonalize_block<S: Scalar>(
    c: Option<&DMat<S>>,
    v: &DMat<S>,
    ncols: usize,
    w: &mut DMat<S>,
    reorth: bool,
    loss: f64,
) -> FusedOrth<S> {
    let _t = kryst_obs::profile(kryst_obs::Phase::OrthGram);
    assert!(ncols <= v.ncols());
    assert_eq!(v.nrows(), w.nrows());
    let p = w.ncols();
    let kc = c.map_or(0, |m| m.ncols());
    if let Some(cm) = c {
        assert_eq!(cm.nrows(), w.nrows());
    }
    let mut coeffs = DMat::zeros(ncols, p);
    let mut c_coeffs = c.map(|_| DMat::zeros(kc, p));
    let mut reductions = 0usize;
    let mut parts = 0usize;
    let mut elems = 0usize;
    let mut passes = 0usize;
    let mut amp = 1.0f64;
    let mut gdown;

    loop {
        passes += 1;
        // One fused product: [CᴴW; VᴴW; WᴴW] in a single sweep/reduction.
        let s = {
            let mut blocks: Vec<ColsRef<'_, S>> = Vec::with_capacity(3);
            if let Some(cm) = c {
                blocks.push(ColsRef::whole(cm));
            }
            if ncols > 0 {
                blocks.push(ColsRef::leading(v, ncols));
            }
            blocks.push(ColsRef::whole(w));
            fused::fused_gram(&blocks, w)
        };
        reductions += 1;
        parts += 1 + usize::from(ncols > 0) + usize::from(kc > 0);
        elems += (kc + ncols + p) * p;

        let sc = s.block(0, 0, kc, p);
        let sv = s.block(kc, 0, ncols, p);
        let g = s.block(kc + ncols, 0, p, p);

        // Projection update W ⟵ W − C·Sᴄ − V·Sᵥ in one fused sweep.
        {
            let mut blocks: Vec<ColsRef<'_, S>> = Vec::with_capacity(2);
            let mut cs: Vec<&DMat<S>> = Vec::with_capacity(2);
            if let Some(cm) = c {
                blocks.push(ColsRef::whole(cm));
                cs.push(&sc);
            }
            if ncols > 0 {
                blocks.push(ColsRef::leading(v, ncols));
                cs.push(&sv);
            }
            if !blocks.is_empty() {
                fused::fused_update(&blocks, &cs, w);
            }
        }

        // Gram downdate: W'ᴴW' = WᴴW − SᴄᴴSᴄ − SᵥᴴSᵥ, all local.
        gdown = g.clone();
        if kc > 0 {
            blas::gemm(
                -S::one(),
                &sc,
                Op::ConjTrans,
                &sc,
                Op::None,
                S::one(),
                &mut gdown,
            );
        }
        if ncols > 0 {
            blas::gemm(
                -S::one(),
                &sv,
                Op::ConjTrans,
                &sv,
                Op::None,
                S::one(),
                &mut gdown,
            );
        }

        if let Some(cc) = c_coeffs.as_mut() {
            cc.axpy(S::one(), &sc);
        }
        if ncols > 0 {
            coeffs.axpy(S::one(), &sv);
        }

        if passes >= 2 {
            break;
        }
        // First-pass cancellation amplification: max over columns of
        // √(g_ll / g'_ll), clamped to ≥ 1; non-positive downdated diagonals
        // count as infinite cancellation.
        for l in 0..p {
            let gl = g[(l, l)].re().to_f64();
            let dl = gdown[(l, l)].re().to_f64();
            amp = if dl > 0.0 {
                amp.max((gl / dl).max(1.0).sqrt())
            } else {
                f64::INFINITY
            };
        }
        // Second pass when requested, when the downdate retains too small a
        // fraction of some column's squared mass for the free CholQR factor
        // to be accurate (below ε^(1/4)), or when the accumulated basis loss
        // amplified by this pass would cross the ε^(5/8) orthogonality
        // budget (≈1.6e-10 in f64 — comfortably under solver tolerances).
        let mut need = reorth && (ncols > 0 || kc > 0);
        if !need && (ncols > 0 || kc > 0) {
            let eps = S::Real::epsilon().to_f64();
            let dd_cut = eps.sqrt().sqrt();
            let loss_cut = eps.sqrt() * eps.sqrt().sqrt().sqrt();
            for l in 0..p {
                let gl = g[(l, l)].re().to_f64();
                let dl = gdown[(l, l)].re().to_f64();
                if dl < dd_cut * gl {
                    need = true;
                    break;
                }
            }
            if loss.max(eps) * amp * amp > loss_cut {
                need = true;
            }
        }
        if !need {
            break;
        }
    }

    // The downdated Gram already *is* the Gram of the projected block, so the
    // CholQR factor is free: no extra reduction unless we must refresh.
    let accepted = chol::cholesky(&gdown).and_then(|r| {
        let mut dmin = S::Real::max_value();
        let mut dmax = S::Real::zero();
        for j in 0..p {
            let d = r[(j, j)].re();
            dmin = dmin.min(d);
            dmax = dmax.max(d);
        }
        let eps_cut = S::Real::epsilon().sqrt() * S::Real::from_f64(32.0);
        if dmax > S::Real::zero() && dmin > dmax * eps_cut {
            Some(r)
        } else {
            None
        }
    });
    match accepted {
        Some(r) => {
            tri::right_solve_upper(w, &r);
            FusedOrth {
                c_coeffs,
                coeffs,
                r,
                rank: p,
                reductions,
                reduction_parts: parts,
                reduction_elems: elems,
                passes,
                refreshed: false,
                amp,
            }
        }
        None => {
            // Safety valve: the downdate lost too much accuracy (or the block
            // is rank-deficient) — pay one genuine Gram reduction for a
            // rank-revealing CholQR refresh. Any replacement columns the
            // breakdown fixup injects must stay orthogonal to C and the
            // Arnoldi basis: the fused Gram downdate assumes that invariant
            // on every later step of the cycle.
            let mut ext: Vec<(&DMat<S>, usize)> = Vec::with_capacity(2);
            if let Some(cm) = c {
                ext.push((cm, kc));
            }
            if ncols > 0 {
                ext.push((v, ncols));
            }
            let out = chol::cholqr_within(w, &ext);
            FusedOrth {
                c_coeffs,
                coeffs,
                r: out.r,
                rank: out.rank,
                reductions: reductions + 1,
                reduction_parts: parts + 1,
                reduction_elems: elems + p * p,
                passes,
                refreshed: true,
                amp,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::matmul;
    use kryst_scalar::C64;

    fn basis(n: usize, k: usize) -> DMat<f64> {
        let mut v = DMat::from_fn(n, k, |i, j| ((i * 7 + j * 13) % 19) as f64 - 9.0);
        let _ = chol::cholqr(&mut v);
        v
    }

    fn check_scheme(scheme: OrthScheme) {
        let n = 50;
        let v = basis(n, 5);
        let w0 = DMat::from_fn(n, 3, |i, j| ((i * 3 + j * 11) % 23) as f64 - 11.0);
        let mut w = w0.clone();
        let out = orthogonalize_block(&v, 5, &mut w, scheme);
        assert_eq!(out.rank, 3);
        // VᴴQ ≈ 0
        let c = blas::adjoint_times(&v, &w);
        assert!(
            c.max_abs() < 1e-10,
            "{scheme:?}: basis orthogonality {}",
            c.max_abs()
        );
        // QᴴQ ≈ I
        let g = blas::adjoint_times(&w, &w);
        for i in 0..3 {
            for j in 0..3 {
                let e = if i == j { 1.0 } else { 0.0 };
                assert!((g[(i, j)] - e).abs() < 1e-10, "{scheme:?}: Gram ({i},{j})");
            }
        }
        // Reconstruction: W0 = V·C + Q·R
        let mut rec = matmul(&v, Op::None, &out.coeffs, Op::None);
        let qr = matmul(&w, Op::None, &out.r, Op::None);
        rec.axpy(1.0, &qr);
        for i in 0..n {
            for j in 0..3 {
                assert!(
                    (rec[(i, j)] - w0[(i, j)]).abs() < 1e-9,
                    "{scheme:?}: reconstruction ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn all_schemes_orthogonalize() {
        for scheme in [
            OrthScheme::Cgs,
            OrthScheme::Mgs,
            OrthScheme::Imgs,
            OrthScheme::CholQr,
        ] {
            check_scheme(scheme);
        }
    }

    #[test]
    fn complex_cholqr_block_orth() {
        let n = 40;
        let mut vb = DMat::<C64>::from_fn(n, 4, |i, j| {
            C64::from_parts(((i + j * 3) % 7) as f64, ((i * 5 + j) % 11) as f64 - 5.0)
        });
        let _ = chol::cholqr(&mut vb);
        let mut w = DMat::<C64>::from_fn(n, 2, |i, j| {
            C64::from_parts(((i * 2 + j) % 9) as f64 - 4.0, (i % 3) as f64)
        });
        let out = orthogonalize_block(&vb, 4, &mut w, OrthScheme::CholQr);
        assert_eq!(out.rank, 2);
        let c = blas::adjoint_times(&vb, &w);
        assert!(c.max_abs() < 1e-10);
    }

    #[test]
    fn reduction_counts_reflect_scheme() {
        let n = 30;
        let v = basis(n, 4);
        let w0 = DMat::from_fn(n, 2, |i, j| (i + j) as f64 + 0.5);
        let mut w = w0.clone();
        let cgs = orthogonalize_block(&v, 4, &mut w, OrthScheme::CholQr);
        // CholQR: 2 fused projection reductions + 1 Gram reduction.
        assert_eq!(cgs.reductions, 3);
        // §III-D elements: two ncols·p projections + one p² Gram.
        assert_eq!(cgs.reduction_elems, 2 * 4 * 2 + 2 * 2);
        let mut w = w0.clone();
        let mgs = orthogonalize_block(&v, 4, &mut w, OrthScheme::Mgs);
        // MGS: k reductions (projection) + per-column intra-block work.
        assert!(mgs.reductions > cgs.reductions);
        // MGS: ncols·p projection elements + p(p+1)/2 intra scalars.
        assert_eq!(mgs.reduction_elems, 4 * 2 + 2 * 3 / 2);
    }

    #[test]
    fn fused_orthogonalizes_with_recycle_projector() {
        let n = 60;
        // Orthonormal C ⟂ V: orthogonalize a 7-column block, split 3 + 4.
        let mut cv = DMat::from_fn(n, 7, |i, j| ((i * 7 + j * 13) % 19) as f64 - 9.0);
        let _ = chol::cholqr(&mut cv);
        let c = cv.cols(0, 3);
        let v = cv.cols(3, 4);
        let w0 = DMat::from_fn(n, 2, |i, j| ((i * 3 + j * 11) % 23) as f64 - 11.0);
        let mut w = w0.clone();
        let out = fused_orthogonalize_block(Some(&c), &v, 4, &mut w, false, 0.0);
        assert_eq!(out.rank, 2);
        assert!(!out.refreshed);
        // CᴴQ ≈ 0 and VᴴQ ≈ 0.
        assert!(blas::adjoint_times(&c, &w).max_abs() < 1e-10);
        assert!(blas::adjoint_times(&v, &w).max_abs() < 1e-10);
        // QᴴQ ≈ I.
        let g = blas::adjoint_times(&w, &w);
        for i in 0..2 {
            for j in 0..2 {
                let e = if i == j { 1.0 } else { 0.0 };
                assert!((g[(i, j)] - e).abs() < 1e-10, "Gram ({i},{j})");
            }
        }
        // Reconstruction: W0 = C·Cc + V·Cv + Q·R.
        let cc = out.c_coeffs.as_ref().unwrap();
        let mut rec = matmul(&c, Op::None, cc, Op::None);
        rec.axpy(1.0, &matmul(&v, Op::None, &out.coeffs, Op::None));
        rec.axpy(1.0, &matmul(&w, Op::None, &out.r, Op::None));
        for i in 0..n {
            for j in 0..2 {
                assert!(
                    (rec[(i, j)] - w0[(i, j)]).abs() < 1e-9,
                    "reconstruction ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn fused_reduction_counts() {
        let n = 50;
        let v = basis(n, 5);
        let w0 = DMat::from_fn(n, 3, |i, j| ((i * 3 + j * 11) % 23) as f64 - 11.0);
        // Well-separated block, no re-orthogonalization: ONE fused reduction
        // covering VᴴW and WᴴW, and the CholQR factor comes from the
        // downdate for free.
        let mut w = w0.clone();
        let out = fused_orthogonalize_block(None, &v, 5, &mut w, false, 0.0);
        assert_eq!(out.reductions, 1);
        assert_eq!(out.passes, 1);
        assert_eq!(out.reduction_parts, 2);
        assert_eq!(out.reduction_elems, (5 + 3) * 3);
        assert!(!out.refreshed);
        // Re-orthogonalized variant: exactly two fused reductions.
        let mut w = w0.clone();
        let out = fused_orthogonalize_block(None, &v, 5, &mut w, true, 0.0);
        assert_eq!(out.reductions, 2);
        assert_eq!(out.passes, 2);
        assert!(!out.refreshed);
        assert!(blas::adjoint_times(&v, &w).max_abs() < 1e-12);
        // First iteration of a cycle (empty basis): the Gram IS the fused
        // product; still one reduction even with reorth requested.
        let empty = DMat::zeros(n, 0);
        let mut w = w0.clone();
        let out = fused_orthogonalize_block(None, &empty, 0, &mut w, true, 0.0);
        assert_eq!(out.reductions, 1);
        assert_eq!(out.reduction_parts, 1);
        assert_eq!(out.reduction_elems, 3 * 3);
    }

    #[test]
    fn fused_adaptive_pass_triggers_on_cancellation() {
        let n = 40;
        let v = basis(n, 3);
        // W ≈ span(V) + tiny noise: the projection cancels all but ~1e-14 of
        // each column's squared mass — past the √ε downdate-accuracy cut —
        // so the adaptive criterion must fire a second pass (or refresh).
        let vc = v.cols(0, 3);
        let coeff = DMat::from_fn(3, 2, |i, j| (i + j + 1) as f64);
        let mut w = matmul(&vc, Op::None, &coeff, Op::None);
        for i in 0..n {
            for j in 0..2 {
                w[(i, j)] += 1e-7 * (((i * 31 + j * 17 + 7) % 29) as f64 - 14.0);
            }
        }
        let out = fused_orthogonalize_block(None, &v, 3, &mut w, false, 0.0);
        assert!(
            out.passes == 2 || out.refreshed,
            "cancellation must trigger a second pass or refresh"
        );
        assert!(blas::adjoint_times(&v, &w).max_abs() < 1e-10);
        let g = blas::adjoint_times(&w, &w);
        for i in 0..2 {
            for j in 0..2 {
                let e = if i == j { 1.0 } else { 0.0 };
                assert!((g[(i, j)] - e).abs() < 1e-8, "Gram ({i},{j})");
            }
        }
    }

    #[test]
    fn fused_matches_classic_iteration_for_gmres_like_step() {
        // The fused and classic paths must produce the same orthonormal range
        // (up to column signs they are identical when no refresh happens).
        let n = 80;
        let v = basis(n, 6);
        let w0 = DMat::from_fn(n, 1, |i, _| ((i * 13 + 5) % 37) as f64 - 18.0);
        let mut wc = w0.clone();
        let classic = orthogonalize_block(&v, 6, &mut wc, OrthScheme::CholQr);
        let mut wf = w0.clone();
        let fusedo = fused_orthogonalize_block(None, &v, 6, &mut wf, false, 0.0);
        // Same projection coefficients and R factor to high accuracy.
        for i in 0..6 {
            assert!((classic.coeffs[(i, 0)] - fusedo.coeffs[(i, 0)]).abs() < 1e-8);
        }
        assert!((classic.r[(0, 0)] - fusedo.r[(0, 0)]).abs() < 1e-8 * classic.r[(0, 0)].abs());
        for i in 0..n {
            assert!((wc[(i, 0)] - wf[(i, 0)]).abs() < 1e-8);
        }
    }
}
