//! Gram–Schmidt orthogonalization schemes.
//!
//! The Arnoldi step of every solver in `kryst-core` orthogonalizes the new
//! candidate block `W` against the existing basis `V` and then within itself.
//! The paper's §III-D counts the *global reductions* of each scheme, which is
//! why several are provided:
//!
//! * **Classical (CGS)** — one fused projection (`VᴴW` in one reduction) but
//!   less stable,
//! * **Modified (MGS)** — one reduction *per basis column*, the stable
//!   textbook choice,
//! * **Iterated Modified (IMGS)** — Belos' default: MGS repeated until the
//!   norm stops dropping (here: a fixed two passes, the standard
//!   "twice-is-enough" criterion),
//! * **CholQR** for the intra-block step (see [`crate::chol`]).

use crate::blas::{self, Op};
use crate::chol;
use crate::DMat;
use kryst_scalar::{Real, Scalar};

/// Which orthogonalization scheme the solvers use.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum OrthScheme {
    /// Classical Gram–Schmidt (single fused reduction), re-orthogonalized once.
    Cgs,
    /// Modified Gram–Schmidt.
    Mgs,
    /// Iterated (two-pass) modified Gram–Schmidt — Belos' default.
    Imgs,
    /// Cholesky-QR for the intra-block factorization (paper's choice).
    CholQr,
}

impl OrthScheme {
    /// Stable lowercase name used in solver traces.
    pub fn name(self) -> &'static str {
        match self {
            OrthScheme::Cgs => "cgs",
            OrthScheme::Mgs => "mgs",
            OrthScheme::Imgs => "imgs",
            OrthScheme::CholQr => "cholqr",
        }
    }
}

/// Projection coefficients produced by [`orthogonalize_block`]: the new block
/// satisfies `W_orig = V·C + Q·R` with `Q` the orthonormalized output block.
pub struct BlockOrth<S: Scalar> {
    /// Coefficients against the existing basis (`V.ncols() × p`).
    pub coeffs: DMat<S>,
    /// Intra-block triangular factor (`p × p`).
    pub r: DMat<S>,
    /// Numerical rank of the block after projection.
    pub rank: usize,
    /// Number of global reductions this call would cost in a distributed run.
    pub reductions: usize,
}

/// Orthogonalize `w` (n×p) against the first `ncols` columns of `v` (n×·) and
/// then orthonormalize it internally, returning the projection coefficients.
///
/// `v` may be wider than `ncols`; only the leading columns are used, which
/// lets callers keep one pre-allocated basis for a whole restart cycle.
pub fn orthogonalize_block<S: Scalar>(
    v: &DMat<S>,
    ncols: usize,
    w: &mut DMat<S>,
    scheme: OrthScheme,
) -> BlockOrth<S> {
    assert!(ncols <= v.ncols());
    assert_eq!(v.nrows(), w.nrows());
    let p = w.ncols();
    let mut coeffs = DMat::zeros(ncols, p);
    let mut reductions = 0;

    match scheme {
        OrthScheme::Cgs => {
            for _pass in 0..2 {
                if ncols > 0 {
                    let vlead = v.cols(0, ncols);
                    let c = blas::adjoint_times(&vlead, w); // one fused reduction
                    reductions += 1;
                    blas::gemm(-S::one(), &vlead, Op::None, &c, Op::None, S::one(), w);
                    coeffs.axpy(S::one(), &c);
                }
            }
        }
        OrthScheme::Mgs | OrthScheme::Imgs => {
            let passes = if scheme == OrthScheme::Imgs { 2 } else { 1 };
            for _pass in 0..passes {
                for j in 0..ncols {
                    let vj = v.col(j).to_vec();
                    for l in 0..p {
                        let wl = w.col_mut(l);
                        let mut dot = S::zero();
                        for (a, b) in vj.iter().zip(wl.iter()) {
                            dot += a.conj() * *b;
                        }
                        for (a, b) in vj.iter().zip(wl.iter_mut()) {
                            *b -= dot * *a;
                        }
                        coeffs[(j, l)] += dot;
                    }
                    reductions += 1; // one reduction per basis column (dots fused over l)
                }
            }
        }
        OrthScheme::CholQr => {
            // Projection uses one CGS pass (fused), repeated twice for stability.
            for _pass in 0..2 {
                if ncols > 0 {
                    let vlead = v.cols(0, ncols);
                    let c = blas::adjoint_times(&vlead, w);
                    reductions += 1;
                    blas::gemm(-S::one(), &vlead, Op::None, &c, Op::None, S::one(), w);
                    coeffs.axpy(S::one(), &c);
                }
            }
        }
    }

    // Intra-block orthonormalization.
    let (r, rank, intra_reductions) = match scheme {
        OrthScheme::CholQr | OrthScheme::Cgs => {
            let out = chol::cholqr(w);
            (out.r, out.rank, 1)
        }
        OrthScheme::Mgs | OrthScheme::Imgs => {
            let mut r = DMat::zeros(p, p);
            let mut rank = p;
            let mut reds = 0;
            for l in 0..p {
                // Project against the already-normalized columns of w.
                for j in 0..l {
                    let dot = w.col_dot(j, w, l);
                    let (dst, src) = w.two_cols_mut(l, j);
                    for (d, s) in dst.iter_mut().zip(src.iter()) {
                        *d -= dot * *s;
                    }
                    r[(j, l)] = dot;
                    reds += 1;
                }
                let nrm = w.col_norm(l);
                reds += 1;
                if nrm <= S::Real::epsilon() {
                    rank = rank.min(l);
                    r[(l, l)] = S::zero();
                } else {
                    r[(l, l)] = S::from_real(nrm);
                    w.scale_col(l, S::one() / S::from_real(nrm));
                }
            }
            (r, rank, reds)
        }
    };

    BlockOrth {
        coeffs,
        r,
        rank,
        reductions: reductions + intra_reductions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::matmul;
    use kryst_scalar::C64;

    fn basis(n: usize, k: usize) -> DMat<f64> {
        let mut v = DMat::from_fn(n, k, |i, j| ((i * 7 + j * 13) % 19) as f64 - 9.0);
        let _ = chol::cholqr(&mut v);
        v
    }

    fn check_scheme(scheme: OrthScheme) {
        let n = 50;
        let v = basis(n, 5);
        let w0 = DMat::from_fn(n, 3, |i, j| ((i * 3 + j * 11) % 23) as f64 - 11.0);
        let mut w = w0.clone();
        let out = orthogonalize_block(&v, 5, &mut w, scheme);
        assert_eq!(out.rank, 3);
        // VᴴQ ≈ 0
        let c = blas::adjoint_times(&v, &w);
        assert!(
            c.max_abs() < 1e-10,
            "{scheme:?}: basis orthogonality {}",
            c.max_abs()
        );
        // QᴴQ ≈ I
        let g = blas::adjoint_times(&w, &w);
        for i in 0..3 {
            for j in 0..3 {
                let e = if i == j { 1.0 } else { 0.0 };
                assert!((g[(i, j)] - e).abs() < 1e-10, "{scheme:?}: Gram ({i},{j})");
            }
        }
        // Reconstruction: W0 = V·C + Q·R
        let mut rec = matmul(&v, Op::None, &out.coeffs, Op::None);
        let qr = matmul(&w, Op::None, &out.r, Op::None);
        rec.axpy(1.0, &qr);
        for i in 0..n {
            for j in 0..3 {
                assert!(
                    (rec[(i, j)] - w0[(i, j)]).abs() < 1e-9,
                    "{scheme:?}: reconstruction ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn all_schemes_orthogonalize() {
        for scheme in [
            OrthScheme::Cgs,
            OrthScheme::Mgs,
            OrthScheme::Imgs,
            OrthScheme::CholQr,
        ] {
            check_scheme(scheme);
        }
    }

    #[test]
    fn complex_cholqr_block_orth() {
        let n = 40;
        let mut vb = DMat::<C64>::from_fn(n, 4, |i, j| {
            C64::from_parts(((i + j * 3) % 7) as f64, ((i * 5 + j) % 11) as f64 - 5.0)
        });
        let _ = chol::cholqr(&mut vb);
        let mut w = DMat::<C64>::from_fn(n, 2, |i, j| {
            C64::from_parts(((i * 2 + j) % 9) as f64 - 4.0, (i % 3) as f64)
        });
        let out = orthogonalize_block(&vb, 4, &mut w, OrthScheme::CholQr);
        assert_eq!(out.rank, 2);
        let c = blas::adjoint_times(&vb, &w);
        assert!(c.max_abs() < 1e-10);
    }

    #[test]
    fn reduction_counts_reflect_scheme() {
        let n = 30;
        let v = basis(n, 4);
        let w0 = DMat::from_fn(n, 2, |i, j| (i + j) as f64 + 0.5);
        let mut w = w0.clone();
        let cgs = orthogonalize_block(&v, 4, &mut w, OrthScheme::CholQr);
        // CholQR: 2 fused projection reductions + 1 Gram reduction.
        assert_eq!(cgs.reductions, 3);
        let mut w = w0.clone();
        let mgs = orthogonalize_block(&v, 4, &mut w, OrthScheme::Mgs);
        // MGS: k reductions (projection) + per-column intra-block work.
        assert!(mgs.reductions > cgs.reductions);
    }
}
