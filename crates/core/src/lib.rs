#![warn(missing_docs)]
//! `kryst-core` — the paper's contribution: a uniform implementation of
//! **(pseudo-)block GMRES** and **(pseudo-)block GCRO-DR** with right, left,
//! or variable (flexible) preconditioning, Krylov-subspace recycling across
//! sequences of linear systems, a fast path for non-variable sequences
//! (`same_system`), and the two deflation eigenproblem formulations
//! (strategies A/B, eqs. (3a)/(3b)).
//!
//! Baselines for the paper's comparisons are included: restarted GMRES /
//! FGMRES, LGMRES(m,k) ("Loose GMRES", the PETSc augmented method of
//! §IV-C), CG, and O'Leary's Block CG.
//!
//! # Quick start
//!
//! ```
//! use kryst_core::{gmres, gcrodr, SolveOpts, SolverContext};
//! use kryst_dense::DMat;
//! use kryst_par::IdentityPrecond;
//! use kryst_pde::poisson::poisson2d;
//!
//! let p = poisson2d::<f64>(16, 16);
//! let n = p.a.nrows();
//! let b = DMat::from_fn(n, 1, |i, _| (i % 5) as f64);
//! let m = IdentityPrecond::new(n);
//! let opts = SolveOpts { rtol: 1e-8, ..Default::default() };
//!
//! // One-shot GMRES.
//! let mut x = DMat::zeros(n, 1);
//! let res = gmres::solve(&p.a, &m, &b, &mut x, &opts);
//! assert!(res.converged);
//!
//! // GCRO-DR recycles Krylov information across solves through a context.
//! let mut ctx = SolverContext::new();
//! let mut x1 = DMat::zeros(n, 1);
//! let r1 = gcrodr::solve(&p.a, &m, &b, &mut x1, &opts, &mut ctx);
//! let mut x2 = DMat::zeros(n, 1);
//! let r2 = gcrodr::solve(&p.a, &m, &b, &mut x2, &opts, &mut ctx);
//! assert!(r2.iterations < r1.iterations); // recycling pays off
//! ```

pub mod bcg;
pub mod cg;
pub mod cycle;
pub mod gcrodr;
pub mod gmres;
pub mod lgmres;
pub mod opts;
pub mod pseudo;
pub mod trace;

pub use cycle::PrecondMode;
pub use gcrodr::{RecycleSpace, SolverContext};
pub use opts::{OrthPath, PrecondSide, RecycleStrategy, SolveOpts, SolveResult};
pub use trace::SolveTracer;

pub use kryst_dense::gs::OrthScheme;
