//! Solver options and results.

use kryst_dense::gs::OrthScheme;
use kryst_obs::Recorder;
use kryst_par::{CommStats, PrecondPrecision, TransportKind};
use std::sync::Arc;

/// Which side the preconditioner enters on.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PrecondSide {
    /// `M⁻¹·A·x = M⁻¹·b` — residuals (and convergence tests) are
    /// preconditioned.
    Left,
    /// `A·M⁻¹·u = b`, `x = M⁻¹·u` — residuals are the true ones.
    Right,
    /// Flexible right preconditioning: the preconditioner may change from
    /// application to application (inner Krylov smoothers, §III-C); the
    /// preconditioned directions `Z_m` are stored explicitly.
    Flexible,
}

/// Right-hand-side formulation of the deflation generalized eigenproblem
/// (paper eq. (3), artifact option `-hpddm_recycle_strategy`). The best
/// choice is problem-dependent (paper §III-C); on the SPD model problems of
/// this workspace, A refines the deflation space markedly better, so it is
/// the default.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RecycleStrategy {
    /// Eq. (3a): the exact projected matrix — costs one extra fused global
    /// reduction per restart.
    A,
    /// Eq. (3b): assumes basis orthogonality — no extra communication.
    B,
}

/// Which orthogonalization *path* the Arnoldi cycles take — orthogonal to
/// the [`OrthScheme`] choice (which picks the projection arithmetic).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum OrthPath {
    /// Communication-avoiding path: one fused `[CᴴW; VᴴW; WᴴW]` reduction
    /// per iteration (two when re-orthogonalized), with the CholQR factor
    /// coming from a Gram downdate at zero extra reductions. Applies to the
    /// CGS/CholQR schemes; MGS/IMGS are inherently per-column and stay on
    /// the classic path.
    Fused,
    /// The classic multi-reduction path (separate `CᴴW`, `VᴴW`-per-pass and
    /// Gram products) — the pre-fusion behavior, golden-trace compatible.
    Classic,
    /// Latency-hiding path: the fused Gram reduction for step `j` is
    /// *started* early (split-phase), then the operator + preconditioner
    /// apply feeding step `j+1` runs before it is finished — the
    /// Ghysels-style depth-1 lag. The next Krylov direction is reconstructed
    /// by a linear recurrence instead of a post-reduction apply; the PR-3
    /// orthogonality-loss budget (re-orthogonalization refresh) forces a
    /// fallback to the synchronous apply whenever it trips. Applies to the
    /// CGS/CholQR schemes, like [`OrthPath::Fused`]. Requires a fixed,
    /// full-precision preconditioner: variable (inner-Krylov) or
    /// f32-storage applies would have their per-apply error compounded by
    /// the recurrence, so the cycle demotes those to [`OrthPath::Fused`].
    Pipelined,
}

impl OrthPath {
    /// Resolve from the environment: `KRYST_PIPELINE=1` selects
    /// [`OrthPath::Pipelined`]; otherwise `KRYST_FUSE=0` selects
    /// [`OrthPath::Classic`], anything else (including unset) the fused
    /// default.
    pub fn from_env() -> Self {
        if matches!(std::env::var("KRYST_PIPELINE"), Ok(v) if v == "1") {
            return OrthPath::Pipelined;
        }
        match std::env::var("KRYST_FUSE") {
            Ok(v) if v == "0" => OrthPath::Classic,
            _ => OrthPath::Fused,
        }
    }

    /// Stable lowercase name used in traces and benchmarks.
    pub fn name(self) -> &'static str {
        match self {
            OrthPath::Fused => "fused",
            OrthPath::Classic => "classic",
            OrthPath::Pipelined => "pipelined",
        }
    }
}

impl Default for OrthPath {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Options shared by every solver in the crate.
#[derive(Clone)]
pub struct SolveOpts {
    /// Relative residual tolerance, per right-hand side (paper: `EPS`).
    pub rtol: f64,
    /// Total iteration cap (block iterations).
    pub max_iters: usize,
    /// Restart length `m` (maximum Krylov block columns per cycle).
    pub restart: usize,
    /// Recycled subspace dimension `k` (in block units; GCRO-DR only).
    pub recycle: usize,
    /// Preconditioner side / flexibility.
    pub side: PrecondSide,
    /// Orthogonalization backend (paper advocates CholQR).
    pub orth: OrthScheme,
    /// Fused (communication-avoiding) vs pipelined (latency-hiding) vs
    /// classic orthogonalization path. Defaults from the environment:
    /// `KRYST_PIPELINE=1` → pipelined, else `KRYST_FUSE=0` → classic.
    pub ortho: OrthPath,
    /// Deflation eigenproblem formulation.
    pub recycle_strategy: RecycleStrategy,
    /// The operator is identical to the previous solve's
    /// (`-hpddm_recycle_same_system`): skip the recycle-space refresh work
    /// (Fig. 1 lines 3–7 and 31–38).
    pub same_system: bool,
    /// Requested storage precision for preconditioner setup. Solvers do not
    /// build preconditioners themselves, so this is a *carrier knob*: setup
    /// code (drivers, benches, tests) reads it to pick `with_precision` on
    /// ILU/AMG/Schwarz. Defaults from the `KRYST_PRECOND_F32` environment
    /// variable (`1`/`true` → [`PrecondPrecision::Single`]). Independent of
    /// it, solvers warn via the tracer whenever a non-flexible method is
    /// paired with a preconditioner whose `precision()` reports `Single`.
    pub precond_precision: PrecondPrecision,
    /// Requested transport backend for SPMD execution. Like
    /// [`SolveOpts::precond_precision`] this is a *carrier knob*: solvers
    /// never spawn ranks themselves, so drivers and harnesses (the
    /// equivalence tests, `kryst_prof`, the calibration bin) read it to pick
    /// the backend for `run_spmd`/`SpmdWorld`. Defaults from the
    /// `KRYST_TRANSPORT` environment variable (`socket` →
    /// [`TransportKind::Socket`], else the in-process channel mesh).
    pub transport: TransportKind,
    /// Optional communication counters (the §III-D accounting).
    pub stats: Option<Arc<CommStats>>,
    /// Optional event sink: every solver emits typed per-iteration events,
    /// solve spans, and begin/end markers through it (`kryst-obs`). `None`
    /// behaves like a disabled recorder — no events are constructed. The
    /// `comm` deltas on the events are sampled from [`SolveOpts::stats`]; to
    /// get non-zero communication attribution, attach a `CommStats` too.
    pub recorder: Option<Arc<dyn Recorder>>,
}

impl Default for SolveOpts {
    fn default() -> Self {
        Self {
            rtol: 1e-8,
            max_iters: 1000,
            restart: 30,
            recycle: 10,
            side: PrecondSide::Right,
            orth: OrthScheme::CholQr,
            ortho: OrthPath::from_env(),
            recycle_strategy: RecycleStrategy::A,
            same_system: false,
            precond_precision: PrecondPrecision::from_env(),
            transport: TransportKind::from_env(),
            stats: None,
            recorder: None,
        }
    }
}

/// Outcome of a solve.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// Block iterations performed (for `p` fused right-hand sides one block
    /// iteration advances all of them).
    pub iterations: usize,
    /// All right-hand sides reached `rtol`.
    pub converged: bool,
    /// Per-iteration, per-RHS relative residual estimates (the convergence
    /// curves of Figs. 2–4).
    pub history: Vec<Vec<f64>>,
    /// Final relative residuals (true residuals, recomputed).
    pub final_relres: Vec<f64>,
}

impl SolveResult {
    /// Iterations each RHS needed to first dip below `rtol` (for per-RHS
    /// reporting à la the artifact tables). Falls back to the total count.
    pub fn iters_to_converge(&self, rtol: f64) -> Vec<usize> {
        let p = self.history.first().map(Vec::len).unwrap_or(0);
        (0..p)
            .map(|l| {
                self.history
                    .iter()
                    .position(|row| row[l] <= rtol)
                    .map(|i| i + 1)
                    .unwrap_or(self.iterations)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_conventions() {
        let o = SolveOpts::default();
        assert_eq!(o.restart, 30); // PETSc default the paper adopts
        assert_eq!(o.recycle, 10); // paper's GCRO-DR(30, 10)
        assert_eq!(o.rtol, 1e-8);
        assert_eq!(o.orth, OrthScheme::CholQr);
    }

    #[test]
    fn iters_to_converge_scans_history() {
        let r = SolveResult {
            iterations: 4,
            converged: true,
            history: vec![
                vec![1.0, 1.0],
                vec![0.5, 1e-9],
                vec![1e-9, 1e-10],
                vec![1e-12, 1e-12],
            ],
            final_relres: vec![1e-12, 1e-12],
        };
        assert_eq!(r.iters_to_converge(1e-8), vec![3, 2]);
    }
}
