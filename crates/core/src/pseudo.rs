//! Pseudo-block methods: fuse `p` independent single-RHS solves.
//!
//! The paper (§V-B1, after Langou / Belos): pseudo-block methods keep one
//! Krylov process *per right-hand side* (no block coupling, no breakdown
//! concerns) but **fuse the kernel invocations** — the `p` sparse
//! matrix–vector products of an iteration become one sparse matrix–block
//! product, and the `p` dot-product rounds become one fused reduction —
//! trading synchronization count for message volume.
//!
//! Implementation: each right-hand side runs the *unmodified* single-RHS
//! solver (`gmres::solve` / `gcrodr::solve`) on its own thread against a
//! [`BatchGroup`]-wrapped operator. The group blocks every member at its
//! next operator/preconditioner application until all live members have
//! submitted, then the last arrival executes the batched kernels
//! (leader-executes) and distributes the columns. Solves that converge
//! early deregister, shrinking the batch — exactly the fused execution
//! model whose efficiency Fig. 6 / §V-B2 measures, with genuinely batched
//! SpMM calls.

use crate::gcrodr::{self, SolverContext};
use crate::gmres;
use crate::opts::{SolveOpts, SolveResult};
use crate::trace::SolveTracer;
use kryst_dense::gs::OrthScheme;
use kryst_dense::DMat;
use kryst_par::{LinOp, PrecondOp};
use kryst_scalar::Scalar;
use kryst_sparse::SpmmWorkspace;
use std::sync::{Condvar, Mutex};

/// Which single-RHS method the pseudo-block driver fuses.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PseudoMethod {
    /// Pseudo-block GMRES.
    Gmres,
    /// Pseudo-block GCRO-DR.
    GcroDr,
}

/// Result of a pseudo-block solve.
#[derive(Debug)]
pub struct PseudoResult {
    /// Per-RHS solve results (individual convergence histories).
    pub per_rhs: Vec<SolveResult>,
    /// Fused iteration count: the maximum over the right-hand sides (the
    /// batch advances while any member is live).
    pub iterations: usize,
    /// All right-hand sides converged.
    pub converged: bool,
}

/// Tags for the two batched kernels.
const TAG_OP: u8 = 0;
const TAG_PC: u8 = 1;

struct BatchState<S: Scalar> {
    pending: Vec<Option<(u8, DMat<S>)>>,
    results: Vec<Option<DMat<S>>>,
    active: Vec<bool>,
    waiting: usize,
    live: usize,
    /// Pool for the fused/pending/result column blocks — the batch barrier
    /// allocates nothing once every buffer size has been seen.
    ws: SpmmWorkspace<S>,
}

/// The fused kernel a [`BatchGroup`] leader executes on behalf of all
/// members: `(kind, fused columns, zeroed fused output)`.
pub type BatchExec<'a, S> = Box<dyn Fn(u8, &DMat<S>, &mut DMat<S>) + Send + Sync + 'a>;

/// Leader-executes batching barrier over the operator and preconditioner.
pub struct BatchGroup<'a, S: Scalar> {
    state: Mutex<BatchState<S>>,
    cv: Condvar,
    exec: BatchExec<'a, S>,
}

impl<'a, S: Scalar> BatchGroup<'a, S> {
    /// A group of `p` members over the given kernel executor.
    pub fn new(p: usize, exec: BatchExec<'a, S>) -> Self {
        Self {
            state: Mutex::new(BatchState {
                pending: (0..p).map(|_| None).collect(),
                results: (0..p).map(|_| None).collect(),
                active: vec![true; p],
                waiting: 0,
                live: p,
                ws: SpmmWorkspace::new(),
            }),
            cv: Condvar::new(),
            exec,
        }
    }

    fn run_batch(&self, st: &mut BatchState<S>) {
        for tag in [TAG_OP, TAG_PC] {
            // Gather members with this tag.
            let members: Vec<usize> = st
                .pending
                .iter()
                .enumerate()
                .filter(|(_, p)| matches!(p, Some((t, _)) if *t == tag))
                .map(|(i, _)| i)
                .collect();
            if members.is_empty() {
                continue;
            }
            // Concatenate the column blocks.
            let n = st.pending[members[0]].as_ref().unwrap().1.nrows();
            let total: usize = members
                .iter()
                .map(|&m| st.pending[m].as_ref().unwrap().1.ncols())
                .sum();
            let mut big = st.ws.take(n, total);
            let mut off = 0;
            for &m in &members {
                let (_, blk) = st.pending[m].as_ref().unwrap();
                big.set_block(0, off, blk);
                off += blk.ncols();
            }
            // One fused kernel call (the point of pseudo-block methods).
            let mut out = st.ws.take(n, total);
            (self.exec)(tag, &big, &mut out);
            st.ws.put(big);
            let mut off = 0;
            for &m in &members {
                let (_, blk) = st.pending[m].take().unwrap();
                let w = blk.ncols();
                st.ws.put(blk);
                let mut res = st.ws.take(n, w);
                res.as_mut_slice()
                    .copy_from_slice(&out.as_slice()[off * n..(off + w) * n]);
                st.results[m] = Some(res);
                off += w;
            }
            st.ws.put(out);
        }
        st.waiting = 0;
    }

    /// Submit a kernel request and block until the batch executes.
    pub fn submit(&self, me: usize, tag: u8, block: &DMat<S>) -> DMat<S> {
        let mut st = self.state.lock().unwrap();
        debug_assert!(st.active[me]);
        let mut buf = st.ws.take(block.nrows(), block.ncols());
        buf.copy_from(block);
        st.pending[me] = Some((tag, buf));
        st.waiting += 1;
        if st.waiting == st.live {
            self.run_batch(&mut st);
            self.cv.notify_all();
        } else {
            while st.results[me].is_none() {
                st = self.cv.wait(st).unwrap();
            }
        }
        st.results[me].take().expect("batched result present")
    }

    /// Return a result buffer obtained from [`Self::submit`] to the pool.
    pub fn recycle(&self, buf: DMat<S>) {
        self.state.lock().unwrap().ws.put(buf);
    }

    /// Leave the group (the member's solve has finished).
    pub fn deregister(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        if !st.active[me] {
            return;
        }
        st.active[me] = false;
        st.live -= 1;
        if st.live > 0 && st.waiting == st.live {
            self.run_batch(&mut st);
        }
        self.cv.notify_all();
    }
}

/// The per-member operator view.
struct BatchedOp<'g, 'a, S: Scalar> {
    group: &'g BatchGroup<'a, S>,
    me: usize,
    tag: u8,
    n: usize,
}

impl<S: Scalar> LinOp<S> for BatchedOp<'_, '_, S> {
    fn nrows(&self) -> usize {
        self.n
    }
    fn apply(&self, x: &DMat<S>, y: &mut DMat<S>) {
        let out = self.group.submit(self.me, self.tag, x);
        y.copy_from(&out);
        self.group.recycle(out);
    }
}

impl<S: Scalar> PrecondOp<S> for BatchedOp<'_, '_, S> {
    fn nrows(&self) -> usize {
        self.n
    }
    fn apply(&self, r: &DMat<S>, z: &mut DMat<S>) {
        let out = self.group.submit(self.me, self.tag, r);
        z.copy_from(&out);
        self.group.recycle(out);
    }
}

/// Pseudo-block solve of `A·X = B`: `p` fused single-RHS instances.
///
/// `ctxs` supplies one persistent [`SolverContext`] per right-hand side for
/// GCRO-DR recycling across a sequence of calls (ignored for GMRES).
pub fn solve<S: Scalar>(
    a: &dyn LinOp<S>,
    pc: &dyn PrecondOp<S>,
    b: &DMat<S>,
    x: &mut DMat<S>,
    opts: &SolveOpts,
    method: PseudoMethod,
    ctxs: Option<&mut Vec<SolverContext<S>>>,
) -> PseudoResult {
    let n = a.nrows();
    let p = b.ncols();
    assert_eq!(x.ncols(), p);
    let name = match method {
        PseudoMethod::Gmres => "pseudo-gmres",
        PseudoMethod::GcroDr => "pseudo-gcrodr",
    };
    let mut tracer = SolveTracer::begin(opts, name, 0, n, p);
    let group = BatchGroup::new(
        p,
        Box::new(move |tag, block: &DMat<S>, out: &mut DMat<S>| {
            if tag == TAG_OP {
                a.apply(block, out)
            } else {
                pc.apply(block, out)
            }
        }),
    );
    // Per-member contexts (fresh ones when none are supplied).
    let mut local_ctxs: Vec<SolverContext<S>>;
    let ctx_slice: &mut [SolverContext<S>] = match ctxs {
        Some(v) => {
            while v.len() < p {
                v.push(SolverContext::new());
            }
            &mut v[..p]
        }
        None => {
            local_ctxs = (0..p).map(|_| SolverContext::new()).collect();
            &mut local_ctxs
        }
    };
    // Fused reductions: individual threads would overcount, so silence the
    // per-thread stats (and recorders — the fused driver emits one event
    // stream for the whole batch) and account at the end.
    let thread_opts = SolveOpts {
        stats: None,
        recorder: None,
        ..opts.clone()
    };

    let mut per_rhs: Vec<Option<(Vec<S>, SolveResult)>> = (0..p).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (l, ctx) in ctx_slice.iter_mut().enumerate() {
            let group = &group;
            let topts = &thread_opts;
            let bl = DMat::from_col_major(n, 1, b.col(l).to_vec());
            let mut xl = DMat::from_col_major(n, 1, x.col(l).to_vec());
            handles.push(scope.spawn(move || {
                let aop = BatchedOp {
                    group,
                    me: l,
                    tag: TAG_OP,
                    n,
                };
                let mop = BatchedOp {
                    group,
                    me: l,
                    tag: TAG_PC,
                    n,
                };
                let res = match method {
                    PseudoMethod::Gmres => gmres::solve(&aop, &mop, &bl, &mut xl, topts),
                    PseudoMethod::GcroDr => gcrodr::solve(&aop, &mop, &bl, &mut xl, topts, ctx),
                };
                group.deregister(l);
                (xl.col(0).to_vec(), res)
            }));
        }
        for (l, h) in handles.into_iter().enumerate() {
            per_rhs[l] = Some(h.join().expect("pseudo-block worker panicked"));
        }
    });

    let mut iterations = 0;
    let mut converged = true;
    let mut results = Vec::with_capacity(p);
    for (l, slot) in per_rhs.into_iter().enumerate() {
        let (xl, res) = slot.unwrap();
        x.col_mut(l).copy_from_slice(&xl);
        iterations = iterations.max(res.iterations);
        converged &= res.converged;
        results.push(res);
    }
    // Fused accounting: one reduction round per fused iteration (batched
    // norms/orthogonalization), as §V-B1 describes ("the required number of
    // dot products is lowered to m instead"). Recorded per iteration so the
    // synthesized iteration events below tile the solve total exactly.
    let orth_name = opts.orth.name();
    let m = opts.restart.max(1);
    let fused_path = matches!(
        opts.ortho,
        crate::opts::OrthPath::Fused | crate::opts::OrthPath::Pipelined
    ) && matches!(opts.orth, OrthScheme::Cgs | OrthScheme::CholQr);
    for it in 0..iterations {
        if let Some(st) = &opts.stats {
            if fused_path {
                // The fused path ships the batch's projection + Gram parts
                // in a single reduction round (one latency charge).
                st.record_fused_reductions(1, 3, 3 * p * std::mem::size_of::<S>());
            } else {
                st.record_reductions(3, 3 * p * std::mem::size_of::<S>());
            }
        }
        // Per-RHS residual at this fused step; converged members hold their
        // final value.
        let row: Vec<f64> = results
            .iter()
            .map(|r| {
                r.history
                    .get(it)
                    .and_then(|h| h.first().copied())
                    .unwrap_or_else(|| r.final_relres.first().copied().unwrap_or(0.0))
            })
            .collect();
        tracer.iteration(it / m, it, row, orth_name, None);
    }
    let final_relres: Vec<f64> = results
        .iter()
        .map(|r| r.final_relres.first().copied().unwrap_or(0.0))
        .collect();
    let _ = tracer.finish(converged, &final_relres);
    PseudoResult {
        per_rhs: results,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kryst_par::IdentityPrecond;
    use kryst_pde::poisson::{paper_rhs_block, poisson2d};
    use kryst_sparse::Csr;

    fn check_true_residual(a: &Csr<f64>, b: &DMat<f64>, x: &DMat<f64>, rtol: f64) {
        let mut r = a.apply(x);
        r.axpy(-1.0, b);
        for l in 0..b.ncols() {
            let rel = r.col_norm(l) / b.col_norm(l);
            assert!(rel <= rtol * 50.0, "column {l}: {rel}");
        }
    }

    #[test]
    fn pseudo_gmres_matches_sequential_iteration_counts() {
        let prob = poisson2d::<f64>(12, 12);
        let n = prob.a.nrows();
        let id = IdentityPrecond::new(n);
        let b = paper_rhs_block::<f64>(12, 12);
        let opts = SolveOpts {
            rtol: 1e-8,
            restart: 20,
            ..Default::default()
        };
        let mut xp = DMat::zeros(n, 4);
        let pres = solve(&prob.a, &id, &b, &mut xp, &opts, PseudoMethod::Gmres, None);
        assert!(pres.converged);
        check_true_residual(&prob.a, &b, &xp, 1e-8);
        // Sequential single-RHS solves must see identical iteration counts —
        // the fusion changes scheduling, not numerics.
        for l in 0..4 {
            let bl = DMat::from_col_major(n, 1, b.col(l).to_vec());
            let mut xl = DMat::zeros(n, 1);
            let r = crate::gmres::solve(&prob.a, &id, &bl, &mut xl, &opts);
            assert_eq!(
                r.iterations, pres.per_rhs[l].iterations,
                "RHS {l}: fused {} vs sequential {}",
                pres.per_rhs[l].iterations, r.iterations
            );
        }
    }

    #[test]
    fn pseudo_gcrodr_recycles_per_rhs() {
        let prob = poisson2d::<f64>(14, 14);
        let n = prob.a.nrows();
        let id = IdentityPrecond::new(n);
        let b = paper_rhs_block::<f64>(14, 14);
        let opts = SolveOpts {
            rtol: 1e-8,
            restart: 15,
            recycle: 5,
            same_system: true,
            ..Default::default()
        };
        let mut ctxs: Vec<SolverContext<f64>> = Vec::new();
        let mut x1 = DMat::zeros(n, 4);
        let r1 = solve(
            &prob.a,
            &id,
            &b,
            &mut x1,
            &opts,
            PseudoMethod::GcroDr,
            Some(&mut ctxs),
        );
        assert!(r1.converged);
        check_true_residual(&prob.a, &b, &x1, 1e-8);
        // Second solve of the same systems: recycling must cut iterations.
        let mut x2 = DMat::zeros(n, 4);
        let r2 = solve(
            &prob.a,
            &id,
            &b,
            &mut x2,
            &opts,
            PseudoMethod::GcroDr,
            Some(&mut ctxs),
        );
        assert!(r2.converged);
        check_true_residual(&prob.a, &b, &x2, 1e-8);
        assert!(
            r2.iterations < r1.iterations,
            "pseudo-BGCRO-DR recycling: {} !< {}",
            r2.iterations,
            r1.iterations
        );
    }

    #[test]
    fn early_convergence_shrinks_batch_without_deadlock() {
        let prob = poisson2d::<f64>(10, 10);
        let n = prob.a.nrows();
        let id = IdentityPrecond::new(n);
        // Column 0 trivial (zero RHS → converges immediately), column 1 hard.
        let mut b = DMat::zeros(n, 2);
        for i in 0..n {
            b[(i, 1)] = 1.0 + ((i * 3) % 7) as f64;
        }
        let opts = SolveOpts {
            rtol: 1e-9,
            restart: 10,
            ..Default::default()
        };
        let mut x = DMat::zeros(n, 2);
        let res = solve(&prob.a, &id, &b, &mut x, &opts, PseudoMethod::Gmres, None);
        assert!(res.converged);
        assert_eq!(res.per_rhs[0].iterations, 0);
        assert!(res.per_rhs[1].iterations > 0);
    }

    #[test]
    fn single_member_group_degenerates_gracefully() {
        let prob = poisson2d::<f64>(8, 8);
        let n = prob.a.nrows();
        let id = IdentityPrecond::new(n);
        let b = DMat::from_fn(n, 1, |i, _| (i % 3) as f64);
        let mut x = DMat::zeros(n, 1);
        let res = solve(
            &prob.a,
            &id,
            &b,
            &mut x,
            &SolveOpts::default(),
            PseudoMethod::Gmres,
            None,
        );
        assert!(res.converged);
    }
}
