//! LGMRES(m, k) — "Loose GMRES" with error-approximation augmentation.
//!
//! The PETSc baseline of the paper's §IV-C (`-ksp_type lgmres
//! -ksp_lgmres_augment 10`): each restart cycle minimizes the residual over
//! the Krylov space `K_{m−k}(A, r)` *augmented* with the `k` most recent
//! error approximations `z_i = x_{i} − x_{i−1}` (Baker, Jessup &
//! Manteuffel). Unlike GCRO-DR the augmentation vectors carry no spectral
//! deflation and cannot be reused across systems — which is exactly the gap
//! the paper exploits (Fig. 3c/3d: 269 LGMRES vs 173 GCRO-DR iterations).

use crate::cycle::{rhs_norms, BlockArnoldi, PrecondMode};
use crate::opts::{SolveOpts, SolveResult};
use crate::trace::SolveTracer;
use kryst_dense::{blas, chol, DMat};
use kryst_obs::SpanKind;
use kryst_par::{LinOp, PrecondOp};
use kryst_scalar::{Real, Scalar};
use std::collections::VecDeque;

/// Solve `A·x = b` (single RHS) with LGMRES(m, k); `opts.restart` is `m`,
/// `opts.recycle` is the augmentation count `k`.
pub fn solve<S: Scalar>(
    a: &dyn LinOp<S>,
    pc: &dyn PrecondOp<S>,
    b: &DMat<S>,
    x: &mut DMat<S>,
    opts: &SolveOpts,
) -> SolveResult {
    assert_eq!(b.ncols(), 1, "LGMRES is a single-RHS method");
    let m = opts.restart.max(2);
    let k = opts.recycle.clamp(1, m - 1);
    let m_arnoldi = m - k;
    let mode = PrecondMode::new(pc, opts.side);
    let bnorms = rhs_norms(b);
    let mut tracer = SolveTracer::begin(opts, "lgmres", 0, a.nrows(), 1);
    let orth_name = opts.orth.name();
    let mut cycle = 0usize;
    let mut iters = 0usize;
    let mut converged = false;
    // Stored (z, A·z) pairs from previous cycles.
    let mut aug: VecDeque<(DMat<S>, DMat<S>)> = VecDeque::new();

    // Buffer pool shared by every cycle: residuals and the per-step n × p
    // Arnoldi temporaries reuse the same allocations for the whole solve.
    let mut ws = kryst_sparse::SpmmWorkspace::new();
    let mut r = mode.residual_ws(a, b, x, &mut ws);
    'outer: while iters < opts.max_iters {
        let rn = r.col_norm(0).to_f64();
        if rn <= opts.rtol * bnorms[0] {
            converged = true;
            break;
        }
        let cyc = tracer.span_start();
        // Arnoldi phase: m−k steps on the current residual.
        let mut arn = BlockArnoldi::new(
            a,
            &mode,
            m_arnoldi,
            1,
            opts.orth,
            None,
            opts.stats.as_deref(),
        )
        .with_path(opts.ortho)
        .with_workspace(std::mem::take(&mut ws));
        arn.start(&r);
        let mut first = true;
        while arn.can_step() && iters < opts.max_iters {
            let res = arn.step();
            iters += 1;
            tracer.iteration(
                cycle,
                iters - 1,
                vec![res[0] / bnorms[0]],
                orth_name,
                arn.breakdown_rank(first),
            );
            first = false;
            if res[0] <= opts.rtol * bnorms[0] {
                // Converged inside the Krylov phase: plain GMRES update.
                let y = arn.solve_y();
                arn.update_solution(&y, x);
                ws = arn.into_workspace();
                converged = true;
                tracer.span_end(cyc, SpanKind::Cycle, cycle);
                break 'outer;
            }
        }
        tracer.span_end(cyc, SpanKind::Cycle, cycle);
        let restart_probe = tracer.span_start();
        // Augmented minimization: directions D = [Z_arnoldi, z_prev…],
        // images G = [V·H̄, A·z_prev…]; minimize ‖r − G·y‖ exactly.
        let q = aug.len();
        let zarn = arn.z_active();
        let varn = arn.v_active();
        let vh = blas::matmul(&varn, blas::Op::None, &arn.hraw_active(), blas::Op::None);
        ws = arn.into_workspace();
        let mut dmat = zarn;
        let mut gmat = vh;
        for (z, az) in &aug {
            dmat = dmat.hcat(z);
            gmat = gmat.hcat(az);
        }
        // Least squares via CholQR of G (one fused reduction). Clamp tiny
        // pivots: once nearly converged the augmented directions become
        // dependent and an unguarded solve would inject NaNs.
        let mut qg = gmat.clone();
        let out = chol::cholqr(&mut qg);
        if let Some(st) = &opts.stats {
            st.record_reduction(std::mem::size_of_val(out.r.as_slice()));
        }
        let rfac = out.r;
        let mut rmax = 0.0f64;
        for i in 0..rfac.nrows() {
            rmax = rmax.max(rfac[(i, i)].abs().to_f64());
        }
        let floor = rmax.max(f64::EPSILON) * 1e-10;
        let mut y = blas::adjoint_times(&qg, &r);
        // Truncating back-substitution: directions with a negligible pivot
        // carry no new information and are dropped (y_i = 0) rather than
        // amplified.
        {
            let nr = rfac.nrows();
            let ycol = y.col_mut(0);
            for i in (0..nr).rev() {
                if rfac[(i, i)].abs().to_f64() < floor {
                    ycol[i] = S::zero();
                    continue;
                }
                let mut acc = ycol[i];
                for jj in i + 1..nr {
                    acc -= rfac[(i, jj)] * ycol[jj];
                }
                ycol[i] = acc / rfac[(i, i)];
            }
        }
        // Update: x += D·y; store the new error approximation pair.
        let znew = blas::matmul(&dmat, blas::Op::None, &y, blas::Op::None);
        let aznew = blas::matmul(&gmat, blas::Op::None, &y, blas::Op::None);
        x.axpy(S::one(), &znew);
        ws.put(r);
        r = mode.residual_ws(a, b, x, &mut ws);
        // Count the augmented directions as iterations (they are extra
        // minimization dimensions, matching PETSc's per-cycle work).
        let rel = r.col_norm(0).to_f64() / bnorms[0];
        for _ in 0..q {
            iters += 1;
            tracer.iteration(cycle, iters - 1, vec![rel], orth_name, None);
        }
        if q == k {
            aug.pop_front();
        }
        // Normalize the stored pair (the direction is what matters) so the
        // augmented least-squares matrix keeps O(1) columns as the residual
        // shrinks; drop degenerate pairs.
        let aznorm = aznew.fro_norm().to_f64();
        if aznorm > 1e-300 {
            let mut zsc = znew;
            let mut azsc = aznew;
            let inv = S::from_f64(1.0 / aznorm);
            zsc.scale(inv);
            azsc.scale(inv);
            aug.push_back((zsc, azsc));
        }
        tracer.span_end(restart_probe, SpanKind::Restart, cycle);
        cycle += 1;
        if rel <= opts.rtol {
            converged = true;
            break;
        }
    }

    ws.put(r);
    let rfin = mode.residual_ws(a, b, x, &mut ws);
    let final_relres = vec![rfin.col_norm(0).to_f64() / bnorms[0]];
    let converged = converged && final_relres[0] <= opts.rtol * 10.0;
    let history = tracer.finish(converged, &final_relres);
    SolveResult {
        iterations: iters,
        converged,
        history,
        final_relres,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmres;
    use kryst_par::IdentityPrecond;
    use kryst_pde::poisson::poisson2d;

    #[test]
    fn lgmres_converges() {
        let prob = poisson2d::<f64>(16, 16);
        let n = prob.a.nrows();
        let id = IdentityPrecond::new(n);
        let b = DMat::from_fn(n, 1, |i, _| 1.0 + ((i % 4) as f64));
        let mut x = DMat::zeros(n, 1);
        let opts = SolveOpts {
            rtol: 1e-9,
            restart: 15,
            recycle: 4,
            max_iters: 2000,
            ..Default::default()
        };
        let res = solve(&prob.a, &id, &b, &mut x, &opts);
        assert!(res.converged, "{:?}", res.final_relres);
        let mut r = prob.a.apply(&x);
        r.axpy(-1.0, &b);
        assert!(r.fro_norm() < 1e-7 * b.fro_norm());
    }

    #[test]
    fn lgmres_beats_plain_restarted_gmres() {
        // The whole point of augmentation: fewer iterations than GMRES(m)
        // at equal restart length when restarts hurt.
        let prob = poisson2d::<f64>(24, 24);
        let n = prob.a.nrows();
        let id = IdentityPrecond::new(n);
        let b = DMat::from_fn(n, 1, |i, _| (((i * 7) % 11) as f64) - 5.0);
        let opts = SolveOpts {
            rtol: 1e-8,
            restart: 12,
            recycle: 3,
            max_iters: 5000,
            ..Default::default()
        };
        let mut xl = DMat::zeros(n, 1);
        let lg = solve(&prob.a, &id, &b, &mut xl, &opts);
        let mut xg = DMat::zeros(n, 1);
        let gm = gmres::solve(&prob.a, &id, &b, &mut xg, &opts);
        assert!(lg.converged && gm.converged);
        assert!(
            lg.iterations < gm.iterations,
            "LGMRES {} !< GMRES {}",
            lg.iterations,
            gm.iterations
        );
    }

    #[test]
    fn augmentation_queue_is_bounded() {
        // Indirect check: long solve with k=2 must not grow memory — the
        // dimensions of the final minimization stay ≤ m_arnoldi + k. We
        // verify via convergence within the iteration cap on a harder grid.
        let prob = poisson2d::<f64>(30, 30);
        let n = prob.a.nrows();
        let id = IdentityPrecond::new(n);
        let b = DMat::from_fn(n, 1, |i, _| ((i % 13) as f64) - 6.0);
        let mut x = DMat::zeros(n, 1);
        let opts = SolveOpts {
            rtol: 1e-8,
            restart: 10,
            recycle: 2,
            max_iters: 4000,
            ..Default::default()
        };
        let res = solve(&prob.a, &id, &b, &mut x, &opts);
        assert!(res.converged);
    }
}
