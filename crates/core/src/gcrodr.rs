//! (Block) GCRO-DR — Generalized Conjugate Residual with inner
//! Orthogonalization and Deflated Restarting (paper Fig. 1).
//!
//! The solver keeps a recycled pair `(U_k, C_k)` with `A·U_k = C_k` and
//! `C_kᴴ·C_k = I` inside a [`SolverContext`] that persists across `solve`
//! calls (the paper's "singleton class"). Per Fig. 1:
//!
//! * **lines 2–9** — on a new system the pair is refreshed with a
//!   distributed QR of `A·U_k` (skipped with
//!   [`crate::SolveOpts::same_system`], §III-B), then the initial guess is
//!   corrected and the residual projected off `C_k`;
//! * **lines 10–21** — without a recycle space the first cycle is plain
//!   (block) GMRES followed by the harmonic-Ritz eigenproblem in the cheap
//!   formulation of eq. (2);
//! * **lines 22–39** — subsequent cycles run Arnoldi with the projected
//!   operator `(I − C_k·C_kᴴ)·A` (one extra reduction per iteration,
//!   §III-D) and refresh the recycle space from the generalized
//!   eigenproblem eq. (3) with strategy **A** (3a, one extra fused
//!   reduction) or **B** (3b, communication-free);
//! * `U_k` lives in the *solution* space (`Z`-side), which is what makes the
//!   same code handle right, left, and **flexible** preconditioning
//!   (FGCRO-DR) uniformly.

use crate::cycle::{any_above, rhs_norms, BlockArnoldi, PrecondMode};
use crate::opts::{RecycleStrategy, SolveOpts, SolveResult};
use crate::trace::SolveTracer;
use kryst_dense::eig::{self, EigDecomp};
use kryst_dense::qr::HouseholderQr;
use kryst_dense::{blas, chol, tri, DMat};
use kryst_obs::{profile, DiagKind, Phase, SpanKind};
use kryst_par::{LinOp, PrecondOp};
use kryst_scalar::{Real, Scalar};

/// The recycled subspace pair.
pub struct RecycleSpace<S: Scalar> {
    /// Solution-space block (`n × k·p`).
    pub u: DMat<S>,
    /// Iteration-space orthonormal block with `A·U = C`.
    pub c: DMat<S>,
}

/// Persistent solver state across a sequence of linear systems — the
/// paper's singleton holding `U_k`/`C_k` between solves.
#[derive(Default)]
pub struct SolverContext<S: Scalar> {
    /// Recycled subspace from previous solves, if any.
    pub recycle: Option<RecycleSpace<S>>,
    /// Number of completed `solve` calls.
    pub solves: usize,
}

impl<S: Scalar> SolverContext<S> {
    /// Fresh, empty context.
    pub fn new() -> Self {
        Self {
            recycle: None,
            solves: 0,
        }
    }

    /// Drop any recycled information.
    pub fn reset(&mut self) {
        self.recycle = None;
    }

    /// Columns currently recycled.
    pub fn recycled_cols(&self) -> usize {
        self.recycle.as_ref().map(|r| r.u.ncols()).unwrap_or(0)
    }
}

/// Solve `A·X = B` with (block) GCRO-DR, recycling through `ctx`.
pub fn solve<S: Scalar>(
    a: &dyn LinOp<S>,
    pc: &dyn PrecondOp<S>,
    b: &DMat<S>,
    x: &mut DMat<S>,
    opts: &SolveOpts,
    ctx: &mut SolverContext<S>,
) -> SolveResult {
    let n = a.nrows();
    let p = b.ncols();
    let m = opts.restart.max(2);
    let k_blocks_target = opts.recycle.clamp(1, m - 1);
    let kc_target = k_blocks_target * p;
    let mode = PrecondMode::new(pc, opts.side);
    let bnorms = rhs_norms(b);
    let stats = opts.stats.as_deref();
    let mut tracer = SolveTracer::begin(opts, "gcrodr", ctx.solves, n, p);
    let orth_name = opts.orth.name();
    let mut cycle = 0usize;
    let mut iters = 0usize;
    // Buffer pool shared by every Arnoldi cycle of this solve.
    let mut ws = kryst_sparse::SpmmWorkspace::new();

    // The paper's Fig. 1 guards the refresh work with `A_i ≠ A_{i−1}`: for
    // the very first system in a sequence that condition is vacuously true,
    // so the recycle space matures during the first solve even when the
    // caller declares a non-variable sequence.
    let first_solve = ctx.solves == 0;
    let refresh_allowed = !opts.same_system || first_solve;
    let mut r = mode.residual_ws(a, b, x, &mut ws);
    {
        let r0: Vec<f64> = r.col_norms().iter().map(|v| v.to_f64()).collect();
        if !any_above(&r0, &bnorms, opts.rtol) {
            ctx.solves += 1;
            let final_relres: Vec<f64> = r0.iter().zip(&bnorms).map(|(r, b)| r / b).collect();
            let history = tracer.finish(true, &final_relres);
            return SolveResult {
                iterations: 0,
                converged: true,
                history,
                final_relres,
            };
        }
    }

    // ---- Lines 2–9: reuse a previous recycle space. --------------------
    let setup_probe = tracer.span_start();
    let setup_timer = profile(Phase::RecycleSetup);
    let mut space: Option<RecycleSpace<S>> = None;
    if let Some(mut rec) = ctx.recycle.take() {
        if rec.u.nrows() == n && rec.u.ncols() >= 1 {
            if !opts.same_system {
                // Lines 4–6: [Q,R] = distributed_qr(A·U); C ⟵ Q; U ⟵ U·R⁻¹.
                let mut w = mode.apply_op_ws(a, &rec.u, &mut ws);
                let out = chol::cholqr(&mut w);
                if let Some(st) = stats {
                    st.record_reduction(std::mem::size_of_val(out.r.as_slice()));
                }
                safe_right_solve(&mut rec.u, &out.r);
                rec.c = w;
            }
            // Lines 8–9: X ⟵ X + U·CᴴR; R ⟵ R − C·CᴴR.
            let coef = blas::adjoint_times(&rec.c, &r);
            if let Some(st) = stats {
                st.record_reduction(std::mem::size_of_val(coef.as_slice()));
            }
            blas::gemm(
                S::one(),
                &rec.u,
                blas::Op::None,
                &coef,
                blas::Op::None,
                S::one(),
                x,
            );
            blas::gemm(
                -S::one(),
                &rec.c,
                blas::Op::None,
                &coef,
                blas::Op::None,
                S::one(),
                &mut r,
            );
            space = Some(rec);
        }
    }
    drop(setup_timer);
    tracer.span_end(setup_probe, SpanKind::Setup, 0);

    // ---- Lines 10–21: first cycle is plain (block) GMRES. ---------------
    if space.is_none() {
        let cyc_probe = tracer.span_start();
        let mut arn = BlockArnoldi::new(a, &mode, m, p, opts.orth, None, stats)
            .with_path(opts.ortho)
            .with_workspace(std::mem::take(&mut ws));
        arn.start(&r);
        let mut done = false;
        let mut first = true;
        while arn.can_step() && iters < opts.max_iters {
            let res = arn.step();
            iters += 1;
            let rel: Vec<f64> = res.iter().zip(&bnorms).map(|(rr, bb)| rr / bb).collect();
            tracer.iteration(cycle, iters - 1, rel, orth_name, arn.breakdown_rank(first));
            if arn.last_orth_passes() > 1 || arn.last_orth_refreshed() {
                tracer.diag(
                    cycle,
                    iters - 1,
                    DiagKind::OrthLoss,
                    arn.fused_loss(),
                    arn.last_orth_passes(),
                );
            }
            first = false;
            if !any_above(&res, &bnorms, opts.rtol) {
                done = true;
                break;
            }
        }
        tracer.span_end(cyc_probe, SpanKind::Cycle, cycle);
        let y = arn.solve_y();
        arn.update_solution(&y, x);
        ws.put(r);
        r = mode.residual_ws(a, b, x, &mut ws);
        // Lines 16–20: harmonic Ritz via eq. (2), then C/U extraction.
        let eig_probe = tracer.span_start();
        let j = arn.iterations();
        if j >= 1 {
            let kc = kc_target.min(j * p.max(1)).max(1);
            let jp = j * p;
            let hm = arn.hraw.block(0, 0, jp, jp);
            // M = [0; h̄ᴴ·h̄] — only the last p columns are nonzero, so the
            // harmonic-Ritz left-hand side H = H_m + H_m⁻ᴴ·M (equivalent to
            // the paper's eq. (2) formulation) needs one p-column solve with
            // H_mᴴ.
            let hlast = arn.hraw.block(jp, (j - 1) * p, p, p);
            let mut mcols = DMat::zeros(jp, p);
            let hh = blas::matmul(&hlast, blas::Op::ConjTrans, &hlast, blas::Op::None);
            mcols.set_block(jp - p, 0, &hh);
            let hm_h = hm.adjoint();
            let fac = kryst_dense::lu::Lu::factor(hm_h);
            let mut hmod = hm.clone();
            if !fac.is_singular() {
                fac.solve_in_place(&mut mcols);
                for c in 0..p {
                    for i in 0..jp {
                        hmod[(i, jp - p + c)] += mcols[(i, c)];
                    }
                }
            }
            let decomp = eig::eig(&hmod);
            let pk = select_smallest::<S>(&decomp, kc);
            let kc = pk.ncols();
            if kc >= 1 {
                tracer.diag(
                    cycle,
                    iters.saturating_sub(1),
                    DiagKind::RitzQuality,
                    min_ritz_magnitude(&decomp),
                    kc,
                );
                // [Q,R] = qr(H̄·P); C = V·Q; U = Z·P·R⁻¹.
                let hp = blas::matmul(&arn.hraw_active(), blas::Op::None, &pk, blas::Op::None);
                let f = HouseholderQr::factor(hp);
                let q = f.q_thin();
                let rfac = f.r();
                let c = blas::matmul(&arn.v_active(), blas::Op::None, &q, blas::Op::None);
                let mut u = blas::matmul(&arn.z_active(), blas::Op::None, &pk, blas::Op::None);
                safe_right_solve(&mut u, &rfac);
                space = Some(RecycleSpace { u, c });
            }
        }
        tracer.span_end(eig_probe, SpanKind::Eigensolve, cycle);
        ws = arn.into_workspace();
        cycle += 1;
        let _ = done;
        if !any_above(
            &r.col_norms().iter().map(|v| v.to_f64()).collect::<Vec<_>>(),
            &bnorms,
            opts.rtol,
        ) {
            ctx.recycle = space;
            ctx.solves += 1;
            let final_relres: Vec<f64> = r
                .col_norms()
                .iter()
                .zip(&bnorms)
                .map(|(rr, bb)| rr.to_f64() / bb)
                .collect();
            let converged = final_relres.iter().all(|&v| v <= opts.rtol * 10.0);
            let history = tracer.finish(converged, &final_relres);
            return SolveResult {
                iterations: iters,
                converged,
                history,
                final_relres,
            };
        }
    }

    // ---- Lines 22–39: deflated cycles with the projected operator. ------
    let mut converged = false;
    while iters < opts.max_iters && space.is_some() {
        let rec = space.take().unwrap();
        let kc = rec.u.ncols();
        let k_blocks = kc.div_ceil(p);
        let m_inner = (m - k_blocks.min(m - 1)).max(1);
        let cyc_probe = tracer.span_start();
        let mut arn = BlockArnoldi::new(a, &mode, m_inner, p, opts.orth, Some(&rec.c), stats)
            .with_path(opts.ortho)
            .with_workspace(std::mem::take(&mut ws));
        arn.start(&r);
        let mut done = false;
        let mut first = true;
        while arn.can_step() && iters < opts.max_iters {
            let res = arn.step();
            iters += 1;
            let rel: Vec<f64> = res.iter().zip(&bnorms).map(|(rr, bb)| rr / bb).collect();
            tracer.iteration(cycle, iters - 1, rel, orth_name, arn.breakdown_rank(first));
            if arn.last_orth_passes() > 1 || arn.last_orth_refreshed() {
                tracer.diag(
                    cycle,
                    iters - 1,
                    DiagKind::OrthLoss,
                    arn.fused_loss(),
                    arn.last_orth_passes(),
                );
            }
            first = false;
            if !any_above(&res, &bnorms, opts.rtol) {
                done = true;
                break;
            }
        }
        tracer.span_end(cyc_probe, SpanKind::Cycle, cycle);
        // Lines 27–29: solution update with both U and Z contributions.
        let restart_probe = tracer.span_start();
        let y = arn.solve_y();
        let cr = blas::adjoint_times(&rec.c, &r);
        if let Some(st) = stats {
            st.record_reduction(std::mem::size_of_val(cr.as_slice()));
        }
        let mut yk = cr;
        blas::gemm(
            -S::one(),
            &arn.e_active(),
            blas::Op::None,
            &y,
            blas::Op::None,
            S::one(),
            &mut yk,
        );
        blas::gemm(
            S::one(),
            &rec.u,
            blas::Op::None,
            &yk,
            blas::Op::None,
            S::one(),
            x,
        );
        arn.update_solution(&y, x);
        ws.put(r);
        r = mode.residual_ws(a, b, x, &mut ws);
        tracer.span_end(restart_probe, SpanKind::Restart, cycle);
        let rn: Vec<f64> = r.col_norms().iter().map(|v| v.to_f64()).collect();
        // Convergence is decided on the TRUE residual; the in-cycle estimate
        // (`done`) only ends the cycle early.
        let _ = done;
        if !any_above(&rn, &bnorms, opts.rtol) {
            converged = true;
        }

        // Lines 31–38: refresh the recycle space (skipped for non-variable
        // sequences after the first solve — §III-B — and once converged).
        if refresh_allowed && !converged && arn.iterations() > 0 {
            let parts = CycleParts {
                e: arn.e_active(),
                h: arn.hraw_active(),
                v: arn.v_active(),
                z: arn.z_active(),
                j: arn.iterations(),
                p,
            };
            ws = arn.into_workspace();
            let refresh_probe = tracer.span_start();
            let refresh_timer = profile(Phase::RecycleSetup);
            space = Some(refresh_recycle_space(
                rec, parts, kc, opts, stats, &tracer, cycle,
            ));
            drop(refresh_timer);
            tracer.span_end(refresh_probe, SpanKind::RecycleRefresh, cycle);
        } else {
            ws = arn.into_workspace();
            space = Some(rec);
        }
        cycle += 1;
        if converged {
            break;
        }
    }

    ctx.recycle = space;
    ctx.solves += 1;
    ws.put(r);
    let rfin = mode.residual_ws(a, b, x, &mut ws);
    let final_relres: Vec<f64> = rfin
        .col_norms()
        .iter()
        .zip(&bnorms)
        .map(|(rr, bb)| rr.to_f64() / bb)
        .collect();
    let converged = converged && final_relres.iter().all(|&v| v <= opts.rtol * 10.0);
    let history = tracer.finish(converged, &final_relres);
    SolveResult {
        iterations: iters,
        converged,
        history,
        final_relres,
    }
}

/// The cycle data the recycle-space refresh consumes (extracted from the
/// Arnoldi driver so the borrow of `C` can end first).
struct CycleParts<S> {
    e: DMat<S>,
    h: DMat<S>,
    v: DMat<S>,
    z: DMat<S>,
    j: usize,
    p: usize,
}

/// Lines 31–38 of Fig. 1: generalized harmonic-Ritz refresh of `(U, C)`.
fn refresh_recycle_space<S: Scalar>(
    mut rec: RecycleSpace<S>,
    parts: CycleParts<S>,
    kc: usize,
    opts: &SolveOpts,
    stats: Option<&kryst_par::CommStats>,
    tracer: &SolveTracer,
    cycle: usize,
) -> RecycleSpace<S> {
    let p = parts.p;
    let j = parts.j;
    let jp = j * p;
    // Line 32: scale the columns of U to unit norm; D holds the scalings.
    let mut d = DMat::<S>::zeros(kc, kc);
    for i in 0..kc {
        let nrm = rec.u.col_norm(i);
        let inv = if nrm.to_f64() > 0.0 {
            S::one() / S::from_real(nrm)
        } else {
            S::one()
        };
        rec.u.scale_col(i, inv);
        d[(i, i)] = inv;
    }
    if let Some(st) = stats {
        // The column norms are one fused reduction in a distributed run.
        st.record_reduction(kc * std::mem::size_of::<S>());
    }
    // G = [[D, E], [0, H̄]] of size (kc + (j+1)p) × (kc + jp).
    let rows = kc + (j + 1) * p;
    let cols = kc + jp;
    let mut g = DMat::<S>::zeros(rows, cols);
    g.set_block(0, 0, &d);
    g.set_block(0, kc, &parts.e);
    g.set_block(kc, kc, &parts.h);
    let t = blas::matmul(&g, blas::Op::ConjTrans, &g, blas::Op::None);
    // Right-hand side W per eq. (3a)/(3b).
    let w = match opts.recycle_strategy {
        RecycleStrategy::A => {
            // J = [[CᴴU, 0], [VᴴU, I]] — one extra fused reduction.
            let cu = blas::adjoint_times(&rec.c, &rec.u);
            let vu = blas::adjoint_times(&parts.v, &rec.u);
            if let Some(st) = stats {
                st.record_reduction(
                    (cu.as_slice().len() + vu.as_slice().len()) * std::mem::size_of::<S>(),
                );
            }
            let mut jmat = DMat::<S>::zeros(rows, cols);
            jmat.set_block(0, 0, &cu);
            jmat.set_block(kc, 0, &vu);
            for i in 0..jp {
                jmat[(kc + i, kc + i)] = S::one();
            }
            blas::matmul(&g, blas::Op::ConjTrans, &jmat, blas::Op::None)
        }
        RecycleStrategy::B => {
            // W = Gᴴ·[I; 0]: the adjoint of G's leading square block —
            // no communication.
            let gtop = g.block(0, 0, cols, cols);
            gtop.adjoint()
        }
    };
    let eig_probe = tracer.span_start();
    let decomp = eig::eig_generalized(&t, &w);
    let pk = select_smallest::<S>(&decomp, kc);
    tracer.span_end(eig_probe, SpanKind::Eigensolve, cycle);
    if pk.ncols() == 0 {
        return rec;
    }
    tracer.diag(
        cycle,
        tracer.iterations().saturating_sub(1),
        DiagKind::RitzQuality,
        min_ritz_magnitude(&decomp),
        pk.ncols(),
    );
    // Lines 35–37: [Q,R] = qr(G·P); C ⟵ [C V]·Q; U ⟵ [U Z]·P·R⁻¹.
    let gp = blas::matmul(&g, blas::Op::None, &pk, blas::Op::None);
    let f = HouseholderQr::factor(gp);
    let q = f.q_thin();
    let rfac = f.r();
    let cv = rec.c.hcat(&parts.v);
    let c_new = blas::matmul(&cv, blas::Op::None, &q, blas::Op::None);
    let uz = rec.u.hcat(&parts.z);
    let mut u_new = blas::matmul(&uz, blas::Op::None, &pk, blas::Op::None);
    safe_right_solve(&mut u_new, &rfac);
    RecycleSpace { u: u_new, c: c_new }
}

/// Smallest harmonic-Ritz magnitude of a deflation eigenproblem — the
/// quality signal carried on [`DiagKind::RitzQuality`] events (a kept value
/// near zero flags a nearly singular recycle candidate).
fn min_ritz_magnitude<R: Real>(decomp: &EigDecomp<R>) -> f64 {
    decomp.values.iter().fold(f64::INFINITY, |acc, l| {
        let re = l.re.to_f64();
        let im = l.im.to_f64();
        acc.min(re.hypot(im))
    })
}

/// `X ⟵ X·R⁻¹` with tiny-pivot protection (deflation eigenvectors can be
/// nearly dependent; a clamped pivot keeps the basis finite and the next
/// CholQR/QR pass cleans it up).
fn safe_right_solve<S: Scalar>(x: &mut DMat<S>, r: &DMat<S>) {
    let k = x.ncols();
    let mut rmax = S::Real::zero();
    for i in 0..k {
        rmax = rmax.max(r[(i, i)].abs());
    }
    let floor = rmax.max(S::Real::epsilon()) * S::Real::epsilon() * S::Real::from_f64(1e3);
    let mut rsafe = r.clone();
    for i in 0..k {
        if rsafe[(i, i)].abs() < floor {
            rsafe[(i, i)] = S::from_real(floor);
        }
    }
    tri::right_solve_upper(x, &rsafe);
}

/// Select the eigenvectors of the `k` smallest-magnitude eigenvalues as a
/// matrix in the working scalar type. For real scalars, complex-conjugate
/// pairs contribute their real and imaginary parts (both are needed to span
/// the invariant subspace); for complex scalars the vectors embed directly.
fn select_smallest<S: Scalar>(decomp: &EigDecomp<S::Real>, k: usize) -> DMat<S> {
    let n = decomp.vectors.nrows();
    let idx = decomp.smallest_indices(n);
    let mut cols: Vec<Vec<S>> = Vec::with_capacity(k);
    if S::is_complex() {
        for &i in idx.iter().take(k) {
            let col: Vec<S> = (0..n)
                .map(|r| {
                    let v = decomp.vectors[(r, i)];
                    S::from_parts(v.re.to_f64(), v.im.to_f64())
                })
                .collect();
            cols.push(col);
        }
    } else {
        let tol = S::Real::epsilon().to_f64().sqrt();
        let mut used = vec![false; decomp.values.len()];
        for &i in idx.iter() {
            if cols.len() >= k {
                break;
            }
            if used[i] {
                continue;
            }
            used[i] = true;
            let lam = decomp.values[i];
            let scale = 1.0 + lam.abs().to_f64();
            if lam.im.to_f64().abs() <= tol * scale {
                // Real eigenvalue: real part of the vector.
                cols.push(
                    (0..n)
                        .map(|r| S::from_f64(decomp.vectors[(r, i)].re.to_f64()))
                        .collect(),
                );
            } else {
                // Complex pair: real and imaginary parts; mark the partner.
                cols.push(
                    (0..n)
                        .map(|r| S::from_f64(decomp.vectors[(r, i)].re.to_f64()))
                        .collect(),
                );
                if cols.len() < k {
                    cols.push(
                        (0..n)
                            .map(|r| S::from_f64(decomp.vectors[(r, i)].im.to_f64()))
                            .collect(),
                    );
                }
                for (j, &lj) in decomp.values.iter().enumerate() {
                    if !used[j]
                        && (lj.re - lam.re).abs().to_f64() <= tol * scale
                        && (lj.im + lam.im).abs().to_f64() <= tol * scale
                    {
                        used[j] = true;
                        break;
                    }
                }
            }
        }
    }
    // Drop numerically zero columns.
    let mut out_cols: Vec<Vec<S>> = Vec::new();
    for col in cols {
        let nrm: f64 = col.iter().map(|v| v.abs_sqr().to_f64()).sum();
        if nrm.sqrt() > 1e-14 {
            out_cols.push(col);
        }
    }
    let kk = out_cols.len();
    DMat::from_fn(n, kk, |i, j| out_cols[j][i])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmres;
    use crate::opts::PrecondSide;
    use kryst_par::IdentityPrecond;
    use kryst_pde::poisson::{paper_rhs_sequence, poisson2d};
    use kryst_sparse::Csr;

    fn check_true_residual<S: Scalar>(a: &Csr<S>, b: &DMat<S>, x: &DMat<S>, rtol: f64) {
        let mut r = a.apply(x);
        r.axpy(-S::one(), b);
        for l in 0..b.ncols() {
            let rel = r.col_norm(l).to_f64() / b.col_norm(l).to_f64();
            assert!(rel <= rtol * 50.0, "column {l}: true rel residual {rel}");
        }
    }

    #[test]
    fn single_solve_matches_gmres_quality() {
        let prob = poisson2d::<f64>(14, 14);
        let n = prob.a.nrows();
        let id = IdentityPrecond::new(n);
        let b = DMat::from_fn(n, 1, |i, _| ((i % 6) as f64) - 2.5);
        let opts = SolveOpts {
            rtol: 1e-9,
            restart: 20,
            recycle: 5,
            ..Default::default()
        };
        let mut ctx = SolverContext::new();
        let mut x = DMat::zeros(n, 1);
        let res = solve(&prob.a, &id, &b, &mut x, &opts, &mut ctx);
        assert!(res.converged, "GCRO-DR: {:?}", res.final_relres);
        check_true_residual(&prob.a, &b, &x, 1e-9);
        assert!(ctx.recycle.is_some(), "recycle space must persist");
        assert_eq!(ctx.recycled_cols(), 5);
    }

    #[test]
    fn recycling_reduces_iterations_on_same_system() {
        // The §III-B scenario: identical operator, varying RHS.
        let prob = poisson2d::<f64>(20, 20);
        let n = prob.a.nrows();
        let id = IdentityPrecond::new(n);
        let rhss = paper_rhs_sequence::<f64>(20, 20);
        let opts = SolveOpts {
            rtol: 1e-8,
            restart: 25,
            recycle: 8,
            same_system: true,
            ..Default::default()
        };
        let mut ctx = SolverContext::new();
        let mut counts = Vec::new();
        for rhs in &rhss {
            let b = DMat::from_col_major(n, 1, rhs.clone());
            let mut x = DMat::zeros(n, 1);
            let res = solve(&prob.a, &id, &b, &mut x, &opts, &mut ctx);
            assert!(res.converged);
            check_true_residual(&prob.a, &b, &x, 1e-8);
            counts.push(res.iterations);
        }
        assert!(
            counts[1..].iter().all(|&c| c < counts[0]),
            "recycling must cut iterations: {counts:?}"
        );
    }

    #[test]
    fn gcrodr_beats_gmres_on_rhs_sequence() {
        let prob = poisson2d::<f64>(20, 20);
        let n = prob.a.nrows();
        let id = IdentityPrecond::new(n);
        let rhss = paper_rhs_sequence::<f64>(20, 20);
        let opts = SolveOpts {
            rtol: 1e-8,
            restart: 25,
            recycle: 8,
            ..Default::default()
        };

        let mut total_gmres = 0;
        let mut total_gcrodr = 0;
        let mut ctx = SolverContext::new();
        for rhs in &rhss {
            let b = DMat::from_col_major(n, 1, rhs.clone());
            let mut xg = DMat::zeros(n, 1);
            total_gmres += gmres::solve(&prob.a, &id, &b, &mut xg, &opts).iterations;
            let mut xr = DMat::zeros(n, 1);
            total_gcrodr += solve(&prob.a, &id, &b, &mut xr, &opts, &mut ctx).iterations;
        }
        assert!(
            total_gcrodr < total_gmres,
            "GCRO-DR {total_gcrodr} !< GMRES {total_gmres}"
        );
    }

    #[test]
    fn recycling_survives_operator_change() {
        // §IV-C scenario: slowly varying operators (diagonal perturbation).
        let prob = poisson2d::<f64>(16, 16);
        let n = prob.a.nrows();
        let id = IdentityPrecond::new(n);
        let opts = SolveOpts {
            rtol: 1e-8,
            restart: 20,
            recycle: 6,
            ..Default::default()
        };
        let mut ctx = SolverContext::new();
        let b = DMat::from_fn(n, 1, |i, _| ((i % 5) as f64) - 2.0);
        let mut iters = Vec::new();
        for step in 0..3 {
            let shift = 1.0 + 0.01 * step as f64;
            let a = prob.a.shift_diag(shift);
            let mut x = DMat::zeros(n, 1);
            let res = solve(&a, &id, &b, &mut x, &opts, &mut ctx);
            assert!(res.converged, "step {step}: {:?}", res.final_relres);
            check_true_residual(&a, &b, &x, 1e-8);
            iters.push(res.iterations);
        }
        assert!(iters[2] < iters[0], "sequence iterations {iters:?}");
    }

    #[test]
    fn block_gcrodr_with_multiple_rhs() {
        let prob = poisson2d::<f64>(14, 14);
        let n = prob.a.nrows();
        let id = IdentityPrecond::new(n);
        let p = 3;
        let b = DMat::from_fn(n, p, |i, j| (((i + 2 * j) % 9) as f64) - 4.0);
        let opts = SolveOpts {
            rtol: 1e-8,
            restart: 15,
            recycle: 4,
            ..Default::default()
        };
        let mut ctx = SolverContext::new();
        let mut x = DMat::zeros(n, p);
        let res = solve(&prob.a, &id, &b, &mut x, &opts, &mut ctx);
        assert!(res.converged, "BGCRO-DR: {:?}", res.final_relres);
        check_true_residual(&prob.a, &b, &x, 1e-8);
        // Recycle space width is k·p.
        assert_eq!(ctx.recycled_cols(), 4 * p);
        // Second block solve benefits.
        let mut x2 = DMat::zeros(n, p);
        let opts2 = SolveOpts {
            same_system: true,
            ..opts.clone()
        };
        let res2 = solve(&prob.a, &id, &b, &mut x2, &opts2, &mut ctx);
        assert!(res2.converged);
        assert!(
            res2.iterations < res.iterations,
            "{} !< {}",
            res2.iterations,
            res.iterations
        );
    }

    #[test]
    fn strategies_a_and_b_both_converge() {
        let prob = poisson2d::<f64>(16, 16);
        let n = prob.a.nrows();
        let id = IdentityPrecond::new(n);
        let b = DMat::from_fn(n, 1, |i, _| 1.0 + ((i % 3) as f64));
        for strat in [RecycleStrategy::A, RecycleStrategy::B] {
            let opts = SolveOpts {
                rtol: 1e-8,
                restart: 12,
                recycle: 4,
                recycle_strategy: strat,
                ..Default::default()
            };
            let mut ctx = SolverContext::new();
            let mut x = DMat::zeros(n, 1);
            let res = solve(&prob.a, &id, &b, &mut x, &opts, &mut ctx);
            assert!(res.converged, "{strat:?}: {:?}", res.final_relres);
            check_true_residual(&prob.a, &b, &x, 1e-8);
        }
    }

    #[test]
    fn flexible_gcrodr_with_variable_preconditioner() {
        use kryst_precond::{Amg, AmgOpts, SmootherKind};
        let prob = poisson2d::<f64>(20, 20);
        let n = prob.a.nrows();
        let amg = Amg::new(
            &prob.a,
            prob.near_nullspace.as_ref(),
            &AmgOpts {
                smoother: SmootherKind::Gmres { iters: 2 },
                ..Default::default()
            },
        );
        let rhss = paper_rhs_sequence::<f64>(20, 20);
        let opts = SolveOpts {
            rtol: 1e-8,
            restart: 20,
            recycle: 6,
            side: PrecondSide::Flexible,
            same_system: true,
            ..Default::default()
        };
        let mut ctx = SolverContext::new();
        let mut iters = Vec::new();
        for rhs in &rhss {
            let b = DMat::from_col_major(n, 1, rhs.clone());
            let mut x = DMat::zeros(n, 1);
            let res = solve(&prob.a, &amg, &b, &mut x, &opts, &mut ctx);
            assert!(res.converged, "FGCRO-DR: {:?}", res.final_relres);
            check_true_residual(&prob.a, &b, &x, 1e-7);
            iters.push(res.iterations);
        }
        assert!(iters[1] <= iters[0], "FGCRO-DR recycling: {iters:?}");
    }

    #[test]
    fn complex_gcrodr_on_maxwell() {
        use kryst_pde::maxwell::{antenna_ring_rhs, maxwell3d, MaxwellParams};
        use kryst_scalar::C64;
        let params = MaxwellParams::matching_solution(4);
        let (prob, geom) = maxwell3d(&params);
        let n = prob.a.nrows();
        let id = IdentityPrecond::new(n);
        let rhs = antenna_ring_rhs(&geom, &params, 4, 0.3, 0.5);
        let opts = SolveOpts {
            rtol: 1e-7,
            restart: 40,
            recycle: 10,
            max_iters: 4000,
            same_system: true,
            ..Default::default()
        };
        let mut ctx = SolverContext::<C64>::new();
        let mut iters = Vec::new();
        for l in 0..4 {
            let b = DMat::from_col_major(n, 1, rhs.col(l).to_vec());
            let mut x = DMat::<C64>::zeros(n, 1);
            let res = solve(&prob.a, &id, &b, &mut x, &opts, &mut ctx);
            assert!(res.converged, "antenna {l}: {:?}", res.final_relres);
            check_true_residual(&prob.a, &b, &x, 1e-6);
            iters.push(res.iterations);
        }
        assert!(
            iters[1..].iter().all(|&c| c <= iters[0]),
            "complex recycling: {iters:?}"
        );
    }

    #[test]
    fn same_system_skips_refresh_but_stays_correct() {
        let prob = poisson2d::<f64>(12, 12);
        let n = prob.a.nrows();
        let id = IdentityPrecond::new(n);
        let b1 = DMat::from_fn(n, 1, |i, _| (i % 4) as f64);
        let b2 = DMat::from_fn(n, 1, |i, _| ((i + 2) % 5) as f64);
        let opts = SolveOpts {
            rtol: 1e-9,
            restart: 15,
            recycle: 5,
            same_system: true,
            ..Default::default()
        };
        let mut ctx = SolverContext::new();
        let mut x1 = DMat::zeros(n, 1);
        solve(&prob.a, &id, &b1, &mut x1, &opts, &mut ctx);
        let mut x2 = DMat::zeros(n, 1);
        let res2 = solve(&prob.a, &id, &b2, &mut x2, &opts, &mut ctx);
        assert!(res2.converged);
        check_true_residual(&prob.a, &b2, &x2, 1e-9);
    }
}
