//! Solve-side event emission.
//!
//! [`SolveTracer`] is the single funnel every solver in this crate emits
//! through. It owns three jobs:
//!
//! 1. **History.** Per-iteration, per-RHS relative residuals are pushed here
//!    and become [`crate::SolveResult::history`] — and, when a recorder is
//!    attached, the *same* vectors ride on the iteration events, so
//!    `kryst_obs::history(events)` reconstructs the solver's history exactly.
//! 2. **Delta attribution.** Communication counters are sampled with a
//!    [`CommInterval`] once per iteration event; each event carries the
//!    change since the previous event. The first iteration of a solve
//!    absorbs the setup work before it, and [`SolveTracer::finish`] folds
//!    the trailing work (recycle refresh, true-residual check) into the
//!    *last* iteration event — so the sum of the iteration deltas equals the
//!    whole-solve total **by construction**, which the conformance suite
//!    asserts for every solver.
//! 3. **Spans.** Phases (setup / restart / recycle-refresh / eigensolve) are
//!    measured with local snapshots that do not advance the iteration
//!    interval, so span deltas overlay the iteration stream without
//!    perturbing it.
//!
//! With no recorder (or a disabled one, e.g. `NullRecorder`) the tracer
//! skips event construction entirely: per iteration it costs one `Option`
//! check beyond the history push the solvers always did.

use crate::opts::SolveOpts;
use kryst_obs::{
    DiagEvent, DiagKind, Event, IterationEvent, Recorder, SolveEndEvent, SpanEvent, SpanKind,
    StagnationDetector,
};
use kryst_par::{CommInterval, CommSnapshot};
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

/// Start marker of a [`SolveTracer`] span (see [`SolveTracer::span_start`]).
pub struct SpanProbe {
    t: Instant,
    snap: CommSnapshot,
}

/// Per-solve event emitter (see module docs).
pub struct SolveTracer {
    rec: Option<Arc<dyn Recorder>>,
    solver: &'static str,
    system_index: usize,
    interval: CommInterval,
    base: CommSnapshot,
    t0: Instant,
    t_last: Instant,
    pending: Option<IterationEvent>,
    /// Diagnostics raised since the last flushed iteration event. They are
    /// flushed *after* the iteration they belong to, in one
    /// [`Recorder::record_batch`] call, so the recorder lock is taken once
    /// per solver step. `RefCell` because diagnostic sites (e.g. GCRO-DR's
    /// recycle refresh) only hold `&SolveTracer`.
    pending_diags: RefCell<Vec<DiagEvent>>,
    stagnation: StagnationDetector,
    history: Vec<Vec<f64>>,
    /// Open distributed-trace span covering the work leading to the next
    /// iteration event (see `kryst_obs::span`); `None` when tracing is off.
    iter_span: Option<kryst_obs::span::OpenSpan>,
}

impl SolveTracer {
    /// Begin tracing one solve; emits the `SolveBegin` marker when a
    /// recorder is attached and enabled.
    pub fn begin(
        opts: &SolveOpts,
        solver: &'static str,
        system_index: usize,
        nrows: usize,
        nrhs: usize,
    ) -> Self {
        let rec = opts.recorder.as_ref().filter(|r| r.enabled()).cloned();
        let interval = CommInterval::start(opts.stats.clone());
        let base = interval.now();
        if let Some(r) = &rec {
            r.record(&Event::SolveBegin {
                solver,
                system_index,
                nrows,
                nrhs,
                restart: opts.restart,
                recycle: opts.recycle,
            });
        }
        let now = Instant::now();
        Self {
            rec,
            solver,
            system_index,
            interval,
            base,
            t0: now,
            t_last: now,
            pending: None,
            pending_diags: RefCell::new(Vec::new()),
            stagnation: StagnationDetector::default_solver(),
            history: Vec::new(),
            iter_span: kryst_obs::span::begin(kryst_obs::span::TraceKind::Iteration),
        }
    }

    /// Whether events are being recorded.
    pub fn enabled(&self) -> bool {
        self.rec.is_some()
    }

    /// Record one (block) iteration. `residuals` are the per-RHS relative
    /// residual estimates after the iteration; they are appended to the
    /// history unconditionally and carried on the event when recording.
    pub fn iteration(
        &mut self,
        cycle: usize,
        iter: usize,
        residuals: Vec<f64>,
        orth_backend: &'static str,
        breakdown_rank: Option<usize>,
    ) {
        // Rotate the per-rank trace span: close the one covering this
        // iteration's work, open the next. One relaxed load when tracing is
        // off (both calls are no-ops), so results stay bit-identical.
        kryst_obs::span::end(self.iter_span.take(), 0, 0, self.history.len() as u64);
        self.iter_span = kryst_obs::span::begin(kryst_obs::span::TraceKind::Iteration);
        if let Some(rec) = &self.rec {
            let comm = self.interval.take().to_delta();
            let now = Instant::now();
            let wall_ns = now.duration_since(self.t_last).as_nanos() as u64;
            self.t_last = now;
            let ev = IterationEvent {
                solver: self.solver,
                system_index: self.system_index,
                cycle,
                iter,
                per_rhs_residuals: residuals.clone(),
                comm,
                orth_backend,
                breakdown_rank,
                wall_ns,
            };
            if let Some(prev) = self.pending.replace(ev) {
                let mut batch = vec![Event::Iteration(prev)];
                batch.extend(self.pending_diags.borrow_mut().drain(..).map(Event::Diag));
                rec.record_batch(&batch);
            }
            // Auto-diagnostics for *this* iteration — queued after the
            // flush above so they ride behind their own iteration event.
            if let Some(rank) = breakdown_rank {
                self.pending_diags.borrow_mut().push(DiagEvent {
                    solver: self.solver,
                    system_index: self.system_index,
                    cycle,
                    iter,
                    kind: DiagKind::RankCollapse,
                    value: rank as f64,
                    detail: residuals.len(),
                });
            }
            let worst = residuals.iter().copied().fold(f64::NAN, f64::max);
            if let Some(ratio) = self.stagnation.push(worst) {
                self.pending_diags.borrow_mut().push(DiagEvent {
                    solver: self.solver,
                    system_index: self.system_index,
                    cycle,
                    iter,
                    kind: DiagKind::Stagnation,
                    value: ratio,
                    detail: self.stagnation.window(),
                });
            }
        }
        self.history.push(residuals);
    }

    /// Queue a convergence diagnostic for the iteration identified by
    /// `(cycle, iter)`. Diagnostics are flushed in the same
    /// [`Recorder::record_batch`] as the iteration event they follow (or
    /// with the final batch at [`SolveTracer::finish`]). No-op when not
    /// recording.
    pub fn diag(&self, cycle: usize, iter: usize, kind: DiagKind, value: f64, detail: usize) {
        if self.rec.is_some() {
            self.pending_diags.borrow_mut().push(DiagEvent {
                solver: self.solver,
                system_index: self.system_index,
                cycle,
                iter,
                kind,
                value,
                detail,
            });
        }
    }

    /// Begin a span. Cheap when not recording.
    pub fn span_start(&self) -> SpanProbe {
        if self.rec.is_some() {
            SpanProbe {
                t: Instant::now(),
                snap: self.interval.now(),
            }
        } else {
            SpanProbe {
                t: self.t0,
                snap: CommSnapshot::default(),
            }
        }
    }

    /// End a span started with [`SolveTracer::span_start`], emitting a
    /// [`SpanEvent`] of `kind`. Span deltas use local snapshots and do not
    /// advance the iteration interval.
    pub fn span_end(&self, probe: SpanProbe, kind: SpanKind, cycle: usize) {
        if let Some(r) = &self.rec {
            let comm = self.interval.now().since(&probe.snap).to_delta();
            r.record(&Event::Span(SpanEvent {
                solver: self.solver,
                system_index: self.system_index,
                kind,
                cycle,
                comm,
                wall_ns: probe.t.elapsed().as_nanos() as u64,
            }));
        }
    }

    /// Finish the solve: fold the trailing communication into the last
    /// iteration event, flush it, and emit `SolveEnd`. Returns the history
    /// for [`crate::SolveResult`].
    pub fn finish(mut self, converged: bool, final_relres: &[f64]) -> Vec<Vec<f64>> {
        // The span opened after the last iteration covers only trailing
        // work, not an iteration — drop it unrecorded so span counts equal
        // iteration counts.
        self.iter_span = None;
        if let Some(r) = self.rec.take() {
            let tail = self.interval.take().to_delta();
            let now = Instant::now();
            let mut batch = Vec::new();
            if let Some(mut last) = self.pending.take() {
                last.comm += tail;
                last.wall_ns += now.duration_since(self.t_last).as_nanos() as u64;
                batch.push(Event::Iteration(last));
            }
            batch.extend(self.pending_diags.borrow_mut().drain(..).map(Event::Diag));
            let comm_total = self.interval.now().since(&self.base).to_delta();
            batch.push(Event::SolveEnd(SolveEndEvent {
                solver: self.solver,
                system_index: self.system_index,
                iterations: self.history.len(),
                converged,
                final_relres: final_relres.to_vec(),
                comm_total,
                wall_ns: now.duration_since(self.t0).as_nanos() as u64,
            }));
            r.record_batch(&batch);
        }
        self.history
    }

    /// Iterations recorded so far.
    pub fn iterations(&self) -> usize {
        self.history.len()
    }

    /// Residuals of the most recent iteration.
    pub fn last_residuals(&self) -> Option<&[f64]> {
        self.history.last().map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kryst_obs::{cumulative_comm, RingRecorder};
    use kryst_par::CommStats;

    #[test]
    fn deltas_tile_the_solve_and_history_is_a_view() {
        let stats = CommStats::new_shared();
        let ring = Arc::new(RingRecorder::new(1024));
        let opts = SolveOpts {
            stats: Some(Arc::clone(&stats)),
            recorder: Some(ring.clone() as Arc<dyn Recorder>),
            ..SolveOpts::default()
        };
        stats.record_reduction(8); // pre-solve noise stays out of the totals
        let mut tr = SolveTracer::begin(&opts, "test", 3, 100, 2);

        stats.record_reductions(2, 16); // setup → absorbed by iteration 0
        tr.iteration(0, 0, vec![1.0, 0.9], "cholqr", None);
        stats.record_reductions(3, 24);
        tr.iteration(0, 1, vec![0.5, 0.4], "cholqr", Some(1));
        stats.record_reduction(8); // trailing work → folded into iteration 1
        let history = tr.finish(true, &[0.5, 0.4]);

        assert_eq!(history, vec![vec![1.0, 0.9], vec![0.5, 0.4]]);
        let events = ring.events();
        assert_eq!(kryst_obs::history(&events), history);
        let iters = kryst_obs::iteration_events(&events);
        assert_eq!(iters.len(), 2);
        assert_eq!(iters[0].comm.reductions, 2);
        assert_eq!(iters[1].comm.reductions, 4);
        assert_eq!(iters[1].breakdown_rank, Some(1));
        let end = events
            .iter()
            .find_map(|e| match e {
                Event::SolveEnd(e) => Some(e.clone()),
                _ => None,
            })
            .expect("solve end emitted");
        assert_eq!(end.comm_total, cumulative_comm(&events));
        assert_eq!(end.iterations, 2);
    }

    #[test]
    fn diags_flush_after_their_iteration_and_auto_detectors_fire() {
        let stats = CommStats::new_shared();
        let ring = Arc::new(RingRecorder::new(4096));
        let opts = SolveOpts {
            stats: Some(Arc::clone(&stats)),
            recorder: Some(ring.clone() as Arc<dyn Recorder>),
            ..SolveOpts::default()
        };
        let mut tr = SolveTracer::begin(&opts, "test", 0, 100, 2);
        tr.iteration(0, 0, vec![1.0, 1.0], "cholqr", None);
        tr.diag(0, 0, DiagKind::OrthLoss, 1e-12, 2);
        tr.iteration(0, 1, vec![0.9, 0.9], "cholqr", Some(1));
        // Flat residuals past the detector window must raise Stagnation.
        for i in 2..70 {
            tr.iteration(0, i, vec![0.9, 0.9], "cholqr", None);
        }
        let _ = tr.finish(false, &[0.9, 0.9]);
        let events = ring.events();

        let orth = kryst_obs::diags_of(&events, DiagKind::OrthLoss);
        assert_eq!(orth.len(), 1);
        assert_eq!((orth[0].cycle, orth[0].iter), (0, 0));
        // The manual diag for iteration 0 appears after Iteration(0).
        let pos_iter0 = events
            .iter()
            .position(|e| matches!(e, Event::Iteration(it) if it.iter == 0))
            .unwrap();
        let pos_diag = events
            .iter()
            .position(|e| matches!(e, Event::Diag(d) if d.kind == DiagKind::OrthLoss))
            .unwrap();
        let pos_iter1 = events
            .iter()
            .position(|e| matches!(e, Event::Iteration(it) if it.iter == 1))
            .unwrap();
        assert!(pos_iter0 < pos_diag && pos_diag < pos_iter1);

        let rank = kryst_obs::diags_of(&events, DiagKind::RankCollapse);
        assert_eq!(rank.len(), 1);
        assert_eq!(rank[0].value, 1.0);
        assert_eq!(rank[0].detail, 2);

        let stag = kryst_obs::diags_of(&events, DiagKind::Stagnation);
        assert_eq!(stag.len(), 1, "latched: exactly one firing");
        assert!(stag[0].value > 0.99);
        assert_eq!(stag[0].detail, 30);
    }

    #[test]
    fn untracked_tracer_still_builds_history() {
        let opts = SolveOpts::default();
        let mut tr = SolveTracer::begin(&opts, "test", 0, 10, 1);
        assert!(!tr.enabled());
        tr.iteration(0, 0, vec![1.0], "mgs", None);
        let probe = tr.span_start();
        tr.span_end(probe, SpanKind::Setup, 0);
        let h = tr.finish(false, &[1.0]);
        assert_eq!(h, vec![vec![1.0]]);
    }

    #[test]
    fn spans_do_not_perturb_iteration_deltas() {
        let stats = CommStats::new_shared();
        let ring = Arc::new(RingRecorder::new(64));
        let opts = SolveOpts {
            stats: Some(Arc::clone(&stats)),
            recorder: Some(ring.clone() as Arc<dyn Recorder>),
            ..SolveOpts::default()
        };
        let mut tr = SolveTracer::begin(&opts, "test", 0, 10, 1);
        let probe = tr.span_start();
        stats.record_reductions(5, 40);
        tr.span_end(probe, SpanKind::Setup, 0);
        tr.iteration(0, 0, vec![0.1], "cholqr", None);
        let _ = tr.finish(true, &[0.1]);
        let events = ring.events();
        let sp = kryst_obs::spans_of(&events, SpanKind::Setup);
        assert_eq!(sp[0].comm.reductions, 5);
        // The span's reductions still belong to the iteration stream.
        assert_eq!(cumulative_comm(&events).reductions, 5);
    }
}
