//! The shared (block) Arnoldi cycle driver.
//!
//! Both GMRES and GCRO-DR build their restart cycles on [`BlockArnoldi`]:
//! it advances `p` right-hand sides together (block width `p`), supports
//! right / left / flexible preconditioning via [`PrecondMode`], optionally
//! orthogonalizes the operator output against a recycled block `C` while
//! capturing the coupling coefficients `E_k = Cᴴ·A·Z` (Fig. 1 line 26), and
//! maintains the incremental QR of the raw block Hessenberg so per-RHS
//! residual estimates are available at every iteration.

use crate::opts::{OrthPath, PrecondSide};
use kryst_dense::chol;
use kryst_dense::gs::{fused_orthogonalize_block, orthogonalize_block, OrthScheme};
use kryst_dense::qr::IncrementalQr;
use kryst_dense::{blas, tri, DMat};
use kryst_par::{CommStats, LinOp, PrecondOp, PrecondPrecision};
use kryst_scalar::{Real, Scalar};
use kryst_sparse::SpmmWorkspace;

/// Preconditioning mode resolved from [`crate::SolveOpts::side`].
pub enum PrecondMode<'a, S: Scalar> {
    /// No preconditioning.
    None,
    /// Left preconditioning (iteration space = preconditioned residuals).
    Left(&'a dyn PrecondOp<S>),
    /// Right / flexible preconditioning (directions stored in `Z`).
    Right(&'a dyn PrecondOp<S>),
}

impl<'a, S: Scalar> PrecondMode<'a, S> {
    /// Resolve the mode from the option enum.
    pub fn new(pc: &'a dyn PrecondOp<S>, side: PrecondSide) -> Self {
        match side {
            PrecondSide::Left => PrecondMode::Left(pc),
            PrecondSide::Right | PrecondSide::Flexible => PrecondMode::Right(pc),
        }
    }

    /// Iteration-space residual `r = b − A·x` (left: `M⁻¹·(b − A·x)`).
    pub fn residual(&self, a: &dyn LinOp<S>, b: &DMat<S>, x: &DMat<S>) -> DMat<S> {
        let mut ws = SpmmWorkspace::new();
        self.residual_ws(a, b, x, &mut ws)
    }

    /// Pooled variant of [`residual`]: all temporaries (and the returned
    /// matrix) come from `ws`; callers `put` the result back once consumed,
    /// so steady-state restart cycles allocate nothing here.
    ///
    /// [`residual`]: PrecondMode::residual
    pub fn residual_ws(
        &self,
        a: &dyn LinOp<S>,
        b: &DMat<S>,
        x: &DMat<S>,
        ws: &mut SpmmWorkspace<S>,
    ) -> DMat<S> {
        let mut r = ws.take(b.nrows(), b.ncols());
        a.apply(x, &mut r);
        r.scale(-S::one());
        r.axpy(S::one(), b);
        match self {
            PrecondMode::Left(m) => {
                let mut z = ws.take(r.nrows(), r.ncols());
                m.apply(&r, &mut z);
                ws.put(r);
                z
            }
            _ => r,
        }
    }

    /// Solution-space direction from an iteration-space basis vector.
    pub fn to_solution(&self, v: &DMat<S>) -> DMat<S> {
        match self {
            PrecondMode::Right(m) => m.apply_new(v),
            _ => v.clone(),
        }
    }

    /// Pooled variant of [`to_solution`]; the returned matrix comes from
    /// `ws` (callers `put` it back once consumed).
    ///
    /// [`to_solution`]: PrecondMode::to_solution
    pub fn to_solution_ws(&self, v: &DMat<S>, ws: &mut SpmmWorkspace<S>) -> DMat<S> {
        let mut out = ws.take(v.nrows(), v.ncols());
        match self {
            PrecondMode::Right(m) => m.apply(v, &mut out),
            _ => out.copy_from(v),
        }
        out
    }

    /// Whether the preconditioner apply is exact enough for the pipelined
    /// recurrence. The depth-1 lag reconstructs preconditioned directions by
    /// a linear recurrence instead of a fresh apply, which assumes `M⁻¹` is
    /// a *fixed, full-precision* linear operator: variable preconditioners
    /// (inner Krylov smoothers) change between applies, and f32-storage ones
    /// round each apply at ≈1e-7 — an error the recurrence compounds every
    /// step instead of resetting. Both are demoted to the fused synchronous
    /// path by [`BlockArnoldi::with_path`].
    pub fn recurrence_safe(&self) -> bool {
        match self {
            PrecondMode::None => true,
            PrecondMode::Left(m) | PrecondMode::Right(m) => {
                !m.is_variable() && m.precision() == PrecondPrecision::Full
            }
        }
    }

    /// Iteration-space image of a solution-space direction:
    /// `w = A·d` (left: `M⁻¹·A·d`).
    pub fn apply_op(&self, a: &dyn LinOp<S>, d: &DMat<S>) -> DMat<S> {
        let mut ws = SpmmWorkspace::new();
        self.apply_op_ws(a, d, &mut ws)
    }

    /// Pooled variant of [`apply_op`]; the returned matrix comes from `ws`
    /// (callers `put` it back once consumed).
    ///
    /// [`apply_op`]: PrecondMode::apply_op
    pub fn apply_op_ws(&self, a: &dyn LinOp<S>, d: &DMat<S>, ws: &mut SpmmWorkspace<S>) -> DMat<S> {
        let mut w = ws.take(d.nrows(), d.ncols());
        a.apply(d, &mut w);
        match self {
            PrecondMode::Left(m) => {
                let mut z = ws.take(w.nrows(), w.ncols());
                m.apply(&w, &mut z);
                ws.put(w);
                z
            }
            _ => w,
        }
    }
}

/// One restart cycle of the block Arnoldi process.
pub struct BlockArnoldi<'a, S: Scalar> {
    a: &'a dyn LinOp<S>,
    mode: &'a PrecondMode<'a, S>,
    /// Iteration-space basis `V` (n × (m+1)·p).
    pub v: DMat<S>,
    /// Solution-space directions `Z` (n × m·p); equals `V`'s leading columns
    /// when unpreconditioned or left-preconditioned.
    pub z: DMat<S>,
    /// Raw block Hessenberg `H̄` ((m+1)·p × m·p).
    pub hraw: DMat<S>,
    /// Incremental QR of `H̄` with the least-squares right-hand side.
    pub qr: IncrementalQr<S>,
    /// Recycled block to orthogonalize against (GCRO-DR inner cycles).
    pub c_proj: Option<&'a DMat<S>>,
    /// Coupling coefficients `E = Cᴴ·A·Z` (kc × m·p), filled per iteration.
    pub e: DMat<S>,
    j: usize,
    m: usize,
    p: usize,
    orth: OrthScheme,
    path: OrthPath,
    /// Running estimate of the basis' mutual orthogonality loss on the fused
    /// path (units of machine ε); single-pass steps multiply it by the
    /// square of the step's cancellation amplification, re-orthogonalized
    /// steps hold it.
    fused_loss: f64,
    /// Orthogonalization passes taken by the most recent step (1, or 2 when
    /// re-orthogonalization triggered; always 1 on the classic path).
    last_passes: usize,
    /// Cancellation amplification of the most recent step's first pass
    /// (1.0 on the classic path).
    last_amp: f64,
    /// Whether the most recent step needed a rank-revealing CholQR refresh.
    last_refreshed: bool,
    stats: Option<&'a CommStats>,
    /// Numerical rank of the initial residual block (breakdown detection).
    pub initial_rank: usize,
    /// Numerical rank of the block produced by the most recent [`Self::step`]
    /// (equals the block width while no breakdown occurs).
    pub last_step_rank: usize,
    /// Buffer pool for the per-step `n × p` temporaries (`V_j`, `Z_j`, `W`).
    ws: SpmmWorkspace<S>,
    /// Pipelined path only: raw operator images `U_i = B·V_i` (`B` the
    /// iteration-space operator, before any recycle projection), one block
    /// per completed step — the history the depth-1 recurrence draws on.
    /// Empty (0×0) on the other paths.
    u_hist: DMat<S>,
    /// Pipelined path only: the next step's operator image `W_{j+1} =
    /// B·V_{j+1}`, reconstructed by the recurrence from the lagged apply —
    /// `None` after a fallback (the next step re-primes synchronously).
    w_next: Option<DMat<S>>,
    /// Pipelined path with right preconditioning: the next step's direction
    /// `Z_{j+1} = M⁻¹·V_{j+1}`, reconstructed alongside `w_next`.
    z_next: Option<DMat<S>>,
    /// Pipelined path with a recycle block: the next step's projection
    /// coefficients `E_{j+1} = Cᴴ·W_{j+1}`, reconstructed from the lagged
    /// `Cᴴ·û` reduction (overlapped alongside the Gram reduction) via
    /// `E_{j+1} = (Cᴴû − E·Sᵥ)·R⁻¹` — the recycle projection then costs no
    /// synchronous reduction on recurrence steps.
    e_next: Option<DMat<S>>,
    /// Steps whose Gram reduction was overlapped with a lagged apply.
    pipeline_overlapped: usize,
    /// Steps where the recurrence was abandoned (orthogonality-budget
    /// refresh or rank deficiency) and the lagged apply discarded.
    pipeline_fallbacks: usize,
}

impl<'a, S: Scalar> BlockArnoldi<'a, S> {
    /// Allocate a cycle of at most `m` block iterations of width `p`.
    pub fn new(
        a: &'a dyn LinOp<S>,
        mode: &'a PrecondMode<'a, S>,
        m: usize,
        p: usize,
        orth: OrthScheme,
        c_proj: Option<&'a DMat<S>>,
        stats: Option<&'a CommStats>,
    ) -> Self {
        let n = a.nrows();
        let kc = c_proj.map(|c| c.ncols()).unwrap_or(0);
        Self {
            a,
            mode,
            v: DMat::zeros(n, (m + 1) * p),
            z: DMat::zeros(n, m * p),
            hraw: DMat::zeros((m + 1) * p, m * p),
            qr: IncrementalQr::new(m, p),
            c_proj,
            e: DMat::zeros(kc, m * p),
            j: 0,
            m,
            p,
            orth,
            path: OrthPath::Classic,
            fused_loss: f64::EPSILON,
            last_passes: 1,
            last_amp: 1.0,
            last_refreshed: false,
            stats,
            initial_rank: p,
            last_step_rank: p,
            ws: SpmmWorkspace::new(),
            u_hist: DMat::zeros(0, 0),
            w_next: None,
            z_next: None,
            e_next: None,
            pipeline_overlapped: 0,
            pipeline_fallbacks: 0,
        }
    }

    /// Seed the cycle's buffer pool with a workspace carried over from a
    /// previous cycle, so restarts reuse the same `n × p` allocations.
    pub fn with_workspace(mut self, ws: SpmmWorkspace<S>) -> Self {
        self.ws = ws;
        self
    }

    /// Select the fused (communication-avoiding), classic, or pipelined
    /// orthogonalization path. Direct constructor callers default to
    /// [`OrthPath::Classic`] — the pre-fusion behavior; solvers pass their
    /// `SolveOpts::ortho`. [`OrthPath::Pipelined`] is demoted to
    /// [`OrthPath::Fused`] when the preconditioner cannot back the
    /// recurrence ([`PrecondMode::recurrence_safe`]): variable or
    /// f32-storage applies would have their rounding compounded by the
    /// lagged reconstruction instead of reset by a fresh apply.
    pub fn with_path(mut self, path: OrthPath) -> Self {
        let path = if path == OrthPath::Pipelined && !self.mode.recurrence_safe() {
            OrthPath::Fused
        } else {
            path
        };
        self.path = path;
        if path == OrthPath::Pipelined && self.u_hist.nrows() == 0 {
            self.u_hist = DMat::zeros(self.v.nrows(), self.m * self.p);
        }
        self
    }

    /// Recover the buffer pool to hand to the next cycle.
    pub fn into_workspace(self) -> SpmmWorkspace<S> {
        self.ws
    }

    /// Start the cycle from the residual block `r0` (rank-revealing CholQR —
    /// the paper's breakdown detection at each restart, §V-C).
    pub fn start(&mut self, r0: &DMat<S>) {
        assert_eq!(r0.ncols(), self.p);
        let mut q = r0.clone();
        // On the fused path the breakdown fixup must keep replacement
        // columns orthogonal to the recycled block C: the fused Gram
        // downdate of every later step assumes basis ⊥ C. The pipelined
        // path shares the fixup (its fallback body is the fused one). The
        // classic path keeps the plain fixup — it re-projects against C
        // explicitly each step, and its traces must stay bit-identical to
        // the pre-fusion solver.
        let out = if matches!(self.path, OrthPath::Fused | OrthPath::Pipelined) {
            let ext: Vec<(&DMat<S>, usize)> = match self.c_proj {
                Some(cm) => vec![(cm, cm.ncols())],
                None => Vec::new(),
            };
            chol::cholqr_within(&mut q, &ext)
        } else {
            chol::cholqr(&mut q)
        };
        self.initial_rank = out.rank;
        if let Some(st) = self.stats {
            st.record_reduction(self.p * self.p * std::mem::size_of::<S>());
        }
        self.v.set_block(0, 0, &q);
        self.qr.reset(&out.r);
        self.j = 0;
        self.fused_loss = f64::EPSILON;
        self.w_next = None;
        self.z_next = None;
        self.e_next = None;
    }

    /// Number of completed block iterations.
    pub fn iterations(&self) -> usize {
        self.j
    }

    /// Whether the cycle can take another step.
    pub fn can_step(&self) -> bool {
        self.j < self.m
    }

    /// One block Arnoldi step; returns the per-RHS least-squares residual
    /// estimates after the step.
    pub fn step(&mut self) -> Vec<f64> {
        assert!(self.can_step());
        // The depth-1 pipelined path needs a *linear* operator composition:
        // variable (flexible) right preconditioners invalidate the
        // recurrence, and the per-column MGS/IMGS schemes have no fused Gram
        // to overlap — those combinations degrade to the fused/classic body
        // below, like the fused path itself degrades for MGS/IMGS.
        if self.path == OrthPath::Pipelined
            && matches!(self.orth, OrthScheme::Cgs | OrthScheme::CholQr)
            && !matches!(self.mode, PrecondMode::Right(m) if m.is_variable())
        {
            return self.step_pipelined();
        }
        let j = self.j;
        let p = self.p;
        let n = self.v.nrows();
        // Current basis block V_j (columns j·p .. (j+1)·p are contiguous).
        let mut vj = self.ws.take(n, p);
        vj.as_mut_slice()
            .copy_from_slice(&self.v.as_slice()[j * p * n..(j + 1) * p * n]);
        // Solution-space direction: Z_j = M⁻¹·V_j (right), else V_j itself.
        let zj = match self.mode {
            PrecondMode::Right(m) => {
                let mut zj = self.ws.take(n, p);
                m.apply(&vj, &mut zj);
                self.ws.put(vj);
                zj
            }
            _ => vj,
        };
        // Operator application: W = A·Z_j (left: M⁻¹·A·Z_j).
        let mut w = self.ws.take(n, p);
        match self.mode {
            PrecondMode::Left(m) => {
                let mut t = self.ws.take(n, p);
                self.a.apply(&zj, &mut t);
                m.apply(&t, &mut w);
                self.ws.put(t);
            }
            _ => self.a.apply(&zj, &mut w),
        }
        self.z.set_block(0, j * p, &zj);
        self.ws.put(zj);
        // Orthogonalize against the recycled block C (if any) and the basis
        // built so far. The fused path folds both projections and the Gram
        // matrix into a single reduction per pass (§III-D); the classic path
        // issues one reduction per projection pass plus one for the QR.
        let fused_path = matches!(self.path, OrthPath::Fused | OrthPath::Pipelined)
            && matches!(self.orth, OrthScheme::Cgs | OrthScheme::CholQr);
        let (coeffs, rfac) = if fused_path {
            let out = fused_orthogonalize_block(
                self.c_proj,
                &self.v,
                (j + 1) * p,
                &mut w,
                self.orth == OrthScheme::Cgs,
                self.fused_loss,
            );
            self.last_step_rank = out.rank;
            self.last_passes = out.passes;
            self.last_amp = out.amp;
            self.last_refreshed = out.refreshed;
            if out.passes == 1 {
                self.fused_loss *= out.amp * out.amp;
            }
            if let Some(st) = self.stats {
                st.record_fused_reductions(
                    out.reductions,
                    out.reduction_parts,
                    out.reduction_elems * std::mem::size_of::<S>(),
                );
            }
            if let Some(ec) = &out.c_coeffs {
                self.e.set_block(0, j * p, ec);
            }
            (out.coeffs, out.r)
        } else {
            // Inner orthogonalization against the recycled block C (one
            // reduction — the extra communication of recycling, §III-D).
            if let Some(c) = self.c_proj {
                let ecol = blas::adjoint_times(c, &w);
                if let Some(st) = self.stats {
                    st.record_reduction(std::mem::size_of_val(ecol.as_slice()));
                }
                blas::gemm(
                    -S::one(),
                    c,
                    blas::Op::None,
                    &ecol,
                    blas::Op::None,
                    S::one(),
                    &mut w,
                );
                self.e.set_block(0, j * p, &ecol);
            }
            let out = orthogonalize_block(&self.v, (j + 1) * p, &mut w, self.orth);
            self.last_step_rank = out.rank;
            self.last_passes = 1;
            self.last_amp = 1.0;
            self.last_refreshed = false;
            if let Some(st) = self.stats {
                st.record_reductions(
                    out.reductions,
                    out.reduction_elems * std::mem::size_of::<S>(),
                );
            }
            (out.coeffs, out.r)
        };
        // Assemble the new Hessenberg block column [coeffs; r].
        let mut hcol = DMat::zeros((j + 2) * p, p);
        hcol.set_block(0, 0, &coeffs);
        hcol.set_block((j + 1) * p, 0, &rfac);
        self.hraw.set_block(0, j * p, &hcol);
        self.qr.push_block(&hcol);
        self.v.set_block(0, (j + 1) * p, &w);
        self.ws.put(w);
        self.j += 1;
        self.qr
            .residual_norms()
            .iter()
            .map(|r| r.to_f64())
            .collect()
    }

    /// The depth-1 pipelined (Ghysels-style) step. Same mathematics as the
    /// fused step, reordered to hide the Gram reduction:
    ///
    /// 1. `W_j = B·V_j` (`B` the iteration-space operator) comes from the
    ///    previous step's recurrence when available, else a priming apply.
    /// 2. The recycle block `C` is projected off using coefficients that are
    ///    either reconstructed from last step's lagged `Cᴴ·û` reduction
    ///    (recurrence steps — no synchronous reduction) or computed
    ///    synchronously (priming steps). The captured `E` is exact either
    ///    way.
    /// 3. The Gram reduction for step `j` is *started* (split-phase,
    ///    modeled), then the operator + preconditioner apply feeding step
    ///    `j+1` runs on the projected block before it is *finished* — the
    ///    flops of that lagged apply are what hides the reduction latency.
    /// 4. After the fused orthogonalization `W̃ = V·Sᵥ + V_{j+1}·R`, the next
    ///    image is reconstructed without touching the operator again:
    ///    `W_{j+1} = B·V_{j+1} = (B·W̃ − U·Sᵥ)·R⁻¹` with `U_i = B·V_i` the
    ///    recorded history (and `Z_{j+1} = (M⁻¹·W̃ − Z·Sᵥ)·R⁻¹` for right
    ///    preconditioning). When the PR-3 orthogonality budget trips (CholQR
    ///    refresh) or the block loses rank, the reconstruction is invalid —
    ///    the lagged apply is discarded and the next step re-primes
    ///    synchronously.
    fn step_pipelined(&mut self) -> Vec<f64> {
        let j = self.j;
        let p = self.p;
        let n = self.v.nrows();
        let sz = std::mem::size_of::<S>();
        // Solution-space direction Z_j: recurrence result, or M⁻¹·V_j.
        let zj = match self.z_next.take() {
            Some(z) => z,
            None => {
                let mut vj = self.ws.take(n, p);
                vj.as_mut_slice()
                    .copy_from_slice(&self.v.as_slice()[j * p * n..(j + 1) * p * n]);
                match self.mode {
                    PrecondMode::Right(m) => {
                        let mut zj = self.ws.take(n, p);
                        m.apply(&vj, &mut zj);
                        self.ws.put(vj);
                        zj
                    }
                    _ => vj,
                }
            }
        };
        // Raw operator image W_j = B·V_j: recurrence result, or priming
        // synchronous apply (cycle start / after a fallback).
        let mut w = match self.w_next.take() {
            Some(w) => w,
            None => {
                let mut w = self.ws.take(n, p);
                match self.mode {
                    PrecondMode::Left(m) => {
                        let mut t = self.ws.take(n, p);
                        self.a.apply(&zj, &mut t);
                        m.apply(&t, &mut w);
                        self.ws.put(t);
                    }
                    _ => self.a.apply(&zj, &mut w),
                }
                w
            }
        };
        self.z.set_block(0, j * p, &zj);
        self.ws.put(zj);
        // History for the recurrence: U_j = B·V_j before any projection.
        self.u_hist.set_block(0, j * p, &w);
        // Recycle projection. On recurrence steps the coefficients
        // `E_j = Cᴴ·W_j` were already reconstructed from last step's lagged
        // `Cᴴ·û` reduction (overlapped — no synchronous reduction here); a
        // priming step computes them synchronously, classic-style. Either
        // way the captured E stays exact and the fused call below runs
        // without a C block.
        if let Some(c) = self.c_proj {
            let ecol = match self.e_next.take() {
                Some(e) => e,
                None => {
                    let ecol = blas::adjoint_times(c, &w);
                    if let Some(st) = self.stats {
                        st.record_reduction(std::mem::size_of_val(ecol.as_slice()));
                    }
                    ecol
                }
            };
            blas::gemm(
                -S::one(),
                c,
                blas::Op::None,
                &ecol,
                blas::Op::None,
                S::one(),
                &mut w,
            );
            self.e.set_block(0, j * p, &ecol);
        }
        // Depth-1 lag: apply the operator chain to the projected block NOW —
        // in a distributed run this work executes between `ireduce_start`
        // and `ireduce_finish` of the Gram reduction below, so its flops
        // hide the reduction's latency.
        let lag = j + 1 < self.m;
        let lagged = if lag {
            let _t = kryst_obs::profile(kryst_obs::Phase::ReductionOverlap);
            let before = self.stats.map(CommStats::snapshot);
            let pair = match self.mode {
                PrecondMode::Right(m) => {
                    let mut t = self.ws.take(n, p);
                    m.apply(&w, &mut t);
                    let mut uhat = self.ws.take(n, p);
                    self.a.apply(&t, &mut uhat);
                    (uhat, Some(t))
                }
                PrecondMode::Left(m) => {
                    let mut t = self.ws.take(n, p);
                    self.a.apply(&w, &mut t);
                    let mut uhat = self.ws.take(n, p);
                    m.apply(&t, &mut uhat);
                    self.ws.put(t);
                    (uhat, None)
                }
                PrecondMode::None => {
                    let mut uhat = self.ws.take(n, p);
                    self.a.apply(&w, &mut uhat);
                    (uhat, None)
                }
            };
            // With a recycle block, the next step's projection coefficients
            // need `Cᴴ·û` — computed here so its reduction is in flight
            // during the same overlap window as the Gram reduction.
            let cu = self.c_proj.map(|c| {
                let cu = blas::adjoint_times(c, &pair.0);
                if let Some(st) = self.stats {
                    st.record_overlapped_reduction(1, std::mem::size_of_val(cu.as_slice()));
                }
                cu
            });
            if let (Some(st), Some(b)) = (self.stats, before) {
                let d = st.snapshot().since(&b);
                st.record_reduction_overlap_flops(d.flops as usize);
            }
            Some((pair.0, pair.1, cu))
        } else {
            None
        };
        // Fused orthogonalization against the basis (C already removed).
        let ncols = (j + 1) * p;
        let out = fused_orthogonalize_block(
            None,
            &self.v,
            ncols,
            &mut w,
            self.orth == OrthScheme::Cgs,
            self.fused_loss,
        );
        self.last_step_rank = out.rank;
        self.last_passes = out.passes;
        self.last_amp = out.amp;
        self.last_refreshed = out.refreshed;
        if out.passes == 1 {
            self.fused_loss *= out.amp * out.amp;
        }
        if let Some(st) = self.stats {
            // Only the first pass is in flight during the lagged apply; a
            // second pass (or refresh) is decided from the first's result
            // and stays exposed.
            let parts1 = 1 + usize::from(ncols > 0);
            let elems1 = (ncols + p) * p;
            if lag {
                st.record_overlapped_reduction(parts1, elems1 * sz);
                if out.reductions > 1 {
                    st.record_fused_reductions(
                        out.reductions - 1,
                        out.reduction_parts - parts1,
                        (out.reduction_elems - elems1) * sz,
                    );
                }
            } else {
                st.record_fused_reductions(
                    out.reductions,
                    out.reduction_parts,
                    out.reduction_elems * sz,
                );
            }
        }
        // Reconstruct the next step's operator image, unless the budget
        // tripped: a CholQR refresh rewrites the block outside the recorded
        // coefficients (and rank-deficient blocks inject replacement
        // columns), so `W̃ = V·Sᵥ + V_{j+1}·R` no longer holds and the
        // recurrence must fall back to a synchronous apply.
        if let Some((mut uhat, t, cu)) = lagged {
            if !out.refreshed && out.rank == p {
                let u_active = self.u_hist.cols(0, ncols);
                blas::gemm(
                    -S::one(),
                    &u_active,
                    blas::Op::None,
                    &out.coeffs,
                    blas::Op::None,
                    S::one(),
                    &mut uhat,
                );
                tri::right_solve_upper(&mut uhat, &out.r);
                self.w_next = Some(uhat);
                if let Some(mut cu) = cu {
                    // E_{j+1} = (Cᴴû − E·Sᵥ)·R⁻¹: the stored E columns are
                    // exactly Cᴴ·U, so the projection coefficients follow
                    // the same recurrence as the operator image.
                    let e_active = self.e.cols(0, ncols);
                    blas::gemm(
                        -S::one(),
                        &e_active,
                        blas::Op::None,
                        &out.coeffs,
                        blas::Op::None,
                        S::one(),
                        &mut cu,
                    );
                    tri::right_solve_upper(&mut cu, &out.r);
                    self.e_next = Some(cu);
                }
                if let Some(mut t) = t {
                    let z_active = self.z.cols(0, ncols);
                    blas::gemm(
                        -S::one(),
                        &z_active,
                        blas::Op::None,
                        &out.coeffs,
                        blas::Op::None,
                        S::one(),
                        &mut t,
                    );
                    tri::right_solve_upper(&mut t, &out.r);
                    self.z_next = Some(t);
                }
                self.pipeline_overlapped += 1;
            } else {
                self.ws.put(uhat);
                if let Some(t) = t {
                    self.ws.put(t);
                }
                self.pipeline_fallbacks += 1;
            }
        }
        // Hessenberg assembly and basis append, identical to the other paths.
        let mut hcol = DMat::zeros((j + 2) * p, p);
        hcol.set_block(0, 0, &out.coeffs);
        hcol.set_block((j + 1) * p, 0, &out.r);
        self.hraw.set_block(0, j * p, &hcol);
        self.qr.push_block(&hcol);
        self.v.set_block(0, (j + 1) * p, &w);
        self.ws.put(w);
        self.j += 1;
        self.qr
            .residual_norms()
            .iter()
            .map(|r| r.to_f64())
            .collect()
    }

    /// Steps whose Gram reduction overlapped a lagged operator apply (the
    /// pipelined path's hidden-latency count; 0 on the other paths).
    pub fn pipeline_overlapped_steps(&self) -> usize {
        self.pipeline_overlapped
    }

    /// Steps where the pipelined recurrence was abandoned — orthogonality
    /// budget (refresh) or rank deficiency — and the lagged apply discarded.
    pub fn pipeline_fallbacks(&self) -> usize {
        self.pipeline_fallbacks
    }

    /// Least-squares coefficients for the completed iterations.
    pub fn solve_y(&self) -> DMat<S> {
        self.qr.solve_y()
    }

    /// Apply the correction: `x += Z·y` for right/flexible (`V·y` coincides
    /// with `Z·y` in the other modes because `Z` stores `V` then).
    pub fn update_solution(&self, y: &DMat<S>, x: &mut DMat<S>) {
        let cols = self.j * self.p;
        let zm = self.z.cols(0, cols);
        blas::gemm(
            S::one(),
            &zm,
            blas::Op::None,
            y,
            blas::Op::None,
            S::one(),
            x,
        );
    }

    /// The leading `(j+1)·p` columns of the basis `V`.
    pub fn v_active(&self) -> DMat<S> {
        self.v.cols(0, (self.j + 1) * self.p)
    }

    /// The leading `j·p` columns of `Z`.
    pub fn z_active(&self) -> DMat<S> {
        self.z.cols(0, self.j * self.p)
    }

    /// Raw Hessenberg restricted to the completed iterations
    /// ((j+1)·p × j·p).
    pub fn hraw_active(&self) -> DMat<S> {
        self.hraw
            .block(0, 0, (self.j + 1) * self.p, self.j * self.p)
    }

    /// Captured `E` coefficients ((kc) × j·p).
    pub fn e_active(&self) -> DMat<S> {
        self.e.block(0, 0, self.e.nrows(), self.j * self.p)
    }

    /// Block width.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Running orthogonality-loss estimate of the fused path (units of
    /// machine ε; `ε` while loss-free or on the classic path).
    pub fn fused_loss(&self) -> f64 {
        self.fused_loss
    }

    /// Orthogonalization passes the most recent step took (2 means the
    /// adaptive re-orthogonalization triggered).
    pub fn last_orth_passes(&self) -> usize {
        self.last_passes
    }

    /// Cancellation amplification of the most recent step's first pass.
    pub fn last_orth_amp(&self) -> f64 {
        self.last_amp
    }

    /// Whether the most recent step fell back to a rank-revealing CholQR
    /// refresh (Gram downdate rejected).
    pub fn last_orth_refreshed(&self) -> bool {
        self.last_refreshed
    }

    /// Deficient rank to report on an iteration event: the initial block's
    /// rank on the first step of a cycle, the latest step's rank otherwise;
    /// `None` while the process keeps full block rank.
    pub fn breakdown_rank(&self, first_of_cycle: bool) -> Option<usize> {
        if first_of_cycle && self.initial_rank < self.p {
            Some(self.initial_rank)
        } else if self.last_step_rank < self.p {
            Some(self.last_step_rank)
        } else {
            None
        }
    }
}

/// Convergence test on relative residuals: the paper's `EPS` (Fig. 1
/// lines 40–45) — true while **any** column is above its tolerance.
pub fn any_above(res: &[f64], bnorms: &[f64], rtol: f64) -> bool {
    res.iter().zip(bnorms).any(|(&r, &b)| r > rtol * b)
}

/// Column norms of `b`, with zero columns treated as unit scale.
pub fn rhs_norms<S: Scalar>(b: &DMat<S>) -> Vec<f64> {
    b.col_norms()
        .into_iter()
        .map(|n| {
            let v = n.to_f64();
            if v == 0.0 {
                1.0
            } else {
                v
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kryst_par::IdentityPrecond;
    use kryst_sparse::{Coo, Csr};

    fn laplace1d(n: usize) -> Csr<f64> {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i > 0 {
                c.push(i, i - 1, -1.0);
                c.push(i - 1, i, -1.0);
            }
        }
        c.to_csr()
    }

    #[test]
    fn arnoldi_relation_holds() {
        // A·Z_j = V_{j+1}·H̄_j must hold to machine precision.
        let n = 40;
        let a = laplace1d(n);
        let id = IdentityPrecond::new(n);
        let mode = PrecondMode::new(&id, PrecondSide::Right);
        let p = 2;
        let mut arn = BlockArnoldi::new(&a, &mode, 6, p, OrthScheme::CholQr, None, None);
        let r0 = DMat::from_fn(n, p, |i, j| ((i * 3 + j * 7) % 11) as f64 - 5.0);
        arn.start(&r0);
        for _ in 0..6 {
            arn.step();
        }
        let az = a.apply(&arn.z_active());
        let vh = blas::matmul(
            &arn.v_active(),
            blas::Op::None,
            &arn.hraw_active(),
            blas::Op::None,
        );
        let mut diff = az.clone();
        diff.axpy(-1.0, &vh);
        assert!(
            diff.max_abs() < 1e-10,
            "Arnoldi relation violated: {}",
            diff.max_abs()
        );
        // Basis orthonormality.
        let g = blas::adjoint_times(&arn.v_active(), &arn.v_active());
        for i in 0..g.nrows() {
            for j in 0..g.ncols() {
                let e = if i == j { 1.0 } else { 0.0 };
                assert!((g[(i, j)] - e).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn projected_arnoldi_keeps_basis_c_orthogonal() {
        let n = 30;
        let a = laplace1d(n);
        let id = IdentityPrecond::new(n);
        let mode = PrecondMode::new(&id, PrecondSide::Right);
        // C = orthonormalized random block.
        let mut c = DMat::from_fn(n, 2, |i, j| ((i * 7 + j * 3) % 13) as f64 - 6.0);
        let _ = chol::cholqr(&mut c);
        let mut arn = BlockArnoldi::new(&a, &mode, 5, 1, OrthScheme::CholQr, Some(&c), None);
        let mut r0 = DMat::from_fn(n, 1, |i, _| (i as f64 * 0.17).sin());
        // Project r0 off C first, like GCRO-DR line 9.
        let coef = blas::adjoint_times(&c, &r0);
        blas::gemm(
            -1.0,
            &c,
            blas::Op::None,
            &coef,
            blas::Op::None,
            1.0,
            &mut r0,
        );
        arn.start(&r0);
        for _ in 0..5 {
            arn.step();
        }
        let g = blas::adjoint_times(&c, &arn.v_active());
        assert!(g.max_abs() < 1e-10, "CᴴV = {}", g.max_abs());
        // Verify the captured E: A·Z = C·E + V·H̄.
        let az = a.apply(&arn.z_active());
        let mut rhs = blas::matmul(&c, blas::Op::None, &arn.e_active(), blas::Op::None);
        let vh = blas::matmul(
            &arn.v_active(),
            blas::Op::None,
            &arn.hraw_active(),
            blas::Op::None,
        );
        rhs.axpy(1.0, &vh);
        let mut diff = az;
        diff.axpy(-1.0, &rhs);
        assert!(
            diff.max_abs() < 1e-10,
            "A·Z ≠ C·E + V·H̄: {}",
            diff.max_abs()
        );
    }

    #[test]
    fn pipelined_arnoldi_relation_holds_with_recurrence_active() {
        // The depth-1 recurrence must reproduce the Arnoldi relation and an
        // orthonormal basis to solver tolerance, while actually overlapping
        // steps (not silently falling back every iteration).
        use kryst_precond::Jacobi;
        let n = 48;
        let a = laplace1d(n);
        let jac = Jacobi::new(&a, 1.0);
        for (side, p) in [
            (PrecondSide::Right, 2usize),
            (PrecondSide::Left, 1),
            (PrecondSide::Right, 1),
        ] {
            let mode = PrecondMode::new(&jac, side);
            let m = 6;
            let mut arn = BlockArnoldi::new(&a, &mode, m, p, OrthScheme::CholQr, None, None)
                .with_path(OrthPath::Pipelined);
            let r0 = DMat::from_fn(n, p, |i, j| ((i * 3 + j * 7) % 11) as f64 - 5.0);
            arn.start(&r0);
            for _ in 0..m {
                arn.step();
            }
            assert!(
                arn.pipeline_overlapped_steps() >= m - 1,
                "recurrence never engaged ({side:?})"
            );
            // Iteration-space relation: B·Z = V·H̄ with B = A (right: Z holds
            // M⁻¹V) or B = M⁻¹·A (left: Z holds V).
            let az = match side {
                PrecondSide::Left => jac.apply_new(&a.apply(&arn.z_active())),
                _ => a.apply(&arn.z_active()),
            };
            let vh = blas::matmul(
                &arn.v_active(),
                blas::Op::None,
                &arn.hraw_active(),
                blas::Op::None,
            );
            let mut diff = az.clone();
            diff.axpy(-1.0, &vh);
            assert!(
                diff.max_abs() < 1e-9,
                "pipelined Arnoldi relation violated ({side:?}): {}",
                diff.max_abs()
            );
            let g = blas::adjoint_times(&arn.v_active(), &arn.v_active());
            for i in 0..g.nrows() {
                for j in 0..g.ncols() {
                    let e = if i == j { 1.0 } else { 0.0 };
                    assert!(
                        (g[(i, j)] - e).abs() < 1e-9,
                        "basis orthonormality lost ({side:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn pipelined_projected_arnoldi_keeps_basis_c_orthogonal() {
        let n = 30;
        let a = laplace1d(n);
        let id = IdentityPrecond::new(n);
        let mode = PrecondMode::new(&id, PrecondSide::Right);
        let mut c = DMat::from_fn(n, 2, |i, j| ((i * 7 + j * 3) % 13) as f64 - 6.0);
        let _ = chol::cholqr(&mut c);
        let mut arn = BlockArnoldi::new(&a, &mode, 5, 1, OrthScheme::CholQr, Some(&c), None)
            .with_path(OrthPath::Pipelined);
        let mut r0 = DMat::from_fn(n, 1, |i, _| (i as f64 * 0.17).sin());
        let coef = blas::adjoint_times(&c, &r0);
        blas::gemm(
            -1.0,
            &c,
            blas::Op::None,
            &coef,
            blas::Op::None,
            1.0,
            &mut r0,
        );
        arn.start(&r0);
        for _ in 0..5 {
            arn.step();
        }
        let g = blas::adjoint_times(&c, &arn.v_active());
        assert!(g.max_abs() < 1e-9, "CᴴV = {}", g.max_abs());
        // The captured E stays exact: A·Z = C·E + V·H̄.
        let az = a.apply(&arn.z_active());
        let mut rhs = blas::matmul(&c, blas::Op::None, &arn.e_active(), blas::Op::None);
        let vh = blas::matmul(
            &arn.v_active(),
            blas::Op::None,
            &arn.hraw_active(),
            blas::Op::None,
        );
        rhs.axpy(1.0, &vh);
        let mut diff = az;
        diff.axpy(-1.0, &rhs);
        assert!(diff.max_abs() < 1e-9, "A·Z ≠ C·E + V·H̄: {}", diff.max_abs());
    }

    #[test]
    fn pipelined_demotes_to_fused_for_inexact_preconditioners() {
        // The recurrence assumes a fixed full-precision M⁻¹: f32-storage and
        // variable preconditioners must fall back to the fused synchronous
        // path at construction, not compound their apply error step by step.
        struct Inexact {
            n: usize,
            variable: bool,
        }
        impl PrecondOp<f64> for Inexact {
            fn nrows(&self) -> usize {
                self.n
            }
            fn apply(&self, r: &DMat<f64>, z: &mut DMat<f64>) {
                z.copy_from(r);
            }
            fn is_variable(&self) -> bool {
                self.variable
            }
            fn precision(&self) -> PrecondPrecision {
                if self.variable {
                    PrecondPrecision::Full
                } else {
                    PrecondPrecision::Single
                }
            }
        }
        let n = 24;
        let a = laplace1d(n);
        for variable in [false, true] {
            let pc = Inexact { n, variable };
            let mode = PrecondMode::new(&pc, PrecondSide::Right);
            assert!(!mode.recurrence_safe());
            let mut arn = BlockArnoldi::new(&a, &mode, 4, 1, OrthScheme::CholQr, None, None)
                .with_path(OrthPath::Pipelined);
            assert_eq!(arn.path, OrthPath::Fused);
            let r0 = DMat::from_fn(n, 1, |i, _| 1.0 + (i % 3) as f64);
            arn.start(&r0);
            for _ in 0..4 {
                arn.step();
            }
            assert_eq!(arn.pipeline_overlapped_steps(), 0);
        }
        // An exact full-precision preconditioner keeps the pipelined path.
        let id = IdentityPrecond::new(n);
        let mode = PrecondMode::new(&id, PrecondSide::Right);
        assert!(mode.recurrence_safe());
        let arn = BlockArnoldi::new(&a, &mode, 4, 1, OrthScheme::CholQr, None, None)
            .with_path(OrthPath::Pipelined);
        assert_eq!(arn.path, OrthPath::Pipelined);
    }

    #[test]
    fn pipelined_records_overlapped_reductions() {
        use kryst_par::CommStats;
        let n = 40;
        let a = laplace1d(n);
        let id = IdentityPrecond::new(n);
        let mode = PrecondMode::new(&id, PrecondSide::Right);
        let stats = CommStats::new_shared();
        let m = 5;
        let mut arn = BlockArnoldi::new(&a, &mode, m, 1, OrthScheme::CholQr, None, Some(&stats))
            .with_path(OrthPath::Pipelined);
        let r0 = DMat::from_fn(n, 1, |i, _| 1.0 + (i % 3) as f64);
        arn.start(&r0);
        for _ in 0..m {
            arn.step();
        }
        let snap = stats.snapshot();
        // Every step but the last overlaps its first Gram pass.
        assert_eq!(snap.overlapped_reductions, (m - 1) as u64);
        assert!(snap.overlapped_parts >= 2 * (m - 1) as u64);
        // The last step's Gram (no lag partner) stays synchronous, plus the
        // start-of-cycle CholQR.
        assert!(snap.reductions >= 2);
    }

    #[test]
    fn residual_estimates_decrease_for_spd() {
        let n = 50;
        let a = laplace1d(n);
        let id = IdentityPrecond::new(n);
        let mode = PrecondMode::new(&id, PrecondSide::Right);
        let mut arn = BlockArnoldi::new(&a, &mode, 10, 1, OrthScheme::Imgs, None, None);
        let r0 = DMat::from_fn(n, 1, |i, _| 1.0 + (i % 3) as f64);
        arn.start(&r0);
        let mut prev = f64::MAX;
        for _ in 0..10 {
            let res = arn.step();
            assert!(res[0] <= prev + 1e-12, "GMRES residual must be monotone");
            prev = res[0];
        }
    }

    #[test]
    fn left_and_right_modes_apply_preconditioner() {
        use kryst_precond::Jacobi;
        let n = 20;
        let a = laplace1d(n);
        let jac = Jacobi::new(&a, 1.0);
        let b = DMat::from_fn(n, 1, |i, _| (i + 1) as f64);
        let x = DMat::zeros(n, 1);
        let left = PrecondMode::new(&jac, PrecondSide::Left);
        let right = PrecondMode::new(&jac, PrecondSide::Right);
        let rl = left.residual(&a, &b, &x);
        let rr = right.residual(&a, &b, &x);
        // Left residual is D⁻¹·b, right residual is b.
        assert!((rl[(0, 0)] - b[(0, 0)] / 2.0).abs() < 1e-14);
        assert!((rr[(0, 0)] - b[(0, 0)]).abs() < 1e-14);
    }
}
