//! Restarted (block) GMRES / FGMRES.
//!
//! One driver covers the whole family: `p = 1` gives classic GMRES(m),
//! `p > 1` gives **Block GMRES** (the paper's §V-B: one Krylov space for all
//! right-hand sides, block Hessenberg least squares, faster convergence at
//! higher per-iteration cost), and [`crate::opts::PrecondSide::Flexible`]
//! gives FGMRES — the directions `Z_m = M⁻¹·V_m` are stored and used for the
//! solution update, so the preconditioner may change between applications.

use crate::cycle::{any_above, rhs_norms, BlockArnoldi, PrecondMode};
use crate::opts::{PrecondSide, SolveOpts, SolveResult};
use crate::trace::SolveTracer;
use kryst_dense::DMat;
use kryst_obs::SpanKind;
use kryst_par::{LinOp, PrecondOp};
use kryst_scalar::{Real, Scalar};

/// Solve `A·X = B` for all columns of `b` simultaneously (block method).
/// `x` holds the initial guess on entry and the solution on exit.
pub fn solve<S: Scalar>(
    a: &dyn LinOp<S>,
    pc: &dyn PrecondOp<S>,
    b: &DMat<S>,
    x: &mut DMat<S>,
    opts: &SolveOpts,
) -> SolveResult {
    let p = b.ncols();
    let m = opts.restart.max(1);
    let mode = PrecondMode::new(pc, opts.side);
    let bnorms = rhs_norms(b);
    let mut iters = 0usize;
    let mut converged = false;
    let name = if opts.side == PrecondSide::Flexible {
        "fgmres"
    } else {
        "gmres"
    };
    let mut tracer = SolveTracer::begin(opts, name, 0, a.nrows(), p);
    let orth_name = opts.orth.name();
    if opts.side != PrecondSide::Flexible && pc.precision() == kryst_par::PrecondPrecision::Single {
        // Plain GMRES assumes a fixed preconditioner; f32-storage applies
        // perturb M⁻¹ at the level of single rounding. FGMRES stores Z_m
        // and absorbs this — plain GMRES only gets a diagnostic.
        tracer.diag(0, 0, kryst_obs::DiagKind::MixedPrecision, 0.0, 0);
    }

    // Buffer pool shared by every restart cycle: the per-step n × p
    // temporaries are allocated once and reused for the whole solve.
    let mut ws = kryst_sparse::SpmmWorkspace::new();
    let mut r = mode.residual_ws(a, b, x, &mut ws);
    let r0: Vec<f64> = r.col_norms().iter().map(|v| v.to_f64()).collect();
    if !any_above(&r0, &bnorms, opts.rtol) {
        let final_relres: Vec<f64> = r0.iter().zip(&bnorms).map(|(r, b)| r / b).collect();
        let history = tracer.finish(true, &final_relres);
        return SolveResult {
            iterations: 0,
            converged: true,
            history,
            final_relres,
        };
    }

    let mut cycle = 0usize;
    while iters < opts.max_iters {
        let cyc = tracer.span_start();
        let mut arn = BlockArnoldi::new(a, &mode, m, p, opts.orth, None, opts.stats.as_deref())
            .with_path(opts.ortho)
            .with_workspace(std::mem::take(&mut ws));
        arn.start(&r);
        let mut first = true;
        while arn.can_step() && iters < opts.max_iters {
            let res = arn.step();
            iters += 1;
            let rel: Vec<f64> = res.iter().zip(&bnorms).map(|(r, b)| r / b).collect();
            tracer.iteration(cycle, iters - 1, rel, orth_name, arn.breakdown_rank(first));
            if arn.last_orth_passes() > 1 || arn.last_orth_refreshed() {
                // The fused path's amp² budget forced a second pass (or a
                // rank-revealing refresh): surface the running loss estimate.
                tracer.diag(
                    cycle,
                    iters - 1,
                    kryst_obs::DiagKind::OrthLoss,
                    arn.fused_loss(),
                    arn.last_orth_passes(),
                );
            }
            first = false;
            if !any_above(&res, &bnorms, opts.rtol) {
                // Least-squares estimates say done — leave the cycle and
                // validate against the true residual below (wide blocks with
                // rank-revealing fixups can make the estimates optimistic).
                break;
            }
        }
        tracer.span_end(cyc, SpanKind::Cycle, cycle);
        // Apply the correction, recompute the true residual.
        let restart = tracer.span_start();
        let y = arn.solve_y();
        arn.update_solution(&y, x);
        ws = arn.into_workspace();
        ws.put(r);
        r = mode.residual_ws(a, b, x, &mut ws);
        tracer.span_end(restart, SpanKind::Restart, cycle);
        cycle += 1;
        let rn: Vec<f64> = r.col_norms().iter().map(|v| v.to_f64()).collect();
        if !any_above(&rn, &bnorms, opts.rtol) {
            converged = true;
            break;
        }
    }

    ws.put(r);
    let rfin = mode.residual_ws(a, b, x, &mut ws);
    let final_relres: Vec<f64> = rfin
        .col_norms()
        .iter()
        .zip(&bnorms)
        .map(|(r, b)| r.to_f64() / b)
        .collect();
    // Trust the true residual for the final verdict.
    let converged = converged && final_relres.iter().all(|&v| v <= opts.rtol * 10.0);
    let history = tracer.finish(converged, &final_relres);
    SolveResult {
        iterations: iters,
        converged,
        history,
        final_relres,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::PrecondSide;
    use kryst_dense::gs::OrthScheme;
    use kryst_par::IdentityPrecond;
    use kryst_pde::poisson::poisson2d;
    use kryst_precond::{Amg, AmgOpts, Jacobi, SmootherKind};
    use kryst_sparse::Csr;

    fn check_true_residual<S: Scalar>(a: &Csr<S>, b: &DMat<S>, x: &DMat<S>, rtol: f64) {
        let mut r = a.apply(x);
        r.axpy(-S::one(), b);
        for l in 0..b.ncols() {
            let rel = r.col_norm(l).to_f64() / b.col_norm(l).to_f64();
            assert!(rel <= rtol * 20.0, "column {l}: true rel residual {rel}");
        }
    }

    #[test]
    fn gmres_unpreconditioned_poisson() {
        let prob = poisson2d::<f64>(12, 12);
        let n = prob.a.nrows();
        let b = DMat::from_fn(n, 1, |i, _| ((i % 7) as f64) - 3.0);
        let mut x = DMat::zeros(n, 1);
        let opts = SolveOpts {
            rtol: 1e-10,
            max_iters: 500,
            ..Default::default()
        };
        let id = IdentityPrecond::new(n);
        let res = solve(&prob.a, &id, &b, &mut x, &opts);
        assert!(res.converged, "GMRES failed: {:?}", res.final_relres);
        check_true_residual(&prob.a, &b, &x, 1e-10);
        // History is per-iteration and monotone within cycles.
        assert_eq!(res.history.len(), res.iterations);
    }

    #[test]
    fn gmres_restart_still_converges() {
        let prob = poisson2d::<f64>(16, 16);
        let n = prob.a.nrows();
        let b = DMat::from_fn(n, 1, |i, _| 1.0 + ((i % 5) as f64));
        let mut x = DMat::zeros(n, 1);
        let opts = SolveOpts {
            rtol: 1e-8,
            restart: 10,
            max_iters: 3000,
            ..Default::default()
        };
        let id = IdentityPrecond::new(n);
        let res = solve(&prob.a, &id, &b, &mut x, &opts);
        assert!(res.converged);
        check_true_residual(&prob.a, &b, &x, 1e-8);
    }

    #[test]
    fn jacobi_preconditioning_left_and_right_agree() {
        let prob = poisson2d::<f64>(10, 10);
        let n = prob.a.nrows();
        let jac = Jacobi::new(&prob.a, 1.0);
        let b = DMat::from_fn(n, 1, |i, _| ((i * 3) % 11) as f64 - 5.0);
        for side in [PrecondSide::Left, PrecondSide::Right, PrecondSide::Flexible] {
            let mut x = DMat::zeros(n, 1);
            let opts = SolveOpts {
                rtol: 1e-9,
                side,
                ..Default::default()
            };
            let res = solve(&prob.a, &jac, &b, &mut x, &opts);
            assert!(res.converged, "{side:?} failed");
            check_true_residual(&prob.a, &b, &x, 1e-8);
        }
    }

    #[test]
    fn block_gmres_converges_in_fewer_iterations_than_worst_single() {
        let prob = poisson2d::<f64>(14, 14);
        let n = prob.a.nrows();
        let p = 4;
        let b = DMat::from_fn(n, p, |i, j| (((i + 1) * (j + 2)) % 13) as f64 - 6.0);
        let id = IdentityPrecond::new(n);
        let opts = SolveOpts {
            rtol: 1e-8,
            restart: 40,
            max_iters: 400,
            ..Default::default()
        };
        let mut xb = DMat::zeros(n, p);
        let res_block = solve(&prob.a, &id, &b, &mut xb, &opts);
        assert!(res_block.converged);
        check_true_residual(&prob.a, &b, &xb, 1e-8);
        // Single-RHS solves for comparison.
        let mut worst = 0usize;
        for l in 0..p {
            let bl = DMat::from_col_major(n, 1, b.col(l).to_vec());
            let mut xl = DMat::zeros(n, 1);
            let r = solve(&prob.a, &id, &bl, &mut xl, &opts);
            assert!(r.converged);
            worst = worst.max(r.iterations);
        }
        assert!(
            res_block.iterations < worst,
            "block {} !< worst single {}",
            res_block.iterations,
            worst
        );
    }

    #[test]
    fn fgmres_handles_variable_preconditioner() {
        // AMG with an inner GMRES smoother is nonlinear: FGMRES must still
        // converge to the true solution.
        let prob = poisson2d::<f64>(20, 20);
        let n = prob.a.nrows();
        let amg = Amg::new(
            &prob.a,
            prob.near_nullspace.as_ref(),
            &AmgOpts {
                smoother: SmootherKind::Gmres { iters: 3 },
                ..Default::default()
            },
        );
        assert!(kryst_par::PrecondOp::<f64>::is_variable(&amg));
        let b = DMat::from_fn(n, 1, |i, _| ((i % 9) as f64) - 4.0);
        let mut x = DMat::zeros(n, 1);
        let opts = SolveOpts {
            rtol: 1e-10,
            side: PrecondSide::Flexible,
            ..Default::default()
        };
        let res = solve(&prob.a, &amg, &b, &mut x, &opts);
        assert!(res.converged, "FGMRES+AMG: {:?}", res.final_relres);
        assert!(
            res.iterations < 25,
            "AMG-preconditioned GMRES took {}",
            res.iterations
        );
        check_true_residual(&prob.a, &b, &x, 1e-9);
    }

    #[test]
    fn complex_maxwell_system_solvable() {
        use kryst_pde::maxwell::{maxwell3d, MaxwellParams};
        use kryst_scalar::C64;
        let (prob, geom) = maxwell3d(&MaxwellParams::matching_solution(4));
        let n = prob.a.nrows();
        let params = MaxwellParams::matching_solution(4);
        let b = kryst_pde::maxwell::antenna_ring_rhs(&geom, &params, 2, 0.3, 0.5);
        let id = IdentityPrecond::new(n);
        let opts = SolveOpts {
            rtol: 1e-8,
            restart: 60,
            max_iters: 2000,
            orth: OrthScheme::Imgs,
            ..Default::default()
        };
        let mut x = DMat::<C64>::zeros(n, 2);
        let res = solve(&prob.a, &id, &b, &mut x, &opts);
        assert!(res.converged, "complex GMRES: {:?}", res.final_relres);
        check_true_residual(&prob.a, &b, &x, 1e-7);
    }

    #[test]
    fn zero_rhs_returns_immediately() {
        let prob = poisson2d::<f64>(8, 8);
        let n = prob.a.nrows();
        let b = DMat::zeros(n, 2);
        let id = IdentityPrecond::new(n);
        let mut x = DMat::zeros(n, 2);
        let res = solve(&prob.a, &id, &b, &mut x, &SolveOpts::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn reduction_counts_scale_with_iterations() {
        use crate::opts::OrthPath;
        use kryst_par::CommStats;
        let prob = poisson2d::<f64>(12, 12);
        let n = prob.a.nrows();
        let id = IdentityPrecond::new(n);
        let b = DMat::from_fn(n, 1, |i, _| (i % 4) as f64);

        // Classic path (CholQR scheme): 3 reductions per iteration + 1 per
        // cycle start.
        let stats = CommStats::new_shared();
        let opts = SolveOpts {
            rtol: 1e-8,
            ortho: OrthPath::Classic,
            stats: Some(std::sync::Arc::clone(&stats)),
            ..Default::default()
        };
        let mut x = DMat::zeros(n, 1);
        let res = solve(&prob.a, &id, &b, &mut x, &opts);
        let snap = stats.snapshot();
        assert!(snap.reductions as usize >= 3 * res.iterations);
        assert!(
            snap.reductions as usize
                <= 3 * res.iterations + 3 * (res.iterations / opts.restart + 2)
        );

        // Fused path: one reduction per iteration + 1 per cycle start, with
        // the same iteration trajectory (up to an occasional adaptive
        // re-orthogonalization pass).
        let fstats = CommStats::new_shared();
        let fopts = SolveOpts {
            rtol: 1e-8,
            ortho: OrthPath::Fused,
            stats: Some(std::sync::Arc::clone(&fstats)),
            ..Default::default()
        };
        let mut xf = DMat::zeros(n, 1);
        let fres = solve(&prob.a, &id, &b, &mut xf, &fopts);
        assert_eq!(
            fres.iterations, res.iterations,
            "fused must not change convergence"
        );
        let fsnap = fstats.snapshot();
        let cycles = fres.iterations.div_ceil(fopts.restart).max(1);
        assert!(fsnap.reductions as usize >= fres.iterations + cycles);
        assert!(
            (fsnap.reductions as usize) < snap.reductions as usize,
            "fused path must issue fewer reductions ({} vs {})",
            fsnap.reductions,
            snap.reductions
        );
        // Each fused reduction carried at least the V-projection + Gram parts.
        assert!(fsnap.fused_parts >= 2 * (fres.iterations as u64 - 1));
    }

    #[test]
    fn plain_gmres_warns_on_mixed_precision_precond_fgmres_does_not() {
        use kryst_obs::{diags_of, DiagKind, Recorder, RingRecorder};
        use kryst_par::PrecondPrecision;
        use kryst_precond::Ilu0;
        use std::sync::Arc;
        let prob = poisson2d::<f64>(12, 12);
        let n = prob.a.nrows();
        let ilu = Ilu0::with_precision(&prob.a, PrecondPrecision::Single).expect("ILU(0) factors");
        let b = DMat::from_fn(n, 1, |i, _| ((i % 7) as f64) - 3.0);
        let run = |side: PrecondSide| {
            let ring = Arc::new(RingRecorder::new(8192));
            let opts = SolveOpts {
                // Tight enough that even the left-preconditioned residual
                // certifies a small true residual.
                rtol: 1e-10,
                side,
                recorder: Some(ring.clone() as Arc<dyn Recorder>),
                ..Default::default()
            };
            let mut x = DMat::zeros(n, 1);
            let res = solve(&prob.a, &ilu, &b, &mut x, &opts);
            assert!(res.converged, "{side:?}: {:?}", res.final_relres);
            check_true_residual(&prob.a, &b, &x, 1e-7);
            diags_of(&ring.events(), DiagKind::MixedPrecision).len()
        };
        assert_eq!(run(PrecondSide::Right), 1, "plain GMRES must warn once");
        assert_eq!(run(PrecondSide::Left), 1, "left GMRES must warn once");
        assert_eq!(run(PrecondSide::Flexible), 0, "FGMRES absorbs, no warning");
    }
}
