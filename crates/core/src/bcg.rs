//! Block Conjugate Gradient (O'Leary 1980) — the SPD block baseline.
//!
//! The paper's related work (§II-B) traces block iterative methods back to
//! the Block CG: all `p` right-hand sides share one block Krylov space and
//! the step/correction coefficients become `p × p` matrix solves. Like
//! Block GMRES it converges in fewer (block) iterations than `p` separate
//! CG runs; unlike the pseudo-block variant the residual columns interact,
//! so near-dependent residual blocks must be handled (here: a pivoted
//! pseudo-inverse solve of the `p × p` systems, the block analogue of the
//! §V-C breakdown remark).

use crate::cycle::{any_above, rhs_norms};
use crate::opts::{SolveOpts, SolveResult};
use crate::trace::SolveTracer;
use kryst_dense::{blas, lu::Lu, DMat};
use kryst_par::{LinOp, PrecondOp};
use kryst_scalar::{Real, Scalar};
use kryst_sparse::SpmmWorkspace;

/// Solve `A·X = B` (`A` SPD/HPD) with preconditioned Block CG.
pub fn solve<S: Scalar>(
    a: &dyn LinOp<S>,
    pc: &dyn PrecondOp<S>,
    b: &DMat<S>,
    x: &mut DMat<S>,
    opts: &SolveOpts,
) -> SolveResult {
    let p = b.ncols();
    let bnorms = rhs_norms(b);
    // R = B − A·X, Z = M⁻¹·R, D = Z.
    let mut r = a.apply_new(x);
    r.scale(-S::one());
    r.axpy(S::one(), b);
    let mut z = pc.apply_new(&r);
    let mut d = z.clone();
    // S_rz = Rᴴ·Z (p × p).
    let mut s_rz = blas::adjoint_times(&r, &z);
    let mut tracer = SolveTracer::begin(opts, "bcg", 0, a.nrows(), p);
    let mut iters = 0usize;
    // Buffer pool for the per-iteration n × p temporaries (A·D, M⁻¹·R, the
    // next direction block): no allocation after the first iteration.
    let mut ws = SpmmWorkspace::new();

    loop {
        let res: Vec<f64> = r.col_norms().iter().map(|v| v.to_f64()).collect();
        if !any_above(&res, &bnorms, opts.rtol) || iters >= opts.max_iters {
            break;
        }
        let mut ad = ws.take(a.nrows(), p);
        a.apply(&d, &mut ad);
        if let Some(st) = &opts.stats {
            // Two fused block reductions per iteration (DᴴAD and RᴴZ).
            st.record_reductions(2, 2 * p * p * std::mem::size_of::<S>());
        }
        // α solves (Dᴴ·A·D)·α = Rᴴ·Z.
        let dad = blas::adjoint_times(&d, &ad);
        let alpha = match solve_small(&dad, &s_rz) {
            Some(v) => v,
            None => break, // block breakdown: D lost rank; residuals are tiny
        };
        blas::gemm(
            S::one(),
            &d,
            blas::Op::None,
            &alpha,
            blas::Op::None,
            S::one(),
            x,
        );
        blas::gemm(
            -S::one(),
            &ad,
            blas::Op::None,
            &alpha,
            blas::Op::None,
            S::one(),
            &mut r,
        );
        ws.put(ad);
        let mut znew = ws.take(a.nrows(), p);
        pc.apply(&r, &mut znew);
        ws.put(std::mem::replace(&mut z, znew));
        let s_new = blas::adjoint_times(&r, &z);
        // β solves (old RᴴZ)·β = new RᴴZ.
        let beta = match solve_small(&s_rz, &s_new) {
            Some(v) => v,
            None => break,
        };
        // D ⟵ Z + D·β.
        let mut d_next = ws.take(a.nrows(), p);
        d_next.copy_from(&z);
        blas::gemm(
            S::one(),
            &d,
            blas::Op::None,
            &beta,
            blas::Op::None,
            S::one(),
            &mut d_next,
        );
        ws.put(std::mem::replace(&mut d, d_next));
        s_rz = s_new;
        iters += 1;
        let row: Vec<f64> = r
            .col_norms()
            .iter()
            .zip(&bnorms)
            .map(|(v, b)| v.to_f64() / b)
            .collect();
        tracer.iteration(0, iters - 1, row, "none", None);
    }

    let final_relres: Vec<f64> = r
        .col_norms()
        .iter()
        .zip(&bnorms)
        .map(|(v, b)| v.to_f64() / b)
        .collect();
    let converged = final_relres.iter().all(|&v| v <= opts.rtol * 10.0);
    let history = tracer.finish(converged, &final_relres);
    SolveResult {
        iterations: iters,
        converged,
        history,
        final_relres,
    }
}

/// Solve the small `p × p` system `M·X = B`; `None` when (numerically)
/// singular — the exact/inexact block breakdown guard.
fn solve_small<S: Scalar>(m: &DMat<S>, b: &DMat<S>) -> Option<DMat<S>> {
    let f = Lu::factor(m.clone());
    if f.is_singular() {
        return None;
    }
    let (lo, hi) = f.pivot_range();
    if lo <= hi * S::Real::epsilon() * S::Real::from_f64(1e3) {
        return None;
    }
    Some(f.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg;
    use kryst_par::IdentityPrecond;
    use kryst_pde::poisson::poisson2d;
    use kryst_precond::Jacobi;

    #[test]
    fn block_cg_converges_and_matches_direct() {
        use kryst_sparse::SparseDirect;
        let prob = poisson2d::<f64>(16, 16);
        let n = prob.a.nrows();
        let id = IdentityPrecond::new(n);
        let p = 3;
        let b = DMat::from_fn(n, p, |i, j| (((i + 3 * j) % 9) as f64) - 4.0);
        let mut x = DMat::zeros(n, p);
        let opts = SolveOpts {
            rtol: 1e-10,
            max_iters: 500,
            ..Default::default()
        };
        let res = solve(&prob.a, &id, &b, &mut x, &opts);
        assert!(res.converged, "{:?}", res.final_relres);
        let f = SparseDirect::factor(&prob.a).unwrap();
        for l in 0..p {
            let xd = f.solve_one(b.col(l));
            for i in 0..n {
                assert!((x[(i, l)] - xd[i]).abs() < 1e-7, "({i},{l})");
            }
        }
    }

    #[test]
    fn block_cg_fewer_iterations_than_single_cg() {
        let prob = poisson2d::<f64>(20, 20);
        let n = prob.a.nrows();
        let id = IdentityPrecond::new(n);
        let p = 4;
        let b = DMat::from_fn(n, p, |i, j| (((i * (j + 2)) % 13) as f64) - 6.0);
        let opts = SolveOpts {
            rtol: 1e-8,
            max_iters: 1000,
            ..Default::default()
        };
        let mut xb = DMat::zeros(n, p);
        let block = solve(&prob.a, &id, &b, &mut xb, &opts);
        assert!(block.converged);
        let mut worst = 0;
        for l in 0..p {
            let bl = DMat::from_col_major(n, 1, b.col(l).to_vec());
            let mut xl = DMat::zeros(n, 1);
            let r = cg::solve(&prob.a, &id, &bl, &mut xl, &opts);
            assert!(r.converged);
            worst = worst.max(r.iterations);
        }
        assert!(
            block.iterations < worst,
            "BCG {} !< worst CG {}",
            block.iterations,
            worst
        );
    }

    #[test]
    fn preconditioned_block_cg() {
        let prob = poisson2d::<f64>(14, 14);
        let n = prob.a.nrows();
        let jac = Jacobi::new(&prob.a, 1.0);
        let b = DMat::from_fn(n, 2, |i, j| ((i + j) % 5) as f64 - 2.0);
        let mut x = DMat::zeros(n, 2);
        let opts = SolveOpts {
            rtol: 1e-9,
            ..Default::default()
        };
        let res = solve(&prob.a, &jac, &b, &mut x, &opts);
        assert!(res.converged);
        let mut r = prob.a.apply(&x);
        r.axpy(-1.0, &b);
        assert!(r.fro_norm() < 1e-7 * b.fro_norm());
    }

    #[test]
    fn rank_deficient_rhs_block_terminates_cleanly() {
        // Proportional columns make the block Gram matrices singular: like
        // the paper (which performs no block-size reduction, §V-C), the
        // solver detects the exact breakdown and stops without NaNs —
        // callers then deduplicate or perturb the block.
        let prob = poisson2d::<f64>(10, 10);
        let n = prob.a.nrows();
        let id = IdentityPrecond::new(n);
        let mut b = DMat::zeros(n, 2);
        for i in 0..n {
            let v = ((i % 7) as f64) - 3.0;
            b[(i, 0)] = v;
            b[(i, 1)] = 2.0 * v;
        }
        let mut x = DMat::zeros(n, 2);
        let opts = SolveOpts {
            rtol: 1e-8,
            max_iters: 400,
            ..Default::default()
        };
        let res = solve(&prob.a, &id, &b, &mut x, &opts);
        assert!(!res.converged);
        for v in &res.final_relres {
            assert!(v.is_finite());
        }
        // A genuine perturbation restores block independence and convergence.
        for i in 0..n {
            b[(i, 1)] += 0.1 * (((i * 3) % 5) as f64 - 2.0);
        }
        let mut x = DMat::zeros(n, 2);
        let res = solve(&prob.a, &id, &b, &mut x, &opts);
        assert!(res.converged, "{:?}", res.final_relres);
    }
}
