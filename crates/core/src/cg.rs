//! Preconditioned Conjugate Gradient (baseline for SPD systems).
//!
//! The paper's related work traces block methods back to the Block CG of
//! O'Leary; here CG serves as the SPD baseline and as a reference solution
//! generator in tests. Multiple right-hand sides are handled pseudo-block
//! style: one recurrence per column, applications of `A` and `M⁻¹` fused
//! into block operations.

use crate::cycle::rhs_norms;
use crate::opts::{SolveOpts, SolveResult};
use crate::trace::SolveTracer;
use kryst_dense::DMat;
use kryst_par::{LinOp, PrecondOp};
use kryst_scalar::{Real, Scalar};

/// Solve `A·X = B` (`A` SPD/HPD) with PCG; `x` is the initial guess.
pub fn solve<S: Scalar>(
    a: &dyn LinOp<S>,
    pc: &dyn PrecondOp<S>,
    b: &DMat<S>,
    x: &mut DMat<S>,
    opts: &SolveOpts,
) -> SolveResult {
    let n = a.nrows();
    let p = b.ncols();
    let bnorms = rhs_norms(b);
    // R = B − A·X (block), Z = M⁻¹R, D = Z.
    let mut r = a.apply_new(x);
    r.scale(-S::one());
    r.axpy(S::one(), b);
    let mut z = pc.apply_new(&r);
    let mut d = z.clone();
    let mut rz: Vec<S> = (0..p).map(|l| r.col_dot(l, &z, l)).collect();
    let mut active: Vec<bool> = (0..p)
        .map(|l| r.col_norm(l).to_f64() > opts.rtol * bnorms[l])
        .collect();
    let mut tracer = SolveTracer::begin(opts, "cg", 0, n, p);
    let mut iters = 0usize;
    // Buffer pool for the per-iteration n × p temporaries (A·D, M⁻¹·R):
    // no allocation after the first iteration.
    let mut ws = kryst_sparse::SpmmWorkspace::new();

    while active.iter().any(|&a| a) && iters < opts.max_iters {
        // Fused operator application (one SpMM for all columns).
        let mut ad = ws.take(n, p);
        a.apply(&d, &mut ad);
        if let Some(st) = &opts.stats {
            // α and the new ⟨r,z⟩ each cost one fused reduction per iteration.
            st.record_reductions(2, 2 * p * std::mem::size_of::<S>());
        }
        for l in 0..p {
            if !active[l] {
                continue;
            }
            let dad = d.col_dot(l, &ad, l);
            if dad == S::zero() {
                active[l] = false;
                continue;
            }
            let alpha = rz[l] / dad;
            for i in 0..n {
                let dv = d[(i, l)];
                x[(i, l)] += alpha * dv;
                r[(i, l)] -= alpha * ad[(i, l)];
            }
        }
        ws.put(ad);
        let mut znew = ws.take(n, p);
        pc.apply(&r, &mut znew);
        ws.put(std::mem::replace(&mut z, znew));
        for l in 0..p {
            if !active[l] {
                continue;
            }
            let rz_new = r.col_dot(l, &z, l);
            let beta = rz_new / rz[l];
            rz[l] = rz_new;
            for i in 0..n {
                d[(i, l)] = z[(i, l)] + beta * d[(i, l)];
            }
        }
        iters += 1;
        let row: Vec<f64> = (0..p).map(|l| r.col_norm(l).to_f64() / bnorms[l]).collect();
        for l in 0..p {
            if row[l] <= opts.rtol {
                active[l] = false;
            }
        }
        tracer.iteration(0, iters - 1, row, "none", None);
    }

    let final_relres: Vec<f64> = (0..p).map(|l| r.col_norm(l).to_f64() / bnorms[l]).collect();
    let converged = final_relres.iter().all(|&v| v <= opts.rtol * 10.0);
    let history = tracer.finish(converged, &final_relres);
    SolveResult {
        iterations: iters,
        converged,
        history,
        final_relres,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kryst_par::IdentityPrecond;
    use kryst_pde::poisson::poisson2d;
    use kryst_precond::Jacobi;

    #[test]
    fn cg_converges_on_poisson() {
        let prob = poisson2d::<f64>(16, 16);
        let n = prob.a.nrows();
        let b = DMat::from_fn(n, 2, |i, j| (((i + j) % 5) as f64) - 2.0);
        let id = IdentityPrecond::new(n);
        let mut x = DMat::zeros(n, 2);
        let opts = SolveOpts {
            rtol: 1e-10,
            max_iters: 500,
            ..Default::default()
        };
        let res = solve(&prob.a, &id, &b, &mut x, &opts);
        assert!(res.converged, "{:?}", res.final_relres);
        let mut r = prob.a.apply(&x);
        r.axpy(-1.0, &b);
        assert!(r.fro_norm() < 1e-8 * b.fro_norm());
    }

    #[test]
    fn jacobi_pcg_needs_fewer_iterations_on_scaled_problem() {
        // Badly diagonally scaled SPD matrix: Jacobi fixes the scaling.
        use kryst_sparse::Coo;
        let n = 200;
        let mut c = Coo::new(n, n);
        for i in 0..n {
            let s = 1.0 + (i % 17) as f64 * 10.0;
            c.push(i, i, 2.0 * s);
            if i > 0 {
                let sm =
                    0.9 * (1.0 + ((i - 1) % 17) as f64 * 10.0).min(1.0 + (i % 17) as f64 * 10.0);
                c.push(i, i - 1, -sm);
                c.push(i - 1, i, -sm);
            }
        }
        let a = c.to_csr();
        let b = DMat::from_fn(n, 1, |i, _| ((i % 7) as f64) - 3.0);
        let opts = SolveOpts {
            rtol: 1e-8,
            max_iters: 2000,
            ..Default::default()
        };
        let id = IdentityPrecond::new(n);
        let jac = Jacobi::new(&a, 1.0);
        let mut x1 = DMat::zeros(n, 1);
        let plain = solve(&a, &id, &b, &mut x1, &opts);
        let mut x2 = DMat::zeros(n, 1);
        let pre = solve(&a, &jac, &b, &mut x2, &opts);
        assert!(plain.converged && pre.converged);
        assert!(
            pre.iterations < plain.iterations,
            "{} !< {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn columns_converge_independently() {
        let prob = poisson2d::<f64>(10, 10);
        let n = prob.a.nrows();
        // Column 0: identically zero RHS (converged from the start);
        // column 1: generic.
        let mut b = DMat::zeros(n, 2);
        for i in 0..n {
            b[(i, 1)] = 1.0 + (i % 3) as f64;
        }
        let id = IdentityPrecond::new(n);
        let mut x = DMat::zeros(n, 2);
        let res = solve(&prob.a, &id, &b, &mut x, &SolveOpts::default());
        assert!(res.converged);
        // Easy column untouched (never active).
        assert_eq!(x.col(0).iter().filter(|&&v| v != 0.0).count(), 0);
    }
}
