//! Implicit heat stepping: a *non-variable* sequence of linear systems.
//!
//! The paper's §III-B motivates the `same_system` fast path with the
//! implicitly discretized heat equation `∂u/∂t − Δu = f`: backward Euler
//! gives `(I + dt·L)·u^{n+1} = u^n + dt·f^{n+1}` — one operator, many
//! right-hand sides. This module generates exactly that workload.

use crate::poisson::poisson2d;
use crate::Problem;
use kryst_scalar::Scalar;
use kryst_sparse::Csr;

/// A heat-stepping workload: one operator and a lazy stream of RHS vectors.
pub struct HeatSequence<S: Scalar> {
    /// The time-stepping operator `I + dt·L`.
    pub a: Csr<S>,
    /// Problem geometry (from the underlying Poisson discretization).
    pub problem: Problem<S>,
    /// Time step.
    pub dt: f64,
    nx: usize,
    ny: usize,
    state: Vec<S>,
    step: usize,
}

impl<S: Scalar> HeatSequence<S> {
    /// Backward-Euler heat on the `nx × ny` unit-square grid.
    pub fn new(nx: usize, ny: usize, dt: f64) -> Self {
        let problem = poisson2d::<S>(nx, ny);
        // A = I + dt·L.
        let mut a = problem.a.clone();
        for i in 0..a.nrows() {
            let row = a.row_values_mut(i);
            for v in row.iter_mut() {
                *v *= S::from_f64(dt);
            }
        }
        let a = a.shift_diag(S::one());
        let n = nx * ny;
        // Initial condition: a hot spot in the lower-left quadrant.
        let mut state = vec![S::zero(); n];
        for (k, c) in problem.coords.iter().enumerate() {
            let d2 = (c[0] - 0.25).powi(2) + (c[1] - 0.25).powi(2);
            state[k] = S::from_f64((-d2 / 0.02).exp());
        }
        Self {
            a: a.clone(),
            problem: Problem { a, ..problem },
            dt,
            nx,
            ny,
            state,
            step: 0,
        }
    }

    /// Problem size.
    pub fn n(&self) -> usize {
        self.nx * self.ny
    }

    /// Right-hand side of the next time step (drifting source + previous
    /// state). Call [`HeatSequence::advance`] with the computed solution to
    /// move forward.
    pub fn next_rhs(&mut self) -> Vec<S> {
        self.step += 1;
        let t = self.step as f64 * self.dt;
        // A source orbiting the domain center.
        let sx = 0.5 + 0.3 * (2.0 * t).cos();
        let sy = 0.5 + 0.3 * (2.0 * t).sin();
        let mut b = self.state.clone();
        for (k, c) in self.problem.coords.iter().enumerate() {
            let d2 = (c[0] - sx).powi(2) + (c[1] - sy).powi(2);
            b[k] += S::from_f64(self.dt * 50.0 * (-d2 / 0.01).exp());
        }
        b
    }

    /// Record the solved step as the new state.
    pub fn advance(&mut self, u: &[S]) {
        assert_eq!(u.len(), self.state.len());
        self.state.copy_from_slice(u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kryst_sparse::SparseDirect;

    #[test]
    fn operator_is_identity_plus_dt_laplacian() {
        let h = HeatSequence::<f64>::new(6, 6, 0.01);
        let p = poisson2d::<f64>(6, 6);
        for i in 0..36 {
            let expect = 1.0 + 0.01 * p.a.get(i, i);
            assert!((h.a.get(i, i) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn heat_diffuses_and_stays_bounded() {
        let mut seq = HeatSequence::<f64>::new(12, 12, 0.002);
        let f = SparseDirect::factor(&seq.a).unwrap();
        let mut max_t = 0.0f64;
        for _ in 0..5 {
            let b = seq.next_rhs();
            let u = f.solve_one(&b);
            for &v in &u {
                assert!(v.is_finite());
                max_t = max_t.max(v.abs());
            }
            seq.advance(&u);
        }
        assert!(max_t > 0.0 && max_t < 100.0, "max |u| = {max_t}");
    }

    #[test]
    fn rhs_sequence_varies() {
        let mut seq = HeatSequence::<f64>::new(8, 8, 0.05);
        let b1 = seq.next_rhs();
        let b2 = seq.next_rhs();
        let diff: f64 = b1.iter().zip(&b2).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-6, "successive right-hand sides must differ");
    }
}
