//! 3-D linear elasticity on the unit cube with Q1 (trilinear hexahedral)
//! finite elements — the `ex56` analogue (paper §IV-C).
//!
//! The paper generates a sequence of four *varying* systems by moving a small
//! spherical inclusion with modified Young modulus `E_i = E / s_i` through
//! the cube; [`PAPER_INCLUSIONS`] reproduces those parameter sets. The
//! near-nullspace (6 rigid-body modes) is provided for the smoothed
//! aggregation multigrid, exactly as `ex56` feeds GAMG.

use crate::Problem;
use kryst_dense::DMat;
use kryst_scalar::Scalar;
use kryst_sparse::Coo;

/// A spherical soft/hard inclusion: inside the sphere the Young modulus is
/// `E / stiffness_ratio`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Inclusion {
    /// `s_i` — the Young-modulus divisor.
    pub stiffness_ratio: f64,
    /// Sphere radius.
    pub r: f64,
    /// Sphere center.
    pub center: [f64; 3],
}

/// The paper's four inclusion parameter sets
/// (`{s_i}, {r_i}, {x_i}, {y_i}, {z_i}` of §IV-C).
pub const PAPER_INCLUSIONS: [Inclusion; 4] = [
    Inclusion {
        stiffness_ratio: 30.0,
        r: 0.5,
        center: [0.5, 0.5, 0.5],
    },
    Inclusion {
        stiffness_ratio: 0.1,
        r: 0.45,
        center: [0.4, 0.5, 0.45],
    },
    Inclusion {
        stiffness_ratio: 20.0,
        r: 0.4,
        center: [0.4, 0.4, 0.4],
    },
    Inclusion {
        stiffness_ratio: 10.0,
        r: 0.35,
        center: [0.4, 0.4, 0.35],
    },
];

/// Assembly options.
#[derive(Debug, Clone, Copy)]
pub struct ElasticityOpts {
    /// Elements per cube edge.
    pub ne: usize,
    /// Young modulus of the matrix material.
    pub e_modulus: f64,
    /// Poisson ratio.
    pub poisson: f64,
    /// Optional inclusion.
    pub inclusion: Option<Inclusion>,
    /// Clamp the `z = 0` face (Dirichlet). When `false` the operator is
    /// free-free (singular; used to verify the rigid-body nullspace).
    pub clamp_bottom: bool,
}

impl Default for ElasticityOpts {
    fn default() -> Self {
        Self {
            ne: 8,
            e_modulus: 1.0,
            poisson: 0.3,
            inclusion: None,
            clamp_bottom: true,
        }
    }
}

/// Generated elasticity problem plus its load vector.
pub struct ElasticityProblem<S: Scalar> {
    /// Matrix, coordinates, rigid-body near-nullspace.
    pub problem: Problem<S>,
    /// Consistent gravity load (force `(0,0,−1)` per unit volume).
    pub rhs: Vec<S>,
}

/// Gauss points `±1/√3` on the reference cube, all weights 1.
const GP: f64 = 0.577_350_269_189_625_8;

/// One 24×24 Q1 element matrix (8 nodes × 3 displacement components).
pub(crate) type ElementMatrix = Box<[[f64; 24]; 24]>;

/// Unit-E Q1 element stiffness for edge length `h`, split into λ and μ parts
/// (24×24 each) so each element only scales two precomputed matrices. Shared
/// by the assembled operator and the matrix-free
/// [`stencil`](crate::stencil::ElasticityStencil) applier.
pub(crate) fn element_stiffness(h: f64) -> (ElementMatrix, ElementMatrix) {
    // Reference element: 8 nodes at (±1, ±1, ±1).
    let corners: [[f64; 3]; 8] = [
        [-1.0, -1.0, -1.0],
        [1.0, -1.0, -1.0],
        [-1.0, 1.0, -1.0],
        [1.0, 1.0, -1.0],
        [-1.0, -1.0, 1.0],
        [1.0, -1.0, 1.0],
        [-1.0, 1.0, 1.0],
        [1.0, 1.0, 1.0],
    ];
    let mut k_lam = Box::new([[0.0f64; 24]; 24]);
    let mut k_mu = Box::new([[0.0f64; 24]; 24]);
    let jac = h / 2.0;
    let detj = jac * jac * jac;
    for gx in [-GP, GP] {
        for gy in [-GP, GP] {
            for gz in [-GP, GP] {
                // Shape function gradients in physical coordinates.
                let mut dn = [[0.0f64; 3]; 8]; // dN_a/dx_i
                for (a, c) in corners.iter().enumerate() {
                    let f = |s: f64, g: f64| 0.5 * (1.0 + s * g); // 1D factor /2 (total /8)
                    let df = |s: f64| 0.5 * s;
                    dn[a][0] = df(c[0]) * f(c[1], gy) * f(c[2], gz) / jac;
                    dn[a][1] = f(c[0], gx) * df(c[1]) * f(c[2], gz) / jac;
                    dn[a][2] = f(c[0], gx) * f(c[1], gy) * df(c[2]) / jac;
                }
                // K[a·3+i][b·3+j] += λ·dN_a/dx_i·dN_b/dx_j
                //                  + μ·(dN_a/dx_j·dN_b/dx_i + δ_ij Σ_k dN_a/dx_k dN_b/dx_k)
                for a in 0..8 {
                    for b in 0..8 {
                        let dot: f64 = (0..3).map(|k| dn[a][k] * dn[b][k]).sum();
                        for i in 0..3 {
                            for j in 0..3 {
                                let la = dn[a][i] * dn[b][j];
                                let mu_t = dn[a][j] * dn[b][i] + if i == j { dot } else { 0.0 };
                                k_lam[3 * a + i][3 * b + j] += la * detj;
                                k_mu[3 * a + i][3 * b + j] += mu_t * detj;
                            }
                        }
                    }
                }
            }
        }
    }
    (k_lam, k_mu)
}

/// Assemble the Q1 elasticity operator.
pub fn elasticity3d<S: Scalar>(opts: &ElasticityOpts) -> ElasticityProblem<S> {
    let ne = opts.ne;
    let nn = ne + 1;
    let nnodes = nn * nn * nn;
    let h = 1.0 / ne as f64;
    let node = |x: usize, y: usize, z: usize| (z * nn + y) * nn + x;

    // Lamé parameters from (E, ν); E is rescaled per element for inclusions.
    let nu = opts.poisson;
    let lam_unit = nu / ((1.0 + nu) * (1.0 - 2.0 * nu));
    let mu_unit = 1.0 / (2.0 * (1.0 + nu));

    let (k_lam, k_mu) = element_stiffness(h);

    let inside = |cx: f64, cy: f64, cz: f64| -> bool {
        if let Some(inc) = &opts.inclusion {
            let dx = cx - inc.center[0];
            let dy = cy - inc.center[1];
            let dz = cz - inc.center[2];
            dx * dx + dy * dy + dz * dz < inc.r * inc.r
        } else {
            false
        }
    };

    // Free-dof numbering (eliminate clamped dofs).
    let ndof = 3 * nnodes;
    let mut dofmap = vec![usize::MAX; ndof];
    let mut coords = Vec::new();
    let mut free = 0usize;
    for z in 0..nn {
        for y in 0..nn {
            for x in 0..nn {
                let clamped = opts.clamp_bottom && z == 0;
                for c in 0..3 {
                    let gd = 3 * node(x, y, z) + c;
                    if !clamped {
                        dofmap[gd] = free;
                        free += 1;
                        coords.push(vec![x as f64 * h, y as f64 * h, z as f64 * h]);
                    }
                }
            }
        }
    }

    let mut coo = Coo::with_capacity(free, free, 24 * 24 * ne * ne * ne / 2);
    let mut rhs = vec![S::zero(); free];
    let grav = -(h * h * h) / 8.0; // lumped gravity load per element node
    for ez in 0..ne {
        for ey in 0..ne {
            for ex in 0..ne {
                let cx = (ex as f64 + 0.5) * h;
                let cy = (ey as f64 + 0.5) * h;
                let cz = (ez as f64 + 0.5) * h;
                let e_scale = if inside(cx, cy, cz) {
                    opts.e_modulus / opts.inclusion.as_ref().unwrap().stiffness_ratio
                } else {
                    opts.e_modulus
                };
                let lam = lam_unit * e_scale;
                let mu = mu_unit * e_scale;
                // Element nodes in the same order as `corners`.
                let nodes = [
                    node(ex, ey, ez),
                    node(ex + 1, ey, ez),
                    node(ex, ey + 1, ez),
                    node(ex + 1, ey + 1, ez),
                    node(ex, ey, ez + 1),
                    node(ex + 1, ey, ez + 1),
                    node(ex, ey + 1, ez + 1),
                    node(ex + 1, ey + 1, ez + 1),
                ];
                for (a, &na) in nodes.iter().enumerate() {
                    for i in 0..3 {
                        let ga = dofmap[3 * na + i];
                        if ga == usize::MAX {
                            continue;
                        }
                        if i == 2 {
                            rhs[ga] += S::from_f64(grav);
                        }
                        for (b, &nb) in nodes.iter().enumerate() {
                            for j in 0..3 {
                                let gb = dofmap[3 * nb + j];
                                if gb == usize::MAX {
                                    continue;
                                }
                                let v = lam * k_lam[3 * a + i][3 * b + j]
                                    + mu * k_mu[3 * a + i][3 * b + j];
                                if v != 0.0 {
                                    coo.push(ga, gb, S::from_f64(v));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    let a = coo.to_csr();

    // Rigid-body near-nullspace on the free dofs.
    let mut ns = DMat::zeros(free, 6);
    for z in 0..nn {
        for y in 0..nn {
            for x in 0..nn {
                let (px, py, pz) = (x as f64 * h, y as f64 * h, z as f64 * h);
                let base = 3 * node(x, y, z);
                let modes: [[f64; 3]; 6] = [
                    [1.0, 0.0, 0.0],
                    [0.0, 1.0, 0.0],
                    [0.0, 0.0, 1.0],
                    [0.0, -pz, py],
                    [pz, 0.0, -px],
                    [-py, px, 0.0],
                ];
                for c in 0..3 {
                    let gd = dofmap[base + c];
                    if gd == usize::MAX {
                        continue;
                    }
                    for (m, mode) in modes.iter().enumerate() {
                        ns[(gd, m)] = S::from_f64(mode[c]);
                    }
                }
            }
        }
    }

    ElasticityProblem {
        problem: Problem {
            a,
            coords,
            near_nullspace: Some(ns),
        },
        rhs,
    }
}

/// The paper's sequence of four slowly-varying systems (shared `ne`,
/// different inclusions).
pub fn paper_sequence<S: Scalar>(ne: usize) -> Vec<ElasticityProblem<S>> {
    PAPER_INCLUSIONS
        .iter()
        .map(|inc| {
            elasticity3d(&ElasticityOpts {
                ne,
                inclusion: Some(*inc),
                ..Default::default()
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_symmetric() {
        let p = elasticity3d::<f64>(&ElasticityOpts {
            ne: 3,
            ..Default::default()
        });
        let a = &p.problem.a;
        for i in 0..a.nrows() {
            for &j in a.row_indices(i) {
                assert!(
                    (a.get(i, j) - a.get(j, i)).abs() < 1e-12 * a.inf_norm(),
                    "asymmetry at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn rigid_body_modes_are_nullspace_of_free_operator() {
        let p = elasticity3d::<f64>(&ElasticityOpts {
            ne: 3,
            clamp_bottom: false,
            ..Default::default()
        });
        let a = &p.problem.a;
        let ns = p.problem.near_nullspace.as_ref().unwrap();
        let r = a.apply(ns);
        let scale = a.inf_norm();
        assert!(
            r.max_abs() < 1e-10 * scale,
            "‖A·RBM‖ = {} (scale {scale})",
            r.max_abs()
        );
    }

    #[test]
    fn clamped_operator_is_spd() {
        let p = elasticity3d::<f64>(&ElasticityOpts {
            ne: 2,
            ..Default::default()
        });
        // SPD ⟺ Cholesky of the dense mirror succeeds.
        let n = p.problem.a.nrows();
        let d = kryst_dense::DMat::from_fn(n, n, |i, j| p.problem.a.get(i, j));
        assert!(
            kryst_dense::chol::cholesky(&d).is_some(),
            "clamped elasticity not SPD"
        );
    }

    #[test]
    fn gravity_pushes_down() {
        use kryst_sparse::SparseDirect;
        let p = elasticity3d::<f64>(&ElasticityOpts {
            ne: 4,
            ..Default::default()
        });
        let f = SparseDirect::factor(&p.problem.a).expect("SPD system");
        let u = f.solve_one(&p.rhs);
        // Mean vertical displacement must be negative (downward).
        let mut mean_z = 0.0;
        let mut count = 0;
        for (k, c) in p.problem.coords.iter().enumerate() {
            let _ = c;
            if k % 3 == 2 {
                mean_z += u[k];
                count += 1;
            }
        }
        mean_z /= count as f64;
        assert!(mean_z < 0.0, "mean w = {mean_z}");
    }

    #[test]
    fn soft_inclusion_increases_compliance() {
        use kryst_sparse::SparseDirect;
        let hard = elasticity3d::<f64>(&ElasticityOpts {
            ne: 4,
            ..Default::default()
        });
        let soft = elasticity3d::<f64>(&ElasticityOpts {
            ne: 4,
            inclusion: Some(Inclusion {
                stiffness_ratio: 30.0,
                r: 0.3,
                center: [0.5, 0.5, 0.5],
            }),
            ..Default::default()
        });
        let fh = SparseDirect::factor(&hard.problem.a).unwrap();
        let fs = SparseDirect::factor(&soft.problem.a).unwrap();
        let uh = fh.solve_one(&hard.rhs);
        let us = fs.solve_one(&soft.rhs);
        let ch: f64 = uh.iter().zip(&hard.rhs).map(|(u, f)| u * f).sum();
        let cs: f64 = us.iter().zip(&soft.rhs).map(|(u, f)| u * f).sum();
        // Compliance fᵀu grows when material is softened.
        assert!(cs > ch, "compliance {cs} !> {ch}");
    }

    #[test]
    fn paper_sequence_yields_four_distinct_systems() {
        let seq = paper_sequence::<f64>(2);
        assert_eq!(seq.len(), 4);
        let n0 = seq[0].problem.a.nrows();
        for s in &seq[1..] {
            assert_eq!(s.problem.a.nrows(), n0);
        }
        // Matrices differ (inclusions move).
        assert_ne!(seq[0].problem.a, seq[1].problem.a);
    }
}
