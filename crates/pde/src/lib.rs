#![warn(missing_docs)]
//! PDE problem generators for the paper's three experiment families.
//!
//! * [`poisson`] — 2-D Poisson with the paper's four ν-parameterized
//!   right-hand sides (the `ex32` analogue of §IV-B),
//! * [`elasticity`] — 3-D Q1 linear elasticity on the unit cube with the
//!   paper's moving spherical inclusion and rigid-body near-nullspace (the
//!   `ex56` analogue of §IV-C),
//! * [`maxwell`] — time-harmonic Maxwell curl–curl on a staggered (Yee) edge
//!   grid with complex heterogeneous media and ring-of-antenna right-hand
//!   sides (the §V imaging-chamber analogue; see DESIGN.md for the
//!   discretization substitution),
//! * [`heat`] — implicit heat stepping: one operator, a sequence of
//!   right-hand sides (the non-variable-systems workload of §III-B),
//! * [`stencil`] — matrix-free appliers for the Poisson (5/7-point) and Q1
//!   elasticity operators: `A·X` computed from geometry with zero index
//!   streaming, behind the same `ApplyRows`/`LinOp` traits the solvers and
//!   the overlapped `DistOp` consume.

pub mod elasticity;
pub mod heat;
pub mod maxwell;
pub mod poisson;
pub mod stencil;

use kryst_dense::DMat;
use kryst_scalar::Scalar;
use kryst_sparse::Csr;

/// A generated linear problem.
pub struct Problem<S: Scalar> {
    /// System matrix.
    pub a: Csr<S>,
    /// Point coordinates of each unknown (for geometric partitioning).
    pub coords: Vec<Vec<f64>>,
    /// Near-nullspace vectors for smoothed-aggregation AMG (constants,
    /// rigid-body modes, …); `None` when not applicable.
    pub near_nullspace: Option<DMat<S>>,
}
