//! Matrix-free stencil appliers — `A·X` straight from geometry.
//!
//! An assembled CSR apply streams 16 bytes per nonzero (8-byte value +
//! 8-byte column index) plus the row pointers; for the constant-coefficient
//! operators of the paper's experiments that index traffic is pure
//! overhead. The appliers here recompute the coefficients from the grid
//! instead: their persistent operator footprint is a handful of scalars
//! (Poisson) or two 24×24 element matrices (elasticity), so an apply
//! streams *only* the multivectors.
//!
//! Both implement [`ApplyRows`], the row-subset contract consumed by
//! `DistOp`, so the interior/boundary halo-compute overlap schedule works
//! unchanged — and [`LinOp`] directly, attributing time to the dedicated
//! `spmv_mf` profiler phase.
//!
//! Accumulation order per row matches the ascending-column order of the
//! assembled CSR for Poisson (bit-identical results); the elasticity
//! applier accumulates element-by-element, which reorders floating-point
//! sums and therefore agrees to rounding tolerance only.

use crate::elasticity::{element_stiffness, ElasticityOpts, ElementMatrix, Inclusion};
use kryst_dense::DMat;
use kryst_par::{ApplyRows, LinOp};
use kryst_rt::par::{for_each_range, SendPtr};
use kryst_scalar::Scalar;

/// Rows above which an apply fans out across the worker pool (same
/// threshold as the assembled CSR kernels).
const PAR_ROWS: usize = 4096;

/// Matrix-free 5/7-point Laplacian on an interior Dirichlet grid; the
/// operator is identical (bit-for-bit) to
/// [`poisson2d`](crate::poisson::poisson2d) /
/// [`poisson3d`](crate::poisson::poisson3d) with the same dimensions.
pub struct PoissonStencil<S: Scalar> {
    nx: usize,
    ny: usize,
    nz: usize,
    cx: S,
    cy: S,
    cz: S,
    cd: S,
}

impl<S: Scalar> PoissonStencil<S> {
    /// 5-point stencil matching `poisson2d(nx, ny)`.
    pub fn dim2(nx: usize, ny: usize) -> Self {
        let hx = 1.0 / (nx as f64 + 1.0);
        let hy = 1.0 / (ny as f64 + 1.0);
        Self {
            nx,
            ny,
            nz: 1,
            cx: S::from_f64(1.0 / (hx * hx)),
            cy: S::from_f64(1.0 / (hy * hy)),
            cz: S::zero(),
            cd: S::from_f64(2.0 / (hx * hx) + 2.0 / (hy * hy)),
        }
    }

    /// 7-point stencil matching `poisson3d(nx, ny, nz)`.
    pub fn dim3(nx: usize, ny: usize, nz: usize) -> Self {
        let hx = 1.0 / (nx as f64 + 1.0);
        let hy = 1.0 / (ny as f64 + 1.0);
        let hz = 1.0 / (nz as f64 + 1.0);
        Self {
            nx,
            ny,
            nz,
            cx: S::from_f64(1.0 / (hx * hx)),
            cy: S::from_f64(1.0 / (hy * hy)),
            cz: S::from_f64(1.0 / (hz * hz)),
            cd: S::from_f64(2.0 / (hx * hx) + 2.0 / (hy * hy) + 2.0 / (hz * hz)),
        }
    }

    #[inline]
    fn n(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// One row of `A·x` for a single column, accumulated in the assembled
    /// CSR's ascending-column order (z−, y−, x−, diag, x+, y+, z+) so the
    /// result is bit-identical to the assembled SpMM.
    #[inline]
    fn row_dot(&self, i: usize, xj: &[S]) -> S {
        let (nx, ny) = (self.nx, self.ny);
        let plane = nx * ny;
        let x = i % nx;
        let y = (i / nx) % ny;
        let z = i / plane;
        let mut acc = S::zero();
        if z > 0 {
            acc += -self.cz * xj[i - plane];
        }
        if y > 0 {
            acc += -self.cy * xj[i - nx];
        }
        if x > 0 {
            acc += -self.cx * xj[i - 1];
        }
        acc += self.cd * xj[i];
        if x + 1 < nx {
            acc += -self.cx * xj[i + 1];
        }
        if y + 1 < ny {
            acc += -self.cy * xj[i + nx];
        }
        if z + 1 < self.nz {
            acc += -self.cz * xj[i + plane];
        }
        acc
    }
}

impl<S: Scalar> ApplyRows<S> for PoissonStencil<S> {
    fn nrows(&self) -> usize {
        self.n()
    }

    fn apply_all(&self, x: &DMat<S>, y: &mut DMat<S>) {
        let n = self.n();
        assert_eq!(x.nrows(), n);
        assert_eq!(y.nrows(), n);
        assert_eq!(x.ncols(), y.ncols());
        let p = x.ncols();
        let yp = SendPtr::new(y.as_mut_slice().as_mut_ptr());
        let band = |lo: usize, hi: usize| {
            for j in 0..p {
                let xj = x.col(j);
                for i in lo..hi {
                    let v = self.row_dot(i, xj);
                    // SAFETY: each (row, column) output element is written
                    // exactly once; parallel parts own disjoint row bands.
                    unsafe { *yp.ptr().add(j * n + i) = v };
                }
            }
        };
        if n >= PAR_ROWS {
            for_each_range(n, 0, band);
        } else {
            band(0, n);
        }
    }

    fn apply_rows(&self, x: &DMat<S>, y: &mut DMat<S>, rows: &[usize]) {
        let n = self.n();
        assert_eq!(x.nrows(), n);
        assert_eq!(y.nrows(), n);
        assert_eq!(x.ncols(), y.ncols());
        let p = x.ncols();
        let yp = SendPtr::new(y.as_mut_slice().as_mut_ptr());
        let band = |lo: usize, hi: usize| {
            for j in 0..p {
                let xj = x.col(j);
                for &i in &rows[lo..hi] {
                    let v = self.row_dot(i, xj);
                    // SAFETY: row lists hold distinct indices and parallel
                    // parts own disjoint slices of the list.
                    unsafe { *yp.ptr().add(j * n + i) = v };
                }
            }
        };
        if rows.len() >= PAR_ROWS {
            for_each_range(rows.len(), 0, band);
        } else {
            band(0, rows.len());
        }
    }

    /// Persistent operator data: four stencil coefficients. No per-nonzero
    /// values or indices are streamed.
    fn bytes_streamed(&self) -> usize {
        4 * std::mem::size_of::<S>()
    }
}

impl<S: Scalar> LinOp<S> for PoissonStencil<S> {
    fn nrows(&self) -> usize {
        self.n()
    }
    fn apply(&self, x: &DMat<S>, y: &mut DMat<S>) {
        let _t = kryst_obs::profile(kryst_obs::Phase::SpmvMf);
        ApplyRows::apply_all(self, x, y);
    }
    fn bytes_per_apply(&self) -> Option<usize> {
        Some(ApplyRows::<S>::bytes_streamed(self))
    }
}

/// Matrix-free Q1 elasticity applier: the same operator as
/// [`elasticity3d`](crate::elasticity::elasticity3d) with the same options,
/// computed row-by-row from the two unit-E 24×24 element matrices and the
/// inclusion geometry. Per-row accumulation visits the ≤ 8 adjacent
/// elements in lexicographic order, so results are deterministic and
/// independent of the thread count (but reassociated relative to the
/// assembled CSR — agreement is to rounding tolerance).
pub struct ElasticityStencil<S: Scalar> {
    ne: usize,
    nn: usize,
    h: f64,
    lam_unit: f64,
    mu_unit: f64,
    e_modulus: f64,
    inclusion: Option<Inclusion>,
    clamp_bottom: bool,
    k_lam: ElementMatrix,
    k_mu: ElementMatrix,
    /// Free-dof count.
    n: usize,
    _marker: std::marker::PhantomData<S>,
}

impl<S: Scalar> ElasticityStencil<S> {
    /// Build the applier for the operator `elasticity3d(opts)` generates.
    pub fn new(opts: &ElasticityOpts) -> Self {
        let ne = opts.ne;
        let nn = ne + 1;
        let h = 1.0 / ne as f64;
        let nu = opts.poisson;
        let (k_lam, k_mu) = element_stiffness(h);
        let clamped_nodes = if opts.clamp_bottom { nn * nn } else { 0 };
        Self {
            ne,
            nn,
            h,
            lam_unit: nu / ((1.0 + nu) * (1.0 - 2.0 * nu)),
            mu_unit: 1.0 / (2.0 * (1.0 + nu)),
            e_modulus: opts.e_modulus,
            inclusion: opts.inclusion,
            clamp_bottom: opts.clamp_bottom,
            k_lam,
            k_mu,
            n: 3 * (nn * nn * nn - clamped_nodes),
            _marker: std::marker::PhantomData,
        }
    }

    /// Free-dof index of `(node, component)`, `usize::MAX` when clamped.
    #[inline]
    fn dof(&self, node: usize, c: usize) -> usize {
        let plane = self.nn * self.nn;
        if self.clamp_bottom {
            if node < plane {
                return usize::MAX;
            }
            3 * (node - plane) + c
        } else {
            3 * node + c
        }
    }

    /// Young-modulus scale of element `(ex, ey, ez)` (inclusion test on its
    /// center — identical to the assembly).
    #[inline]
    fn e_scale(&self, ex: usize, ey: usize, ez: usize) -> f64 {
        if let Some(inc) = &self.inclusion {
            let cx = (ex as f64 + 0.5) * self.h - inc.center[0];
            let cy = (ey as f64 + 0.5) * self.h - inc.center[1];
            let cz = (ez as f64 + 0.5) * self.h - inc.center[2];
            if cx * cx + cy * cy + cz * cz < inc.r * inc.r {
                return self.e_modulus / inc.stiffness_ratio;
            }
        }
        self.e_modulus
    }

    /// One row of `A·x` for a single column: row = free dof `(node, i)`,
    /// summed over the adjacent elements.
    #[inline]
    fn row_dot(&self, row: usize, xj: &[S]) -> S {
        let nn = self.nn;
        let plane = nn * nn;
        let node = row / 3 + if self.clamp_bottom { plane } else { 0 };
        let i = row % 3;
        let x = node % nn;
        let y = (node / nn) % nn;
        let z = node / plane;
        let mut acc = S::zero();
        for dz in 0..2usize {
            if (dz == 1 && z == 0) || (dz == 0 && z == self.ne) {
                continue;
            }
            let ez = z - dz;
            for dy in 0..2usize {
                if (dy == 1 && y == 0) || (dy == 0 && y == self.ne) {
                    continue;
                }
                let ey = y - dy;
                for dx in 0..2usize {
                    if (dx == 1 && x == 0) || (dx == 0 && x == self.ne) {
                        continue;
                    }
                    let ex = x - dx;
                    // Local corner index of `node` within element
                    // `(ex, ey, ez)` — corner order is `dx + 2dy + 4dz`.
                    let a = dx + 2 * dy + 4 * dz;
                    let scale = self.e_scale(ex, ey, ez);
                    let lam = self.lam_unit * scale;
                    let mu = self.mu_unit * scale;
                    let ra_lam = &self.k_lam[3 * a + i];
                    let ra_mu = &self.k_mu[3 * a + i];
                    for b in 0..8usize {
                        let nb = ((ez + (b >> 2)) * nn + ey + ((b >> 1) & 1)) * nn + ex + (b & 1);
                        for j in 0..3 {
                            let gb = self.dof(nb, j);
                            if gb == usize::MAX {
                                continue;
                            }
                            let v = lam * ra_lam[3 * b + j] + mu * ra_mu[3 * b + j];
                            acc += S::from_f64(v) * xj[gb];
                        }
                    }
                }
            }
        }
        acc
    }
}

impl<S: Scalar> ApplyRows<S> for ElasticityStencil<S> {
    fn nrows(&self) -> usize {
        self.n
    }

    fn apply_all(&self, x: &DMat<S>, y: &mut DMat<S>) {
        let n = self.n;
        assert_eq!(x.nrows(), n);
        assert_eq!(y.nrows(), n);
        assert_eq!(x.ncols(), y.ncols());
        let p = x.ncols();
        let yp = SendPtr::new(y.as_mut_slice().as_mut_ptr());
        let band = |lo: usize, hi: usize| {
            for j in 0..p {
                let xj = x.col(j);
                for i in lo..hi {
                    let v = self.row_dot(i, xj);
                    // SAFETY: one write per (row, column); disjoint bands.
                    unsafe { *yp.ptr().add(j * n + i) = v };
                }
            }
        };
        if n >= PAR_ROWS {
            for_each_range(n, 0, band);
        } else {
            band(0, n);
        }
    }

    fn apply_rows(&self, x: &DMat<S>, y: &mut DMat<S>, rows: &[usize]) {
        let n = self.n;
        assert_eq!(x.nrows(), n);
        assert_eq!(y.nrows(), n);
        assert_eq!(x.ncols(), y.ncols());
        let p = x.ncols();
        let yp = SendPtr::new(y.as_mut_slice().as_mut_ptr());
        let band = |lo: usize, hi: usize| {
            for j in 0..p {
                let xj = x.col(j);
                for &i in &rows[lo..hi] {
                    let v = self.row_dot(i, xj);
                    // SAFETY: distinct rows; disjoint list slices.
                    unsafe { *yp.ptr().add(j * n + i) = v };
                }
            }
        };
        if rows.len() >= PAR_ROWS {
            for_each_range(rows.len(), 0, band);
        } else {
            band(0, rows.len());
        }
    }

    /// Persistent operator data: the two 24×24 unit-E element matrices.
    fn bytes_streamed(&self) -> usize {
        2 * 24 * 24 * std::mem::size_of::<f64>()
    }
}

impl<S: Scalar> LinOp<S> for ElasticityStencil<S> {
    fn nrows(&self) -> usize {
        self.n
    }
    fn apply(&self, x: &DMat<S>, y: &mut DMat<S>) {
        let _t = kryst_obs::profile(kryst_obs::Phase::SpmvMf);
        ApplyRows::apply_all(self, x, y);
    }
    fn bytes_per_apply(&self) -> Option<usize> {
        Some(ApplyRows::<S>::bytes_streamed(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elasticity::elasticity3d;
    use crate::poisson::{poisson2d, poisson3d};

    #[test]
    fn poisson2d_stencil_is_bit_identical_to_assembled() {
        for &(nx, ny) in &[(7usize, 5usize), (16, 16), (33, 17)] {
            let asm = poisson2d::<f64>(nx, ny).a;
            let st = PoissonStencil::<f64>::dim2(nx, ny);
            let n = nx * ny;
            let x = DMat::from_fn(n, 4, |i, j| ((i * 13 + j * 7) % 23) as f64 * 0.37 - 3.0);
            let ya = asm.apply(&x);
            let ys = LinOp::apply_new(&st, &x);
            for j in 0..4 {
                for i in 0..n {
                    assert_eq!(ya[(i, j)], ys[(i, j)], "({i},{j}) on {nx}x{ny}");
                }
            }
        }
    }

    #[test]
    fn poisson3d_stencil_is_bit_identical_to_assembled() {
        let (nx, ny, nz) = (9usize, 7usize, 5usize);
        let asm = poisson3d::<f64>(nx, ny, nz).a;
        let st = PoissonStencil::<f64>::dim3(nx, ny, nz);
        let n = nx * ny * nz;
        let x = DMat::from_fn(n, 3, |i, j| ((i * 11 + j * 5) % 19) as f64 * 0.53 - 4.0);
        let ya = asm.apply(&x);
        let ys = LinOp::apply_new(&st, &x);
        for j in 0..3 {
            for i in 0..n {
                assert_eq!(ya[(i, j)], ys[(i, j)]);
            }
        }
    }

    #[test]
    fn poisson_apply_rows_touches_only_requested_rows() {
        let st = PoissonStencil::<f64>::dim2(12, 12);
        let n = 144;
        let x = DMat::from_fn(n, 2, |i, j| (i + j) as f64);
        let mut y = DMat::from_fn(n, 2, |_, _| -99.0);
        let rows: Vec<usize> = (0..n).filter(|i| i % 3 == 0).collect();
        st.apply_rows(&x, &mut y, &rows);
        let full = LinOp::apply_new(&st, &x);
        for j in 0..2 {
            for i in 0..n {
                if i % 3 == 0 {
                    assert_eq!(y[(i, j)], full[(i, j)]);
                } else {
                    assert_eq!(y[(i, j)], -99.0, "row {i} must be untouched");
                }
            }
        }
    }

    #[test]
    fn elasticity_stencil_matches_assembled_to_rounding() {
        for inclusion in [None, Some(crate::elasticity::PAPER_INCLUSIONS[1])] {
            let opts = ElasticityOpts {
                ne: 4,
                inclusion,
                ..Default::default()
            };
            let asm = elasticity3d::<f64>(&opts).problem.a;
            let st = ElasticityStencil::<f64>::new(&opts);
            assert_eq!(LinOp::nrows(&st), asm.nrows());
            let n = asm.nrows();
            let x = DMat::from_fn(n, 3, |i, j| ((i * 7 + j * 3) % 13) as f64 * 0.21 - 1.0);
            let ya = asm.apply(&x);
            let ys = LinOp::apply_new(&st, &x);
            let scale = asm.inf_norm();
            for j in 0..3 {
                for i in 0..n {
                    assert!(
                        (ya[(i, j)] - ys[(i, j)]).abs() < 1e-12 * scale,
                        "({i},{j}): {} vs {}",
                        ya[(i, j)],
                        ys[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn elasticity_free_free_operator_matches() {
        let opts = ElasticityOpts {
            ne: 3,
            clamp_bottom: false,
            ..Default::default()
        };
        let asm = elasticity3d::<f64>(&opts).problem.a;
        let st = ElasticityStencil::<f64>::new(&opts);
        assert_eq!(LinOp::nrows(&st), asm.nrows());
        let n = asm.nrows();
        let x = DMat::from_fn(n, 1, |i, _| (i as f64 * 0.31).sin());
        let ya = asm.apply(&x);
        let ys = LinOp::apply_new(&st, &x);
        let scale = asm.inf_norm();
        for i in 0..n {
            assert!((ya[(i, 0)] - ys[(i, 0)]).abs() < 1e-12 * scale);
        }
    }

    #[test]
    fn stencils_report_tiny_byte_footprints() {
        let st = PoissonStencil::<f64>::dim2(64, 64);
        let asm = poisson2d::<f64>(64, 64).a;
        let mf = ApplyRows::<f64>::bytes_streamed(&st);
        let full = LinOp::bytes_per_apply(&asm).unwrap();
        assert!(
            mf * 100 < full,
            "matrix-free footprint {mf} not ≪ assembled {full}"
        );
    }
}
