//! 2-D Poisson on the unit square — the `ex32` analogue (paper §IV-B).
//!
//! Five-point finite differences on an `nx × ny` interior grid with
//! homogeneous Dirichlet boundary, and the paper's four successive
//! right-hand sides
//!
//! ```text
//! f_i(x, y) = (1/ν_i)·exp(−(1−x)²/ν_i)·exp(−(1−y)²/ν_i),
//! {ν_i} = {0.1, 10, 0.001, 100}.
//! ```

use crate::Problem;
use kryst_dense::DMat;
use kryst_scalar::Scalar;
use kryst_sparse::Coo;

/// The ν parameters of the paper's four right-hand sides.
pub const PAPER_NUS: [f64; 4] = [0.1, 10.0, 0.001, 100.0];

/// Assemble the 5-point Laplacian (`−Δ`, scaled by `1/h²`) on an `nx × ny`
/// interior grid of the unit square.
pub fn poisson2d<S: Scalar>(nx: usize, ny: usize) -> Problem<S> {
    let n = nx * ny;
    let hx = 1.0 / (nx as f64 + 1.0);
    let hy = 1.0 / (ny as f64 + 1.0);
    let cx = S::from_f64(1.0 / (hx * hx));
    let cy = S::from_f64(1.0 / (hy * hy));
    let cd = S::from_f64(2.0 / (hx * hx) + 2.0 / (hy * hy));
    let id = |x: usize, y: usize| y * nx + x;
    let mut coo = Coo::with_capacity(n, n, 5 * n);
    let mut coords = Vec::with_capacity(n);
    for y in 0..ny {
        for x in 0..nx {
            let me = id(x, y);
            coo.push(me, me, cd);
            if x > 0 {
                coo.push(me, id(x - 1, y), -cx);
            }
            if x + 1 < nx {
                coo.push(me, id(x + 1, y), -cx);
            }
            if y > 0 {
                coo.push(me, id(x, y - 1), -cy);
            }
            if y + 1 < ny {
                coo.push(me, id(x, y + 1), -cy);
            }
            coords.push(vec![(x as f64 + 1.0) * hx, (y as f64 + 1.0) * hy]);
        }
    }
    let a = coo.to_csr();
    // Near-nullspace for AMG: the constant vector.
    let ns = DMat::from_fn(n, 1, |_, _| S::one());
    Problem {
        a,
        coords,
        near_nullspace: Some(ns),
    }
}

/// Assemble the 7-point Laplacian on an `nx × ny × nz` interior grid of the
/// unit cube (homogeneous Dirichlet). Node `(x, y, z)` is unknown
/// `(z·ny + y)·nx + x`.
pub fn poisson3d<S: Scalar>(nx: usize, ny: usize, nz: usize) -> Problem<S> {
    let n = nx * ny * nz;
    let hx = 1.0 / (nx as f64 + 1.0);
    let hy = 1.0 / (ny as f64 + 1.0);
    let hz = 1.0 / (nz as f64 + 1.0);
    let cx = S::from_f64(1.0 / (hx * hx));
    let cy = S::from_f64(1.0 / (hy * hy));
    let cz = S::from_f64(1.0 / (hz * hz));
    let cd = S::from_f64(2.0 / (hx * hx) + 2.0 / (hy * hy) + 2.0 / (hz * hz));
    let id = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut coo = Coo::with_capacity(n, n, 7 * n);
    let mut coords = Vec::with_capacity(n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let me = id(x, y, z);
                coo.push(me, me, cd);
                if x > 0 {
                    coo.push(me, id(x - 1, y, z), -cx);
                }
                if x + 1 < nx {
                    coo.push(me, id(x + 1, y, z), -cx);
                }
                if y > 0 {
                    coo.push(me, id(x, y - 1, z), -cy);
                }
                if y + 1 < ny {
                    coo.push(me, id(x, y + 1, z), -cy);
                }
                if z > 0 {
                    coo.push(me, id(x, y, z - 1), -cz);
                }
                if z + 1 < nz {
                    coo.push(me, id(x, y, z + 1), -cz);
                }
                coords.push(vec![
                    (x as f64 + 1.0) * hx,
                    (y as f64 + 1.0) * hy,
                    (z as f64 + 1.0) * hz,
                ]);
            }
        }
    }
    let a = coo.to_csr();
    let ns = DMat::from_fn(n, 1, |_, _| S::one());
    Problem {
        a,
        coords,
        near_nullspace: Some(ns),
    }
}

/// The paper's `i`-th right-hand side sampled on the grid.
pub fn rhs_nu<S: Scalar>(nx: usize, ny: usize, nu: f64) -> Vec<S> {
    let hx = 1.0 / (nx as f64 + 1.0);
    let hy = 1.0 / (ny as f64 + 1.0);
    let mut f = Vec::with_capacity(nx * ny);
    for y in 0..ny {
        for x in 0..nx {
            let xf = (x as f64 + 1.0) * hx;
            let yf = (y as f64 + 1.0) * hy;
            let v =
                (1.0 / nu) * (-(1.0 - xf).powi(2) / nu).exp() * (-(1.0 - yf).powi(2) / nu).exp();
            f.push(S::from_f64(v));
        }
    }
    f
}

/// The full sequence of four right-hand sides from the paper.
pub fn paper_rhs_sequence<S: Scalar>(nx: usize, ny: usize) -> Vec<Vec<S>> {
    PAPER_NUS.iter().map(|&nu| rhs_nu(nx, ny, nu)).collect()
}

/// All four right-hand sides as the columns of one multivector (for block
/// methods).
pub fn paper_rhs_block<S: Scalar>(nx: usize, ny: usize) -> DMat<S> {
    let seq = paper_rhs_sequence::<S>(nx, ny);
    let n = nx * ny;
    DMat::from_fn(n, seq.len(), |i, j| seq[j][i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_symmetric_diagonally_dominant() {
        let p = poisson2d::<f64>(7, 5);
        let a = &p.a;
        for i in 0..a.nrows() {
            for &j in a.row_indices(i) {
                assert_eq!(a.get(i, j), a.get(j, i));
            }
            let offdiag: f64 = a
                .row_indices(i)
                .iter()
                .zip(a.row_values(i))
                .filter(|(&j, _)| j != i)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(a.get(i, i) >= offdiag, "row {i} not diagonally dominant");
        }
    }

    #[test]
    fn interior_row_sums_vanish() {
        // An interior point with all 4 neighbors present has zero row sum.
        let p = poisson2d::<f64>(5, 5);
        let mid = 2 * 5 + 2;
        let s: f64 = p.a.row_values(mid).iter().sum();
        assert!(s.abs() < 1e-9 * p.a.get(mid, mid));
    }

    #[test]
    fn solves_manufactured_solution() {
        // u = sin(πx)sin(πy) → −Δu = 2π²·u; second-order convergence.
        use kryst_sparse::SparseDirect;
        let mut err_prev = f64::MAX;
        for &m in &[8usize, 16, 32] {
            let p = poisson2d::<f64>(m, m);
            let n = m * m;
            let pi = std::f64::consts::PI;
            let mut b = vec![0.0; n];
            let mut u_exact = vec![0.0; n];
            for (k, c) in p.coords.iter().enumerate() {
                u_exact[k] = (pi * c[0]).sin() * (pi * c[1]).sin();
                b[k] = 2.0 * pi * pi * u_exact[k];
            }
            let f = SparseDirect::factor(&p.a).unwrap();
            let u = f.solve_one(&b);
            let mut err: f64 = 0.0;
            for k in 0..n {
                err = err.max((u[k] - u_exact[k]).abs());
            }
            assert!(err < err_prev / 2.5, "m={m}: err {err} (prev {err_prev})");
            err_prev = err;
        }
        assert!(err_prev < 2e-3);
    }

    #[test]
    fn rhs_family_matches_formula() {
        let f = rhs_nu::<f64>(3, 3, 0.1);
        // Center point (0.5, 0.5): (1/0.1)·exp(−0.25/0.1)² = 10·e^−5
        let center = f[4];
        assert!((center - 10.0 * (-5.0f64).exp()).abs() < 1e-12);
        let blk = paper_rhs_block::<f64>(3, 3);
        assert_eq!(blk.ncols(), 4);
        assert_eq!(blk[(4, 0)], center);
    }
}
