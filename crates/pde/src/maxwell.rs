//! Time-harmonic Maxwell curl–curl on a staggered (Yee) edge grid.
//!
//! Discretizes the paper's eq. (5),
//! `∇×(∇×E) − (ω²ε_r + iωσ)·E = f`, on a brick domain with PEC (perfectly
//! conducting) walls — the algebraic stand-in for the metallic imaging
//! chamber of §V-A (see DESIGN.md for the substitution rationale). Edge
//! unknowns live on the staggered grid, the discrete curl `C` maps edges to
//! faces, and the assembled operator is the **complex-symmetric, indefinite,
//! ill-conditioned** matrix `A = CᵀC − diag(κ²)` that gives standard
//! preconditioners the same trouble as the paper's Nédélec systems (Fig. 4).
//!
//! Right-hand sides model the ring of transmitting antennas: each RHS is a
//! dipole source `i·ω` on the vertical edge nearest an antenna position
//! (§V-C uses one ring of 32).

use crate::Problem;
use kryst_dense::DMat;
use kryst_scalar::{Complex, C64};
use kryst_sparse::{ops, Coo, Csr};

/// Medium description at a point: relative permittivity and conductivity.
pub type Medium = fn(f64, f64, f64, &MaxwellParams) -> (f64, f64);

/// Parameters of the Maxwell test problem.
#[derive(Debug, Clone, Copy)]
pub struct MaxwellParams {
    /// Grid cells per axis (unknowns ≈ `3·nc³`).
    pub nc: usize,
    /// Normalized angular frequency (wavelengths across the unit box
    /// ≈ `ω·√ε_r / 2π`).
    pub omega: f64,
    /// Background (matching solution) relative permittivity.
    pub eps_background: f64,
    /// Background conductivity (dissipative matching solution).
    pub sigma_background: f64,
    /// Optional non-dissipative cylindrical inclusion (the plastic cylinder
    /// of §V-C): `(radius, eps_r)` around the vertical axis through the
    /// domain center.
    pub cylinder: Option<(f64, f64)>,
}

impl MaxwellParams {
    /// A small, fast preset: homogeneous dissipative medium.
    pub fn matching_solution(nc: usize) -> Self {
        Self {
            nc,
            omega: 6.0,
            eps_background: 1.0,
            sigma_background: 0.3,
            cylinder: None,
        }
    }

    /// The §V-C "more difficult" case: a non-dissipative plastic cylinder
    /// immersed in the matching solution. The frequency is lowered relative
    /// to [`MaxwellParams::matching_solution`] so that *restarted* GMRES(50)
    /// (the paper's Fig. 8 reference solver) still converges on the
    /// resonant inclusion at laptop resolution.
    pub fn with_cylinder(nc: usize) -> Self {
        Self {
            cylinder: Some((0.25, 2.0)),
            omega: 4.0,
            ..Self::matching_solution(nc)
        }
    }

    /// A genuinely hard preset (higher frequency, weak dissipation) on which
    /// standard preconditioners stagnate — the Fig. 4 regime.
    pub fn chamber_hard(nc: usize) -> Self {
        Self {
            nc,
            omega: 10.0,
            eps_background: 1.0,
            sigma_background: 0.05,
            cylinder: None,
        }
    }

    /// `κ² = ω²·ε_r + i·ω·σ` at a point.
    pub fn kappa_sqr(&self, x: f64, y: f64, z: f64) -> C64 {
        let _ = z;
        let (eps, sigma) = if let Some((r, eps_cyl)) = self.cylinder {
            let dx = x - 0.5;
            let dy = y - 0.5;
            if dx * dx + dy * dy < r * r {
                (eps_cyl, 0.0)
            } else {
                (self.eps_background, self.sigma_background)
            }
        } else {
            (self.eps_background, self.sigma_background)
        };
        Complex::new(self.omega * self.omega * eps, self.omega * sigma)
    }
}

/// Edge-grid geometry: interior (non-PEC) edge numbering and coordinates.
pub struct MaxwellGeom {
    /// Cells per axis.
    pub nc: usize,
    /// Mesh width.
    pub h: f64,
    /// Edge midpoints (one per unknown).
    pub edge_coords: Vec<[f64; 3]>,
    /// For each unknown: 0 = Ex, 1 = Ey, 2 = Ez.
    pub edge_dir: Vec<u8>,
    /// Lookup: `ex_id[i + nc·(j + (nc+1)·k)]` etc. (usize::MAX = PEC edge).
    ex_id: Vec<usize>,
    ey_id: Vec<usize>,
    ez_id: Vec<usize>,
}

impl MaxwellGeom {
    fn new(nc: usize) -> Self {
        let h = 1.0 / nc as f64;
        let np = nc + 1;
        let mut edge_coords = Vec::new();
        let mut edge_dir = Vec::new();
        let mut ex_id = vec![usize::MAX; nc * np * np];
        let mut ey_id = vec![usize::MAX; np * nc * np];
        let mut ez_id = vec![usize::MAX; np * np * nc];
        let mut next = 0usize;
        // Ex(i+½, j, k): PEC ⇒ j,k interior.
        for k in 0..np {
            for j in 0..np {
                for i in 0..nc {
                    if j > 0 && j < nc && k > 0 && k < nc {
                        ex_id[i + nc * (j + np * k)] = next;
                        edge_coords.push([(i as f64 + 0.5) * h, j as f64 * h, k as f64 * h]);
                        edge_dir.push(0);
                        next += 1;
                    }
                }
            }
        }
        // Ey(i, j+½, k): i,k interior.
        for k in 0..np {
            for j in 0..nc {
                for i in 0..np {
                    if i > 0 && i < nc && k > 0 && k < nc {
                        ey_id[i + np * (j + nc * k)] = next;
                        edge_coords.push([i as f64 * h, (j as f64 + 0.5) * h, k as f64 * h]);
                        edge_dir.push(1);
                        next += 1;
                    }
                }
            }
        }
        // Ez(i, j, k+½): i,j interior.
        for k in 0..nc {
            for j in 0..np {
                for i in 0..np {
                    if i > 0 && i < nc && j > 0 && j < nc {
                        ez_id[i + np * (j + np * k)] = next;
                        edge_coords.push([i as f64 * h, j as f64 * h, (k as f64 + 0.5) * h]);
                        edge_dir.push(2);
                        next += 1;
                    }
                }
            }
        }
        Self {
            nc,
            h,
            edge_coords,
            edge_dir,
            ex_id,
            ey_id,
            ez_id,
        }
    }

    /// Number of unknowns.
    pub fn nedges(&self) -> usize {
        self.edge_coords.len()
    }

    /// Interior Ex edge id (or `usize::MAX` for PEC edges).
    pub fn ex(&self, i: usize, j: usize, k: usize) -> usize {
        self.ex_id[i + self.nc * (j + (self.nc + 1) * k)]
    }

    /// Interior Ey edge id.
    pub fn ey(&self, i: usize, j: usize, k: usize) -> usize {
        self.ey_id[i + (self.nc + 1) * (j + self.nc * k)]
    }

    /// Interior Ez edge id.
    pub fn ez(&self, i: usize, j: usize, k: usize) -> usize {
        self.ez_id[i + (self.nc + 1) * (j + (self.nc + 1) * k)]
    }

    /// The discrete curl matrix `C` (faces × interior edges, entries `±1/h`).
    pub fn curl_matrix(&self) -> Csr<C64> {
        let nc = self.nc;
        let np = nc + 1;
        let nfx = np * nc * nc;
        let nfy = nc * np * nc;
        let nfz = nc * nc * np;
        let nfaces = nfx + nfy + nfz;
        let inv_h = Complex::new(1.0 / self.h, 0.0);
        let mut coo = Coo::<C64>::with_capacity(nfaces, self.nedges(), 4 * nfaces);
        let mut face = 0usize;
        let add = |coo: &mut Coo<C64>, f: usize, e: usize, s: f64| {
            if e != usize::MAX {
                coo.push(f, e, inv_h.scale(s));
            }
        };
        // x-faces: (∂y Ez − ∂z Ey).
        for k in 0..nc {
            for j in 0..nc {
                for i in 0..np {
                    add(&mut coo, face, self.ez(i, j + 1, k), 1.0);
                    add(&mut coo, face, self.ez(i, j, k), -1.0);
                    add(&mut coo, face, self.ey(i, j, k + 1), -1.0);
                    add(&mut coo, face, self.ey(i, j, k), 1.0);
                    face += 1;
                }
            }
        }
        // y-faces: (∂z Ex − ∂x Ez).
        for k in 0..nc {
            for j in 0..np {
                for i in 0..nc {
                    add(&mut coo, face, self.ex(i, j, k + 1), 1.0);
                    add(&mut coo, face, self.ex(i, j, k), -1.0);
                    add(&mut coo, face, self.ez(i + 1, j, k), -1.0);
                    add(&mut coo, face, self.ez(i, j, k), 1.0);
                    face += 1;
                }
            }
        }
        // z-faces: (∂x Ey − ∂y Ex).
        for k in 0..np {
            for j in 0..nc {
                for i in 0..nc {
                    add(&mut coo, face, self.ey(i + 1, j, k), 1.0);
                    add(&mut coo, face, self.ey(i, j, k), -1.0);
                    add(&mut coo, face, self.ex(i, j + 1, k), -1.0);
                    add(&mut coo, face, self.ex(i, j, k), 1.0);
                    face += 1;
                }
            }
        }
        assert_eq!(face, nfaces);
        coo.to_csr()
    }

    /// Discrete gradient (interior node potentials, zero on the boundary, →
    /// interior edges), used for the `curl∘grad = 0` structure test.
    pub fn grad_matrix(&self) -> Csr<C64> {
        let nc = self.nc;
        let np = nc + 1;
        // Potentials vanish on the boundary: only interior nodes are columns.
        let node = |i: usize, j: usize, k: usize| -> usize {
            if i == 0 || i == nc || j == 0 || j == nc || k == 0 || k == nc {
                usize::MAX
            } else {
                (i - 1) + (nc - 1) * ((j - 1) + (nc - 1) * (k - 1))
            }
        };
        let nint = (nc - 1) * (nc - 1) * (nc - 1);
        let inv_h = Complex::new(1.0 / self.h, 0.0);
        let mut coo = Coo::<C64>::new(self.nedges(), nint);
        for k in 0..np {
            for j in 0..np {
                for i in 0..nc {
                    let e = self.ex(i, j, k);
                    if e != usize::MAX {
                        let (n1, n0) = (node(i + 1, j, k), node(i, j, k));
                        if n1 != usize::MAX {
                            coo.push(e, n1, inv_h);
                        }
                        if n0 != usize::MAX {
                            coo.push(e, n0, -inv_h);
                        }
                    }
                }
            }
        }
        for k in 0..np {
            for j in 0..nc {
                for i in 0..np {
                    let e = self.ey(i, j, k);
                    if e != usize::MAX {
                        let (n1, n0) = (node(i, j + 1, k), node(i, j, k));
                        if n1 != usize::MAX {
                            coo.push(e, n1, inv_h);
                        }
                        if n0 != usize::MAX {
                            coo.push(e, n0, -inv_h);
                        }
                    }
                }
            }
        }
        for k in 0..nc {
            for j in 0..np {
                for i in 0..np {
                    let e = self.ez(i, j, k);
                    if e != usize::MAX {
                        let (n1, n0) = (node(i, j, k + 1), node(i, j, k));
                        if n1 != usize::MAX {
                            coo.push(e, n1, inv_h);
                        }
                        if n0 != usize::MAX {
                            coo.push(e, n0, -inv_h);
                        }
                    }
                }
            }
        }
        coo.to_csr()
    }
}

/// Assemble the Maxwell problem: operator, geometry, and edge coordinates.
pub fn maxwell3d(params: &MaxwellParams) -> (Problem<C64>, MaxwellGeom) {
    let geom = MaxwellGeom::new(params.nc);
    let c = geom.curl_matrix();
    let ct = c.transpose();
    let mut a = ops::spgemm(&ct, &c);
    // Subtract the mass term on the diagonal.
    let kappa: Vec<C64> = geom
        .edge_coords
        .iter()
        .map(|p| -params.kappa_sqr(p[0], p[1], p[2]))
        .collect();
    a = ops::add(&a, &Csr::from_diag(&kappa));
    let coords = geom.edge_coords.iter().map(|p| p.to_vec()).collect();
    (
        Problem {
            a,
            coords,
            near_nullspace: None,
        },
        geom,
    )
}

/// Right-hand sides for a ring of `p` antennas at height `ring_z`,
/// radius `ring_r` around the vertical center axis: each column is a dipole
/// source `i·ω` on the nearest interior vertical (Ez) edge.
pub fn antenna_ring_rhs(
    geom: &MaxwellGeom,
    params: &MaxwellParams,
    p: usize,
    ring_r: f64,
    ring_z: f64,
) -> DMat<C64> {
    let mut rhs = DMat::zeros(geom.nedges(), p);
    for a in 0..p {
        let theta = 2.0 * std::f64::consts::PI * a as f64 / p as f64;
        let target = [
            0.5 + ring_r * theta.cos(),
            0.5 + ring_r * theta.sin(),
            ring_z,
        ];
        // Nearest interior Ez edge.
        let mut best = usize::MAX;
        let mut best_d = f64::MAX;
        for (e, c) in geom.edge_coords.iter().enumerate() {
            if geom.edge_dir[e] != 2 {
                continue;
            }
            let d = (c[0] - target[0]).powi(2)
                + (c[1] - target[1]).powi(2)
                + (c[2] - target[2]).powi(2);
            if d < best_d {
                best_d = d;
                best = e;
            }
        }
        assert!(best != usize::MAX, "no interior Ez edge found");
        rhs[(best, a)] = Complex::new(0.0, params.omega);
    }
    rhs
}

#[cfg(test)]
mod tests {
    use super::*;
    use kryst_scalar::Scalar;

    #[test]
    fn curl_of_gradient_vanishes() {
        let geom = MaxwellGeom::new(5);
        let c = geom.curl_matrix();
        let g = geom.grad_matrix();
        let cg = ops::spgemm(&c, &g);
        // Every entry must cancel exactly (integer stencils scaled by 1/h²).
        let mut max = 0.0f64;
        for i in 0..cg.nrows() {
            for &v in cg.row_values(i) {
                max = max.max(v.abs());
            }
        }
        assert!(max < 1e-10, "‖C·G‖_max = {max}");
    }

    #[test]
    fn operator_is_complex_symmetric_not_hermitian() {
        let (p, _) = maxwell3d(&MaxwellParams::matching_solution(4));
        let a = &p.a;
        for i in 0..a.nrows() {
            for &j in a.row_indices(i) {
                let d = a.get(i, j) - a.get(j, i); // symmetric, NO conjugate
                assert!(d.abs() < 1e-10, "Aᵀ ≠ A at ({i},{j})");
            }
        }
        // Hermitian would require a real diagonal — σ > 0 makes it complex.
        let mut has_complex_diag = false;
        for i in 0..a.nrows() {
            if a.get(i, i).im().abs() > 1e-12 {
                has_complex_diag = true;
            }
        }
        assert!(has_complex_diag);
    }

    #[test]
    fn operator_is_indefinite() {
        // CᵀC has the gradient fields in its kernel, so any ω² > 0 shift
        // produces genuinely negative eigenvalues while the curl-carrying
        // modes stay positive — the indefiniteness the paper's §V stresses.
        let (p, _) = maxwell3d(&MaxwellParams {
            nc: 3,
            omega: 3.0,
            eps_background: 1.0,
            sigma_background: 0.0,
            cylinder: None,
        });
        let n = p.a.nrows();
        let dense = kryst_dense::DMat::from_fn(n, n, |i, j| p.a.get(i, j));
        let d = kryst_dense::eig::eig(&dense);
        let mut min_re = f64::MAX;
        let mut max_re = f64::MIN;
        for v in &d.values {
            min_re = min_re.min(v.re);
            max_re = max_re.max(v.re);
        }
        assert!(min_re < -1e-6 && max_re > 1e-6, "λ ∈ [{min_re}, {max_re}]");
    }

    #[test]
    fn pec_edge_count() {
        let geom = MaxwellGeom::new(4);
        // Interior Ex edges: nc·(nc−1)² per direction.
        let expect = 3 * 4 * 3 * 3;
        assert_eq!(geom.nedges(), expect);
    }

    #[test]
    fn antenna_rhs_hits_distinct_edges() {
        let params = MaxwellParams::matching_solution(8);
        let (_, geom) = maxwell3d(&params);
        let rhs = antenna_ring_rhs(&geom, &params, 8, 0.3, 0.5);
        let mut hit = std::collections::HashSet::new();
        for a in 0..8 {
            let col = rhs.col(a);
            let nz: Vec<usize> = (0..col.len())
                .filter(|&i| col[i] != Complex::zero())
                .collect();
            assert_eq!(nz.len(), 1, "antenna {a}");
            hit.insert(nz[0]);
            assert_eq!(geom.edge_dir[nz[0]], 2);
        }
        assert_eq!(hit.len(), 8, "antennas must excite distinct edges");
    }

    #[test]
    fn direct_solver_handles_maxwell() {
        use kryst_sparse::SparseDirect;
        let params = MaxwellParams::matching_solution(4);
        let (p, geom) = maxwell3d(&params);
        let f = SparseDirect::factor(&p.a).expect("dissipative Maxwell is nonsingular");
        let rhs = antenna_ring_rhs(&geom, &params, 2, 0.3, 0.5);
        let x = f.solve_multi(&rhs, 2, 1);
        // Residual check.
        let ax = p.a.apply(&x);
        let mut max = 0.0f64;
        for i in 0..p.a.nrows() {
            for j in 0..2 {
                max = max.max((ax[(i, j)] - rhs[(i, j)]).abs());
            }
        }
        assert!(max < 1e-8, "residual {max}");
    }
}
