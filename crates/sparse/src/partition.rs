//! Mesh/graph partitioning and overlap growth for Schwarz methods.
//!
//! Stand-in for SCOTCH/METIS (repro note in DESIGN.md): recursive coordinate
//! bisection produces balanced, geometrically compact parts from point
//! coordinates; a BFS layer-growth routine extends each part by δ element
//! layers exactly as the paper defines the overlapping decomposition
//! `T_i^δ` (§V-A); and a multiplicity-based partition of unity provides the
//! `D_i` matrices with `Σ R_iᵀ·D_i·R_i = I`.

#![allow(clippy::needless_range_loop)] // index loops mirror the BLAS/LAPACK reference forms

use crate::Csr;
use kryst_scalar::Scalar;

/// A non-overlapping partition of `0..n` into `nparts` parts.
#[derive(Clone, Debug)]
pub struct Partition {
    /// `part[i]` = owning part of index `i`.
    pub part: Vec<usize>,
    /// Number of parts.
    pub nparts: usize,
}

impl Partition {
    /// Index sets per part (sorted).
    pub fn owned_sets(&self) -> Vec<Vec<usize>> {
        let mut sets = vec![Vec::new(); self.nparts];
        for (i, &p) in self.part.iter().enumerate() {
            sets[p].push(i);
        }
        sets
    }

    /// Size of the largest / smallest part (balance diagnostics).
    pub fn balance(&self) -> (usize, usize) {
        let sets = self.owned_sets();
        let max = sets.iter().map(Vec::len).max().unwrap_or(0);
        let min = sets.iter().map(Vec::len).min().unwrap_or(0);
        (max, min)
    }
}

/// Recursive coordinate bisection over point coordinates (any dimension).
///
/// Splits the widest axis at the median, recursing until `nparts` parts
/// exist. `nparts` need not be a power of two: parts are split proportionally.
pub fn partition_rcb(coords: &[Vec<f64>], nparts: usize) -> Partition {
    let n = coords.len();
    assert!(nparts >= 1);
    let mut part = vec![0usize; n];
    let mut idx: Vec<usize> = (0..n).collect();
    rcb_recurse(coords, &mut idx, 0, nparts, &mut part);
    Partition { part, nparts }
}

fn rcb_recurse(
    coords: &[Vec<f64>],
    idx: &mut [usize],
    base: usize,
    nparts: usize,
    part: &mut [usize],
) {
    if nparts == 1 {
        for &i in idx.iter() {
            part[i] = base;
        }
        return;
    }
    let dim = coords.first().map(|c| c.len()).unwrap_or(0);
    // Widest axis over this subset.
    let mut best_axis = 0;
    let mut best_spread = f64::MIN;
    for d in 0..dim {
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for &i in idx.iter() {
            lo = lo.min(coords[i][d]);
            hi = hi.max(coords[i][d]);
        }
        if hi - lo > best_spread {
            best_spread = hi - lo;
            best_axis = d;
        }
    }
    // Proportional split: left gets ⌊nparts/2⌋ of the parts.
    let left_parts = nparts / 2;
    let right_parts = nparts - left_parts;
    let split_at = idx.len() * left_parts / nparts;
    idx.sort_unstable_by(|&a, &b| {
        coords[a][best_axis]
            .partial_cmp(&coords[b][best_axis])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let (left, right) = idx.split_at_mut(split_at);
    rcb_recurse(coords, left, base, left_parts, part);
    rcb_recurse(coords, right, base + left_parts, right_parts, part);
}

/// Greedy BFS graph partition (no coordinates needed): grows parts from
/// spread-out seeds until each reaches its quota. Used when a problem has no
/// natural geometry.
pub fn partition_bfs<S: Scalar>(a: &Csr<S>, nparts: usize) -> Partition {
    let n = a.nrows();
    let target = n.div_ceil(nparts);
    let mut part = vec![usize::MAX; n];
    let mut assigned = 0usize;
    let mut current = 0usize;
    let mut queue = std::collections::VecDeque::new();
    let mut count = 0usize;
    let mut next_seed = 0usize;
    while assigned < n {
        if queue.is_empty() {
            // Start (or continue into) the next part from an unassigned node.
            while part[next_seed] != usize::MAX {
                next_seed += 1;
            }
            if count >= target && current + 1 < nparts {
                current += 1;
                count = 0;
            }
            part[next_seed] = current;
            queue.push_back(next_seed);
            assigned += 1;
            count += 1;
        }
        while let Some(u) = queue.pop_front() {
            for &v in a.row_indices(u) {
                if part[v] == usize::MAX {
                    if count >= target && current + 1 < nparts {
                        current += 1;
                        count = 0;
                    }
                    part[v] = current;
                    queue.push_back(v);
                    assigned += 1;
                    count += 1;
                }
            }
        }
    }
    Partition { part, nparts }
}

/// Grow each owned set by `delta` layers of graph adjacency — the paper's
/// overlapping decomposition: layer `δ` adds every vertex adjacent to layer
/// `δ−1`. Returns, per part, the sorted overlapping index set.
pub fn grow_overlap<S: Scalar>(a: &Csr<S>, partition: &Partition, delta: usize) -> Vec<Vec<usize>> {
    let owned = partition.owned_sets();
    owned
        .into_iter()
        .map(|mut set| {
            let mut inset = vec![false; a.nrows()];
            for &i in &set {
                inset[i] = true;
            }
            let mut frontier = set.clone();
            for _ in 0..delta {
                let mut next = Vec::new();
                for &u in &frontier {
                    for &v in a.row_indices(u) {
                        if !inset[v] {
                            inset[v] = true;
                            next.push(v);
                        }
                    }
                }
                set.extend_from_slice(&next);
                frontier = next;
            }
            set.sort_unstable();
            set
        })
        .collect()
}

/// Multiplicity-based partition of unity: for each part `i` and each index in
/// its overlapping set, the weight `1/multiplicity` where multiplicity is the
/// number of overlapping sets containing that index. Guarantees
/// `Σ_i R_iᵀ·D_i·R_i = I`.
pub fn partition_of_unity(n: usize, overlapping: &[Vec<usize>]) -> Vec<Vec<f64>> {
    let mut mult = vec![0usize; n];
    for set in overlapping {
        for &i in set {
            mult[i] += 1;
        }
    }
    overlapping
        .iter()
        .map(|set| set.iter().map(|&i| 1.0 / mult[i] as f64).collect())
        .collect()
}

/// Restricted partition of unity (RAS-style): weight 1 on indices the part
/// *owns*, 0 on the rest of its overlap.
pub fn restricted_partition_of_unity(
    partition: &Partition,
    overlapping: &[Vec<usize>],
) -> Vec<Vec<f64>> {
    overlapping
        .iter()
        .enumerate()
        .map(|(p, set)| {
            set.iter()
                .map(|&i| if partition.part[i] == p { 1.0 } else { 0.0 })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn grid(nx: usize, ny: usize) -> (Csr<f64>, Vec<Vec<f64>>) {
        let n = nx * ny;
        let id = |x: usize, y: usize| y * nx + x;
        let mut c = Coo::new(n, n);
        let mut coords = Vec::with_capacity(n);
        for y in 0..ny {
            for x in 0..nx {
                let me = id(x, y);
                c.push(me, me, 4.0);
                if x > 0 {
                    c.push(me, id(x - 1, y), -1.0);
                }
                if x + 1 < nx {
                    c.push(me, id(x + 1, y), -1.0);
                }
                if y > 0 {
                    c.push(me, id(x, y - 1), -1.0);
                }
                if y + 1 < ny {
                    c.push(me, id(x, y + 1), -1.0);
                }
            }
        }
        for y in 0..ny {
            for x in 0..nx {
                let _ = y;
                coords.push(vec![x as f64, y as f64]);
            }
        }
        (c.to_csr(), coords)
    }

    #[test]
    fn rcb_balanced() {
        let (_, coords) = grid(16, 16);
        for nparts in [2, 3, 4, 8] {
            let p = partition_rcb(&coords, nparts);
            let (max, min) = p.balance();
            assert!(max - min <= 16, "nparts={nparts}: {min}..{max}");
            assert_eq!(p.owned_sets().iter().map(Vec::len).sum::<usize>(), 256);
        }
    }

    #[test]
    fn bfs_partition_covers_everything() {
        let (a, _) = grid(10, 10);
        let p = partition_bfs(&a, 5);
        assert!(p.part.iter().all(|&x| x < 5));
        let (max, min) = p.balance();
        assert!(min > 0, "empty part: {min}..{max}");
    }

    #[test]
    fn overlap_grows_by_layers() {
        let (a, coords) = grid(8, 8);
        let p = partition_rcb(&coords, 4);
        let o0 = grow_overlap(&a, &p, 0);
        let o1 = grow_overlap(&a, &p, 1);
        let o2 = grow_overlap(&a, &p, 2);
        for i in 0..4 {
            assert!(o0[i].len() < o1[i].len());
            assert!(o1[i].len() < o2[i].len());
        }
        // δ=0 must equal the owned sets.
        assert_eq!(o0, p.owned_sets());
    }

    #[test]
    fn partition_of_unity_sums_to_one() {
        let (a, coords) = grid(9, 9);
        let p = partition_rcb(&coords, 3);
        let ov = grow_overlap(&a, &p, 2);
        let d = partition_of_unity(81, &ov);
        let mut acc = vec![0.0; 81];
        for (set, w) in ov.iter().zip(&d) {
            for (&i, &wi) in set.iter().zip(w) {
                acc[i] += wi;
            }
        }
        for (i, v) in acc.iter().enumerate() {
            assert!((v - 1.0).abs() < 1e-14, "index {i}: {v}");
        }
        // Restricted variant also sums to one (ownership is a partition).
        let dr = restricted_partition_of_unity(&p, &ov);
        let mut acc = vec![0.0; 81];
        for (set, w) in ov.iter().zip(&dr) {
            for (&i, &wi) in set.iter().zip(w) {
                acc[i] += wi;
            }
        }
        for v in &acc {
            assert!((v - 1.0).abs() < 1e-14);
        }
    }
}
