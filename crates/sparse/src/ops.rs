//! Sparse matrix–matrix products (Gustavson's algorithm) and the Galerkin
//! triple product used by the multigrid hierarchy.

#![allow(clippy::needless_range_loop)] // index loops mirror the BLAS/LAPACK reference forms

use crate::Csr;
use kryst_rt::par::{map_range, max_threads};
use kryst_scalar::Scalar;

/// Row count below which `spgemm` stays serial (pool dispatch would cost
/// more than the product itself on the coarse AMG levels).
const SPGEMM_PAR_MIN_ROWS: usize = 256;

/// `C = A·B` (CSR × CSR) via row-merge with a dense accumulator.
///
/// Rows are independent, so large products split into contiguous row ranges
/// across the worker pool, each with its own accumulator; per-row
/// accumulation order is the serial order, so the result is bit-identical
/// at any thread count.
pub fn spgemm<S: Scalar>(a: &Csr<S>, b: &Csr<S>) -> Csr<S> {
    assert_eq!(a.ncols(), b.nrows(), "spgemm: dimension mismatch");
    let nrows = a.nrows();
    let ncols = b.ncols();
    let t = max_threads();
    if t <= 1 || nrows < SPGEMM_PAR_MIN_ROWS {
        let (lens, indices, data) = spgemm_rows(a, b, 0, nrows);
        let mut indptr = Vec::with_capacity(nrows + 1);
        indptr.push(0usize);
        for l in lens {
            indptr.push(indptr.last().unwrap() + l);
        }
        return Csr::from_raw(nrows, ncols, indptr, indices, data);
    }
    let per = nrows.div_ceil(t);
    let nparts = nrows.div_ceil(per);
    let parts = map_range(nparts, |pi| {
        let lo = pi * per;
        let hi = ((pi + 1) * per).min(nrows);
        spgemm_rows(a, b, lo, hi)
    });
    // Stitch the per-part triples back into one CSR.
    let nnz: usize = parts.iter().map(|(_, idx, _)| idx.len()).sum();
    let mut indptr = Vec::with_capacity(nrows + 1);
    let mut indices = Vec::with_capacity(nnz);
    let mut data = Vec::with_capacity(nnz);
    indptr.push(0usize);
    for (lens, idx, vals) in parts {
        for l in lens {
            indptr.push(indptr.last().unwrap() + l);
        }
        indices.extend_from_slice(&idx);
        data.extend_from_slice(&vals);
    }
    Csr::from_raw(nrows, ncols, indptr, indices, data)
}

/// Gustavson row-merge over the row range `[lo, hi)`; returns per-row
/// lengths plus the concatenated column indices and values.
#[allow(clippy::type_complexity)]
fn spgemm_rows<S: Scalar>(
    a: &Csr<S>,
    b: &Csr<S>,
    lo: usize,
    hi: usize,
) -> (Vec<usize>, Vec<usize>, Vec<S>) {
    let ncols = b.ncols();
    let mut lens = Vec::with_capacity(hi - lo);
    let mut indices = Vec::new();
    let mut data = Vec::new();

    // Dense accumulator with a generation stamp to avoid clearing.
    let mut acc = vec![S::zero(); ncols];
    let mut stamp = vec![usize::MAX; ncols];
    let mut touched: Vec<usize> = Vec::new();

    for i in lo..hi {
        touched.clear();
        for (k, &ac) in a.row_indices(i).iter().enumerate() {
            let av = a.row_values(i)[k];
            for (l, &bc) in b.row_indices(ac).iter().enumerate() {
                let bv = b.row_values(ac)[l];
                if stamp[bc] != i {
                    stamp[bc] = i;
                    acc[bc] = S::zero();
                    touched.push(bc);
                }
                acc[bc] += av * bv;
            }
        }
        touched.sort_unstable();
        let before = indices.len();
        for &c in &touched {
            let v = acc[c];
            if v != S::zero() {
                indices.push(c);
                data.push(v);
            }
        }
        lens.push(indices.len() - before);
    }
    (lens, indices, data)
}

/// Galerkin coarse operator `A_c = Rᵀ·A·R` with `R = Pᵀ` — i.e. `Pᵀ·A·P`
/// given the prolongator `P` (the multigrid "RAP").
pub fn galerkin_rap<S: Scalar>(a: &Csr<S>, p: &Csr<S>) -> Csr<S> {
    let pt = p.transpose();
    let ap = spgemm(a, p);
    spgemm(&pt, &ap)
}

/// `A + B` with identical shapes.
pub fn add<S: Scalar>(a: &Csr<S>, b: &Csr<S>) -> Csr<S> {
    assert_eq!(a.nrows(), b.nrows());
    assert_eq!(a.ncols(), b.ncols());
    let mut coo = crate::Coo::with_capacity(a.nrows(), a.ncols(), a.nnz() + b.nnz());
    for m in [a, b] {
        for i in 0..m.nrows() {
            for (k, &c) in m.row_indices(i).iter().enumerate() {
                coo.push(i, c, m.row_values(i)[k]);
            }
        }
    }
    coo.to_csr()
}

/// `diag(d)·A` — row scaling.
pub fn scale_rows<S: Scalar>(d: &[S], a: &Csr<S>) -> Csr<S> {
    assert_eq!(d.len(), a.nrows());
    let mut out = a.clone();
    for i in 0..a.nrows() {
        let s = d[i];
        for v in out.row_values_mut(i) {
            *v *= s;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;
    use kryst_dense::DMat;

    fn dense_of(a: &Csr<f64>) -> DMat<f64> {
        DMat::from_fn(a.nrows(), a.ncols(), |i, j| a.get(i, j))
    }

    fn rand_csr(nr: usize, nc: usize, seed: usize) -> Csr<f64> {
        let mut c = Coo::new(nr, nc);
        for i in 0..nr {
            for j in 0..nc {
                let h = (i * 31 + j * 17 + seed * 101) % 7;
                if h < 3 {
                    c.push(i, j, (h as f64) - 1.0 + 0.5);
                }
            }
        }
        c.to_csr()
    }

    #[test]
    fn spgemm_matches_dense() {
        let a = rand_csr(6, 5, 1);
        let b = rand_csr(5, 7, 2);
        let c = spgemm(&a, &b);
        let ad = dense_of(&a);
        let bd = dense_of(&b);
        let cd = kryst_dense::blas::matmul(&ad, kryst_dense::Op::None, &bd, kryst_dense::Op::None);
        for i in 0..6 {
            for j in 0..7 {
                assert!((c.get(i, j) - cd[(i, j)]).abs() < 1e-13, "({i},{j})");
            }
        }
    }

    #[test]
    fn rap_symmetric_for_symmetric_a() {
        // A = tridiagonal SPD; P = simple aggregation (pairs).
        let n = 8;
        let mut ac = Coo::new(n, n);
        for i in 0..n {
            ac.push(i, i, 2.0);
            if i > 0 {
                ac.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                ac.push(i, i + 1, -1.0);
            }
        }
        let a = ac.to_csr();
        let mut pc = Coo::new(n, n / 2);
        for i in 0..n {
            pc.push(i, i / 2, 1.0);
        }
        let p = pc.to_csr();
        let acoarse = galerkin_rap(&a, &p);
        assert_eq!(acoarse.nrows(), n / 2);
        for i in 0..n / 2 {
            for j in 0..n / 2 {
                assert!((acoarse.get(i, j) - acoarse.get(j, i)).abs() < 1e-13);
            }
        }
        // Row sums of the coarse Laplacian vanish in the interior.
        let mid = n / 4;
        let s: f64 = acoarse.row_values(mid).iter().sum();
        assert!(s.abs() < 1e-13);
    }

    #[test]
    fn spgemm_parallel_matches_serial_bitwise() {
        // Big enough to cross SPGEMM_PAR_MIN_ROWS so the pooled path runs
        // when KRYST_THREADS > 1; the result must equal the serial row
        // sweep bit for bit.
        let a = rand_csr(600, 500, 5);
        let b = rand_csr(500, 400, 6);
        let c = spgemm(&a, &b);
        let (lens, idx, vals) = spgemm_rows(&a, &b, 0, a.nrows());
        let mut at = 0usize;
        for i in 0..a.nrows() {
            assert_eq!(c.row_indices(i).len(), lens[i], "row {i} length");
            for k in 0..lens[i] {
                assert_eq!(c.row_indices(i)[k], idx[at + k]);
                assert_eq!(c.row_values(i)[k].to_bits(), vals[at + k].to_bits());
            }
            at += lens[i];
        }
    }

    #[test]
    fn add_and_scale() {
        let a = rand_csr(4, 4, 3);
        let b = rand_csr(4, 4, 4);
        let c = add(&a, &b);
        for i in 0..4 {
            for j in 0..4 {
                assert!((c.get(i, j) - a.get(i, j) - b.get(i, j)).abs() < 1e-14);
            }
        }
        let d = vec![2.0; 4];
        let s = scale_rows(&d, &a);
        for i in 0..4 {
            for j in 0..4 {
                assert!((s.get(i, j) - 2.0 * a.get(i, j)).abs() < 1e-14);
            }
        }
    }
}
