//! Banded LU factorization with partial pivoting (LAPACK `gbtrf`-style) and
//! blocked multi-right-hand-side triangular solves.
//!
//! This is the computational core of the workspace's PARDISO stand-in: after
//! an RCM reordering the subdomain matrices have small bandwidth, the band is
//! factored once, and solves with `p` right-hand sides stream the factor
//! through the cache **once per tile of right-hand sides** instead of once
//! per right-hand side — which is exactly the BLAS-2 → BLAS-3 regime change
//! the paper measures in Fig. 6.

#![allow(clippy::needless_range_loop)] // index loops mirror the BLAS/LAPACK reference forms

use kryst_dense::DMat;
use kryst_rt::par::for_each_chunk_mut;
use kryst_scalar::{Real, Scalar};

/// Banded matrix in LAPACK band storage with room for pivoting fill:
/// entry `(i, j)` lives at `ab[(kl + ku + i − j, j)]`, valid for
/// `−(kl+ku) ≤ i − j ≤ kl`.
pub struct BandMat<S> {
    n: usize,
    kl: usize,
    ku: usize,
    ldab: usize,
    ab: Vec<S>,
}

impl<S: Scalar> BandMat<S> {
    /// Zero-initialized band storage.
    pub fn zeros(n: usize, kl: usize, ku: usize) -> Self {
        let ldab = 2 * kl + ku + 1;
        Self {
            n,
            kl,
            ku,
            ldab,
            ab: vec![S::zero(); ldab * n],
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Lower bandwidth.
    pub fn kl(&self) -> usize {
        self.kl
    }

    /// Upper bandwidth (excluding pivoting fill).
    pub fn ku(&self) -> usize {
        self.ku
    }

    /// Bytes held by the band storage (for the Fig. 6 memory accounting).
    pub fn storage_bytes(&self) -> usize {
        self.ab.len() * std::mem::size_of::<S>()
    }

    #[inline(always)]
    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(
            i + self.ku + self.kl >= j && i <= j + self.kl,
            "({i},{j}) outside band"
        );
        j * self.ldab + (self.kl + self.ku + i - j)
    }

    /// Entry accessor (must be inside the band incl. fill region).
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> S {
        self.ab[self.idx(i, j)]
    }

    /// Entry setter (must be inside the band incl. fill region).
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: S) {
        let k = self.idx(i, j);
        self.ab[k] = v;
    }

    /// True if `(i, j)` lies inside the (filled) band.
    #[inline(always)]
    pub fn in_band(&self, i: usize, j: usize) -> bool {
        i + self.ku + self.kl >= j && i <= j + self.kl
    }
}

/// LU factorization of a banded matrix with partial pivoting.
pub struct BandLu<S> {
    mat: BandMat<S>,
    ipiv: Vec<usize>,
    singular: bool,
}

impl<S: Scalar> BandLu<S> {
    /// Factor the band matrix in place (consumed).
    pub fn factor(mut m: BandMat<S>) -> Self {
        let n = m.n;
        let kl = m.kl;
        let ku_tot = m.kl + m.ku; // upper bandwidth including fill
        let mut ipiv = vec![0usize; n];
        let mut singular = false;
        let mut ju = 0usize; // last column updated so far
        for j in 0..n {
            let km = kl.min(n - 1 - j); // subdiagonal entries in column j
                                        // Pivot search in rows j..=j+km of column j.
            let mut jp = 0usize;
            let mut pmax = m.get(j, j).abs();
            for t in 1..=km {
                let v = m.get(j + t, j).abs();
                if v > pmax {
                    pmax = v;
                    jp = t;
                }
            }
            ipiv[j] = j + jp;
            ju = ju.max((j + m.ku + jp).min(n - 1));
            if pmax == S::Real::zero() || !pmax.is_finite() {
                singular = true;
                continue;
            }
            if jp != 0 {
                // Swap rows j and j+jp across columns j..=ju.
                for k in j..=ju {
                    let a = m.get(j, k);
                    let b = if m.in_band(j + jp, k) {
                        m.get(j + jp, k)
                    } else {
                        S::zero()
                    };
                    m.set(j, k, b);
                    if m.in_band(j + jp, k) {
                        m.set(j + jp, k, a);
                    } else {
                        debug_assert!(a == S::zero());
                    }
                }
            }
            if km > 0 {
                let inv = S::one() / m.get(j, j);
                for t in 1..=km {
                    let v = m.get(j + t, j) * inv;
                    m.set(j + t, j, v);
                }
                // Trailing update limited to columns with a nonzero in row j.
                for k in j + 1..=ju {
                    let ajk = m.get(j, k);
                    if ajk == S::zero() {
                        continue;
                    }
                    for t in 1..=km {
                        if m.in_band(j + t, k) {
                            let v = m.get(j + t, k) - m.get(j + t, j) * ajk;
                            m.set(j + t, k, v);
                        }
                    }
                }
            }
            let _ = ku_tot;
        }
        Self {
            mat: m,
            ipiv,
            singular,
        }
    }

    /// Whether a zero pivot was encountered.
    pub fn is_singular(&self) -> bool {
        self.singular
    }

    /// Solve `A·x = b` for one right-hand side, in place.
    pub fn solve_one(&self, b: &mut [S]) {
        assert!(!self.singular);
        let n = self.mat.n;
        assert_eq!(b.len(), n);
        let kl = self.mat.kl;
        // Forward: apply pivots and L.
        for j in 0..n {
            let p = self.ipiv[j];
            if p != j {
                b.swap(j, p);
            }
            let bj = b[j];
            if bj == S::zero() {
                continue;
            }
            let km = kl.min(n - 1 - j);
            for t in 1..=km {
                b[j + t] -= self.mat.get(j + t, j) * bj;
            }
        }
        // Backward: U with bandwidth kl+ku.
        let kw = self.mat.kl + self.mat.ku;
        for j in (0..n).rev() {
            let mut acc = b[j];
            let hi = (j + kw).min(n - 1);
            for k in j + 1..=hi {
                acc -= self.mat.get(j, k) * b[k];
            }
            b[j] = acc / self.mat.get(j, j);
        }
    }

    /// Solve with a block of right-hand sides, streaming the factor once per
    /// **tile** of columns (the BLAS-3-style amortization of Fig. 6).
    /// `threads` caps the parallelism over tiles (`0` = default cap).
    pub fn solve_multi(&self, b: &mut DMat<S>, tile: usize, threads: usize) {
        assert!(!self.singular);
        let n = self.mat.n;
        assert_eq!(b.nrows(), n);
        let p = b.ncols();
        let tile = tile.max(1);
        let kl = self.mat.kl;
        let kw = self.mat.kl + self.mat.ku;

        let solve_tile = |cols: &mut [S]| {
            let ncol = cols.len() / n;
            // Forward elimination, factor column loaded once per tile.
            for j in 0..n {
                let pvt = self.ipiv[j];
                if pvt != j {
                    for c in 0..ncol {
                        cols.swap(c * n + j, c * n + pvt);
                    }
                }
                let km = kl.min(n - 1 - j);
                if km == 0 {
                    continue;
                }
                for c in 0..ncol {
                    let base = c * n;
                    let bj = cols[base + j];
                    if bj == S::zero() {
                        continue;
                    }
                    for t in 1..=km {
                        let lv = self.mat.get(j + t, j);
                        cols[base + j + t] -= lv * bj;
                    }
                }
            }
            // Back substitution.
            for j in (0..n).rev() {
                let hi = (j + kw).min(n - 1);
                let dinv = S::one() / self.mat.get(j, j);
                for c in 0..ncol {
                    let base = c * n;
                    let mut acc = cols[base + j];
                    for k in j + 1..=hi {
                        acc -= self.mat.get(j, k) * cols[base + k];
                    }
                    cols[base + j] = acc * dinv;
                }
            }
        };

        let data = b.as_mut_slice();
        let chunk = tile * n;
        if threads == 1 || p <= tile {
            for cols in data.chunks_mut(chunk) {
                solve_tile(cols);
            }
        } else {
            for_each_chunk_mut(data, chunk, threads, |_, cols| solve_tile(cols));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a band matrix (and its dense mirror) with deterministic entries.
    fn build(n: usize, kl: usize, ku: usize) -> (BandMat<f64>, DMat<f64>) {
        let mut bm = BandMat::zeros(n, kl, ku);
        let mut d = DMat::zeros(n, n);
        for i in 0..n {
            for j in i.saturating_sub(kl)..(i + ku + 1).min(n) {
                let v = (((i * 13 + j * 7) % 11) as f64) - 5.0 + if i == j { 14.0 } else { 0.0 };
                bm.set(i, j, v);
                d[(i, j)] = v;
            }
        }
        (bm, d)
    }

    #[test]
    fn band_lu_solves() {
        let (bm, d) = build(25, 3, 2);
        let f = BandLu::factor(bm);
        assert!(!f.is_singular());
        let x_true: Vec<f64> = (0..25).map(|i| (i as f64) * 0.5 - 3.0).collect();
        let mut b = vec![0.0; 25];
        for i in 0..25 {
            for j in 0..25 {
                b[i] += d[(i, j)] * x_true[j];
            }
        }
        f.solve_one(&mut b);
        for i in 0..25 {
            assert!(
                (b[i] - x_true[i]).abs() < 1e-10,
                "x[{i}] = {} vs {}",
                b[i],
                x_true[i]
            );
        }
    }

    #[test]
    fn band_lu_requires_pivoting() {
        // Zero diagonal forces row interchanges.
        let n = 6;
        let mut bm = BandMat::<f64>::zeros(n, 1, 1);
        let mut d = DMat::<f64>::zeros(n, n);
        for i in 0..n {
            for j in i.saturating_sub(1)..(i + 2).min(n) {
                let v = if i == j {
                    0.0
                } else {
                    1.0 + (i + j) as f64 * 0.1
                };
                bm.set(i, j, v);
                d[(i, j)] = v;
            }
        }
        let f = BandLu::factor(bm);
        assert!(!f.is_singular());
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let mut b = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += d[(i, j)] * x_true[j];
            }
        }
        f.solve_one(&mut b);
        for i in 0..n {
            assert!((b[i] - x_true[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn multi_rhs_matches_single() {
        let (bm, d) = build(40, 4, 3);
        let f = BandLu::factor(bm);
        let p = 7;
        let mut rhs = DMat::zeros(40, p);
        for c in 0..p {
            for i in 0..40 {
                let mut acc = 0.0;
                for j in 0..40 {
                    acc += d[(i, j)] * (((j + c * 3) % 9) as f64 - 4.0);
                }
                rhs[(i, c)] = acc;
            }
        }
        let mut tiled = rhs.clone();
        f.solve_multi(&mut tiled, 3, 1);
        for c in 0..p {
            let mut single = rhs.col(c).to_vec();
            f.solve_one(&mut single);
            for i in 0..40 {
                assert!((tiled[(i, c)] - single[i]).abs() < 1e-11);
            }
        }
        // And the parallel path agrees too.
        let mut par = rhs.clone();
        f.solve_multi(&mut par, 2, 0);
        for c in 0..p {
            for i in 0..40 {
                assert!((par[(i, c)] - tiled[(i, c)]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn complex_band_solve() {
        use kryst_scalar::C64;
        let n = 15;
        let mut bm = BandMat::<C64>::zeros(n, 2, 2);
        let mut d = DMat::<C64>::zeros(n, n);
        for i in 0..n {
            for j in i.saturating_sub(2)..(i + 3).min(n) {
                let v = C64::from_parts(
                    ((i * 3 + j) % 5) as f64 - 2.0 + if i == j { 7.0 } else { 0.0 },
                    ((i + j * 2) % 3) as f64 - 1.0,
                );
                bm.set(i, j, v);
                d[(i, j)] = v;
            }
        }
        let f = BandLu::factor(bm);
        assert!(!f.is_singular());
        let x_true: Vec<C64> = (0..n).map(|i| C64::from_parts(i as f64, -0.5)).collect();
        let mut b = vec![C64::zero(); n];
        for i in 0..n {
            for j in 0..n {
                b[i] += d[(i, j)] * x_true[j];
            }
        }
        f.solve_one(&mut b);
        for i in 0..n {
            assert!((b[i] - x_true[i]).abs() < 1e-10);
        }
    }
}
