//! Compact low-precision CSR: `u32` column indices + demoted values.
//!
//! A standard [`Csr<f64>`](crate::Csr) streams 16 bytes per nonzero
//! (`usize` index + `f64` value) through every apply. [`CsrLo`] stores the
//! same matrix as `u32` indices and `S::Lo` values — 8 bytes per nonzero
//! for real `f64` matrices — and promotes each value back to the working
//! precision inside the kernel, so the accumulation itself is unchanged.
//! Preconditioner internals (ILU factors, AMG hierarchy operators) are the
//! intended users: the outer Krylov iteration never sees `S::Lo` directly.

use crate::Csr;
use kryst_dense::DMat;
use kryst_rt::par::{for_each_chunk_mut, for_each_range, SendPtr};
use kryst_scalar::Demote;

/// Row count below which SpMV/SpMM stay single-threaded (matches `Csr`).
const PAR_ROWS: usize = 4096;

/// Column-block width for SpMM register accumulators (matches `Csr`).
const SPMM_COLS: usize = 8;

/// Low-precision compressed sparse row matrix.
///
/// Built by demoting a full-precision [`Csr`]; applies promote on the fly
/// and produce full-precision output. The kernel loop structure (column
/// blocking, parallel row bands, accumulation order) mirrors [`Csr::spmm`]
/// exactly, so the only difference from the full-precision product is the
/// rounding of the stored values.
#[derive(Clone, Debug)]
pub struct CsrLo<S: Demote> {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    data: Vec<S::Lo>,
}

impl<S: Demote> CsrLo<S> {
    /// Demote a full-precision matrix into compact low-precision storage.
    pub fn from_csr(a: &Csr<S>) -> Self {
        assert!(
            a.ncols() <= u32::MAX as usize,
            "CsrLo requires column indices to fit in u32"
        );
        let nnz = a.nnz();
        let mut indices = Vec::with_capacity(nnz);
        let mut data = Vec::with_capacity(nnz);
        for i in 0..a.nrows() {
            for (k, &c) in a.row_indices(i).iter().enumerate() {
                indices.push(c as u32);
                data.push(a.row_values(i)[k].demote());
            }
        }
        Self {
            nrows: a.nrows(),
            ncols: a.ncols(),
            indptr: a.indptr().to_vec(),
            indices,
            data,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Bytes of matrix data (values + indices + row pointers) streamed by
    /// one full apply, independent of the block width `p` (every nonzero is
    /// read once per apply thanks to the column-block register kernel).
    pub fn bytes_streamed(&self) -> usize {
        self.nnz() * (core::mem::size_of::<S::Lo>() + core::mem::size_of::<u32>())
            + self.indptr.len() * core::mem::size_of::<usize>()
    }

    /// `y ⟵ A·x` for a single vector, promoting values on the fly.
    pub fn spmv(&self, x: &[S], y: &mut [S]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        let kernel = |i: usize, yi: &mut S| {
            let mut acc = S::zero();
            let lo = self.indptr[i];
            let hi = self.indptr[i + 1];
            for k in lo..hi {
                acc += S::promote_lo(self.data[k]) * x[self.indices[k] as usize];
            }
            *yi = acc;
        };
        if self.nrows >= PAR_ROWS {
            for_each_chunk_mut(y, 1, 0, |i, yi| kernel(i, &mut yi[0]));
        } else {
            y.iter_mut().enumerate().for_each(|(i, yi)| kernel(i, yi));
        }
    }

    /// `Y ⟵ A·X` for a block of `p` vectors — the [`Csr::spmm`] column-block
    /// register kernel with half the per-nonzero traffic.
    pub fn spmm(&self, x: &DMat<S>, y: &mut DMat<S>) {
        assert_eq!(x.nrows(), self.ncols);
        assert_eq!(y.nrows(), self.nrows);
        assert_eq!(x.ncols(), y.ncols());
        let p = x.ncols();
        if p == 1 {
            let (xs, ys) = (x.col(0), y.col_mut(0));
            self.spmv(xs, ys);
            return;
        }
        let n = self.nrows;
        let xn = x.nrows();
        let xd = x.as_slice();
        let yp = SendPtr::new(y.as_mut_slice().as_mut_ptr());
        let band = |r0: usize, r1: usize| {
            let mut jb = 0;
            while jb < p {
                let nb = SPMM_COLS.min(p - jb);
                for i in r0..r1 {
                    let lo = self.indptr[i];
                    let hi = self.indptr[i + 1];
                    let mut acc = [S::zero(); SPMM_COLS];
                    if nb == SPMM_COLS {
                        for k in lo..hi {
                            let a = S::promote_lo(self.data[k]);
                            let c = self.indices[k] as usize;
                            for l in 0..SPMM_COLS {
                                acc[l] += a * xd[(jb + l) * xn + c];
                            }
                        }
                    } else {
                        for k in lo..hi {
                            let a = S::promote_lo(self.data[k]);
                            let c = self.indices[k] as usize;
                            for (l, al) in acc.iter_mut().enumerate().take(nb) {
                                *al += a * xd[(jb + l) * xn + c];
                            }
                        }
                    }
                    for (l, &al) in acc.iter().enumerate().take(nb) {
                        // SAFETY: each (row, column) output element is
                        // written exactly once, and parallel parts own
                        // disjoint row bands.
                        unsafe { *yp.ptr().add((jb + l) * n + i) = al };
                    }
                }
                jb += nb;
            }
        };
        if n >= PAR_ROWS {
            for_each_range(n, 0, band);
        } else {
            band(0, n);
        }
    }

    /// `Y(rows, :) ⟵ A(rows, :)·X` — row-subset SpMM; rows outside the set
    /// are left untouched. Mirrors [`Csr::spmm_rows`].
    pub fn spmm_rows(&self, x: &DMat<S>, y: &mut DMat<S>, rows: &[usize]) {
        assert_eq!(x.nrows(), self.ncols);
        assert_eq!(y.nrows(), self.nrows);
        assert_eq!(x.ncols(), y.ncols());
        debug_assert!(rows.iter().all(|&i| i < self.nrows), "row out of range");
        let p = x.ncols();
        let n = self.nrows;
        if p == 1 {
            let xs = x.col(0);
            let ys = y.col_mut(0);
            let kernel = |i: usize| {
                let mut acc = S::zero();
                for k in self.indptr[i]..self.indptr[i + 1] {
                    acc += S::promote_lo(self.data[k]) * xs[self.indices[k] as usize];
                }
                acc
            };
            if rows.len() >= PAR_ROWS {
                let yp = SendPtr::new(ys.as_mut_ptr());
                for_each_range(rows.len(), 0, |r0, r1| {
                    for &i in &rows[r0..r1] {
                        // SAFETY: `rows` indexes distinct rows; parallel
                        // parts own disjoint slices of it.
                        unsafe { *yp.ptr().add(i) = kernel(i) };
                    }
                });
            } else {
                for &i in rows {
                    ys[i] = kernel(i);
                }
            }
            return;
        }
        let xn = x.nrows();
        let xd = x.as_slice();
        let yp = SendPtr::new(y.as_mut_slice().as_mut_ptr());
        let band = |r0: usize, r1: usize| {
            let mut jb = 0;
            while jb < p {
                let nb = SPMM_COLS.min(p - jb);
                for &i in &rows[r0..r1] {
                    let lo = self.indptr[i];
                    let hi = self.indptr[i + 1];
                    let mut acc = [S::zero(); SPMM_COLS];
                    if nb == SPMM_COLS {
                        for k in lo..hi {
                            let a = S::promote_lo(self.data[k]);
                            let c = self.indices[k] as usize;
                            for l in 0..SPMM_COLS {
                                acc[l] += a * xd[(jb + l) * xn + c];
                            }
                        }
                    } else {
                        for k in lo..hi {
                            let a = S::promote_lo(self.data[k]);
                            let c = self.indices[k] as usize;
                            for (l, al) in acc.iter_mut().enumerate().take(nb) {
                                *al += a * xd[(jb + l) * xn + c];
                            }
                        }
                    }
                    for (l, &al) in acc.iter().enumerate().take(nb) {
                        // SAFETY: distinct rows, disjoint parallel parts —
                        // each output element written exactly once.
                        unsafe { *yp.ptr().add((jb + l) * n + i) = al };
                    }
                }
                jb += nb;
            }
        };
        if rows.len() >= PAR_ROWS {
            for_each_range(rows.len(), 0, band);
        } else {
            band(0, rows.len());
        }
    }
}

impl<S: Demote> Csr<S> {
    /// Bytes of matrix data (values + indices + row pointers) streamed by
    /// one full-precision apply. Companion to [`CsrLo::bytes_streamed`] for
    /// bytes-per-iteration reporting.
    pub fn bytes_streamed(&self) -> usize {
        self.nnz() * (core::mem::size_of::<S>() + core::mem::size_of::<usize>())
            + (self.nrows() + 1) * core::mem::size_of::<usize>()
    }

    /// Demote every stored value, keeping the sparsity pattern: a
    /// `Csr<S::Lo>` suitable for low-precision *factorization* (e.g. the
    /// Schwarz subdomain direct solves, whose banded factors then live in
    /// `S::Lo`). For apply-only use, prefer [`CsrLo`] which also compacts
    /// the indices.
    pub fn demote_values(&self) -> Csr<S::Lo> {
        let mut indptr = Vec::with_capacity(self.nrows() + 1);
        indptr.push(0usize);
        let mut indices = Vec::with_capacity(self.nnz());
        let mut data = Vec::with_capacity(self.nnz());
        for i in 0..self.nrows() {
            for (k, &c) in self.row_indices(i).iter().enumerate() {
                indices.push(c);
                data.push(self.row_values(i)[k].demote());
            }
            indptr.push(indices.len());
        }
        Csr::from_raw(self.nrows(), self.ncols(), indptr, indices, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;
    use kryst_scalar::{Scalar, C64};

    fn testmat(n: usize) -> Csr<f64> {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 4.0 + (i % 3) as f64 * 0.125);
            if i > 0 {
                c.push(i, i - 1, -1.0 - (i % 5) as f64 * 0.25);
            }
            if i + 1 < n {
                c.push(i, i + 1, -1.5);
            }
            if i + 7 < n {
                c.push(i, i + 7, 0.375);
            }
        }
        c.to_csr()
    }

    #[test]
    fn lo_spmm_matches_full_for_exact_values() {
        // All values above are exactly representable in f32, so the demoted
        // product must be bit-identical to the full-precision one.
        let a = testmat(40);
        let lo = CsrLo::from_csr(&a);
        let x = DMat::from_fn(40, 8, |i, j| ((i * 3 + j) % 9) as f64 - 4.0);
        let yfull = a.apply(&x);
        let mut ylo = DMat::zeros(40, 8);
        lo.spmm(&x, &mut ylo);
        for i in 0..40 {
            for j in 0..8 {
                assert_eq!(yfull[(i, j)], ylo[(i, j)], "({i},{j})");
            }
        }
    }

    #[test]
    fn lo_spmv_and_rows_consistent_with_spmm() {
        let a = testmat(33);
        let lo = CsrLo::from_csr(&a);
        let x = DMat::from_fn(33, 3, |i, j| (i as f64 * 0.1 + j as f64).sin());
        let mut yblock = DMat::zeros(33, 3);
        lo.spmm(&x, &mut yblock);
        // spmv column by column
        for j in 0..3 {
            let mut yj = vec![0.0; 33];
            lo.spmv(x.col(j), &mut yj);
            for i in 0..33 {
                assert!((yblock[(i, j)] - yj[i]).abs() < 1e-12);
            }
        }
        // row subset covering all rows in two pieces must equal the full product
        let rows1: Vec<usize> = (0..20).collect();
        let rows2: Vec<usize> = (20..33).collect();
        let mut ysplit = DMat::zeros(33, 3);
        lo.spmm_rows(&x, &mut ysplit, &rows1);
        lo.spmm_rows(&x, &mut ysplit, &rows2);
        for i in 0..33 {
            for j in 0..3 {
                assert_eq!(yblock[(i, j)], ysplit[(i, j)]);
            }
        }
    }

    #[test]
    fn lo_rounding_error_is_f32_scale() {
        let n = 64;
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 4.0 + (i as f64 * 0.731).sin() * 0.1);
            if i > 0 {
                c.push(i, i - 1, -1.0 + (i as f64).cos() * 0.01);
            }
            if i + 1 < n {
                c.push(i, i + 1, -1.0);
            }
        }
        let a = c.to_csr();
        let lo = CsrLo::from_csr(&a);
        let x = DMat::from_fn(n, 4, |i, j| ((i + j) as f64 * 0.17).cos());
        let yfull = a.apply(&x);
        let mut ylo = DMat::zeros(n, 4);
        lo.spmm(&x, &mut ylo);
        for i in 0..n {
            for j in 0..4 {
                let err = (yfull[(i, j)] - ylo[(i, j)]).abs();
                assert!(err < 1e-5, "err {err} at ({i},{j})");
                // And it genuinely is low precision storage:
            }
        }
    }

    #[test]
    fn bytes_streamed_halves_for_f64() {
        let a = testmat(100);
        let lo = CsrLo::from_csr(&a);
        // 16 bytes/nnz full vs 8 bytes/nnz compact; indptr identical.
        let full = a.bytes_streamed();
        let compact = lo.bytes_streamed();
        let indptr_bytes = 101 * core::mem::size_of::<usize>();
        assert_eq!(full - indptr_bytes, 2 * (compact - indptr_bytes));
    }

    #[test]
    fn complex_demote_works() {
        let mut c = Coo::<C64>::new(8, 8);
        for i in 0..8 {
            c.push(i, i, C64::from_parts(3.0, -0.5));
            if i > 0 {
                c.push(i, i - 1, C64::from_parts(-1.0, 0.25));
            }
        }
        let a = c.to_csr();
        let lo = CsrLo::from_csr(&a);
        let x = DMat::from_fn(8, 2, |i, j| C64::from_parts(i as f64, -(j as f64)));
        let yfull = a.apply(&x);
        let mut ylo = DMat::zeros(8, 2);
        lo.spmm(&x, &mut ylo);
        for i in 0..8 {
            for j in 0..2 {
                assert!((yfull[(i, j)] - ylo[(i, j)]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn demote_values_keeps_pattern() {
        let a = testmat(20);
        let d = a.demote_values();
        assert_eq!(d.nnz(), a.nnz());
        for i in 0..20 {
            assert_eq!(d.row_indices(i), a.row_indices(i));
            for (k, &v) in a.row_values(i).iter().enumerate() {
                assert_eq!(d.row_values(i)[k], v as f32);
            }
        }
    }
}
