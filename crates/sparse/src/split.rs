//! Interior/boundary row split for halo/compute overlap.
//!
//! In a distributed SpMM each rank owns a contiguous row range. A row whose
//! nonzero columns all fall inside its owner's range needs no remote data —
//! its product can proceed while the halo exchange is still on the wire.
//! Rows that reach outside the range must wait for the exchange. The split
//! computed here drives the overlapped apply of `kryst-par`'s `DistOp`:
//! interior rows first (overlapping the exchange), boundary rows after.

use crate::Csr;
use kryst_scalar::Scalar;
use std::ops::Range;

/// Partition of a matrix's rows into halo-independent interior rows and
/// exchange-dependent boundary rows, per an ownership layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowSplit {
    /// Rows whose columns stay within their owner's range (ascending).
    pub interior: Vec<usize>,
    /// Rows coupling to at least one column outside the range (ascending).
    pub boundary: Vec<usize>,
    /// Nonzeros in the interior rows.
    pub interior_nnz: usize,
    /// Nonzeros in the boundary rows.
    pub boundary_nnz: usize,
}

impl RowSplit {
    /// Classify every row of `a` against the contiguous ownership ranges
    /// (one per rank, covering `0..a.nrows()` in order).
    pub fn build<S: Scalar>(a: &Csr<S>, owner_ranges: &[Range<usize>]) -> Self {
        let mut interior = Vec::new();
        let mut boundary = Vec::new();
        let mut interior_nnz = 0;
        let mut boundary_nnz = 0;
        for range in owner_ranges {
            for i in range.clone() {
                let cols = a.row_indices(i);
                let local = cols.iter().all(|&c| range.contains(&c));
                if local {
                    interior.push(i);
                    interior_nnz += cols.len();
                } else {
                    boundary.push(i);
                    boundary_nnz += cols.len();
                }
            }
        }
        Self {
            interior,
            boundary,
            interior_nnz,
            boundary_nnz,
        }
    }

    /// Every row is interior (single-rank layouts degenerate to this).
    pub fn all_interior(&self) -> bool {
        self.boundary.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn laplace1d(n: usize) -> Csr<f64> {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i > 0 {
                c.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                c.push(i, i + 1, -1.0);
            }
        }
        c.to_csr()
    }

    #[test]
    fn tridiagonal_boundary_is_rank_edges() {
        // 1-D Laplacian on 12 rows over 3 even ranks: exactly the first and
        // last row of each interior range touch a neighbour.
        let a = laplace1d(12);
        let ranges = [0..4usize, 4..8, 8..12];
        let s = RowSplit::build(&a, &ranges);
        assert_eq!(s.boundary, vec![3, 4, 7, 8]);
        assert_eq!(s.interior, vec![0, 1, 2, 5, 6, 9, 10, 11]);
        assert_eq!(s.interior_nnz + s.boundary_nnz, a.nnz());
        // Rows 0 and 11 are physical-boundary rows but halo-interior.
        assert!(s.interior.contains(&0) && s.interior.contains(&11));
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // one rank = one ownership range
    fn single_rank_is_all_interior() {
        let a = laplace1d(10);
        let ranges = [0..10usize];
        let s = RowSplit::build(&a, &ranges);
        assert!(s.all_interior());
        assert_eq!(s.interior.len(), 10);
        assert_eq!(s.interior_nnz, a.nnz());
    }

    #[test]
    fn split_partitions_rows_exactly() {
        let a = laplace1d(23);
        let ranges = [0..8usize, 8..16, 16..23];
        let s = RowSplit::build(&a, &ranges);
        let mut all: Vec<usize> = s.interior.iter().chain(&s.boundary).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
    }
}
