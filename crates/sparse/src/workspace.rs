//! Reusable multivector buffers for allocation-free solver iterations.
//!
//! Every per-iteration kernel call used to allocate its `n × p` output
//! (`apply_new`, cloned column blocks, fused batch buffers). With the SpMM
//! and GEMM kernels overwriting their output in place, a small buffer pool
//! threaded through the solver iteration state removes those allocations
//! entirely after the first iteration: [`SpmmWorkspace::take`] hands out a
//! zeroed `DMat` backed by a recycled allocation and [`SpmmWorkspace::put`]
//! returns it once the iteration is done with it.

use kryst_dense::DMat;
use kryst_scalar::Scalar;

/// A pool of reusable column-major buffers for `n × p` multivectors.
///
/// `take` prefers the free buffer whose backing capacity already fits the
/// request, so steady-state solver iterations (fixed `n`, fixed block width
/// `p`) allocate nothing. Buffers are zero-filled on `take`, preserving the
/// exact semantics of a freshly allocated `DMat::zeros` — preconditioners
/// that accumulate into their output see the same bytes either way.
#[derive(Debug, Default)]
pub struct SpmmWorkspace<S> {
    free: Vec<Vec<S>>,
}

impl<S: Scalar> SpmmWorkspace<S> {
    /// An empty workspace (no buffers held).
    pub fn new() -> Self {
        Self { free: Vec::new() }
    }

    /// A zeroed `nrows × ncols` matrix, reusing a pooled allocation when one
    /// with sufficient capacity is available.
    pub fn take(&mut self, nrows: usize, ncols: usize) -> DMat<S> {
        let len = nrows * ncols;
        // Prefer the free buffer with the largest capacity (LIFO would churn
        // between differently-sized requests).
        let pick = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, v)| v.capacity() >= len)
            .map(|(i, _)| i)
            .next_back()
            .or_else(|| {
                if self.free.is_empty() {
                    None
                } else {
                    Some(self.free.len() - 1)
                }
            });
        let mut data = match pick {
            Some(i) => self.free.swap_remove(i),
            None => Vec::with_capacity(len),
        };
        data.clear();
        data.resize(len, S::zero());
        DMat::from_col_major(nrows, ncols, data)
    }

    /// Return a matrix's backing buffer to the pool for reuse.
    pub fn put(&mut self, m: DMat<S>) {
        self.free.push(m.into_vec());
    }

    /// Number of pooled free buffers (diagnostics/tests).
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_capacity() {
        let mut ws = SpmmWorkspace::<f64>::new();
        let a = ws.take(100, 4);
        let cap_ptr = a.as_slice().as_ptr();
        ws.put(a);
        assert_eq!(ws.pooled(), 1);
        let b = ws.take(100, 4);
        assert_eq!(b.as_slice().as_ptr(), cap_ptr, "allocation must be reused");
        assert!(b.as_slice().iter().all(|&x| x == 0.0), "buffer zeroed");
        assert_eq!(ws.pooled(), 0);
    }

    #[test]
    fn take_is_zeroed_after_dirty_use() {
        let mut ws = SpmmWorkspace::<f64>::new();
        let mut a = ws.take(8, 2);
        a.fill(3.5);
        ws.put(a);
        let b = ws.take(8, 2);
        assert!(b.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn shape_changes_reuse_when_capacity_fits() {
        let mut ws = SpmmWorkspace::<f64>::new();
        let a = ws.take(64, 8); // 512 elements
        ws.put(a);
        let b = ws.take(32, 4); // 128 elements — fits in the pooled buffer
        assert_eq!((b.nrows(), b.ncols()), (32, 4));
        ws.put(b);
        let c = ws.take(128, 8); // grows the (single) pooled buffer
        assert_eq!((c.nrows(), c.ncols()), (128, 8));
    }
}
