//! Reusable multivector buffers for allocation-free solver iterations.
//!
//! Every per-iteration kernel call used to allocate its `n × p` output
//! (`apply_new`, cloned column blocks, fused batch buffers). With the SpMM
//! and GEMM kernels overwriting their output in place, a small buffer pool
//! threaded through the solver iteration state removes those allocations
//! entirely after the first iteration: [`SpmmWorkspace::take`] hands out a
//! zeroed `DMat` backed by a recycled allocation and [`SpmmWorkspace::put`]
//! returns it once the iteration is done with it.

use kryst_dense::DMat;
use kryst_scalar::Scalar;

/// A pool of reusable column-major buffers for `n × p` multivectors.
///
/// `take` prefers the free buffer whose backing capacity already fits the
/// request, so steady-state solver iterations (fixed `n`, fixed block width
/// `p`) allocate nothing. Buffers are zero-filled on `take`, preserving the
/// exact semantics of a freshly allocated `DMat::zeros` — preconditioners
/// that accumulate into their output see the same bytes either way.
#[derive(Debug, Default)]
pub struct SpmmWorkspace<S> {
    free: Vec<Vec<S>>,
}

impl<S: Scalar> SpmmWorkspace<S> {
    /// An empty workspace (no buffers held).
    pub fn new() -> Self {
        Self { free: Vec::new() }
    }

    /// A zeroed `nrows × ncols` matrix, reusing a pooled allocation when one
    /// with sufficient capacity is available.
    pub fn take(&mut self, nrows: usize, ncols: usize) -> DMat<S> {
        let len = nrows * ncols;
        // Prefer the free buffer with the largest capacity (LIFO would churn
        // between differently-sized requests).
        let pick = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, v)| v.capacity() >= len)
            .map(|(i, _)| i)
            .next_back()
            .or_else(|| {
                if self.free.is_empty() {
                    None
                } else {
                    Some(self.free.len() - 1)
                }
            });
        let mut data = match pick {
            Some(i) => self.free.swap_remove(i),
            None => Vec::with_capacity(len),
        };
        data.clear();
        data.resize(len, S::zero());
        DMat::from_col_major(nrows, ncols, data)
    }

    /// Return a matrix's backing buffer to the pool for reuse.
    pub fn put(&mut self, m: DMat<S>) {
        self.free.push(m.into_vec());
    }

    /// Number of pooled free buffers (diagnostics/tests).
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

/// A best-fit buffer pool for preconditioner scratch space.
///
/// Unlike [`SpmmWorkspace`] (which serves one fixed `n × p` shape per solver
/// and picks the largest free buffer), a preconditioner apply cycles through
/// *many* sizes at once — one pair of vectors per AMG level, per-subdomain
/// gather buffers for Schwarz, smoother scratch — and the largest-capacity
/// policy would hand the coarsest level the finest level's buffer and then
/// grow a fresh one for the fine sweep. `take` here picks the *smallest*
/// free buffer whose capacity fits (best fit); only when nothing fits does
/// it grow the largest free buffer (or allocate). After one warm-up apply
/// the pool holds one buffer per distinct request and steady-state applies
/// allocate nothing.
#[derive(Debug, Default)]
pub struct PrecondWorkspace<S> {
    free: Vec<Vec<S>>,
}

impl<S: Scalar> PrecondWorkspace<S> {
    /// An empty workspace (no buffers held).
    pub fn new() -> Self {
        Self { free: Vec::new() }
    }

    /// A zeroed `nrows × ncols` matrix, reusing the best-fitting pooled
    /// allocation when one is available.
    pub fn take(&mut self, nrows: usize, ncols: usize) -> DMat<S> {
        let len = nrows * ncols;
        // Best fit: smallest capacity that still holds `len`.
        let pick = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, v)| v.capacity() >= len)
            .min_by_key(|(_, v)| v.capacity())
            .map(|(i, _)| i)
            .or_else(|| {
                // Nothing fits: grow the largest free buffer instead of
                // leaving it stranded below every future request.
                self.free
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, v)| v.capacity())
                    .map(|(i, _)| i)
            });
        let mut data = match pick {
            Some(i) => self.free.swap_remove(i),
            None => Vec::with_capacity(len),
        };
        data.clear();
        data.resize(len, S::zero());
        DMat::from_col_major(nrows, ncols, data)
    }

    /// Return a matrix's backing buffer to the pool for reuse.
    pub fn put(&mut self, m: DMat<S>) {
        self.free.push(m.into_vec());
    }

    /// Number of pooled free buffers (diagnostics/tests).
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_capacity() {
        let mut ws = SpmmWorkspace::<f64>::new();
        let a = ws.take(100, 4);
        let cap_ptr = a.as_slice().as_ptr();
        ws.put(a);
        assert_eq!(ws.pooled(), 1);
        let b = ws.take(100, 4);
        assert_eq!(b.as_slice().as_ptr(), cap_ptr, "allocation must be reused");
        assert!(b.as_slice().iter().all(|&x| x == 0.0), "buffer zeroed");
        assert_eq!(ws.pooled(), 0);
    }

    #[test]
    fn take_is_zeroed_after_dirty_use() {
        let mut ws = SpmmWorkspace::<f64>::new();
        let mut a = ws.take(8, 2);
        a.fill(3.5);
        ws.put(a);
        let b = ws.take(8, 2);
        assert!(b.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn shape_changes_reuse_when_capacity_fits() {
        let mut ws = SpmmWorkspace::<f64>::new();
        let a = ws.take(64, 8); // 512 elements
        ws.put(a);
        let b = ws.take(32, 4); // 128 elements — fits in the pooled buffer
        assert_eq!((b.nrows(), b.ncols()), (32, 4));
        ws.put(b);
        let c = ws.take(128, 8); // grows the (single) pooled buffer
        assert_eq!((c.nrows(), c.ncols()), (128, 8));
    }

    #[test]
    fn precond_best_fit_keeps_multi_size_pool_stable() {
        // Simulate a 3-level V-cycle: requests of 1000, 250, 60 elements.
        let mut ws = PrecondWorkspace::<f64>::new();
        let sizes = [(1000usize, 1usize), (250, 1), (60, 1)];
        // Warm-up: each take allocates; put everything back.
        let warm: Vec<_> = sizes.iter().map(|&(n, p)| ws.take(n, p)).collect();
        let ptrs: Vec<_> = warm.iter().map(|m| m.as_slice().as_ptr()).collect();
        for m in warm {
            ws.put(m);
        }
        assert_eq!(ws.pooled(), 3);
        // Steady state: the same sizes must come back from the same three
        // allocations (best fit pairs each request with its own buffer).
        let again: Vec<_> = sizes.iter().map(|&(n, p)| ws.take(n, p)).collect();
        let mut got: Vec<_> = again.iter().map(|m| m.as_slice().as_ptr()).collect();
        let mut want = ptrs.clone();
        got.sort();
        want.sort();
        assert_eq!(got, want, "steady-state takes must reuse pooled buffers");
        // And best fit specifically: the 60-element request must NOT have
        // been served by the 1000-element buffer.
        assert_eq!(again[0].as_slice().as_ptr(), ptrs[0]);
        assert_eq!(again[2].as_slice().as_ptr(), ptrs[2]);
        for m in again {
            ws.put(m);
        }
    }

    #[test]
    fn precond_grows_largest_when_nothing_fits() {
        let mut ws = PrecondWorkspace::<f64>::new();
        ws.put(ws_mat(16));
        ws.put(ws_mat(64));
        let big = ws.take(256, 1); // grows the 64-element buffer
        assert_eq!(ws.pooled(), 1);
        assert_eq!(ws.free[0].capacity(), 16);
        ws.put(big);
    }

    fn ws_mat(len: usize) -> DMat<f64> {
        DMat::from_col_major(len, 1, vec![0.0; len])
    }
}
