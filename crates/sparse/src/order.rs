//! Fill-reducing orderings: reverse Cuthill–McKee.
//!
//! The banded direct solver's efficiency hinges on a small bandwidth; RCM on
//! the symmetrized pattern is the classic choice for the stencil/FEM matrices
//! this workspace generates.

use crate::Csr;
use kryst_scalar::Scalar;

/// Bandwidth of a matrix: `max |i − j|` over stored entries.
pub fn bandwidth<S: Scalar>(a: &Csr<S>) -> usize {
    let mut bw = 0usize;
    for i in 0..a.nrows() {
        for &j in a.row_indices(i) {
            bw = bw.max(i.abs_diff(j));
        }
    }
    bw
}

/// Adjacency lists of the symmetrized pattern (no self loops).
fn sym_adjacency<S: Scalar>(a: &Csr<S>) -> Vec<Vec<usize>> {
    let n = a.nrows();
    let mut adj = vec![Vec::new(); n];
    for i in 0..n {
        for &j in a.row_indices(i) {
            if i != j {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    for l in &mut adj {
        l.sort_unstable();
        l.dedup();
    }
    adj
}

/// BFS levels from `start`; returns (levels, eccentricity, last-level node of
/// minimum degree).
fn bfs_levels(adj: &[Vec<usize>], start: usize) -> (Vec<i64>, usize, usize) {
    let n = adj.len();
    let mut level = vec![-1i64; n];
    let mut queue = std::collections::VecDeque::new();
    level[start] = 0;
    queue.push_back(start);
    let mut last = start;
    let mut ecc = 0usize;
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if level[v] < 0 {
                level[v] = level[u] + 1;
                ecc = ecc.max(level[v] as usize);
                queue.push_back(v);
                last = v;
            }
        }
    }
    // Prefer a minimum-degree node on the deepest level.
    let deepest = level[last];
    let mut best = last;
    for (u, &l) in level.iter().enumerate() {
        if l == deepest && adj[u].len() < adj[best].len() {
            best = u;
        }
    }
    (level, ecc, best)
}

/// George–Liu pseudo-peripheral node heuristic.
fn pseudo_peripheral(adj: &[Vec<usize>], seed: usize) -> usize {
    let mut x = seed;
    let (_, mut ecc, mut y) = bfs_levels(adj, x);
    for _ in 0..8 {
        let (_, ecc2, y2) = bfs_levels(adj, y);
        if ecc2 > ecc {
            x = y;
            y = y2;
            ecc = ecc2;
        } else {
            return y;
        }
    }
    let _ = x;
    y
}

/// Reverse Cuthill–McKee permutation.
///
/// Returns `perm` with the meaning: new index `k` holds old index `perm[k]`.
/// Disconnected components are handled by restarting from the lowest-degree
/// unvisited vertex.
pub fn rcm<S: Scalar>(a: &Csr<S>) -> Vec<usize> {
    let n = a.nrows();
    let adj = sym_adjacency(a);
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut by_degree: Vec<usize> = (0..n).collect();
    by_degree.sort_unstable_by_key(|&u| adj[u].len());
    let mut scan = 0;
    while order.len() < n {
        // Next unvisited vertex of minimum degree → pseudo-peripheral start.
        while visited[by_degree[scan]] {
            scan += 1;
        }
        let start = pseudo_peripheral(&adj, by_degree[scan]);
        let mut queue = std::collections::VecDeque::new();
        visited[start] = true;
        queue.push_back(start);
        let mut nbrs: Vec<usize> = Vec::new();
        while let Some(u) = queue.pop_front() {
            order.push(u);
            nbrs.clear();
            nbrs.extend(adj[u].iter().copied().filter(|&v| !visited[v]));
            nbrs.sort_unstable_by_key(|&v| adj[v].len());
            for &v in &nbrs {
                visited[v] = true;
                queue.push_back(v);
            }
        }
    }
    order.reverse();
    order
}

/// Apply a symmetric permutation: `B = A(perm, perm)` (B's row `k` is A's row
/// `perm[k]`).
pub fn permute_sym<S: Scalar>(a: &Csr<S>, perm: &[usize]) -> Csr<S> {
    let n = a.nrows();
    assert_eq!(perm.len(), n);
    let mut inv = vec![0usize; n];
    for (k, &p) in perm.iter().enumerate() {
        inv[p] = k;
    }
    let mut coo = crate::Coo::with_capacity(n, n, a.nnz());
    for (k, &p) in perm.iter().enumerate() {
        for (t, &c) in a.row_indices(p).iter().enumerate() {
            coo.push(k, inv[c], a.row_values(p)[t]);
        }
    }
    coo.to_csr()
}

/// Permute a vector: `out[k] = x[perm[k]]`.
pub fn permute_vec<S: Copy>(x: &[S], perm: &[usize]) -> Vec<S> {
    perm.iter().map(|&p| x[p]).collect()
}

/// Inverse-permute a vector: `out[perm[k]] = x[k]`.
pub fn unpermute_vec<S: Copy + Default>(x: &[S], perm: &[usize]) -> Vec<S> {
    let mut out = vec![S::default(); x.len()];
    for (k, &p) in perm.iter().enumerate() {
        out[p] = x[k];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    /// 2-D 5-point Laplacian with *natural* ordering scrambled so RCM has
    /// something to do.
    fn scrambled_grid(nx: usize, ny: usize) -> Csr<f64> {
        let n = nx * ny;
        // A deterministic scramble permutation.
        let mut scramble: Vec<usize> = (0..n).collect();
        for i in 0..n {
            let j = (i * 37 + 13) % n;
            scramble.swap(i, j);
        }
        let id = |x: usize, y: usize| scramble[y * nx + x];
        let mut c = Coo::new(n, n);
        for y in 0..ny {
            for x in 0..nx {
                let me = id(x, y);
                c.push(me, me, 4.0);
                if x > 0 {
                    c.push(me, id(x - 1, y), -1.0);
                }
                if x + 1 < nx {
                    c.push(me, id(x + 1, y), -1.0);
                }
                if y > 0 {
                    c.push(me, id(x, y - 1), -1.0);
                }
                if y + 1 < ny {
                    c.push(me, id(x, y + 1), -1.0);
                }
            }
        }
        c.to_csr()
    }

    #[test]
    fn rcm_reduces_bandwidth() {
        let a = scrambled_grid(12, 12);
        let before = bandwidth(&a);
        let perm = rcm(&a);
        let b = permute_sym(&a, &perm);
        let after = bandwidth(&b);
        assert!(after < before / 2, "bandwidth {before} → {after}");
        // For a 12-wide grid, RCM should reach O(nx) bandwidth.
        assert!(after <= 16, "after = {after}");
    }

    #[test]
    fn permutation_is_similarity() {
        let a = scrambled_grid(5, 4);
        let perm = rcm(&a);
        let b = permute_sym(&a, &perm);
        // Check entries: b[k,l] == a[perm[k], perm[l]]
        for k in 0..a.nrows() {
            for l in 0..a.nrows() {
                assert_eq!(b.get(k, l), a.get(perm[k], perm[l]));
            }
        }
    }

    #[test]
    fn vec_permutation_roundtrip() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let perm: Vec<usize> = (0..10).rev().collect();
        let y = permute_vec(&x, &perm);
        let z = unpermute_vec(&y, &perm);
        assert_eq!(x, z);
    }

    #[test]
    fn rcm_handles_disconnected_graphs() {
        // Two disjoint 3-cliques.
        let mut c = Coo::<f64>::new(6, 6);
        for base in [0, 3] {
            for i in 0..3 {
                for j in 0..3 {
                    c.push(base + i, base + j, if i == j { 2.0 } else { -1.0 });
                }
            }
        }
        let a = c.to_csr();
        let perm = rcm(&a);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }
}
