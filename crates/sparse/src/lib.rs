#![warn(missing_docs)]
//! Sparse linear algebra for the `kryst` workspace.
//!
//! * [`coo::Coo`] — triplet builder,
//! * [`csr::Csr`] — compressed sparse row storage with SpMV and the
//!   multi-right-hand-side **SpMM** kernel the paper's §V-B2 discusses
//!   (higher arithmetic intensity as `p` grows),
//! * [`lo::CsrLo`] — compact low-precision CSR (`u32` indices + demoted
//!   values) for memory-traffic-bound preconditioner applies,
//! * [`ops`] — CSR×CSR products and the Galerkin triple product `RAP`
//!   used by the smoothed-aggregation multigrid,
//! * [`order`] — reverse Cuthill–McKee bandwidth reduction,
//! * [`band`] — banded LU with partial pivoting and **blocked multi-RHS
//!   triangular solves**,
//! * [`direct`] — the sparse direct solver (RCM + banded LU), the workspace's
//!   stand-in for PARDISO (paper §V-B3, Fig. 6),
//! * [`partition`] — coordinate/graph partitioning with δ-layer overlap
//!   growth for the Schwarz preconditioners (stand-in for SCOTCH),
//! * [`split`] — interior/boundary row classification so SpMM on the
//!   interior overlaps the halo exchange,
//! * [`workspace`] — the [`workspace::SpmmWorkspace`] and
//!   [`workspace::PrecondWorkspace`] buffer pools that make per-iteration
//!   kernel and preconditioner calls allocation-free.

pub mod band;
pub mod coo;
pub mod csr;
pub mod direct;
pub mod lo;
pub mod ops;
pub mod order;
pub mod partition;
pub mod split;
pub mod workspace;

pub use coo::Coo;
pub use csr::Csr;
pub use direct::SparseDirect;
pub use lo::CsrLo;
pub use split::RowSplit;
pub use workspace::{PrecondWorkspace, SpmmWorkspace};
