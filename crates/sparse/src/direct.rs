//! Sparse direct solver: RCM reordering + banded LU.
//!
//! The workspace's stand-in for PARDISO (paper §V-B3). The factorization is
//! computed once; solves accept blocks of right-hand sides and exploit the
//! banded kernels' tile-blocked forward/backward substitution, reproducing
//! the multi-RHS efficiency behaviour of Fig. 6.

use crate::band::{BandLu, BandMat};
use crate::order;
use crate::Csr;
use kryst_dense::DMat;
use kryst_scalar::Scalar;

/// A factored sparse matrix ready for (multi-RHS) solves.
pub struct SparseDirect<S> {
    lu: BandLu<S>,
    perm: Vec<usize>,
    n: usize,
    bandwidth: usize,
}

impl<S: Scalar> SparseDirect<S> {
    /// Factor `a` (square). Applies RCM, packs the band, runs the banded LU.
    ///
    /// Returns `None` when the matrix is numerically singular.
    pub fn factor(a: &Csr<S>) -> Option<Self> {
        assert_eq!(a.nrows(), a.ncols(), "direct solver needs a square matrix");
        let n = a.nrows();
        let perm = order::rcm(a);
        let ap = order::permute_sym(a, &perm);
        let bw = order::bandwidth(&ap);
        let mut band = BandMat::zeros(n, bw, bw);
        for i in 0..n {
            for (k, &j) in ap.row_indices(i).iter().enumerate() {
                band.set(i, j, ap.row_values(i)[k]);
            }
        }
        let lu = BandLu::factor(band);
        if lu.is_singular() {
            return None;
        }
        Some(Self {
            lu,
            perm,
            n,
            bandwidth: bw,
        })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bandwidth after reordering (determines factor cost and memory).
    pub fn bandwidth(&self) -> usize {
        self.bandwidth
    }

    /// Solve `A·x = b` for one right-hand side.
    pub fn solve_one(&self, b: &[S]) -> Vec<S> {
        let mut pb = order::permute_vec(b, &self.perm);
        self.lu.solve_one(&mut pb);
        order::unpermute_vec(&pb, &self.perm)
    }

    /// Solve `A·X = B` for a block of right-hand sides with the given RHS
    /// tile width and rayon thread cap (`0` = default pool).
    pub fn solve_multi(&self, b: &DMat<S>, tile: usize, threads: usize) -> DMat<S> {
        assert_eq!(b.nrows(), self.n);
        let p = b.ncols();
        let mut pb = DMat::zeros(self.n, p);
        for c in 0..p {
            let src = b.col(c);
            let dst = pb.col_mut(c);
            for (k, &pi) in self.perm.iter().enumerate() {
                dst[k] = src[pi];
            }
        }
        self.lu.solve_multi(&mut pb, tile, threads);
        let mut out = DMat::zeros(self.n, p);
        for c in 0..p {
            let src = pb.col(c);
            let dst = out.col_mut(c);
            for (k, &pi) in self.perm.iter().enumerate() {
                dst[pi] = src[k];
            }
        }
        out
    }

    /// In-place block solve with default tiling (width 8).
    pub fn solve_in_place(&self, b: &mut DMat<S>) {
        let out = self.solve_multi(b, 8, 1);
        b.copy_from(&out);
    }

    /// Allocation-free in-place block solve: permutes `b` into `scratch`
    /// (`n × p`, fully overwritten), runs the in-place banded solve there,
    /// and unpermutes back into `b`. Bit-identical to [`solve_multi`]
    /// (same permute → banded solve → unpermute element order).
    ///
    /// [`solve_multi`]: SparseDirect::solve_multi
    pub fn solve_in_place_ws(
        &self,
        b: &mut DMat<S>,
        scratch: &mut DMat<S>,
        tile: usize,
        threads: usize,
    ) {
        assert_eq!(b.nrows(), self.n);
        let p = b.ncols();
        assert_eq!((scratch.nrows(), scratch.ncols()), (self.n, p));
        for c in 0..p {
            let src = b.col(c);
            let dst = scratch.col_mut(c);
            for (k, &pi) in self.perm.iter().enumerate() {
                dst[k] = src[pi];
            }
        }
        self.lu.solve_multi(scratch, tile, threads);
        for c in 0..p {
            let src = scratch.col(c);
            let dst = b.col_mut(c);
            for (k, &pi) in self.perm.iter().enumerate() {
                dst[pi] = src[k];
            }
        }
    }

    /// Allocation-free variant of [`SparseDirect::solve_multi`]: permutes
    /// `b` into `scratch`, runs the in-place banded solve there, and
    /// unpermutes into `out` (both must be `n × p`). Bit-identical to
    /// `solve_multi`.
    pub fn solve_multi_into(
        &self,
        b: &DMat<S>,
        out: &mut DMat<S>,
        scratch: &mut DMat<S>,
        tile: usize,
        threads: usize,
    ) {
        assert_eq!(b.nrows(), self.n);
        let p = b.ncols();
        assert_eq!((out.nrows(), out.ncols()), (self.n, p));
        assert_eq!((scratch.nrows(), scratch.ncols()), (self.n, p));
        for c in 0..p {
            let src = b.col(c);
            let dst = scratch.col_mut(c);
            for (k, &pi) in self.perm.iter().enumerate() {
                dst[k] = src[pi];
            }
        }
        self.lu.solve_multi(scratch, tile, threads);
        for c in 0..p {
            let src = scratch.col(c);
            let dst = out.col_mut(c);
            for (k, &pi) in self.perm.iter().enumerate() {
                dst[pi] = src[k];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;
    use kryst_scalar::C64;

    fn laplace2d(nx: usize, ny: usize) -> Csr<f64> {
        let n = nx * ny;
        let id = |x: usize, y: usize| y * nx + x;
        let mut c = Coo::new(n, n);
        for y in 0..ny {
            for x in 0..nx {
                let me = id(x, y);
                c.push(me, me, 4.0);
                if x > 0 {
                    c.push(me, id(x - 1, y), -1.0);
                }
                if x + 1 < nx {
                    c.push(me, id(x + 1, y), -1.0);
                }
                if y > 0 {
                    c.push(me, id(x, y - 1), -1.0);
                }
                if y + 1 < ny {
                    c.push(me, id(x, y + 1), -1.0);
                }
            }
        }
        c.to_csr()
    }

    #[test]
    fn direct_solves_laplacian() {
        let a = laplace2d(9, 7);
        let n = a.nrows();
        let f = SparseDirect::factor(&a).expect("nonsingular");
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x_true, &mut b);
        let x = f.solve_one(&b);
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn direct_multi_rhs_consistent() {
        let a = laplace2d(8, 8);
        let n = a.nrows();
        let f = SparseDirect::factor(&a).unwrap();
        let x_true = DMat::from_fn(n, 5, |i, j| ((i * 3 + j * 11) % 17) as f64 - 8.0);
        let b = a.apply(&x_true);
        for (tile, threads) in [(1, 1), (4, 1), (2, 0), (8, 2)] {
            let x = f.solve_multi(&b, tile, threads);
            for i in 0..n {
                for j in 0..5 {
                    assert!(
                        (x[(i, j)] - x_true[(i, j)]).abs() < 1e-9,
                        "tile={tile} threads={threads} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn direct_complex_symmetric_indefinite() {
        // Shifted complex Laplacian: A = L − (σ² + iσ)·I, Maxwell-like.
        let l = laplace2d(6, 6);
        let n = l.nrows();
        let mut c = Coo::<C64>::new(n, n);
        for i in 0..n {
            for (k, &j) in l.row_indices(i).iter().enumerate() {
                c.push(i, j, C64::from_parts(l.row_values(i)[k], 0.0));
            }
            c.push(i, i, C64::from_parts(-1.3, -0.7));
        }
        let a = c.to_csr();
        let f = SparseDirect::factor(&a).expect("nonsingular");
        let x_true: Vec<C64> = (0..n)
            .map(|i| C64::from_parts(i as f64 * 0.1, -1.0))
            .collect();
        let mut b = vec![C64::zero(); n];
        a.spmv(&x_true, &mut b);
        let x = f.solve_one(&b);
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn singular_matrix_rejected() {
        // Pure Neumann Laplacian (constant nullspace): row sums zero.
        let mut c = Coo::<f64>::new(4, 4);
        for i in 0..4 {
            for j in 0..4 {
                c.push(i, j, if i == j { 3.0 } else { -1.0 });
            }
        }
        // Subtract to make it exactly singular: rows sum to 0 already (3 - 3·1 = 0).
        let a = c.to_csr();
        assert!(SparseDirect::factor(&a).is_none());
    }

    #[test]
    fn rcm_bandwidth_is_small_for_grids() {
        let a = laplace2d(20, 20);
        let f = SparseDirect::factor(&a).unwrap();
        assert!(f.bandwidth() <= 24, "bandwidth = {}", f.bandwidth());
    }
}
