//! Compressed sparse row matrix.

use kryst_dense::DMat;
use kryst_rt::par::{for_each_chunk_mut, for_each_range, SendPtr};
use kryst_scalar::{Real, Scalar};

/// Compressed sparse row matrix with sorted column indices per row.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr<S> {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<S>,
}

/// Row count below which SpMV/SpMM stay single-threaded.
const PAR_ROWS: usize = 4096;

/// Column-block width for SpMM register accumulators: each row's nonzeros
/// are streamed once per block of this many right-hand sides.
const SPMM_COLS: usize = 8;

impl<S: Scalar> Csr<S> {
    /// Build from raw CSR arrays (validated).
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        data: Vec<S>,
    ) -> Self {
        assert_eq!(indptr.len(), nrows + 1);
        assert_eq!(indices.len(), data.len());
        assert_eq!(*indptr.last().unwrap(), indices.len());
        debug_assert!(
            indices.iter().all(|&c| c < ncols),
            "column index out of range"
        );
        Self {
            nrows,
            ncols,
            indptr,
            indices,
            data,
        }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        Self::from_raw(n, n, (0..=n).collect(), (0..n).collect(), vec![S::one(); n])
    }

    /// Diagonal matrix from a vector of entries.
    pub fn from_diag(d: &[S]) -> Self {
        let n = d.len();
        Self::from_raw(n, n, (0..=n).collect(), (0..n).collect(), d.to_vec())
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Row pointer array.
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column indices of row `i`.
    pub fn row_indices(&self, i: usize) -> &[usize] {
        &self.indices[self.indptr[i]..self.indptr[i + 1]]
    }

    /// Values of row `i`.
    pub fn row_values(&self, i: usize) -> &[S] {
        &self.data[self.indptr[i]..self.indptr[i + 1]]
    }

    /// Mutable values of row `i`.
    pub fn row_values_mut(&mut self, i: usize) -> &mut [S] {
        &mut self.data[self.indptr[i]..self.indptr[i + 1]]
    }

    /// Entry `(i, j)` (zero if not stored) — O(log nnz_row).
    pub fn get(&self, i: usize, j: usize) -> S {
        match self.row_indices(i).binary_search(&j) {
            Ok(k) => self.row_values(i)[k],
            Err(_) => S::zero(),
        }
    }

    /// The diagonal as a vector (missing entries are zero). One linear scan
    /// per row — column indices are sorted, so the scan stops at the first
    /// index ≥ `i` instead of binary-searching the whole row.
    pub fn diag(&self) -> Vec<S> {
        let d = self.nrows.min(self.ncols);
        let mut out = vec![S::zero(); d];
        for (i, oi) in out.iter_mut().enumerate() {
            for k in self.indptr[i]..self.indptr[i + 1] {
                let c = self.indices[k];
                if c >= i {
                    if c == i {
                        *oi = self.data[k];
                    }
                    break;
                }
            }
        }
        out
    }

    /// `y ⟵ A·x` for a single vector.
    pub fn spmv(&self, x: &[S], y: &mut [S]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        let kernel = |i: usize, yi: &mut S| {
            let mut acc = S::zero();
            let lo = self.indptr[i];
            let hi = self.indptr[i + 1];
            for k in lo..hi {
                acc += self.data[k] * x[self.indices[k]];
            }
            *yi = acc;
        };
        if self.nrows >= PAR_ROWS {
            for_each_chunk_mut(y, 1, 0, |i, yi| kernel(i, &mut yi[0]));
        } else {
            y.iter_mut().enumerate().for_each(|(i, yi)| kernel(i, yi));
        }
    }

    /// `Y ⟵ A·X` for a block of `p` vectors (sparse matrix–dense matrix
    /// product). The row's nonzeros are read once per column block of
    /// [`SPMM_COLS`] right-hand sides and streamed across the block through
    /// register accumulators — the arithmetic-intensity win of §V-B2 —
    /// writing the column-major output directly. No temporaries, no
    /// allocation: reusing `y` across solver iterations (see
    /// `SpmmWorkspace`) makes the whole product allocation-free.
    pub fn spmm(&self, x: &DMat<S>, y: &mut DMat<S>) {
        assert_eq!(x.nrows(), self.ncols);
        assert_eq!(y.nrows(), self.nrows);
        assert_eq!(x.ncols(), y.ncols());
        let p = x.ncols();
        if p == 1 {
            let (xs, ys) = (x.col(0), y.col_mut(0));
            // Reborrow through raw split to satisfy the borrow checker.
            self.spmv(xs, ys);
            return;
        }
        let n = self.nrows;
        let xn = x.nrows();
        let xd = x.as_slice();
        let yp = SendPtr::new(y.as_mut_slice().as_mut_ptr());
        let band = |r0: usize, r1: usize| {
            let mut jb = 0;
            while jb < p {
                let nb = SPMM_COLS.min(p - jb);
                for i in r0..r1 {
                    let lo = self.indptr[i];
                    let hi = self.indptr[i + 1];
                    let mut acc = [S::zero(); SPMM_COLS];
                    if nb == SPMM_COLS {
                        // Full column block: fixed-width inner loop the
                        // compiler can unroll/vectorize.
                        for k in lo..hi {
                            let a = self.data[k];
                            let c = self.indices[k];
                            for l in 0..SPMM_COLS {
                                acc[l] += a * xd[(jb + l) * xn + c];
                            }
                        }
                    } else {
                        for k in lo..hi {
                            let a = self.data[k];
                            let c = self.indices[k];
                            for (l, al) in acc.iter_mut().enumerate().take(nb) {
                                *al += a * xd[(jb + l) * xn + c];
                            }
                        }
                    }
                    for (l, &al) in acc.iter().enumerate().take(nb) {
                        // SAFETY: each (row, column) output element is
                        // written exactly once, and parallel parts own
                        // disjoint row bands.
                        unsafe { *yp.ptr().add((jb + l) * n + i) = al };
                    }
                }
                jb += nb;
            }
        };
        if n >= PAR_ROWS {
            for_each_range(n, 0, band);
        } else {
            band(0, n);
        }
    }

    /// `Y(rows, :) ⟵ A(rows, :)·X` — the SpMM kernel restricted to a row
    /// subset; rows outside the set are left untouched. The per-row
    /// accumulation is *identical* to [`Csr::spmm`] (same column-block
    /// register kernel, same nonzero order), so computing the interior rows
    /// while a halo exchange is in flight and the boundary rows afterwards
    /// reproduces the unsplit product bit for bit.
    pub fn spmm_rows(&self, x: &DMat<S>, y: &mut DMat<S>, rows: &[usize]) {
        assert_eq!(x.nrows(), self.ncols);
        assert_eq!(y.nrows(), self.nrows);
        assert_eq!(x.ncols(), y.ncols());
        debug_assert!(rows.iter().all(|&i| i < self.nrows), "row out of range");
        let p = x.ncols();
        let n = self.nrows;
        if p == 1 {
            // Same scalar accumulation as `spmv`.
            let xs = x.col(0);
            let ys = y.col_mut(0);
            let kernel = |i: usize| {
                let mut acc = S::zero();
                for k in self.indptr[i]..self.indptr[i + 1] {
                    acc += self.data[k] * xs[self.indices[k]];
                }
                acc
            };
            if rows.len() >= PAR_ROWS {
                let yp = SendPtr::new(ys.as_mut_ptr());
                for_each_range(rows.len(), 0, |r0, r1| {
                    for &i in &rows[r0..r1] {
                        // SAFETY: `rows` indexes distinct rows; parallel
                        // parts own disjoint slices of it.
                        unsafe { *yp.ptr().add(i) = kernel(i) };
                    }
                });
            } else {
                for &i in rows {
                    ys[i] = kernel(i);
                }
            }
            return;
        }
        let xn = x.nrows();
        let xd = x.as_slice();
        let yp = SendPtr::new(y.as_mut_slice().as_mut_ptr());
        let band = |r0: usize, r1: usize| {
            let mut jb = 0;
            while jb < p {
                let nb = SPMM_COLS.min(p - jb);
                for &i in &rows[r0..r1] {
                    let lo = self.indptr[i];
                    let hi = self.indptr[i + 1];
                    let mut acc = [S::zero(); SPMM_COLS];
                    if nb == SPMM_COLS {
                        for k in lo..hi {
                            let a = self.data[k];
                            let c = self.indices[k];
                            for l in 0..SPMM_COLS {
                                acc[l] += a * xd[(jb + l) * xn + c];
                            }
                        }
                    } else {
                        for k in lo..hi {
                            let a = self.data[k];
                            let c = self.indices[k];
                            for (l, al) in acc.iter_mut().enumerate().take(nb) {
                                *al += a * xd[(jb + l) * xn + c];
                            }
                        }
                    }
                    for (l, &al) in acc.iter().enumerate().take(nb) {
                        // SAFETY: distinct rows, disjoint parallel parts —
                        // each output element written exactly once.
                        unsafe { *yp.ptr().add((jb + l) * n + i) = al };
                    }
                }
                jb += nb;
            }
        };
        if rows.len() >= PAR_ROWS {
            for_each_range(rows.len(), 0, band);
        } else {
            band(0, rows.len());
        }
    }

    /// Convenience: allocate and return `A·X`.
    pub fn apply(&self, x: &DMat<S>) -> DMat<S> {
        let mut y = DMat::zeros(self.nrows, x.ncols());
        self.spmm(x, &mut y);
        y
    }

    /// (Conjugate-free) transpose.
    pub fn transpose(&self) -> Self {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.indices {
            counts[c + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let mut indices = vec![0usize; self.nnz()];
        let mut data = vec![S::zero(); self.nnz()];
        let mut next = counts.clone();
        for i in 0..self.nrows {
            for k in self.indptr[i]..self.indptr[i + 1] {
                let c = self.indices[k];
                indices[next[c]] = i;
                data[next[c]] = self.data[k];
                next[c] += 1;
            }
        }
        Self::from_raw(self.ncols, self.nrows, counts, indices, data)
    }

    /// Extract the principal submatrix on the index set `rows` (which also
    /// selects columns): `A(rows, rows)`. `rows` need not be sorted; the
    /// result uses the local ordering of `rows`. Used to form subdomain
    /// operators `R_i·A·R_iᵀ` for Schwarz methods.
    pub fn principal_submatrix(&self, rows: &[usize]) -> Self {
        let mut global_to_local = vec![usize::MAX; self.ncols];
        for (l, &g) in rows.iter().enumerate() {
            global_to_local[g] = l;
        }
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        indptr.push(0);
        let mut rowbuf: Vec<(usize, S)> = Vec::new();
        for &g in rows {
            rowbuf.clear();
            for k in self.indptr[g]..self.indptr[g + 1] {
                let lc = global_to_local[self.indices[k]];
                if lc != usize::MAX {
                    rowbuf.push((lc, self.data[k]));
                }
            }
            rowbuf.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &rowbuf {
                indices.push(c);
                data.push(v);
            }
            indptr.push(indices.len());
        }
        Self::from_raw(rows.len(), rows.len(), indptr, indices, data)
    }

    /// `A + α·I` (square matrices).
    pub fn shift_diag(&self, alpha: S) -> Self {
        assert_eq!(self.nrows, self.ncols);
        let mut coo = crate::Coo::with_capacity(self.nrows, self.ncols, self.nnz() + self.nrows);
        for i in 0..self.nrows {
            for (k, &c) in self.row_indices(i).iter().enumerate() {
                coo.push(i, c, self.row_values(i)[k]);
            }
            coo.push(i, i, alpha);
        }
        coo.to_csr()
    }

    /// Infinity norm (max absolute row sum).
    pub fn inf_norm(&self) -> S::Real {
        let mut best = S::Real::zero();
        for i in 0..self.nrows {
            let mut acc = S::Real::zero();
            for &v in self.row_values(i) {
                acc += v.abs();
            }
            best = best.max(acc);
        }
        best
    }

    /// Check structural symmetry of the sparsity pattern.
    pub fn is_pattern_symmetric(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        self.indptr == t.indptr && self.indices == t.indices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn small() -> Csr<f64> {
        // [2 -1 0; -1 2 -1; 0 -1 2]
        let mut c = Coo::new(3, 3);
        for i in 0..3 {
            c.push(i, i, 2.0);
            if i > 0 {
                c.push(i, i - 1, -1.0);
            }
            if i < 2 {
                c.push(i, i + 1, -1.0);
            }
        }
        c.to_csr()
    }

    #[test]
    fn spmv_matches_dense() {
        let a = small();
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        a.spmv(&x, &mut y);
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
    }

    #[test]
    fn spmm_matches_repeated_spmv() {
        let a = small();
        let x = DMat::from_fn(3, 4, |i, j| (i * 4 + j) as f64 - 5.0);
        let y = a.apply(&x);
        for j in 0..4 {
            let xj: Vec<f64> = x.col(j).to_vec();
            let mut yj = vec![0.0; 3];
            a.spmv(&xj, &mut yj);
            for i in 0..3 {
                assert!((y[(i, j)] - yj[i]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let mut c = Coo::<f64>::new(3, 4);
        c.push(0, 1, 1.0);
        c.push(0, 3, 2.0);
        c.push(2, 0, 3.0);
        let a = c.to_csr();
        let t = a.transpose();
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.get(1, 0), 1.0);
        assert_eq!(t.get(3, 0), 2.0);
        assert_eq!(t.get(0, 2), 3.0);
        let tt = t.transpose();
        assert_eq!(tt, a);
    }

    #[test]
    fn principal_submatrix_local_ordering() {
        let a = small();
        let sub = a.principal_submatrix(&[2, 0]);
        // local 0 = global 2, local 1 = global 0. No coupling between 0 and 2.
        assert_eq!(sub.get(0, 0), 2.0);
        assert_eq!(sub.get(1, 1), 2.0);
        assert_eq!(sub.get(0, 1), 0.0);
        assert_eq!(sub.nnz(), 2);
    }

    #[test]
    fn shift_and_norms() {
        let a = small().shift_diag(3.0);
        assert_eq!(a.get(1, 1), 5.0);
        assert_eq!(small().inf_norm(), 4.0);
        assert!(small().is_pattern_symmetric());
    }

    #[test]
    fn diag_extraction() {
        assert_eq!(small().diag(), vec![2.0, 2.0, 2.0]);
    }
}
