//! Coordinate (triplet) sparse-matrix builder.

use crate::Csr;
use kryst_scalar::Scalar;

/// Triplet accumulator: duplicates are summed on conversion, which is the
/// natural interface for finite-element assembly (elasticity, Maxwell edge
/// stencils) where element contributions overlap.
#[derive(Clone, Debug)]
pub struct Coo<S> {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<S>,
}

impl<S: Scalar> Coo<S> {
    /// Empty builder with the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Builder with a capacity hint (number of expected triplets).
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        Self {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (before duplicate merging).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Add `v` at `(i, j)`; duplicates accumulate.
    #[inline]
    pub fn push(&mut self, i: usize, j: usize, v: S) {
        debug_assert!(i < self.nrows && j < self.ncols, "Coo::push out of bounds");
        if v == S::zero() {
            return;
        }
        self.rows.push(i);
        self.cols.push(j);
        self.vals.push(v);
    }

    /// Convert to CSR, summing duplicates and sorting column indices per row.
    pub fn to_csr(&self) -> Csr<S> {
        // Counting sort by row.
        let mut counts = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            counts[r + 1] += 1;
        }
        for i in 0..self.nrows {
            counts[i + 1] += counts[i];
        }
        let mut order = vec![0usize; self.nnz()];
        let mut next = counts.clone();
        for (t, &r) in self.rows.iter().enumerate() {
            order[next[r]] = t;
            next[r] += 1;
        }
        // Per-row: sort by column, merge duplicates.
        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::with_capacity(self.nnz());
        let mut data = Vec::with_capacity(self.nnz());
        indptr.push(0);
        let mut rowbuf: Vec<(usize, S)> = Vec::new();
        for r in 0..self.nrows {
            rowbuf.clear();
            for &t in &order[counts[r]..counts[r + 1]] {
                rowbuf.push((self.cols[t], self.vals[t]));
            }
            rowbuf.sort_unstable_by_key(|&(c, _)| c);
            let mut k = 0;
            while k < rowbuf.len() {
                let c = rowbuf[k].0;
                let mut v = rowbuf[k].1;
                k += 1;
                while k < rowbuf.len() && rowbuf[k].0 == c {
                    v += rowbuf[k].1;
                    k += 1;
                }
                if v != S::zero() {
                    indices.push(c);
                    data.push(v);
                }
            }
            indptr.push(indices.len());
        }
        Csr::from_raw(self.nrows, self.ncols, indptr, indices, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_accumulate() {
        let mut c = Coo::<f64>::new(3, 3);
        c.push(0, 0, 1.0);
        c.push(0, 0, 2.0);
        c.push(2, 1, -1.0);
        c.push(1, 2, 4.0);
        let m = c.to_csr();
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(2, 1), -1.0);
        assert_eq!(m.get(1, 2), 4.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn zero_entries_dropped() {
        let mut c = Coo::<f64>::new(2, 2);
        c.push(0, 0, 0.0);
        c.push(1, 1, 5.0);
        c.push(1, 1, -5.0);
        let m = c.to_csr();
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn columns_sorted() {
        let mut c = Coo::<f64>::new(1, 5);
        c.push(0, 4, 1.0);
        c.push(0, 0, 2.0);
        c.push(0, 2, 3.0);
        let m = c.to_csr();
        assert_eq!(m.row_indices(0), &[0, 2, 4]);
    }
}
