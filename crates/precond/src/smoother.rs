//! Fixed-iteration inner Krylov smoothers.
//!
//! The paper deliberately uses `-mg_levels_ksp_type gmres` / `cg` "to make
//! the multigrid cycles nonlinear" (§IV-B/C): an inner Krylov iteration is a
//! *different* linear operator for every input, so the outer method must be
//! flexible (FGMRES / FGCRO-DR). These smoothers are compact, fixed-step,
//! unrestarted implementations — deliberately separate from the full solvers
//! in `kryst-core`, mirroring how PETSc's smoothers are distinct KSP objects.

use kryst_dense::{blas, gs::OrthScheme, qr::IncrementalQr, DMat};
use kryst_scalar::{Real, Scalar};
use kryst_sparse::Csr;

/// Run `iters` unpreconditioned GMRES steps on `A·z = r` per column,
/// starting from zero, writing the result into `z`. No restarts, no
/// convergence test — a smoother, not a solver.
pub fn gmres_smooth<S: Scalar>(a: &Csr<S>, r: &DMat<S>, z: &mut DMat<S>, iters: usize) {
    let n = a.nrows();
    let p = r.ncols();
    z.set_zero();
    if iters == 0 {
        return;
    }
    // Column-at-a-time: smoother iteration counts are tiny (1–4).
    for col in 0..p {
        let r0 = DMat::from_col_major(n, 1, r.col(col).to_vec());
        let beta = r0.col_norm(0);
        if beta <= S::Real::epsilon() {
            continue;
        }
        let mut v = DMat::zeros(n, iters + 1);
        let inv = S::one() / S::from_real(beta);
        for (d, s) in v.col_mut(0).iter_mut().zip(r0.col(0)) {
            *d = *s * inv;
        }
        let mut qr = IncrementalQr::new(iters, 1);
        let mut s1 = DMat::zeros(1, 1);
        s1[(0, 0)] = S::from_real(beta);
        qr.reset(&s1);
        let mut actual = 0;
        for j in 0..iters {
            let vj = DMat::from_col_major(n, 1, v.col(j).to_vec());
            let mut w = a.apply(&vj);
            let coeffs = kryst_dense::gs::orthogonalize_block(&v, j + 1, &mut w, OrthScheme::Mgs);
            let mut hcol = DMat::zeros(j + 2, 1);
            for i in 0..=j {
                hcol[(i, 0)] = coeffs.coeffs[(i, 0)];
            }
            hcol[(j + 1, 0)] = coeffs.r[(0, 0)];
            qr.push_block(&hcol);
            actual = j + 1;
            if coeffs.r[(0, 0)].abs() <= S::Real::epsilon() {
                break; // lucky breakdown: exact solution in the space
            }
            v.col_mut(j + 1).copy_from_slice(w.col(0));
        }
        let y = qr.solve_y();
        let vm = v.cols(0, actual);
        let yv = y.block(0, 0, actual, 1);
        let x = blas::matmul(&vm, blas::Op::None, &yv, blas::Op::None);
        z.col_mut(col).copy_from_slice(x.col(0));
    }
}

/// Run `iters` CG steps on `A·z = r` per column from zero (SPD `A`).
pub fn cg_smooth<S: Scalar>(a: &Csr<S>, r: &DMat<S>, z: &mut DMat<S>, iters: usize) {
    let n = a.nrows();
    let p = r.ncols();
    z.set_zero();
    for col in 0..p {
        let mut res = r.col(col).to_vec();
        let mut d = res.clone();
        let mut x = vec![S::zero(); n];
        let mut ad = vec![S::zero(); n];
        let mut rr: S = res.iter().map(|&v| v.conj() * v).sum();
        for _ in 0..iters {
            if rr.abs() <= S::Real::epsilon() {
                break;
            }
            a.spmv(&d, &mut ad);
            let dad: S = d.iter().zip(&ad).map(|(&di, &adi)| di.conj() * adi).sum();
            if dad == S::zero() {
                break;
            }
            let alpha = rr / dad;
            for i in 0..n {
                x[i] += alpha * d[i];
                res[i] -= alpha * ad[i];
            }
            let rr_new: S = res.iter().map(|&v| v.conj() * v).sum();
            let beta = rr_new / rr;
            for i in 0..n {
                d[i] = res[i] + beta * d[i];
            }
            rr = rr_new;
        }
        z.col_mut(col).copy_from_slice(&x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kryst_sparse::Coo;

    fn laplace1d(n: usize) -> Csr<f64> {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i > 0 {
                c.push(i, i - 1, -1.0);
                c.push(i - 1, i, -1.0);
            }
        }
        c.to_csr()
    }

    fn residual(a: &Csr<f64>, b: &DMat<f64>, x: &DMat<f64>) -> f64 {
        let mut r = a.apply(x);
        r.axpy(-1.0, b);
        r.fro_norm()
    }

    #[test]
    fn gmres_smoother_reduces_residual_monotonically() {
        let a = laplace1d(40);
        let b = DMat::from_fn(40, 2, |i, j| ((i * 3 + j) % 7) as f64 - 3.0);
        let mut prev = b.fro_norm();
        for iters in [1, 3, 6] {
            let mut z = DMat::zeros(40, 2);
            gmres_smooth(&a, &b, &mut z, iters);
            let r = residual(&a, &b, &z);
            assert!(r < prev, "iters={iters}: {r} !< {prev}");
            prev = r;
        }
    }

    #[test]
    fn gmres_smoother_exact_in_n_steps_for_small_system() {
        let a = laplace1d(6);
        let b = DMat::from_fn(6, 1, |i, _| 1.0 + i as f64);
        let mut z = DMat::zeros(6, 1);
        gmres_smooth(&a, &b, &mut z, 6);
        assert!(residual(&a, &b, &z) < 1e-10);
    }

    #[test]
    fn cg_smoother_matches_gmres_direction() {
        let a = laplace1d(25);
        let b = DMat::from_fn(25, 1, |i, _| ((i % 4) as f64) - 1.5);
        let mut zg = DMat::zeros(25, 1);
        let mut zc = DMat::zeros(25, 1);
        gmres_smooth(&a, &b, &mut zg, 4);
        cg_smooth(&a, &b, &mut zc, 4);
        // Both minimize over the same Krylov space in different norms:
        // residuals must both drop substantially.
        let rg = residual(&a, &b, &zg);
        let rc = residual(&a, &b, &zc);
        let r0 = b.fro_norm();
        assert!(rg < 0.6 * r0);
        assert!(rc < 0.6 * r0);
    }

    #[test]
    fn smoother_is_nonlinear() {
        // GMRES(s) is NOT linear: M(r1 + r2) ≠ M(r1) + M(r2) in general.
        let a = laplace1d(20);
        // Interacting right-hand sides (overlapping Krylov supports): for
        // disjoint far-apart impulses the minimizations decouple and GMRES
        // accidentally acts linearly, so use adjacent impulses.
        let r1 = DMat::from_fn(20, 1, |i, _| if i == 3 { 1.0 } else { 0.0 });
        let r2 = DMat::from_fn(20, 1, |i, _| if i == 4 { 1.0 } else { 0.0 });
        let mut sum = r1.clone();
        sum.axpy(1.0, &r2);
        let mut z1 = DMat::zeros(20, 1);
        let mut z2 = DMat::zeros(20, 1);
        let mut zs = DMat::zeros(20, 1);
        gmres_smooth(&a, &r1, &mut z1, 2);
        gmres_smooth(&a, &r2, &mut z2, 2);
        gmres_smooth(&a, &sum, &mut zs, 2);
        z1.axpy(1.0, &z2);
        z1.axpy(-1.0, &zs);
        assert!(z1.fro_norm() > 1e-8, "inner GMRES unexpectedly linear");
    }
}
