//! One-level overlapping Schwarz preconditioners: ASM, RAS, ORAS.
//!
//! Implements the paper's eq. (6),
//! `M⁻¹ = Σ_i R_iᵀ·D_i·B_i⁻¹·R_i`, where the overlapping decomposition comes
//! from [`kryst_sparse::partition`] and each local operator is factored once
//! with the sparse direct solver (multi-RHS solves then amortize the factor
//! — the §V-B3 observation that motivates block methods).
//!
//! Variants:
//! * **ASM** — `B_i = R_i·A·R_iᵀ`, `D_i = I` (additive Schwarz),
//! * **RAS** — same `B_i`, restricted partition of unity (Cai & Sarkis),
//! * **ORAS** — restricted + *optimized transmission conditions*: the local
//!   operators get an impedance (Robin) modification `+i·η` on interface
//!   rows, the algebraic emulation of the optimized boundary conditions the
//!   paper uses for Maxwell (see DESIGN.md).

use kryst_dense::DMat;
use kryst_obs::{Event, PrecondApplyEvent, Recorder};
use kryst_par::{CommStats, PrecondOp, PrecondPrecision};
use kryst_rt::par::{for_each_range, map_vec};
use kryst_scalar::{Demote, Scalar};
use kryst_sparse::partition::{
    grow_overlap, partition_of_unity, restricted_partition_of_unity, Partition,
};
use kryst_sparse::{Csr, SparseDirect};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Schwarz flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchwarzVariant {
    /// Additive Schwarz (symmetric, no partition of unity).
    Asm,
    /// Restricted additive Schwarz.
    Ras,
    /// Optimized restricted additive Schwarz (impedance interface
    /// conditions; intended for complex/indefinite problems).
    Oras,
}

/// Construction options.
#[derive(Debug, Clone, Copy)]
pub struct SchwarzOpts {
    /// Variant.
    pub variant: SchwarzVariant,
    /// Overlap width δ (graph layers).
    pub overlap: usize,
    /// Impedance coefficient η for ORAS interface conditions (ignored by
    /// ASM/RAS; for real scalars the imaginary part vanishes and ORAS
    /// degenerates to RAS).
    pub impedance: f64,
}

impl Default for SchwarzOpts {
    fn default() -> Self {
        Self {
            variant: SchwarzVariant::Ras,
            overlap: 1,
            impedance: 0.0,
        }
    }
}

struct Subdomain<S: Demote> {
    /// Global indices of the overlapping set.
    set: Vec<usize>,
    /// Partition-of-unity weights aligned with `set`.
    weights: Vec<f64>,
    solver: SubSolver<S>,
}

/// A factored subdomain operator at the chosen storage precision. Each
/// variant carries its persistent `(local, permuted-scratch)` buffers for
/// the gathered RHS and the in-place banded solve; they are allocated
/// lazily on the first apply (and again only if the block width changes),
/// so steady-state applies are allocation-free. One mutex per subdomain:
/// the parallel sweep assigns each subdomain to exactly one worker, so
/// locks never contend.
#[allow(clippy::type_complexity)]
enum SubSolver<S: Demote> {
    Full(SparseDirect<S>, Mutex<(DMat<S>, DMat<S>)>),
    /// Banded factors in `S::Lo`: the gather demotes, the triangular solve
    /// runs entirely in low precision, the weighted scatter promotes.
    Low(SparseDirect<S::Lo>, Mutex<(DMat<S::Lo>, DMat<S::Lo>)>),
}

impl<S: Demote> SubSolver<S> {
    fn n(&self) -> usize {
        match self {
            SubSolver::Full(s, _) => s.n(),
            SubSolver::Low(s, _) => s.n(),
        }
    }
    fn bandwidth(&self) -> usize {
        match self {
            SubSolver::Full(s, _) => s.bandwidth(),
            SubSolver::Low(s, _) => s.bandwidth(),
        }
    }
    /// Bytes of banded factor streamed by one single-RHS local solve.
    fn factor_bytes(&self) -> usize {
        let elems = self.n() * (2 * self.bandwidth() + 1);
        match self {
            SubSolver::Full(..) => elems * std::mem::size_of::<S>(),
            SubSolver::Low(..) => elems * std::mem::size_of::<S::Lo>(),
        }
    }
}

/// Reshape `m` to `nr × nc`, reusing its backing allocation when the
/// capacity already fits. Contents are unspecified afterwards (callers
/// overwrite every entry).
fn reshape<S: Scalar>(m: &mut DMat<S>, nr: usize, nc: usize) {
    if m.nrows() == nr && m.ncols() == nc {
        return;
    }
    let old = std::mem::replace(m, DMat::zeros(0, 0));
    let mut v = old.into_vec();
    v.clear();
    v.resize(nr * nc, S::zero());
    *m = DMat::from_col_major(nr, nc, v);
}

/// The assembled Schwarz preconditioner.
pub struct Schwarz<S: Demote> {
    subs: Vec<Subdomain<S>>,
    n: usize,
    variant: SchwarzVariant,
    precision: PrecondPrecision,
    stats: Option<Arc<CommStats>>,
    recorder: Option<Arc<dyn Recorder>>,
    /// Total triangular-solve flops per single-RHS application (for the cost
    /// model).
    flops_per_rhs: usize,
}

impl<S: Demote> Schwarz<S> {
    /// Build from a non-overlapping partition: grows overlap, extracts and
    /// factors the local operators (in parallel). Factors are stored in `S`.
    pub fn new(a: &Csr<S>, partition: &Partition, opts: &SchwarzOpts) -> Self {
        Self::with_precision(a, partition, opts, PrecondPrecision::Full)
    }

    /// [`Schwarz::new`] with a storage-precision choice for the subdomain
    /// factorizations. With [`PrecondPrecision::Single`] each local operator
    /// is demoted to `S::Lo` *before* factoring — half the factor bytes per
    /// local solve — and the apply demotes on gather / promotes on scatter.
    /// Non-lossy scalars fall back to full precision.
    pub fn with_precision(
        a: &Csr<S>,
        partition: &Partition,
        opts: &SchwarzOpts,
        precision: PrecondPrecision,
    ) -> Self {
        let n = a.nrows();
        let low = precision == PrecondPrecision::Single && S::LOSSY;
        let overlapping = grow_overlap(a, partition, opts.overlap);
        let weights = match opts.variant {
            SchwarzVariant::Asm => overlapping.iter().map(|s| vec![1.0; s.len()]).collect(),
            SchwarzVariant::Ras => restricted_partition_of_unity(partition, &overlapping),
            SchwarzVariant::Oras => {
                // ORAS uses the continuous partition of unity (multiplicity
                // weights) which pairs better with impedance conditions.
                partition_of_unity(n, &overlapping)
            }
        };
        let pieces: Vec<(Vec<usize>, Vec<f64>)> = overlapping.into_iter().zip(weights).collect();
        let subs: Vec<Subdomain<S>> = map_vec(pieces, |(set, w)| {
            let mut local = a.principal_submatrix(&set);
            if opts.variant == SchwarzVariant::Oras && opts.impedance != 0.0 {
                // Impedance (Robin) interface condition: shift the
                // diagonal of interface rows by +i·η.
                let shift = S::from_parts(0.0, opts.impedance);
                let interface = interface_rows(a, &set);
                for (li, is_if) in interface.iter().enumerate() {
                    if *is_if {
                        // Add to the stored diagonal entry.
                        let pos = local
                            .row_indices(li)
                            .binary_search(&li)
                            .expect("diagonal entry present");
                        local.row_values_mut(li)[pos] += shift;
                    }
                }
            }
            let solver = if low {
                // Demote the assembled local operator (impedance shift
                // included), then factor in `S::Lo`.
                let local_lo = local.demote_values();
                let f = SparseDirect::factor(&local_lo).unwrap_or_else(|| {
                    let shift = <S::Lo as Scalar>::from_f64(1e-12)
                        * <S::Lo as Scalar>::from_real(local_lo.inf_norm());
                    SparseDirect::factor(&local_lo.shift_diag(shift))
                        .expect("regularized local factor")
                });
                SubSolver::Low(f, Mutex::new((DMat::zeros(0, 0), DMat::zeros(0, 0))))
            } else {
                let f = SparseDirect::factor(&local).unwrap_or_else(|| {
                    // Local singular operator (can happen for ASM on pure
                    // Neumann pieces): tiny diagonal regularization.
                    let shift = S::from_f64(1e-12) * S::from_real(local.inf_norm());
                    SparseDirect::factor(&local.shift_diag(shift))
                        .expect("regularized local factor")
                });
                SubSolver::Full(f, Mutex::new((DMat::zeros(0, 0), DMat::zeros(0, 0))))
            };
            Subdomain {
                set,
                weights: w,
                solver,
            }
        });
        let flops_per_rhs = subs
            .iter()
            .map(|s| {
                let bw = s.solver.bandwidth();
                let scale = if S::is_complex() { 4 } else { 1 };
                2 * (2 * bw + 1) * s.solver.n() * scale
            })
            .sum();
        Self {
            subs,
            n,
            variant: opts.variant,
            precision: if low {
                PrecondPrecision::Single
            } else {
                PrecondPrecision::Full
            },
            stats: None,
            recorder: None,
            flops_per_rhs,
        }
    }

    /// Report communication/flop counts of every application to `stats`.
    pub fn with_stats(mut self, stats: Arc<CommStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Emit a [`PrecondApplyEvent`] per application to `recorder`.
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.recorder = Some(recorder);
    }

    /// Builder form of [`Schwarz::set_recorder`].
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.set_recorder(recorder);
        self
    }

    /// Stable trace name of the variant.
    fn kind_name(&self) -> &'static str {
        match self.variant {
            SchwarzVariant::Asm => "schwarz-asm",
            SchwarzVariant::Ras => "schwarz-ras",
            SchwarzVariant::Oras => "schwarz-oras",
        }
    }

    /// Number of subdomains.
    pub fn nsubdomains(&self) -> usize {
        self.subs.len()
    }

    /// Size of the largest overlapping subdomain.
    pub fn max_local_size(&self) -> usize {
        self.subs.iter().map(|s| s.set.len()).max().unwrap_or(0)
    }
}

/// For each local index: does its global row couple outside the subdomain?
fn interface_rows<S: Scalar>(a: &Csr<S>, set: &[usize]) -> Vec<bool> {
    let mut inset = vec![false; a.nrows()];
    for &g in set {
        inset[g] = true;
    }
    set.iter()
        .map(|&g| a.row_indices(g).iter().any(|&j| !inset[j]))
        .collect()
}

impl<S: Demote> PrecondOp<S> for Schwarz<S> {
    fn nrows(&self) -> usize {
        self.n
    }

    fn apply(&self, r: &DMat<S>, z: &mut DMat<S>) {
        let _t = kryst_obs::profile(kryst_obs::Phase::Precond);
        let _sp = kryst_obs::traced(kryst_obs::TraceKind::PrecondApply);
        let _lp = (self.precision == PrecondPrecision::Single)
            .then(|| kryst_obs::profile(kryst_obs::Phase::PrecondLp));
        let p = r.ncols();
        // Clock only when tracing is actually on.
        let rec = self.recorder.as_ref().filter(|rc| rc.enabled());
        let t0 = rec.map(|_| Instant::now());
        if let Some(stats) = &self.stats {
            // Each subdomain exchanges its overlap with neighbors before and
            // after the local solve; charge 2 messages per subdomain as a
            // conservative aggregate plus the solve flops.
            stats.record_p2p(
                2 * self.subs.len(),
                2 * self.subs.iter().map(|s| s.set.len()).sum::<usize>()
                    * p
                    * S::real_words()
                    * std::mem::size_of::<f64>(),
            );
            stats.record_flops(self.flops_per_rhs * p);
        }
        // Solve every subdomain in parallel (gather → in-place banded solve
        // in the subdomain's persistent buffers), then apply the weighted
        // scatter-adds serially in subdomain order — the accumulation order
        // is fixed regardless of thread count, so traces stay deterministic.
        for_each_range(self.subs.len(), 0, |lo, hi| {
            for sub in &self.subs[lo..hi] {
                let ni = sub.set.len();
                match &sub.solver {
                    SubSolver::Full(solver, bufs) => {
                        let mut guard = bufs.lock().unwrap();
                        let (local, scratch) = &mut *guard;
                        reshape(local, ni, p);
                        reshape(scratch, ni, p);
                        for c in 0..p {
                            let rc = r.col(c);
                            let lc = local.col_mut(c);
                            for (li, &g) in sub.set.iter().enumerate() {
                                lc[li] = rc[g];
                            }
                        }
                        solver.solve_in_place_ws(local, scratch, 8, 1);
                    }
                    SubSolver::Low(solver, bufs) => {
                        let mut guard = bufs.lock().unwrap();
                        let (local, scratch) = &mut *guard;
                        reshape(local, ni, p);
                        reshape(scratch, ni, p);
                        for c in 0..p {
                            let rc = r.col(c);
                            let lc = local.col_mut(c);
                            for (li, &g) in sub.set.iter().enumerate() {
                                lc[li] = rc[g].demote();
                            }
                        }
                        solver.solve_in_place_ws(local, scratch, 8, 1);
                    }
                }
            }
        });
        z.set_zero();
        for sub in &self.subs {
            match &sub.solver {
                SubSolver::Full(_, bufs) => {
                    let guard = bufs.lock().unwrap();
                    let sol = &guard.0;
                    for c in 0..p {
                        let ac = z.col_mut(c);
                        let sc = sol.col(c);
                        for (li, &g) in sub.set.iter().enumerate() {
                            ac[g] += S::from_f64(sub.weights[li]) * sc[li];
                        }
                    }
                }
                SubSolver::Low(_, bufs) => {
                    let guard = bufs.lock().unwrap();
                    let sol = &guard.0;
                    for c in 0..p {
                        let ac = z.col_mut(c);
                        let sc = sol.col(c);
                        for (li, &g) in sub.set.iter().enumerate() {
                            ac[g] += S::from_f64(sub.weights[li]) * S::promote_lo(sc[li]);
                        }
                    }
                }
            }
        }
        if let Some(rec) = rec {
            rec.record(&Event::PrecondApply(PrecondApplyEvent {
                kind: self.kind_name(),
                cols: p,
                detail: self.subs.len(),
                wall_ns: t0.expect("t0 set when tracing").elapsed().as_nanos() as u64,
            }));
        }
    }

    fn precision(&self) -> PrecondPrecision {
        self.precision
    }

    /// Banded-factor bytes streamed by one single-column application (sum
    /// over subdomains); excludes gather/scatter vector traffic.
    fn bytes_per_apply(&self) -> Option<usize> {
        Some(self.subs.iter().map(|s| s.solver.factor_bytes()).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kryst_pde::poisson::poisson2d;
    use kryst_sparse::partition::partition_rcb;

    fn setup(nx: usize, nparts: usize, opts: &SchwarzOpts) -> (Csr<f64>, Schwarz<f64>) {
        let p = poisson2d::<f64>(nx, nx);
        let part = partition_rcb(&p.coords, nparts);
        let m = Schwarz::new(&p.a, &part, opts);
        (p.a, m)
    }

    fn richardson_converges(a: &Csr<f64>, m: &Schwarz<f64>, iters: usize) -> f64 {
        let n = a.nrows();
        let b = DMat::from_fn(n, 1, |i, _| ((i % 5) as f64) - 2.0);
        let mut x = DMat::<f64>::zeros(n, 1);
        for _ in 0..iters {
            let mut r = a.apply(&x);
            r.scale(-1.0);
            r.axpy(1.0, &b);
            let z = m.apply_new(&r);
            x.axpy(1.0, &z);
        }
        let mut r = a.apply(&x);
        r.axpy(-1.0, &b);
        r.fro_norm() / b.fro_norm()
    }

    #[test]
    fn ras_richardson_converges_on_poisson() {
        let (a, m) = setup(
            16,
            4,
            &SchwarzOpts {
                overlap: 2,
                ..Default::default()
            },
        );
        assert_eq!(m.nsubdomains(), 4);
        let rel = richardson_converges(&a, &m, 30);
        assert!(rel < 1e-3, "RAS Richardson: rel residual {rel}");
    }

    #[test]
    fn asm_is_symmetric_operator() {
        // ⟨M⁻¹u, v⟩ = ⟨u, M⁻¹v⟩ for ASM on a symmetric matrix.
        let (_, m) = setup(
            10,
            3,
            &SchwarzOpts {
                variant: SchwarzVariant::Asm,
                overlap: 1,
                impedance: 0.0,
            },
        );
        let n = 100;
        let u = DMat::from_fn(n, 1, |i, _| (i as f64 * 0.37).sin());
        let v = DMat::from_fn(n, 1, |i, _| (i as f64 * 0.11).cos());
        let mu = m.apply_new(&u);
        let mv = m.apply_new(&v);
        let a1: f64 = (0..n).map(|i| mu[(i, 0)] * v[(i, 0)]).sum();
        let a2: f64 = (0..n).map(|i| u[(i, 0)] * mv[(i, 0)]).sum();
        assert!((a1 - a2).abs() < 1e-10 * (a1.abs() + 1.0), "{a1} vs {a2}");
    }

    #[test]
    fn multi_rhs_consistent_with_single() {
        let (_, m) = setup(12, 4, &SchwarzOpts::default());
        let n = 144;
        let r = DMat::from_fn(n, 3, |i, j| ((i * (j + 2)) % 11) as f64 - 5.0);
        let z = m.apply_new(&r);
        for c in 0..3 {
            let rc = DMat::from_col_major(n, 1, r.col(c).to_vec());
            let zc = m.apply_new(&rc);
            for i in 0..n {
                assert!((z[(i, c)] - zc[(i, 0)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn oras_on_complex_maxwell_beats_asm() {
        use kryst_pde::maxwell::{maxwell3d, MaxwellParams};
        use kryst_scalar::C64;
        let params = MaxwellParams::matching_solution(6);
        let (prob, _geom) = maxwell3d(&params);
        let part = partition_rcb(&prob.coords, 4);
        let asm = Schwarz::<C64>::new(
            &prob.a,
            &part,
            &SchwarzOpts {
                variant: SchwarzVariant::Asm,
                overlap: 1,
                impedance: 0.0,
            },
        );
        let oras = Schwarz::<C64>::new(
            &prob.a,
            &part,
            &SchwarzOpts {
                variant: SchwarzVariant::Oras,
                overlap: 2,
                impedance: params.omega,
            },
        );
        let n = prob.a.nrows();
        let b = DMat::<C64>::from_fn(n, 1, |i, _| {
            C64::from_parts(((i % 7) as f64) - 3.0, ((i % 3) as f64) - 1.0)
        });
        let rel = |m: &Schwarz<C64>| {
            let mut x = DMat::<C64>::zeros(n, 1);
            for _ in 0..20 {
                let mut r = prob.a.apply(&x);
                r.scale(-C64::one());
                r.axpy(C64::one(), &b);
                let z = m.apply_new(&r);
                // Damped Richardson keeps ASM from diverging outright.
                x.axpy(C64::from_f64(0.5), &z);
            }
            let mut r = prob.a.apply(&x);
            r.axpy(-C64::one(), &b);
            r.fro_norm() / b.fro_norm()
        };
        let rel_asm = rel(&asm);
        let rel_oras = rel(&oras);
        assert!(
            rel_oras < rel_asm,
            "ORAS ({rel_oras:.3e}) must beat ASM ({rel_asm:.3e}) on indefinite Maxwell"
        );
    }

    #[test]
    fn single_precision_tracks_full() {
        let p = poisson2d::<f64>(16, 16);
        let part = partition_rcb(&p.coords, 4);
        let opts = SchwarzOpts {
            overlap: 2,
            ..Default::default()
        };
        let full = Schwarz::new(&p.a, &part, &opts);
        let lo = Schwarz::with_precision(&p.a, &part, &opts, PrecondPrecision::Single);
        assert_eq!(full.precision(), PrecondPrecision::Full);
        assert_eq!(lo.precision(), PrecondPrecision::Single);
        let n = p.a.nrows();
        let r = DMat::from_fn(n, 3, |i, j| ((i * 2 + j) % 9) as f64 - 4.0);
        let zf = full.apply_new(&r);
        let zl = lo.apply_new(&r);
        let mut diff = zl.clone();
        diff.axpy(-1.0, &zf);
        let rel = diff.fro_norm() / zf.fro_norm();
        assert!(rel < 1e-5, "f32 subdomain solves drifted: rel {rel:.3e}");
        // Factor bytes exactly halve: same bands, f32 vs f64 entries.
        let bf = full.bytes_per_apply().unwrap();
        let bl = lo.bytes_per_apply().unwrap();
        assert_eq!(bl * 2, bf, "factor bytes {bl} vs {bf}");
        // Richardson with the low factors still converges on SPD Poisson.
        let rel_final = richardson_converges(&p.a, &lo, 30);
        assert!(rel_final < 1e-3, "lo RAS Richardson: {rel_final:.3e}");
    }

    #[test]
    fn stats_recorded_per_application() {
        let p = poisson2d::<f64>(10, 10);
        let part = partition_rcb(&p.coords, 2);
        let stats = CommStats::new_shared();
        let m = Schwarz::new(&p.a, &part, &SchwarzOpts::default()).with_stats(Arc::clone(&stats));
        let r = DMat::from_fn(100, 2, |i, _| i as f64);
        let _ = m.apply_new(&r);
        let snap = stats.snapshot();
        assert_eq!(snap.p2p_messages, 4); // 2 per subdomain
        assert!(snap.flops > 0);
    }
}
