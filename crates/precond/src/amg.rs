//! Smoothed-aggregation algebraic multigrid — the GAMG stand-in.
//!
//! Mirrors the knobs the paper turns on PETSc's GAMG:
//!
//! * [`AmgOpts::threshold`] ⟷ `-pc_gamg_threshold` (strength-of-connection
//!   edge dropping; higher = cheaper, weaker hierarchy — the §IV-B trade-off),
//! * [`SmootherKind`] ⟷ `-mg_levels_ksp_type` (`gmres`/`cg` make the cycle
//!   **nonlinear**, forcing flexible outer solvers; `chebyshev`/`jacobi` keep
//!   it linear),
//! * near-nullspace vectors ⟷ `MatSetNearNullSpace` (rigid-body modes for
//!   elasticity, constants for Poisson).

use crate::chebyshev::Chebyshev;
use crate::jacobi::Jacobi;
use crate::smoother;
use kryst_dense::{qr::HouseholderQr, DMat};
use kryst_obs::{Event, PrecondApplyEvent, Recorder};
use kryst_par::PrecondOp;
use kryst_rt::par::{for_each_range, map_range, max_threads};
use kryst_scalar::{Real, Scalar};
use kryst_sparse::{ops, Coo, Csr, PrecondWorkspace, SparseDirect};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Which smoother runs on each level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SmootherKind {
    /// Damped point Jacobi (`omega`, sweeps).
    Jacobi {
        /// Damping factor.
        omega: f64,
        /// Sweeps per pre/post smoothing.
        iters: usize,
    },
    /// Chebyshev polynomial of the given degree (linear smoother).
    Chebyshev {
        /// Polynomial degree.
        degree: usize,
    },
    /// `iters` inner GMRES steps (nonlinear ⇒ variable preconditioner).
    Gmres {
        /// Inner iterations.
        iters: usize,
    },
    /// `iters` inner CG steps (nonlinear ⇒ variable preconditioner).
    Cg {
        /// Inner iterations.
        iters: usize,
    },
}

/// AMG setup options.
#[derive(Debug, Clone, Copy)]
pub struct AmgOpts {
    /// Strength threshold: drop `|a_ij| ≤ threshold·√(a_ii·a_jj)` from the
    /// aggregation graph.
    pub threshold: f64,
    /// Maximum number of levels.
    pub max_levels: usize,
    /// Stop coarsening below this size (direct solve there).
    pub coarse_size: usize,
    /// Smoother on every level.
    pub smoother: SmootherKind,
    /// Prolongator damping numerator (`ω = damping/λ_max`); 4/3 is standard.
    pub damping: f64,
}

impl Default for AmgOpts {
    fn default() -> Self {
        Self {
            threshold: 0.0,
            max_levels: 10,
            coarse_size: 64,
            smoother: SmootherKind::Chebyshev { degree: 2 },
            damping: 4.0 / 3.0,
        }
    }
}

enum LevelSmoother<S: Scalar> {
    Jacobi(Jacobi<S>, usize),
    Chebyshev(Chebyshev<S>),
    Gmres(usize),
    Cg(usize),
}

struct Level<S: Scalar> {
    a: Csr<S>,
    /// Prolongator to THIS level from the next-coarser one (absent on the
    /// coarsest level).
    p: Option<Csr<S>>,
    pt: Option<Csr<S>>,
    smoother: LevelSmoother<S>,
}

/// The assembled multigrid hierarchy.
pub struct Amg<S: Scalar> {
    levels: Vec<Level<S>>,
    coarse: CoarseSolver<S>,
    variable: bool,
    n: usize,
    recorder: Option<Arc<dyn Recorder>>,
    /// Per-level scratch pool: after one warm-up cycle every V-cycle apply
    /// draws all its level vectors from here and allocates nothing.
    ws: Mutex<PrecondWorkspace<S>>,
}

enum CoarseSolver<S: Scalar> {
    Direct(SparseDirect<S>),
    /// Fallback when the coarse operator is numerically singular:
    /// regularized direct solve.
    Regularized(SparseDirect<S>),
}

impl<S: Scalar> Amg<S> {
    /// Build the hierarchy for `a` with near-nullspace `b` (defaults to the
    /// constant vector when `None`).
    pub fn new(a: &Csr<S>, near_nullspace: Option<&DMat<S>>, opts: &AmgOpts) -> Self {
        let n = a.nrows();
        let default_ns = DMat::from_fn(n, 1, |_, _| S::one());
        let mut b = near_nullspace.cloned().unwrap_or(default_ns);
        let mut levels: Vec<Level<S>> = Vec::new();
        let mut acur = a.clone();
        while levels.len() + 1 < opts.max_levels && acur.nrows() > opts.coarse_size {
            let (ptent, bc) = tentative_prolongator(&acur, &b, opts.threshold);
            if ptent.ncols() >= acur.nrows() || ptent.ncols() == 0 {
                break; // aggregation stalled
            }
            let p = smooth_prolongator(&acur, &ptent, opts.damping);
            let ac = ops::galerkin_rap(&acur, &p);
            let smoother_impl = make_smoother(&acur, &opts.smoother);
            levels.push(Level {
                a: acur,
                p: Some(p.clone()),
                pt: Some(p.transpose()),
                smoother: smoother_impl,
            });
            acur = ac;
            b = bc;
        }
        // Coarsest level: direct solve (regularize if singular).
        let coarse = match SparseDirect::factor(&acur) {
            Some(f) => CoarseSolver::Direct(f),
            None => {
                let shift =
                    S::from_real(acur.inf_norm() * S::Real::epsilon() * S::Real::from_f64(1e6));
                let reg = acur.shift_diag(shift);
                CoarseSolver::Regularized(
                    SparseDirect::factor(&reg).expect("regularized coarse factor"),
                )
            }
        };
        let smoother_impl = make_smoother(&acur, &opts.smoother);
        levels.push(Level {
            a: acur,
            p: None,
            pt: None,
            smoother: smoother_impl,
        });
        let variable = matches!(
            opts.smoother,
            SmootherKind::Gmres { .. } | SmootherKind::Cg { .. }
        );
        Self {
            levels,
            coarse,
            variable,
            n,
            recorder: None,
            ws: Mutex::new(PrecondWorkspace::new()),
        }
    }

    /// Attach an event recorder: every V-cycle application emits a
    /// [`PrecondApplyEvent`] (`kind = "amg-vcycle"`, `detail` = level count).
    pub fn set_recorder(&mut self, rec: Arc<dyn Recorder>) {
        self.recorder = if rec.enabled() { Some(rec) } else { None };
    }

    /// Builder-style variant of [`Amg::set_recorder`].
    pub fn with_recorder(mut self, rec: Arc<dyn Recorder>) -> Self {
        self.set_recorder(rec);
        self
    }

    /// Number of levels (including the coarsest).
    pub fn nlevels(&self) -> usize {
        self.levels.len()
    }

    /// Unknown count on every level, finest first.
    pub fn level_sizes(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.a.nrows()).collect()
    }

    /// Operator complexity: `Σ nnz(A_l) / nnz(A_0)` — the standard AMG cost
    /// metric (higher threshold ⇒ lower complexity ⇒ cheaper cycles).
    pub fn operator_complexity(&self) -> f64 {
        let n0 = self.levels[0].a.nnz() as f64;
        self.levels.iter().map(|l| l.a.nnz() as f64).sum::<f64>() / n0
    }

    fn smooth_ws(&self, l: usize, b: &DMat<S>, x: &mut DMat<S>, ws: &mut PrecondWorkspace<S>) {
        let level = &self.levels[l];
        match &level.smoother {
            LevelSmoother::Jacobi(j, iters) => {
                let mut r = ws.take(b.nrows(), b.ncols());
                j.smooth_with(&level.a, b, x, *iters, &mut r);
                ws.put(r);
            }
            LevelSmoother::Chebyshev(c) => c.smooth_ws(b, x, ws),
            LevelSmoother::Gmres(iters) => {
                // z = GMRES_s(A, b − A x); x += z
                let mut r = ws.take(b.nrows(), b.ncols());
                level.a.spmm(x, &mut r);
                r.scale(-S::one());
                r.axpy(S::one(), b);
                let mut z = ws.take(r.nrows(), r.ncols());
                smoother::gmres_smooth(&level.a, &r, &mut z, *iters);
                x.axpy(S::one(), &z);
                ws.put(r);
                ws.put(z);
            }
            LevelSmoother::Cg(iters) => {
                let mut r = ws.take(b.nrows(), b.ncols());
                level.a.spmm(x, &mut r);
                r.scale(-S::one());
                r.axpy(S::one(), b);
                let mut z = ws.take(r.nrows(), r.ncols());
                smoother::cg_smooth(&level.a, &r, &mut z, *iters);
                x.axpy(S::one(), &z);
                ws.put(r);
                ws.put(z);
            }
        }
    }

    /// One V-cycle with every level vector drawn from the pool. All `p`
    /// columns of `b`/`x` stream through each smoothing, restriction, and
    /// prolongation sweep together; arithmetic per column is identical to
    /// the single-column cycle.
    fn vcycle_ws(&self, l: usize, b: &DMat<S>, x: &mut DMat<S>, ws: &mut PrecondWorkspace<S>) {
        if l + 1 == self.levels.len() {
            let _t = kryst_obs::profile(kryst_obs::Phase::PrecondLevel(l));
            let f = match &self.coarse {
                CoarseSolver::Direct(f) => f,
                CoarseSolver::Regularized(f) => f,
            };
            let mut scratch = ws.take(b.nrows(), b.ncols());
            f.solve_multi_into(b, x, &mut scratch, 8, 1);
            ws.put(scratch);
            return;
        }
        let level = &self.levels[l];
        // Time this level's own work exclusively: the timer is dropped
        // around the recursive descent so nested levels don't double-count.
        let down = kryst_obs::Profiler::global().timed(kryst_obs::Phase::PrecondLevel(l));
        // Pre-smooth.
        self.smooth_ws(l, b, x, ws);
        // Residual and restriction.
        let p = b.ncols();
        let mut r = ws.take(level.a.nrows(), p);
        level.a.spmm(x, &mut r);
        r.scale(-S::one());
        r.axpy(S::one(), b);
        let pt = level.pt.as_ref().unwrap();
        let mut rc = ws.take(pt.nrows(), p);
        pt.spmm(&r, &mut rc);
        let mut xc = ws.take(pt.nrows(), p);
        drop(down);
        self.vcycle_ws(l + 1, &rc, &mut xc, ws);
        let _up = kryst_obs::profile(kryst_obs::Phase::PrecondLevel(l));
        // Prolongate (reusing the residual buffer) and correct.
        level.p.as_ref().unwrap().spmm(&xc, &mut r);
        x.axpy(S::one(), &r);
        ws.put(rc);
        ws.put(xc);
        ws.put(r);
        // Post-smooth.
        self.smooth_ws(l, b, x, ws);
    }
}

fn make_smoother<S: Scalar>(a: &Csr<S>, kind: &SmootherKind) -> LevelSmoother<S> {
    match kind {
        SmootherKind::Jacobi { omega, iters } => {
            LevelSmoother::Jacobi(Jacobi::new(a, *omega), *iters)
        }
        SmootherKind::Chebyshev { degree } => {
            LevelSmoother::Chebyshev(Chebyshev::new(a, *degree, 10.0))
        }
        SmootherKind::Gmres { iters } => LevelSmoother::Gmres(*iters),
        SmootherKind::Cg { iters } => LevelSmoother::Cg(*iters),
    }
}

impl<S: Scalar> PrecondOp<S> for Amg<S> {
    fn nrows(&self) -> usize {
        self.n
    }
    fn apply(&self, r: &DMat<S>, z: &mut DMat<S>) {
        let _t = kryst_obs::profile(kryst_obs::Phase::Precond);
        // Only read the clock when a recorder is attached (`set_recorder`
        // drops disabled recorders): tracing off ⇒ no `Instant::now()`, no
        // event construction.
        let t0 = self.recorder.as_ref().map(|_| Instant::now());
        z.set_zero();
        {
            let mut ws = self.ws.lock().unwrap();
            self.vcycle_ws(0, r, z, &mut ws);
        }
        if let (Some(rec), Some(t0)) = (self.recorder.as_ref(), t0) {
            rec.record(&Event::PrecondApply(PrecondApplyEvent {
                kind: "amg-vcycle",
                cols: r.ncols(),
                detail: self.levels.len(),
                wall_ns: t0.elapsed().as_nanos() as u64,
            }));
        }
    }
    fn is_variable(&self) -> bool {
        self.variable
    }
}

/// Greedy strength-based aggregation + nullspace-preserving tentative
/// prolongator. Returns `(P̂, B_coarse)`.
fn tentative_prolongator<S: Scalar>(a: &Csr<S>, b: &DMat<S>, threshold: f64) -> (Csr<S>, DMat<S>) {
    let n = a.nrows();
    let nv = b.ncols();
    // Strength test |a_ij| > θ·√(|a_ii|·|a_jj|), evaluated for every
    // nonzero up front in parallel (rows are disjoint flag ranges); the
    // greedy aggregation below then only reads precomputed booleans, so
    // its sequential visit order — and hence the hierarchy — is unchanged.
    let (strong_flags, row_off) = strength_flags(a, threshold);
    let strong = |i: usize, k: usize| -> bool { strong_flags[row_off[i] + k] };

    let mut agg = vec![usize::MAX; n];
    let mut nagg = 0usize;
    // Phase 1: roots whose strong neighborhoods are fully unaggregated.
    for i in 0..n {
        if agg[i] != usize::MAX {
            continue;
        }
        let mut ok = true;
        for (k, &j) in a.row_indices(i).iter().enumerate() {
            if strong(i, k) && agg[j] != usize::MAX {
                ok = false;
                break;
            }
        }
        if ok {
            agg[i] = nagg;
            for (k, &j) in a.row_indices(i).iter().enumerate() {
                if strong(i, k) {
                    agg[j] = nagg;
                }
            }
            nagg += 1;
        }
    }
    // Phase 2: attach leftovers to a (strongly, else weakly) connected
    // aggregate; isolated vertices become singletons.
    for i in 0..n {
        if agg[i] != usize::MAX {
            continue;
        }
        let mut target = usize::MAX;
        for (k, &j) in a.row_indices(i).iter().enumerate() {
            if agg[j] != usize::MAX && strong(i, k) {
                target = agg[j];
                break;
            }
        }
        if target == usize::MAX {
            for &j in a.row_indices(i) {
                if agg[j] != usize::MAX {
                    target = agg[j];
                    break;
                }
            }
        }
        if target == usize::MAX {
            target = nagg;
            nagg += 1;
        }
        agg[i] = target;
    }
    // Merge aggregates smaller than nv into a graph neighbor so every local
    // nullspace QR is well-posed.
    let mut sizes = vec![0usize; nagg];
    for &g in &agg {
        sizes[g] += 1;
    }
    for i in 0..n {
        let g = agg[i];
        if sizes[g] < nv {
            for &j in a.row_indices(i) {
                if agg[j] != g && sizes[agg[j]] >= nv {
                    sizes[g] -= 1;
                    agg[i] = agg[j];
                    sizes[agg[j]] += 1;
                    break;
                }
            }
        }
    }
    // Compact aggregate ids.
    let mut remap = vec![usize::MAX; nagg];
    let mut ncoarse_agg = 0usize;
    for &g in &agg {
        if remap[g] == usize::MAX {
            remap[g] = ncoarse_agg;
            ncoarse_agg += 1;
        }
    }
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); ncoarse_agg];
    for (i, &g) in agg.iter().enumerate() {
        members[remap[g]].push(i);
    }

    // Per-aggregate QR of the nullspace block — aggregates are independent,
    // so the factorizations run across the worker pool; assembly into the
    // prolongator stays serial in aggregate order (deterministic layout).
    let ncoarse = ncoarse_agg * nv;
    let mut pcoo = Coo::with_capacity(n, ncoarse, n * nv);
    let mut bc = DMat::zeros(ncoarse, nv);
    let blocks = map_range(ncoarse_agg, |g| {
        let rows = &members[g];
        let m = rows.len();
        if m >= nv {
            let local = DMat::from_fn(m, nv, |i, j| b[(rows[i], j)]);
            let f = HouseholderQr::factor(local);
            Some((f.q_thin(), f.r()))
        } else {
            None
        }
    });
    for (g, (rows, block)) in members.iter().zip(&blocks).enumerate() {
        match block {
            Some((q, r)) => {
                for (li, &gi) in rows.iter().enumerate() {
                    for c in 0..nv {
                        pcoo.push(gi, g * nv + c, q[(li, c)]);
                    }
                }
                for i in 0..nv {
                    for j in 0..nv {
                        bc[(g * nv + i, j)] = r[(i, j)];
                    }
                }
            }
            None => {
                // Degenerate tiny component: inject identity on as many
                // columns as there are rows.
                for (li, &gi) in rows.iter().enumerate() {
                    pcoo.push(gi, g * nv + li, S::one());
                    bc[(g * nv + li, li)] = S::one();
                }
            }
        }
    }
    (pcoo.to_csr(), bc)
}

/// Evaluate the strength test for every stored nonzero of `a` in parallel.
/// Returns a flat CSR-aligned flag array plus per-row offsets into it.
fn strength_flags<S: Scalar>(a: &Csr<S>, threshold: f64) -> (Vec<bool>, Vec<usize>) {
    let n = a.nrows();
    let diag = a.diag();
    let mut row_off = Vec::with_capacity(n + 1);
    row_off.push(0usize);
    for i in 0..n {
        row_off.push(row_off[i] + a.row_indices(i).len());
    }
    let nnz = row_off[n];
    let mut flags = vec![false; nnz];
    let base = kryst_rt::par::SendPtr::new(flags.as_mut_ptr());
    let fill = |lo: usize, hi: usize| {
        // SAFETY: each row writes only flags[row_off[i]..row_off[i+1]] and
        // row ranges are disjoint across parts.
        for i in lo..hi {
            let cols = a.row_indices(i);
            let vals = a.row_values(i);
            for (k, (&j, &v)) in cols.iter().zip(vals).enumerate() {
                let s = if i == j {
                    false
                } else {
                    let denom = (diag[i].abs() * diag[j].abs()).sqrt();
                    v.abs().to_f64() > threshold * denom.to_f64()
                };
                unsafe { *base.ptr().add(row_off[i] + k) = s };
            }
        }
    };
    if max_threads() > 1 && n >= 256 {
        for_each_range(n, 0, fill);
    } else {
        fill(0, n);
    }
    (flags, row_off)
}

/// `P = (I − ω·D⁻¹·A)·P̂` with `ω = damping / λ_max(D⁻¹A)`.
fn smooth_prolongator<S: Scalar>(a: &Csr<S>, ptent: &Csr<S>, damping: f64) -> Csr<S> {
    let inv_diag: Vec<S> = a
        .diag()
        .into_iter()
        .map(|d| {
            if d == S::zero() {
                S::zero()
            } else {
                S::one() / d
            }
        })
        .collect();
    let lmax = estimate_lmax_dinva(a, &inv_diag).max(1e-12);
    let omega = damping / lmax;
    let ap = ops::spgemm(a, ptent);
    let scale: Vec<S> = inv_diag.iter().map(|&d| d * S::from_f64(-omega)).collect();
    let damped = ops::scale_rows(&scale, &ap);
    ops::add(ptent, &damped)
}

fn estimate_lmax_dinva<S: Scalar>(a: &Csr<S>, inv_diag: &[S]) -> f64 {
    let n = a.nrows();
    let mut v: Vec<S> = (0..n)
        .map(|i| S::from_f64(1.0 + ((i % 5) as f64) * 0.1))
        .collect();
    let mut w = vec![S::zero(); n];
    let mut lmax = 1.0;
    for _ in 0..10 {
        a.spmv(&v, &mut w);
        let mut norm = 0.0f64;
        for i in 0..n {
            w[i] *= inv_diag[i];
            norm += w[i].abs_sqr().to_f64();
        }
        let norm = norm.sqrt();
        if norm == 0.0 {
            break;
        }
        lmax = norm;
        let inv = S::from_f64(1.0 / norm);
        for i in 0..n {
            v[i] = w[i] * inv;
        }
    }
    lmax
}

#[cfg(test)]
mod tests {
    use super::*;
    use kryst_pde::poisson::poisson2d;

    fn residual_norm(a: &Csr<f64>, b: &DMat<f64>, x: &DMat<f64>) -> f64 {
        let mut r = a.apply(x);
        r.axpy(-1.0, b);
        r.fro_norm()
    }

    #[test]
    fn hierarchy_coarsens() {
        let p = poisson2d::<f64>(32, 32);
        let amg = Amg::new(&p.a, p.near_nullspace.as_ref(), &AmgOpts::default());
        assert!(amg.nlevels() >= 2, "expected a multilevel hierarchy");
        assert!(
            amg.operator_complexity() < 3.0,
            "complexity {}",
            amg.operator_complexity()
        );
    }

    #[test]
    fn vcycle_iteration_converges_on_poisson() {
        let p = poisson2d::<f64>(24, 24);
        let n = p.a.nrows();
        let amg = Amg::new(&p.a, p.near_nullspace.as_ref(), &AmgOpts::default());
        let b = DMat::from_fn(n, 1, |i, _| ((i % 7) as f64) - 3.0);
        let mut x = DMat::zeros(n, 1);
        let r0 = residual_norm(&p.a, &b, &x);
        // Stationary iteration x ⟵ x + M⁻¹(b − A x).
        let mut rates = Vec::new();
        let mut rprev = r0;
        for _ in 0..20 {
            let mut r = p.a.apply(&x);
            r.scale(-1.0);
            r.axpy(1.0, &b);
            let z = amg.apply_new(&r);
            x.axpy(1.0, &z);
            let rn = residual_norm(&p.a, &b, &x);
            rates.push(rn / rprev);
            rprev = rn;
        }
        assert!(
            rprev < 1e-6 * r0,
            "V-cycle iteration stagnated: {rprev:.3e} of {r0:.3e}, rates {rates:?}"
        );
    }

    #[test]
    fn threshold_drops_weak_couplings() {
        // Anisotropic grid: x-couplings ≈ 0.40·diag, y-couplings ≈ 0.10·diag.
        // A threshold between the two ratios removes the weak direction from
        // the aggregation graph, so aggregates get smaller (semi-coarsening)
        // and the first coarse level is larger — the hierarchy genuinely
        // changes, mirroring the paper's `-pc_gamg_threshold` experiments.
        let p = poisson2d::<f64>(32, 16);
        let robust = Amg::new(
            &p.a,
            p.near_nullspace.as_ref(),
            &AmgOpts {
                threshold: 0.0,
                ..Default::default()
            },
        );
        let filtered = Amg::new(
            &p.a,
            p.near_nullspace.as_ref(),
            &AmgOpts {
                threshold: 0.2,
                ..Default::default()
            },
        );
        let s_robust = robust.level_sizes();
        let s_filtered = filtered.level_sizes();
        assert!(
            s_filtered[1] > s_robust[1],
            "semi-coarsening expected: {s_filtered:?} vs {s_robust:?}"
        );
        // Both hierarchies must still contract on this SPD problem.
        let n = p.a.nrows();
        let b = DMat::from_fn(n, 1, |i, _| ((i % 7) as f64) - 3.0);
        for amg in [&robust, &filtered] {
            let mut x = DMat::zeros(n, 1);
            for _ in 0..25 {
                let mut r = p.a.apply(&x);
                r.scale(-1.0);
                r.axpy(1.0, &b);
                let z = amg.apply_new(&r);
                x.axpy(1.0, &z);
            }
            assert!(residual_norm(&p.a, &b, &x) < 1e-5 * b.fro_norm());
        }
    }

    #[test]
    fn gmres_smoother_makes_it_variable() {
        let p = poisson2d::<f64>(12, 12);
        let lin = Amg::new(&p.a, None, &AmgOpts::default());
        let nonlin = Amg::new(
            &p.a,
            None,
            &AmgOpts {
                smoother: SmootherKind::Gmres { iters: 3 },
                ..Default::default()
            },
        );
        assert!(!PrecondOp::<f64>::is_variable(&lin));
        assert!(PrecondOp::<f64>::is_variable(&nonlin));
        // Nonlinear cycle still contracts.
        let n = p.a.nrows();
        let b = DMat::from_fn(n, 1, |i, _| (i % 3) as f64);
        let mut x = DMat::zeros(n, 1);
        for _ in 0..8 {
            let mut r = p.a.apply(&x);
            r.scale(-1.0);
            r.axpy(1.0, &b);
            let z = nonlin.apply_new(&r);
            x.axpy(1.0, &z);
        }
        assert!(residual_norm(&p.a, &b, &x) < 1e-6 * b.fro_norm());
    }

    #[test]
    fn elasticity_with_rigid_body_modes() {
        use kryst_pde::elasticity::{elasticity3d, ElasticityOpts};
        let prob = elasticity3d::<f64>(&ElasticityOpts {
            ne: 4,
            ..Default::default()
        });
        let a = &prob.problem.a;
        let amg = Amg::new(
            a,
            prob.problem.near_nullspace.as_ref(),
            &AmgOpts {
                smoother: SmootherKind::Chebyshev { degree: 3 },
                ..Default::default()
            },
        );
        let n = a.nrows();
        let b = DMat::from_fn(n, 1, |i, _| prob.rhs[i]);
        let mut x = DMat::zeros(n, 1);
        let r0 = b.fro_norm();
        for _ in 0..25 {
            let mut r = a.apply(&x);
            r.scale(-1.0);
            r.axpy(1.0, &b);
            let z = amg.apply_new(&r);
            x.axpy(1.0, &z);
        }
        let rfinal = residual_norm(a, &b, &x);
        assert!(
            rfinal < 1e-5 * r0,
            "elasticity V-cycle: {rfinal:.3e} of {r0:.3e}"
        );
    }
}
