//! Smoothed-aggregation algebraic multigrid — the GAMG stand-in.
//!
//! Mirrors the knobs the paper turns on PETSc's GAMG:
//!
//! * [`AmgOpts::threshold`] ⟷ `-pc_gamg_threshold` (strength-of-connection
//!   edge dropping; higher = cheaper, weaker hierarchy — the §IV-B trade-off),
//! * [`SmootherKind`] ⟷ `-mg_levels_ksp_type` (`gmres`/`cg` make the cycle
//!   **nonlinear**, forcing flexible outer solvers; `chebyshev`/`jacobi` keep
//!   it linear),
//! * near-nullspace vectors ⟷ `MatSetNearNullSpace` (rigid-body modes for
//!   elasticity, constants for Poisson).

use crate::chebyshev::Chebyshev;
use crate::jacobi::Jacobi;
use crate::smoother;
use kryst_dense::{qr::HouseholderQr, DMat};
use kryst_obs::{Event, PrecondApplyEvent, Recorder};
use kryst_par::collective::{redistribute, subset_layout};
use kryst_par::{Layout, PrecondOp, PrecondPrecision, Transport, TransportError};
use kryst_rt::par::{for_each_range, map_range, max_threads};
use kryst_scalar::{Demote, Real, Scalar};
use kryst_sparse::{ops, Coo, Csr, CsrLo, PrecondWorkspace, SparseDirect};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Which smoother runs on each level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SmootherKind {
    /// Damped point Jacobi (`omega`, sweeps).
    Jacobi {
        /// Damping factor.
        omega: f64,
        /// Sweeps per pre/post smoothing.
        iters: usize,
    },
    /// Chebyshev polynomial of the given degree (linear smoother).
    Chebyshev {
        /// Polynomial degree.
        degree: usize,
    },
    /// `iters` inner GMRES steps (nonlinear ⇒ variable preconditioner).
    Gmres {
        /// Inner iterations.
        iters: usize,
    },
    /// `iters` inner CG steps (nonlinear ⇒ variable preconditioner).
    Cg {
        /// Inner iterations.
        iters: usize,
    },
}

/// AMG setup options.
#[derive(Debug, Clone, Copy)]
pub struct AmgOpts {
    /// Strength threshold: drop `|a_ij| ≤ threshold·√(a_ii·a_jj)` from the
    /// aggregation graph.
    pub threshold: f64,
    /// Maximum number of levels.
    pub max_levels: usize,
    /// Stop coarsening below this size (direct solve there).
    pub coarse_size: usize,
    /// Smoother on every level.
    pub smoother: SmootherKind,
    /// Prolongator damping numerator (`ω = damping/λ_max`); 4/3 is standard.
    pub damping: f64,
    /// Agglomerate the modeled coarse solve when the coarse operator has at
    /// most this many rows (GAMG-style process reduction: gather the coarse
    /// problem onto a rank subset instead of solving it serially on every
    /// rank). `0` disables agglomeration entirely.
    pub agglom_threshold: usize,
    /// Target coarse rows per participating rank when agglomerating; the
    /// subset size is `⌈coarse_n / agglom_rows_per_rank⌉` rounded up to a
    /// power of two and capped by the modeled rank count.
    pub agglom_rows_per_rank: usize,
}

impl Default for AmgOpts {
    fn default() -> Self {
        Self {
            threshold: 0.0,
            max_levels: 10,
            coarse_size: 64,
            smoother: SmootherKind::Chebyshev { degree: 2 },
            damping: 4.0 / 3.0,
            agglom_threshold: 4096,
            agglom_rows_per_rank: 32,
        }
    }
}

enum LevelSmoother<S: Scalar> {
    Jacobi(Jacobi<S>, usize),
    Chebyshev(Chebyshev<S>),
    Gmres(usize),
    Cg(usize),
}

struct Level<S: Scalar> {
    a: Csr<S>,
    /// Prolongator to THIS level from the next-coarser one (absent on the
    /// coarsest level).
    p: Option<Csr<S>>,
    pt: Option<Csr<S>>,
    smoother: LevelSmoother<S>,
}

/// Low-precision shadow of one (non-coarsest) level: compact `f32`/`u32`
/// copies of the level operator and grid-transfer matrices plus demoted
/// linear-smoother data. Vectors stay in `S`; matrix entries are promoted
/// on the fly inside each sweep.
struct LevelLo<S: Demote> {
    a: CsrLo<S>,
    p: CsrLo<S>,
    pt: CsrLo<S>,
    smoother: LoSmoother<S>,
}

enum LoSmoother<S: Demote> {
    Jacobi {
        inv_diag: Vec<S::Lo>,
        weight: S,
        iters: usize,
    },
    Chebyshev {
        inv_diag: Vec<S::Lo>,
        degree: usize,
        lo: f64,
        hi: f64,
    },
}

/// The assembled multigrid hierarchy.
pub struct Amg<S: Demote> {
    levels: Vec<Level<S>>,
    /// Compact low-precision hierarchy; present only when built with
    /// [`PrecondPrecision::Single`] and a *linear* smoother.
    lo_levels: Option<Vec<LevelLo<S>>>,
    precision: PrecondPrecision,
    coarse: CoarseSolve<S>,
    variable: bool,
    n: usize,
    /// Agglomeration sizing rule, kept from [`AmgOpts`] for
    /// [`Amg::coarse_agglom`].
    agglom_rows_per_rank: usize,
    recorder: Option<Arc<dyn Recorder>>,
    /// Per-level scratch pool: after one warm-up cycle every V-cycle apply
    /// draws all its level vectors from here and allocates nothing.
    ws: Mutex<PrecondWorkspace<S>>,
}

/// Coarse-level direct solve, fully resolved at setup: the factor to use
/// (of the coarse operator, or of a diagonally shifted copy when the
/// operator is numerically singular) plus the already-decided policy bits.
/// The per-V-cycle apply path just calls `f.solve_multi_into` — no
/// per-apply fallback checks remain.
struct CoarseSolve<S: Scalar> {
    f: SparseDirect<S>,
    /// The factor is of the regularized (shifted) operator.
    regularized: bool,
    /// Agglomeration policy fired for this coarse size: applies run under
    /// the `coarse_agglom` profiler phase and [`Amg::coarse_agglom`] returns
    /// a redistribution model.
    agglomerated: bool,
}

/// Modeled agglomeration of the coarse-level solve onto a rank subset.
///
/// In the SPMD model every rank holds the full coarse factor and solves it
/// redundantly — the coarse solve is a *serial* term on the critical path
/// that does not shrink with `P`. Agglomeration instead gathers the coarse
/// right-hand side from the all-ranks [`Layout`] onto a small subset,
/// solves there, and scatters the correction back; the descriptor carries
/// the subset layout and the modeled gather/scatter traffic so the cost
/// model can charge the redistribution honestly.
#[derive(Debug, Clone)]
pub struct CoarseAgglom {
    /// Coarse operator size.
    pub coarse_n: usize,
    /// Total ranks in the modeled run.
    pub ranks: usize,
    /// Participating subset size (`≤ ranks`, power of two).
    pub subset: usize,
    /// Ownership of coarse rows over the subset ranks.
    pub layout: Layout,
    /// Point-to-point messages moving coarse RHS rows onto the subset
    /// (rows already on a subset rank that keeps them don't move).
    pub gather_msgs: usize,
    /// Bytes moved by the gather (per solve column).
    pub gather_bytes: usize,
    /// Messages scattering the coarse correction back (mirror of gather).
    pub scatter_msgs: usize,
    /// Bytes moved by the scatter (per solve column).
    pub scatter_bytes: usize,
    /// Modeled substitution flops of the banded coarse solve, per column —
    /// paid once on the subset instead of redundantly on every rank.
    pub solve_flops: usize,
}

impl CoarseAgglom {
    /// Execute the gather → subset solve → scatter over a real [`Transport`]
    /// point-to-point path, as the calling endpoint's rank: gather this
    /// rank's coarse RHS rows (`local_rows`, the [`Layout::even`] share) onto
    /// the subset, run `solve` in place on ranks that received rows, and
    /// scatter the correction back. Returns this rank's corrected rows.
    ///
    /// The row movement is exactly the modeled `gather_msgs`/`gather_bytes`
    /// traffic (for 8-byte scalars), so measured wire counters and the
    /// [`CoarseAgglom`] charge coincide — asserted by
    /// `tests/transport_equivalence.rs`.
    pub fn execute<T: Transport + ?Sized>(
        &self,
        t: &T,
        local_rows: &[f64],
        solve: impl FnOnce(&mut [f64]),
    ) -> Result<Vec<f64>, TransportError> {
        let _g = kryst_obs::profile(kryst_obs::Phase::CoarseAgglom);
        let src = Layout::even(self.coarse_n, self.ranks);
        let dst = subset_layout(self.coarse_n, self.ranks, self.subset);
        // Local (per-rank) spans around the three stages; the nested
        // redistribute calls emit the collective-edge spans that carry wire
        // deltas and align clocks, so these stay seq-less to avoid counting
        // the same edge twice.
        let mut gathered = Vec::new();
        let sp = kryst_obs::span::begin(kryst_obs::span::TraceKind::CoarseGather);
        redistribute(t, &src, &dst, local_rows, &mut gathered)?;
        kryst_obs::span::end(sp, 0, 0, gathered.len() as u64);
        let sp = kryst_obs::span::begin(kryst_obs::span::TraceKind::CoarseSolve);
        if !gathered.is_empty() {
            solve(&mut gathered);
        }
        kryst_obs::span::end(sp, 0, 0, gathered.len() as u64);
        let mut out = Vec::new();
        let sp = kryst_obs::span::begin(kryst_obs::span::TraceKind::CoarseScatter);
        redistribute(t, &dst, &src, &gathered, &mut out)?;
        kryst_obs::span::end(sp, 0, 0, out.len() as u64);
        Ok(out)
    }
}

impl<S: Demote> Amg<S> {
    /// Build the hierarchy for `a` with near-nullspace `b` (defaults to the
    /// constant vector when `None`). All matrices are stored in `S`.
    pub fn new(a: &Csr<S>, near_nullspace: Option<&DMat<S>>, opts: &AmgOpts) -> Self {
        Self::with_precision(a, near_nullspace, opts, PrecondPrecision::Full)
    }

    /// [`Amg::new`] with a storage-precision choice for the hierarchy.
    ///
    /// With [`PrecondPrecision::Single`] every level operator, both grid
    /// transfers, and the linear-smoother diagonals are demoted to
    /// `S::Lo`/`u32` storage — roughly half the bytes streamed per V-cycle —
    /// while every vector (and the coarse direct solve) stays in `S`.
    /// Nonlinear smoothers ([`SmootherKind::Gmres`]/[`SmootherKind::Cg`])
    /// and non-lossy scalars fall back to full precision: the returned
    /// hierarchy then reports [`PrecondPrecision::Full`].
    pub fn with_precision(
        a: &Csr<S>,
        near_nullspace: Option<&DMat<S>>,
        opts: &AmgOpts,
        precision: PrecondPrecision,
    ) -> Self {
        let n = a.nrows();
        let default_ns = DMat::from_fn(n, 1, |_, _| S::one());
        let mut b = near_nullspace.cloned().unwrap_or(default_ns);
        let mut levels: Vec<Level<S>> = Vec::new();
        let mut acur = a.clone();
        while levels.len() + 1 < opts.max_levels && acur.nrows() > opts.coarse_size {
            // One diagonal scan per level, shared by the strength test, the
            // prolongator smoothing, and the level smoother setup.
            let diag = acur.diag();
            let (ptent, bc) = tentative_prolongator(&acur, &b, opts.threshold, &diag);
            if ptent.ncols() >= acur.nrows() || ptent.ncols() == 0 {
                break; // aggregation stalled
            }
            let p = smooth_prolongator(&acur, &ptent, opts.damping, &diag);
            let ac = ops::galerkin_rap(&acur, &p);
            let smoother_impl = make_smoother(&acur, &diag, &opts.smoother);
            levels.push(Level {
                a: acur,
                p: Some(p.clone()),
                pt: Some(p.transpose()),
                smoother: smoother_impl,
            });
            acur = ac;
            b = bc;
        }
        // Coarsest level: direct solve, resolved ONCE here — singularity
        // fallback (regularized factor) and the agglomeration policy are
        // both decided at setup so the per-V-cycle path is branch-free.
        let (factor, regularized) = match SparseDirect::factor(&acur) {
            Some(f) => (f, false),
            None => {
                let shift =
                    S::from_real(acur.inf_norm() * S::Real::epsilon() * S::Real::from_f64(1e6));
                let reg = acur.shift_diag(shift);
                (
                    SparseDirect::factor(&reg).expect("regularized coarse factor"),
                    true,
                )
            }
        };
        let coarse = CoarseSolve {
            f: factor,
            regularized,
            agglomerated: opts.agglom_threshold > 0 && acur.nrows() <= opts.agglom_threshold,
        };
        let coarse_diag = acur.diag();
        let smoother_impl = make_smoother(&acur, &coarse_diag, &opts.smoother);
        levels.push(Level {
            a: acur,
            p: None,
            pt: None,
            smoother: smoother_impl,
        });
        let variable = matches!(
            opts.smoother,
            SmootherKind::Gmres { .. } | SmootherKind::Cg { .. }
        );
        let mut this = Self {
            levels,
            lo_levels: None,
            precision: PrecondPrecision::Full,
            coarse,
            variable,
            n,
            agglom_rows_per_rank: opts.agglom_rows_per_rank,
            recorder: None,
            ws: Mutex::new(PrecondWorkspace::new()),
        };
        if precision == PrecondPrecision::Single && S::LOSSY && !variable {
            this.lo_levels = Some(
                this.levels[..this.levels.len() - 1]
                    .iter()
                    .map(build_level_lo)
                    .collect(),
            );
            this.precision = PrecondPrecision::Single;
        }
        this
    }

    /// Attach an event recorder: every V-cycle application emits a
    /// [`PrecondApplyEvent`] (`kind = "amg-vcycle"`, `detail` = level count).
    pub fn set_recorder(&mut self, rec: Arc<dyn Recorder>) {
        self.recorder = if rec.enabled() { Some(rec) } else { None };
    }

    /// Builder-style variant of [`Amg::set_recorder`].
    pub fn with_recorder(mut self, rec: Arc<dyn Recorder>) -> Self {
        self.set_recorder(rec);
        self
    }

    /// Number of levels (including the coarsest).
    pub fn nlevels(&self) -> usize {
        self.levels.len()
    }

    /// Unknown count on every level, finest first.
    pub fn level_sizes(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.a.nrows()).collect()
    }

    /// Operator complexity: `Σ nnz(A_l) / nnz(A_0)` — the standard AMG cost
    /// metric (higher threshold ⇒ lower complexity ⇒ cheaper cycles).
    pub fn operator_complexity(&self) -> f64 {
        let n0 = self.levels[0].a.nnz() as f64;
        self.levels.iter().map(|l| l.a.nnz() as f64).sum::<f64>() / n0
    }

    /// Coarsest-level solve shared by both V-cycle variants: the factor was
    /// resolved at setup (regularization already folded in), so this is a
    /// straight multi-RHS substitution. When the agglomeration policy fired
    /// the time lands in the `coarse_agglom` profiler phase.
    fn coarse_solve_ws(
        &self,
        l: usize,
        b: &DMat<S>,
        x: &mut DMat<S>,
        ws: &mut PrecondWorkspace<S>,
    ) {
        let _t = kryst_obs::profile(kryst_obs::Phase::PrecondLevel(l));
        let _agg = self
            .coarse
            .agglomerated
            .then(|| kryst_obs::profile(kryst_obs::Phase::CoarseAgglom));
        let mut scratch = ws.take(b.nrows(), b.ncols());
        self.coarse.f.solve_multi_into(b, x, &mut scratch, 8, 1);
        ws.put(scratch);
    }

    /// The coarse operator was numerically singular and the direct solve
    /// runs on a diagonally shifted copy (decided once at setup).
    pub fn coarse_regularized(&self) -> bool {
        self.coarse.regularized
    }

    /// Coarse operator size (rows on the coarsest level).
    pub fn coarse_n(&self) -> usize {
        self.levels.last().map(|l| l.a.nrows()).unwrap_or(0)
    }

    /// Redistribution model for the agglomerated coarse solve at `ranks`
    /// modeled ranks, or `None` when the policy does not fire (single rank,
    /// agglomeration disabled, or the coarse problem above the threshold).
    ///
    /// Subset rule: `⌈coarse_n / agglom_rows_per_rank⌉` rounded up to a
    /// power of two, capped at `ranks`. Gather traffic is the exact row
    /// movement between [`Layout::even`]`(coarse_n, ranks)` and
    /// [`Layout::even`]`(coarse_n, subset)` (rows staying on the same
    /// physical rank are free); the scatter mirrors it.
    pub fn coarse_agglom(&self, ranks: usize) -> Option<CoarseAgglom> {
        if ranks <= 1 || !self.coarse.agglomerated {
            return None;
        }
        let coarse_n = self.coarse.f.n();
        let per = self.agglom_rows_per_rank.max(1);
        let subset = coarse_n.div_ceil(per).next_power_of_two().min(ranks).max(1);
        let src = Layout::even(coarse_n, ranks);
        let dst = Layout::even(coarse_n, subset);
        let sz = std::mem::size_of::<S>();
        let mut gather_msgs = 0usize;
        let mut gather_bytes = 0usize;
        for r in 0..ranks {
            let range = src.range(r);
            if range.is_empty() {
                continue;
            }
            let d0 = dst.rank_of(range.start);
            let d1 = dst.rank_of(range.end - 1);
            for d in d0..=d1 {
                if d == r {
                    continue; // rows that stay on the same physical rank
                }
                let dr = dst.range(d);
                let rows = range.end.min(dr.end) - range.start.max(dr.start);
                if rows > 0 {
                    gather_msgs += 1;
                    gather_bytes += rows * sz;
                }
            }
        }
        // Banded forward + backward substitution per column.
        let solve_flops = 4 * coarse_n * (self.coarse.f.bandwidth() + 1);
        Some(CoarseAgglom {
            coarse_n,
            ranks,
            subset,
            layout: dst,
            gather_msgs,
            gather_bytes,
            scatter_msgs: gather_msgs,
            scatter_bytes: gather_bytes,
            solve_flops,
        })
    }

    fn smooth_ws(&self, l: usize, b: &DMat<S>, x: &mut DMat<S>, ws: &mut PrecondWorkspace<S>) {
        let level = &self.levels[l];
        match &level.smoother {
            LevelSmoother::Jacobi(j, iters) => {
                let mut r = ws.take(b.nrows(), b.ncols());
                j.smooth_with(&level.a, b, x, *iters, &mut r);
                ws.put(r);
            }
            LevelSmoother::Chebyshev(c) => c.smooth_ws(b, x, ws),
            LevelSmoother::Gmres(iters) => {
                // z = GMRES_s(A, b − A x); x += z
                let mut r = ws.take(b.nrows(), b.ncols());
                level.a.spmm(x, &mut r);
                r.scale(-S::one());
                r.axpy(S::one(), b);
                let mut z = ws.take(r.nrows(), r.ncols());
                smoother::gmres_smooth(&level.a, &r, &mut z, *iters);
                x.axpy(S::one(), &z);
                ws.put(r);
                ws.put(z);
            }
            LevelSmoother::Cg(iters) => {
                let mut r = ws.take(b.nrows(), b.ncols());
                level.a.spmm(x, &mut r);
                r.scale(-S::one());
                r.axpy(S::one(), b);
                let mut z = ws.take(r.nrows(), r.ncols());
                smoother::cg_smooth(&level.a, &r, &mut z, *iters);
                x.axpy(S::one(), &z);
                ws.put(r);
                ws.put(z);
            }
        }
    }

    /// One V-cycle with every level vector drawn from the pool. All `p`
    /// columns of `b`/`x` stream through each smoothing, restriction, and
    /// prolongation sweep together; arithmetic per column is identical to
    /// the single-column cycle.
    fn vcycle_ws(&self, l: usize, b: &DMat<S>, x: &mut DMat<S>, ws: &mut PrecondWorkspace<S>) {
        if l + 1 == self.levels.len() {
            self.coarse_solve_ws(l, b, x, ws);
            return;
        }
        let level = &self.levels[l];
        // Time this level's own work exclusively: the timer is dropped
        // around the recursive descent so nested levels don't double-count.
        let down = kryst_obs::Profiler::global().timed(kryst_obs::Phase::PrecondLevel(l));
        // Pre-smooth.
        self.smooth_ws(l, b, x, ws);
        // Residual and restriction.
        let p = b.ncols();
        let mut r = ws.take(level.a.nrows(), p);
        level.a.spmm(x, &mut r);
        r.scale(-S::one());
        r.axpy(S::one(), b);
        let pt = level.pt.as_ref().unwrap();
        let mut rc = ws.take(pt.nrows(), p);
        pt.spmm(&r, &mut rc);
        let mut xc = ws.take(pt.nrows(), p);
        drop(down);
        self.vcycle_ws(l + 1, &rc, &mut xc, ws);
        let _up = kryst_obs::profile(kryst_obs::Phase::PrecondLevel(l));
        // Prolongate (reusing the residual buffer) and correct.
        level.p.as_ref().unwrap().spmm(&xc, &mut r);
        x.axpy(S::one(), &r);
        ws.put(rc);
        ws.put(xc);
        ws.put(r);
        // Post-smooth.
        self.smooth_ws(l, b, x, ws);
    }

    /// Low-precision smoothing sweep: matrix entries and diagonals stream
    /// from `S::Lo` storage and are promoted in-register; the iterate and
    /// residual live in `S` throughout.
    fn smooth_lo(
        &self,
        lo: &LevelLo<S>,
        b: &DMat<S>,
        x: &mut DMat<S>,
        ws: &mut PrecondWorkspace<S>,
    ) {
        let n = b.nrows();
        let p = b.ncols();
        match &lo.smoother {
            LoSmoother::Jacobi {
                inv_diag,
                weight,
                iters,
            } => {
                let mut r = ws.take(n, p);
                for _ in 0..*iters {
                    lo.a.spmm(x, &mut r);
                    for j in 0..p {
                        let bj = b.col(j);
                        let rj = r.col(j);
                        let xj = x.col_mut(j);
                        for i in 0..n {
                            xj[i] += *weight * S::promote_lo(inv_diag[i]) * (bj[i] - rj[i]);
                        }
                    }
                }
                ws.put(r);
            }
            LoSmoother::Chebyshev {
                inv_diag,
                degree,
                lo: lo_b,
                hi,
            } => {
                // Same three-term recurrence as `Chebyshev::smooth_ws`.
                let theta = 0.5 * (hi + lo_b);
                let delta = 0.5 * (hi - lo_b);
                let mut r = ws.take(n, p);
                let mut d = ws.take(n, p);
                let residual = |x: &DMat<S>, r: &mut DMat<S>| {
                    lo.a.spmm(x, r);
                    for j in 0..p {
                        let bj = b.col(j);
                        let rj = r.col_mut(j);
                        for i in 0..n {
                            rj[i] = S::promote_lo(inv_diag[i]) * (bj[i] - rj[i]);
                        }
                    }
                };
                residual(x, &mut r);
                d.copy_from(&r);
                d.scale(S::from_f64(1.0 / theta));
                x.axpy(S::one(), &d);
                let sigma = theta / delta;
                let mut rho = 1.0 / sigma;
                for _ in 1..*degree {
                    residual(x, &mut r);
                    let rho_next = 1.0 / (2.0 * sigma - rho);
                    let c1 = S::from_f64(rho_next * rho);
                    let c2 = S::from_f64(2.0 * rho_next / delta);
                    for j in 0..p {
                        let rj = r.col(j);
                        let dj = d.col_mut(j);
                        for i in 0..n {
                            dj[i] = c1 * dj[i] + c2 * rj[i];
                        }
                    }
                    x.axpy(S::one(), &d);
                    rho = rho_next;
                }
                ws.put(r);
                ws.put(d);
            }
        }
    }

    /// [`Amg::vcycle_ws`] over the compact `S::Lo` hierarchy. Identical
    /// cycle structure and workspace discipline; the coarse direct solve
    /// stays in full precision.
    fn vcycle_lo_ws(
        &self,
        lo_levels: &[LevelLo<S>],
        l: usize,
        b: &DMat<S>,
        x: &mut DMat<S>,
        ws: &mut PrecondWorkspace<S>,
    ) {
        if l + 1 == self.levels.len() {
            self.coarse_solve_ws(l, b, x, ws);
            return;
        }
        let lo = &lo_levels[l];
        let down = kryst_obs::Profiler::global().timed(kryst_obs::Phase::PrecondLevel(l));
        self.smooth_lo(lo, b, x, ws);
        let p = b.ncols();
        let mut r = ws.take(lo.a.nrows(), p);
        lo.a.spmm(x, &mut r);
        r.scale(-S::one());
        r.axpy(S::one(), b);
        let mut rc = ws.take(lo.pt.nrows(), p);
        lo.pt.spmm(&r, &mut rc);
        let mut xc = ws.take(lo.pt.nrows(), p);
        drop(down);
        self.vcycle_lo_ws(lo_levels, l + 1, &rc, &mut xc, ws);
        let _up = kryst_obs::profile(kryst_obs::Phase::PrecondLevel(l));
        lo.p.spmm(&xc, &mut r);
        x.axpy(S::one(), &r);
        ws.put(rc);
        ws.put(xc);
        ws.put(r);
        self.smooth_lo(lo, b, x, ws);
    }
}

/// Demote one non-coarsest level to compact storage. Only called for linear
/// smoothers — `with_precision` falls back to full precision otherwise.
fn build_level_lo<S: Demote>(level: &Level<S>) -> LevelLo<S> {
    let smoother = match &level.smoother {
        LevelSmoother::Jacobi(j, iters) => LoSmoother::Jacobi {
            inv_diag: j.inv_diag().iter().map(|&v| v.demote()).collect(),
            weight: j.weight(),
            iters: *iters,
        },
        LevelSmoother::Chebyshev(c) => {
            let (lo, hi) = c.interval();
            LoSmoother::Chebyshev {
                inv_diag: c.inv_diag().iter().map(|&v| v.demote()).collect(),
                degree: c.degree(),
                lo,
                hi,
            }
        }
        _ => unreachable!("nonlinear smoothers never build a low hierarchy"),
    };
    LevelLo {
        a: CsrLo::from_csr(&level.a),
        p: CsrLo::from_csr(level.p.as_ref().unwrap()),
        pt: CsrLo::from_csr(level.pt.as_ref().unwrap()),
        smoother,
    }
}

fn make_smoother<S: Scalar>(a: &Csr<S>, diag: &[S], kind: &SmootherKind) -> LevelSmoother<S> {
    match kind {
        SmootherKind::Jacobi { omega, iters } => {
            LevelSmoother::Jacobi(Jacobi::with_diag(diag, *omega), *iters)
        }
        SmootherKind::Chebyshev { degree } => {
            LevelSmoother::Chebyshev(Chebyshev::with_diag(a, diag, *degree, 10.0))
        }
        SmootherKind::Gmres { iters } => LevelSmoother::Gmres(*iters),
        SmootherKind::Cg { iters } => LevelSmoother::Cg(*iters),
    }
}

impl<S: Demote> PrecondOp<S> for Amg<S> {
    fn nrows(&self) -> usize {
        self.n
    }
    fn apply(&self, r: &DMat<S>, z: &mut DMat<S>) {
        let _t = kryst_obs::profile(kryst_obs::Phase::Precond);
        let _sp = kryst_obs::traced(kryst_obs::TraceKind::PrecondApply);
        // Only read the clock when a recorder is attached (`set_recorder`
        // drops disabled recorders): tracing off ⇒ no `Instant::now()`, no
        // event construction.
        let t0 = self.recorder.as_ref().map(|_| Instant::now());
        z.set_zero();
        {
            let mut ws = self.ws.lock().unwrap();
            match &self.lo_levels {
                Some(lo) => {
                    let _lp = kryst_obs::profile(kryst_obs::Phase::PrecondLp);
                    self.vcycle_lo_ws(lo, 0, r, z, &mut ws);
                }
                None => self.vcycle_ws(0, r, z, &mut ws),
            }
        }
        if let (Some(rec), Some(t0)) = (self.recorder.as_ref(), t0) {
            rec.record(&Event::PrecondApply(PrecondApplyEvent {
                kind: "amg-vcycle",
                cols: r.ncols(),
                detail: self.levels.len(),
                wall_ns: t0.elapsed().as_nanos() as u64,
            }));
        }
    }
    fn is_variable(&self) -> bool {
        self.variable
    }
    fn precision(&self) -> PrecondPrecision {
        self.precision
    }
    /// Matrix bytes streamed by one single-column V-cycle: per non-coarsest
    /// level, `2·sweeps + 1` operator passes (pre/post smoothing plus the
    /// residual) and one pass over each grid transfer. Excludes the coarse
    /// direct solve and all vector traffic.
    fn bytes_per_apply(&self) -> Option<usize> {
        let mut total = 0usize;
        for (l, level) in self.levels.iter().enumerate() {
            if l + 1 == self.levels.len() {
                break;
            }
            let sweeps = match &level.smoother {
                LevelSmoother::Jacobi(_, iters) => *iters,
                LevelSmoother::Chebyshev(c) => c.degree(),
                LevelSmoother::Gmres(iters) | LevelSmoother::Cg(iters) => *iters,
            };
            let (a_b, p_b, pt_b) = match self.lo_levels.as_deref() {
                Some(lo) => (
                    lo[l].a.bytes_streamed(),
                    lo[l].p.bytes_streamed(),
                    lo[l].pt.bytes_streamed(),
                ),
                None => (
                    level.a.bytes_streamed(),
                    level.p.as_ref().unwrap().bytes_streamed(),
                    level.pt.as_ref().unwrap().bytes_streamed(),
                ),
            };
            total += (2 * sweeps + 1) * a_b + p_b + pt_b;
        }
        Some(total)
    }
}

/// Greedy strength-based aggregation + nullspace-preserving tentative
/// prolongator. Returns `(P̂, B_coarse)`. `diag` is the precomputed diagonal
/// of `a` (one scan per level, shared with the other setup passes).
fn tentative_prolongator<S: Scalar>(
    a: &Csr<S>,
    b: &DMat<S>,
    threshold: f64,
    diag: &[S],
) -> (Csr<S>, DMat<S>) {
    let n = a.nrows();
    let nv = b.ncols();
    // Strength test |a_ij| > θ·√(|a_ii|·|a_jj|), evaluated for every
    // nonzero up front in parallel (rows are disjoint flag ranges); the
    // greedy aggregation below then only reads precomputed booleans, so
    // its sequential visit order — and hence the hierarchy — is unchanged.
    let (strong_flags, row_off) = strength_flags(a, threshold, diag);
    let strong = |i: usize, k: usize| -> bool { strong_flags[row_off[i] + k] };

    let mut agg = vec![usize::MAX; n];
    let mut nagg = 0usize;
    // Phase 1: roots whose strong neighborhoods are fully unaggregated.
    for i in 0..n {
        if agg[i] != usize::MAX {
            continue;
        }
        let mut ok = true;
        for (k, &j) in a.row_indices(i).iter().enumerate() {
            if strong(i, k) && agg[j] != usize::MAX {
                ok = false;
                break;
            }
        }
        if ok {
            agg[i] = nagg;
            for (k, &j) in a.row_indices(i).iter().enumerate() {
                if strong(i, k) {
                    agg[j] = nagg;
                }
            }
            nagg += 1;
        }
    }
    // Phase 2: attach leftovers to a (strongly, else weakly) connected
    // aggregate; isolated vertices become singletons.
    for i in 0..n {
        if agg[i] != usize::MAX {
            continue;
        }
        let mut target = usize::MAX;
        for (k, &j) in a.row_indices(i).iter().enumerate() {
            if agg[j] != usize::MAX && strong(i, k) {
                target = agg[j];
                break;
            }
        }
        if target == usize::MAX {
            for &j in a.row_indices(i) {
                if agg[j] != usize::MAX {
                    target = agg[j];
                    break;
                }
            }
        }
        if target == usize::MAX {
            target = nagg;
            nagg += 1;
        }
        agg[i] = target;
    }
    // Merge aggregates smaller than nv into a graph neighbor so every local
    // nullspace QR is well-posed.
    let mut sizes = vec![0usize; nagg];
    for &g in &agg {
        sizes[g] += 1;
    }
    for i in 0..n {
        let g = agg[i];
        if sizes[g] < nv {
            for &j in a.row_indices(i) {
                if agg[j] != g && sizes[agg[j]] >= nv {
                    sizes[g] -= 1;
                    agg[i] = agg[j];
                    sizes[agg[j]] += 1;
                    break;
                }
            }
        }
    }
    // Compact aggregate ids.
    let mut remap = vec![usize::MAX; nagg];
    let mut ncoarse_agg = 0usize;
    for &g in &agg {
        if remap[g] == usize::MAX {
            remap[g] = ncoarse_agg;
            ncoarse_agg += 1;
        }
    }
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); ncoarse_agg];
    for (i, &g) in agg.iter().enumerate() {
        members[remap[g]].push(i);
    }

    // Per-aggregate QR of the nullspace block — aggregates are independent,
    // so the factorizations run across the worker pool; assembly into the
    // prolongator stays serial in aggregate order (deterministic layout).
    let ncoarse = ncoarse_agg * nv;
    let mut pcoo = Coo::with_capacity(n, ncoarse, n * nv);
    let mut bc = DMat::zeros(ncoarse, nv);
    let blocks = map_range(ncoarse_agg, |g| {
        let rows = &members[g];
        let m = rows.len();
        if m >= nv {
            let local = DMat::from_fn(m, nv, |i, j| b[(rows[i], j)]);
            let f = HouseholderQr::factor(local);
            Some((f.q_thin(), f.r()))
        } else {
            None
        }
    });
    for (g, (rows, block)) in members.iter().zip(&blocks).enumerate() {
        match block {
            Some((q, r)) => {
                for (li, &gi) in rows.iter().enumerate() {
                    for c in 0..nv {
                        pcoo.push(gi, g * nv + c, q[(li, c)]);
                    }
                }
                for i in 0..nv {
                    for j in 0..nv {
                        bc[(g * nv + i, j)] = r[(i, j)];
                    }
                }
            }
            None => {
                // Degenerate tiny component: inject identity on as many
                // columns as there are rows.
                for (li, &gi) in rows.iter().enumerate() {
                    pcoo.push(gi, g * nv + li, S::one());
                    bc[(g * nv + li, li)] = S::one();
                }
            }
        }
    }
    (pcoo.to_csr(), bc)
}

/// Evaluate the strength test for every stored nonzero of `a` in parallel.
/// Returns a flat CSR-aligned flag array plus per-row offsets into it.
fn strength_flags<S: Scalar>(a: &Csr<S>, threshold: f64, diag: &[S]) -> (Vec<bool>, Vec<usize>) {
    let n = a.nrows();
    let mut row_off = Vec::with_capacity(n + 1);
    row_off.push(0usize);
    for i in 0..n {
        row_off.push(row_off[i] + a.row_indices(i).len());
    }
    let nnz = row_off[n];
    let mut flags = vec![false; nnz];
    let base = kryst_rt::par::SendPtr::new(flags.as_mut_ptr());
    let fill = |lo: usize, hi: usize| {
        // SAFETY: each row writes only flags[row_off[i]..row_off[i+1]] and
        // row ranges are disjoint across parts.
        for i in lo..hi {
            let cols = a.row_indices(i);
            let vals = a.row_values(i);
            for (k, (&j, &v)) in cols.iter().zip(vals).enumerate() {
                let s = if i == j {
                    false
                } else {
                    let denom = (diag[i].abs() * diag[j].abs()).sqrt();
                    v.abs().to_f64() > threshold * denom.to_f64()
                };
                unsafe { *base.ptr().add(row_off[i] + k) = s };
            }
        }
    };
    if max_threads() > 1 && n >= 256 {
        for_each_range(n, 0, fill);
    } else {
        fill(0, n);
    }
    (flags, row_off)
}

/// `P = (I − ω·D⁻¹·A)·P̂` with `ω = damping / λ_max(D⁻¹A)`.
fn smooth_prolongator<S: Scalar>(a: &Csr<S>, ptent: &Csr<S>, damping: f64, diag: &[S]) -> Csr<S> {
    let inv_diag: Vec<S> = diag
        .iter()
        .map(|&d| {
            if d == S::zero() {
                S::zero()
            } else {
                S::one() / d
            }
        })
        .collect();
    let lmax = estimate_lmax_dinva(a, &inv_diag).max(1e-12);
    let omega = damping / lmax;
    let ap = ops::spgemm(a, ptent);
    let scale: Vec<S> = inv_diag.iter().map(|&d| d * S::from_f64(-omega)).collect();
    let damped = ops::scale_rows(&scale, &ap);
    ops::add(ptent, &damped)
}

fn estimate_lmax_dinva<S: Scalar>(a: &Csr<S>, inv_diag: &[S]) -> f64 {
    let n = a.nrows();
    let mut v: Vec<S> = (0..n)
        .map(|i| S::from_f64(1.0 + ((i % 5) as f64) * 0.1))
        .collect();
    let mut w = vec![S::zero(); n];
    let mut lmax = 1.0;
    for _ in 0..10 {
        a.spmv(&v, &mut w);
        let mut norm = 0.0f64;
        for i in 0..n {
            w[i] *= inv_diag[i];
            norm += w[i].abs_sqr().to_f64();
        }
        let norm = norm.sqrt();
        if norm == 0.0 {
            break;
        }
        lmax = norm;
        let inv = S::from_f64(1.0 / norm);
        for i in 0..n {
            v[i] = w[i] * inv;
        }
    }
    lmax
}

#[cfg(test)]
mod tests {
    use super::*;
    use kryst_pde::poisson::poisson2d;

    fn residual_norm(a: &Csr<f64>, b: &DMat<f64>, x: &DMat<f64>) -> f64 {
        let mut r = a.apply(x);
        r.axpy(-1.0, b);
        r.fro_norm()
    }

    #[test]
    fn hierarchy_coarsens() {
        let p = poisson2d::<f64>(32, 32);
        let amg = Amg::new(&p.a, p.near_nullspace.as_ref(), &AmgOpts::default());
        assert!(amg.nlevels() >= 2, "expected a multilevel hierarchy");
        assert!(
            amg.operator_complexity() < 3.0,
            "complexity {}",
            amg.operator_complexity()
        );
    }

    #[test]
    fn vcycle_iteration_converges_on_poisson() {
        let p = poisson2d::<f64>(24, 24);
        let n = p.a.nrows();
        let amg = Amg::new(&p.a, p.near_nullspace.as_ref(), &AmgOpts::default());
        let b = DMat::from_fn(n, 1, |i, _| ((i % 7) as f64) - 3.0);
        let mut x = DMat::zeros(n, 1);
        let r0 = residual_norm(&p.a, &b, &x);
        // Stationary iteration x ⟵ x + M⁻¹(b − A x).
        let mut rates = Vec::new();
        let mut rprev = r0;
        for _ in 0..20 {
            let mut r = p.a.apply(&x);
            r.scale(-1.0);
            r.axpy(1.0, &b);
            let z = amg.apply_new(&r);
            x.axpy(1.0, &z);
            let rn = residual_norm(&p.a, &b, &x);
            rates.push(rn / rprev);
            rprev = rn;
        }
        assert!(
            rprev < 1e-6 * r0,
            "V-cycle iteration stagnated: {rprev:.3e} of {r0:.3e}, rates {rates:?}"
        );
    }

    #[test]
    fn threshold_drops_weak_couplings() {
        // Anisotropic grid: x-couplings ≈ 0.40·diag, y-couplings ≈ 0.10·diag.
        // A threshold between the two ratios removes the weak direction from
        // the aggregation graph, so aggregates get smaller (semi-coarsening)
        // and the first coarse level is larger — the hierarchy genuinely
        // changes, mirroring the paper's `-pc_gamg_threshold` experiments.
        let p = poisson2d::<f64>(32, 16);
        let robust = Amg::new(
            &p.a,
            p.near_nullspace.as_ref(),
            &AmgOpts {
                threshold: 0.0,
                ..Default::default()
            },
        );
        let filtered = Amg::new(
            &p.a,
            p.near_nullspace.as_ref(),
            &AmgOpts {
                threshold: 0.2,
                ..Default::default()
            },
        );
        let s_robust = robust.level_sizes();
        let s_filtered = filtered.level_sizes();
        assert!(
            s_filtered[1] > s_robust[1],
            "semi-coarsening expected: {s_filtered:?} vs {s_robust:?}"
        );
        // Both hierarchies must still contract on this SPD problem.
        let n = p.a.nrows();
        let b = DMat::from_fn(n, 1, |i, _| ((i % 7) as f64) - 3.0);
        for amg in [&robust, &filtered] {
            let mut x = DMat::zeros(n, 1);
            for _ in 0..25 {
                let mut r = p.a.apply(&x);
                r.scale(-1.0);
                r.axpy(1.0, &b);
                let z = amg.apply_new(&r);
                x.axpy(1.0, &z);
            }
            assert!(residual_norm(&p.a, &b, &x) < 1e-5 * b.fro_norm());
        }
    }

    #[test]
    fn gmres_smoother_makes_it_variable() {
        let p = poisson2d::<f64>(12, 12);
        let lin = Amg::new(&p.a, None, &AmgOpts::default());
        let nonlin = Amg::new(
            &p.a,
            None,
            &AmgOpts {
                smoother: SmootherKind::Gmres { iters: 3 },
                ..Default::default()
            },
        );
        assert!(!PrecondOp::<f64>::is_variable(&lin));
        assert!(PrecondOp::<f64>::is_variable(&nonlin));
        // Nonlinear cycle still contracts.
        let n = p.a.nrows();
        let b = DMat::from_fn(n, 1, |i, _| (i % 3) as f64);
        let mut x = DMat::zeros(n, 1);
        for _ in 0..8 {
            let mut r = p.a.apply(&x);
            r.scale(-1.0);
            r.axpy(1.0, &b);
            let z = nonlin.apply_new(&r);
            x.axpy(1.0, &z);
        }
        assert!(residual_norm(&p.a, &b, &x) < 1e-6 * b.fro_norm());
    }

    #[test]
    fn single_precision_vcycle_tracks_full() {
        let p = poisson2d::<f64>(24, 24);
        let n = p.a.nrows();
        let full = Amg::new(&p.a, p.near_nullspace.as_ref(), &AmgOpts::default());
        let lo = Amg::with_precision(
            &p.a,
            p.near_nullspace.as_ref(),
            &AmgOpts::default(),
            PrecondPrecision::Single,
        );
        assert_eq!(lo.precision(), PrecondPrecision::Single);
        assert_eq!(full.precision(), PrecondPrecision::Full);
        let r = DMat::from_fn(n, 3, |i, j| ((i * 3 + j) % 11) as f64 - 5.0);
        let zf = full.apply_new(&r);
        let zl = lo.apply_new(&r);
        let mut diff = zl.clone();
        diff.axpy(-1.0, &zf);
        let rel = diff.fro_norm() / zf.fro_norm();
        assert!(rel < 1e-5, "f32 hierarchy drifted: rel err {rel:.3e}");
        // The compact hierarchy must stream roughly half the matrix bytes.
        let bf = full.bytes_per_apply().unwrap();
        let bl = lo.bytes_per_apply().unwrap();
        assert!(
            bl * 2 <= bf + bf / 8,
            "bytes not halved: {bl} vs {bf} (full)"
        );
    }

    #[test]
    fn single_precision_cycle_still_contracts() {
        let p = poisson2d::<f64>(24, 24);
        let n = p.a.nrows();
        let amg = Amg::with_precision(
            &p.a,
            p.near_nullspace.as_ref(),
            &AmgOpts::default(),
            PrecondPrecision::Single,
        );
        let b = DMat::from_fn(n, 1, |i, _| ((i % 7) as f64) - 3.0);
        let mut x = DMat::zeros(n, 1);
        let r0 = residual_norm(&p.a, &b, &x);
        // The low hierarchy is a fixed linear operator (promotion is exact),
        // so the stationary iteration still converges in f64.
        for _ in 0..25 {
            let mut r = p.a.apply(&x);
            r.scale(-1.0);
            r.axpy(1.0, &b);
            let z = amg.apply_new(&r);
            x.axpy(1.0, &z);
        }
        let rfinal = residual_norm(&p.a, &b, &x);
        assert!(rfinal < 1e-6 * r0, "lo V-cycle stagnated: {rfinal:.3e}");
    }

    #[test]
    fn nonlinear_smoother_falls_back_to_full_precision() {
        let p = poisson2d::<f64>(12, 12);
        let amg = Amg::with_precision(
            &p.a,
            None,
            &AmgOpts {
                smoother: SmootherKind::Gmres { iters: 3 },
                ..Default::default()
            },
            PrecondPrecision::Single,
        );
        assert_eq!(amg.precision(), PrecondPrecision::Full);
        assert!(PrecondOp::<f64>::is_variable(&amg));
    }

    #[test]
    fn jacobi_smoother_supports_single_precision() {
        let p = poisson2d::<f64>(20, 20);
        let opts = AmgOpts {
            smoother: SmootherKind::Jacobi {
                omega: 0.67,
                iters: 2,
            },
            ..Default::default()
        };
        let full = Amg::new(&p.a, p.near_nullspace.as_ref(), &opts);
        let lo = Amg::with_precision(
            &p.a,
            p.near_nullspace.as_ref(),
            &opts,
            PrecondPrecision::Single,
        );
        assert_eq!(lo.precision(), PrecondPrecision::Single);
        let n = p.a.nrows();
        let r = DMat::from_fn(n, 2, |i, j| ((i + j) % 5) as f64 - 2.0);
        let zf = full.apply_new(&r);
        let zl = lo.apply_new(&r);
        let mut diff = zl.clone();
        diff.axpy(-1.0, &zf);
        assert!(diff.fro_norm() < 1e-5 * zf.fro_norm().max(1.0));
    }

    #[test]
    fn coarse_agglom_model_picks_subset_and_counts_traffic() {
        let p = poisson2d::<f64>(32, 32);
        let amg = Amg::new(&p.a, p.near_nullspace.as_ref(), &AmgOpts::default());
        let cn = amg.coarse_n();
        assert!(cn > 0 && cn <= 4096);
        for ranks in [4usize, 512, 4096, 8192] {
            let m = amg.coarse_agglom(ranks).expect("policy should fire");
            assert_eq!(m.coarse_n, cn);
            assert_eq!(m.ranks, ranks);
            assert!(m.subset >= 1 && m.subset <= ranks);
            assert!(m.subset.is_power_of_two());
            // The subset must actually shrink the participant count at scale.
            if ranks >= 512 {
                assert!(m.subset < ranks, "subset {} at P={ranks}", m.subset);
            }
            assert_eq!(m.layout.n(), cn);
            assert_eq!(m.layout.nranks(), m.subset);
            // Gather moves at most every coarse row once, and the scatter
            // mirrors it exactly.
            assert!(m.gather_bytes <= cn * std::mem::size_of::<f64>());
            assert_eq!(m.gather_bytes, m.scatter_bytes);
            assert_eq!(m.gather_msgs, m.scatter_msgs);
            assert!(m.gather_msgs <= ranks + m.subset);
            assert!(m.solve_flops > 0);
        }
        // Subset sizing follows the rows-per-rank rule.
        let m = amg.coarse_agglom(8192).unwrap();
        assert_eq!(m.subset, cn.div_ceil(32).next_power_of_two());
        // Single rank: nothing to agglomerate.
        assert!(amg.coarse_agglom(1).is_none());
        // Disabled policy.
        let off = Amg::new(
            &p.a,
            p.near_nullspace.as_ref(),
            &AmgOpts {
                agglom_threshold: 0,
                ..Default::default()
            },
        );
        assert!(off.coarse_agglom(4096).is_none());
        // Threshold below the coarse size: policy never fires.
        let high = Amg::new(
            &p.a,
            p.near_nullspace.as_ref(),
            &AmgOpts {
                agglom_threshold: 1,
                ..Default::default()
            },
        );
        assert!(high.coarse_agglom(4096).is_none());
    }

    #[test]
    fn singular_coarse_regularizes_once_at_setup() {
        // Identity plus one duplicated row pair (rows 0 and 1 both `[1 1]`):
        // exactly singular with a unit diagonal, so the coarse factor must
        // fall back to the shifted copy — decided at setup, visible through
        // the accessor, and the apply path still produces finite output
        // without any per-apply re-check.
        let n = 12;
        let mut coo = Coo::with_capacity(n, n, n + 2);
        for i in 0..n {
            coo.push(i, i, 1.0);
        }
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        let a: Csr<f64> = coo.to_csr();
        let amg = Amg::new(
            &a,
            None,
            &AmgOpts {
                coarse_size: 64, // no coarsening: the singular A is the coarse op
                ..Default::default()
            },
        );
        assert_eq!(amg.nlevels(), 1);
        assert!(amg.coarse_regularized());
        let r = DMat::from_fn(n, 1, |i, _| (i % 3) as f64);
        let z = amg.apply_new(&r);
        assert!(z.as_slice().iter().all(|v| v.is_finite()));
        // A well-posed operator keeps the direct factor.
        let p = poisson2d::<f64>(16, 16);
        let ok = Amg::new(&p.a, p.near_nullspace.as_ref(), &AmgOpts::default());
        assert!(!ok.coarse_regularized());
    }

    #[test]
    fn elasticity_with_rigid_body_modes() {
        use kryst_pde::elasticity::{elasticity3d, ElasticityOpts};
        let prob = elasticity3d::<f64>(&ElasticityOpts {
            ne: 4,
            ..Default::default()
        });
        let a = &prob.problem.a;
        let amg = Amg::new(
            a,
            prob.problem.near_nullspace.as_ref(),
            &AmgOpts {
                smoother: SmootherKind::Chebyshev { degree: 3 },
                ..Default::default()
            },
        );
        let n = a.nrows();
        let b = DMat::from_fn(n, 1, |i, _| prob.rhs[i]);
        let mut x = DMat::zeros(n, 1);
        let r0 = b.fro_norm();
        for _ in 0..25 {
            let mut r = a.apply(&x);
            r.scale(-1.0);
            r.axpy(1.0, &b);
            let z = amg.apply_new(&r);
            x.axpy(1.0, &z);
        }
        let rfinal = residual_norm(a, &b, &x);
        assert!(
            rfinal < 1e-5 * r0,
            "elasticity V-cycle: {rfinal:.3e} of {r0:.3e}"
        );
    }
}
