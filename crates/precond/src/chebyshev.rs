//! Chebyshev polynomial smoother.
//!
//! PETSc's default multigrid smoother; a *linear* (non-variable)
//! preconditioner, which is why the paper's §IV-C can use plain right
//! preconditioning with LGMRES/GCRO-DR when Chebyshev smooths the V-cycle.
//! Targets the upper part `[λ_max/ratio, 1.1·λ_max]` of the spectrum of
//! `D⁻¹·A`, with `λ_max` estimated by a few power iterations.

use kryst_dense::DMat;
use kryst_par::PrecondOp;
use kryst_scalar::{Real, Scalar};
use kryst_sparse::{Csr, PrecondWorkspace};
use std::sync::Mutex;

/// Chebyshev smoother of fixed degree.
pub struct Chebyshev<S: Scalar> {
    a: Csr<S>,
    inv_diag: Vec<S>,
    degree: usize,
    /// Smoothing interval `[lo, hi]` on the spectrum of `D⁻¹A`.
    lo: f64,
    hi: f64,
    /// Scratch pool for standalone applies (`apply` takes `&self`); AMG
    /// threads its own pool through [`Chebyshev::smooth_ws`] instead.
    ws: Mutex<PrecondWorkspace<S>>,
}

impl<S: Scalar> Chebyshev<S> {
    /// Build a degree-`degree` smoother; `ratio` sets the targeted interval
    /// (PETSc default ≈ 10: smooth `[λmax/10, 1.1·λmax]`).
    pub fn new(a: &Csr<S>, degree: usize, ratio: f64) -> Self {
        Self::with_diag(a, &a.diag(), degree, ratio)
    }

    /// [`Chebyshev::new`] with an already-extracted diagonal — lets callers
    /// that have scanned the matrix once (e.g. AMG setup) avoid a second
    /// `diag()` pass.
    pub fn with_diag(a: &Csr<S>, diag: &[S], degree: usize, ratio: f64) -> Self {
        let inv_diag: Vec<S> = diag
            .iter()
            .map(|&d| {
                assert!(d != S::zero(), "Chebyshev: zero diagonal");
                S::one() / d
            })
            .collect();
        let lmax = estimate_lmax(a, &inv_diag);
        Self {
            a: a.clone(),
            inv_diag,
            degree,
            lo: lmax / ratio,
            hi: 1.1 * lmax,
            ws: Mutex::new(PrecondWorkspace::new()),
        }
    }

    /// Estimated upper spectral bound of `D⁻¹A` used by this smoother.
    pub fn lambda_max(&self) -> f64 {
        self.hi / 1.1
    }

    /// The smoothing interval `[lo, hi]` on the spectrum of `D⁻¹A`.
    pub fn interval(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Polynomial degree.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The stored inverse diagonal.
    pub fn inv_diag(&self) -> &[S] {
        &self.inv_diag
    }

    /// Run `x ⟵ x + p(D⁻¹A)·D⁻¹·(b − A·x)` via the standard three-term
    /// Chebyshev recurrence.
    pub fn smooth(&self, b: &DMat<S>, x: &mut DMat<S>) {
        let mut ws = self.ws.lock().unwrap();
        self.smooth_ws(b, x, &mut ws);
    }

    /// [`Chebyshev::smooth`] drawing its two scratch multivectors from a
    /// caller-provided pool: zero allocations in steady state, and all `p`
    /// columns stream through each matrix sweep.
    pub fn smooth_ws(&self, b: &DMat<S>, x: &mut DMat<S>, ws: &mut PrecondWorkspace<S>) {
        let n = b.nrows();
        let p = b.ncols();
        let theta = 0.5 * (self.hi + self.lo);
        let delta = 0.5 * (self.hi - self.lo);
        let mut r = ws.take(n, p);
        let mut d = ws.take(n, p);
        // r = D⁻¹(b − A x)
        let residual = |x: &DMat<S>, r: &mut DMat<S>| {
            self.a.spmm(x, r);
            for j in 0..p {
                let bj = b.col(j);
                let rj = r.col_mut(j);
                for i in 0..n {
                    rj[i] = self.inv_diag[i] * (bj[i] - rj[i]);
                }
            }
        };
        residual(x, &mut r);
        // d = r/θ; x += d
        d.copy_from(&r);
        d.scale(S::from_f64(1.0 / theta));
        x.axpy(S::one(), &d);
        let sigma = theta / delta;
        let mut rho = 1.0 / sigma;
        for _ in 1..self.degree {
            residual(x, &mut r);
            let rho_next = 1.0 / (2.0 * sigma - rho);
            // d ⟵ ρ'ρ·d + 2ρ'/δ·r
            let c1 = S::from_f64(rho_next * rho);
            let c2 = S::from_f64(2.0 * rho_next / delta);
            for j in 0..p {
                let rj = r.col(j);
                let dj = d.col_mut(j);
                for i in 0..n {
                    dj[i] = c1 * dj[i] + c2 * rj[i];
                }
            }
            x.axpy(S::one(), &d);
            rho = rho_next;
        }
        ws.put(r);
        ws.put(d);
    }
}

/// Power iteration estimate of `λ_max(D⁻¹A)`.
fn estimate_lmax<S: Scalar>(a: &Csr<S>, inv_diag: &[S]) -> f64 {
    let n = a.nrows();
    let mut v: Vec<S> = (0..n)
        .map(|i| S::from_f64(1.0 + 0.3 * ((i * 7 % 13) as f64 - 6.0) / 6.0))
        .collect();
    let mut w = vec![S::zero(); n];
    let mut lmax = 1.0f64;
    for _ in 0..12 {
        a.spmv(&v, &mut w);
        let mut norm = 0.0f64;
        for i in 0..n {
            w[i] *= inv_diag[i];
            norm += w[i].abs_sqr().to_f64();
        }
        let norm = norm.sqrt();
        if norm == 0.0 {
            break;
        }
        lmax = norm;
        let inv = S::from_f64(1.0 / norm);
        for i in 0..n {
            v[i] = w[i] * inv;
        }
    }
    lmax
}

impl<S: Scalar> PrecondOp<S> for Chebyshev<S> {
    fn nrows(&self) -> usize {
        self.a.nrows()
    }
    fn apply(&self, r: &DMat<S>, z: &mut DMat<S>) {
        let _t = kryst_obs::profile(kryst_obs::Phase::Precond);
        let _sp = kryst_obs::traced(kryst_obs::TraceKind::PrecondApply);
        z.set_zero();
        self.smooth(r, z);
    }
    // Chebyshev is a fixed polynomial in A: a LINEAR preconditioner.
    fn is_variable(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kryst_sparse::Coo;

    fn laplace1d(n: usize) -> Csr<f64> {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i > 0 {
                c.push(i, i - 1, -1.0);
                c.push(i - 1, i, -1.0);
            }
        }
        c.to_csr()
    }

    #[test]
    fn lmax_estimate_close_to_two() {
        // λmax(D⁻¹A) for the 1D Laplacian tends to 2.
        let a = laplace1d(50);
        let cheb = Chebyshev::new(&a, 3, 10.0);
        let l = cheb.lambda_max();
        assert!(l > 1.5 && l < 2.2, "λmax estimate {l}");
    }

    #[test]
    fn smoother_damps_high_frequencies() {
        let n = 64;
        let a = laplace1d(n);
        let cheb = Chebyshev::new(&a, 4, 10.0);
        // Error = highest-frequency mode; solve A x = 0 starting from it.
        let mut x = DMat::from_fn(n, 1, |i, _| if i % 2 == 0 { 1.0 } else { -1.0 });
        let b = DMat::zeros(n, 1);
        let e0 = x.fro_norm();
        cheb.smooth(&b, &mut x);
        let e1 = x.fro_norm();
        assert!(e1 < 0.15 * e0, "high-frequency error {e0} → {e1}");
    }

    #[test]
    fn apply_is_linear() {
        // M⁻¹(αr) = α·M⁻¹r — Chebyshev is a fixed polynomial.
        let a = laplace1d(20);
        let cheb = Chebyshev::new(&a, 3, 10.0);
        let r = DMat::from_fn(20, 1, |i, _| (i as f64).sin());
        let mut r2 = r.clone();
        r2.scale(3.0);
        let z1 = cheb.apply_new(&r);
        let z2 = cheb.apply_new(&r2);
        for i in 0..20 {
            assert!((z2[(i, 0)] - 3.0 * z1[(i, 0)]).abs() < 1e-12);
        }
        assert!(!PrecondOp::<f64>::is_variable(&cheb));
    }
}
