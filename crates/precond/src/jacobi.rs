//! Point Jacobi preconditioning / smoothing.

use kryst_dense::DMat;
use kryst_par::PrecondOp;
use kryst_scalar::Scalar;
use kryst_sparse::Csr;

/// Diagonal (Jacobi) preconditioner `M⁻¹ = ω·D⁻¹`.
pub struct Jacobi<S> {
    inv_diag: Vec<S>,
    weight: S,
}

impl<S: Scalar> Jacobi<S> {
    /// Build from the matrix diagonal with damping weight `omega`
    /// (1.0 = plain Jacobi, ≈0.67 for smoothing).
    pub fn new(a: &Csr<S>, omega: f64) -> Self {
        Self::with_diag(&a.diag(), omega)
    }

    /// Build from an already-extracted diagonal — lets callers that have
    /// scanned the matrix once (e.g. AMG setup) avoid a second `diag()`
    /// pass.
    pub fn with_diag(diag: &[S], omega: f64) -> Self {
        let inv_diag = diag
            .iter()
            .map(|&d| {
                assert!(d != S::zero(), "Jacobi: zero diagonal entry");
                S::one() / d
            })
            .collect();
        Self {
            inv_diag,
            weight: S::from_f64(omega),
        }
    }

    /// The stored scaled-inverse diagonal (ω already excluded).
    pub fn inv_diag(&self) -> &[S] {
        &self.inv_diag
    }

    /// The damping weight ω.
    pub fn weight(&self) -> S {
        self.weight
    }

    /// One smoothing sweep: `x ⟵ x + ω·D⁻¹·(b − A·x)` repeated `iters` times.
    pub fn smooth(&self, a: &Csr<S>, b: &DMat<S>, x: &mut DMat<S>, iters: usize) {
        let mut r = DMat::zeros(b.nrows(), b.ncols());
        self.smooth_with(a, b, x, iters, &mut r);
    }

    /// [`Jacobi::smooth`] with caller-provided residual scratch (`n × p`):
    /// performs no allocations.
    pub fn smooth_with(
        &self,
        a: &Csr<S>,
        b: &DMat<S>,
        x: &mut DMat<S>,
        iters: usize,
        r: &mut DMat<S>,
    ) {
        for _ in 0..iters {
            a.spmm(x, r);
            for j in 0..b.ncols() {
                let bj = b.col(j);
                let rj = r.col(j);
                let xj = x.col_mut(j);
                for i in 0..bj.len() {
                    xj[i] += self.weight * self.inv_diag[i] * (bj[i] - rj[i]);
                }
            }
        }
    }
}

impl<S: Scalar> PrecondOp<S> for Jacobi<S> {
    fn nrows(&self) -> usize {
        self.inv_diag.len()
    }
    fn apply(&self, r: &DMat<S>, z: &mut DMat<S>) {
        let _t = kryst_obs::profile(kryst_obs::Phase::Precond);
        let _sp = kryst_obs::traced(kryst_obs::TraceKind::PrecondApply);
        // `r` and `z` are distinct borrows — scale straight across, no
        // per-column clone.
        for j in 0..r.ncols() {
            let rj = r.col(j);
            let zj = z.col_mut(j);
            for i in 0..rj.len() {
                zj[i] = self.weight * self.inv_diag[i] * rj[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kryst_sparse::Coo;

    fn spd(n: usize) -> Csr<f64> {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 4.0 + i as f64 * 0.1);
            if i > 0 {
                c.push(i, i - 1, -1.0);
                c.push(i - 1, i, -1.0);
            }
        }
        c.to_csr()
    }

    #[test]
    fn apply_scales_by_inverse_diagonal() {
        let a = spd(5);
        let m = Jacobi::new(&a, 1.0);
        let r = DMat::from_fn(5, 1, |i, _| (i + 1) as f64);
        let z = m.apply_new(&r);
        for i in 0..5 {
            assert!((z[(i, 0)] - (i + 1) as f64 / (4.0 + i as f64 * 0.1)).abs() < 1e-14);
        }
    }

    #[test]
    fn smoothing_reduces_residual() {
        let a = spd(30);
        let m = Jacobi::new(&a, 0.8);
        let b = DMat::from_fn(30, 2, |i, j| ((i + j) % 5) as f64);
        let mut x = DMat::zeros(30, 2);
        let r0 = b.fro_norm();
        m.smooth(&a, &b, &mut x, 10);
        let mut r = a.apply(&x);
        r.axpy(-1.0, &b);
        assert!(
            r.fro_norm() < 0.5 * r0,
            "residual {} vs {}",
            r.fro_norm(),
            r0
        );
    }
}
