//! ILU(0) — incomplete LU factorization with zero fill-in.
//!
//! The paper's §IV-B closes by noting that recycling lets one relax the
//! setup of robust preconditioners, naming the "level of fill-in for
//! incomplete factorizations" as one such knob; ILU(0) is that family's
//! cheapest member and serves as a mid-strength baseline between Jacobi and
//! AMG. The factorization keeps exactly the sparsity pattern of `A`.

#![allow(clippy::needless_range_loop)] // index loops mirror the BLAS/LAPACK reference forms

use kryst_dense::DMat;
use kryst_par::{PrecondOp, PrecondPrecision};
use kryst_rt::par::{for_each_range, max_threads, SendPtr};
use kryst_scalar::{Demote, Scalar};
use kryst_sparse::Csr;
use std::sync::Mutex;

/// Column-register block width for the multi-RHS sweeps.
const BW: usize = 8;

/// Minimum rows in a topological level before the sweep dispatches to the
/// worker pool; smaller levels (e.g. every level of a 1-D chain) run inline.
const PAR_MIN_ROWS: usize = 64;

/// Minimum level *work* (rows × RHS columns) before a level dispatches to
/// the pool: narrow blocks need proportionally wider levels for the
/// per-dispatch cost (~1 µs) to amortize. At `p = 8` this is just
/// `PAR_MIN_ROWS`; a single-column apply needs a 512-row level.
const PAR_MIN_WORK: usize = 512;

/// ILU(0) preconditioner: `M = L̃·Ũ` on the pattern of `A`.
///
/// Application uses a *level-scheduled* sweep: rows are grouped at setup
/// into topological levels of the L (resp. U) dependency DAG, rows within a
/// level are solved in parallel, and all `p` right-hand-side columns stream
/// through each row in one pass. Per-row arithmetic order is exactly that
/// of the serial [`Ilu0::solve_col`] reference, so the result is
/// bit-identical at any thread count.
pub struct Ilu0<S: Demote> {
    /// Combined factors on A's pattern: strictly-lower part holds L̃ (unit
    /// diagonal implicit), upper part holds Ũ.
    factors: Csr<S>,
    /// Demoted factor copy for the low-precision sweep path: `u32` column
    /// indices + `S::Lo` values on the same row pointers as `factors` —
    /// half the bytes per nonzero for real `f64` systems, swept entirely in
    /// `S::Lo` arithmetic on a packed scratch block. `None` on the
    /// full-precision (default) path.
    lo: Option<LoFactors<S>>,
    /// Storage precision the sweeps run at.
    precision: PrecondPrecision,
    /// Column position of the diagonal entry within each row.
    diag_pos: Vec<usize>,
    /// Forward-sweep level schedule: rows of level `l` are
    /// `fwd_rows[fwd_ptr[l]..fwd_ptr[l + 1]]`.
    fwd_rows: Vec<usize>,
    fwd_ptr: Vec<usize>,
    /// Backward-sweep level schedule (levels of the Ũ dependency DAG).
    bwd_rows: Vec<usize>,
    bwd_ptr: Vec<usize>,
}

/// Compact demoted factors sharing the row pointers of `Ilu0::factors`,
/// plus the pooled row-major scratch block the low-precision sweeps run on.
struct LoFactors<S: Demote> {
    indices: Vec<u32>,
    data: Vec<S::Lo>,
    /// Row-major `n × p` low-precision right-hand-side block (`s[i·p + t]`):
    /// every nonzero of a sweep row touches one contiguous `p`-wide run, so
    /// the inner update vectorizes and streams half the bytes of the
    /// column-major working-precision layout. Grown on first apply, reused
    /// (allocation-free) for every steady-state apply at the same width.
    scratch: Mutex<Vec<S::Lo>>,
}

impl<S: Demote> LoFactors<S> {
    fn build(f: &Csr<S>) -> Self {
        assert!(f.ncols() <= u32::MAX as usize);
        let mut indices = Vec::with_capacity(f.nnz());
        let mut data = Vec::with_capacity(f.nnz());
        for i in 0..f.nrows() {
            for (k, &c) in f.row_indices(i).iter().enumerate() {
                indices.push(c as u32);
                data.push(f.row_values(i)[k].demote());
            }
        }
        Self {
            indices,
            data,
            scratch: Mutex::new(Vec::new()),
        }
    }
}

impl<S: Demote> Ilu0<S> {
    /// Factor `a` (square, with a full diagonal). Returns `None` when a
    /// pivot vanishes (the pattern-restricted elimination broke down).
    /// Factors are stored and applied in full precision; see
    /// [`Ilu0::with_precision`] for the mixed-precision variant.
    pub fn new(a: &Csr<S>) -> Option<Self> {
        Self::with_precision(a, PrecondPrecision::Full)
    }

    /// Factor `a` with an explicit sweep-storage precision. The
    /// factorization itself always runs in the working precision `S`; with
    /// [`PrecondPrecision::Single`] the finished factors are additionally
    /// demoted into a compact (`u32` index + `S::Lo` value) copy which the
    /// level-scheduled sweeps then stream. The low-precision sweeps demote
    /// the right-hand-side block once into a packed row-major scratch,
    /// run the whole forward/backward recurrence in `S::Lo` arithmetic
    /// (contiguous, vectorizable, half the bytes end to end) and promote
    /// the result back — the preconditioner is inexact by construction and
    /// flexible outer methods absorb the single-precision rounding.
    pub fn with_precision(a: &Csr<S>, precision: PrecondPrecision) -> Option<Self> {
        let mut ilu = Self::factor(a)?;
        if precision == PrecondPrecision::Single {
            ilu.lo = Some(LoFactors::build(&ilu.factors));
            ilu.precision = PrecondPrecision::Single;
        }
        Some(ilu)
    }

    fn factor(a: &Csr<S>) -> Option<Self> {
        let n = a.nrows();
        assert_eq!(n, a.ncols());
        let mut f = a.clone();
        let mut diag_pos = vec![usize::MAX; n];
        for i in 0..n {
            match f.row_indices(i).binary_search(&i) {
                Ok(k) => diag_pos[i] = k,
                Err(_) => return None, // missing diagonal
            }
        }
        // IKJ-variant Gaussian elimination restricted to the pattern.
        for i in 0..n {
            // For each k < i present in row i:
            let row_cols: Vec<usize> = f.row_indices(i).to_vec();
            for (ki, &k) in row_cols.iter().enumerate() {
                if k >= i {
                    break;
                }
                let pivot = f.row_values(k)[diag_pos[k]];
                if pivot == S::zero() || !pivot.is_finite() {
                    return None;
                }
                let lik = f.row_values(i)[ki] / pivot;
                f.row_values_mut(i)[ki] = lik;
                if lik == S::zero() {
                    continue;
                }
                // row_i ⟵ row_i − l_ik · row_k (pattern-restricted, j > k).
                let krange: Vec<(usize, S)> = {
                    let kc = f.row_indices(k);
                    let kv = f.row_values(k);
                    kc.iter()
                        .zip(kv)
                        .filter(|(&c, _)| c > k)
                        .map(|(&c, &v)| (c, v))
                        .collect()
                };
                for (c, ukj) in krange {
                    if let Ok(pos) = f.row_indices(i).binary_search(&c) {
                        let upd = lik * ukj;
                        f.row_values_mut(i)[pos] -= upd;
                    }
                }
            }
            if f.row_values(i)[diag_pos[i]] == S::zero() {
                return None;
            }
        }
        let (fwd_rows, fwd_ptr) = forward_levels(&f);
        let (bwd_rows, bwd_ptr) = backward_levels(&f, &diag_pos);
        Some(Self {
            factors: f,
            lo: None,
            precision: PrecondPrecision::Full,
            diag_pos,
            fwd_rows,
            fwd_ptr,
            bwd_rows,
            bwd_ptr,
        })
    }

    /// Apply `M⁻¹ = Ũ⁻¹·L̃⁻¹` to one column — the serial reference the
    /// level-scheduled sweep is tested bit-identical against.
    pub fn solve_col(&self, rhs: &[S], out: &mut [S]) {
        let n = self.factors.nrows();
        out.copy_from_slice(rhs);
        // Forward: L̃ (unit diagonal).
        for i in 0..n {
            let cols = self.factors.row_indices(i);
            let vals = self.factors.row_values(i);
            let mut acc = out[i];
            for (k, &c) in cols.iter().enumerate() {
                if c >= i {
                    break;
                }
                acc -= vals[k] * out[c];
            }
            out[i] = acc;
        }
        // Backward: Ũ.
        for i in (0..n).rev() {
            let cols = self.factors.row_indices(i);
            let vals = self.factors.row_values(i);
            let dp = self.diag_pos[i];
            let mut acc = out[i];
            for k in dp + 1..cols.len() {
                acc -= vals[k] * out[cols[k]];
            }
            out[i] = acc / vals[dp];
        }
    }
}

impl<S: Demote> Ilu0<S> {
    /// Run one level of the forward (unit-L̃) sweep over all `p` columns of
    /// `z`, in place. `zp` points at `z`'s column-major storage (`n × p`).
    ///
    /// SAFETY: every row in `rows` writes only its own entries `z[i + j·n]`
    /// and reads entries of rows in strictly earlier levels; the caller
    /// guarantees `rows` come from one level, so parallel parts touch
    /// disjoint locations.
    unsafe fn fwd_level(&self, rows: &[usize], zp: *mut S, n: usize, p: usize) {
        for &i in rows {
            self.fwd_row(i, zp, n, p);
        }
    }

    /// Backward (Ũ) analogue of [`Self::fwd_level`]; same safety contract.
    unsafe fn bwd_level(&self, rows: &[usize], zp: *mut S, n: usize, p: usize) {
        for &i in rows {
            self.bwd_row(i, zp, n, p);
        }
    }

    /// One forward-substitution row over all `p` columns of `z`, in place.
    ///
    /// SAFETY: writes only `z[i + j·n]`; reads rows this one depends on,
    /// which the caller guarantees are already final.
    #[inline]
    unsafe fn fwd_row(&self, i: usize, zp: *mut S, n: usize, p: usize) {
        let cols = self.factors.row_indices(i);
        let vals = self.factors.row_values(i);
        let lower = cols.partition_point(|&c| c < i);
        if p == 1 {
            // Single-column fast path: plain scalar recurrence, no register
            // block. Accumulation order matches the blocked path (and
            // `solve_col`) exactly.
            let mut acc = *zp.add(i);
            for k in 0..lower {
                acc -= vals[k] * *zp.add(cols[k]);
            }
            *zp.add(i) = acc;
            return;
        }
        let mut j0 = 0;
        while j0 < p {
            let bw = (p - j0).min(BW);
            let mut acc = [S::zero(); BW];
            for t in 0..bw {
                acc[t] = *zp.add((j0 + t) * n + i);
            }
            for k in 0..lower {
                let v = vals[k];
                let c = cols[k];
                for t in 0..bw {
                    acc[t] -= v * *zp.add((j0 + t) * n + c);
                }
            }
            for t in 0..bw {
                *zp.add((j0 + t) * n + i) = acc[t];
            }
            j0 += bw;
        }
    }

    /// Backward (Ũ) analogue of [`Self::fwd_row`]; same safety contract.
    #[inline]
    unsafe fn bwd_row(&self, i: usize, zp: *mut S, n: usize, p: usize) {
        let cols = self.factors.row_indices(i);
        let vals = self.factors.row_values(i);
        let dp = self.diag_pos[i];
        let piv = vals[dp];
        if p == 1 {
            let mut acc = *zp.add(i);
            for k in dp + 1..cols.len() {
                acc -= vals[k] * *zp.add(cols[k]);
            }
            *zp.add(i) = acc / piv;
            return;
        }
        let mut j0 = 0;
        while j0 < p {
            let bw = (p - j0).min(BW);
            let mut acc = [S::zero(); BW];
            for t in 0..bw {
                acc[t] = *zp.add((j0 + t) * n + i);
            }
            for k in dp + 1..cols.len() {
                let v = vals[k];
                let c = cols[k];
                for t in 0..bw {
                    acc[t] -= v * *zp.add((j0 + t) * n + c);
                }
            }
            for t in 0..bw {
                *zp.add((j0 + t) * n + i) = acc[t] / piv;
            }
            j0 += bw;
        }
    }

    /// Low-precision forward row over the packed row-major scratch
    /// (`s[row·p + t]`): streams `u32` indices + `S::Lo` values (half the
    /// bytes of the full path for real `f64`) and runs the recurrence in
    /// `S::Lo` arithmetic — every nonzero touches one contiguous `p`-wide
    /// run, so the update vectorizes at twice the lane width of the
    /// working precision. Same safety contract as [`Self::fwd_row`] with
    /// `z` replaced by the scratch block.
    #[inline]
    unsafe fn fwd_row_lo(&self, lo: &LoFactors<S>, i: usize, sp: *mut S::Lo, p: usize) {
        let rng = self.factors.indptr()[i]..self.factors.indptr()[i + 1];
        let cols = &lo.indices[rng.clone()];
        let vals = &lo.data[rng];
        // The diagonal splits the row: everything before it is L̃.
        let lower = self.diag_pos[i];
        if p == 1 {
            let mut acc = *sp.add(i);
            for k in 0..lower {
                acc -= vals[k] * *sp.add(cols[k] as usize);
            }
            *sp.add(i) = acc;
            return;
        }
        let mut j0 = 0;
        while j0 < p {
            let bw = (p - j0).min(BW);
            if bw == BW {
                // Full-width fast path: constant trip count so the `BW`-lane
                // update compiles to straight vector code.
                let base = i * p + j0;
                let mut acc = [S::Lo::zero(); BW];
                for t in 0..BW {
                    acc[t] = *sp.add(base + t);
                }
                for k in 0..lower {
                    let v = vals[k];
                    let cb = cols[k] as usize * p + j0;
                    for t in 0..BW {
                        acc[t] -= v * *sp.add(cb + t);
                    }
                }
                for t in 0..BW {
                    *sp.add(base + t) = acc[t];
                }
                j0 += BW;
                continue;
            }
            let base = i * p + j0;
            let mut acc = [S::Lo::zero(); BW];
            for t in 0..bw {
                acc[t] = *sp.add(base + t);
            }
            for k in 0..lower {
                let v = vals[k];
                let cb = cols[k] as usize * p + j0;
                for t in 0..bw {
                    acc[t] -= v * *sp.add(cb + t);
                }
            }
            for t in 0..bw {
                *sp.add(base + t) = acc[t];
            }
            j0 += bw;
        }
    }

    /// Backward (Ũ) analogue of [`Self::fwd_row_lo`]; the pivot divide also
    /// runs in `S::Lo`.
    #[inline]
    unsafe fn bwd_row_lo(&self, lo: &LoFactors<S>, i: usize, sp: *mut S::Lo, p: usize) {
        let start = self.factors.indptr()[i];
        let rng = start..self.factors.indptr()[i + 1];
        let cols = &lo.indices[rng.clone()];
        let vals = &lo.data[rng];
        let dp = self.diag_pos[i];
        let piv = vals[dp];
        if p == 1 {
            let mut acc = *sp.add(i);
            for k in dp + 1..cols.len() {
                acc -= vals[k] * *sp.add(cols[k] as usize);
            }
            *sp.add(i) = acc / piv;
            return;
        }
        let mut j0 = 0;
        while j0 < p {
            let bw = (p - j0).min(BW);
            if bw == BW {
                // Full-width fast path (see `fwd_row_lo`).
                let base = i * p + j0;
                let mut acc = [S::Lo::zero(); BW];
                for t in 0..BW {
                    acc[t] = *sp.add(base + t);
                }
                for k in dp + 1..cols.len() {
                    let v = vals[k];
                    let cb = cols[k] as usize * p + j0;
                    for t in 0..BW {
                        acc[t] -= v * *sp.add(cb + t);
                    }
                }
                for t in 0..BW {
                    *sp.add(base + t) = acc[t] / piv;
                }
                j0 += BW;
                continue;
            }
            let base = i * p + j0;
            let mut acc = [S::Lo::zero(); BW];
            for t in 0..bw {
                acc[t] = *sp.add(base + t);
            }
            for k in dp + 1..cols.len() {
                let v = vals[k];
                let cb = cols[k] as usize * p + j0;
                for t in 0..bw {
                    acc[t] -= v * *sp.add(cb + t);
                }
            }
            for t in 0..bw {
                *sp.add(base + t) = acc[t] / piv;
            }
            j0 += bw;
        }
    }

    /// One full triangular sweep (forward or backward) over the level
    /// schedule, parallelizing within each level when it is big enough.
    fn sweep(&self, z: &mut DMat<S>, forward: bool) {
        let n = self.factors.nrows();
        let p = z.ncols();
        let (rows, ptr) = if forward {
            (&self.fwd_rows, &self.fwd_ptr)
        } else {
            (&self.bwd_rows, &self.bwd_ptr)
        };
        let zp = SendPtr::new(z.as_mut_slice().as_mut_ptr());
        let max_width = ptr.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
        if max_threads() <= 1 || max_width < PAR_MIN_ROWS || max_width * p < PAR_MIN_WORK {
            // No level is worth a pool dispatch: run the sweep in natural
            // row order, which is itself a topological order for a
            // triangular solve (row i of L̃ depends only on rows < i, of Ũ
            // only on rows > i) and streams the factors sequentially. The
            // per-row arithmetic is shared with the level path, so the
            // result stays bit-identical.
            // SAFETY: serial — each row is final before any row reading it.
            unsafe {
                if forward {
                    for i in 0..n {
                        self.fwd_row(i, zp.ptr(), n, p);
                    }
                } else {
                    for i in (0..n).rev() {
                        self.bwd_row(i, zp.ptr(), n, p);
                    }
                }
            }
            return;
        }
        for l in 0..ptr.len().saturating_sub(1) {
            let lvl = &rows[ptr[l]..ptr[l + 1]];
            if lvl.len() >= PAR_MIN_ROWS && lvl.len() * p >= PAR_MIN_WORK {
                // SAFETY: rows within one level write disjoint entries of z
                // and read only rows from earlier levels (see fwd_level).
                for_each_range(lvl.len(), 0, |lo, hi| unsafe {
                    if forward {
                        self.fwd_level(&lvl[lo..hi], zp.ptr(), n, p);
                    } else {
                        self.bwd_level(&lvl[lo..hi], zp.ptr(), n, p);
                    }
                });
            } else {
                // SAFETY: serial — trivially disjoint.
                unsafe {
                    if forward {
                        self.fwd_level(lvl, zp.ptr(), n, p);
                    } else {
                        self.bwd_level(lvl, zp.ptr(), n, p);
                    }
                }
            }
        }
    }

    /// Level-scheduled sweep over the packed low-precision scratch: same
    /// schedule, dispatch bounds and per-row accumulation order as
    /// [`Self::sweep`], operating on the row-major `n × p` block in `S::Lo`.
    fn sweep_lo(&self, lo: &LoFactors<S>, s: &mut [S::Lo], p: usize, forward: bool) {
        let n = self.factors.nrows();
        let (rows, ptr) = if forward {
            (&self.fwd_rows, &self.fwd_ptr)
        } else {
            (&self.bwd_rows, &self.bwd_ptr)
        };
        let sp = SendPtr::new(s.as_mut_ptr());
        let max_width = ptr.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
        if max_threads() <= 1 || max_width < PAR_MIN_ROWS || max_width * p < PAR_MIN_WORK {
            // SAFETY: serial — natural row order is a topological order.
            unsafe {
                if forward {
                    for i in 0..n {
                        self.fwd_row_lo(lo, i, sp.ptr(), p);
                    }
                } else {
                    for i in (0..n).rev() {
                        self.bwd_row_lo(lo, i, sp.ptr(), p);
                    }
                }
            }
            return;
        }
        for l in 0..ptr.len().saturating_sub(1) {
            let lvl = &rows[ptr[l]..ptr[l + 1]];
            if lvl.len() >= PAR_MIN_ROWS && lvl.len() * p >= PAR_MIN_WORK {
                // SAFETY: rows within one level write disjoint `p`-wide runs
                // of the scratch and read only rows from earlier levels.
                for_each_range(lvl.len(), 0, |a, b| unsafe {
                    for &i in &lvl[a..b] {
                        if forward {
                            self.fwd_row_lo(lo, i, sp.ptr(), p);
                        } else {
                            self.bwd_row_lo(lo, i, sp.ptr(), p);
                        }
                    }
                });
            } else {
                // SAFETY: serial — trivially disjoint.
                unsafe {
                    for &i in lvl {
                        if forward {
                            self.fwd_row_lo(lo, i, sp.ptr(), p);
                        } else {
                            self.bwd_row_lo(lo, i, sp.ptr(), p);
                        }
                    }
                }
            }
        }
    }

    /// The low-precision apply: demote `r` once into the packed scratch,
    /// run both triangular sweeps in `S::Lo`, promote into `z`. The scratch
    /// is retained inside [`LoFactors`], so steady-state applies at a fixed
    /// block width are allocation-free.
    fn apply_lo(&self, lo: &LoFactors<S>, r: &DMat<S>, z: &mut DMat<S>) {
        let n = self.factors.nrows();
        let p = r.ncols();
        let mut guard = lo.scratch.lock().unwrap();
        let s = &mut *guard;
        s.clear();
        s.resize(n * p, S::Lo::zero());
        for j in 0..p {
            let rc = r.col(j);
            for i in 0..n {
                s[i * p + j] = rc[i].demote();
            }
        }
        self.sweep_lo(lo, s, p, true);
        self.sweep_lo(lo, s, p, false);
        for j in 0..p {
            let zc = z.col_mut(j);
            for i in 0..n {
                zc[i] = S::promote_lo(s[i * p + j]);
            }
        }
    }
}

/// Topological levels of the strictly-lower (L̃) dependency DAG:
/// `level(i) = 1 + max level(c)` over lower-triangular nonzeros `c < i`.
fn forward_levels<S: Scalar>(f: &Csr<S>) -> (Vec<usize>, Vec<usize>) {
    let n = f.nrows();
    let mut lvl = vec![0usize; n];
    let mut nlvl = 0usize;
    for i in 0..n {
        let cols = f.row_indices(i);
        let mut l = 0;
        for &c in cols {
            if c >= i {
                break;
            }
            l = l.max(lvl[c] + 1);
        }
        lvl[i] = l;
        nlvl = nlvl.max(l + 1);
    }
    bucket_rows(&lvl, nlvl)
}

/// Topological levels of the strictly-upper (Ũ) dependency DAG, computed
/// from the last row upward.
fn backward_levels<S: Scalar>(f: &Csr<S>, diag_pos: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let n = f.nrows();
    let mut lvl = vec![0usize; n];
    let mut nlvl = 0usize;
    for i in (0..n).rev() {
        let cols = f.row_indices(i);
        let mut l = 0;
        for &c in &cols[diag_pos[i] + 1..] {
            l = l.max(lvl[c] + 1);
        }
        lvl[i] = l;
        nlvl = nlvl.max(l + 1);
    }
    bucket_rows(&lvl, nlvl)
}

/// Bucket rows by level into a flat CSR-style (rows, ptr) pair.
fn bucket_rows(lvl: &[usize], nlvl: usize) -> (Vec<usize>, Vec<usize>) {
    let mut ptr = vec![0usize; nlvl + 1];
    for &l in lvl {
        ptr[l + 1] += 1;
    }
    for l in 0..nlvl {
        ptr[l + 1] += ptr[l];
    }
    let mut rows = vec![0usize; lvl.len()];
    let mut next = ptr.clone();
    for (i, &l) in lvl.iter().enumerate() {
        rows[next[l]] = i;
        next[l] += 1;
    }
    (rows, ptr)
}

impl<S: Demote> PrecondOp<S> for Ilu0<S> {
    fn nrows(&self) -> usize {
        self.factors.nrows()
    }
    fn apply(&self, r: &DMat<S>, z: &mut DMat<S>) {
        let _t = kryst_obs::profile(kryst_obs::Phase::Precond);
        let _sp = kryst_obs::traced(kryst_obs::TraceKind::PrecondApply);
        if let Some(lo) = &self.lo {
            // Nested attribution: the low-precision sweeps also show up
            // under `precond_lp` so reports can separate the f32-storage
            // portion of the apply.
            let _lp = kryst_obs::profile(kryst_obs::Phase::PrecondLp);
            self.apply_lo(lo, r, z);
        } else {
            z.copy_from(r);
            self.sweep(z, true);
            self.sweep(z, false);
        }
    }
    fn precision(&self) -> PrecondPrecision {
        self.precision
    }
    fn bytes_per_apply(&self) -> Option<usize> {
        // Forward + backward together stream every stored nonzero once
        // (lower part forward, diagonal + upper backward) plus the row
        // pointers twice.
        let nnz = self.factors.nnz();
        let ptr_bytes = 2 * (self.factors.nrows() + 1) * std::mem::size_of::<usize>();
        Some(match &self.lo {
            Some(_) => {
                nnz * (std::mem::size_of::<S::Lo>() + std::mem::size_of::<u32>()) + ptr_bytes
            }
            None => nnz * (std::mem::size_of::<S>() + std::mem::size_of::<usize>()) + ptr_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kryst_sparse::Coo;

    fn laplace2d(nx: usize) -> Csr<f64> {
        let n = nx * nx;
        let id = |x: usize, y: usize| y * nx + x;
        let mut c = Coo::new(n, n);
        for y in 0..nx {
            for x in 0..nx {
                let me = id(x, y);
                c.push(me, me, 4.0);
                if x > 0 {
                    c.push(me, id(x - 1, y), -1.0);
                }
                if x + 1 < nx {
                    c.push(me, id(x + 1, y), -1.0);
                }
                if y > 0 {
                    c.push(me, id(x, y - 1), -1.0);
                }
                if y + 1 < nx {
                    c.push(me, id(x, y + 1), -1.0);
                }
            }
        }
        c.to_csr()
    }

    #[test]
    fn exact_for_triangular_patterns() {
        // On a tridiagonal matrix ILU(0) has no discarded fill: M = A.
        let n = 12;
        let mut c = Coo::<f64>::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.5);
            if i > 0 {
                c.push(i, i - 1, -1.0);
                c.push(i - 1, i, -1.0);
            }
        }
        let a = c.to_csr();
        let ilu = Ilu0::new(&a).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 4) as f64).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x_true, &mut b);
        let bm = DMat::from_col_major(n, 1, b);
        let z = ilu.apply_new(&bm);
        for i in 0..n {
            assert!(
                (z[(i, 0)] - x_true[i]).abs() < 1e-12,
                "M ≠ A on tridiagonal"
            );
        }
    }

    #[test]
    fn preconditions_gmres_like_richardson() {
        // Richardson with ILU(0) must contract on the 2D Laplacian.
        let a = laplace2d(12);
        let n = a.nrows();
        let ilu = Ilu0::new(&a).unwrap();
        let b = DMat::from_fn(n, 1, |i, _| ((i % 7) as f64) - 3.0);
        let mut x = DMat::<f64>::zeros(n, 1);
        for _ in 0..80 {
            let mut r = a.apply(&x);
            r.scale(-1.0);
            r.axpy(1.0, &b);
            let z = ilu.apply_new(&r);
            x.axpy(1.0, &z);
        }
        let mut r = a.apply(&x);
        r.axpy(-1.0, &b);
        assert!(
            r.fro_norm() < 1e-8 * b.fro_norm(),
            "rel res {}",
            r.fro_norm() / b.fro_norm()
        );
    }

    #[test]
    fn multi_rhs_consistent() {
        let a = laplace2d(8);
        let n = a.nrows();
        let ilu = Ilu0::new(&a).unwrap();
        let r = DMat::from_fn(n, 3, |i, j| (((i + j) * 5) % 9) as f64 - 4.0);
        let z = ilu.apply_new(&r);
        for j in 0..3 {
            let rj = DMat::from_col_major(n, 1, r.col(j).to_vec());
            let zj = ilu.apply_new(&rj);
            for i in 0..n {
                assert_eq!(z[(i, j)], zj[(i, 0)]);
            }
        }
    }

    #[test]
    fn single_precision_tracks_full_apply() {
        let a = laplace2d(10);
        let n = a.nrows();
        let full = Ilu0::new(&a).unwrap();
        let single = Ilu0::with_precision(&a, PrecondPrecision::Single).unwrap();
        assert_eq!(
            PrecondOp::<f64>::precision(&single),
            PrecondPrecision::Single
        );
        assert_eq!(PrecondOp::<f64>::precision(&full), PrecondPrecision::Full);
        let r = DMat::from_fn(n, 8, |i, j| (((i * 3 + j) % 11) as f64 - 5.0) * 0.37);
        let zf = full.apply_new(&r);
        let zs = single.apply_new(&r);
        let scale = zf.max_abs();
        for i in 0..n {
            for j in 0..8 {
                let err = (zf[(i, j)] - zs[(i, j)]).abs();
                assert!(err < 1e-5 * scale, "err {err} at ({i},{j})");
            }
        }
        // The compact storage must actually cut the reported traffic.
        let bf = PrecondOp::<f64>::bytes_per_apply(&full).unwrap();
        let bs = PrecondOp::<f64>::bytes_per_apply(&single).unwrap();
        assert!(bs * 2 <= bf + 2 * (n + 1) * 8, "bytes {bs} vs {bf}");
    }

    #[test]
    fn single_precision_multi_rhs_consistent() {
        let a = laplace2d(8);
        let n = a.nrows();
        let ilu = Ilu0::with_precision(&a, PrecondPrecision::Single).unwrap();
        let r = DMat::from_fn(n, 3, |i, j| (((i + j) * 5) % 9) as f64 - 4.0);
        let z = ilu.apply_new(&r);
        for j in 0..3 {
            let rj = DMat::from_col_major(n, 1, r.col(j).to_vec());
            let zj = ilu.apply_new(&rj);
            for i in 0..n {
                assert_eq!(z[(i, j)], zj[(i, 0)]);
            }
        }
    }

    #[test]
    fn missing_diagonal_rejected() {
        let mut c = Coo::<f64>::new(2, 2);
        c.push(0, 1, 1.0);
        c.push(1, 0, 1.0);
        assert!(Ilu0::new(&c.to_csr()).is_none());
    }
}
