//! ILU(0) — incomplete LU factorization with zero fill-in.
//!
//! The paper's §IV-B closes by noting that recycling lets one relax the
//! setup of robust preconditioners, naming the "level of fill-in for
//! incomplete factorizations" as one such knob; ILU(0) is that family's
//! cheapest member and serves as a mid-strength baseline between Jacobi and
//! AMG. The factorization keeps exactly the sparsity pattern of `A`.

#![allow(clippy::needless_range_loop)] // index loops mirror the BLAS/LAPACK reference forms

use kryst_dense::DMat;
use kryst_par::PrecondOp;
use kryst_scalar::Scalar;
use kryst_sparse::Csr;

/// ILU(0) preconditioner: `M = L̃·Ũ` on the pattern of `A`.
pub struct Ilu0<S> {
    /// Combined factors on A's pattern: strictly-lower part holds L̃ (unit
    /// diagonal implicit), upper part holds Ũ.
    factors: Csr<S>,
    /// Column position of the diagonal entry within each row.
    diag_pos: Vec<usize>,
}

impl<S: Scalar> Ilu0<S> {
    /// Factor `a` (square, with a full diagonal). Returns `None` when a
    /// pivot vanishes (the pattern-restricted elimination broke down).
    pub fn new(a: &Csr<S>) -> Option<Self> {
        let n = a.nrows();
        assert_eq!(n, a.ncols());
        let mut f = a.clone();
        let mut diag_pos = vec![usize::MAX; n];
        for i in 0..n {
            match f.row_indices(i).binary_search(&i) {
                Ok(k) => diag_pos[i] = k,
                Err(_) => return None, // missing diagonal
            }
        }
        // IKJ-variant Gaussian elimination restricted to the pattern.
        for i in 0..n {
            // For each k < i present in row i:
            let row_cols: Vec<usize> = f.row_indices(i).to_vec();
            for (ki, &k) in row_cols.iter().enumerate() {
                if k >= i {
                    break;
                }
                let pivot = f.row_values(k)[diag_pos[k]];
                if pivot == S::zero() || !pivot.is_finite() {
                    return None;
                }
                let lik = f.row_values(i)[ki] / pivot;
                f.row_values_mut(i)[ki] = lik;
                if lik == S::zero() {
                    continue;
                }
                // row_i ⟵ row_i − l_ik · row_k (pattern-restricted, j > k).
                let krange: Vec<(usize, S)> = {
                    let kc = f.row_indices(k);
                    let kv = f.row_values(k);
                    kc.iter()
                        .zip(kv)
                        .filter(|(&c, _)| c > k)
                        .map(|(&c, &v)| (c, v))
                        .collect()
                };
                for (c, ukj) in krange {
                    if let Ok(pos) = f.row_indices(i).binary_search(&c) {
                        let upd = lik * ukj;
                        f.row_values_mut(i)[pos] -= upd;
                    }
                }
            }
            if f.row_values(i)[diag_pos[i]] == S::zero() {
                return None;
            }
        }
        Some(Self {
            factors: f,
            diag_pos,
        })
    }

    /// Apply `M⁻¹ = Ũ⁻¹·L̃⁻¹` to one column.
    fn solve_col(&self, rhs: &[S], out: &mut [S]) {
        let n = self.factors.nrows();
        out.copy_from_slice(rhs);
        // Forward: L̃ (unit diagonal).
        for i in 0..n {
            let cols = self.factors.row_indices(i);
            let vals = self.factors.row_values(i);
            let mut acc = out[i];
            for (k, &c) in cols.iter().enumerate() {
                if c >= i {
                    break;
                }
                acc -= vals[k] * out[c];
            }
            out[i] = acc;
        }
        // Backward: Ũ.
        for i in (0..n).rev() {
            let cols = self.factors.row_indices(i);
            let vals = self.factors.row_values(i);
            let dp = self.diag_pos[i];
            let mut acc = out[i];
            for k in dp + 1..cols.len() {
                acc -= vals[k] * out[cols[k]];
            }
            out[i] = acc / vals[dp];
        }
    }
}

impl<S: Scalar> PrecondOp<S> for Ilu0<S> {
    fn nrows(&self) -> usize {
        self.factors.nrows()
    }
    fn apply(&self, r: &DMat<S>, z: &mut DMat<S>) {
        for j in 0..r.ncols() {
            let rhs = r.col(j).to_vec();
            self.solve_col(&rhs, z.col_mut(j));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kryst_sparse::Coo;

    fn laplace2d(nx: usize) -> Csr<f64> {
        let n = nx * nx;
        let id = |x: usize, y: usize| y * nx + x;
        let mut c = Coo::new(n, n);
        for y in 0..nx {
            for x in 0..nx {
                let me = id(x, y);
                c.push(me, me, 4.0);
                if x > 0 {
                    c.push(me, id(x - 1, y), -1.0);
                }
                if x + 1 < nx {
                    c.push(me, id(x + 1, y), -1.0);
                }
                if y > 0 {
                    c.push(me, id(x, y - 1), -1.0);
                }
                if y + 1 < nx {
                    c.push(me, id(x, y + 1), -1.0);
                }
            }
        }
        c.to_csr()
    }

    #[test]
    fn exact_for_triangular_patterns() {
        // On a tridiagonal matrix ILU(0) has no discarded fill: M = A.
        let n = 12;
        let mut c = Coo::<f64>::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.5);
            if i > 0 {
                c.push(i, i - 1, -1.0);
                c.push(i - 1, i, -1.0);
            }
        }
        let a = c.to_csr();
        let ilu = Ilu0::new(&a).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 4) as f64).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x_true, &mut b);
        let bm = DMat::from_col_major(n, 1, b);
        let z = ilu.apply_new(&bm);
        for i in 0..n {
            assert!(
                (z[(i, 0)] - x_true[i]).abs() < 1e-12,
                "M ≠ A on tridiagonal"
            );
        }
    }

    #[test]
    fn preconditions_gmres_like_richardson() {
        // Richardson with ILU(0) must contract on the 2D Laplacian.
        let a = laplace2d(12);
        let n = a.nrows();
        let ilu = Ilu0::new(&a).unwrap();
        let b = DMat::from_fn(n, 1, |i, _| ((i % 7) as f64) - 3.0);
        let mut x = DMat::<f64>::zeros(n, 1);
        for _ in 0..80 {
            let mut r = a.apply(&x);
            r.scale(-1.0);
            r.axpy(1.0, &b);
            let z = ilu.apply_new(&r);
            x.axpy(1.0, &z);
        }
        let mut r = a.apply(&x);
        r.axpy(-1.0, &b);
        assert!(
            r.fro_norm() < 1e-8 * b.fro_norm(),
            "rel res {}",
            r.fro_norm() / b.fro_norm()
        );
    }

    #[test]
    fn multi_rhs_consistent() {
        let a = laplace2d(8);
        let n = a.nrows();
        let ilu = Ilu0::new(&a).unwrap();
        let r = DMat::from_fn(n, 3, |i, j| (((i + j) * 5) % 9) as f64 - 4.0);
        let z = ilu.apply_new(&r);
        for j in 0..3 {
            let rj = DMat::from_col_major(n, 1, r.col(j).to_vec());
            let zj = ilu.apply_new(&rj);
            for i in 0..n {
                assert_eq!(z[(i, j)], zj[(i, 0)]);
            }
        }
    }

    #[test]
    fn missing_diagonal_rejected() {
        let mut c = Coo::<f64>::new(2, 2);
        c.push(0, 1, 1.0);
        c.push(1, 0, 1.0);
        assert!(Ilu0::new(&c.to_csr()).is_none());
    }
}
