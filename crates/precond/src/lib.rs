#![warn(missing_docs)]
//! Preconditioners for the `kryst` solvers.
//!
//! * [`jacobi`] — point Jacobi / weighted Jacobi,
//! * [`chebyshev`] — Chebyshev polynomial smoothing (PETSc's default
//!   multigrid smoother, used in the paper's §IV-C LGMRES comparison),
//! * [`smoother`] — fixed-iteration inner Krylov smoothers (GMRES(s),
//!   CG(s)); using one of these anywhere makes the enclosing preconditioner
//!   *variable* and forces the flexible outer solvers, exactly the setup the
//!   paper engineers in §IV ("to make the multigrid cycles nonlinear"),
//! * [`amg`] — smoothed-aggregation algebraic multigrid with a strength
//!   threshold mirroring `-pc_gamg_threshold` and near-nullspace support
//!   (the GAMG stand-in),
//! * [`ilu`] — ILU(0), the zero-fill incomplete factorization (§IV-B names
//!   the fill level as a setup knob recycling lets one relax),
//! * [`schwarz`] — one-level overlapping Schwarz: ASM, RAS, and the
//!   optimized ORAS variant of the paper's eq. (6) with impedance interface
//!   conditions for Maxwell.

pub mod amg;
pub mod chebyshev;
pub mod ilu;
pub mod jacobi;
pub mod schwarz;
pub mod smoother;

pub use amg::{Amg, AmgOpts, CoarseAgglom, SmootherKind};
pub use chebyshev::Chebyshev;
pub use ilu::Ilu0;
pub use jacobi::Jacobi;
pub use schwarz::{Schwarz, SchwarzOpts, SchwarzVariant};
