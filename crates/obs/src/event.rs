//! Typed solver events.
//!
//! Every field is plain data: events must serialize to JSON-lines without
//! external crates and compare exactly in tests. Communication counts are
//! carried as [`CommDelta`] — the *change* in the instrumented counters
//! since the previous event of the same solve, which is what turns the
//! §III-D per-iteration accounting into an asserted artifact.

use std::ops::{Add, AddAssign};

/// Interval change of the instrumented communication counters.
///
/// Mirrors `kryst_par::CommSnapshot` field-for-field but represents a
/// *delta* between two points of a solve rather than a running total (this
/// crate sits below `kryst-par`, so the conversion lives with the caller).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommDelta {
    /// Global reductions (all-reduce operations) in the interval.
    pub reductions: u64,
    /// Payload bytes reduced.
    pub reduction_bytes: u64,
    /// Logically separate products batched into the recorded reductions
    /// (a fused `[CᴴW; VᴴW; WᴴW]` reduction counts 1 reduction, 3 parts).
    pub fused_parts: u64,
    /// Point-to-point messages.
    pub p2p_messages: u64,
    /// Point-to-point payload bytes.
    pub p2p_bytes: u64,
    /// Local floating-point operations.
    pub flops: u64,
    /// Portion of `flops` overlappable with in-flight halo messages.
    pub overlap_flops: u64,
}

impl Add for CommDelta {
    type Output = CommDelta;
    fn add(self, o: CommDelta) -> CommDelta {
        CommDelta {
            reductions: self.reductions + o.reductions,
            reduction_bytes: self.reduction_bytes + o.reduction_bytes,
            fused_parts: self.fused_parts + o.fused_parts,
            p2p_messages: self.p2p_messages + o.p2p_messages,
            p2p_bytes: self.p2p_bytes + o.p2p_bytes,
            flops: self.flops + o.flops,
            overlap_flops: self.overlap_flops + o.overlap_flops,
        }
    }
}

impl AddAssign for CommDelta {
    fn add_assign(&mut self, o: CommDelta) {
        *self = *self + o;
    }
}

/// One (block) iteration of a solver.
#[derive(Debug, Clone)]
pub struct IterationEvent {
    /// Solver family: `"gmres"`, `"fgmres"`, `"lgmres"`, `"cg"`, `"bcg"`,
    /// `"gcrodr"`, `"pseudo-gmres"`, `"pseudo-gcrodr"`, ….
    pub solver: &'static str,
    /// Position of this solve in a sequence of systems (GCRO-DR contexts
    /// count their solves; standalone solvers report 0).
    pub system_index: usize,
    /// Restart-cycle index within the solve (0-based).
    pub cycle: usize,
    /// Global (block) iteration index within the solve (0-based).
    pub iter: usize,
    /// Per-RHS *relative* residual estimates after this iteration.
    pub per_rhs_residuals: Vec<f64>,
    /// Exact communication delta attributed to this iteration (measured
    /// since the previous iteration event; the first iteration of a cycle
    /// absorbs the cycle-start work, the last iteration of the solve
    /// absorbs the trailing update/refresh work).
    pub comm: CommDelta,
    /// Orthogonalization backend in effect (`"cholqr"`, `"mgs"`, …).
    pub orth_backend: &'static str,
    /// Numerical rank detected by the rank-revealing orthogonalization when
    /// it is deficient (`Some(rank) < block width`); `None` when the block
    /// kept full rank.
    pub breakdown_rank: Option<usize>,
    /// Wall-clock nanoseconds since the previous iteration event.
    pub wall_ns: u64,
}

/// What a [`SpanEvent`] measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Solve setup: recycle-space reuse / initial-guess correction
    /// (GCRO-DR Fig. 1 lines 2–9).
    Setup,
    /// A whole restart cycle.
    Cycle,
    /// Restart bookkeeping between cycles.
    Restart,
    /// Recycle-space refresh (Fig. 1 lines 31–38).
    RecycleRefresh,
    /// The deflation eigenproblem (eq. (2) / eq. (3)).
    Eigensolve,
}

impl SpanKind {
    /// Stable lowercase name used in traces.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Setup => "setup",
            SpanKind::Cycle => "cycle",
            SpanKind::Restart => "restart",
            SpanKind::RecycleRefresh => "recycle-refresh",
            SpanKind::Eigensolve => "eigensolve",
        }
    }
}

/// A timed phase of a solve.
///
/// Span deltas are measured with local snapshots and do **not** consume the
/// iteration-delta stream: a span that contains iterations overlaps their
/// deltas; the non-cycle spans (setup, refresh, eigensolve) contain no
/// iterations, so their deltas are disjoint from — and asserted against —
/// the per-iteration accounting.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Solver family (see [`IterationEvent::solver`]).
    pub solver: &'static str,
    /// Position in the system sequence.
    pub system_index: usize,
    /// Phase kind.
    pub kind: SpanKind,
    /// Restart-cycle index the span belongs to.
    pub cycle: usize,
    /// Communication performed inside the span.
    pub comm: CommDelta,
    /// Wall-clock nanoseconds spent in the span.
    pub wall_ns: u64,
}

/// One preconditioner application (AMG V-cycle, Schwarz apply, …).
#[derive(Debug, Clone)]
pub struct PrecondApplyEvent {
    /// Preconditioner kind: `"amg-vcycle"`, `"schwarz-asm"`, ….
    pub kind: &'static str,
    /// Number of right-hand-side columns in the application.
    pub cols: usize,
    /// Structure size: AMG levels or Schwarz subdomains.
    pub detail: usize,
    /// Wall-clock nanoseconds of the application.
    pub wall_ns: u64,
}

/// One halo exchange of a distributed operator application.
#[derive(Debug, Clone)]
pub struct HaloEvent {
    /// Point-to-point messages exchanged.
    pub messages: u64,
    /// Total payload bytes.
    pub bytes: u64,
    /// Right-hand-side columns moved.
    pub cols: usize,
    /// Wall-clock nanoseconds of the exchange + local SpMM.
    pub wall_ns: u64,
}

/// What a [`DiagEvent`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagKind {
    /// Accumulated orthogonality loss on the fused path exceeded the
    /// single-pass budget (`value` = the running amp² loss estimate,
    /// `detail` = fused passes taken this step).
    OrthLoss,
    /// The rank-revealing orthogonalization detected a deficient block
    /// (`value` = detected rank, `detail` = block width).
    RankCollapse,
    /// Recycle-space quality after a GCRO-DR eigensolve (`value` =
    /// smallest harmonic-Ritz magnitude kept, `detail` = vectors kept).
    RitzQuality,
    /// The residual history stalled (`value` = decay ratio over the
    /// detector window, `detail` = window length in iterations).
    Stagnation,
    /// A non-flexible solver was paired with a mixed-precision (f32-storage)
    /// preconditioner: the apply varies at the rounding level between
    /// iterations, which plain left/right preconditioning does not model —
    /// prefer a flexible variant (`value` = 0, `detail` = 0).
    MixedPrecision,
}

impl DiagKind {
    /// Stable lowercase name used in traces.
    pub fn name(self) -> &'static str {
        match self {
            DiagKind::OrthLoss => "orth-loss",
            DiagKind::RankCollapse => "rank-collapse",
            DiagKind::RitzQuality => "ritz-quality",
            DiagKind::Stagnation => "stagnation",
            DiagKind::MixedPrecision => "mixed-precision",
        }
    }
}

/// A convergence-health diagnostic raised mid-solve.
///
/// Diagnostics are advisory: they never change solver behavior, only
/// surface numerics that the adaptive machinery (re-orthogonalization,
/// breakdown fixup, recycle refresh) is reacting to.
#[derive(Debug, Clone)]
pub struct DiagEvent {
    /// Solver family (see [`IterationEvent::solver`]).
    pub solver: &'static str,
    /// Position in the system sequence.
    pub system_index: usize,
    /// Restart-cycle index the diagnostic belongs to.
    pub cycle: usize,
    /// Global (block) iteration index the diagnostic belongs to.
    pub iter: usize,
    /// What was detected.
    pub kind: DiagKind,
    /// Kind-specific magnitude (see [`DiagKind`]).
    pub value: f64,
    /// Kind-specific integer detail (see [`DiagKind`]).
    pub detail: usize,
}

/// Terminal event of a solve.
#[derive(Debug, Clone)]
pub struct SolveEndEvent {
    /// Solver family.
    pub solver: &'static str,
    /// Position in the system sequence.
    pub system_index: usize,
    /// Total (block) iterations performed.
    pub iterations: usize,
    /// All right-hand sides reached tolerance.
    pub converged: bool,
    /// Final per-RHS relative residuals (true residuals).
    pub final_relres: Vec<f64>,
    /// Whole-solve communication totals (equals the sum of the iteration
    /// deltas by construction).
    pub comm_total: CommDelta,
    /// Wall-clock nanoseconds of the whole solve.
    pub wall_ns: u64,
}

/// The event union recorded by a [`crate::recorder::Recorder`].
#[derive(Debug, Clone)]
pub enum Event {
    /// A solve is starting.
    SolveBegin {
        /// Solver family.
        solver: &'static str,
        /// Position in the system sequence.
        system_index: usize,
        /// Operator rows.
        nrows: usize,
        /// Right-hand-side columns.
        nrhs: usize,
        /// Restart length `m`.
        restart: usize,
        /// Recycle dimension `k` (0 for non-recycling solvers).
        recycle: usize,
    },
    /// One (block) iteration.
    Iteration(IterationEvent),
    /// A timed solve phase.
    Span(SpanEvent),
    /// A preconditioner application.
    PrecondApply(PrecondApplyEvent),
    /// A halo exchange.
    Halo(HaloEvent),
    /// A convergence-health diagnostic.
    Diag(DiagEvent),
    /// A solve finished.
    SolveEnd(SolveEndEvent),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_delta_adds_fieldwise() {
        let a = CommDelta {
            reductions: 1,
            reduction_bytes: 8,
            fused_parts: 3,
            p2p_messages: 2,
            p2p_bytes: 64,
            flops: 100,
            overlap_flops: 60,
        };
        let b = CommDelta {
            reductions: 3,
            reduction_bytes: 16,
            fused_parts: 0,
            p2p_messages: 1,
            p2p_bytes: 32,
            flops: 50,
            overlap_flops: 10,
        };
        let c = a + b;
        assert_eq!(c.reductions, 4);
        assert_eq!(c.reduction_bytes, 24);
        assert_eq!(c.fused_parts, 3);
        assert_eq!(c.p2p_messages, 3);
        assert_eq!(c.p2p_bytes, 96);
        assert_eq!(c.flops, 150);
        assert_eq!(c.overlap_flops, 70);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn span_kind_names_are_stable() {
        assert_eq!(SpanKind::Setup.name(), "setup");
        assert_eq!(SpanKind::RecycleRefresh.name(), "recycle-refresh");
        assert_eq!(SpanKind::Eigensolve.name(), "eigensolve");
    }

    #[test]
    fn diag_kind_names_are_stable() {
        assert_eq!(DiagKind::OrthLoss.name(), "orth-loss");
        assert_eq!(DiagKind::RankCollapse.name(), "rank-collapse");
        assert_eq!(DiagKind::RitzQuality.name(), "ritz-quality");
        assert_eq!(DiagKind::Stagnation.name(), "stagnation");
        assert_eq!(DiagKind::MixedPrecision.name(), "mixed-precision");
    }
}
