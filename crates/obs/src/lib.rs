#![warn(missing_docs)]
//! `kryst-obs` — the solver observability layer.
//!
//! The paper's scalability argument (§III-D) is a *counting* argument:
//! reductions, messages, and bytes per iteration. This crate makes those
//! counts first-class, machine-readable artifacts instead of end-of-run
//! totals:
//!
//! * [`event::Event`] — typed events: one [`event::IterationEvent`] per
//!   (block) iteration carrying exact communication **deltas**, solve-level
//!   spans (setup / restart / recycle-refresh / eigensolve), preconditioner
//!   applications, halo exchanges, and solve begin/end markers;
//! * [`recorder::Recorder`] — the pluggable sink trait. The
//!   [`recorder::NullRecorder`] reports `enabled() == false` so the hot
//!   path skips event construction entirely; the
//!   [`recorder::RingRecorder`] buffers events in memory for tests; the
//!   [`recorder::JsonlRecorder`] streams JSON-lines traces for the bench
//!   binaries;
//! * [`json`] — a dependency-free JSON writer/parser (the registry is
//!   offline, so no serde) used for traces and the golden-trace snapshots;
//! * [`view`] — read-side helpers turning an event stream back into the
//!   per-RHS convergence histories and cumulative communication totals the
//!   conformance tests assert on.
//!
//! The invariant the conformance suite leans on: for a single solve, the
//! sum of `IterationEvent` communication deltas equals the solve's total
//! [`CommDelta`] — deltas are *measured* between consecutive events, and
//! the trailing work after the last iteration is folded into that last
//! event by the emitting solver.
//!
//! On top of the event stream sit three observability subsystems:
//!
//! * [`profiler`] — a phase-attributed wall-clock profiler ([`Phase`],
//!   [`Profiler`], the [`profile`] guard) answering *where local time
//!   goes* with per-phase count/total/min/max and log-bucketed latency
//!   histograms; near-free when disabled, so it can stay wired into every
//!   kernel;
//! * [`metrics`] — a named counter/gauge/histogram registry with JSON
//!   snapshots and plain-text exposition, the aggregation point for
//!   per-rank communication imbalance and report glue;
//! * [`diag`] — convergence diagnostics: [`event::DiagEvent`]s for
//!   orthogonality loss, rank collapse, and Ritz quality, plus the
//!   [`StagnationDetector`] over the residual history;
//! * [`wire`] — wire-level transport counters ([`WireStats`]): messages,
//!   payload bytes, and per-rank send/recv time as a backend actually put
//!   them on the wire, the measurement side of the cost-model calibration;
//! * [`span`] / [`timeline`] / [`export`] — distributed tracing: bounded
//!   per-rank span rings with a monotonic local clock plus a
//!   collective-edge logical clock, the rank-0 merge into one rank×time
//!   [`Timeline`] with straggler attribution and reduction-skew
//!   decomposition, and the Chrome-trace/Perfetto JSON exporter.

pub mod diag;
pub mod event;
pub mod export;
pub mod json;
pub mod metrics;
pub mod profiler;
pub mod recorder;
pub mod span;
pub mod timeline;
pub mod view;
pub mod wire;

pub use diag::StagnationDetector;
pub use event::{
    CommDelta, DiagEvent, DiagKind, Event, HaloEvent, IterationEvent, PrecondApplyEvent,
    SolveEndEvent, SpanEvent, SpanKind,
};
pub use export::chrome_trace;
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use profiler::{profile, Phase, PhaseStats, PhaseTimer, ProfileSnapshot, Profiler};
pub use recorder::{JsonlRecorder, NullRecorder, Recorder, RingRecorder, TeeRecorder};
pub use span::{set_trace_enabled, trace_enabled, traced, TraceKind, TraceSpan};
pub use timeline::{ImbalanceReport, RankStream, Timeline};
pub use view::{cumulative_comm, diags_of, history, iteration_events, spans_of};
pub use wire::{WireSnapshot, WireStats};
