#![warn(missing_docs)]
//! `kryst-obs` — the solver observability layer.
//!
//! The paper's scalability argument (§III-D) is a *counting* argument:
//! reductions, messages, and bytes per iteration. This crate makes those
//! counts first-class, machine-readable artifacts instead of end-of-run
//! totals:
//!
//! * [`event::Event`] — typed events: one [`event::IterationEvent`] per
//!   (block) iteration carrying exact communication **deltas**, solve-level
//!   spans (setup / restart / recycle-refresh / eigensolve), preconditioner
//!   applications, halo exchanges, and solve begin/end markers;
//! * [`recorder::Recorder`] — the pluggable sink trait. The
//!   [`recorder::NullRecorder`] reports `enabled() == false` so the hot
//!   path skips event construction entirely; the
//!   [`recorder::RingRecorder`] buffers events in memory for tests; the
//!   [`recorder::JsonlRecorder`] streams JSON-lines traces for the bench
//!   binaries;
//! * [`json`] — a dependency-free JSON writer/parser (the registry is
//!   offline, so no serde) used for traces and the golden-trace snapshots;
//! * [`view`] — read-side helpers turning an event stream back into the
//!   per-RHS convergence histories and cumulative communication totals the
//!   conformance tests assert on.
//!
//! The invariant the conformance suite leans on: for a single solve, the
//! sum of `IterationEvent` communication deltas equals the solve's total
//! [`CommDelta`] — deltas are *measured* between consecutive events, and
//! the trailing work after the last iteration is folded into that last
//! event by the emitting solver.

pub mod event;
pub mod json;
pub mod recorder;
pub mod view;

pub use event::{
    CommDelta, Event, HaloEvent, IterationEvent, PrecondApplyEvent, SolveEndEvent, SpanEvent,
    SpanKind,
};
pub use recorder::{JsonlRecorder, NullRecorder, Recorder, RingRecorder};
pub use view::{cumulative_comm, history, iteration_events, spans_of};
