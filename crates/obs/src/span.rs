//! Per-rank distributed trace spans.
//!
//! Every rank of an SPMD run records timestamped [`TraceSpan`]s — iterations,
//! collectives (with the wire counters the transport measured), halo
//! exchanges, preconditioner applies, coarse-agglomeration stages — into a
//! **bounded per-thread ring**. A rank is one thread (channel backend) or one
//! process (socket backend), so thread-local storage *is* per-rank storage,
//! with no cross-rank contention by construction.
//!
//! Two clocks ride on every span:
//!
//! * a **monotonic local clock** (`start_ns`/`end_ns`, nanoseconds since the
//!   recording thread's first traced span) — honest local durations, but
//!   each rank's origin is arbitrary;
//! * a **collective-edge logical clock** (`seq`) — bumped once per
//!   collective entered via [`begin_edge`]. Every rank executes the
//!   identical collective schedule, so equal `seq` values identify the
//!   *same* collective across ranks even when wall clocks are skewed. Local
//!   (non-collective) spans carry [`NO_SEQ`].
//!
//! The discipline mirrors [`crate::profiler`]: when tracing is disabled
//! (the default) the hot path is **one relaxed bool load and no clock
//! read**, so solver results — and golden traces — are bit-identical with
//! tracing on or off. Enable with `KRYST_TRACE=1` (or by setting
//! `KRYST_TRACE_TIMELINE=path`, which also selects the Chrome-trace export
//! target), or at runtime via [`set_trace_enabled`].

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Sentinel `seq` for spans that are not collective edges.
pub const NO_SEQ: u64 = u64::MAX;

/// Flat-encoding width of one span, in `f64` slots (see
/// [`TraceSpan::encode_into`]).
pub const SPAN_FIELDS: usize = 7;

/// Default ring capacity (spans per thread); override with
/// `KRYST_TRACE_CAP`.
pub const DEFAULT_RING_CAP: usize = 1 << 16;

/// What a [`TraceSpan`] measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceKind {
    /// One solver (block) iteration (`detail` = iteration index).
    Iteration,
    /// A butterfly all-reduce, fused or not, split-phase or not (`detail`
    /// low 32 bits = stage count, bit 32 set for split-phase).
    Reduction,
    /// A layout redistribution (the coarse-agglomeration gather/scatter
    /// primitive).
    Redistribute,
    /// One halo exchange (`detail` = scalar entries received).
    Halo,
    /// One preconditioner application.
    PrecondApply,
    /// Agglomerated coarse solve: gather onto the subset.
    CoarseGather,
    /// Agglomerated coarse solve: the subset direct solve.
    CoarseSolve,
    /// Agglomerated coarse solve: scatter back to all ranks.
    CoarseScatter,
}

impl TraceKind {
    /// Stable numeric code used by the flat/JSON encodings.
    pub fn code(self) -> u8 {
        match self {
            TraceKind::Iteration => 0,
            TraceKind::Reduction => 1,
            TraceKind::Redistribute => 2,
            TraceKind::Halo => 3,
            TraceKind::PrecondApply => 4,
            TraceKind::CoarseGather => 5,
            TraceKind::CoarseSolve => 6,
            TraceKind::CoarseScatter => 7,
        }
    }

    /// Inverse of [`TraceKind::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<TraceKind> {
        Some(match code {
            0 => TraceKind::Iteration,
            1 => TraceKind::Reduction,
            2 => TraceKind::Redistribute,
            3 => TraceKind::Halo,
            4 => TraceKind::PrecondApply,
            5 => TraceKind::CoarseGather,
            6 => TraceKind::CoarseSolve,
            7 => TraceKind::CoarseScatter,
            _ => return None,
        })
    }

    /// Display name used by reports and the Chrome-trace export.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Iteration => "iteration",
            TraceKind::Reduction => "reduction",
            TraceKind::Redistribute => "redistribute",
            TraceKind::Halo => "halo",
            TraceKind::PrecondApply => "precond_apply",
            TraceKind::CoarseGather => "coarse_gather",
            TraceKind::CoarseSolve => "coarse_solve",
            TraceKind::CoarseScatter => "coarse_scatter",
        }
    }

    /// Every kind, in code order (for per-kind report tables).
    pub fn all() -> [TraceKind; 8] {
        [
            TraceKind::Iteration,
            TraceKind::Reduction,
            TraceKind::Redistribute,
            TraceKind::Halo,
            TraceKind::PrecondApply,
            TraceKind::CoarseGather,
            TraceKind::CoarseSolve,
            TraceKind::CoarseScatter,
        ]
    }
}

/// One recorded span. All integer payloads stay below 2⁵³ in practice, so
/// the flat `f64` encoding used to ship rings across the transport is exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// What was measured.
    pub kind: TraceKind,
    /// Collective-edge logical clock value, or [`NO_SEQ`] for local spans.
    pub seq: u64,
    /// Start, nanoseconds on the recording thread's monotonic clock.
    pub start_ns: u64,
    /// End, same clock.
    pub end_ns: u64,
    /// Payload bytes this rank put on the wire inside the span.
    pub bytes: u64,
    /// Messages this rank put on the wire inside the span.
    pub msgs: u64,
    /// Kind-specific detail (see [`TraceKind`] variants).
    pub detail: u64,
}

impl TraceSpan {
    /// Duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Append the [`SPAN_FIELDS`]-slot flat encoding ([`NO_SEQ`] → `-1`).
    pub fn encode_into(&self, out: &mut Vec<f64>) {
        out.push(f64::from(self.kind.code()));
        out.push(if self.seq == NO_SEQ {
            -1.0
        } else {
            self.seq as f64
        });
        out.push(self.start_ns as f64);
        out.push(self.end_ns as f64);
        out.push(self.bytes as f64);
        out.push(self.msgs as f64);
        out.push(self.detail as f64);
    }

    /// Decode one span from a [`SPAN_FIELDS`]-slot frame slice.
    pub fn decode(v: &[f64]) -> Option<TraceSpan> {
        if v.len() != SPAN_FIELDS {
            return None;
        }
        Some(TraceSpan {
            kind: TraceKind::from_code(v[0] as u8)?,
            seq: if v[1] < 0.0 { NO_SEQ } else { v[1] as u64 },
            start_ns: v[2] as u64,
            end_ns: v[3] as u64,
            bytes: v[4] as u64,
            msgs: v[5] as u64,
            detail: v[6] as u64,
        })
    }
}

fn flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        let by_switch = std::env::var("KRYST_TRACE")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
        let by_export = std::env::var("KRYST_TRACE_TIMELINE")
            .map(|p| !p.is_empty())
            .unwrap_or(false);
        AtomicBool::new(by_switch || by_export)
    })
}

/// Whether span recording is currently on (one relaxed load).
#[inline]
pub fn trace_enabled() -> bool {
    flag().load(Ordering::Relaxed)
}

/// Turn span recording on or off at runtime (process-wide).
pub fn set_trace_enabled(on: bool) {
    flag().store(on, Ordering::Relaxed);
}

fn ring_cap() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("KRYST_TRACE_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&c: &usize| c > 0)
            .unwrap_or(DEFAULT_RING_CAP)
    })
}

struct ThreadTracer {
    epoch: Instant,
    ring: Vec<TraceSpan>,
    dropped: u64,
    seq: u64,
}

thread_local! {
    static TRACER: RefCell<ThreadTracer> = RefCell::new(ThreadTracer {
        epoch: Instant::now(),
        ring: Vec::new(),
        dropped: 0,
        seq: 0,
    });
}

/// An in-flight span returned by [`begin`]/[`begin_edge`]; finish it with
/// [`end`]. Not a guard: dropping it without [`end`] simply records nothing.
#[derive(Debug)]
pub struct OpenSpan {
    kind: TraceKind,
    seq: u64,
    start_ns: u64,
}

fn now_ns(tr: &ThreadTracer) -> u64 {
    tr.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Start a *local* span (no logical-clock bump). `None` — and no clock
/// read — when tracing is disabled.
#[inline]
pub fn begin(kind: TraceKind) -> Option<OpenSpan> {
    if !trace_enabled() {
        return None;
    }
    Some(TRACER.with(|t| {
        let tr = t.borrow();
        OpenSpan {
            kind,
            seq: NO_SEQ,
            start_ns: now_ns(&tr),
        }
    }))
}

/// Start a *collective-edge* span: bumps this rank's logical clock so the
/// span pairs with the same collective on every other rank. `None` when
/// tracing is disabled — the logical clock then does not advance, which is
/// consistent because it does not advance on any rank.
#[inline]
pub fn begin_edge(kind: TraceKind) -> Option<OpenSpan> {
    if !trace_enabled() {
        return None;
    }
    Some(TRACER.with(|t| {
        let mut tr = t.borrow_mut();
        let seq = tr.seq;
        tr.seq += 1;
        OpenSpan {
            kind,
            seq,
            start_ns: now_ns(&tr),
        }
    }))
}

/// Finish a span, recording it into the thread's ring. A full ring drops
/// the span and counts it (see [`drain`]). No-op for `None`.
#[inline]
pub fn end(open: Option<OpenSpan>, bytes: u64, msgs: u64, detail: u64) {
    let Some(open) = open else { return };
    TRACER.with(|t| {
        let mut tr = t.borrow_mut();
        let end_ns = now_ns(&tr);
        if tr.ring.len() >= ring_cap() {
            tr.dropped += 1;
            return;
        }
        tr.ring.push(TraceSpan {
            kind: open.kind,
            seq: open.seq,
            start_ns: open.start_ns,
            end_ns,
            bytes,
            msgs,
            detail,
        });
    });
}

/// RAII guard for a local span with no wire payload; records on drop.
#[must_use = "the span records when the guard drops"]
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        end(self.open.take(), 0, 0, 0);
    }
}

/// Record a local span over the guard's lifetime (one relaxed load and no
/// clock read when disabled) — the drop-in companion to
/// [`crate::profiler::profile`].
#[inline]
pub fn traced(kind: TraceKind) -> SpanGuard {
    SpanGuard { open: begin(kind) }
}

/// Take every span recorded on this thread plus the overflow count, and
/// reset the ring, the drop counter, and the logical clock — so each traced
/// region (one SPMD closure, one solve) drains independently.
pub fn drain() -> (Vec<TraceSpan>, u64) {
    TRACER.with(|t| {
        let mut tr = t.borrow_mut();
        let spans = std::mem::take(&mut tr.ring);
        let dropped = tr.dropped;
        tr.dropped = 0;
        tr.seq = 0;
        (spans, dropped)
    })
}

/// Clear this thread's ring, drop counter, and logical clock without
/// returning anything. SPMD runners call this at every rank's entry so a
/// traced closure starts from a clean, rank-aligned state (rank 0 may be a
/// long-lived thread; workers replay earlier calls before the real one).
pub fn reset_thread() {
    let _ = drain();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enabled flag is process-global; every test here runs against its
    // own thread-local ring but serializes flag flips through this lock so
    // parallel test threads cannot race each other's on/off windows.
    fn with_tracing<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset_thread();
        set_trace_enabled(true);
        let r = f();
        set_trace_enabled(false);
        reset_thread();
        r
    }

    #[test]
    fn disabled_records_nothing_and_returns_none() {
        set_trace_enabled(false);
        reset_thread();
        assert!(begin(TraceKind::Halo).is_none());
        assert!(begin_edge(TraceKind::Reduction).is_none());
        {
            let _g = traced(TraceKind::PrecondApply);
        }
        let (spans, dropped) = drain();
        assert!(spans.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn edges_advance_the_logical_clock_and_locals_do_not() {
        with_tracing(|| {
            let a = begin_edge(TraceKind::Reduction);
            end(a, 16, 2, 3);
            let b = begin(TraceKind::PrecondApply);
            end(b, 0, 0, 0);
            let c = begin_edge(TraceKind::Redistribute);
            end(c, 8, 1, 0);
            let (spans, dropped) = drain();
            assert_eq!(dropped, 0);
            assert_eq!(spans.len(), 3);
            assert_eq!(spans[0].seq, 0);
            assert_eq!(spans[1].seq, NO_SEQ);
            assert_eq!(spans[2].seq, 1);
            assert_eq!(spans[0].bytes, 16);
            assert_eq!(spans[0].msgs, 2);
            assert_eq!(spans[0].detail, 3);
            assert!(spans[0].end_ns >= spans[0].start_ns);
            // drain() reset the logical clock.
            let d = begin_edge(TraceKind::Reduction);
            assert_eq!(d.as_ref().unwrap().seq, 0);
            end(d, 0, 0, 0);
        });
    }

    #[test]
    fn guard_records_on_drop() {
        with_tracing(|| {
            {
                let _g = traced(TraceKind::Halo);
                std::hint::black_box(1 + 1);
            }
            let (spans, _) = drain();
            assert_eq!(spans.len(), 1);
            assert_eq!(spans[0].kind, TraceKind::Halo);
        });
    }

    #[test]
    fn span_flat_encoding_round_trips() {
        let s = TraceSpan {
            kind: TraceKind::CoarseGather,
            seq: NO_SEQ,
            start_ns: 123,
            end_ns: 456,
            bytes: 7890,
            msgs: 12,
            detail: 34,
        };
        let mut buf = Vec::new();
        s.encode_into(&mut buf);
        assert_eq!(buf.len(), SPAN_FIELDS);
        assert_eq!(TraceSpan::decode(&buf), Some(s));
        assert_eq!(TraceSpan::decode(&buf[1..]), None);
        let mut bad = buf.clone();
        bad[0] = 99.0;
        assert_eq!(TraceSpan::decode(&bad), None);
    }

    #[test]
    fn full_ring_drops_and_counts() {
        with_tracing(|| {
            // Fill past capacity; capacity is large, so synthesize directly.
            let cap = ring_cap();
            for i in 0..(cap + 5) {
                let o = begin(TraceKind::Iteration);
                end(o, 0, 0, i as u64);
            }
            let (spans, dropped) = drain();
            assert_eq!(spans.len(), cap);
            assert_eq!(dropped, 5);
        });
    }

    #[test]
    fn kind_codes_round_trip() {
        for k in TraceKind::all() {
            assert_eq!(TraceKind::from_code(k.code()), Some(k));
        }
        assert_eq!(TraceKind::from_code(200), None);
    }
}
