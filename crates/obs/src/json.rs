//! Dependency-free JSON: event serialization and a small value parser.
//!
//! The offline build cannot use serde, and the trace format is simple
//! enough not to need it: every event is one flat JSON object per line.
//! The parser handles the full JSON grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null) — enough to read traces back and to
//! compare golden snapshots.

use crate::event::{CommDelta, Event};
use std::fmt::Write as _;

/// Serialize an event as a single-line JSON object (no trailing newline).
pub fn event_to_json(ev: &Event) -> String {
    let mut s = String::with_capacity(160);
    match ev {
        Event::SolveBegin {
            solver,
            system_index,
            nrows,
            nrhs,
            restart,
            recycle,
        } => {
            let _ = write!(
                s,
                "{{\"type\":\"solve_begin\",\"solver\":\"{solver}\",\"system_index\":{system_index},\
                 \"nrows\":{nrows},\"nrhs\":{nrhs},\"restart\":{restart},\"recycle\":{recycle}}}"
            );
        }
        Event::Iteration(it) => {
            let _ = write!(
                s,
                "{{\"type\":\"iteration\",\"solver\":\"{}\",\"system_index\":{},\"cycle\":{},\"iter\":{},\
                 \"per_rhs_residuals\":{},",
                it.solver,
                it.system_index,
                it.cycle,
                it.iter,
                f64_array(&it.per_rhs_residuals),
            );
            push_comm_fields(&mut s, &it.comm);
            let _ = write!(s, ",\"orth_backend\":\"{}\"", it.orth_backend);
            match it.breakdown_rank {
                Some(r) => {
                    let _ = write!(s, ",\"breakdown_rank\":{r}");
                }
                None => s.push_str(",\"breakdown_rank\":null"),
            }
            let _ = write!(s, ",\"wall_ns\":{}}}", it.wall_ns);
        }
        Event::Span(sp) => {
            let _ = write!(
                s,
                "{{\"type\":\"span\",\"solver\":\"{}\",\"system_index\":{},\"kind\":\"{}\",\"cycle\":{},",
                sp.solver,
                sp.system_index,
                sp.kind.name(),
                sp.cycle,
            );
            push_comm_fields(&mut s, &sp.comm);
            let _ = write!(s, ",\"wall_ns\":{}}}", sp.wall_ns);
        }
        Event::PrecondApply(pa) => {
            let _ = write!(
                s,
                "{{\"type\":\"precond_apply\",\"kind\":\"{}\",\"cols\":{},\"detail\":{},\"wall_ns\":{}}}",
                pa.kind, pa.cols, pa.detail, pa.wall_ns
            );
        }
        Event::Halo(h) => {
            let _ = write!(
                s,
                "{{\"type\":\"halo\",\"messages\":{},\"bytes\":{},\"cols\":{},\"wall_ns\":{}}}",
                h.messages, h.bytes, h.cols, h.wall_ns
            );
        }
        Event::Diag(d) => {
            let _ = write!(
                s,
                "{{\"type\":\"diag\",\"solver\":\"{}\",\"system_index\":{},\"cycle\":{},\"iter\":{},\
                 \"kind\":\"{}\",\"value\":{},\"detail\":{}}}",
                d.solver,
                d.system_index,
                d.cycle,
                d.iter,
                d.kind.name(),
                fmt_f64(d.value),
                d.detail
            );
        }
        Event::SolveEnd(e) => {
            let _ = write!(
                s,
                "{{\"type\":\"solve_end\",\"solver\":\"{}\",\"system_index\":{},\"iterations\":{},\
                 \"converged\":{},\"final_relres\":{},",
                e.solver,
                e.system_index,
                e.iterations,
                e.converged,
                f64_array(&e.final_relres),
            );
            push_comm_total_fields(&mut s, &e.comm_total);
            let _ = write!(s, ",\"wall_ns\":{}}}", e.wall_ns);
        }
    }
    s
}

fn push_comm_fields(s: &mut String, c: &CommDelta) {
    let _ = write!(
        s,
        "\"reductions_delta\":{},\"reduction_bytes_delta\":{},\"fused_parts_delta\":{},\
         \"p2p_delta\":{},\"p2p_bytes_delta\":{},\"flops_delta\":{},\"overlap_flops_delta\":{}",
        c.reductions,
        c.reduction_bytes,
        c.fused_parts,
        c.p2p_messages,
        c.p2p_bytes,
        c.flops,
        c.overlap_flops
    );
}

fn push_comm_total_fields(s: &mut String, c: &CommDelta) {
    let _ = write!(
        s,
        "\"reductions_total\":{},\"reduction_bytes_total\":{},\"fused_parts_total\":{},\
         \"p2p_total\":{},\"p2p_bytes_total\":{},\"flops_total\":{},\"overlap_flops_total\":{}",
        c.reductions,
        c.reduction_bytes,
        c.fused_parts,
        c.p2p_messages,
        c.p2p_bytes,
        c.flops,
        c.overlap_flops
    );
}

/// Render a float array with enough digits to round-trip `f64`.
pub fn f64_array(v: &[f64]) -> String {
    let mut s = String::from("[");
    for (i, x) in v.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{}", fmt_f64(*x));
    }
    s.push(']');
    s
}

/// One float, JSON-compatible (`NaN`/`inf` become `null` — JSON has no
/// representation for them and traces should stay parseable).
pub fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        // {:?} prints the shortest representation that round-trips.
        format!("{x:?}")
    } else {
        "null".into()
    }
}

/// Escape `s` into `out` as the *body* of a JSON string (no surrounding
/// quotes): quotes, backslashes, and control characters are encoded, so any
/// Rust string round-trips through [`JsonValue::parse`].
pub fn escape_json_str(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also produced for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse a complete JSON document.
    pub fn parse(src: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            b: src.as_bytes(),
            i: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Non-negative integer value, if this is a whole number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as usize),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Build an object from `(key, value)` pairs (source order preserved).
    pub fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Build an array of numbers.
    pub fn nums<I: IntoIterator<Item = f64>>(it: I) -> JsonValue {
        JsonValue::Arr(it.into_iter().map(JsonValue::Num).collect())
    }

    /// Serialize this value back to JSON text — the single writer every
    /// hand-rolled emitter in the workspace funnels through. Whole numbers
    /// within exact-`f64` range print as integers, everything else uses the
    /// shortest round-tripping float form; non-finite numbers become `null`;
    /// strings are escape-correct via [`escape_json_str`].
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(x) => {
                const EXACT: f64 = 9.007_199_254_740_992e15; // 2^53
                if x.is_finite() && x.fract() == 0.0 && x.abs() <= EXACT {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{}", fmt_f64(*x));
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                escape_json_str(s, out);
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_json_str(k, out);
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> JsonValue {
        JsonValue::Num(x)
    }
}

impl From<usize> for JsonValue {
    fn from(x: usize) -> JsonValue {
        JsonValue::Num(x as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> JsonValue {
        JsonValue::Bool(b)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> JsonValue {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> JsonValue {
        JsonValue::Str(s)
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.keyword("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.i
            )),
        }
    }

    fn keyword(&mut self, kw: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.b[self.i..].starts_with(kw.as_bytes()) {
            self.i += kw.len();
            Ok(v)
        } else {
            Err(format!("bad keyword at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .map(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
            .unwrap_or(false)
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let val = self.value()?;
            fields.push((key, val));
            self.ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b']') => {
                    self.i += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{IterationEvent, SolveEndEvent};

    #[test]
    fn iteration_event_round_trips_through_json() {
        let ev = Event::Iteration(IterationEvent {
            solver: "gmres",
            system_index: 2,
            cycle: 1,
            iter: 37,
            per_rhs_residuals: vec![1.5e-3, 0.25],
            comm: CommDelta {
                reductions: 3,
                reduction_bytes: 72,
                fused_parts: 6,
                p2p_messages: 14,
                p2p_bytes: 4096,
                flops: 12345,
                overlap_flops: 2345,
            },
            orth_backend: "cholqr",
            breakdown_rank: Some(1),
            wall_ns: 9876,
        });
        let line = event_to_json(&ev);
        let v = JsonValue::parse(&line).expect("parse back");
        assert_eq!(v.get("type").unwrap().as_str(), Some("iteration"));
        assert_eq!(v.get("solver").unwrap().as_str(), Some("gmres"));
        assert_eq!(v.get("cycle").unwrap().as_usize(), Some(1));
        assert_eq!(v.get("iter").unwrap().as_usize(), Some(37));
        assert_eq!(v.get("reductions_delta").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("fused_parts_delta").unwrap().as_usize(), Some(6));
        assert_eq!(v.get("overlap_flops_delta").unwrap().as_usize(), Some(2345));
        assert_eq!(v.get("p2p_delta").unwrap().as_usize(), Some(14));
        assert_eq!(v.get("breakdown_rank").unwrap().as_usize(), Some(1));
        let res = v.get("per_rhs_residuals").unwrap().as_array().unwrap();
        assert_eq!(res[0].as_f64(), Some(1.5e-3));
        assert_eq!(res[1].as_f64(), Some(0.25));
    }

    #[test]
    fn solve_end_round_trips() {
        let ev = Event::SolveEnd(SolveEndEvent {
            solver: "gcrodr",
            system_index: 1,
            iterations: 42,
            converged: true,
            final_relres: vec![1e-9],
            comm_total: CommDelta {
                reductions: 100,
                ..Default::default()
            },
            wall_ns: 1,
        });
        let v = JsonValue::parse(&event_to_json(&ev)).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("solve_end"));
        assert_eq!(v.get("converged").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("reductions_total").unwrap().as_usize(), Some(100));
    }

    #[test]
    fn diag_event_round_trips() {
        use crate::event::{DiagEvent, DiagKind};
        let ev = Event::Diag(DiagEvent {
            solver: "gcrodr",
            system_index: 3,
            cycle: 2,
            iter: 17,
            kind: DiagKind::RitzQuality,
            value: 2.5e-4,
            detail: 10,
        });
        let v = JsonValue::parse(&event_to_json(&ev)).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("diag"));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("ritz-quality"));
        assert_eq!(v.get("cycle").unwrap().as_usize(), Some(2));
        assert_eq!(v.get("iter").unwrap().as_usize(), Some(17));
        assert_eq!(v.get("value").unwrap().as_f64(), Some(2.5e-4));
        assert_eq!(v.get("detail").unwrap().as_usize(), Some(10));
    }

    #[test]
    fn parser_handles_nesting_escapes_and_numbers() {
        let v =
            JsonValue::parse(r#"{"a": [1, -2.5e3, null, true], "s": "x\"\nA", "o": {"k": false}}"#)
                .unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[1].as_f64(), Some(-2500.0));
        assert_eq!(arr[2], JsonValue::Null);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\"\nA"));
        assert_eq!(v.get("o").unwrap().get("k").unwrap().as_bool(), Some(false));
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
    }

    #[test]
    fn writer_round_trips_through_parser() {
        let v = JsonValue::obj(vec![
            ("backend", JsonValue::from("socket")),
            ("count", JsonValue::from(42usize)),
            ("alpha", JsonValue::Num(1.25e-6)),
            ("ok", JsonValue::from(true)),
            ("bad", JsonValue::Num(f64::NAN)),
            ("hist", JsonValue::nums([1.0, 2.0, 0.5])),
            (
                "nested",
                JsonValue::obj(vec![("s", JsonValue::from("a\"b\\c\nd\u{1}"))]),
            ),
        ]);
        let text = v.to_json();
        let back = JsonValue::parse(&text).expect("writer output parses");
        assert_eq!(back.get("backend").unwrap().as_str(), Some("socket"));
        assert_eq!(back.get("count").unwrap().as_usize(), Some(42));
        assert_eq!(back.get("alpha").unwrap().as_f64(), Some(1.25e-6));
        assert_eq!(back.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(back.get("bad"), Some(&JsonValue::Null));
        let hist = back.get("hist").unwrap().as_array().unwrap();
        assert_eq!(hist[2].as_f64(), Some(0.5));
        assert_eq!(
            back.get("nested").unwrap().get("s").unwrap().as_str(),
            Some("a\"b\\c\nd\u{1}")
        );
        // Whole numbers print as integers, not "42.0".
        assert!(text.contains("\"count\":42,"));
    }

    #[test]
    fn writer_escapes_keys_and_control_chars() {
        let v = JsonValue::obj(vec![("k\"\n", JsonValue::from("\u{7}"))]);
        let text = v.to_json();
        assert_eq!(text, "{\"k\\\"\\n\":\"\\u0007\"}");
        let back = JsonValue::parse(&text).unwrap();
        assert_eq!(back.get("k\"\n").unwrap().as_str(), Some("\u{7}"));
    }

    #[test]
    fn floats_round_trip_exactly() {
        #[allow(clippy::excessive_precision)] // extra digits exercise shortest-round-trip printing
        for x in [0.1, 1.0 / 3.0, 1e-300, 123456789.123456789, -0.0] {
            let s = fmt_f64(x);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {s}");
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
    }
}
