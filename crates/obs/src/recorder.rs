//! Pluggable event sinks.

use crate::event::Event;
use crate::json::event_to_json;
use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An event sink. Implementations must be cheap to call and thread-safe —
/// solvers may emit from worker threads (pseudo-block drivers).
pub trait Recorder: Send + Sync {
    /// Whether events should be constructed at all. The hot path checks
    /// this once per emission site; the [`NullRecorder`] returns `false`
    /// so a wired-but-disabled solver pays one virtual call and no
    /// allocation.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event.
    fn record(&self, ev: &Event);

    /// Record a batch of events from one solver step. Sinks with internal
    /// locking should override this to take their lock once per batch
    /// instead of once per event.
    fn record_batch(&self, evs: &[Event]) {
        for ev in evs {
            self.record(ev);
        }
    }
}

/// Discards everything; `enabled()` is `false` so emitters skip event
/// construction entirely.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _ev: &Event) {}
}

/// Bounded in-memory buffer (oldest events dropped past capacity, with a
/// counter instead of silent eviction) — the test-suite sink.
pub struct RingRecorder {
    buf: Mutex<VecDeque<Event>>,
    cap: usize,
    dropped: AtomicU64,
}

impl RingRecorder {
    /// Ring holding at most `cap` events.
    pub fn new(cap: usize) -> Self {
        Self {
            buf: Mutex::new(VecDeque::with_capacity(cap.min(4096))),
            cap: cap.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Copy out the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf.lock().unwrap().iter().cloned().collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted because the ring overflowed. A non-zero
    /// value means [`RingRecorder::events`] is missing the oldest part of
    /// the stream — size the ring up or switch to a streaming sink.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drop all buffered events and reset the overflow counter.
    pub fn clear(&self) {
        self.buf.lock().unwrap().clear();
        self.dropped.store(0, Ordering::Relaxed);
    }

    fn push_locked(&self, b: &mut VecDeque<Event>, ev: &Event) {
        if b.len() == self.cap {
            b.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        b.push_back(ev.clone());
    }
}

impl Recorder for RingRecorder {
    fn record(&self, ev: &Event) {
        let mut b = self.buf.lock().unwrap();
        self.push_locked(&mut b, ev);
    }

    fn record_batch(&self, evs: &[Event]) {
        // One lock acquisition per solver step instead of one per event.
        let mut b = self.buf.lock().unwrap();
        for ev in evs {
            self.push_locked(&mut b, ev);
        }
    }
}

/// Streams events as JSON-lines to a file — the bench-binary sink.
pub struct JsonlRecorder {
    w: Mutex<BufWriter<std::fs::File>>,
}

impl JsonlRecorder {
    /// Create/truncate `path` and stream events to it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(Self {
            w: Mutex::new(BufWriter::new(f)),
        })
    }

    /// Flush buffered lines to disk.
    pub fn flush(&self) -> std::io::Result<()> {
        self.w.lock().unwrap().flush()
    }
}

impl Recorder for JsonlRecorder {
    fn record(&self, ev: &Event) {
        let line = event_to_json(ev);
        let mut w = self.w.lock().unwrap();
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
    }

    fn record_batch(&self, evs: &[Event]) {
        // Serialize outside the lock, then write all lines under one
        // acquisition.
        let mut chunk = String::new();
        for ev in evs {
            chunk.push_str(&event_to_json(ev));
            chunk.push('\n');
        }
        let mut w = self.w.lock().unwrap();
        let _ = w.write_all(chunk.as_bytes());
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        // A missed final flush() must not truncate the tail of a trace.
        if let Ok(mut w) = self.w.lock() {
            let _ = w.flush();
        }
    }
}

/// Fans every event out to two recorders, so one run can feed both an
/// in-memory view (assertions, metrics extraction) and a streaming trace.
pub struct TeeRecorder {
    a: Arc<dyn Recorder>,
    b: Arc<dyn Recorder>,
}

impl TeeRecorder {
    /// Tee to `a` and `b`.
    pub fn new(a: Arc<dyn Recorder>, b: Arc<dyn Recorder>) -> Self {
        Self { a, b }
    }
}

impl Recorder for TeeRecorder {
    fn enabled(&self) -> bool {
        self.a.enabled() || self.b.enabled()
    }

    fn record(&self, ev: &Event) {
        if self.a.enabled() {
            self.a.record(ev);
        }
        if self.b.enabled() {
            self.b.record(ev);
        }
    }

    fn record_batch(&self, evs: &[Event]) {
        if self.a.enabled() {
            self.a.record_batch(evs);
        }
        if self.b.enabled() {
            self.b.record_batch(evs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CommDelta, IterationEvent};

    fn iter_ev(i: usize) -> Event {
        Event::Iteration(IterationEvent {
            solver: "gmres",
            system_index: 0,
            cycle: 0,
            iter: i,
            per_rhs_residuals: vec![1.0 / (i + 1) as f64],
            comm: CommDelta::default(),
            orth_backend: "cholqr",
            breakdown_rank: None,
            wall_ns: 0,
        })
    }

    #[test]
    fn ring_keeps_most_recent() {
        let r = RingRecorder::new(3);
        for i in 0..5 {
            r.record(&iter_ev(i));
        }
        let evs = r.events();
        assert_eq!(evs.len(), 3);
        match &evs[0] {
            Event::Iteration(it) => assert_eq!(it.iter, 2),
            other => panic!("unexpected {other:?}"),
        }
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    fn ring_counts_overflow_drops() {
        let r = RingRecorder::new(3);
        for i in 0..5 {
            r.record(&iter_ev(i));
        }
        assert_eq!(r.dropped(), 2);
        r.clear();
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn ring_batch_matches_per_event_recording() {
        let batch: Vec<Event> = (0..5).map(iter_ev).collect();
        let one = RingRecorder::new(3);
        for ev in &batch {
            one.record(ev);
        }
        let many = RingRecorder::new(3);
        many.record_batch(&batch);
        assert_eq!(many.dropped(), one.dropped());
        let (a, b) = (one.events(), many.events());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            match (x, y) {
                (Event::Iteration(ix), Event::Iteration(iy)) => assert_eq!(ix.iter, iy.iter),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn tee_fans_out_and_skips_disabled_children() {
        let a = std::sync::Arc::new(RingRecorder::new(16));
        let b = std::sync::Arc::new(RingRecorder::new(16));
        let tee = TeeRecorder::new(a.clone(), b.clone());
        assert!(Recorder::enabled(&tee));
        tee.record(&iter_ev(0));
        tee.record_batch(&[iter_ev(1), iter_ev(2)]);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 3);

        let null = std::sync::Arc::new(NullRecorder);
        let c = std::sync::Arc::new(RingRecorder::new(16));
        let half = TeeRecorder::new(null, c.clone());
        assert!(Recorder::enabled(&half)); // one live child keeps it on
        half.record(&iter_ev(0));
        assert_eq!(c.len(), 1);

        let dead = TeeRecorder::new(
            std::sync::Arc::new(NullRecorder),
            std::sync::Arc::new(NullRecorder),
        );
        assert!(!Recorder::enabled(&dead));
    }

    #[test]
    fn jsonl_batch_and_drop_flush() {
        let dir = std::env::temp_dir().join("kryst_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace_batch_{}.jsonl", std::process::id()));
        {
            let r = JsonlRecorder::create(&path).unwrap();
            r.record_batch(&[iter_ev(0), iter_ev(1), iter_ev(2)]);
            // No explicit flush: Drop must persist everything.
        }
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn null_recorder_reports_disabled() {
        let n = NullRecorder;
        assert!(!Recorder::enabled(&n));
        n.record(&iter_ev(0)); // must be a no-op
    }

    #[test]
    fn jsonl_writes_parseable_lines() {
        let dir = std::env::temp_dir().join("kryst_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace_{}.jsonl", std::process::id()));
        {
            let r = JsonlRecorder::create(&path).unwrap();
            r.record(&iter_ev(0));
            r.record(&iter_ev(1));
            r.flush().unwrap();
        }
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = crate::json::JsonValue::parse(line).unwrap();
            assert_eq!(v.get("type").unwrap().as_str(), Some("iteration"));
        }
        let _ = std::fs::remove_file(&path);
    }
}
