//! Pluggable event sinks.

use crate::event::Event;
use crate::json::event_to_json;
use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// An event sink. Implementations must be cheap to call and thread-safe —
/// solvers may emit from worker threads (pseudo-block drivers).
pub trait Recorder: Send + Sync {
    /// Whether events should be constructed at all. The hot path checks
    /// this once per emission site; the [`NullRecorder`] returns `false`
    /// so a wired-but-disabled solver pays one virtual call and no
    /// allocation.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event.
    fn record(&self, ev: &Event);
}

/// Discards everything; `enabled()` is `false` so emitters skip event
/// construction entirely.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _ev: &Event) {}
}

/// Bounded in-memory buffer (oldest events dropped past capacity) — the
/// test-suite sink.
pub struct RingRecorder {
    buf: Mutex<VecDeque<Event>>,
    cap: usize,
}

impl RingRecorder {
    /// Ring holding at most `cap` events.
    pub fn new(cap: usize) -> Self {
        Self {
            buf: Mutex::new(VecDeque::with_capacity(cap.min(4096))),
            cap: cap.max(1),
        }
    }

    /// Copy out the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf.lock().unwrap().iter().cloned().collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all buffered events.
    pub fn clear(&self) {
        self.buf.lock().unwrap().clear();
    }
}

impl Recorder for RingRecorder {
    fn record(&self, ev: &Event) {
        let mut b = self.buf.lock().unwrap();
        if b.len() == self.cap {
            b.pop_front();
        }
        b.push_back(ev.clone());
    }
}

/// Streams events as JSON-lines to a file — the bench-binary sink.
pub struct JsonlRecorder {
    w: Mutex<BufWriter<std::fs::File>>,
}

impl JsonlRecorder {
    /// Create/truncate `path` and stream events to it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(Self {
            w: Mutex::new(BufWriter::new(f)),
        })
    }

    /// Flush buffered lines to disk.
    pub fn flush(&self) -> std::io::Result<()> {
        self.w.lock().unwrap().flush()
    }
}

impl Recorder for JsonlRecorder {
    fn record(&self, ev: &Event) {
        let line = event_to_json(ev);
        let mut w = self.w.lock().unwrap();
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        if let Ok(mut w) = self.w.lock() {
            let _ = w.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CommDelta, IterationEvent};

    fn iter_ev(i: usize) -> Event {
        Event::Iteration(IterationEvent {
            solver: "gmres",
            system_index: 0,
            cycle: 0,
            iter: i,
            per_rhs_residuals: vec![1.0 / (i + 1) as f64],
            comm: CommDelta::default(),
            orth_backend: "cholqr",
            breakdown_rank: None,
            wall_ns: 0,
        })
    }

    #[test]
    fn ring_keeps_most_recent() {
        let r = RingRecorder::new(3);
        for i in 0..5 {
            r.record(&iter_ev(i));
        }
        let evs = r.events();
        assert_eq!(evs.len(), 3);
        match &evs[0] {
            Event::Iteration(it) => assert_eq!(it.iter, 2),
            other => panic!("unexpected {other:?}"),
        }
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    fn null_recorder_reports_disabled() {
        let n = NullRecorder;
        assert!(!Recorder::enabled(&n));
        n.record(&iter_ev(0)); // must be a no-op
    }

    #[test]
    fn jsonl_writes_parseable_lines() {
        let dir = std::env::temp_dir().join("kryst_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace_{}.jsonl", std::process::id()));
        {
            let r = JsonlRecorder::create(&path).unwrap();
            r.record(&iter_ev(0));
            r.record(&iter_ev(1));
            r.flush().unwrap();
        }
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = crate::json::JsonValue::parse(line).unwrap();
            assert_eq!(v.get("type").unwrap().as_str(), Some("iteration"));
        }
        let _ = std::fs::remove_file(&path);
    }
}
