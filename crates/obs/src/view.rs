//! Read-side helpers over an event stream.
//!
//! The solvers' per-RHS convergence histories are *views* over the
//! iteration events — the same data the conformance tests assert on, so
//! history and accounting can never drift apart.

use crate::event::{CommDelta, DiagEvent, DiagKind, Event, IterationEvent, SpanEvent, SpanKind};

/// The iteration events of a stream, in order.
pub fn iteration_events(events: &[Event]) -> Vec<&IterationEvent> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::Iteration(it) => Some(it),
            _ => None,
        })
        .collect()
}

/// Per-iteration, per-RHS relative residuals — the convergence curves of
/// the paper's Figs. 2–4, reconstructed from the events.
pub fn history(events: &[Event]) -> Vec<Vec<f64>> {
    iteration_events(events)
        .into_iter()
        .map(|it| it.per_rhs_residuals.clone())
        .collect()
}

/// Sum of the iteration deltas — equals the solve's total communication
/// when the stream covers one whole solve.
pub fn cumulative_comm(events: &[Event]) -> CommDelta {
    iteration_events(events)
        .into_iter()
        .fold(CommDelta::default(), |acc, it| acc + it.comm)
}

/// The span events of a given kind, in order.
pub fn spans_of(events: &[Event], kind: SpanKind) -> Vec<&SpanEvent> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::Span(sp) if sp.kind == kind => Some(sp),
            _ => None,
        })
        .collect()
}

/// The diagnostics of a given kind, in order.
pub fn diags_of(events: &[Event], kind: DiagKind) -> Vec<&DiagEvent> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::Diag(d) if d.kind == kind => Some(d),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn it(iter: usize, reds: u64, res: f64) -> Event {
        Event::Iteration(IterationEvent {
            solver: "gmres",
            system_index: 0,
            cycle: 0,
            iter,
            per_rhs_residuals: vec![res],
            comm: CommDelta {
                reductions: reds,
                ..Default::default()
            },
            orth_backend: "cholqr",
            breakdown_rank: None,
            wall_ns: 0,
        })
    }

    #[test]
    fn history_and_cumulative_views() {
        let evs = vec![
            Event::SolveBegin {
                solver: "gmres",
                system_index: 0,
                nrows: 10,
                nrhs: 1,
                restart: 5,
                recycle: 0,
            },
            it(0, 4, 0.5),
            it(1, 3, 0.25),
            Event::Span(SpanEvent {
                solver: "gmres",
                system_index: 0,
                kind: SpanKind::Restart,
                cycle: 0,
                comm: CommDelta {
                    reductions: 99,
                    ..Default::default()
                },
                wall_ns: 0,
            }),
            it(2, 3, 0.125),
        ];
        assert_eq!(history(&evs), vec![vec![0.5], vec![0.25], vec![0.125]]);
        // Span deltas are informational and do not enter the cumulative sum.
        assert_eq!(cumulative_comm(&evs).reductions, 10);
        assert_eq!(spans_of(&evs, SpanKind::Restart).len(), 1);
        assert!(spans_of(&evs, SpanKind::Eigensolve).is_empty());
    }

    #[test]
    fn diags_view_filters_by_kind() {
        let mk = |kind, iter| {
            Event::Diag(DiagEvent {
                solver: "gmres",
                system_index: 0,
                cycle: 0,
                iter,
                kind,
                value: 1.0,
                detail: 0,
            })
        };
        let evs = vec![
            mk(DiagKind::OrthLoss, 1),
            it(1, 0, 0.5),
            mk(DiagKind::Stagnation, 2),
            mk(DiagKind::OrthLoss, 3),
        ];
        let orth = diags_of(&evs, DiagKind::OrthLoss);
        assert_eq!(orth.len(), 2);
        assert_eq!(orth[1].iter, 3);
        assert_eq!(diags_of(&evs, DiagKind::Stagnation).len(), 1);
        assert!(diags_of(&evs, DiagKind::RankCollapse).is_empty());
        // Diag events never contribute comm.
        assert_eq!(cumulative_comm(&evs).reductions, 0);
    }
}
