//! Phase-attributed wall-clock profiler.
//!
//! The profiler answers "where does local time go" with the same phase
//! vocabulary the paper uses for its breakdown figures: sparse mat-vec,
//! halo exchange, orthogonalization Gram work, reductions, preconditioner
//! application (per AMG level), small dense kernels, and recycle-space
//! setup. It is deliberately minimal:
//!
//! * **Thread-safe and lock-free** — every slot is a handful of relaxed
//!   atomics, so concurrent workers can record without contention.
//! * **Near-zero disabled cost** — the hot path is one relaxed bool load;
//!   no `Instant::now()` call is made when disabled, so enabling the
//!   profiler is the only thing that touches the clock. Because solver
//!   traces never include profiler state, golden traces stay bit-identical
//!   whether profiling is on or off.
//! * **Monotonic clock** — timings come from [`std::time::Instant`].
//!
//! Use [`profile`] for the global instance (enabled via `KRYST_PROF=1`),
//! or carry an explicit [`Profiler`] for isolated measurements:
//!
//! ```
//! use kryst_obs::profiler::{Phase, Profiler};
//! let prof = Profiler::new(true);
//! {
//!     let _t = prof.timed(Phase::Spmv);
//!     // ... kernel work ...
//! }
//! assert_eq!(prof.snapshot().phase(Phase::Spmv).unwrap().count, 1);
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Number of log2 latency buckets per phase (bucket `i` holds samples with
/// `ilog2(ns) == i`, the last bucket is a catch-all for >= 2^31 ns).
pub const HIST_BUCKETS: usize = 32;

/// Maximum number of distinct AMG levels tracked individually; deeper levels
/// fold into the last per-level slot.
pub const MAX_PRECOND_LEVELS: usize = 8;

const NUM_SLOTS: usize = 11 + MAX_PRECOND_LEVELS;

/// A solver phase the profiler attributes time to.
///
/// The named variants match the paper-style breakdown table; AMG V-cycle
/// work is additionally attributed per level via [`Phase::PrecondLevel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Sparse matrix-(block-)vector products.
    Spmv,
    /// Halo exchange accounting and boundary-row compute.
    Halo,
    /// Block orthogonalization Gram products and updates.
    OrthGram,
    /// Global reduction work (all-reduce bodies, projected-op dots).
    Reduction,
    /// Preconditioner application (whole apply).
    Precond,
    /// Small dense kernels: eigensolves, QR/LU factorizations.
    SmallDense,
    /// Recycle-space construction/refresh in GCRO-DR.
    RecycleSetup,
    /// Matrix-free (stencil) operator applies — the zero-index-streaming
    /// alternative to [`Phase::Spmv`].
    SpmvMf,
    /// Low-precision preconditioner sweeps (the f32-storage portion of an
    /// apply; nested inside [`Phase::Precond`]).
    PrecondLp,
    /// Split-phase reduction work (`ireduce_start`/`finish` bodies and the
    /// pipelined accounting around them) — the portion of reduction latency
    /// a pipelined iteration *hides*; exposed latency stays under
    /// [`Phase::Reduction`].
    ReductionOverlap,
    /// Agglomerated AMG coarse solve: the coarse-grid direct solve executed
    /// on a rank subset (plus the modeled gather/scatter around it).
    CoarseAgglom,
    /// Per-level AMG cycle work (smoother + residual/transfer at level `l`).
    PrecondLevel(usize),
}

impl Phase {
    fn slot(self) -> usize {
        match self {
            Phase::Spmv => 0,
            Phase::Halo => 1,
            Phase::OrthGram => 2,
            Phase::Reduction => 3,
            Phase::Precond => 4,
            Phase::SmallDense => 5,
            Phase::RecycleSetup => 6,
            Phase::SpmvMf => 7,
            Phase::PrecondLp => 8,
            Phase::ReductionOverlap => 9,
            Phase::CoarseAgglom => 10,
            Phase::PrecondLevel(l) => 11 + l.min(MAX_PRECOND_LEVELS - 1),
        }
    }

    fn from_slot(slot: usize) -> Phase {
        match slot {
            0 => Phase::Spmv,
            1 => Phase::Halo,
            2 => Phase::OrthGram,
            3 => Phase::Reduction,
            4 => Phase::Precond,
            5 => Phase::SmallDense,
            6 => Phase::RecycleSetup,
            7 => Phase::SpmvMf,
            8 => Phase::PrecondLp,
            9 => Phase::ReductionOverlap,
            10 => Phase::CoarseAgglom,
            l => Phase::PrecondLevel(l - 11),
        }
    }

    /// Stable display name used in snapshots, reports, and JSON dumps.
    pub fn name(self) -> String {
        match self {
            Phase::Spmv => "spmv".to_string(),
            Phase::Halo => "halo".to_string(),
            Phase::OrthGram => "orth/gram".to_string(),
            Phase::Reduction => "reduction".to_string(),
            Phase::Precond => "precond".to_string(),
            Phase::SmallDense => "small_dense".to_string(),
            Phase::RecycleSetup => "recycle_setup".to_string(),
            Phase::SpmvMf => "spmv_mf".to_string(),
            Phase::PrecondLp => "precond_lp".to_string(),
            Phase::ReductionOverlap => "reduction_overlap".to_string(),
            Phase::CoarseAgglom => "coarse_agglom".to_string(),
            Phase::PrecondLevel(l) => format!("precond/l{}", l.min(MAX_PRECOND_LEVELS - 1)),
        }
    }
}

struct Slot {
    count: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    hist: [AtomicU64; HIST_BUCKETS],
}

impl Slot {
    const fn new() -> Slot {
        #[allow(clippy::declare_interior_mutable_const)]
        const Z: AtomicU64 = AtomicU64::new(0);
        Slot {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            hist: [Z; HIST_BUCKETS],
        }
    }

    fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        let bucket = (63 - (ns.max(1)).leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.hist[bucket].fetch_add(1, Ordering::Relaxed);
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
        for b in &self.hist {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Thread-safe phase-attributed profiler with fixed per-phase slots.
pub struct Profiler {
    enabled: AtomicBool,
    slots: [Slot; NUM_SLOTS],
}

impl Profiler {
    /// Create a profiler, initially enabled or disabled.
    pub fn new(enabled: bool) -> Profiler {
        Profiler {
            enabled: AtomicBool::new(enabled),
            slots: std::array::from_fn(|_| Slot::new()),
        }
    }

    /// The process-global profiler. Starts enabled iff the `KRYST_PROF`
    /// environment variable is `1` or `true`; flip at runtime with
    /// [`Profiler::set_enabled`].
    pub fn global() -> &'static Profiler {
        static GLOBAL: OnceLock<Profiler> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let on = std::env::var("KRYST_PROF")
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(false);
            Profiler::new(on)
        })
    }

    /// Whether timing is currently being collected.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enable or disable collection at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Start a timed region attributed to `phase`; the returned guard
    /// records the elapsed time when dropped. When the profiler is
    /// disabled this is one relaxed load and no clock read.
    #[inline]
    pub fn timed(&self, phase: Phase) -> PhaseTimer<'_> {
        if self.enabled() {
            PhaseTimer {
                inner: Some((self, phase, Instant::now())),
            }
        } else {
            PhaseTimer { inner: None }
        }
    }

    /// Record an externally measured duration (in nanoseconds) for `phase`.
    #[inline]
    pub fn record_ns(&self, phase: Phase, ns: u64) {
        if self.enabled() {
            self.slots[phase.slot()].record(ns);
        }
    }

    /// Clear all accumulated samples (the enabled flag is untouched).
    pub fn reset(&self) {
        for s in &self.slots {
            s.reset();
        }
    }

    /// Capture a consistent-enough copy of all per-phase aggregates.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let mut phases = Vec::new();
        for (i, s) in self.slots.iter().enumerate() {
            let count = s.count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let mut hist = [0u64; HIST_BUCKETS];
            for (h, b) in hist.iter_mut().zip(s.hist.iter()) {
                *h = b.load(Ordering::Relaxed);
            }
            phases.push(PhaseStats {
                name: Phase::from_slot(i).name(),
                count,
                total_ns: s.total_ns.load(Ordering::Relaxed),
                min_ns: s.min_ns.load(Ordering::Relaxed),
                max_ns: s.max_ns.load(Ordering::Relaxed),
                hist,
            });
        }
        ProfileSnapshot { phases }
    }
}

/// RAII guard returned by [`Profiler::timed`]; records on drop.
pub struct PhaseTimer<'a> {
    inner: Option<(&'a Profiler, Phase, Instant)>,
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        if let Some((prof, phase, t0)) = self.inner.take() {
            let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            prof.slots[phase.slot()].record(ns);
        }
    }
}

/// Time a region on the global profiler (see [`Profiler::global`]).
#[inline]
pub fn profile(phase: Phase) -> PhaseTimer<'static> {
    Profiler::global().timed(phase)
}

/// Aggregated statistics for one phase.
#[derive(Clone, Debug)]
pub struct PhaseStats {
    /// Phase display name (see [`Phase::name`]).
    pub name: String,
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all sample durations in nanoseconds.
    pub total_ns: u64,
    /// Smallest sample in nanoseconds (`u64::MAX` if empty).
    pub min_ns: u64,
    /// Largest sample in nanoseconds.
    pub max_ns: u64,
    /// Log2-bucketed latency histogram: bucket `i` counts samples with
    /// `ilog2(ns) == i` (clamped to the last bucket).
    pub hist: [u64; HIST_BUCKETS],
}

impl PhaseStats {
    /// Mean sample duration in nanoseconds (0 if empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// A point-in-time copy of every non-empty phase's aggregates.
#[derive(Clone, Debug, Default)]
pub struct ProfileSnapshot {
    /// Per-phase aggregates, in slot order; empty phases are omitted.
    pub phases: Vec<PhaseStats>,
}

impl ProfileSnapshot {
    /// Look up the stats recorded for `phase`, if any.
    pub fn phase(&self, phase: Phase) -> Option<&PhaseStats> {
        let name = phase.name();
        self.phases.iter().find(|p| p.name == name)
    }

    /// Sum of `total_ns` over every phase.
    pub fn total_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.total_ns).sum()
    }

    /// Serialize to a single JSON object:
    /// `{"phases":[{"name":...,"count":...,"total_ns":...,...,"hist":[...]}]}`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{},\"hist\":[",
                p.name, p.count, p.total_ns, p.min_ns, p.max_ns
            ));
            // Trailing zero buckets are elided to keep dumps compact.
            let last = p.hist.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
            for (j, c) in p.hist[..last].iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&c.to_string());
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }

    /// Parse a snapshot serialized by [`ProfileSnapshot::to_json`].
    pub fn from_json(text: &str) -> Option<ProfileSnapshot> {
        let v = crate::json::JsonValue::parse(text).ok()?;
        let phases = v.get("phases")?.as_array()?;
        let mut out = Vec::new();
        for p in phases {
            let mut hist = [0u64; HIST_BUCKETS];
            if let Some(h) = p.get("hist").and_then(|h| h.as_array()) {
                for (dst, src) in hist.iter_mut().zip(h.iter()) {
                    *dst = src.as_f64()? as u64;
                }
            }
            out.push(PhaseStats {
                name: p.get("name")?.as_str()?.to_string(),
                count: p.get("count")?.as_f64()? as u64,
                total_ns: p.get("total_ns")?.as_f64()? as u64,
                min_ns: p.get("min_ns")?.as_f64()? as u64,
                max_ns: p.get("max_ns")?.as_f64()? as u64,
                hist,
            });
        }
        Some(ProfileSnapshot { phases: out })
    }

    /// Render a human-readable per-phase table.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<14} {:>10} {:>12} {:>12} {:>12} {:>12}\n",
            "phase", "count", "total_ms", "mean_us", "min_us", "max_us"
        ));
        for p in &self.phases {
            s.push_str(&format!(
                "{:<14} {:>10} {:>12.3} {:>12.3} {:>12.3} {:>12.3}\n",
                p.name,
                p.count,
                p.total_ns as f64 / 1e6,
                p.mean_ns() / 1e3,
                if p.min_ns == u64::MAX {
                    0.0
                } else {
                    p.min_ns as f64 / 1e3
                },
                p.max_ns as f64 / 1e3,
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let prof = Profiler::new(false);
        {
            let _t = prof.timed(Phase::Spmv);
        }
        prof.record_ns(Phase::Halo, 100);
        assert!(prof.snapshot().phases.is_empty());
    }

    #[test]
    fn enabled_records_counts_and_bounds() {
        let prof = Profiler::new(true);
        prof.record_ns(Phase::Spmv, 100);
        prof.record_ns(Phase::Spmv, 300);
        prof.record_ns(Phase::PrecondLevel(2), 50);
        let snap = prof.snapshot();
        let spmv = snap.phase(Phase::Spmv).unwrap();
        assert_eq!(spmv.count, 2);
        assert_eq!(spmv.total_ns, 400);
        assert_eq!(spmv.min_ns, 100);
        assert_eq!(spmv.max_ns, 300);
        // 100ns -> bucket ilog2(100)=6, 300ns -> bucket 8.
        assert_eq!(spmv.hist[6], 1);
        assert_eq!(spmv.hist[8], 1);
        assert!(snap.phase(Phase::PrecondLevel(2)).is_some());
        assert_eq!(
            snap.phase(Phase::PrecondLevel(2)).unwrap().name,
            "precond/l2"
        );
    }

    #[test]
    fn timer_guard_records_on_drop() {
        let prof = Profiler::new(true);
        {
            let _t = prof.timed(Phase::OrthGram);
            std::hint::black_box(3 + 4);
        }
        let snap = prof.snapshot();
        assert_eq!(snap.phase(Phase::OrthGram).unwrap().count, 1);
    }

    #[test]
    fn deep_levels_fold_into_last_slot() {
        let prof = Profiler::new(true);
        prof.record_ns(Phase::PrecondLevel(MAX_PRECOND_LEVELS + 3), 10);
        let snap = prof.snapshot();
        let p = snap
            .phase(Phase::PrecondLevel(MAX_PRECOND_LEVELS - 1))
            .unwrap();
        assert_eq!(p.count, 1);
    }

    #[test]
    fn mixed_precision_and_matrix_free_phases_have_own_slots() {
        let prof = Profiler::new(true);
        prof.record_ns(Phase::SpmvMf, 11);
        prof.record_ns(Phase::PrecondLp, 22);
        prof.record_ns(Phase::PrecondLevel(0), 33);
        let snap = prof.snapshot();
        assert_eq!(snap.phase(Phase::SpmvMf).unwrap().name, "spmv_mf");
        assert_eq!(snap.phase(Phase::PrecondLp).unwrap().name, "precond_lp");
        // The new named slots must not alias the per-level slots.
        assert_eq!(snap.phase(Phase::PrecondLevel(0)).unwrap().total_ns, 33);
        assert_eq!(snap.phase(Phase::SpmvMf).unwrap().total_ns, 11);
        assert_eq!(snap.phase(Phase::PrecondLp).unwrap().total_ns, 22);
    }

    #[test]
    fn reset_clears() {
        let prof = Profiler::new(true);
        prof.record_ns(Phase::Reduction, 7);
        prof.reset();
        assert!(prof.snapshot().phases.is_empty());
    }

    #[test]
    fn json_round_trip() {
        let prof = Profiler::new(true);
        prof.record_ns(Phase::Spmv, 123);
        prof.record_ns(Phase::SmallDense, 456_789);
        let snap = prof.snapshot();
        let text = snap.to_json();
        let back = ProfileSnapshot::from_json(&text).unwrap();
        assert_eq!(back.phases.len(), snap.phases.len());
        for (a, b) in snap.phases.iter().zip(back.phases.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.count, b.count);
            assert_eq!(a.total_ns, b.total_ns);
            assert_eq!(a.min_ns, b.min_ns);
            assert_eq!(a.max_ns, b.max_ns);
            assert_eq!(a.hist, b.hist);
        }
    }

    #[test]
    fn concurrent_recording_sums() {
        let prof = std::sync::Arc::new(Profiler::new(true));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let p = prof.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    p.record_ns(Phase::Reduction, 10);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = prof.snapshot();
        let r = snap.phase(Phase::Reduction).unwrap();
        assert_eq!(r.count, 4000);
        assert_eq!(r.total_ns, 40_000);
    }
}
