//! Merged rank×time timelines and straggler attribution.
//!
//! A [`RankStream`] is one rank's drained span ring (see [`crate::span`]);
//! a [`Timeline`] is the rank-0 merge of every reachable rank's stream. The
//! merge must survive two hostile facts of distributed tracing:
//!
//! * **Clock skew.** Each rank timestamps on its own monotonic clock with an
//!   arbitrary origin. Collective-edge spans carry a logical clock (`seq`)
//!   that is identical across ranks by construction — every rank executes
//!   the same collective schedule — so [`Timeline::merge`] estimates one
//!   offset per rank as the *median* difference of matched collective **end**
//!   times against a reference rank (a collective ends on every rank at
//!   nearly the same instant; its *start* spread is exactly the imbalance
//!   signal we must not absorb into the offset).
//! * **Dead ranks.** A gather may find a peer gone; the merge then carries
//!   the surviving streams plus the `missing` rank list — a *partial*
//!   timeline, never a panic.
//!
//! On top of the merged timeline sit the analyses the paper's scalability
//! argument needs: per-collective critical-rank attribution
//! ([`Timeline::imbalance`]), wait-behind-slowest histograms, and the skew
//! decomposition of exposed reductions into "slowest rank compute" vs
//! "wire" using calibrated machine constants ([`Timeline::skew`]).

use crate::json::JsonValue;
use crate::metrics::MetricsRegistry;
use crate::span::{TraceKind, TraceSpan, NO_SEQ, SPAN_FIELDS};
use std::fmt::Write as _;

/// Log2 buckets in the wait-time histograms (bucket `i` holds waits with
/// `ilog2(ns) == i`; zero waits land in bucket 0).
pub const WAIT_BUCKETS: usize = 32;

/// One rank's drained span ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankStream {
    /// Rank that recorded the spans.
    pub rank: usize,
    /// Spans the bounded ring had to drop (overflow count).
    pub dropped: u64,
    /// Recorded spans, in record order.
    pub spans: Vec<TraceSpan>,
}

impl RankStream {
    /// Flat `f64` frame: `[rank, dropped, nspans, span fields…]` — what a
    /// rank ships to rank 0 over the transport's control plane.
    pub fn encode(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(3 + self.spans.len() * SPAN_FIELDS);
        out.push(self.rank as f64);
        out.push(self.dropped as f64);
        out.push(self.spans.len() as f64);
        for s in &self.spans {
            s.encode_into(&mut out);
        }
        out
    }

    /// Rebuild from an [`RankStream::encode`] frame; `None` if malformed.
    pub fn decode(v: &[f64]) -> Option<RankStream> {
        if v.len() < 3 {
            return None;
        }
        let rank = v[0] as usize;
        let dropped = v[1] as u64;
        let n = v[2] as usize;
        if v.len() != 3 + n * SPAN_FIELDS {
            return None;
        }
        let mut spans = Vec::with_capacity(n);
        for i in 0..n {
            spans.push(TraceSpan::decode(
                &v[3 + i * SPAN_FIELDS..3 + (i + 1) * SPAN_FIELDS],
            )?);
        }
        Some(RankStream {
            rank,
            dropped,
            spans,
        })
    }
}

/// One collective observed across ranks: the spans sharing a logical-clock
/// value, with clock-aligned times.
#[derive(Debug, Clone)]
pub struct CollectiveGroup {
    /// Span kind (identical on every member by construction).
    pub kind: TraceKind,
    /// Logical-clock value identifying this collective.
    pub seq: u64,
    /// Per member: `(rank, aligned start ns, aligned end ns, bytes, msgs,
    /// detail)`, in rank order.
    pub members: Vec<(usize, i64, i64, u64, u64, u64)>,
}

impl CollectiveGroup {
    /// Rank whose arrival was latest — the rank every other member waited
    /// behind.
    pub fn critical_rank(&self) -> usize {
        self.members
            .iter()
            .max_by_key(|m| m.1)
            .map(|m| m.0)
            .unwrap_or(0)
    }
}

/// A merged rank×time timeline (possibly partial — see `missing`).
#[derive(Debug, Clone)]
pub struct Timeline {
    /// World size of the traced run.
    pub nranks: usize,
    /// Surviving streams, sorted by rank.
    pub streams: Vec<RankStream>,
    /// Ranks whose stream could not be gathered (dead peers).
    pub missing: Vec<usize>,
    /// Per-stream clock offset (ns, added to that stream's local times to
    /// land on the reference rank's clock), parallel to `streams`.
    pub offsets_ns: Vec<i64>,
}

fn median(mut v: Vec<i64>) -> i64 {
    if v.is_empty() {
        return 0;
    }
    v.sort_unstable();
    v[v.len() / 2]
}

impl Timeline {
    /// Merge gathered streams into one timeline, estimating per-rank clock
    /// offsets from matched collective-edge end times.
    pub fn merge(nranks: usize, mut streams: Vec<RankStream>, mut missing: Vec<usize>) -> Timeline {
        streams.sort_by_key(|s| s.rank);
        streams.dedup_by_key(|s| s.rank);
        missing.sort_unstable();
        missing.dedup();
        let offsets_ns = match streams.split_first() {
            None => Vec::new(),
            Some((reference, rest)) => {
                let ref_ends: std::collections::HashMap<u64, u64> = reference
                    .spans
                    .iter()
                    .filter(|s| s.seq != NO_SEQ)
                    .map(|s| (s.seq, s.end_ns))
                    .collect();
                let mut offsets = vec![0i64];
                for s in rest {
                    let diffs: Vec<i64> = s
                        .spans
                        .iter()
                        .filter(|sp| sp.seq != NO_SEQ)
                        .filter_map(|sp| {
                            ref_ends
                                .get(&sp.seq)
                                .map(|&re| re as i64 - sp.end_ns as i64)
                        })
                        .collect();
                    offsets.push(median(diffs));
                }
                offsets
            }
        };
        Timeline {
            nranks,
            streams,
            missing,
            offsets_ns,
        }
    }

    /// The stream recorded by `rank`, if it survived the gather.
    pub fn stream(&self, rank: usize) -> Option<&RankStream> {
        self.streams.iter().find(|s| s.rank == rank)
    }

    /// Collective-edge spans grouped by logical-clock value, in `seq` order.
    /// Every group's members are in rank order; a group holds one member per
    /// *surviving* rank that recorded the collective.
    pub fn collectives(&self) -> Vec<CollectiveGroup> {
        let mut by_seq: std::collections::BTreeMap<u64, CollectiveGroup> =
            std::collections::BTreeMap::new();
        for (idx, s) in self.streams.iter().enumerate() {
            let off = self.offsets_ns.get(idx).copied().unwrap_or(0);
            for sp in &s.spans {
                if sp.seq == NO_SEQ {
                    continue;
                }
                let g = by_seq.entry(sp.seq).or_insert_with(|| CollectiveGroup {
                    kind: sp.kind,
                    seq: sp.seq,
                    members: Vec::new(),
                });
                g.members.push((
                    s.rank,
                    sp.start_ns as i64 + off,
                    sp.end_ns as i64 + off,
                    sp.bytes,
                    sp.msgs,
                    sp.detail,
                ));
            }
        }
        by_seq.into_values().collect()
    }

    /// Straggler attribution over every collective: who was critical, how
    /// long everyone else waited behind them.
    pub fn imbalance(&self) -> ImbalanceReport {
        let mut wait_ns = vec![0u64; self.nranks];
        let mut critical_hits = vec![0u64; self.nranks];
        let mut hist = vec![[0u64; WAIT_BUCKETS]; self.nranks];
        let groups = self.collectives();
        let mut counted = 0usize;
        for g in &groups {
            if g.members.len() < 2 {
                continue;
            }
            counted += 1;
            let latest_start = g.members.iter().map(|m| m.1).max().unwrap_or(0);
            let earliest_start = g.members.iter().map(|m| m.1).min().unwrap_or(0);
            for &(rank, start, end, ..) in &g.members {
                if rank >= self.nranks {
                    continue;
                }
                // A rank cannot have waited longer than it spent inside the
                // collective; the clamp bounds clock-alignment noise.
                let dur = (end - start).max(0) as u64;
                let w = ((latest_start - start).max(0) as u64).min(dur);
                wait_ns[rank] += w;
                let b = if w == 0 {
                    0
                } else {
                    (63 - w.leading_zeros() as usize).min(WAIT_BUCKETS - 1)
                };
                hist[rank][b] += 1;
            }
            // A dead-even arrival has no straggler; only attribute a
            // critical hit when someone actually arrived late.
            let crit = g.critical_rank();
            if latest_start > earliest_start && crit < self.nranks {
                critical_hits[crit] += 1;
            }
        }
        ImbalanceReport {
            wait_ns,
            critical_hits,
            hist,
            collectives: counted,
        }
    }

    /// Skew decomposition of each exposed reduction: the group's wall
    /// footprint splits into "slowest rank compute" (the start spread — time
    /// early ranks sat waiting for the critical rank to arrive) and "wire"
    /// (the rest), with a modeled wire time from the calibrated per-stage
    /// latency `alpha_reduce` (s) and bandwidth `beta` (bytes/s) alongside.
    pub fn skew(&self, alpha_reduce: f64, beta: f64) -> Vec<SkewRow> {
        let mut rows = Vec::new();
        for g in self.collectives() {
            if g.kind != TraceKind::Reduction || g.members.len() < 2 {
                continue;
            }
            let earliest_start = g.members.iter().map(|m| m.1).min().unwrap_or(0);
            let latest_start = g.members.iter().map(|m| m.1).max().unwrap_or(0);
            let latest_end = g.members.iter().map(|m| m.2).max().unwrap_or(0);
            let exposed_ns = (latest_end - earliest_start).max(0) as u64;
            let skew_ns = ((latest_start - earliest_start).max(0) as u64).min(exposed_ns);
            let stages = g
                .members
                .iter()
                .map(|m| m.5 & 0xffff_ffff)
                .max()
                .unwrap_or(0);
            let bytes = g.members.iter().map(|m| m.3).max().unwrap_or(0);
            let modeled_wire_ns =
                ((stages as f64 * alpha_reduce + bytes as f64 / beta) * 1e9).round() as u64;
            rows.push(SkewRow {
                seq: g.seq,
                critical_rank: g.critical_rank(),
                ranks: g.members.len(),
                exposed_ns,
                skew_ns,
                wire_ns: exposed_ns - skew_ns,
                modeled_wire_ns,
            });
        }
        rows
    }

    /// Per-rank, per-kind `(count, total_ns)` table — the paper-style local
    /// phase breakdown, one row per surviving rank.
    pub fn phase_totals(&self) -> Vec<PhaseTotalsRow> {
        self.streams
            .iter()
            .map(|s| {
                let mut count = [0u64; 8];
                let mut total_ns = [0u64; 8];
                for sp in &s.spans {
                    let k = sp.kind.code() as usize;
                    count[k] += 1;
                    total_ns[k] += sp.dur_ns();
                }
                PhaseTotalsRow {
                    rank: s.rank,
                    count,
                    total_ns,
                }
            })
            .collect()
    }

    /// Flat `f64` encoding (so rank 0 can return a timeline through an SPMD
    /// result channel): `[nranks, nmissing, missing…, nstreams, stream
    /// frames…]`, each stream frame length-prefixed.
    pub fn encode(&self) -> Vec<f64> {
        let mut out = vec![self.nranks as f64, self.missing.len() as f64];
        out.extend(self.missing.iter().map(|&r| r as f64));
        out.push(self.streams.len() as f64);
        for s in &self.streams {
            let frame = s.encode();
            out.push(frame.len() as f64);
            out.extend(frame);
        }
        out
    }

    /// Rebuild from [`Timeline::encode`] (offsets are recomputed — the merge
    /// is deterministic). `None` if malformed.
    pub fn decode(v: &[f64]) -> Option<Timeline> {
        let mut i = 0usize;
        let mut next = |n: usize| -> Option<&[f64]> {
            let s = v.get(i..i + n)?;
            i += n;
            Some(s)
        };
        let nranks = next(1)?[0] as usize;
        let nmissing = next(1)?[0] as usize;
        let missing: Vec<usize> = next(nmissing)?.iter().map(|&x| x as usize).collect();
        let nstreams = next(1)?[0] as usize;
        let mut streams = Vec::with_capacity(nstreams);
        for _ in 0..nstreams {
            let len = next(1)?[0] as usize;
            streams.push(RankStream::decode(next(len)?)?);
        }
        if i != v.len() {
            return None;
        }
        Some(Timeline::merge(nranks, streams, missing))
    }

    /// Serialize to a JSON document (spans as 7-number arrays:
    /// `[kind, seq, start_ns, end_ns, bytes, msgs, detail]`, `seq = -1` for
    /// local spans).
    pub fn to_json(&self) -> String {
        let streams = self
            .streams
            .iter()
            .map(|s| {
                let spans = s
                    .spans
                    .iter()
                    .map(|sp| {
                        let mut row = Vec::with_capacity(SPAN_FIELDS);
                        sp.encode_into(&mut row);
                        JsonValue::nums(row)
                    })
                    .collect();
                JsonValue::obj(vec![
                    ("rank", JsonValue::from(s.rank)),
                    ("dropped", JsonValue::Num(s.dropped as f64)),
                    ("spans", JsonValue::Arr(spans)),
                ])
            })
            .collect();
        JsonValue::obj(vec![
            ("nranks", JsonValue::from(self.nranks)),
            (
                "missing",
                JsonValue::nums(self.missing.iter().map(|&r| r as f64)),
            ),
            (
                "offsets_ns",
                JsonValue::nums(self.offsets_ns.iter().map(|&o| o as f64)),
            ),
            ("streams", JsonValue::Arr(streams)),
        ])
        .to_json()
    }

    /// Parse a [`Timeline::to_json`] document (offsets are recomputed by the
    /// deterministic merge). `None` on malformed input.
    pub fn from_json(src: &str) -> Option<Timeline> {
        let v = JsonValue::parse(src).ok()?;
        let nranks = v.get("nranks")?.as_usize()?;
        let missing = v
            .get("missing")?
            .as_array()?
            .iter()
            .map(|m| m.as_usize())
            .collect::<Option<Vec<_>>>()?;
        let mut streams = Vec::new();
        for s in v.get("streams")?.as_array()? {
            let rank = s.get("rank")?.as_usize()?;
            let dropped = s.get("dropped")?.as_f64()? as u64;
            let mut spans = Vec::new();
            for row in s.get("spans")?.as_array()? {
                let nums = row
                    .as_array()?
                    .iter()
                    .map(|x| x.as_f64())
                    .collect::<Option<Vec<f64>>>()?;
                spans.push(TraceSpan::decode(&nums)?);
            }
            streams.push(RankStream {
                rank,
                dropped,
                spans,
            });
        }
        Some(Timeline::merge(nranks, streams, missing))
    }
}

/// Per-rank, per-kind span totals (see [`Timeline::phase_totals`]); arrays
/// are indexed by [`TraceKind::code`].
#[derive(Debug, Clone)]
pub struct PhaseTotalsRow {
    /// Rank the row describes.
    pub rank: usize,
    /// Span count per kind.
    pub count: [u64; 8],
    /// Summed span duration per kind, nanoseconds.
    pub total_ns: [u64; 8],
}

/// Render the per-rank phase table for a set of [`PhaseTotalsRow`]s
/// (milliseconds; kinds nobody recorded are omitted).
pub fn phase_table(rows: &[PhaseTotalsRow]) -> String {
    let used: Vec<TraceKind> = TraceKind::all()
        .into_iter()
        .filter(|k| rows.iter().any(|r| r.count[k.code() as usize] > 0))
        .collect();
    let mut s = String::new();
    let _ = write!(s, "{:<6}", "rank");
    for k in &used {
        let _ = write!(s, " {:>15}", format!("{} (ms)", k.name()));
    }
    s.push('\n');
    for r in rows {
        let _ = write!(s, "{:<6}", r.rank);
        for k in &used {
            let _ = write!(s, " {:>15.3}", r.total_ns[k.code() as usize] as f64 / 1e6);
        }
        s.push('\n');
    }
    s
}

/// Straggler attribution over a merged timeline (see
/// [`Timeline::imbalance`]).
#[derive(Debug, Clone)]
pub struct ImbalanceReport {
    /// Per rank: total time spent waiting behind the slowest rank across
    /// every collective, nanoseconds.
    pub wait_ns: Vec<u64>,
    /// Per rank: number of collectives where this rank arrived last.
    pub critical_hits: Vec<u64>,
    /// Per rank: log2 histogram of per-collective wait times.
    pub hist: Vec<[u64; WAIT_BUCKETS]>,
    /// Collectives with at least two surviving members that were analyzed.
    pub collectives: usize,
}

impl ImbalanceReport {
    /// Sum of every rank's wait time, nanoseconds.
    pub fn total_wait_ns(&self) -> u64 {
        self.wait_ns.iter().sum()
    }

    /// Publish the report as per-rank gauges on `reg`:
    /// `{prefix}_wait_ns_rank{r}`, `{prefix}_critical_hits_rank{r}`, plus
    /// `{prefix}_wait_ns_total` and `{prefix}_collectives` — the registry
    /// side of the "measured imbalance" acceptance check.
    pub fn publish(&self, reg: &MetricsRegistry, prefix: &str) {
        for (r, &w) in self.wait_ns.iter().enumerate() {
            reg.gauge(&format!("{prefix}_wait_ns_rank{r}"))
                .set(w as f64);
        }
        for (r, &c) in self.critical_hits.iter().enumerate() {
            reg.gauge(&format!("{prefix}_critical_hits_rank{r}"))
                .set(c as f64);
        }
        reg.gauge(&format!("{prefix}_wait_ns_total"))
            .set(self.total_wait_ns() as f64);
        reg.gauge(&format!("{prefix}_collectives"))
            .set(self.collectives as f64);
    }

    /// Human-readable wait-behind-slowest table plus histograms.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<6} {:>18} {:>15} {:>24}",
            "rank", "wait_behind_slowest", "critical_hits", "wait histogram (log2 ns)"
        );
        for (r, &w) in self.wait_ns.iter().enumerate() {
            let hist = &self.hist[r];
            let last = hist.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
            let buckets: Vec<String> = hist[..last].iter().map(|c| c.to_string()).collect();
            let _ = writeln!(
                s,
                "{:<6} {:>15.3} ms {:>15} [{}]",
                r,
                w as f64 / 1e6,
                self.critical_hits[r],
                buckets.join(",")
            );
        }
        let _ = writeln!(
            s,
            "collectives: {}   total wait: {:.3} ms",
            self.collectives,
            self.total_wait_ns() as f64 / 1e6
        );
        s
    }
}

/// One exposed reduction's skew decomposition (see [`Timeline::skew`]).
#[derive(Debug, Clone)]
pub struct SkewRow {
    /// Logical-clock value of the reduction.
    pub seq: u64,
    /// Rank that arrived last.
    pub critical_rank: usize,
    /// Surviving ranks that recorded the reduction.
    pub ranks: usize,
    /// Wall footprint: earliest aligned start → latest aligned end, ns.
    pub exposed_ns: u64,
    /// Start spread — "slowest rank compute" the early ranks waited out, ns.
    pub skew_ns: u64,
    /// Remainder attributed to the wire (exposed − skew), ns.
    pub wire_ns: u64,
    /// Modeled wire time from the calibrated constants, ns.
    pub modeled_wire_ns: u64,
}

/// Render the skew table for [`Timeline::skew`] rows.
pub fn skew_table(rows: &[SkewRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<8} {:>9} {:>12} {:>12} {:>12} {:>16}",
        "seq", "critical", "exposed_us", "skew_us", "wire_us", "modeled_wire_us"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<8} {:>9} {:>12.2} {:>12.2} {:>12.2} {:>16.2}",
            r.seq,
            r.critical_rank,
            r.exposed_ns as f64 / 1e3,
            r.skew_ns as f64 / 1e3,
            r.wire_ns as f64 / 1e3,
            r.modeled_wire_ns as f64 / 1e3
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: TraceKind, seq: u64, start: u64, end: u64, bytes: u64, detail: u64) -> TraceSpan {
        TraceSpan {
            kind,
            seq,
            start_ns: start,
            end_ns: end,
            bytes,
            msgs: 1,
            detail,
        }
    }

    /// Two ranks, clocks offset by exactly 1000 ns: rank 1's clock reads
    /// 1000 ns *less* at the same instant. Two reductions end simultaneously
    /// in real time; rank 1 arrives 500 ns late at the second.
    fn skewed_timeline() -> Timeline {
        let s0 = RankStream {
            rank: 0,
            dropped: 0,
            spans: vec![
                span(TraceKind::Reduction, 0, 2000, 3000, 80, 2),
                span(TraceKind::PrecondApply, NO_SEQ, 3000, 3500, 0, 0),
                span(TraceKind::Reduction, 1, 4000, 5500, 80, 2),
            ],
        };
        let s1 = RankStream {
            rank: 1,
            dropped: 0,
            spans: vec![
                span(TraceKind::Reduction, 0, 1000, 2000, 80, 2),
                span(TraceKind::Reduction, 1, 3500, 4500, 80, 2),
            ],
        };
        Timeline::merge(2, vec![s1, s0], vec![])
    }

    #[test]
    fn merge_aligns_clocks_via_collective_ends() {
        let tl = skewed_timeline();
        assert_eq!(tl.streams[0].rank, 0);
        assert_eq!(tl.offsets_ns[0], 0);
        // Median of {3000-2000, 5500-4500} = 1000.
        assert_eq!(tl.offsets_ns[1], 1000);
        let groups = tl.collectives();
        assert_eq!(groups.len(), 2);
        // Aligned: both ranks start reduction 0 at t=2000.
        assert_eq!(groups[0].members[0].1, 2000);
        assert_eq!(groups[0].members[1].1, 2000);
        // Reduction 1: rank 1 starts at aligned 4500 vs rank 0's 4000.
        assert_eq!(groups[1].members[1].1, 4500);
        assert_eq!(groups[1].critical_rank(), 1);
    }

    #[test]
    fn imbalance_attributes_wait_behind_slowest() {
        let tl = skewed_timeline();
        let rep = tl.imbalance();
        assert_eq!(rep.collectives, 2);
        // Rank 0 waited 500 ns behind rank 1 at reduction 1; rank 1 never
        // waited.
        assert_eq!(rep.wait_ns, vec![500, 0]);
        assert_eq!(rep.critical_hits[1], 1);
        assert_eq!(rep.total_wait_ns(), 500);
        let text = rep.to_text();
        assert!(text.contains("wait_behind_slowest"));
        let reg = MetricsRegistry::new();
        rep.publish(&reg, "trace");
        let exposed = reg.expose_text();
        assert!(exposed.contains("trace_wait_ns_rank0 500"));
        assert!(exposed.contains("trace_wait_ns_total 500"));
    }

    #[test]
    fn skew_decomposes_exposed_reductions() {
        let tl = skewed_timeline();
        let rows = tl.skew(1e-7, 1e9);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].skew_ns, 0);
        assert_eq!(rows[1].skew_ns, 500);
        assert_eq!(rows[1].critical_rank, 1);
        assert_eq!(rows[1].exposed_ns, rows[1].skew_ns + rows[1].wire_ns);
        // 2 stages · 100 ns + 80 B / 1 GB/s = 280 ns.
        assert_eq!(rows[1].modeled_wire_ns, 280);
        assert!(skew_table(&rows).contains("modeled_wire_us"));
    }

    #[test]
    fn encode_and_json_round_trip_span_for_span() {
        let tl = skewed_timeline();
        let back = Timeline::decode(&tl.encode()).expect("flat decode");
        assert_eq!(back.nranks, tl.nranks);
        assert_eq!(back.missing, tl.missing);
        assert_eq!(back.offsets_ns, tl.offsets_ns);
        for (a, b) in tl.streams.iter().zip(&back.streams) {
            assert_eq!(a, b);
        }
        let json = Timeline::from_json(&tl.to_json()).expect("json decode");
        assert_eq!(json.offsets_ns, tl.offsets_ns);
        for (a, b) in tl.streams.iter().zip(&json.streams) {
            assert_eq!(a, b);
        }
        assert!(Timeline::decode(&tl.encode()[1..]).is_none());
        assert!(Timeline::from_json("{}").is_none());
    }

    #[test]
    fn partial_timeline_keeps_missing_ranks() {
        let s0 = RankStream {
            rank: 0,
            dropped: 0,
            spans: vec![span(TraceKind::PrecondApply, NO_SEQ, 0, 10, 0, 0)],
        };
        let tl = Timeline::merge(4, vec![s0], vec![2, 1]);
        assert_eq!(tl.missing, vec![1, 2]);
        assert_eq!(tl.streams.len(), 1);
        let rep = tl.imbalance();
        assert_eq!(rep.collectives, 0);
        let back = Timeline::from_json(&tl.to_json()).unwrap();
        assert_eq!(back.missing, vec![1, 2]);
    }

    #[test]
    fn phase_totals_sum_per_kind() {
        let tl = skewed_timeline();
        let rows = tl.phase_totals();
        assert_eq!(rows.len(), 2);
        let red = TraceKind::Reduction.code() as usize;
        let pa = TraceKind::PrecondApply.code() as usize;
        assert_eq!(rows[0].count[red], 2);
        assert_eq!(rows[0].total_ns[red], 1000 + 1500);
        assert_eq!(rows[0].count[pa], 1);
        assert_eq!(rows[1].count[pa], 0);
        let table = phase_table(&rows);
        assert!(table.contains("reduction (ms)"));
        assert!(!table.contains("halo (ms)"));
    }
}
