//! Convergence-health diagnostics.
//!
//! The solvers emit [`crate::event::DiagEvent`]s when numerics look
//! unhealthy (orthogonality loss, rank collapse, poor Ritz values); this
//! module supplies the one detector that needs *state across iterations*:
//! a stagnation detector on the residual history.

/// Detects a stalled residual: fires when the current residual norm has
/// decayed by less than `1 - threshold` over the last `window` iterations,
/// i.e. `res[n] / res[n - window] > threshold`.
///
/// The detector latches — it reports at most one firing per solve, since a
/// stagnating run would otherwise fire on every subsequent iteration.
#[derive(Clone, Debug)]
pub struct StagnationDetector {
    window: usize,
    threshold: f64,
    history: Vec<f64>,
    fired: bool,
}

impl StagnationDetector {
    /// Detector over a `window`-iteration lookback with decay `threshold`.
    pub fn new(window: usize, threshold: f64) -> StagnationDetector {
        StagnationDetector {
            window: window.max(1),
            threshold,
            history: Vec::new(),
            fired: false,
        }
    }

    /// Window / threshold used by the solvers: less than 5% residual decay
    /// over 30 iterations (one typical restart cycle). Calibrated on the
    /// golden cases: restarted GMRES(30) stagnating on the 1-D Laplacian
    /// plateaus at a ratio ≈ 0.97 per 30 iterations, while converging runs
    /// longer than the window (convection–diffusion, ~144 iterations) stay
    /// below 0.2.
    pub fn default_solver() -> StagnationDetector {
        StagnationDetector::new(30, 0.95)
    }

    /// Lookback window in iterations.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Feed the next residual norm. Returns `Some(ratio)` the first time
    /// stagnation is detected, where `ratio = res / res_window_ago`.
    pub fn push(&mut self, res: f64) -> Option<f64> {
        self.history.push(res);
        if self.fired {
            return None;
        }
        let n = self.history.len();
        if n <= self.window {
            return None;
        }
        let past = self.history[n - 1 - self.window];
        if !(past.is_finite() && res.is_finite()) || past <= 0.0 {
            return None;
        }
        let ratio = res / past;
        if ratio > self.threshold {
            self.fired = true;
            Some(ratio)
        } else {
            None
        }
    }

    /// Whether the detector has already fired this solve.
    pub fn fired(&self) -> bool {
        self.fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converging_history_never_fires() {
        let mut d = StagnationDetector::new(10, 0.99);
        let mut res = 1.0;
        for _ in 0..100 {
            assert!(d.push(res).is_none());
            res *= 0.8;
        }
        assert!(!d.fired());
    }

    #[test]
    fn flat_history_fires_once() {
        let mut d = StagnationDetector::new(10, 0.99);
        let mut firings = 0;
        for i in 0..50 {
            if let Some(ratio) = d.push(1.0) {
                firings += 1;
                assert!(ratio > 0.99);
                // First possible firing: iteration window+1 (index window).
                assert_eq!(i, 10);
            }
        }
        assert_eq!(firings, 1);
        assert!(d.fired());
    }

    #[test]
    fn needs_full_window_before_firing() {
        let mut d = StagnationDetector::new(30, 0.99);
        for _ in 0..30 {
            assert!(d.push(1.0).is_none());
        }
        assert!(d.push(1.0).is_some());
    }

    #[test]
    fn slow_but_real_decay_under_threshold_stays_quiet() {
        // 2% decay per window is below the 0.99 ratio threshold... barely.
        let mut d = StagnationDetector::new(10, 0.99);
        let mut res = 1.0;
        for _ in 0..100 {
            assert!(d.push(res).is_none());
            res *= 0.98f64.powf(0.1); // 2% decay per 10 iterations
        }
    }

    #[test]
    fn nonfinite_or_zero_history_is_ignored() {
        let mut d = StagnationDetector::new(2, 0.99);
        d.push(0.0);
        d.push(f64::NAN);
        assert!(d.push(1.0).is_none());
        assert!(d.push(1.0).is_none()); // past = NaN -> skipped
    }
}
