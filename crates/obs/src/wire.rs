//! Wire-level transport counters.
//!
//! Where [`crate::event::CommDelta`] counts *logical* communication events
//! (reductions, halo exchanges) as the solvers report them, this module
//! counts what a transport backend actually put on the wire: per-endpoint
//! messages, payload bytes, and the wall time spent inside `send`/`recv`.
//! The two views bracket each other — a butterfly all-reduce on `P` ranks is
//! one logical reduction but `O(P log P)` wire messages — and comparing them
//! is exactly the measured-vs-modeled validation the calibration pass
//! performs.
//!
//! Counters are relaxed atomics: statistics, not synchronization.

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-endpoint wire counters (one instance per rank per transport).
#[derive(Debug, Default)]
pub struct WireStats {
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    msgs_recv: AtomicU64,
    bytes_recv: AtomicU64,
    send_ns: AtomicU64,
    recv_ns: AtomicU64,
}

impl WireStats {
    /// Record one sent message of `bytes` payload taking `ns` nanoseconds.
    ///
    /// For buffered backends (writer threads, channel sends) the recorded
    /// time is the *enqueue* cost, not the on-wire time — per-rank send time
    /// is a lower bound there, while `recv_ns` captures the real waiting.
    #[inline]
    pub fn record_send(&self, bytes: usize, ns: u64) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
        self.send_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record one received message of `bytes` payload taking `ns`
    /// nanoseconds of blocking wait + deserialization.
    #[inline]
    pub fn record_recv(&self, bytes: usize, ns: u64) {
        self.msgs_recv.fetch_add(1, Ordering::Relaxed);
        self.bytes_recv.fetch_add(bytes as u64, Ordering::Relaxed);
        self.recv_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Copy out the counters.
    pub fn snapshot(&self) -> WireSnapshot {
        WireSnapshot {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            msgs_recv: self.msgs_recv.load(Ordering::Relaxed),
            bytes_recv: self.bytes_recv.load(Ordering::Relaxed),
            send_ns: self.send_ns.load(Ordering::Relaxed),
            recv_ns: self.recv_ns.load(Ordering::Relaxed),
        }
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.msgs_sent.store(0, Ordering::Relaxed);
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.msgs_recv.store(0, Ordering::Relaxed);
        self.bytes_recv.store(0, Ordering::Relaxed);
        self.send_ns.store(0, Ordering::Relaxed);
        self.recv_ns.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`WireStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireSnapshot {
    /// Messages sent by this endpoint.
    pub msgs_sent: u64,
    /// Payload bytes sent (frame headers excluded).
    pub bytes_sent: u64,
    /// Messages received by this endpoint.
    pub msgs_recv: u64,
    /// Payload bytes received.
    pub bytes_recv: u64,
    /// Nanoseconds spent in `send` (enqueue time on buffered backends).
    pub send_ns: u64,
    /// Nanoseconds spent blocked in `recv`.
    pub recv_ns: u64,
}

impl WireSnapshot {
    /// Difference of two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: &WireSnapshot) -> WireSnapshot {
        WireSnapshot {
            msgs_sent: self.msgs_sent - earlier.msgs_sent,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            msgs_recv: self.msgs_recv - earlier.msgs_recv,
            bytes_recv: self.bytes_recv - earlier.bytes_recv,
            send_ns: self.send_ns - earlier.send_ns,
            recv_ns: self.recv_ns - earlier.recv_ns,
        }
    }

    /// Element-wise sum (aggregate several ranks into world totals).
    pub fn merge(&self, other: &WireSnapshot) -> WireSnapshot {
        WireSnapshot {
            msgs_sent: self.msgs_sent + other.msgs_sent,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            msgs_recv: self.msgs_recv + other.msgs_recv,
            bytes_recv: self.bytes_recv + other.bytes_recv,
            send_ns: self.send_ns + other.send_ns,
            recv_ns: self.recv_ns + other.recv_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_snapshot_and_reset() {
        let w = WireStats::default();
        w.record_send(64, 100);
        w.record_send(8, 50);
        w.record_recv(64, 2000);
        let s = w.snapshot();
        assert_eq!(s.msgs_sent, 2);
        assert_eq!(s.bytes_sent, 72);
        assert_eq!(s.msgs_recv, 1);
        assert_eq!(s.bytes_recv, 64);
        assert_eq!(s.send_ns, 150);
        assert_eq!(s.recv_ns, 2000);
        w.reset();
        assert_eq!(w.snapshot(), WireSnapshot::default());
    }

    #[test]
    fn since_and_merge() {
        let w = WireStats::default();
        w.record_send(10, 1);
        let a = w.snapshot();
        w.record_send(10, 1);
        w.record_recv(20, 5);
        let b = w.snapshot();
        let d = b.since(&a);
        assert_eq!(d.msgs_sent, 1);
        assert_eq!(d.msgs_recv, 1);
        assert_eq!(d.bytes_recv, 20);
        let m = a.merge(&d);
        assert_eq!(m, b);
    }
}
