//! Chrome-trace (Perfetto-loadable) export of a merged [`Timeline`].
//!
//! The output is the Trace Event Format's JSON object form
//! (`{"traceEvents": [...]}`), loadable in `chrome://tracing` and
//! <https://ui.perfetto.dev>. One track (`tid`) per rank, named via
//! `thread_name` metadata events; every span becomes a complete (`"X"`)
//! event with clock-aligned microsecond timestamps shifted so the earliest
//! span starts at `t = 0`; every collective observed on ≥ 2 ranks gets a
//! chain of flow events (`"s"` on the first member, `"f"` on each other
//! member, one shared `id`) so the matching spans are visually linked
//! across rank tracks.

use crate::json::JsonValue;
use crate::span::NO_SEQ;
use crate::timeline::Timeline;

/// Process id used for every event (the trace models ranks as threads of
/// one logical process).
const PID: usize = 0;

fn event_base(name: &str, ph: &str, tid: usize, ts_us: f64) -> Vec<(&'static str, JsonValue)> {
    vec![
        ("name", JsonValue::Str(name.to_string())),
        ("ph", JsonValue::Str(ph.to_string())),
        ("pid", JsonValue::from(PID)),
        ("tid", JsonValue::from(tid)),
        ("ts", JsonValue::Num(ts_us)),
    ]
}

/// Render `tl` as Chrome Trace Event Format JSON.
pub fn chrome_trace(tl: &Timeline) -> String {
    let mut events: Vec<JsonValue> = Vec::new();
    // Track naming: one thread_name metadata event per surviving rank (dead
    // ranks have no spans and get no track, but are recorded in metadata).
    for s in &tl.streams {
        let mut e = event_base("thread_name", "M", s.rank, 0.0);
        e.remove(4); // metadata events carry no ts
        e.push((
            "args",
            JsonValue::obj(vec![("name", JsonValue::Str(format!("rank {}", s.rank)))]),
        ));
        events.push(JsonValue::obj(e));
    }

    // Global shift so the earliest aligned span lands at t = 0.
    let min_ns: i64 = tl
        .streams
        .iter()
        .enumerate()
        .flat_map(|(i, s)| {
            let off = tl.offsets_ns.get(i).copied().unwrap_or(0);
            s.spans.iter().map(move |sp| sp.start_ns as i64 + off)
        })
        .min()
        .unwrap_or(0);
    let us = |ns: i64| (ns - min_ns) as f64 / 1e3;

    for (i, s) in tl.streams.iter().enumerate() {
        let off = tl.offsets_ns.get(i).copied().unwrap_or(0);
        for sp in &s.spans {
            let start = sp.start_ns as i64 + off;
            let mut e = event_base(sp.kind.name(), "X", s.rank, us(start));
            e.push(("dur", JsonValue::Num(sp.dur_ns() as f64 / 1e3)));
            let mut args = vec![
                ("bytes", JsonValue::Num(sp.bytes as f64)),
                ("msgs", JsonValue::Num(sp.msgs as f64)),
                ("detail", JsonValue::Num(sp.detail as f64)),
            ];
            if sp.seq != NO_SEQ {
                args.push(("seq", JsonValue::Num(sp.seq as f64)));
            }
            e.push(("args", JsonValue::obj(args)));
            events.push(JsonValue::obj(e));
        }
    }

    // Flow chains linking each collective's spans across rank tracks. The
    // flow id is the logical-clock value — unique per collective within a
    // single exported timeline.
    for g in tl.collectives() {
        if g.members.len() < 2 {
            continue;
        }
        let name = format!("{}:{}", g.kind.name(), g.seq);
        for (m, &(rank, start, end, ..)) in g.members.iter().enumerate() {
            // Anchor flow points *inside* the span so viewers bind them to
            // the X event: start-edge for the producer, end-edge for
            // consumers.
            let (ph, ts) = if m == 0 {
                ("s", start)
            } else {
                ("f", end.max(start))
            };
            let mut e = event_base(&name, ph, rank, us(ts));
            e.push(("cat", JsonValue::from("collective")));
            e.push(("id", JsonValue::Num(g.seq as f64)));
            if ph == "f" {
                // Bind to the enclosing slice rather than the next one.
                e.push(("bp", JsonValue::from("e")));
            }
            events.push(JsonValue::obj(e));
        }
    }

    JsonValue::obj(vec![
        ("traceEvents", JsonValue::Arr(events)),
        ("displayTimeUnit", JsonValue::from("ms")),
        (
            "otherData",
            JsonValue::obj(vec![
                ("nranks", JsonValue::from(tl.nranks)),
                (
                    "missing",
                    JsonValue::nums(tl.missing.iter().map(|&r| r as f64)),
                ),
            ]),
        ),
    ])
    .to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{TraceKind, TraceSpan};
    use crate::timeline::RankStream;

    fn tl() -> Timeline {
        let mk = |rank: usize, start: u64| RankStream {
            rank,
            dropped: 0,
            spans: vec![
                TraceSpan {
                    kind: TraceKind::Reduction,
                    seq: 0,
                    start_ns: start,
                    end_ns: start + 1000,
                    bytes: 64,
                    msgs: 2,
                    detail: 2,
                },
                TraceSpan {
                    kind: TraceKind::PrecondApply,
                    seq: NO_SEQ,
                    start_ns: start + 1500,
                    end_ns: start + 2000,
                    bytes: 0,
                    msgs: 0,
                    detail: 0,
                },
            ],
        };
        Timeline::merge(2, vec![mk(0, 5000), mk(1, 9000)], vec![])
    }

    #[test]
    fn export_has_one_track_per_rank_and_flow_links() {
        let text = chrome_trace(&tl());
        let doc = JsonValue::parse(&text).expect("export parses");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let tracks: Vec<&JsonValue> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .collect();
        assert_eq!(tracks.len(), 2);
        assert_eq!(
            tracks[0].get("args").unwrap().get("name").unwrap().as_str(),
            Some("rank 0")
        );
        let xs: Vec<&JsonValue> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        assert_eq!(xs.len(), 4);
        // Earliest aligned span starts at ts = 0.
        assert!(xs
            .iter()
            .any(|e| e.get("ts").unwrap().as_f64() == Some(0.0)));
        let flows: Vec<&JsonValue> = events
            .iter()
            .filter(|e| matches!(e.get("ph").and_then(|p| p.as_str()), Some("s") | Some("f")))
            .collect();
        assert_eq!(flows.len(), 2); // one s + one f for the single collective
        assert!(flows
            .iter()
            .all(|e| e.get("id").unwrap().as_usize() == Some(0)));
    }

    #[test]
    fn export_records_missing_ranks() {
        let mut t = tl();
        t.missing = vec![3];
        let doc = JsonValue::parse(&chrome_trace(&t)).unwrap();
        let missing = doc
            .get("otherData")
            .unwrap()
            .get("missing")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(missing[0].as_usize(), Some(3));
    }
}
