//! Named metrics registry: counters, gauges, and histograms.
//!
//! The registry is the glue between raw instrumentation (comm counters in
//! `kryst-par`, the phase profiler) and reports: producers register named
//! metrics once and update them through cheap atomic handles; consumers
//! take a JSON snapshot ([`MetricsRegistry::snapshot_json`]) or a
//! plain-text exposition dump ([`MetricsRegistry::expose_text`]) in the
//! style of `node_exporter`.
//!
//! ```
//! use kryst_obs::metrics::MetricsRegistry;
//! let reg = MetricsRegistry::new();
//! reg.counter("solve_iterations").add(144);
//! reg.gauge("imbalance_p2p_bytes_max").set(1.25);
//! reg.histogram("reduction_elems").observe(930.0);
//! assert!(reg.expose_text().contains("solve_iterations 144"));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::fmt_f64;

/// Number of log2 buckets a [`Histogram`] keeps.
pub const HIST_BUCKETS: usize = 32;

struct HistCore {
    count: AtomicU64,
    /// Sum as f64 bit-pattern, updated by CAS.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl HistCore {
    fn new() -> HistCore {
        #[allow(clippy::declare_interior_mutable_const)]
        const Z: AtomicU64 = AtomicU64::new(0);
        HistCore {
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            buckets: [Z; HIST_BUCKETS],
        }
    }

    fn observe(&self, x: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + x).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let mut cur = self.min_bits.load(Ordering::Relaxed);
        while x < f64::from_bits(cur) {
            match self.min_bits.compare_exchange_weak(
                cur,
                x.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let mut cur = self.max_bits.load(Ordering::Relaxed);
        while x > f64::from_bits(cur) {
            match self.max_bits.compare_exchange_weak(
                cur,
                x.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        // Bucket by ilog2 of the (clamped-positive) value.
        let b = if x >= 1.0 {
            (x.log2() as usize).min(HIST_BUCKETS - 1)
        } else {
            0
        };
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Hist(Arc<HistCore>),
}

/// Handle to a monotonically increasing integer metric.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Handle to a settable floating-point metric.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge to `x`.
    pub fn set(&self, x: f64) {
        self.0.store(x.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Handle to a log2-bucketed sample distribution.
#[derive(Clone)]
pub struct Histogram(Arc<HistCore>);

impl Histogram {
    /// Record one sample.
    pub fn observe(&self, x: f64) {
        self.0.observe(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }
}

/// Thread-safe name → metric map. Handles are get-or-create: two callers
/// asking for the same name share the same underlying cell.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The process-global registry.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Get or create the counter named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.inner.lock().unwrap();
        let metric = m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))));
        match metric {
            Metric::Counter(c) => Counter(c.clone()),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create the gauge named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.inner.lock().unwrap();
        let metric = m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))));
        match metric {
            Metric::Gauge(g) => Gauge(g.clone()),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create the histogram named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.inner.lock().unwrap();
        let metric = m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Hist(Arc::new(HistCore::new())));
        match metric {
            Metric::Hist(h) => Histogram(h.clone()),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Remove every registered metric.
    pub fn reset(&self) {
        self.inner.lock().unwrap().clear();
    }

    /// Serialize every metric into one JSON object keyed by name.
    /// Counters become integers, gauges become floats, histograms become
    /// `{"count":...,"sum":...,"min":...,"max":...,"buckets":[...]}`.
    pub fn snapshot_json(&self) -> String {
        let m = self.inner.lock().unwrap();
        let mut s = String::from("{");
        for (i, (name, metric)) in m.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{name}\":"));
            match metric {
                Metric::Counter(c) => s.push_str(&c.load(Ordering::Relaxed).to_string()),
                Metric::Gauge(g) => s.push_str(&fmt_f64(f64::from_bits(g.load(Ordering::Relaxed)))),
                Metric::Hist(h) => {
                    let count = h.count.load(Ordering::Relaxed);
                    let min = f64::from_bits(h.min_bits.load(Ordering::Relaxed));
                    let max = f64::from_bits(h.max_bits.load(Ordering::Relaxed));
                    s.push_str(&format!(
                        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                        count,
                        fmt_f64(f64::from_bits(h.sum_bits.load(Ordering::Relaxed))),
                        fmt_f64(if count == 0 { 0.0 } else { min }),
                        fmt_f64(if count == 0 { 0.0 } else { max }),
                    ));
                    let buckets: Vec<u64> = h
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect();
                    let last = buckets.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
                    for (j, c) in buckets[..last].iter().enumerate() {
                        if j > 0 {
                            s.push(',');
                        }
                        s.push_str(&c.to_string());
                    }
                    s.push_str("]}");
                }
            }
        }
        s.push('}');
        s
    }

    /// Plain-text exposition: one `name value` line per metric, sorted by
    /// name; histograms expand to `_count`/`_sum`/`_min`/`_max` lines.
    pub fn expose_text(&self) -> String {
        let m = self.inner.lock().unwrap();
        let mut s = String::new();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => {
                    s.push_str(&format!("{name} {}\n", c.load(Ordering::Relaxed)));
                }
                Metric::Gauge(g) => {
                    s.push_str(&format!(
                        "{name} {}\n",
                        fmt_f64(f64::from_bits(g.load(Ordering::Relaxed)))
                    ));
                }
                Metric::Hist(h) => {
                    let count = h.count.load(Ordering::Relaxed);
                    s.push_str(&format!("{name}_count {count}\n"));
                    s.push_str(&format!(
                        "{name}_sum {}\n",
                        fmt_f64(f64::from_bits(h.sum_bits.load(Ordering::Relaxed)))
                    ));
                    if count > 0 {
                        s.push_str(&format!(
                            "{name}_min {}\n",
                            fmt_f64(f64::from_bits(h.min_bits.load(Ordering::Relaxed)))
                        ));
                        s.push_str(&format!(
                            "{name}_max {}\n",
                            fmt_f64(f64::from_bits(h.max_bits.load(Ordering::Relaxed)))
                        ));
                    }
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    #[test]
    fn counter_gauge_histogram_basics() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("iters");
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        // Same name returns the same cell.
        assert_eq!(reg.counter("iters").get(), 10);

        let g = reg.gauge("imbalance");
        g.set(1.5);
        assert_eq!(g.get(), 1.5);

        let h = reg.histogram("lat");
        h.observe(2.0);
        h.observe(6.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 8.0);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn snapshot_json_parses_back() {
        let reg = MetricsRegistry::new();
        reg.counter("a_count").add(3);
        reg.gauge("b_gauge").set(0.25);
        let h = reg.histogram("c_hist");
        h.observe(1.0);
        h.observe(1024.0);
        let v = JsonValue::parse(&reg.snapshot_json()).unwrap();
        assert_eq!(v.get("a_count").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("b_gauge").unwrap().as_f64(), Some(0.25));
        let hist = v.get("c_hist").unwrap();
        assert_eq!(hist.get("count").unwrap().as_usize(), Some(2));
        assert_eq!(hist.get("sum").unwrap().as_f64(), Some(1025.0));
        assert_eq!(hist.get("min").unwrap().as_f64(), Some(1.0));
        assert_eq!(hist.get("max").unwrap().as_f64(), Some(1024.0));
        let buckets = hist.get("buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets[0].as_usize(), Some(1)); // 1.0 -> bucket 0
        assert_eq!(buckets[10].as_usize(), Some(1)); // 1024 -> bucket 10
    }

    #[test]
    fn expose_text_is_sorted_lines() {
        let reg = MetricsRegistry::new();
        reg.counter("z_last").add(1);
        reg.counter("a_first").add(2);
        let text = reg.expose_text();
        let a = text.find("a_first 2").unwrap();
        let z = text.find("z_last 1").unwrap();
        assert!(a < z);
    }

    #[test]
    fn reset_clears_names() {
        let reg = MetricsRegistry::new();
        reg.counter("gone").add(5);
        reg.reset();
        assert_eq!(reg.counter("gone").get(), 0);
    }
}
