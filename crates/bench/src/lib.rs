//! Shared harness utilities for the figure/table reproduction binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see `DESIGN.md` for the index and `EXPERIMENTS.md`
//! for recorded outputs). The helpers here build the scaled-down workloads,
//! time solver phases, and print the same row/series structure the paper
//! reports.

pub mod harness;
pub mod tracedemo;

use kryst_core::{SolveOpts, SolveResult};
use kryst_obs::{JsonlRecorder, Recorder};
use kryst_par::CommStats;
use kryst_pde::maxwell::{maxwell3d, MaxwellGeom, MaxwellParams};
use kryst_pde::Problem;
use kryst_precond::{Schwarz, SchwarzOpts, SchwarzVariant};
use kryst_scalar::C64;
use kryst_sparse::partition::{partition_rcb, Partition};
use std::sync::Arc;
use std::time::Instant;

/// Attach a JSONL trace sink (plus comm counters) when `KRYST_TRACE_DIR`
/// is set; otherwise pass the options through untouched.
///
/// Each figure binary calls this once per solver series, so every solve in
/// the series appends its full event stream (begin / iteration / span /
/// precond-apply / end) to `$KRYST_TRACE_DIR/<label>.jsonl`. Solves are
/// delimited in the file by their `solve_begin` / `solve_end` markers.
/// An already-attached `CommStats` is kept so instrumented runs keep
/// reading their own counters.
pub fn traced_opts(opts: &SolveOpts, label: &str) -> SolveOpts {
    let Some(dir) = std::env::var_os("KRYST_TRACE_DIR") else {
        return opts.clone();
    };
    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir).expect("create trace dir");
    let path = dir.join(format!("{label}.jsonl"));
    let rec = JsonlRecorder::create(&path)
        .unwrap_or_else(|e| panic!("open trace file {}: {e}", path.display()));
    eprintln!("  [trace] {}", path.display());
    SolveOpts {
        recorder: Some(Arc::new(rec) as Arc<dyn Recorder>),
        stats: opts.stats.clone().or_else(|| Some(CommStats::new_shared())),
        ..opts.clone()
    }
}

/// Wall-clock a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Pretty separator line for the report output.
pub fn rule() {
    println!("{}", "-".repeat(72));
}

/// Print a per-RHS timing row like the paper's Fig. 2b/3b bars:
/// index, iterations, seconds, and gain vs a baseline time.
pub fn rhs_row(idx: usize, iters: usize, secs: f64, baseline: Option<f64>) {
    match baseline {
        Some(b) => {
            let gain = (b / secs - 1.0) * 100.0;
            println!("{idx:>4} {iters:>8} {secs:>12.4} {gain:>+9.1}%");
        }
        None => println!("{idx:>4} {iters:>8} {secs:>12.4} {:>10}", "-"),
    }
}

/// Downsample a convergence history to at most `max_points` rows for
/// printing (the figures plot hundreds of iterations; the tables don't need
/// every one).
pub fn downsample(history: &[Vec<f64>], max_points: usize) -> Vec<(usize, f64)> {
    let n = history.len();
    if n == 0 {
        return Vec::new();
    }
    let stride = n.div_ceil(max_points).max(1);
    let mut out: Vec<(usize, f64)> = history
        .iter()
        .enumerate()
        .step_by(stride)
        .map(|(i, row)| (i + 1, row.iter().cloned().fold(0.0f64, f64::max)))
        .collect();
    let last = history.len();
    let lastv = history[last - 1].iter().cloned().fold(0.0f64, f64::max);
    if out.last().map(|&(i, _)| i) != Some(last) {
        out.push((last, lastv));
    }
    out
}

/// Print a convergence curve (worst column) like Figs. 2a/3a/4.
pub fn print_curve(label: &str, history: &[Vec<f64>]) {
    println!("  convergence ({label}): iter → max-RHS relative residual");
    for (i, v) in downsample(history, 12) {
        println!("    {i:>5}   {v:.3e}");
    }
}

/// Total iterations of a sequence of results.
pub fn total_iters(results: &[SolveResult]) -> usize {
    results.iter().map(|r| r.iterations).sum()
}

/// A Maxwell test system with an ORAS preconditioner — the §V workhorse.
pub struct MaxwellSetup {
    /// The assembled problem.
    pub problem: Problem<C64>,
    /// Grid geometry (for the antenna right-hand sides).
    pub geom: MaxwellGeom,
    /// Discretization parameters.
    pub params: MaxwellParams,
    /// The partition used for the Schwarz methods.
    pub partition: Partition,
    /// Time spent in the preconditioner setup (factorizations).
    pub setup_seconds: f64,
    /// The preconditioner itself.
    pub oras: Schwarz<C64>,
}

/// Build the Maxwell problem + ORAS preconditioner used by Figs. 4/7/8.
pub fn maxwell_oras(params: MaxwellParams, nsub: usize, overlap: usize) -> MaxwellSetup {
    let (problem, geom) = maxwell3d(&params);
    let partition = partition_rcb(&problem.coords, nsub);
    let (oras, setup_seconds) = time(|| {
        Schwarz::new(
            &problem.a,
            &partition,
            &SchwarzOpts {
                variant: SchwarzVariant::Oras,
                overlap,
                impedance: params.omega,
            },
        )
    });
    MaxwellSetup {
        problem,
        geom,
        params,
        partition,
        setup_seconds,
        oras,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downsample_keeps_endpoints() {
        let hist: Vec<Vec<f64>> = (0..100).map(|i| vec![1.0 / (i + 1) as f64]).collect();
        let d = downsample(&hist, 10);
        assert_eq!(d.first().unwrap().0, 1);
        assert_eq!(d.last().unwrap().0, 100);
        assert!(d.len() <= 12);
    }

    #[test]
    fn maxwell_setup_builds() {
        let setup = maxwell_oras(MaxwellParams::matching_solution(4), 2, 1);
        assert!(setup.problem.a.nrows() > 0);
        assert_eq!(setup.oras.nsubdomains(), 2);
        assert!(setup.setup_seconds >= 0.0);
    }
}
