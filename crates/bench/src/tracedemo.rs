//! Shared skewed SPMD workload for the distributed-tracing demos.
//!
//! `kryst_trace run` and the `kryst_prof` measured-imbalance section both
//! need a small workload that (a) touches every instrumented span kind —
//! halo exchange, butterfly all-reduce, agglomerated coarse round trip —
//! and (b) has a *deliberate* straggler, so the merged timeline's
//! wait-behind-slowest attribution has something real to find. This module
//! is that workload: per step, each rank burns an amount of local compute
//! proportional to its rank index (rank `P-1` is always the critical rank),
//! then joins the collectives.

use kryst_obs::timeline::Timeline;
use kryst_par::collective::{all_reduce_sum, subset_layout};
use kryst_par::{gather_timeline, HaloPlan, Layout, Transport, TransportError};
use kryst_precond::CoarseAgglom;
use kryst_sparse::{Coo, Csr};

/// Unknowns of the demo operator (1-D Laplacian: chain halo topology).
pub const DEMO_N: usize = 256;
/// Coarse rows of the demo agglomeration round trip.
pub const COARSE_N: usize = 64;

/// The demo operator: 1-D Laplacian, so every interior rank has exactly two
/// halo neighbors.
pub fn laplace1d(n: usize) -> Csr<f64> {
    let mut c = Coo::new(n, n);
    for i in 0..n {
        c.push(i, i, 2.0);
        if i > 0 {
            c.push(i, i - 1, -1.0);
        }
        if i + 1 < n {
            c.push(i, i + 1, -1.0);
        }
    }
    c.to_csr()
}

/// Burn `units` of un-optimizable floating-point work.
fn busy(units: usize) {
    let mut acc = 0.0f64;
    for i in 0..units * 50 {
        acc += (i as f64).sqrt();
    }
    std::hint::black_box(acc);
}

/// Run `steps` of the skewed workload as the calling endpoint's rank, then
/// gather the merged timeline onto rank 0 ([`gather_timeline`]): returns
/// `Ok(Some(timeline))` there, `Ok(None)` on every other rank. Each step is
/// rank-proportional busy work, one halo exchange, one 8-double all-reduce,
/// and one agglomerated coarse gather/solve/scatter round trip.
pub fn skewed_workload<T: Transport + ?Sized>(
    t: &T,
    steps: usize,
) -> Result<Option<Timeline>, TransportError> {
    let rank = t.rank();
    let nranks = t.nranks();
    let a = laplace1d(DEMO_N);
    let layout = Layout::even(DEMO_N, nranks);
    let plan = HaloPlan::build(&a, &layout);
    let subset = (nranks / 2).max(1);
    let agglom = CoarseAgglom {
        coarse_n: COARSE_N,
        ranks: nranks,
        subset,
        layout: subset_layout(COARSE_N, nranks, subset),
        gather_msgs: 0,
        gather_bytes: 0,
        scatter_msgs: 0,
        scatter_bytes: 0,
        solve_flops: 0,
    };
    let local_coarse = vec![1.0f64; Layout::even(COARSE_N, nranks).local_n(rank)];
    let mut red = vec![rank as f64; 8];
    let mut scratch = Vec::new();
    for _ in 0..steps {
        // The straggler: rank r computes r units before every collective.
        busy(rank * 400);
        plan.execute(t, 1, 1.0)?;
        busy(rank * 400);
        red.truncate(8);
        all_reduce_sum(t, &mut red, &mut scratch)?;
        busy(rank * 400);
        agglom.execute(t, &local_coarse, |rows| {
            for x in rows.iter_mut() {
                *x *= 0.5;
            }
        })?;
    }
    gather_timeline(t)
}
