//! Fig. 4 — GMRES convergence of standard preconditioners vs ORAS on
//! time-harmonic Maxwell.
//!
//! Paper setting (§V-A): the complex-symmetric, indefinite curl–curl system
//! defeats ASM (overlap 1 and 2) and GAMG, while the optimized Schwarz
//! preconditioner `M⁻¹_ORAS` (eq. 6, impedance interface conditions)
//! converges. Same comparison here on the scaled-down chamber.

use kryst_bench::{rule, time};
use kryst_core::{gmres, OrthScheme, PrecondSide, SolveOpts};
use kryst_dense::DMat;
use kryst_par::PrecondOp;
use kryst_pde::maxwell::{antenna_ring_rhs, maxwell3d, MaxwellParams};
use kryst_precond::{Amg, AmgOpts, Schwarz, SchwarzOpts, SchwarzVariant, SmootherKind};
use kryst_scalar::C64;
use kryst_sparse::partition::partition_rcb;

fn run(
    label: &str,
    a: &kryst_sparse::Csr<C64>,
    pc: &dyn PrecondOp<C64>,
    b: &DMat<C64>,
    max_iters: usize,
) {
    let opts = SolveOpts {
        rtol: 1e-8,
        restart: 200,
        max_iters,
        side: PrecondSide::Right,
        orth: OrthScheme::Imgs,
        ..Default::default()
    };
    let mut x = DMat::<C64>::zeros(a.nrows(), b.ncols());
    let (res, secs) = time(|| gmres::solve(a, pc, b, &mut x, &opts));
    let status = if res.converged {
        "converged"
    } else {
        "NOT converged"
    };
    println!(
        "\n{label}: {} iterations, final rel. residual {:.3e}, {secs:.2}s ({status})",
        res.iterations,
        res.final_relres.iter().cloned().fold(0.0f64, f64::max)
    );
    kryst_bench::print_curve(label, &res.history);
}

fn main() {
    let nc = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let nsub = 8;
    println!("Fig. 4 — Maxwell preconditioner comparison, nc = {nc}, {nsub} subdomains");
    let params = MaxwellParams::chamber_hard(nc);
    let (prob, geom) = maxwell3d(&params);
    let n = prob.a.nrows();
    println!("n = {n} complex edge unknowns, ω = {}", params.omega);
    rule();
    let b = antenna_ring_rhs(&geom, &params, 1, 0.3, 0.5);
    let part = partition_rcb(&prob.coords, nsub);

    let oras = Schwarz::new(
        &prob.a,
        &part,
        &SchwarzOpts {
            variant: SchwarzVariant::Oras,
            overlap: 2,
            impedance: params.omega,
        },
    );
    run("M⁻¹_ORAS (eq. 6)", &prob.a, &oras, &b, 400);

    let asm1 = Schwarz::new(
        &prob.a,
        &part,
        &SchwarzOpts {
            variant: SchwarzVariant::Asm,
            overlap: 1,
            impedance: 0.0,
        },
    );
    run("ASM overlap 1", &prob.a, &asm1, &b, 400);

    let asm2 = Schwarz::new(
        &prob.a,
        &part,
        &SchwarzOpts {
            variant: SchwarzVariant::Asm,
            overlap: 2,
            impedance: 0.0,
        },
    );
    run("ASM overlap 2", &prob.a, &asm2, &b, 400);

    let amg = Amg::new(
        &prob.a,
        None,
        &AmgOpts {
            smoother: SmootherKind::Jacobi {
                omega: 0.6,
                iters: 2,
            },
            ..Default::default()
        },
    );
    run("GAMG", &prob.a, &amg, &b, 400);

    rule();
    println!(
        "Expected shape (paper Fig. 4): ORAS reaches 1e-8 in O(50–100) iterations;\n\
         ASM and GAMG stagnate or converge much more slowly on the indefinite system."
    );
}
