//! Fig. 6 — scalability of a sparse direct solver with multiple RHSs.
//!
//! Paper setting (§V-B3): a ~300k-unknown complex symmetric Maxwell system,
//! factored once with PARDISO, then solved with `p = 2⁰…2⁷` right-hand
//! sides on `P = 2⁰…2⁴` threads; efficiency
//! `E(P,p) = p·T(1,1) / (P·T(P,p))` becomes **superlinear** once enough
//! RHSs amortize the factor traffic, and multi-threading only pays at large
//! `p`. This binary reproduces the same sweep on the banded-LU direct
//! solver over a scaled-down Maxwell system.

use kryst_bench::{rule, time};
use kryst_dense::DMat;
use kryst_pde::maxwell::{maxwell3d, MaxwellParams};
use kryst_rt::rng::Rng64;
use kryst_scalar::{Complex, Scalar};
use kryst_sparse::SparseDirect;

fn main() {
    let nc = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    println!("Fig. 6 — multi-RHS direct-solver scaling, Maxwell nc = {nc}");
    let params = MaxwellParams::matching_solution(nc);
    let (prob, _geom) = maxwell3d(&params);
    let n = prob.a.nrows();
    let nnz_per_row = prob.a.nnz() as f64 / n as f64;
    println!("n = {n} complex unknowns, ≈{nnz_per_row:.0} nonzeros/row (paper: 300k, ≈83/row)");

    let (fac, tf) = time(|| SparseDirect::factor(&prob.a).expect("nonsingular"));
    println!(
        "factorization: {tf:.3}s, bandwidth {} after RCM",
        fac.bandwidth()
    );
    rule();

    let mut rng = Rng64::seed_from_u64(42);
    let max_p = 128usize;
    let rhs_full = DMat::from_fn(n, max_p, |_, _| {
        Complex::new(rng.gen_range(-1.0, 1.0), rng.gen_range(-1.0, 1.0))
    });

    let threads = [1usize, 2, 4, 8, 16];
    let ps = [1usize, 2, 4, 8, 16, 32, 64, 128];
    let mut t = vec![vec![0.0f64; ps.len()]; threads.len()];
    // Warm up caches with one solve.
    let _ = fac.solve_multi(&rhs_full.cols(0, 1), 8, 1);
    for (pi, &threads_n) in threads.iter().enumerate() {
        for (pj, &p) in ps.iter().enumerate() {
            let b = rhs_full.cols(0, p);
            // Average two runs, like the paper.
            let (_, t1) = time(|| {
                std::hint::black_box(fac.solve_multi(&b, 8, threads_n));
            });
            let (x, t2) = time(|| fac.solve_multi(&b, 8, threads_n));
            std::hint::black_box(&x);
            t[pi][pj] = 0.5 * (t1 + t2);
        }
    }

    println!("(b) time of the solution phase T(P,p) in seconds:");
    print!("{:>4}", "P\\p");
    for &p in &ps {
        print!("{p:>10}");
    }
    println!();
    for (pi, &pn) in threads.iter().enumerate() {
        print!("{pn:>4}");
        for tv in &t[pi] {
            print!("{tv:>10.4}");
        }
        println!();
    }

    rule();
    println!("(a) efficiency E(P,p) = p·T(1,1) / (P·T(P,p)) in percent:");
    let t11 = t[0][0];
    print!("{:>4}", "P\\p");
    for &p in &ps {
        print!("{p:>10}");
    }
    println!();
    for (pi, &pn) in threads.iter().enumerate() {
        print!("{pn:>4}");
        for (pj, &p) in ps.iter().enumerate() {
            let e = 100.0 * (p as f64) * t11 / ((pn as f64) * t[pi][pj]);
            print!("{e:>9.0}%");
        }
        println!();
    }
    rule();
    println!(
        "Expected shape (paper Fig. 6): single-thread efficiency grows with p\n\
         (superlinear once the factor is amortized over many RHS columns);\n\
         high thread counts are inefficient at p = 1–2 and recover at large p."
    );
    // Correctness spot-check: residual of the widest solve.
    let b = rhs_full.cols(0, 8);
    let x = fac.solve_multi(&b, 8, 1);
    let ax = prob.a.apply(&x);
    let mut worst = 0.0f64;
    for j in 0..8 {
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for i in 0..n {
            num += (ax[(i, j)] - b[(i, j)]).abs_sqr();
            den += b[(i, j)].abs_sqr();
        }
        worst = worst.max((num / den).sqrt());
    }
    println!("residual check (8 RHS): worst relative residual {worst:.3e}");
    assert!(worst < 1e-8);
}
