//! Fig. 8 — the eight alternatives for 32 right-hand sides.
//!
//! Paper setting (§V-C): the chamber with the plastic cylinder, 32 antenna
//! right-hand sides, ORAS preconditioner set up once. Alternatives:
//!
//! 1. 32 consecutive GMRES(50) solves (reference),
//! 2. 32 consecutive GCRO-DR(50,10) solves (recycling),
//! 3. one pseudo-BGMRES(50) solve with 32 RHSs,
//! 4. one BGMRES(50) solve with 32 RHSs,
//! 5. 4 consecutive pseudo-BGCRO-DR(50,10) solves with 8 RHSs,
//! 6. one pseudo-BGCRO-DR(50,10) solve with 32 RHSs,
//! 7. 4 consecutive BGCRO-DR(50,10) solves with 8 RHSs,
//! 8. one BGCRO-DR(50,10) solve with 32 RHSs.
//!
//! The paper's best time is 7) — recycling + moderate blocks — at 4.5×;
//! the numerically best is 8) (fewest iterations).

use kryst_bench::{maxwell_oras, rule, time, traced_opts};
use kryst_core::pseudo::{self, PseudoMethod};
use kryst_core::{gcrodr, gmres, OrthScheme, PrecondSide, SolveOpts, SolverContext};
use kryst_dense::DMat;
use kryst_pde::maxwell::{antenna_ring_rhs, MaxwellParams};
use kryst_scalar::{Scalar, C64};

struct Row {
    label: &'static str,
    p: usize,
    seconds: f64,
    total_iters: usize,
    per_rhs_iters: Option<usize>,
}

fn print_row(r: &Row, reference: f64) {
    let per = r
        .per_rhs_iters
        .map(|v| v.to_string())
        .unwrap_or_else(|| "-".into());
    println!(
        "{:<44} {:>3} {:>10.2} {:>8} {:>8} {:>8.1}",
        r.label,
        r.p,
        r.seconds,
        r.total_iters,
        per,
        reference / r.seconds
    );
}

fn main() {
    let nc = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let nrhs = 32usize;
    println!("Fig. 8 — eight alternatives for {nrhs} RHSs, Maxwell+cylinder, nc = {nc}");
    let params = MaxwellParams::with_cylinder(nc);
    let setup = maxwell_oras(params, 16, 2);
    let n = setup.problem.a.nrows();
    let a = &setup.problem.a;
    let pc = &setup.oras;
    println!(
        "n = {n} complex unknowns, ORAS setup (shared by all alternatives): {:.2}s",
        setup.setup_seconds
    );
    let rhs = antenna_ring_rhs(&setup.geom, &params, nrhs, 0.3, 0.55);
    let base = SolveOpts {
        rtol: 1e-8,
        restart: 50,
        recycle: 10,
        side: PrecondSide::Right,
        orth: OrthScheme::CholQr,
        max_iters: 5000,
        same_system: true,
        ..Default::default()
    };
    rule();
    println!(
        "{:<44} {:>3} {:>10} {:>8} {:>8} {:>8}",
        "alternative", "p", "solve(s)", "iters", "it/RHS", "speedup"
    );
    rule();
    let mut rows: Vec<Row> = Vec::new();

    // 1) 32× GMRES(50).
    let o1 = traced_opts(&base, "fig8_alt1_gmres");
    let (r1_iters, t1) = time(|| {
        let mut total = 0usize;
        for l in 0..nrhs {
            let b = DMat::from_col_major(n, 1, rhs.col(l).to_vec());
            let mut x = DMat::<C64>::zeros(n, 1);
            let res = gmres::solve(a, pc, &b, &mut x, &o1);
            if !res.converged {
                eprintln!(
                    "WARNING: GMRES RHS {l} did not reach rtol; worst rel res {:.2e}",
                    res.final_relres.iter().cloned().fold(0.0f64, f64::max)
                );
            }
            total += res.iterations;
        }
        total
    });
    rows.push(Row {
        label: "1) 32 consecutive GMRES(50)",
        p: 1,
        seconds: t1,
        total_iters: r1_iters,
        per_rhs_iters: Some(r1_iters / nrhs),
    });
    print_row(&rows[0], t1);

    // 2) 32× GCRO-DR(50,10).
    let o2 = traced_opts(&base, "fig8_alt2_gcrodr");
    let (r2_iters, t2) = time(|| {
        let mut ctx = SolverContext::<C64>::new();
        let mut total = 0usize;
        for l in 0..nrhs {
            let b = DMat::from_col_major(n, 1, rhs.col(l).to_vec());
            let mut x = DMat::<C64>::zeros(n, 1);
            let res = gcrodr::solve(a, pc, &b, &mut x, &o2, &mut ctx);
            if !res.converged {
                eprintln!(
                    "WARNING: GCRO-DR RHS {l} did not reach rtol; worst rel res {:.2e}",
                    res.final_relres.iter().cloned().fold(0.0f64, f64::max)
                );
            }
            total += res.iterations;
        }
        total
    });
    rows.push(Row {
        label: "2) 32 consecutive GCRO-DR(50,10)",
        p: 1,
        seconds: t2,
        total_iters: r2_iters,
        per_rhs_iters: Some(r2_iters / nrhs),
    });
    print_row(&rows[1], t1);

    // 3) pseudo-BGMRES(50), 32 RHSs.
    let o3 = traced_opts(&base, "fig8_alt3_pseudo_bgmres");
    let mut x3 = DMat::<C64>::zeros(n, nrhs);
    let (res3, t3) = time(|| pseudo::solve(a, pc, &rhs, &mut x3, &o3, PseudoMethod::Gmres, None));
    if !res3.converged {
        eprintln!(
            "WARNING: pseudo-BGMRES did not reach rtol; worst rel res {:.2e}",
            res3.per_rhs
                .iter()
                .flat_map(|r| r.final_relres.iter().cloned())
                .fold(0.0f64, f64::max)
        );
    }
    let it3 = res3.iterations;
    rows.push(Row {
        label: "3) 1 solve, pseudo-BGMRES(50), 32 RHSs",
        p: nrhs,
        seconds: t3,
        total_iters: it3,
        per_rhs_iters: None,
    });
    print_row(&rows[2], t1);

    // 4) BGMRES(50), 32 RHSs.
    let o4 = traced_opts(&base, "fig8_alt4_bgmres");
    let mut x4 = DMat::<C64>::zeros(n, nrhs);
    let (res4, t4) = time(|| gmres::solve(a, pc, &rhs, &mut x4, &o4));
    if !res4.converged {
        eprintln!(
            "WARNING: BGMRES did not reach rtol; worst rel res {:.2e}",
            res4.final_relres.iter().cloned().fold(0.0f64, f64::max)
        );
    }
    rows.push(Row {
        label: "4) 1 solve, BGMRES(50), 32 RHSs",
        p: nrhs,
        seconds: t4,
        total_iters: res4.iterations,
        per_rhs_iters: None,
    });
    print_row(&rows[3], t1);

    // 5) 4× pseudo-BGCRO-DR(50,10) with 8 RHSs.
    let o5 = traced_opts(&base, "fig8_alt5_pseudo_bgcrodr_x4");
    let (it5, t5) = time(|| {
        let mut ctxs: Vec<SolverContext<C64>> = Vec::new();
        let mut total = 0usize;
        for blk in 0..4 {
            let b = rhs.cols(blk * 8, 8);
            let mut x = DMat::<C64>::zeros(n, 8);
            let res = pseudo::solve(
                a,
                pc,
                &b,
                &mut x,
                &o5,
                PseudoMethod::GcroDr,
                Some(&mut ctxs),
            );
            if !res.converged {
                eprintln!(
                    "WARNING: pseudo-BGCRO-DR block {blk} did not reach rtol; worst rel res {:.2e}",
                    res.per_rhs
                        .iter()
                        .flat_map(|r| r.final_relres.iter().cloned())
                        .fold(0.0f64, f64::max)
                );
            }
            total += res.iterations;
        }
        total
    });
    rows.push(Row {
        label: "5) 4 consecutive pseudo-BGCRO-DR(50,10), 8 RHSs",
        p: 8,
        seconds: t5,
        total_iters: it5,
        per_rhs_iters: Some(it5 / 4),
    });
    print_row(&rows[4], t1);

    // 6) pseudo-BGCRO-DR(50,10), 32 RHSs.
    let o6 = traced_opts(&base, "fig8_alt6_pseudo_bgcrodr");
    let mut x6 = DMat::<C64>::zeros(n, nrhs);
    let (res6, t6) = time(|| pseudo::solve(a, pc, &rhs, &mut x6, &o6, PseudoMethod::GcroDr, None));
    if !res6.converged {
        eprintln!(
            "WARNING: pseudo-BGCRO-DR 32 did not reach rtol; worst rel res {:.2e}",
            res6.per_rhs
                .iter()
                .flat_map(|r| r.final_relres.iter().cloned())
                .fold(0.0f64, f64::max)
        );
    }
    rows.push(Row {
        label: "6) 1 solve, pseudo-BGCRO-DR(50,10), 32 RHSs",
        p: nrhs,
        seconds: t6,
        total_iters: res6.iterations,
        per_rhs_iters: None,
    });
    print_row(&rows[5], t1);

    // 7) 4× BGCRO-DR(50,10) with 8 RHSs.
    let o7 = traced_opts(&base, "fig8_alt7_bgcrodr_x4");
    let (it7, t7) = time(|| {
        let mut ctx = SolverContext::<C64>::new();
        let mut total = 0usize;
        for blk in 0..4 {
            let b = rhs.cols(blk * 8, 8);
            let mut x = DMat::<C64>::zeros(n, 8);
            let res = gcrodr::solve(a, pc, &b, &mut x, &o7, &mut ctx);
            if !res.converged {
                eprintln!(
                    "WARNING: BGCRO-DR block {blk} did not reach rtol; worst rel res {:.2e}",
                    res.final_relres.iter().cloned().fold(0.0f64, f64::max)
                );
            }
            total += res.iterations;
        }
        total
    });
    rows.push(Row {
        label: "7) 4 consecutive BGCRO-DR(50,10), 8 RHSs",
        p: 8,
        seconds: t7,
        total_iters: it7,
        per_rhs_iters: Some(it7 / 4),
    });
    print_row(&rows[6], t1);

    // 8) BGCRO-DR(50,10), 32 RHSs.
    let o8 = traced_opts(&base, "fig8_alt8_bgcrodr");
    let mut ctx8 = SolverContext::<C64>::new();
    let mut x8 = DMat::<C64>::zeros(n, nrhs);
    let (res8, t8) = time(|| gcrodr::solve(a, pc, &rhs, &mut x8, &o8, &mut ctx8));
    if !res8.converged {
        eprintln!(
            "WARNING: BGCRO-DR 32 did not reach rtol; worst rel res {:.2e}",
            res8.final_relres.iter().cloned().fold(0.0f64, f64::max)
        );
    }
    rows.push(Row {
        label: "8) 1 solve, BGCRO-DR(50,10), 32 RHSs",
        p: nrhs,
        seconds: t8,
        total_iters: res8.iterations,
        per_rhs_iters: None,
    });
    print_row(&rows[7], t1);

    rule();
    println!(
        "Expected shape (paper Fig. 8): every (pseudo-)block/recycled variant\n\
         beats 1); block methods divide iterations dramatically; the best\n\
         time mixes recycling and moderate blocks (alternative 7, 4.5×),\n\
         while 8) is numerically best (fewest iterations)."
    );
    // Residual verification for the block variants (spot check).
    let ax = a.apply(&x8);
    let mut worst = 0.0f64;
    for j in 0..nrhs {
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..n {
            num += (ax[(i, j)] - rhs[(i, j)]).abs_sqr();
            den += rhs[(i, j)].abs_sqr();
        }
        worst = worst.max((num / den).sqrt());
    }
    println!("verification: worst true relative residual of alternative 8: {worst:.3e}");
}
