//! kryst-prof — phase-attributed profile reports.
//!
//! Two modes, combinable:
//!
//! * `kryst_prof demo <dir>` — run two instrumented solves (GMRES(30)+ILU(0)
//!   and GCRO-DR(30,10)+ILU(0) on the Fig. 7 convection–diffusion problem)
//!   with the global profiler enabled, writing per-solve artifacts into
//!   `<dir>`: the JSONL event trace, the profiler snapshot
//!   (`<label>.profile.json`), the exact communication counters
//!   (`<label>.comm.json`), and a combined metrics snapshot
//!   (`metrics.json`) holding the per-rank imbalance gauges.
//! * `kryst_prof report <dir>` — consume those artifacts and print the
//!   paper-style per-phase breakdown: measured local wall time per phase
//!   (from the profiler), iterations (counted from the JSONL trace), and
//!   α–β–γ modeled comm/compute time at the paper's rank counts, plus a
//!   bytes-per-iteration table contrasting the assembled-`f64`, mixed-
//!   precision-preconditioner, and matrix-free operator configurations.
//!
//! With no mode argument it runs `demo` then `report` on
//! `target/kryst-prof` (or the directory given as the only argument).
//!
//! The demo honors `KRYST_PRECOND_F32=1`: the ILU(0) preconditioner of both
//! solves is then stored in compact single precision (`u32` indices + `f32`
//! values), so the profile grows a `precond_lp` phase.

use kryst_core::{gcrodr, gmres, OrthPath, SolveOpts, SolverContext};
use kryst_dense::DMat;
use kryst_obs::json::JsonValue;
use kryst_obs::{JsonlRecorder, MetricsRegistry, ProfileSnapshot, Profiler, Recorder};
use kryst_par::{
    calibration_table, comm_from_json, comm_to_json, per_rank_comm, phase_report,
    publish_imbalance, publish_wire, validation_table, Calibration, CommSnapshot, CommStats,
    CostModel, DistOp, HaloPlan, Layout, LinOp, PrecondOp, PrecondPrecision, SpmdWorld,
    TransportError, TransportKind, ValidationRow,
};
use kryst_pde::poisson::poisson2d;
use kryst_pde::stencil::PoissonStencil;
use kryst_precond::{Amg, AmgOpts, Ilu0};
use kryst_rt::rng::Rng64;
use kryst_sparse::{Coo, Csr};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const RANKS: [usize; 5] = [512, 1024, 2048, 4096, 8192];
const DEMO_RANKS: usize = 8;
/// Unknowns of the demo operator (`convdiff2d(32, …)`).
const DEMO_N: usize = 32 * 32;
/// Extrapolation target for the latency-hiding section: per-unknown local
/// work from the demo run scaled up to a paper-scale (Fig. 7) problem, so
/// the model answers "how much reduction latency would the lagged apply
/// hide at machine scale" rather than on the laptop-sized demo operator.
const PAPER_N: usize = 100_000_000;

/// The Fig. 7 benchmark operator: 2-D convection–diffusion, first-order
/// upwind convection (same builder as `tests/comm_model.rs`).
fn convdiff2d(nx: usize, eps: f64, bx: f64, by: f64) -> Csr<f64> {
    let n = nx * nx;
    let h = 1.0 / (nx as f64 + 1.0);
    let mut c = Coo::new(n, n);
    let idx = |i: usize, j: usize| i * nx + j;
    for i in 0..nx {
        for j in 0..nx {
            let row = idx(i, j);
            c.push(row, row, 4.0 * eps / (h * h) + (bx.abs() + by.abs()) / h);
            if i > 0 {
                c.push(row, idx(i - 1, j), -eps / (h * h) - bx.max(0.0) / h);
            }
            if i + 1 < nx {
                c.push(row, idx(i + 1, j), -eps / (h * h) + bx.min(0.0) / h);
            }
            if j > 0 {
                c.push(row, idx(i, j - 1), -eps / (h * h) - by.max(0.0) / h);
            }
            if j + 1 < nx {
                c.push(row, idx(i, j + 1), -eps / (h * h) + by.min(0.0) / h);
            }
        }
    }
    c.to_csr()
}

fn write_file(path: &Path, content: &str) {
    std::fs::write(path, content).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}

/// One row of the bytes-per-iteration table: operator bytes + preconditioner
/// bytes streamed by one `A·X` apply and one `M⁻¹` apply.
struct BytesRow {
    config: &'static str,
    op_b: usize,
    pc_b: usize,
}

/// Account the three memory-traffic configurations of the mixed-precision /
/// matrix-free PR on the 2-D Poisson model operator (which has both an
/// assembled and a stencil form), writing `bytes.json` for `report`.
fn bytes_table(dir: &Path) {
    let nx = 32;
    let prob = poisson2d::<f64>(nx, nx);
    let ilu_f64 = Ilu0::new(&prob.a).expect("ILU(0) on poisson");
    let ilu_f32 =
        Ilu0::with_precision(&prob.a, PrecondPrecision::Single).expect("f32 ILU(0) on poisson");
    let stencil = PoissonStencil::<f64>::dim2(nx, nx);
    let op_asm = LinOp::bytes_per_apply(&prob.a).expect("assembled operator bytes");
    let op_mf = LinOp::bytes_per_apply(&stencil).expect("stencil operator bytes");
    let pc_f64 = PrecondOp::<f64>::bytes_per_apply(&ilu_f64).expect("f64 ILU bytes");
    let pc_f32 = PrecondOp::<f64>::bytes_per_apply(&ilu_f32).expect("f32 ILU bytes");
    let rows = [
        BytesRow {
            config: "assembled-f64",
            op_b: op_asm,
            pc_b: pc_f64,
        },
        BytesRow {
            config: "assembled + f32 precond",
            op_b: op_asm,
            pc_b: pc_f32,
        },
        BytesRow {
            config: "matrix-free + f32 precond",
            op_b: op_mf,
            pc_b: pc_f32,
        },
    ];
    let json = JsonValue::obj(vec![
        ("problem", "poisson2d 32x32".into()),
        (
            "rows",
            JsonValue::Arr(
                rows.iter()
                    .map(|r| {
                        JsonValue::obj(vec![
                            ("config", r.config.into()),
                            ("op_b", r.op_b.into()),
                            ("pc_b", r.pc_b.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .to_json();
    write_file(&dir.join("bytes.json"), &json);
}

fn demo(dir: &Path) {
    std::fs::create_dir_all(dir).expect("create profile dir");
    let a = convdiff2d(32, 0.001, 1.0, 0.3);
    let n = a.nrows();
    // Default (env unset) stays the all-f64 golden path; KRYST_PRECOND_F32=1
    // switches both solves to the compact single-precision factors.
    let ilu = Ilu0::with_precision(&a, PrecondPrecision::from_env()).expect("ILU(0) on convdiff");
    let plan = HaloPlan::build(&a, &Layout::even(n, DEMO_RANKS));
    let reg = MetricsRegistry::global();
    reg.reset();
    let prof = Profiler::global();
    prof.set_enabled(true);

    let run = |label: &str, recycle: usize, ortho: OrthPath| {
        let stats = CommStats::new_shared();
        let dist = DistOp::new(a.clone(), DEMO_RANKS, Arc::clone(&stats));
        let trace = dir.join(format!("{label}.jsonl"));
        let rec = JsonlRecorder::create(&trace)
            .unwrap_or_else(|e| panic!("open {}: {e}", trace.display()));
        let opts = SolveOpts {
            rtol: 1e-8,
            restart: 30,
            recycle,
            max_iters: 5000,
            ortho,
            stats: Some(Arc::clone(&stats)),
            recorder: Some(Arc::new(rec) as Arc<dyn Recorder>),
            ..Default::default()
        };
        let mut rng = Rng64::seed_from_u64(42);
        let b = DMat::from_fn(n, 1, |_, _| rng.gen_range(-1.0, 1.0));
        prof.reset();
        let iters = if recycle > 0 {
            // Cold solve + warm recycled solve on a second RHS, so the
            // profile includes both recycle-space setup and refresh.
            let mut rng2 = Rng64::seed_from_u64(43);
            let b2 = DMat::from_fn(n, 1, |_, _| rng2.gen_range(-1.0, 1.0));
            let mut ctx = SolverContext::new();
            let mut x = DMat::zeros(n, 1);
            let r1 = gcrodr::solve(&dist, &ilu, &b, &mut x, &opts, &mut ctx);
            let mut x2 = DMat::zeros(n, 1);
            let r2 = gcrodr::solve(&dist, &ilu, &b2, &mut x2, &opts, &mut ctx);
            assert!(r1.converged && r2.converged, "{label} did not converge");
            r1.iterations + r2.iterations
        } else {
            let mut x = DMat::zeros(n, 1);
            let r = gmres::solve(&dist, &ilu, &b, &mut x, &opts);
            assert!(r.converged, "{label} did not converge");
            r.iterations
        };
        drop(opts); // flush the JSONL trace
        let snap = stats.snapshot();
        write_file(
            &dir.join(format!("{label}.profile.json")),
            &prof.snapshot().to_json(),
        );
        write_file(
            &dir.join(format!("{label}.comm.json")),
            &comm_to_json(&snap),
        );
        publish_imbalance(reg, label, &per_rank_comm(&plan, &snap, DEMO_RANKS));
        eprintln!("  [demo] {label}: {iters} iterations");
    };
    // Base labels honor the environment (`KRYST_FUSE` / `KRYST_PIPELINE`)
    // exactly as before; the suffixed variants pin the path so the report
    // can print classic-vs-fused-vs-pipelined curves from one demo run.
    run("gmres30_ilu0", 0, OrthPath::default());
    run("gmres30_ilu0_classic", 0, OrthPath::Classic);
    run("gmres30_ilu0_pipelined", 0, OrthPath::Pipelined);
    run("gcrodr30_10_ilu0", 10, OrthPath::default());
    run("gcrodr30_10_ilu0_pipelined", 10, OrthPath::Pipelined);
    amg_demo(dir, reg);
    transport_demo(dir, &a, reg);
    trace_demo(dir, reg);
    write_file(&dir.join("metrics.json"), &reg.snapshot_json());
    bytes_table(dir);
    eprintln!("  [demo] artifacts in {}", dir.display());
}

/// World size of the calibration/validation worlds — small enough that the
/// socket backend (real OS processes) spawns quickly in CI.
const CAL_RANKS: usize = 4;

/// The transport calibration + validation pass: measure the α–β–γ machine
/// constants on each backend ([`Calibration::measure`]), then replay the
/// demo's per-iteration communication pattern — one fused 30-double Gram
/// all-reduce and one halo exchange of the Fig. 7 operator — on the *live*
/// world and record the wall time next to what the freshly calibrated model
/// charges for the same pattern. Writes `calibration.json` for the report's
/// measured-vs-modeled table (acceptance: within 2× on the socket backend),
/// and publishes each world's per-rank wire counters as
/// `transport_{backend}_wire_*` gauges.
fn transport_demo(dir: &Path, a: &Csr<f64>, reg: &MetricsRegistry) {
    let plan = HaloPlan::build(a, &Layout::even(a.nrows(), CAL_RANKS));
    let mut cals: Vec<Calibration> = Vec::new();
    let mut rows: Vec<ValidationRow> = Vec::new();
    for kind in [TransportKind::Channel, TransportKind::Socket] {
        let world = match SpmdWorld::spawn(kind, CAL_RANKS) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("  [demo] {}: world unavailable, skipped: {e}", kind.name());
                continue;
            }
        };
        let mut pass = || -> Result<(), TransportError> {
            let cal = Calibration::measure(&world, 64)?;
            let model = CostModel::calibrated(&cal);

            let reps = 200;
            let ar_measured = world.all_reduce(30, reps)?.as_secs_f64() / reps as f64;
            let snap = CommSnapshot {
                reductions: 1,
                reduction_bytes: 30 * 8,
                ..Default::default()
            };
            let ar_modeled = model.time(&snap, CAL_RANKS).reduction;
            rows.push(ValidationRow {
                what: "allreduce(30)/iter".to_string(),
                backend: cal.backend.clone(),
                nranks: CAL_RANKS,
                measured_s: ar_measured,
                modeled_s: ar_modeled,
            });

            let halo_measured = world.halo(&plan, 1, reps)?.as_secs_f64() / reps as f64;
            let snap = CommSnapshot {
                p2p_messages: plan.messages_per_exchange as u64,
                p2p_bytes: plan.bytes_per_exchange(1, 8) as u64,
                ..Default::default()
            };
            let halo_modeled = model.time(&snap, CAL_RANKS).p2p;
            rows.push(ValidationRow {
                what: "halo(spmv)/iter".to_string(),
                backend: cal.backend.clone(),
                nranks: CAL_RANKS,
                measured_s: halo_measured,
                modeled_s: halo_modeled,
            });
            // The acceptance metric: total per-iteration communication (one
            // fused Gram reduction + one halo exchange, the fused-path
            // pattern of the demo solves), measured vs modeled.
            rows.push(ValidationRow {
                what: "comm/iter (total)".to_string(),
                backend: cal.backend.clone(),
                nranks: CAL_RANKS,
                measured_s: ar_measured + halo_measured,
                modeled_s: ar_modeled + halo_modeled,
            });
            cals.push(cal);
            Ok(())
        };
        let res = pass();
        let shut = world.shutdown();
        if let Err(e) = res {
            eprintln!("  [demo] {}: calibration failed: {e}", kind.name());
        }
        match shut {
            // Real measured per-rank wire counters (rank 0 first) from the
            // transport endpoints themselves, straight into the registry.
            Ok(wires) => publish_wire(reg, &format!("transport_{}", kind.name()), &wires),
            Err(e) => eprintln!("  [demo] {}: world shutdown failed: {e}", kind.name()),
        }
    }
    let json = JsonValue::obj(vec![
        (
            "calibrations",
            JsonValue::Arr(cals.iter().map(Calibration::to_json_value).collect()),
        ),
        (
            "validation",
            JsonValue::Arr(
                rows.iter()
                    .map(|r| {
                        JsonValue::obj(vec![
                            ("what", r.what.as_str().into()),
                            ("backend", r.backend.as_str().into()),
                            ("nranks", r.nranks.into()),
                            ("measured_s", r.measured_s.into()),
                            ("modeled_s", r.modeled_s.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .to_json();
    write_file(&dir.join("calibration.json"), &json);
    eprintln!(
        "  [demo] transport calibration: {} backend(s), {} validation rows",
        cals.len(),
        rows.len()
    );
}

/// The measured-imbalance section, demo side: run the traced skewed
/// workload ([`kryst_bench::tracedemo`]) on a small channel world, gather
/// the merged per-rank timeline, publish the wait-behind-slowest
/// attribution as `trace_*` registry gauges, and write `timeline.json` for
/// the report.
fn trace_demo(dir: &Path, reg: &MetricsRegistry) {
    let was = kryst_obs::trace_enabled();
    kryst_obs::set_trace_enabled(true);
    let res = kryst_par::run_spmd(TransportKind::Channel, CAL_RANKS, |t| {
        let tl = kryst_bench::tracedemo::skewed_workload(t, 12)?;
        Ok(tl.map(|tl| tl.encode()).unwrap_or_default())
    });
    kryst_obs::set_trace_enabled(was);
    match res {
        Ok(run) => match kryst_obs::Timeline::decode(&run.results[0]) {
            Some(tl) => {
                tl.imbalance().publish(reg, "trace");
                write_file(&dir.join("timeline.json"), &tl.to_json());
                let spans: usize = tl.streams.iter().map(|s| s.spans.len()).sum();
                eprintln!(
                    "  [demo] traced workload: {spans} spans over {} ranks",
                    tl.nranks
                );
            }
            None => eprintln!("  [demo] traced workload returned a malformed timeline"),
        },
        Err(e) => eprintln!("  [demo] traced workload failed, skipped: {e}"),
    }
}

/// The measured-imbalance section, report side: replay `timeline.json`.
fn report_trace(dir: &Path) {
    let Ok(text) = std::fs::read_to_string(dir.join("timeline.json")) else {
        return;
    };
    let Some(tl) = kryst_obs::Timeline::from_json(&text) else {
        eprintln!("  [report] unparseable timeline.json, skipped");
        return;
    };
    println!(
        "measured imbalance (gathered trace timeline, P = {}):",
        tl.nranks
    );
    print!("{}", kryst_obs::timeline::phase_table(&tl.phase_totals()));
    print!("{}", tl.imbalance().to_text());
    println!();
}

/// Render the `calibration.json` artifact written by [`transport_demo`]:
/// the assumed-vs-measured constants table and the measured-vs-modeled
/// replay validation.
fn report_transport(dir: &Path) {
    let Ok(text) = std::fs::read_to_string(dir.join("calibration.json")) else {
        return;
    };
    let Ok(v) = JsonValue::parse(&text) else {
        eprintln!("  [report] unparseable calibration.json, skipped");
        return;
    };
    let mut cals = Vec::new();
    for e in v
        .get("calibrations")
        .and_then(JsonValue::as_array)
        .unwrap_or(&[])
    {
        let (Some(backend), Some(nranks)) = (
            e.get("backend").and_then(JsonValue::as_str),
            e.get("nranks").and_then(JsonValue::as_usize),
        ) else {
            continue;
        };
        let f = |k: &str| e.get(k).and_then(JsonValue::as_f64);
        let (Some(alpha_msg), Some(alpha_reduce), Some(beta), Some(gamma)) =
            (f("alpha_msg"), f("alpha_reduce"), f("beta"), f("gamma"))
        else {
            continue;
        };
        cals.push(Calibration {
            backend: backend.to_string(),
            nranks,
            alpha_msg,
            alpha_reduce,
            beta,
            gamma,
        });
    }
    let mut rows = Vec::new();
    for e in v
        .get("validation")
        .and_then(JsonValue::as_array)
        .unwrap_or(&[])
    {
        let (Some(what), Some(backend), Some(nranks), Some(measured_s), Some(modeled_s)) = (
            e.get("what").and_then(JsonValue::as_str),
            e.get("backend").and_then(JsonValue::as_str),
            e.get("nranks").and_then(JsonValue::as_usize),
            e.get("measured_s").and_then(JsonValue::as_f64),
            e.get("modeled_s").and_then(JsonValue::as_f64),
        ) else {
            continue;
        };
        rows.push(ValidationRow {
            what: what.to_string(),
            backend: backend.to_string(),
            nranks,
            measured_s,
            modeled_s,
        });
    }
    if !cals.is_empty() {
        print!("{}", calibration_table(&CostModel::curie_like(), &cals));
        println!();
    }
    if !rows.is_empty() {
        print!("{}", validation_table(&rows));
        println!();
    }
}

/// AMG-preconditioned solve on a Poisson operator with a deliberately
/// *large* coarse level (capped coarsening — the GAMG situation the paper's
/// coarse-solve discussion targets): the redundant-serial coarse solve is
/// then a real constant term on the modeled critical path, and the
/// agglomeration model shows what gathering it onto a subset buys.
/// Exercises the `coarse_agglom` profiler phase and writes the
/// `coarse_agglom.json` redistribution model consumed by the report.
fn amg_demo(dir: &Path, reg: &MetricsRegistry) {
    let nx = 180;
    let prob = poisson2d::<f64>(nx, nx);
    let n = prob.a.nrows();
    // Two-level hierarchy with a ~5.4k-row coarse level (capped coarsening)
    // and a damped-Jacobi smoother (unconditionally contractive — the
    // Chebyshev interval estimate is unreliable at this operator size).
    let amg = Amg::new(
        &prob.a,
        prob.near_nullspace.as_ref(),
        &AmgOpts {
            coarse_size: 5500,
            agglom_threshold: 8192,
            smoother: kryst_precond::SmootherKind::Jacobi {
                omega: 0.67,
                iters: 2,
            },
            ..Default::default()
        },
    );
    let stats = CommStats::new_shared();
    let dist = DistOp::new(prob.a.clone(), DEMO_RANKS, Arc::clone(&stats));
    let label = "gmres30_amg";
    let trace = dir.join(format!("{label}.jsonl"));
    let rec =
        JsonlRecorder::create(&trace).unwrap_or_else(|e| panic!("open {}: {e}", trace.display()));
    let opts = SolveOpts {
        rtol: 1e-8,
        restart: 30,
        max_iters: 2000,
        stats: Some(Arc::clone(&stats)),
        recorder: Some(Arc::new(rec) as Arc<dyn Recorder>),
        ..Default::default()
    };
    let mut rng = Rng64::seed_from_u64(44);
    let b = DMat::from_fn(n, 1, |_, _| rng.gen_range(-1.0, 1.0));
    let prof = Profiler::global();
    prof.reset();
    let mut x = DMat::zeros(n, 1);
    let r = gmres::solve(&dist, &amg, &b, &mut x, &opts);
    assert!(r.converged, "{label} did not converge");
    drop(opts);
    write_file(
        &dir.join(format!("{label}.profile.json")),
        &prof.snapshot().to_json(),
    );
    write_file(
        &dir.join(format!("{label}.comm.json")),
        &comm_to_json(&stats.snapshot()),
    );
    let plan = HaloPlan::build(&prob.a, &Layout::even(n, DEMO_RANKS));
    publish_imbalance(
        reg,
        label,
        &per_rank_comm(&plan, &stats.snapshot(), DEMO_RANKS),
    );
    eprintln!("  [demo] {label}: {} iterations", r.iterations);
    // The redistribution model at each reported rank count.
    let rows: Vec<JsonValue> = RANKS
        .iter()
        .filter_map(|&p| amg.coarse_agglom(p))
        .map(|m| {
            JsonValue::obj(vec![
                ("ranks", m.ranks.into()),
                ("subset", m.subset.into()),
                ("gather_msgs", m.gather_msgs.into()),
                ("gather_bytes", m.gather_bytes.into()),
                ("scatter_msgs", m.scatter_msgs.into()),
                ("scatter_bytes", m.scatter_bytes.into()),
                ("solve_flops", m.solve_flops.into()),
            ])
        })
        .collect();
    let json = JsonValue::obj(vec![
        ("coarse_n", amg.coarse_n().into()),
        ("rows", JsonValue::Arr(rows)),
    ])
    .to_json();
    write_file(&dir.join("coarse_agglom.json"), &json);
}

/// Render the `bytes.json` table written by [`bytes_table`].
fn report_bytes(dir: &Path) {
    let Ok(text) = std::fs::read_to_string(dir.join("bytes.json")) else {
        return;
    };
    let Ok(v) = JsonValue::parse(&text) else {
        eprintln!("  [report] unparseable bytes.json, skipped");
        return;
    };
    let problem = v
        .get("problem")
        .and_then(JsonValue::as_str)
        .unwrap_or("?")
        .to_string();
    let Some(rows) = v.get("rows").and_then(JsonValue::as_array) else {
        return;
    };
    println!("bytes per iteration ({problem}, one A*X + one precond apply, p=1):");
    let mut baseline: Option<usize> = None;
    for row in rows {
        let (Some(config), Some(op_b), Some(pc_b)) = (
            row.get("config").and_then(JsonValue::as_str),
            row.get("op_b").and_then(JsonValue::as_usize),
            row.get("pc_b").and_then(JsonValue::as_usize),
        ) else {
            continue;
        };
        let total = op_b + pc_b;
        let base = *baseline.get_or_insert(total);
        println!(
            "  {config:<26} spmv {op_b:>9} B + precond {pc_b:>9} B = {total:>9} B  ({:.2}x less)",
            base as f64 / total as f64
        );
    }
    println!();
}

/// Render the `coarse_agglom.json` model written by [`amg_demo`]: the
/// modeled per-apply cost of the all-ranks-serial coarse solve (a constant
/// term that never scales) against the agglomerated subset solve plus its
/// gather/scatter redistribution.
fn report_coarse_agglom(dir: &Path, model: &CostModel) {
    let Ok(text) = std::fs::read_to_string(dir.join("coarse_agglom.json")) else {
        return;
    };
    let Ok(v) = JsonValue::parse(&text) else {
        eprintln!("  [report] unparseable coarse_agglom.json, skipped");
        return;
    };
    let coarse_n = v.get("coarse_n").and_then(JsonValue::as_usize).unwrap_or(0);
    let Some(rows) = v.get("rows").and_then(JsonValue::as_array) else {
        return;
    };
    println!("agglomerated coarse solve (modeled per V-cycle, coarse_n = {coarse_n}):");
    println!(
        "  {:>6} {:>7} {:>12} {:>12} {:>8}",
        "P", "subset", "serial_s", "agglom_s", "speedup"
    );
    for row in rows {
        let f = |k: &str| row.get(k).and_then(JsonValue::as_usize);
        let (Some(ranks), Some(subset), Some(gmsgs), Some(gbytes), Some(flops)) = (
            f("ranks"),
            f("subset"),
            f("gather_msgs"),
            f("gather_bytes"),
            f("solve_flops"),
        ) else {
            continue;
        };
        let subset_f = subset.max(1) as f64;
        // Serial baseline: every rank solves the whole coarse problem — a
        // P-independent term on the critical path.
        let serial = flops as f64 / model.gamma;
        // Agglomerated: gather fan-in per subset rank, subset solve, mirror
        // scatter. The redistribution is charged honestly, not for free.
        let redist =
            (gmsgs as f64 / subset_f) * model.alpha_msg + (gbytes as f64 / subset_f) / model.beta;
        let agglom = 2.0 * redist + flops as f64 / (model.gamma * subset_f);
        println!(
            "  {ranks:>6} {subset:>7} {serial:>12.3e} {agglom:>12.3e} {:>7.2}x",
            serial / agglom
        );
    }
    println!();
}

/// The latency-hiding section: per-iteration *exposed* reduction time for
/// each orthogonalization path, with the local work extrapolated from the
/// demo problem to [`PAPER_N`] unknowns (reduction counts per iteration are
/// problem-size independent; the compute that hides them is not).
fn report_latency_hiding(dir: &Path, model: &CostModel) {
    let load = |label: &str| -> Option<(CommSnapshot, usize)> {
        let comm = std::fs::read_to_string(dir.join(format!("{label}.comm.json")))
            .ok()
            .and_then(|t| comm_from_json(&t))?;
        let iters = iterations_in_trace(&dir.join(format!("{label}.jsonl")));
        (iters > 0).then_some((comm, iters))
    };
    let scale = (PAPER_N / DEMO_N).max(1) as u64;
    let scaled = |s: &CommSnapshot| CommSnapshot {
        flops: s.flops.saturating_mul(scale),
        overlap_flops: s.overlap_flops.saturating_mul(scale),
        reduction_overlap_flops: s.reduction_overlap_flops.saturating_mul(scale),
        ..*s
    };
    for base in ["gmres30_ilu0", "gcrodr30_10_ilu0"] {
        let Some((pipe, pipe_iters)) = load(&format!("{base}_pipelined")) else {
            continue;
        };
        let Some((fused, fused_iters)) = load(base) else {
            continue;
        };
        let classic = load(&format!("{base}_classic"));
        println!(
            "latency hiding, {base} (exposed reduction per iteration, \
             local work extrapolated to N = {PAPER_N}):"
        );
        println!(
            "  {:>6} {:>13} {:>13} {:>13} {:>13} {:>8}",
            "P", "classic_s", "fused_s", "pipelined_s", "hidden_s", "cut"
        );
        let mut cut_at_max = 0.0;
        for &p in &RANKS {
            let tf = model.time(&scaled(&fused), p);
            let tp = model.time(&scaled(&pipe), p);
            let red_f = tf.reduction / fused_iters as f64;
            let red_p = tp.reduction / pipe_iters as f64;
            let hidden = tp.reduction_hidden / pipe_iters as f64;
            let classic_s = classic
                .as_ref()
                .map(|(c, ci)| {
                    format!(
                        "{:>13.3e}",
                        model.time(&scaled(c), p).reduction / *ci as f64
                    )
                })
                .unwrap_or_else(|| format!("{:>13}", "-"));
            let cut = red_f / red_p.max(f64::MIN_POSITIVE);
            cut_at_max = cut;
            println!(
                "  {p:>6} {classic_s} {red_f:>13.3e} {red_p:>13.3e} {hidden:>13.3e} {cut:>7.2}x"
            );
        }
        println!(
            "  exposed reduction cut at P={}: {cut_at_max:.2}x vs fused",
            RANKS[RANKS.len() - 1]
        );
        println!();
    }
}

/// Count iteration events in a JSONL trace.
fn iterations_in_trace(path: &Path) -> usize {
    let Ok(text) = std::fs::read_to_string(path) else {
        return 0;
    };
    text.lines()
        .filter(|line| {
            JsonValue::parse(line)
                .ok()
                .and_then(|v| v.get("type").and_then(|t| t.as_str().map(str::to_string)))
                .as_deref()
                == Some("iteration")
        })
        .count()
}

fn report(dir: &Path) -> bool {
    let mut labels: Vec<String> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            e.file_name()
                .to_str()
                .and_then(|n| n.strip_suffix(".profile.json").map(str::to_string))
        })
        .collect();
    labels.sort();
    let model = CostModel::curie_like();
    let mut any_phase = false;
    for label in &labels {
        let text = std::fs::read_to_string(dir.join(format!("{label}.profile.json")))
            .expect("read profile snapshot");
        let Some(prof) = ProfileSnapshot::from_json(&text) else {
            eprintln!("  [report] {label}: unparseable profile snapshot, skipped");
            continue;
        };
        let comm = std::fs::read_to_string(dir.join(format!("{label}.comm.json")))
            .ok()
            .and_then(|t| comm_from_json(&t))
            .unwrap_or_default();
        let iters = iterations_in_trace(&dir.join(format!("{label}.jsonl")));
        let rep = phase_report(label, &prof, &comm, &model, &RANKS, iters);
        any_phase |= !rep.measured.is_empty();
        print!("{}", rep.to_text());
        println!();
    }
    report_latency_hiding(dir, &model);
    report_coarse_agglom(dir, &model);
    report_transport(dir);
    report_trace(dir);
    report_bytes(dir);
    let metrics = dir.join("metrics.json");
    if let Ok(text) = std::fs::read_to_string(&metrics) {
        println!("metrics snapshot ({}):", metrics.display());
        println!("{text}");
    }
    any_phase
}

fn main() {
    // Socket worlds re-exec this binary as workers; hand those invocations
    // to the primitive loop before any argument parsing.
    kryst_par::maybe_primitive_worker();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (do_demo, do_report, dir) = match args.first().map(String::as_str) {
        Some("demo") => (true, false, args.get(1).cloned()),
        Some("report") => (false, true, args.get(1).cloned()),
        Some(d) => (true, true, Some(d.to_string())),
        None => (true, true, None),
    };
    let dir = PathBuf::from(dir.unwrap_or_else(|| "target/kryst-prof".to_string()));
    if do_demo {
        demo(&dir);
    }
    if do_report && !report(&dir) {
        eprintln!("kryst_prof: no phases recorded under {}", dir.display());
        std::process::exit(1);
    }
}
