//! Measure the α–β–γ machine constants on real transports.
//!
//! Usage: `kryst_calibrate [P] [--backend channel|socket|both] [--reps N]
//! [--json <path>]`
//!
//! Spawns an [`SpmdWorld`](kryst_par::SpmdWorld) per requested backend at
//! world size `P` (default 4), runs the ping-pong / all-reduce
//! microbenchmarks of [`kryst_par::Calibration`], and prints the
//! measured-constants table next to the assumed Curie-like defaults. With
//! `--json <path>` it also appends one JSON line per calibration (the
//! format `Calibration::from_json` reads back).
//!
//! This binary doubles as the *worker executable* for socket worlds: the
//! first line of `main` hands control to the primitive-worker loop whenever
//! `KRYST_SPMD_MODE=primitive` is set, which is how test binaries (which
//! cannot host the pre-libtest hook) borrow it via
//! `env!("CARGO_BIN_EXE_kryst_calibrate")`.

use kryst_par::{calibration_table, Calibration, CostModel, SpmdWorld, TransportKind};
use std::process::ExitCode;

fn main() -> ExitCode {
    kryst_par::maybe_primitive_worker();

    let mut nranks = 4usize;
    let mut reps = 64usize;
    let mut backends = vec![TransportKind::Channel, TransportKind::Socket];
    let mut json_path: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--backend" => {
                i += 1;
                backends = match args.get(i).map(String::as_str) {
                    Some("channel") => vec![TransportKind::Channel],
                    Some("socket") => vec![TransportKind::Socket],
                    Some("both") => vec![TransportKind::Channel, TransportKind::Socket],
                    other => {
                        eprintln!("--backend must be channel|socket|both, got {other:?}");
                        return ExitCode::from(2);
                    }
                };
            }
            "--reps" => {
                i += 1;
                reps = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(r) => r,
                    None => {
                        eprintln!("--reps needs a positive integer");
                        return ExitCode::from(2);
                    }
                };
            }
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(p) => json_path = Some(p.clone()),
                    None => {
                        eprintln!("--json needs a path");
                        return ExitCode::from(2);
                    }
                }
            }
            s => match s.parse() {
                Ok(p) if p >= 2 => nranks = p,
                _ => {
                    eprintln!(
                        "usage: kryst_calibrate [P>=2] [--backend channel|socket|both] \
                         [--reps N] [--json <path>]"
                    );
                    return ExitCode::from(2);
                }
            },
        }
        i += 1;
    }

    let mut cals = Vec::new();
    for kind in backends {
        let world = match SpmdWorld::spawn(kind, nranks) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("{}: world spawn failed: {e}", kind.name());
                return ExitCode::from(1);
            }
        };
        let cal = match Calibration::measure(&world, reps) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{}: calibration failed: {e}", kind.name());
                return ExitCode::from(1);
            }
        };
        if let Err(e) = world.shutdown() {
            eprintln!("{}: world shutdown failed: {e}", kind.name());
            return ExitCode::from(1);
        }
        cals.push(cal);
    }

    print!("{}", calibration_table(&CostModel::curie_like(), &cals));
    if let Some(path) = json_path {
        let mut doc = String::new();
        for c in &cals {
            doc.push_str(&c.to_json());
            doc.push('\n');
        }
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(1);
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
