//! kryst-trace — cross-rank trace timelines: record, replay, validate.
//!
//! Three subcommands:
//!
//! * `kryst_trace run [--ranks N] [--backend channel|socket] [--steps S]
//!   [--out <timeline.json>]` — run the skewed demo workload (rank-
//!   proportional busy work in front of every halo exchange, butterfly
//!   all-reduce, and agglomerated coarse round trip) with tracing enabled,
//!   gather the per-rank span streams onto rank 0 over the transport's
//!   control plane, and print the merged-timeline report. With `--out` the
//!   timeline is also written as JSON for later `report` runs; with
//!   `KRYST_TRACE_TIMELINE=<path>` a Chrome-trace/Perfetto view is exported
//!   as a side effect of the gather.
//! * `kryst_trace report <timeline.json> [--calibration <cal.json>]` —
//!   replay a gathered timeline: the paper-style per-phase table per rank,
//!   the wait-behind-slowest imbalance summary, and the skew table
//!   decomposing each exposed reduction into "slowest rank compute" vs
//!   "wire" (using the measured α/β constants when a `kryst_calibrate
//!   --json` line is given, Curie-like defaults otherwise).
//! * `kryst_trace validate <chrome.json> --ranks N` — structural check of an
//!   exported Chrome trace: parses, has exactly one thread-name track per
//!   rank, and contains flow links between matching collective spans. Exits
//!   non-zero on any violation (the CI trace-smoke leg).

use kryst_bench::tracedemo::skewed_workload;
use kryst_obs::json::JsonValue;
use kryst_obs::timeline::{phase_table, skew_table, Timeline};
use kryst_par::{run_spmd, Calibration, CostModel, TransportKind};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: kryst_trace run [--ranks N] [--backend channel|socket] [--steps S] [--out <path>]\n\
         \u{20}      kryst_trace report <timeline.json> [--calibration <cal.json>]\n\
         \u{20}      kryst_trace validate <chrome.json> --ranks N"
    );
    ExitCode::from(2)
}

/// The merged-timeline report shared by `run` and `report`.
fn print_timeline(tl: &Timeline, cal: Option<&Calibration>) {
    let spans: usize = tl.streams.iter().map(|s| s.spans.len()).sum();
    println!(
        "merged timeline: {} ranks, {} streams, {} spans",
        tl.nranks,
        tl.streams.len(),
        spans
    );
    if !tl.missing.is_empty() {
        println!("partial timeline — missing ranks: {:?}", tl.missing);
    }
    println!("\nper-rank phase totals:");
    print!("{}", phase_table(&tl.phase_totals()));
    println!("\nimbalance (wait behind slowest):");
    print!("{}", tl.imbalance().to_text());
    let (alpha_reduce, beta, origin) = match cal {
        Some(c) => (c.alpha_reduce, c.beta, format!("measured on {}", c.backend)),
        None => {
            let m = CostModel::curie_like();
            (m.alpha_reduce, m.beta, "assumed Curie-like".to_string())
        }
    };
    let rows = tl.skew(alpha_reduce, beta);
    if !rows.is_empty() {
        println!("\nexposed-reduction skew ({origin} constants):");
        print!("{}", skew_table(&rows));
    }
}

fn run(args: &[String]) -> ExitCode {
    let mut nranks = 4usize;
    let mut steps = 20usize;
    let mut kind = TransportKind::Channel;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--ranks" => {
                i += 1;
                nranks = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(p) if p >= 1 => p,
                    _ => return usage(),
                };
            }
            "--steps" => {
                i += 1;
                steps = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) if s >= 1 => s,
                    _ => return usage(),
                };
            }
            "--backend" => {
                i += 1;
                kind = match args.get(i).map(String::as_str) {
                    Some("channel") => TransportKind::Channel,
                    Some("socket") => TransportKind::Socket,
                    _ => return usage(),
                };
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out = Some(p.clone()),
                    None => return usage(),
                }
            }
            _ => return usage(),
        }
        i += 1;
    }
    kryst_obs::set_trace_enabled(true);
    let res = run_spmd(kind, nranks, |t| {
        let tl = skewed_workload(t, steps)?;
        Ok(tl.map(|tl| tl.encode()).unwrap_or_default())
    });
    let run = match res {
        Ok(r) => r,
        Err(e) => {
            eprintln!("kryst_trace: workload failed: {e}");
            return ExitCode::from(1);
        }
    };
    let Some(tl) = Timeline::decode(&run.results[0]) else {
        eprintln!("kryst_trace: rank 0 returned a malformed timeline frame");
        return ExitCode::from(1);
    };
    println!(
        "workload: {} backend, P = {nranks}, {steps} steps, {} wire messages",
        kind.name(),
        run.messages
    );
    print_timeline(&tl, None);
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, tl.to_json()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(1);
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn report(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let mut cal = None;
    if args.get(1).map(String::as_str) == Some("--calibration") {
        let Some(cpath) = args.get(2) else {
            return usage();
        };
        let Ok(text) = std::fs::read_to_string(cpath) else {
            eprintln!("cannot read {cpath}");
            return ExitCode::from(1);
        };
        // `kryst_calibrate --json` writes one calibration per line; use the
        // first that parses.
        cal = text.lines().find_map(Calibration::from_json);
        if cal.is_none() {
            eprintln!("no parseable calibration in {cpath}");
            return ExitCode::from(1);
        }
    }
    let Ok(text) = std::fs::read_to_string(path) else {
        eprintln!("cannot read {path}");
        return ExitCode::from(1);
    };
    let Some(tl) = Timeline::from_json(&text) else {
        eprintln!("{path}: not a gathered-timeline JSON document");
        return ExitCode::from(1);
    };
    print_timeline(&tl, cal.as_ref());
    ExitCode::SUCCESS
}

fn validate(args: &[String]) -> ExitCode {
    let (Some(path), Some(flag), Some(n)) = (args.first(), args.get(1), args.get(2)) else {
        return usage();
    };
    if flag != "--ranks" {
        return usage();
    }
    let Ok(nranks): Result<usize, _> = n.parse() else {
        return usage();
    };
    let Ok(text) = std::fs::read_to_string(path) else {
        eprintln!("cannot read {path}");
        return ExitCode::from(1);
    };
    let v = match JsonValue::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{path}: not valid JSON: {e}");
            return ExitCode::from(1);
        }
    };
    let Some(events) = v.get("traceEvents").and_then(JsonValue::as_array) else {
        eprintln!("{path}: no traceEvents array");
        return ExitCode::from(1);
    };
    let ph = |e: &JsonValue| e.get("ph").and_then(JsonValue::as_str).map(str::to_string);
    let tracks = events
        .iter()
        .filter(|e| {
            ph(e).as_deref() == Some("M")
                && e.get("name").and_then(JsonValue::as_str) == Some("thread_name")
        })
        .count();
    let slices = events
        .iter()
        .filter(|e| ph(e).as_deref() == Some("X"))
        .count();
    let flows = events
        .iter()
        .filter(|e| ph(e).as_deref() == Some("s"))
        .count();
    let binds = events
        .iter()
        .filter(|e| ph(e).as_deref() == Some("f"))
        .count();
    println!("{path}: {tracks} tracks, {slices} slices, {flows} flow starts, {binds} flow binds");
    if tracks != nranks {
        eprintln!("expected one thread-name track per rank ({nranks}), found {tracks}");
        return ExitCode::from(1);
    }
    if slices == 0 {
        eprintln!("no complete ('X') span events");
        return ExitCode::from(1);
    }
    if flows == 0 || binds == 0 {
        eprintln!("no flow links between collective spans");
        return ExitCode::from(1);
    }
    println!("ok");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    // Socket worlds re-exec this binary as workers; hand those invocations
    // to the primitive loop before any argument parsing.
    kryst_par::maybe_primitive_worker();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("report") => report(&args[1..]),
        Some("validate") => validate(&args[1..]),
        _ => usage(),
    }
}
