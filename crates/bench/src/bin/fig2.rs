//! Fig. 2 — Poisson's equation, FGCRO-DR(30,10) vs FGMRES(30).
//!
//! Paper setting (§IV-B): 2-D Poisson, four successive right-hand sides
//! (ν = 0.1, 10, 0.001, 100), GAMG preconditioner with an inner GMRES
//! smoother (which makes the cycle nonlinear ⇒ flexible solvers), operator
//! and preconditioner assembled once (`same_system`). Two settings:
//!
//! * (a/b) robust: strength threshold 0.0, GMRES(3) smoother,
//! * (c/d) cheaper: higher threshold, GMRES(1) smoother.
//!
//! The paper ran 283M unknowns on 8,192 cores; this binary runs the same
//! algorithm on a laptop-scale grid — the comparison (recycling gains per
//! RHS, cumulative gain, convergence curves) is what the figure shows.

use kryst_bench::{print_curve, rhs_row, rule, time, traced_opts};
use kryst_core::{gcrodr, gmres, PrecondSide, SolveOpts, SolverContext};
use kryst_dense::DMat;
use kryst_pde::poisson::{paper_rhs_sequence, poisson2d, PAPER_NUS};
use kryst_precond::{Amg, AmgOpts, SmootherKind};

fn run_setting(title: &str, tag: &str, nx: usize, threshold: f64, smoother_iters: usize) {
    rule();
    println!("{title}");
    rule();
    let prob = poisson2d::<f64>(nx, nx);
    let n = prob.a.nrows();
    let rhss = paper_rhs_sequence::<f64>(nx, nx);
    let (amg, setup) = time(|| {
        Amg::new(
            &prob.a,
            prob.near_nullspace.as_ref(),
            &AmgOpts {
                threshold,
                smoother: SmootherKind::Gmres {
                    iters: smoother_iters,
                },
                ..Default::default()
            },
        )
    });
    println!(
        "n = {n}, AMG setup {setup:.3}s, {} levels, operator complexity {:.2}",
        amg.nlevels(),
        amg.operator_complexity()
    );
    let opts = SolveOpts {
        rtol: 1e-8,
        restart: 30,
        recycle: 10,
        side: PrecondSide::Flexible,
        same_system: true,
        ..Default::default()
    };

    // FGMRES(30) baseline.
    let fg_opts = traced_opts(&opts, &format!("{tag}_fgmres"));
    println!("\nFGMRES(30):");
    println!(
        "{:>4} {:>8} {:>12} {:>10}",
        "RHS", "iters", "seconds", "gain"
    );
    let mut fg_times = Vec::new();
    let mut fg_total_iters = 0;
    let mut fg_hist = Vec::new();
    for (i, rhs) in rhss.iter().enumerate() {
        let b = DMat::from_col_major(n, 1, rhs.clone());
        let mut x = DMat::zeros(n, 1);
        let (res, secs) = time(|| gmres::solve(&prob.a, &amg, &b, &mut x, &fg_opts));
        assert!(
            res.converged,
            "FGMRES diverged on RHS {i} (ν = {})",
            PAPER_NUS[i]
        );
        rhs_row(i + 1, res.iterations, secs, None);
        fg_times.push(secs);
        fg_total_iters += res.iterations;
        fg_hist.extend(res.history);
    }

    // FGCRO-DR(30,10) with recycling across the sequence.
    let gc_opts = traced_opts(&opts, &format!("{tag}_fgcrodr"));
    println!("\nFGCRO-DR(30,10), -hpddm_recycle_same_system:");
    println!(
        "{:>4} {:>8} {:>12} {:>10}",
        "RHS", "iters", "seconds", "gain"
    );
    let mut ctx = SolverContext::new();
    let mut gc_times = Vec::new();
    let mut gc_total_iters = 0;
    let mut gc_hist = Vec::new();
    for (i, rhs) in rhss.iter().enumerate() {
        let b = DMat::from_col_major(n, 1, rhs.clone());
        let mut x = DMat::zeros(n, 1);
        let (res, secs) = time(|| gcrodr::solve(&prob.a, &amg, &b, &mut x, &gc_opts, &mut ctx));
        assert!(res.converged, "FGCRO-DR diverged on RHS {i}");
        rhs_row(i + 1, res.iterations, secs, Some(fg_times[i]));
        gc_times.push(secs);
        gc_total_iters += res.iterations;
        gc_hist.extend(res.history);
    }
    let cum_fg: f64 = fg_times.iter().sum();
    let cum_gc: f64 = gc_times.iter().sum();
    println!(
        "\ntotal iterations: FGMRES {fg_total_iters}, FGCRO-DR {gc_total_iters} \
         (paper: 124 vs 90 / 172 vs 137)"
    );
    println!(
        "cumulative time: FGMRES {cum_fg:.3}s, FGCRO-DR {cum_gc:.3}s, \
         cumulative gain {:+.1}% (paper: +30.5% / +18.5%)",
        (cum_fg / cum_gc - 1.0) * 100.0
    );
    print_curve("FGMRES", &fg_hist);
    print_curve("FGCRO-DR", &gc_hist);
}

/// The artifact-description smoke test regime: a weak (Jacobi)
/// preconditioner, where the preconditioned spectrum retains the slow
/// modes recycling deflates — the regime of the artifact's expected output
/// (288 GMRES vs 147 GCRO-DR iterations).
fn run_relaxed(nx: usize) {
    rule();
    println!("Artifact smoke-test regime — relaxed (Jacobi) preconditioner, rtol 1e-6");
    rule();
    let prob = poisson2d::<f64>(nx, nx);
    let n = prob.a.nrows();
    let rhss = paper_rhs_sequence::<f64>(nx, nx);
    let jac = kryst_precond::Jacobi::new(&prob.a, 1.0);
    let opts = SolveOpts {
        rtol: 1e-6,
        restart: 30,
        recycle: 10,
        same_system: true,
        max_iters: 20000,
        ..Default::default()
    };
    let g_opts = traced_opts(&opts, "fig2_relaxed_gmres");
    println!("\nGMRES(30):");
    println!(
        "{:>4} {:>8} {:>12} {:>10}",
        "RHS", "iters", "seconds", "gain"
    );
    let mut g_times = Vec::new();
    let mut g_iters = 0;
    for (i, rhs) in rhss.iter().enumerate() {
        let b = DMat::from_col_major(n, 1, rhs.clone());
        let mut x = DMat::zeros(n, 1);
        let (res, secs) = time(|| gmres::solve(&prob.a, &jac, &b, &mut x, &g_opts));
        assert!(res.converged);
        rhs_row(i + 1, res.iterations, secs, None);
        g_times.push(secs);
        g_iters += res.iterations;
    }
    let r_opts = traced_opts(&opts, "fig2_relaxed_gcrodr");
    println!("\nGCRO-DR(30,10), -hpddm_recycle_same_system:");
    println!(
        "{:>4} {:>8} {:>12} {:>10}",
        "RHS", "iters", "seconds", "gain"
    );
    let mut ctx = SolverContext::new();
    let mut r_times = Vec::new();
    let mut r_iters = 0;
    for (i, rhs) in rhss.iter().enumerate() {
        let b = DMat::from_col_major(n, 1, rhs.clone());
        let mut x = DMat::zeros(n, 1);
        let (res, secs) = time(|| gcrodr::solve(&prob.a, &jac, &b, &mut x, &r_opts, &mut ctx));
        assert!(res.converged);
        rhs_row(i + 1, res.iterations, secs, Some(g_times[i]));
        r_times.push(secs);
        r_iters += res.iterations;
    }
    let cg: f64 = g_times.iter().sum();
    let cr: f64 = r_times.iter().sum();
    println!("\ntotal iterations: GMRES {g_iters}, GCRO-DR {r_iters} (artifact: 288 vs 147)");
    println!("cumulative gain {:+.1}%", (cg / cr - 1.0) * 100.0);
}

fn main() {
    let nx = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    println!("Fig. 2 — Poisson, FGCRO-DR(30,10) vs FGMRES(30), grid {nx}×{nx}");
    run_setting(
        "Fig. 2a/2b — robust GAMG (threshold 0.0, GMRES(3) smoother)",
        "fig2_robust",
        nx,
        0.0,
        3,
    );
    run_setting(
        "Fig. 2c/2d — cheaper GAMG (threshold 0.08, GMRES(1) smoother)",
        "fig2_cheap",
        nx,
        0.08,
        1,
    );
    run_relaxed(nx / 2);
}
