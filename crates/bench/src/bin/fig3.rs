//! Fig. 3 — 3-D linear elasticity, four *varying* systems.
//!
//! Paper setting (§IV-C): Q1 elasticity on the unit cube, four systems with
//! a moving spherical inclusion, GAMG with the 6 rigid-body modes.
//!
//! * (a/b): CG(4) smoother ⇒ nonlinear cycles ⇒ **FGCRO-DR vs FGMRES**
//!   (+36.0% cumulative in the paper),
//! * (c/d): Chebyshev smoother ⇒ linear cycles ⇒ **GCRO-DR vs LGMRES**,
//!   right preconditioning (269 vs 173 iterations in the paper).
//!
//! Because the operator changes between systems, GCRO-DR runs the full
//! refresh path (Fig. 1 lines 3–7 and 31–38) — the generalized eigenproblem
//! with strategy A, as the artifact's command lines do.

use kryst_bench::{print_curve, rhs_row, rule, time, traced_opts};
use kryst_core::{gcrodr, gmres, lgmres, PrecondSide, RecycleStrategy, SolveOpts, SolverContext};
use kryst_dense::DMat;
use kryst_pde::elasticity::paper_sequence;
use kryst_precond::{Amg, AmgOpts, SmootherKind};

fn main() {
    let ne = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    println!("Fig. 3 — linear elasticity, 4 varying systems, ne = {ne}");
    let systems = paper_sequence::<f64>(ne);
    let n = systems[0].problem.a.nrows();
    println!("n = {n} dofs, 6 rigid-body near-nullspace vectors");

    // ---- (a/b): flexible preconditioning, CG(4) smoother. ----------------
    rule();
    println!("Fig. 3a/3b — FGCRO-DR(30,10) vs FGMRES(30), CG(4) smoother");
    rule();
    let flex_opts = SolveOpts {
        rtol: 1e-8,
        restart: 30,
        recycle: 10,
        side: PrecondSide::Flexible,
        recycle_strategy: RecycleStrategy::A,
        same_system: false,
        ..Default::default()
    };
    let amg_opts = AmgOpts {
        smoother: SmootherKind::Cg { iters: 4 },
        ..Default::default()
    };

    let fg_opts = traced_opts(&flex_opts, "fig3_fgmres");
    let mut fg_times = Vec::new();
    let mut fg_iters = 0;
    let mut fg_hist = Vec::new();
    println!("\nFGMRES(30):");
    println!(
        "{:>4} {:>8} {:>12} {:>10}",
        "sys", "iters", "seconds", "gain"
    );
    for (i, sys) in systems.iter().enumerate() {
        let (amg, setup) = time(|| {
            Amg::new(
                &sys.problem.a,
                sys.problem.near_nullspace.as_ref(),
                &amg_opts,
            )
        });
        let b = DMat::from_col_major(n, 1, sys.rhs.clone());
        let mut x = DMat::zeros(n, 1);
        let (res, secs) = time(|| gmres::solve(&sys.problem.a, &amg, &b, &mut x, &fg_opts));
        assert!(res.converged, "FGMRES failed on system {i}");
        rhs_row(i + 1, res.iterations, secs, None);
        println!("     (AMG setup {setup:.3}s)");
        fg_times.push(secs);
        fg_iters += res.iterations;
        fg_hist.extend(res.history);
    }

    let gc_opts = traced_opts(&flex_opts, "fig3_fgcrodr");
    let mut ctx = SolverContext::new();
    let mut gc_times = Vec::new();
    let mut gc_iters = 0;
    let mut gc_hist = Vec::new();
    println!("\nFGCRO-DR(30,10), recycle strategy A:");
    println!(
        "{:>4} {:>8} {:>12} {:>10}",
        "sys", "iters", "seconds", "gain"
    );
    for (i, sys) in systems.iter().enumerate() {
        let amg = Amg::new(
            &sys.problem.a,
            sys.problem.near_nullspace.as_ref(),
            &amg_opts,
        );
        let b = DMat::from_col_major(n, 1, sys.rhs.clone());
        let mut x = DMat::zeros(n, 1);
        let (res, secs) =
            time(|| gcrodr::solve(&sys.problem.a, &amg, &b, &mut x, &gc_opts, &mut ctx));
        assert!(res.converged, "FGCRO-DR failed on system {i}");
        rhs_row(i + 1, res.iterations, secs, Some(fg_times[i]));
        gc_times.push(secs);
        gc_iters += res.iterations;
        gc_hist.extend(res.history);
    }
    let cum_fg: f64 = fg_times.iter().sum();
    let cum_gc: f64 = gc_times.iter().sum();
    println!("\ntotal iterations: FGMRES {fg_iters}, FGCRO-DR {gc_iters} (paper: 235 vs 189)");
    println!(
        "cumulative gain {:+.1}% (paper: +36.0%)",
        (cum_fg / cum_gc - 1.0) * 100.0
    );
    print_curve("FGMRES", &fg_hist);
    print_curve("FGCRO-DR", &gc_hist);

    // ---- (c/d): right preconditioning, Chebyshev smoother. ---------------
    rule();
    println!("Fig. 3c/3d — GCRO-DR(30,10) vs LGMRES(30,10), right preconditioning");
    rule();
    let right_opts = SolveOpts {
        rtol: 1e-8,
        restart: 30,
        recycle: 10,
        side: PrecondSide::Right,
        recycle_strategy: RecycleStrategy::A,
        same_system: false,
        max_iters: 20000,
        ..Default::default()
    };
    // At laptop scale the AMG hierarchy converges in well under one restart
    // and neither augmentation nor recycling has anything to accelerate
    // (see EXPERIMENTS.md); the paper's 8,000-core runs operate in the
    // restart-dominated regime, which a linear point-Jacobi preconditioner
    // reproduces here — LGMRES and GCRO-DR see the identical operator, so
    // the methods comparison (269 vs 173 iterations) is preserved.
    println!("(linear preconditioner: point Jacobi — restart-dominated regime)");

    let lg_opts = traced_opts(&right_opts, "fig3_lgmres");
    let mut lg_times = Vec::new();
    let mut lg_iters = 0;
    println!("\nLGMRES(30,10):");
    println!(
        "{:>4} {:>8} {:>12} {:>10}",
        "sys", "iters", "seconds", "gain"
    );
    for (i, sys) in systems.iter().enumerate() {
        let jac = kryst_precond::Jacobi::new(&sys.problem.a, 1.0);
        let b = DMat::from_col_major(n, 1, sys.rhs.clone());
        let mut x = DMat::zeros(n, 1);
        let (res, secs) = time(|| lgmres::solve(&sys.problem.a, &jac, &b, &mut x, &lg_opts));
        assert!(res.converged, "LGMRES failed on system {i}");
        rhs_row(i + 1, res.iterations, secs, None);
        lg_times.push(secs);
        lg_iters += res.iterations;
    }

    let gr_opts = traced_opts(&right_opts, "fig3_gcrodr");
    let mut ctx2 = SolverContext::new();
    let mut gr_iters = 0;
    let mut gr_times = Vec::new();
    println!("\nGCRO-DR(30,10):");
    println!(
        "{:>4} {:>8} {:>12} {:>10}",
        "sys", "iters", "seconds", "gain"
    );
    for (i, sys) in systems.iter().enumerate() {
        let jac = kryst_precond::Jacobi::new(&sys.problem.a, 1.0);
        let b = DMat::from_col_major(n, 1, sys.rhs.clone());
        let mut x = DMat::zeros(n, 1);
        let (res, secs) =
            time(|| gcrodr::solve(&sys.problem.a, &jac, &b, &mut x, &gr_opts, &mut ctx2));
        assert!(res.converged, "GCRO-DR failed on system {i}");
        rhs_row(i + 1, res.iterations, secs, Some(lg_times[i]));
        gr_times.push(secs);
        gr_iters += res.iterations;
    }
    let cum_lg: f64 = lg_times.iter().sum();
    let cum_gr: f64 = gr_times.iter().sum();
    println!("\ntotal iterations: LGMRES {lg_iters}, GCRO-DR {gr_iters} (paper: 269 vs 173)");
    println!(
        "cumulative gain {:+.1}% (paper: +15.1%)",
        (cum_lg / cum_gr - 1.0) * 100.0
    );
}
