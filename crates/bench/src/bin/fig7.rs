//! Fig. 7 — strong scaling of the Maxwell solver.
//!
//! Paper setting (§V-C): 119M complex unknowns, ORAS + full GMRES, 512 →
//! 4,096 subdomains; setup shrinks nearly ideally, iterations grow mildly
//! (54 → 94), overall speedup ≈ 6.9.
//!
//! Two parts here:
//!
//! 1. **measured** — the scaled-down chamber partitioned into 4…32
//!    subdomains, real wall times for setup (local factorizations) and
//!    solve;
//! 2. **modeled** — the instrumented communication counts (reductions per
//!    iteration, halo messages, flops) pushed through the α–β–γ cost model
//!    at the paper's rank counts (512…4,096), with the iteration growth
//!    extrapolated from the measured trend. This is the DESIGN.md
//!    substitution for the 8,192-core machine.

use kryst_bench::{maxwell_oras, rule, time, traced_opts};
use kryst_core::{gmres, OrthScheme, PrecondSide, SolveOpts};
use kryst_dense::DMat;
use kryst_par::{CommStats, CostModel, DistOp, HaloPlan, Layout};
use kryst_pde::maxwell::{antenna_ring_rhs, MaxwellParams};
use kryst_scalar::C64;
use std::sync::Arc;

fn main() {
    let nc = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(14);
    println!("Fig. 7 — Maxwell strong scaling, nc = {nc}");
    let params = MaxwellParams::matching_solution(nc);

    rule();
    println!("(measured, laptop scale)");
    println!(
        "{:>6} {:>10} {:>10} {:>8} {:>9}",
        "N", "setup(s)", "solve(s)", "iters", "speedup"
    );
    let mut t_first = 0.0;
    let mut meas: Vec<(usize, usize)> = Vec::new();
    for nsub in [4usize, 8, 16, 32] {
        let setup = maxwell_oras(params, nsub, 2);
        let b = antenna_ring_rhs(&setup.geom, &params, 1, 0.3, 0.5);
        let opts = SolveOpts {
            rtol: 1e-8,
            restart: 400,
            max_iters: 400,
            side: PrecondSide::Right,
            orth: OrthScheme::Imgs,
            ..Default::default()
        };
        let opts = traced_opts(&opts, &format!("fig7_gmres_n{nsub}"));
        let mut x = DMat::<C64>::zeros(setup.problem.a.nrows(), 1);
        let (res, tsolve) = time(|| gmres::solve(&setup.problem.a, &setup.oras, &b, &mut x, &opts));
        assert!(res.converged, "N = {nsub} did not converge");
        let total = setup.setup_seconds + tsolve;
        if nsub == 4 {
            t_first = total;
        }
        println!(
            "{nsub:>6} {:>10.3} {:>10.3} {:>8} {:>9.2}",
            setup.setup_seconds,
            tsolve,
            res.iterations,
            t_first / total
        );
        meas.push((nsub, res.iterations));
    }

    rule();
    println!("(modeled at the paper's rank counts, α–β–γ Curie-like model)");
    // One instrumented iteration sample to get per-iteration counts.
    let stats = CommStats::new_shared();
    let setup = maxwell_oras(params, 8, 2);
    let n = setup.problem.a.nrows();
    let dist = DistOp::new(setup.problem.a.clone(), 8, Arc::clone(&stats));
    let b = antenna_ring_rhs(&setup.geom, &params, 1, 0.3, 0.5);
    let opts = SolveOpts {
        rtol: 1e-8,
        restart: 400,
        max_iters: 400,
        side: PrecondSide::Right,
        orth: OrthScheme::Imgs,
        stats: Some(Arc::clone(&stats)),
        ..Default::default()
    };
    let opts = traced_opts(&opts, "fig7_instrumented_n8");
    let mut x = DMat::<C64>::zeros(n, 1);
    let res = gmres::solve(&dist, &setup.oras, &b, &mut x, &opts);
    let snap = stats.snapshot();
    let iters_meas = res.iterations.max(1);
    let red_per_it = snap.reductions as f64 / iters_meas as f64;
    // Per-subdomain factor+solve flops measured from the small run; in the
    // scaled setting each of the N ranks owns n_paper/N unknowns. We keep
    // the paper's problem/rank ratio: 119M unknowns over N ranks, with the
    // subdomain solve costing O(local_n · bw²) ≈ O(local_n^{5/3}) for the
    // banded factorization and O(local_n^{4/3}) per application.
    let model = CostModel::curie_like();
    let n_paper = 119_000_000f64;
    // Iteration growth: fit iters(N) = a·N^e to the measured points.
    let (n0, i0) = (meas[0].0 as f64, meas[0].1 as f64);
    let (n1, i1) = (
        *meas.last().map(|(a, _)| a).unwrap() as f64,
        meas.last().unwrap().1 as f64,
    );
    let expo = ((i1 / i0).ln() / (n1 / n0).ln()).clamp(0.0, 0.5);
    println!(
        "measured per-iteration reductions: {red_per_it:.1}; iteration growth exponent {expo:.3}"
    );
    println!(
        "{:>6} {:>10} {:>10} {:>8} {:>9}   (paper: 512→4096, 54→94 its, speedup 6.9)",
        "N", "setup(s)", "solve(s)", "iters", "speedup"
    );
    // Anchor the model at the paper's N = 512 point (456 s setup, 91.8 s
    // solve at 54 iterations); the model supplies the *shape*: setup work
    // is embarrassingly parallel (∝ 1/N), per-iteration local work shrinks
    // ∝ 1/N, iterations grow with the measured exponent, and the reduction
    // term α·log₂(N) per iteration provides the communication floor.
    let setup_512 = 456.0;
    let solve_512 = 91.8;
    let iters_at = |nr: f64| (54.0 * (nr / 512.0).powf(expo)).round();
    let halo_layout = Layout::even(n, 8);
    let _ = HaloPlan::build(dist.matrix(), &halo_layout); // structure sanity
    let mut t512 = 0.0;
    for nranks in [512usize, 1024, 2048, 4096] {
        let local_n = n_paper / nranks as f64;
        let its = iters_at(nranks as f64);
        let setup_t = setup_512 * 512.0 / nranks as f64;
        let per_iter_compute = (solve_512 / 54.0) * 512.0 / nranks as f64;
        let stages = (nranks as f64).log2().ceil();
        let per_iter_comm = red_per_it * model.alpha_reduce * stages
            + 6.0 * (model.alpha_msg + (local_n.powf(2.0 / 3.0) * 16.0) / model.beta);
        let solve_t = its * (per_iter_compute + per_iter_comm);
        let total = setup_t + solve_t;
        if nranks == 512 {
            t512 = total;
        }
        println!(
            "{nranks:>6} {setup_t:>10.1} {solve_t:>10.1} {its:>8} {:>9.2}",
            t512 / total
        );
    }
    rule();
    println!(
        "Expected shape (paper Fig. 7): setup scales nearly ideally, iterations\n\
         grow mildly with N (one-level optimized interface conditions), solve\n\
         fraction grows from ~17% to ~30%, overall speedup ≈ 7 at 8× ranks."
    );
}
