//! CI regression gate for the kernel benchmarks.
//!
//! Usage: `bench_compare <BENCH_kernels.json> <fresh.jsonl> [max_ratio]`
//!
//! `BENCH_kernels.json` is the checked-in before/after record (a JSON array
//! of `{"name","baseline_s","after_s","speedup"}` entries — see
//! EXPERIMENTS.md for how it was produced). `fresh.jsonl` is the output of
//! a bench run with `KRYST_BENCH_JSON` set (one object per line with
//! `name`/`median_s`). Every kernel present in both files must come in
//! under `max_ratio` (default 2.0) times its checked-in `after_s`; any
//! kernel above the bound fails the gate with exit code 1. Kernels missing
//! from either side are reported but do not fail — machines differ, bench
//! sets evolve.

use kryst_obs::json::JsonValue;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: bench_compare <BENCH_kernels.json> <fresh.jsonl> [max_ratio]");
        return ExitCode::from(2);
    }
    let max_ratio: f64 = args
        .get(2)
        .map(|s| s.parse().expect("max_ratio must be a number"))
        .unwrap_or(2.0);

    let baseline_src = match std::fs::read_to_string(&args[0]) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args[0]);
            return ExitCode::from(2);
        }
    };
    let baseline = match JsonValue::parse(&baseline_src) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{}: parse error: {e}", args[0]);
            return ExitCode::from(2);
        }
    };
    let mut reference: BTreeMap<String, f64> = BTreeMap::new();
    for entry in baseline.as_array().unwrap_or(&[]) {
        if let (Some(name), Some(after)) = (
            entry.get("name").and_then(|v| v.as_str()),
            entry.get("after_s").and_then(|v| v.as_f64()),
        ) {
            reference.insert(name.to_string(), after);
        }
    }

    let fresh_src = match std::fs::read_to_string(&args[1]) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args[1]);
            return ExitCode::from(2);
        }
    };
    let mut fresh: BTreeMap<String, f64> = BTreeMap::new();
    for (ln, line) in fresh_src.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = match JsonValue::parse(line) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{}:{}: parse error: {e}", args[1], ln + 1);
                return ExitCode::from(2);
            }
        };
        if let (Some(name), Some(median)) = (
            v.get("name").and_then(|v| v.as_str()),
            v.get("median_s").and_then(|v| v.as_f64()),
        ) {
            // Last measurement wins when a bench ran more than once.
            fresh.insert(name.to_string(), median);
        }
    }

    let mut failures = 0usize;
    let mut compared = 0usize;
    for (name, &after) in &reference {
        let Some(&median) = fresh.get(name) else {
            println!("SKIP {name:<40} (not in fresh run)");
            continue;
        };
        compared += 1;
        let ratio = median / after;
        let verdict = if ratio > max_ratio {
            failures += 1;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "{verdict:<4} {name:<40} checked-in {:>12.3e} s  fresh {:>12.3e} s  ratio {ratio:.2}",
            after, median
        );
    }
    for name in fresh.keys() {
        if !reference.contains_key(name) {
            println!("NEW  {name:<40} (no checked-in reference)");
        }
    }
    println!("compared {compared} kernels, {failures} over the {max_ratio}x bound");
    if failures > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
