//! Minimal benchmark harness with a criterion-compatible surface.
//!
//! The workspace builds offline, so the benches run on this self-contained
//! harness instead of an external crate. It keeps the familiar shape —
//! `Criterion`, `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros re-exported from the crate root — so a bench
//! file ports by swapping its `use` lines.
//!
//! Measurement model: one warm-up call sizes the batch so that
//! `sample_size` samples together fill roughly `measurement_time`; each
//! sample times a batch of calls and the report prints the minimum, median,
//! and mean per-call time (plus element throughput when declared).
//! `KRYST_BENCH_FAST=1` caps every bench at one sample × one iteration —
//! CI smoke mode. `KRYST_BENCH_JSON=<path>` additionally appends one JSON
//! object per benchmark (`{"name","min_s","median_s","mean_s","samples",
//! "iters"}`, group-qualified names like `"spmm/8"`) — the input format of
//! the `bench_compare` regression gate.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level driver holding the sampling configuration.
pub struct Criterion {
    samples: usize,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            samples: 10,
            measurement: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(1);
        self
    }

    /// Target total measuring time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup {
        println!("\n== {name} ==");
        BenchmarkGroup {
            prefix: name.to_string(),
            samples: self.samples,
            measurement: self.measurement,
            throughput: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        run_one(
            &id.to_string(),
            None,
            self.samples,
            self.measurement,
            None,
            &mut f,
        );
    }
}

/// Throughput declaration for a group — reported as elements/second.
#[derive(Copy, Clone)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
}

/// Label for one parameterized benchmark in a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identify the case by its parameter value.
    pub fn from_parameter(p: impl Display) -> Self {
        Self(p.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A group of benchmarks sharing configuration and throughput.
pub struct BenchmarkGroup {
    prefix: String,
    samples: usize,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Declare the per-iteration throughput of subsequent benches.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Benchmark a closure.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        run_one(
            &id.to_string(),
            Some(&self.prefix),
            self.samples,
            self.measurement,
            self.throughput,
            &mut f,
        );
    }

    /// Benchmark a closure against an explicit input.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(
            &id.0,
            Some(&self.prefix),
            self.samples,
            self.measurement,
            self.throughput,
            &mut |b| f(b, input),
        );
    }

    /// End the group (report separator).
    pub fn finish(self) {}
}

/// Passed to the benched closure; `iter` runs and times the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run the workload `self.iters` times, timing the whole batch.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = t0.elapsed();
    }
}

fn fast_mode() -> bool {
    std::env::var_os("KRYST_BENCH_FAST").is_some()
}

fn run_one(
    name: &str,
    group: Option<&str>,
    samples: usize,
    measurement: Duration,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Warm-up call sizes the batch.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_call = b.elapsed.max(Duration::from_nanos(1));
    let (samples, iters) = if fast_mode() {
        (1usize, 1u64)
    } else {
        let budget = measurement.as_secs_f64() / samples as f64;
        let iters = (budget / per_call.as_secs_f64()).clamp(1.0, 1000.0) as u64;
        (samples, iters)
    };

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let tp = match throughput {
        Some(Throughput::Elements(e)) if median > 0.0 => {
            format!("  {:>10.1} Melem/s", e as f64 / median / 1e6)
        }
        _ => String::new(),
    };
    println!(
        "{name:<32} min {:>10}  median {:>10}  mean {:>10}  ({samples} samples x {iters} iters){tp}",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
    );
    if let Some(path) = std::env::var_os("KRYST_BENCH_JSON") {
        let full = match group {
            Some(g) => format!("{g}/{name}"),
            None => name.to_string(),
        };
        let line = format!(
            "{{\"name\":\"{full}\",\"min_s\":{min:e},\"median_s\":{median:e},\
             \"mean_s\":{mean:e},\"samples\":{samples},\"iters\":{iters}}}\n"
        );
        let res = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut fh| fh.write_all(line.as_bytes()));
        if let Err(e) = res {
            eprintln!("KRYST_BENCH_JSON: cannot append to {path:?}: {e}");
        }
    }
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Criterion-style group definition: binds a config and a target list to a
/// function named after the group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Criterion-style entry point: runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
