//! Latency-hiding path benchmarks: the depth-1 pipelined orthogonalization
//! (reduction overlap) and the agglomerated AMG coarse-solve model, gated by
//! `BENCH_pipeline.json`.
//!
//! The latency win of the pipelined path is a *distributed* effect (Gram
//! and recycle-projection reductions overlap the lagged operator apply),
//! modeled deterministically in `tests/pipelined_equivalence.rs` and
//! recorded in the modeled rows of `BENCH_pipeline.json`. What a single
//! node can measure — and what this bench gates — is that the recurrence
//! bookkeeping (the `(û − U·Sᵥ)·R⁻¹` reconstruction, two tall-skinny GEMMs
//! plus a triangular solve per step) stays a small overhead next to the
//! operator and orthogonalization work it rides along with, and that the
//! coarse-agglomeration model itself is cheap enough to evaluate at setup
//! for thousands of ranks.

use kryst_bench::harness::Criterion;
use kryst_bench::{criterion_group, criterion_main};
use kryst_core::cycle::{BlockArnoldi, PrecondMode};
use kryst_core::{gcrodr, gmres, OrthPath, PrecondSide, SolveOpts, SolverContext};
use kryst_dense::gs::OrthScheme;
use kryst_dense::DMat;
use kryst_par::IdentityPrecond;
use kryst_pde::poisson::poisson2d;
use kryst_precond::{Amg, AmgOpts};
use kryst_rt::rng::Rng64;
use kryst_sparse::{Coo, Csr};

fn convdiff2d(nx: usize, eps: f64, bx: f64, by: f64) -> Csr<f64> {
    let n = nx * nx;
    let h = 1.0 / (nx as f64 + 1.0);
    let mut c = Coo::new(n, n);
    let idx = |i: usize, j: usize| i * nx + j;
    for i in 0..nx {
        for j in 0..nx {
            let row = idx(i, j);
            c.push(row, row, 4.0 * eps / (h * h) + (bx.abs() + by.abs()) / h);
            if i > 0 {
                c.push(row, idx(i - 1, j), -eps / (h * h) - bx.max(0.0) / h);
            }
            if i + 1 < nx {
                c.push(row, idx(i + 1, j), -eps / (h * h) + bx.min(0.0) / h);
            }
            if j > 0 {
                c.push(row, idx(i, j - 1), -eps / (h * h) - by.max(0.0) / h);
            }
            if j + 1 < nx {
                c.push(row, idx(i, j + 1), -eps / (h * h) + by.min(0.0) / h);
            }
        }
    }
    c.to_csr()
}

fn laplace1d(n: usize) -> Csr<f64> {
    let mut c = Coo::new(n, n);
    for i in 0..n {
        c.push(i, i, 2.0);
        if i > 0 {
            c.push(i, i - 1, -1.0);
        }
        if i + 1 < n {
            c.push(i, i + 1, -1.0);
        }
    }
    c.to_csr()
}

fn bench_pipeline(c: &mut Criterion) {
    // One full Arnoldi cycle (m = 30, n = 5000) on each path: isolates the
    // per-step price of the pipelined recurrence bookkeeping from solver
    // logic. Both paths do the same operator applies; the pipelined one
    // trades the (distributed) synchronous Gram wait for two extra
    // tall-skinny GEMMs and a small triangular solve per step.
    let n = 5000;
    let a = laplace1d(n);
    let id = IdentityPrecond::new(n);
    let r0 = DMat::from_fn(n, 1, |i, _| (((i * 13 + 5) % 101) as f64 - 50.0) / 50.0);
    for (name, path) in [
        ("arnoldi30_laplace5000_fused", OrthPath::Fused),
        ("arnoldi30_laplace5000_pipelined", OrthPath::Pipelined),
    ] {
        c.bench_function(name, |bch| {
            bch.iter(|| {
                let mode = PrecondMode::new(&id, PrecondSide::Right);
                let mut arn = BlockArnoldi::new(&a, &mode, 30, 1, OrthScheme::CholQr, None, None)
                    .with_path(path);
                arn.start(&r0);
                for _ in 0..30 {
                    arn.step();
                }
                arn.pipeline_fallbacks()
            });
        });
    }

    // End-to-end GMRES(30) on the fig. 7 demo problem, both paths: same
    // problem as the comm_fusion bench, so the pipelined single-node
    // overhead is directly comparable to the fused reference.
    let a = convdiff2d(32, 0.001, 1.0, 0.3);
    let an = a.nrows();
    let id = IdentityPrecond::new(an);
    let b = DMat::from_fn(an, 1, |i, _| ((i % 7) as f64) - 3.0);
    for (name, path) in [
        ("gmres30_convdiff32_fused_ref", OrthPath::Fused),
        ("gmres30_convdiff32_pipelined", OrthPath::Pipelined),
    ] {
        c.bench_function(name, |bch| {
            bch.iter(|| {
                let opts = SolveOpts {
                    rtol: 1e-8,
                    restart: 30,
                    max_iters: 1000,
                    ortho: path,
                    ..Default::default()
                };
                let mut x = DMat::zeros(an, 1);
                gmres::solve(&a, &id, &b, &mut x, &opts)
            });
        });
    }

    // GCRO-DR(30,10) cold + warm recycled solve: the warm solve carries the
    // recycle block, so the pipelined path exercises the C-projection
    // recurrence (`E_{j+1} = (Cᴴû − E·Sᵥ)·R⁻¹`) on every inner step.
    let gn = 400;
    let ga = laplace1d(gn);
    let gid = IdentityPrecond::new(gn);
    let mut rng = Rng64::seed_from_u64(42);
    let gb = DMat::from_fn(gn, 1, |_, _| rng.gen_range(-1.0, 1.0));
    let mut rng2 = Rng64::seed_from_u64(43);
    let gb2 = DMat::from_fn(gn, 1, |_, _| rng2.gen_range(-1.0, 1.0));
    for (name, path) in [
        ("gcrodr30_10_laplace400_fused_ref", OrthPath::Fused),
        ("gcrodr30_10_laplace400_pipelined", OrthPath::Pipelined),
    ] {
        c.bench_function(name, |bch| {
            bch.iter(|| {
                let opts = SolveOpts {
                    rtol: 1e-8,
                    restart: 30,
                    recycle: 10,
                    max_iters: 5000,
                    ortho: path,
                    ..Default::default()
                };
                let mut ctx = SolverContext::new();
                let mut x = DMat::zeros(gn, 1);
                gcrodr::solve(&ga, &gid, &gb, &mut x, &opts, &mut ctx);
                let mut x2 = DMat::zeros(gn, 1);
                gcrodr::solve(&ga, &gid, &gb2, &mut x2, &opts, &mut ctx)
            });
        });
    }

    // The coarse-agglomeration model: exact gather/scatter row accounting
    // between the all-ranks layout and the power-of-two subset. It runs once
    // per (setup, rank count) in `kryst_prof` and scales linearly in P —
    // this gates that evaluating it at machine scale stays microseconds.
    let prob = poisson2d::<f64>(64, 64);
    let amg = Amg::new(&prob.a, prob.near_nullspace.as_ref(), &AmgOpts::default());
    assert!(amg.coarse_agglom(8192).is_some());
    c.bench_function("amg_coarse_agglom_model_P8192", |bch| {
        bch.iter(|| amg.coarse_agglom(8192));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_pipeline
}
criterion_main!(benches);
