//! Memory-traffic benches for the mixed-precision / matrix-free PR, gated
//! by `BENCH_mixed.json`:
//!
//! * assembled CSR SpMM vs the matrix-free stencil appliers (Poisson 2-D
//!   and Q1 elasticity) at block width p = 8,
//! * level-scheduled ILU(0) applies with `f64` vs compact `f32` factors,
//! * AMG V-cycles on the full vs the single-precision hierarchy.
//!
//! Problem sizes are picked so the operator / factor data no longer fits
//! in cache — these kernels are memory-bound, which is exactly where the
//! byte cuts pay off.

use kryst_bench::harness::{BenchmarkId, Criterion};
use kryst_bench::{criterion_group, criterion_main};
use kryst_dense::DMat;
use kryst_par::{ApplyRows, PrecondOp, PrecondPrecision};
use kryst_pde::elasticity::{elasticity3d, ElasticityOpts};
use kryst_pde::poisson::poisson2d;
use kryst_pde::stencil::{ElasticityStencil, PoissonStencil};
use kryst_precond::{Amg, AmgOpts, Ilu0};

const P: usize = 8;

fn pinned_block(n: usize, p: usize) -> DMat<f64> {
    DMat::from_fn(n, p, |i, j| (((i + 3 * j) % 9) as f64) - 4.0)
}

fn bench_spmm_mf(c: &mut Criterion) {
    // Poisson: 512x512 grid, 262k rows, ~1.3M nonzeros (~23 MB assembled).
    let nx = 512;
    let prob = poisson2d::<f64>(nx, nx);
    let stencil = PoissonStencil::<f64>::dim2(nx, nx);
    let n = prob.a.nrows();
    let x = pinned_block(n, P);
    let mut y = DMat::zeros(n, P);
    let mut g = c.benchmark_group("spmm_mixed_p8");
    g.bench_function("poisson_assembled", |bch| {
        bch.iter(|| ApplyRows::apply_all(&prob.a, &x, &mut y))
    });
    g.bench_function("poisson_stencil", |bch| {
        bch.iter(|| stencil.apply_all(&x, &mut y))
    });

    // Elasticity: ne=16 cube, ~14k dofs, ~81 nnz/row (~18 MB assembled).
    let opts = ElasticityOpts {
        ne: 16,
        ..Default::default()
    };
    let ep = elasticity3d::<f64>(&opts);
    let est = ElasticityStencil::<f64>::new(&opts);
    let ne_dof = ep.problem.a.nrows();
    let xe = pinned_block(ne_dof, P);
    let mut ye = DMat::zeros(ne_dof, P);
    g.bench_function("elasticity_assembled", |bch| {
        bch.iter(|| ApplyRows::apply_all(&ep.problem.a, &xe, &mut ye))
    });
    g.bench_function("elasticity_stencil", |bch| {
        bch.iter(|| est.apply_all(&xe, &mut ye))
    });
    g.finish();
}

fn bench_ilu_mixed(c: &mut Criterion) {
    let ep = elasticity3d::<f64>(&ElasticityOpts {
        ne: 16,
        ..Default::default()
    });
    let a = &ep.problem.a;
    let n = a.nrows();
    let rp = pinned_block(n, P);
    let mut zp = DMat::zeros(n, P);
    let mut g = c.benchmark_group("ilu_mixed_p8");
    for (name, prec) in [
        ("f64", PrecondPrecision::Full),
        ("f32", PrecondPrecision::Single),
    ] {
        let ilu = Ilu0::with_precision(a, prec).expect("ILU(0) on elasticity");
        g.bench_with_input(BenchmarkId::from_parameter(name), &ilu, |bch, ilu| {
            bch.iter(|| ilu.apply(&rp, &mut zp))
        });
    }
    g.finish();
}

fn bench_amg_mixed(c: &mut Criterion) {
    let prob = poisson2d::<f64>(256, 256);
    let n = prob.a.nrows();
    let rp = pinned_block(n, P);
    let mut zp = DMat::zeros(n, P);
    let mut g = c.benchmark_group("amg_mixed_p8");
    for (name, prec) in [
        ("full", PrecondPrecision::Full),
        ("single", PrecondPrecision::Single),
    ] {
        let amg = Amg::with_precision(
            &prob.a,
            prob.near_nullspace.as_ref(),
            &AmgOpts::default(),
            prec,
        );
        g.bench_with_input(BenchmarkId::from_parameter(name), &amg, |bch, amg| {
            bch.iter(|| amg.apply(&rp, &mut zp))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_spmm_mf, bench_ilu_mixed, bench_amg_mixed
}
criterion_main!(benches);
