//! Communication-fusion benchmarks: the fused one-reduction
//! orthogonalization step against the classic CGS2/CholQR step, and the
//! end-to-end solver wall time on both paths.
//!
//! The latency win of the fused path is a *distributed* effect (fewer
//! synchronizations), modeled deterministically in `tests/comm_model.rs`
//! and recorded in `BENCH_comm.json`. What a single node can measure — and
//! what this bench gates — is that fusing the projection, the Gram product,
//! and the CholQR downdate into one sweep is also no slower in raw
//! arithmetic: one fused pass reads `V` once where the classic step reads
//! it three times.

use kryst_bench::harness::Criterion;
use kryst_bench::{criterion_group, criterion_main};
use kryst_core::{gmres, OrthPath, SolveOpts};
use kryst_dense::gs::{fused_orthogonalize_block, orthogonalize_block, OrthScheme};
use kryst_dense::DMat;
use kryst_par::IdentityPrecond;
use kryst_sparse::{Coo, Csr};

fn convdiff2d(nx: usize, eps: f64, bx: f64, by: f64) -> Csr<f64> {
    let n = nx * nx;
    let h = 1.0 / (nx as f64 + 1.0);
    let mut c = Coo::new(n, n);
    let idx = |i: usize, j: usize| i * nx + j;
    for i in 0..nx {
        for j in 0..nx {
            let row = idx(i, j);
            c.push(row, row, 4.0 * eps / (h * h) + (bx.abs() + by.abs()) / h);
            if i > 0 {
                c.push(row, idx(i - 1, j), -eps / (h * h) - bx.max(0.0) / h);
            }
            if i + 1 < nx {
                c.push(row, idx(i + 1, j), -eps / (h * h) + bx.min(0.0) / h);
            }
            if j > 0 {
                c.push(row, idx(i, j - 1), -eps / (h * h) - by.max(0.0) / h);
            }
            if j + 1 < nx {
                c.push(row, idx(i, j + 1), -eps / (h * h) + by.min(0.0) / h);
            }
        }
    }
    c.to_csr()
}

fn bench_comm_fusion(c: &mut Criterion) {
    // One deep-basis orthogonalization step at GCRO-DR shape: n = 50000,
    // 30 basis columns, single new vector. The fused step does the
    // projection + Gram in one sweep and gets its R factor from the
    // downdate; the classic CholQR step runs two projection passes and a
    // fresh Gram product.
    let n = 50_000;
    let m = 30;
    // Orthonormal-ish basis: disjoint normalized index blocks, plus a dense
    // tail so the projection has real work to do.
    let mut v = DMat::zeros(n, m);
    for j in 0..m {
        let blk = n / m;
        for i in 0..blk {
            v[(j * blk + i, j)] = (blk as f64).sqrt().recip();
        }
    }
    let w0 = DMat::from_fn(n, 1, |i, _| (((i * 13 + 5) % 101) as f64 - 50.0) / 50.0);

    c.bench_function("orth_classic_50000x30", |bch| {
        bch.iter(|| {
            let mut w = w0.clone();
            orthogonalize_block(&v, m, &mut w, OrthScheme::CholQr)
        });
    });
    c.bench_function("orth_fused_50000x30", |bch| {
        bch.iter(|| {
            let mut w = w0.clone();
            fused_orthogonalize_block(None, &v, m, &mut w, false, 0.0)
        });
    });

    // End-to-end GMRES(30) on the convection–diffusion problem of the
    // modeled fig. 7 demo: same iteration trajectory on both paths, so the
    // wall-time difference is purely the orthogonalization kernels.
    let a = convdiff2d(32, 0.001, 1.0, 0.3);
    let an = a.nrows();
    let id = IdentityPrecond::new(an);
    let b = DMat::from_fn(an, 1, |i, _| ((i % 7) as f64) - 3.0);
    for (name, path) in [
        ("gmres30_convdiff32_classic", OrthPath::Classic),
        ("gmres30_convdiff32_fused", OrthPath::Fused),
    ] {
        c.bench_function(name, |bch| {
            bch.iter(|| {
                let opts = SolveOpts {
                    rtol: 1e-8,
                    restart: 30,
                    max_iters: 1000,
                    ortho: path,
                    ..Default::default()
                };
                let mut x = DMat::zeros(an, 1);
                gmres::solve(&a, &id, &b, &mut x, &opts)
            });
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_comm_fusion
}
criterion_main!(benches);
