//! Dense kernels on GCRO-DR-sized problems: gemm, incremental QR,
//! eigen-solves of the deflation dimension.

use kryst_bench::harness::{BenchmarkId, Criterion};
use kryst_bench::{criterion_group, criterion_main};
use kryst_dense::qr::IncrementalQr;
use kryst_dense::{blas, eig, DMat};

fn bench_dense(c: &mut Criterion) {
    // Basis update gemm: tall-skinny times small (the solution update).
    let n = 50_000;
    let v = DMat::from_fn(n, 30, |i, j| ((i + j * 7) % 11) as f64 - 5.0);
    let y = DMat::from_fn(30, 1, |i, _| i as f64 * 0.1);
    c.bench_function("gemm_tall_50000x30_x1", |bch| {
        bch.iter(|| blas::matmul(&v, blas::Op::None, &y, blas::Op::None));
    });
    c.bench_function("gram_50000x30", |bch| {
        bch.iter(|| blas::adjoint_times(&v, &v));
    });

    // Incremental QR of a block Hessenberg (m = 30, p = 4).
    c.bench_function("incremental_qr_m30_p4", |bch| {
        let p = 4;
        let m = 30;
        let s1 = DMat::from_fn(p, p, |i, j| if i <= j { 1.0 + (i + j) as f64 } else { 0.0 });
        bch.iter(|| {
            let mut qr = IncrementalQr::new(m, p);
            qr.reset(&s1);
            for j in 0..m {
                let col = DMat::from_fn((j + 2) * p, p, |i, q| ((i * 7 + q) % 13) as f64 - 6.0);
                qr.push_block(&col);
            }
            qr.solve_y()
        });
    });

    // Deflation eigenproblem sizes.
    let mut g = c.benchmark_group("eig_deflation");
    for m in [30usize, 60, 120] {
        let a = DMat::from_fn(m, m, |i, j| {
            if i <= j + 1 {
                (((i * 5 + j * 3) % 17) as f64 - 8.0) / 4.0 + if i == j { 5.0 } else { 0.0 }
            } else {
                0.0
            }
        });
        g.bench_with_input(BenchmarkId::from_parameter(m), &a, |bch, a| {
            bch.iter(|| eig::eig(a));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_dense
}
criterion_main!(benches);
