//! Block orthogonalization backends (CholQR vs CGS vs MGS vs IMGS vs TSQR)
//! — the §III-A choice.

use kryst_bench::harness::{BenchmarkId, Criterion};
use kryst_bench::{criterion_group, criterion_main};
use kryst_dense::gs::{orthogonalize_block, OrthScheme};
use kryst_dense::{chol, tsqr, DMat};

fn basis(n: usize, k: usize) -> DMat<f64> {
    let mut v = DMat::from_fn(n, k, |i, j| ((i * 7 + j * 13) % 19) as f64 - 9.0);
    let _ = chol::cholqr(&mut v);
    v
}

fn bench_orth(c: &mut Criterion) {
    let n = 20_000;
    let v = basis(n, 20);
    let w0 = DMat::from_fn(n, 4, |i, j| ((i * 3 + j * 11) % 23) as f64 - 11.0);
    let mut g = c.benchmark_group("orth_against_20_block_4");
    for (name, scheme) in [
        ("cholqr", OrthScheme::CholQr),
        ("cgs", OrthScheme::Cgs),
        ("mgs", OrthScheme::Mgs),
        ("imgs", OrthScheme::Imgs),
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(name),
            &scheme,
            |bch, &scheme| {
                bch.iter(|| {
                    let mut w = w0.clone();
                    orthogonalize_block(&v, 20, &mut w, scheme)
                });
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("tsqr_tall_skinny");
    for blocks in [1usize, 4, 16] {
        g.bench_with_input(
            BenchmarkId::from_parameter(blocks),
            &blocks,
            |bch, &blocks| {
                bch.iter(|| {
                    let mut w = w0.clone();
                    tsqr::tsqr_orthonormalize(&mut w, blocks)
                });
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_orth
}
criterion_main!(benches);
