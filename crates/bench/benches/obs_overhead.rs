//! Profiler / metrics overhead benchmarks.
//!
//! The phase profiler sits on every hot kernel in the workspace (SpMM,
//! orthogonalization, preconditioner applies, reductions), so its *disabled*
//! cost is the one that matters: a single relaxed atomic load and no clock
//! read. These legs pin that down at two granularities — the raw guard
//! construction in a tight loop, and an end-to-end GMRES(30) solve run with
//! the profiler off vs on. The solve pair must stay within run-to-run noise
//! of each other; `bench_compare` gates each leg against the checked-in
//! record in `BENCH_obs.json`.

use kryst_bench::harness::{black_box, Criterion};
use kryst_bench::{criterion_group, criterion_main};
use kryst_core::{gmres, SolveOpts};
use kryst_dense::DMat;
use kryst_obs::{profile, Phase, Profiler};
use kryst_par::IdentityPrecond;
use kryst_sparse::{Coo, Csr};

fn convdiff2d(nx: usize, eps: f64, bx: f64, by: f64) -> Csr<f64> {
    let n = nx * nx;
    let h = 1.0 / (nx as f64 + 1.0);
    let mut c = Coo::new(n, n);
    let idx = |i: usize, j: usize| i * nx + j;
    for i in 0..nx {
        for j in 0..nx {
            let row = idx(i, j);
            c.push(row, row, 4.0 * eps / (h * h) + (bx.abs() + by.abs()) / h);
            if i > 0 {
                c.push(row, idx(i - 1, j), -eps / (h * h) - bx.max(0.0) / h);
            }
            if i + 1 < nx {
                c.push(row, idx(i + 1, j), -eps / (h * h) + bx.min(0.0) / h);
            }
            if j > 0 {
                c.push(row, idx(i, j - 1), -eps / (h * h) - by.max(0.0) / h);
            }
            if j + 1 < nx {
                c.push(row, idx(i, j + 1), -eps / (h * h) + by.min(0.0) / h);
            }
        }
    }
    c.to_csr()
}

fn bench_obs_overhead(c: &mut Criterion) {
    // Raw guard cost: 1000 enter/exit pairs per iteration, so the per-pair
    // cost reads directly in nanoseconds from the reported microseconds.
    Profiler::global().set_enabled(false);
    c.bench_function("prof_timer_disabled_x1000", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                black_box(profile(Phase::Spmv));
            }
        });
    });
    Profiler::global().set_enabled(true);
    c.bench_function("prof_timer_enabled_x1000", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                black_box(profile(Phase::Spmv));
            }
        });
    });
    Profiler::global().set_enabled(false);

    // End-to-end: the same GMRES(30) solve the comm-fusion benches use,
    // profiler off vs on. The two legs must be within noise of each other —
    // every instrumented kernel call costs one atomic load when disabled,
    // two clock reads + one histogram update when enabled.
    let a = convdiff2d(32, 0.001, 1.0, 0.3);
    let n = a.nrows();
    let id = IdentityPrecond::new(n);
    let b0 = DMat::from_fn(n, 1, |i, _| ((i % 7) as f64) - 3.0);
    let solve = |a: &Csr<f64>, id: &IdentityPrecond, b0: &DMat<f64>| {
        let opts = SolveOpts {
            rtol: 1e-8,
            restart: 30,
            max_iters: 1000,
            ..Default::default()
        };
        let mut x = DMat::zeros(n, 1);
        gmres::solve(a, id, b0, &mut x, &opts)
    };
    c.bench_function("gmres30_convdiff32_prof_off", |b| {
        Profiler::global().set_enabled(false);
        b.iter(|| solve(&a, &id, &b0));
    });
    c.bench_function("gmres30_convdiff32_prof_on", |b| {
        Profiler::global().set_enabled(true);
        b.iter(|| solve(&a, &id, &b0));
    });
    Profiler::global().set_enabled(false);

    // Metrics handles share atomic cells: an increment through the handle is
    // one relaxed fetch_add, fetched once from the registry outside the loop.
    let reg = kryst_obs::MetricsRegistry::new();
    let counter = reg.counter("bench_events");
    c.bench_function("metrics_counter_inc_x1000", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                counter.inc();
            }
        });
    });

    // Distributed-trace spans sit on the same hot paths as the profiler
    // guards (collectives, halo, preconditioner applies), with the same
    // discipline: disabled = one relaxed load and no clock read; enabled =
    // two clock reads + a bounded-ring push. The enabled leg drains the
    // thread ring each iteration so it measures steady-state pushes, not
    // the full-ring drop path.
    kryst_obs::set_trace_enabled(false);
    c.bench_function("trace_span_disabled_x1000", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                drop(black_box(kryst_obs::traced(
                    kryst_obs::TraceKind::PrecondApply,
                )));
            }
        });
    });
    kryst_obs::set_trace_enabled(true);
    c.bench_function("trace_span_enabled_x1000", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                drop(black_box(kryst_obs::traced(
                    kryst_obs::TraceKind::PrecondApply,
                )));
            }
            black_box(kryst_obs::span::drain());
        });
    });
    kryst_obs::set_trace_enabled(false);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_obs_overhead
}
criterion_main!(benches);
