//! SpMM arithmetic-intensity scaling with the number of RHS columns —
//! the kernel argument of the paper's §V-B2.

use kryst_bench::harness::{BenchmarkId, Criterion, Throughput};
use kryst_bench::{criterion_group, criterion_main};
use kryst_dense::DMat;
use kryst_pde::poisson::poisson2d;

fn bench_spmm(c: &mut Criterion) {
    let prob = poisson2d::<f64>(96, 96);
    let n = prob.a.nrows();
    let mut g = c.benchmark_group("spmm");
    for p in [1usize, 2, 4, 8, 16, 32] {
        let x = DMat::from_fn(n, p, |i, j| ((i + j) % 13) as f64 - 6.0);
        g.throughput(Throughput::Elements((prob.a.nnz() * p) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |bch, _| {
            let mut y = DMat::zeros(n, p);
            bch.iter(|| prob.a.spmm(&x, &mut y));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_spmm
}
criterion_main!(benches);
