//! Dispatch latency of the persistent worker pool vs per-call spawning.
//!
//! The pool exists because solver iterations fire many *small* parallel
//! kernels: what matters is the fixed cost of getting work onto the
//! threads, not the throughput of the work itself. Each case here runs a
//! cheap axpy so the measured time is dominated by dispatch. The `spawn/*`
//! cases re-implement the pre-pool behavior (fresh scoped threads every
//! call) as the baseline.
//!
//! `KRYST_THREADS` defaults to 2 for this bench so the pool genuinely
//! dispatches even on single-core CI runners.

use kryst_bench::harness::Criterion;
use kryst_bench::{criterion_group, criterion_main};
use kryst_rt::par::{for_each_chunk_mut, max_threads};

/// The pre-pool reference: partition and spawn scoped threads per call.
fn spawn_for_each_chunk_mut<T: Send>(
    data: &mut [T],
    chunk: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    let len = data.len();
    let nchunks = len.div_ceil(chunk);
    let t = max_threads().min(nchunks.max(1));
    if t <= 1 || nchunks <= 1 {
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            f(i, c);
        }
        return;
    }
    let per = nchunks.div_ceil(t);
    std::thread::scope(|scope| {
        for (part, piece) in data.chunks_mut(per * chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (k, c) in piece.chunks_mut(chunk).enumerate() {
                    f(part * per + k, c);
                }
            });
        }
    });
}

fn bench_dispatch(c: &mut Criterion) {
    // Must run before the first pool touch: max_threads() caps once.
    if std::env::var_os("KRYST_THREADS").is_none() {
        std::env::set_var("KRYST_THREADS", "2");
    }
    let axpy = |_ci: usize, c: &mut [f64]| {
        for x in c.iter_mut() {
            *x = 1.5 * *x + 0.5;
        }
    };
    for n in [4_096usize, 65_536] {
        let mut g = c.benchmark_group(format!("dispatch_{n}"));
        let mut v = vec![1.0f64; n];
        g.bench_function("pool", |bch| {
            bch.iter(|| for_each_chunk_mut(&mut v, 1024, 0, axpy));
        });
        let mut w = vec![1.0f64; n];
        g.bench_function("spawn", |bch| {
            bch.iter(|| spawn_for_each_chunk_mut(&mut w, 1024, axpy));
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(1));
    targets = bench_dispatch
}
criterion_main!(benches);
