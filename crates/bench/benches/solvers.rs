//! End-to-end solver comparison on a fixed Poisson sequence (GMRES vs
//! LGMRES vs GCRO-DR vs block/pseudo-block variants).

use criterion::{criterion_group, criterion_main, Criterion};
use kryst_core::pseudo::{self, PseudoMethod};
use kryst_core::{gcrodr, gmres, lgmres, SolveOpts, SolverContext};
use kryst_dense::DMat;
use kryst_par::IdentityPrecond;
use kryst_pde::poisson::{paper_rhs_block, paper_rhs_sequence, poisson2d};
use kryst_precond::Jacobi;

fn bench_solvers(c: &mut Criterion) {
    let nx = 40;
    let prob = poisson2d::<f64>(nx, nx);
    let n = prob.a.nrows();
    let jac = Jacobi::new(&prob.a, 1.0);
    let _id = IdentityPrecond::new(n);
    let rhss = paper_rhs_sequence::<f64>(nx, nx);
    let blk = paper_rhs_block::<f64>(nx, nx);
    let opts = SolveOpts { rtol: 1e-6, restart: 30, recycle: 10, same_system: true, max_iters: 4000, ..Default::default() };

    let mut g = c.benchmark_group("poisson40_4rhs");
    g.bench_function("gmres_consecutive", |bch| {
        bch.iter(|| {
            for rhs in &rhss {
                let b = DMat::from_col_major(n, 1, rhs.clone());
                let mut x = DMat::zeros(n, 1);
                assert!(gmres::solve(&prob.a, &jac, &b, &mut x, &opts).converged);
            }
        })
    });
    g.bench_function("lgmres_consecutive", |bch| {
        bch.iter(|| {
            for rhs in &rhss {
                let b = DMat::from_col_major(n, 1, rhs.clone());
                let mut x = DMat::zeros(n, 1);
                assert!(lgmres::solve(&prob.a, &jac, &b, &mut x, &opts).converged);
            }
        })
    });
    g.bench_function("gcrodr_consecutive", |bch| {
        bch.iter(|| {
            let mut ctx = SolverContext::new();
            for rhs in &rhss {
                let b = DMat::from_col_major(n, 1, rhs.clone());
                let mut x = DMat::zeros(n, 1);
                assert!(gcrodr::solve(&prob.a, &jac, &b, &mut x, &opts, &mut ctx).converged);
            }
        })
    });
    g.bench_function("block_gmres", |bch| {
        bch.iter(|| {
            let mut x = DMat::zeros(n, 4);
            assert!(gmres::solve(&prob.a, &jac, &blk, &mut x, &opts).converged);
        })
    });
    g.bench_function("block_gcrodr", |bch| {
        bch.iter(|| {
            let mut ctx = SolverContext::new();
            let mut x = DMat::zeros(n, 4);
            assert!(gcrodr::solve(&prob.a, &jac, &blk, &mut x, &opts, &mut ctx).converged);
        })
    });
    g.bench_function("pseudo_block_gmres", |bch| {
        bch.iter(|| {
            let mut x = DMat::zeros(n, 4);
            assert!(pseudo::solve(&prob.a, &jac, &blk, &mut x, &opts, PseudoMethod::Gmres, None).converged);
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4));
    targets = bench_solvers
}
criterion_main!(benches);
