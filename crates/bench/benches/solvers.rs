//! End-to-end solver comparison on a fixed Poisson sequence (GMRES vs
//! LGMRES vs GCRO-DR vs block/pseudo-block variants).

use kryst_bench::harness::Criterion;
use kryst_bench::{criterion_group, criterion_main};
use kryst_core::pseudo::{self, PseudoMethod};
use kryst_core::{gcrodr, gmres, lgmres, SolveOpts, SolverContext};
use kryst_dense::DMat;
use kryst_obs::{NullRecorder, Recorder, RingRecorder};
use kryst_par::{CommStats, IdentityPrecond};
use kryst_pde::poisson::{paper_rhs_block, paper_rhs_sequence, poisson2d};
use kryst_precond::Jacobi;
use std::sync::Arc;

fn bench_solvers(c: &mut Criterion) {
    let nx = 40;
    let prob = poisson2d::<f64>(nx, nx);
    let n = prob.a.nrows();
    let jac = Jacobi::new(&prob.a, 1.0);
    let _id = IdentityPrecond::new(n);
    let rhss = paper_rhs_sequence::<f64>(nx, nx);
    let blk = paper_rhs_block::<f64>(nx, nx);
    let opts = SolveOpts {
        rtol: 1e-6,
        restart: 30,
        recycle: 10,
        same_system: true,
        max_iters: 4000,
        ..Default::default()
    };

    let mut g = c.benchmark_group("poisson40_4rhs");
    g.bench_function("gmres_consecutive", |bch| {
        bch.iter(|| {
            for rhs in &rhss {
                let b = DMat::from_col_major(n, 1, rhs.clone());
                let mut x = DMat::zeros(n, 1);
                assert!(gmres::solve(&prob.a, &jac, &b, &mut x, &opts).converged);
            }
        })
    });
    g.bench_function("lgmres_consecutive", |bch| {
        bch.iter(|| {
            for rhs in &rhss {
                let b = DMat::from_col_major(n, 1, rhs.clone());
                let mut x = DMat::zeros(n, 1);
                assert!(lgmres::solve(&prob.a, &jac, &b, &mut x, &opts).converged);
            }
        })
    });
    g.bench_function("gcrodr_consecutive", |bch| {
        bch.iter(|| {
            let mut ctx = SolverContext::new();
            for rhs in &rhss {
                let b = DMat::from_col_major(n, 1, rhs.clone());
                let mut x = DMat::zeros(n, 1);
                assert!(gcrodr::solve(&prob.a, &jac, &b, &mut x, &opts, &mut ctx).converged);
            }
        })
    });
    g.bench_function("block_gmres", |bch| {
        bch.iter(|| {
            let mut x = DMat::zeros(n, 4);
            assert!(gmres::solve(&prob.a, &jac, &blk, &mut x, &opts).converged);
        })
    });
    g.bench_function("block_gcrodr", |bch| {
        bch.iter(|| {
            let mut ctx = SolverContext::new();
            let mut x = DMat::zeros(n, 4);
            assert!(gcrodr::solve(&prob.a, &jac, &blk, &mut x, &opts, &mut ctx).converged);
        })
    });
    g.bench_function("pseudo_block_gmres", |bch| {
        bch.iter(|| {
            let mut x = DMat::zeros(n, 4);
            assert!(
                pseudo::solve(
                    &prob.a,
                    &jac,
                    &blk,
                    &mut x,
                    &opts,
                    PseudoMethod::Gmres,
                    None
                )
                .converged
            );
        })
    });
    g.finish();
}

/// Observability overhead on the hottest solve path: the null recorder must
/// be indistinguishable from no recorder at all, and even a live ring
/// recorder + comm counters should only add noise-level cost.
fn bench_recorder_overhead(c: &mut Criterion) {
    let nx = 40;
    let prob = poisson2d::<f64>(nx, nx);
    let n = prob.a.nrows();
    let jac = Jacobi::new(&prob.a, 1.0);
    let b = DMat::from_col_major(n, 1, paper_rhs_sequence::<f64>(nx, nx)[0].clone());
    let base = SolveOpts {
        rtol: 1e-6,
        restart: 30,
        max_iters: 4000,
        ..Default::default()
    };

    let cases: [(&str, SolveOpts); 3] = [
        ("gmres_no_recorder", base.clone()),
        (
            "gmres_null_recorder",
            SolveOpts {
                recorder: Some(Arc::new(NullRecorder)),
                ..base.clone()
            },
        ),
        (
            "gmres_ring_recorder_with_stats",
            SolveOpts {
                recorder: Some(Arc::new(RingRecorder::new(1 << 14)) as Arc<dyn Recorder>),
                stats: Some(CommStats::new_shared()),
                ..base.clone()
            },
        ),
    ];
    let mut g = c.benchmark_group("recorder_overhead");
    for (name, opts) in cases {
        g.bench_function(name, |bch| {
            bch.iter(|| {
                let mut x = DMat::zeros(n, 1);
                assert!(gmres::solve(&prob.a, &jac, &b, &mut x, &opts).converged);
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4));
    targets = bench_solvers, bench_recorder_overhead
}
criterion_main!(benches);
