//! Transport-layer microbenchmarks: ping-pong latency and butterfly
//! all-reduce time on both backends, gated by `BENCH_transport.json`.
//!
//! Each measurement drives a persistent [`SpmdWorld`] — worker ranks stay
//! alive between samples, so the socket numbers measure the wire, not
//! process spawning. One `iter` call batches [`REPS`] primitive round
//! trips; the checked-in baseline was produced the same way, so the
//! `bench_compare` ratios are like-for-like.
//!
//! The bench binary doubles as its own socket worker: `main` hands control
//! to [`kryst_par::maybe_primitive_worker`] before any group runs, so the
//! re-exec'd children never reach the harness.

use kryst_bench::criterion_group;
use kryst_bench::harness::Criterion;
use kryst_par::{SpmdWorld, TransportKind};
use std::time::Duration;

/// Primitive round trips batched into one timed `iter` call.
const REPS: usize = 16;

fn bench_transport(c: &mut Criterion) {
    let mut g = c.benchmark_group("transport");
    for kind in [TransportKind::Channel, TransportKind::Socket] {
        let world = SpmdWorld::spawn(kind, 2).expect("ping-pong world spawns");
        g.bench_function(format!("pingpong_{}", kind.name()), |b| {
            b.iter(|| world.ping_pong(1, REPS).expect("ping-pong runs"));
        });
        world.shutdown().expect("ping-pong world shuts down");

        for p in [2usize, 4, 8] {
            let world = SpmdWorld::spawn(kind, p).expect("all-reduce world spawns");
            g.bench_function(format!("allreduce_{}_p{p}", kind.name()), |b| {
                b.iter(|| world.all_reduce(8, REPS).expect("all-reduce runs"));
            });
            world.shutdown().expect("all-reduce world shuts down");
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(1));
    targets = bench_transport
}

fn main() {
    kryst_par::maybe_primitive_worker();
    benches();
}
