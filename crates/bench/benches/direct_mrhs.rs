//! Fig. 6 kernel: banded direct solve with p right-hand sides.

use kryst_bench::harness::{BenchmarkId, Criterion, Throughput};
use kryst_bench::{criterion_group, criterion_main};
use kryst_dense::DMat;
use kryst_pde::maxwell::{maxwell3d, MaxwellParams};
use kryst_scalar::Complex;
use kryst_sparse::SparseDirect;

fn bench_direct(c: &mut Criterion) {
    let (prob, _) = maxwell3d(&MaxwellParams::matching_solution(8));
    let n = prob.a.nrows();
    let fac = SparseDirect::factor(&prob.a).expect("nonsingular");
    let mut g = c.benchmark_group("direct_solve_mrhs");
    for p in [1usize, 4, 16, 64] {
        let b = DMat::from_fn(n, p, |i, j| {
            Complex::new(((i + j) % 7) as f64 - 3.0, ((i * 3 + j) % 5) as f64 - 2.0)
        });
        g.throughput(Throughput::Elements((n * p) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |bch, _| {
            bch.iter(|| fac.solve_multi(&b, 8, 1));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_direct
}
criterion_main!(benches);
