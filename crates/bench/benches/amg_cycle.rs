//! AMG setup and V-cycle application cost vs strength threshold — the
//! `-pc_gamg_threshold` trade-off of §IV-B.

use kryst_bench::harness::{BenchmarkId, Criterion};
use kryst_bench::{criterion_group, criterion_main};
use kryst_dense::DMat;
use kryst_par::PrecondOp;
use kryst_pde::poisson::poisson2d;
use kryst_precond::{Amg, AmgOpts, SmootherKind};

fn bench_amg(c: &mut Criterion) {
    let prob = poisson2d::<f64>(64, 32); // anisotropic grid: threshold matters
    let n = prob.a.nrows();
    let r = DMat::from_fn(n, 1, |i, _| ((i % 9) as f64) - 4.0);

    let mut g = c.benchmark_group("amg_setup");
    for thr in [0.0f64, 0.2] {
        g.bench_with_input(BenchmarkId::from_parameter(thr), &thr, |bch, &thr| {
            bch.iter(|| {
                Amg::new(
                    &prob.a,
                    prob.near_nullspace.as_ref(),
                    &AmgOpts {
                        threshold: thr,
                        ..Default::default()
                    },
                )
            });
        });
    }
    g.finish();

    let mut g = c.benchmark_group("amg_vcycle");
    for (name, smoother) in [
        ("chebyshev2", SmootherKind::Chebyshev { degree: 2 }),
        ("gmres3", SmootherKind::Gmres { iters: 3 }),
        (
            "jacobi2",
            SmootherKind::Jacobi {
                omega: 0.67,
                iters: 2,
            },
        ),
    ] {
        let amg = Amg::new(
            &prob.a,
            prob.near_nullspace.as_ref(),
            &AmgOpts {
                smoother,
                ..Default::default()
            },
        );
        g.bench_with_input(BenchmarkId::from_parameter(name), &amg, |bch, amg| {
            bch.iter(|| amg.apply_new(&r));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_amg
}
criterion_main!(benches);
