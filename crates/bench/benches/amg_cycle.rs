//! Preconditioner setup and apply cost — AMG threshold trade-off (§IV-B)
//! plus the multi-RHS apply benchmarks gated by `BENCH_precond.json`:
//! blocked (all p columns per sweep) vs column-at-a-time applies for the
//! AMG V-cycle, level-scheduled ILU(0), and Schwarz/RAS.

use kryst_bench::harness::{BenchmarkId, Criterion};
use kryst_bench::{criterion_group, criterion_main};
use kryst_dense::DMat;
use kryst_par::PrecondOp;
use kryst_pde::elasticity::{elasticity3d, ElasticityOpts};
use kryst_pde::poisson::poisson2d;
use kryst_precond::{Amg, AmgOpts, Ilu0, Schwarz, SchwarzOpts, SchwarzVariant, SmootherKind};
use kryst_sparse::partition::partition_rcb;

const P: usize = 8;

fn pinned_block(n: usize, p: usize) -> DMat<f64> {
    DMat::from_fn(n, p, |i, j| (((i + 3 * j) % 9) as f64) - 4.0)
}

/// Apply a preconditioner one column at a time — the seed per-column path
/// that the blocked kernels are measured against.
fn apply_columnwise<M: PrecondOp<f64>>(m: &M, r: &DMat<f64>, z: &mut DMat<f64>) {
    let n = r.nrows();
    let mut rj = DMat::zeros(n, 1);
    let mut zj = DMat::zeros(n, 1);
    for j in 0..r.ncols() {
        rj.col_mut(0).copy_from_slice(r.col(j));
        m.apply(&rj, &mut zj);
        z.col_mut(j).copy_from_slice(zj.col(0));
    }
}

fn bench_amg(c: &mut Criterion) {
    let prob = poisson2d::<f64>(64, 32); // anisotropic grid: threshold matters
    let n = prob.a.nrows();
    let r = DMat::from_fn(n, 1, |i, _| ((i % 9) as f64) - 4.0);

    let mut g = c.benchmark_group("amg_setup");
    for thr in [0.0f64, 0.2] {
        g.bench_with_input(BenchmarkId::from_parameter(thr), &thr, |bch, &thr| {
            bch.iter(|| {
                Amg::new(
                    &prob.a,
                    prob.near_nullspace.as_ref(),
                    &AmgOpts {
                        threshold: thr,
                        ..Default::default()
                    },
                )
            });
        });
    }
    g.finish();

    let mut g = c.benchmark_group("amg_vcycle");
    for (name, smoother) in [
        ("chebyshev2", SmootherKind::Chebyshev { degree: 2 }),
        ("gmres3", SmootherKind::Gmres { iters: 3 }),
        (
            "jacobi2",
            SmootherKind::Jacobi {
                omega: 0.67,
                iters: 2,
            },
        ),
    ] {
        let amg = Amg::new(
            &prob.a,
            prob.near_nullspace.as_ref(),
            &AmgOpts {
                smoother,
                ..Default::default()
            },
        );
        g.bench_with_input(BenchmarkId::from_parameter(name), &amg, |bch, amg| {
            bch.iter(|| amg.apply_new(&r));
        });
    }
    g.finish();

    // Multi-RHS V-cycle: all p columns streamed per sweep vs p separate
    // single-column cycles (the paper's block-method amortization argument).
    let amg = Amg::new(&prob.a, prob.near_nullspace.as_ref(), &AmgOpts::default());
    let rp = pinned_block(n, P);
    let mut zp = DMat::zeros(n, P);
    let mut g = c.benchmark_group("amg_vcycle_p8");
    g.bench_function("blocked", |bch| bch.iter(|| amg.apply(&rp, &mut zp)));
    g.bench_function("columnwise", |bch| {
        bch.iter(|| apply_columnwise(&amg, &rp, &mut zp))
    });
    g.finish();
}

fn bench_ilu(c: &mut Criterion) {
    // 3-D elasticity: ~81 nonzeros per row gives the level schedule real
    // rows per level, unlike a 5-point stencil.
    let ep = elasticity3d::<f64>(&ElasticityOpts::default());
    let a = &ep.problem.a;
    let n = a.nrows();
    let ilu = Ilu0::new(a).expect("ILU(0) on elasticity");
    let rp = pinned_block(n, P);
    let mut zp = DMat::zeros(n, P);
    let mut g = c.benchmark_group("ilu_apply");
    g.bench_function("levelsched_p8", |bch| bch.iter(|| ilu.apply(&rp, &mut zp)));
    g.bench_function("columnwise_p8", |bch| {
        bch.iter(|| apply_columnwise(&ilu, &rp, &mut zp))
    });
    g.finish();
}

fn bench_schwarz(c: &mut Criterion) {
    let prob = poisson2d::<f64>(64, 32);
    let n = prob.a.nrows();
    let part = partition_rcb(&prob.coords, 8);
    let ras = Schwarz::new(
        &prob.a,
        &part,
        &SchwarzOpts {
            variant: SchwarzVariant::Ras,
            overlap: 2,
            impedance: 0.0,
        },
    );
    let rp = pinned_block(n, P);
    let mut zp = DMat::zeros(n, P);
    let mut g = c.benchmark_group("schwarz_apply");
    g.bench_function("blocked_p8", |bch| bch.iter(|| ras.apply(&rp, &mut zp)));
    g.bench_function("columnwise_p8", |bch| {
        bch.iter(|| apply_columnwise(&ras, &rp, &mut zp))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_amg, bench_ilu, bench_schwarz
}
criterion_main!(benches);
