#![warn(missing_docs)]
//! Simulated distributed runtime for the `kryst` workspace.
//!
//! The paper's experiments ran on up to 8,192 MPI ranks; the Rust MPI
//! ecosystem is thin, so this crate provides the faithful laptop-scale
//! substitute described in `DESIGN.md`:
//!
//! * [`layout::Layout`] — contiguous row distributions over `N` ranks,
//! * [`halo`] — halo-exchange plans derived from the matrix sparsity, giving
//!   exact per-SpMM message and byte counts,
//! * [`comm::CommStats`] — atomic counters every solver kernel reports its
//!   collectives to (the quantities §III-D of the paper reasons about),
//! * [`cost::CostModel`] — an α–β–γ (latency–bandwidth–compute) model that
//!   converts those counts into modeled times for any rank count,
//! * [`op`] — the operator/preconditioner abstraction shared by `kryst-core`
//!   and `kryst-precond`, including the instrumented distributed operator
//!   [`op::DistOp`],
//! * [`spmd`] — a real message-passing mini-executor (threads + channels)
//!   used to validate that the counted communication pattern matches a true
//!   SPMD execution.
//!
//! The arithmetic of a "distributed" run is bit-identical to the sequential
//! sharded execution, so convergence histories are exactly what a real MPI
//! run with the same reduction order would produce.

pub mod comm;
pub mod cost;
pub mod halo;
pub mod layout;
pub mod op;
pub mod report;
pub mod spmd;

pub use comm::{CommInterval, CommSnapshot, CommStats};
pub use cost::{CostModel, ModeledTime};
pub use halo::HaloPlan;
pub use layout::Layout;
pub use op::{ApplyRows, DistOp, IdentityPrecond, LinOp, PrecondOp, PrecondPrecision, ProjectedOp};
pub use report::{
    comm_from_json, comm_to_json, per_rank_comm, phase_report, publish_imbalance, ModeledRow,
    PhaseReport, PhaseRow,
};
pub use spmd::reduce_stages;
