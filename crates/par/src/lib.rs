#![warn(missing_docs)]
//! Simulated distributed runtime for the `kryst` workspace.
//!
//! The paper's experiments ran on up to 8,192 MPI ranks; the Rust MPI
//! ecosystem is thin, so this crate provides the faithful laptop-scale
//! substitute described in `DESIGN.md`:
//!
//! * [`layout::Layout`] — contiguous row distributions over `N` ranks,
//! * [`halo`] — halo-exchange plans derived from the matrix sparsity, giving
//!   exact per-SpMM message and byte counts,
//! * [`comm::CommStats`] — atomic counters every solver kernel reports its
//!   collectives to (the quantities §III-D of the paper reasons about),
//! * [`cost::CostModel`] — an α–β–γ (latency–bandwidth–compute) model that
//!   converts those counts into modeled times for any rank count,
//! * [`op`] — the operator/preconditioner abstraction shared by `kryst-core`
//!   and `kryst-precond`, including the instrumented distributed operator
//!   [`op::DistOp`],
//! * [`transport`] — the [`transport::Transport`] trait with two backends:
//!   the in-process channel mesh (default) and a socket mesh between real OS
//!   worker processes (`KRYST_TRANSPORT=socket`), both reporting wire-level
//!   counters,
//! * [`collective`] — butterfly all-reduce, split-phase and fused variants,
//!   and layout redistribution, written once against the trait,
//! * [`spmd`] — the SPMD runners: closure mode ([`spmd::run_spmd`]) and the
//!   persistent primitive-worker world ([`spmd::SpmdWorld`]) driving the
//!   microbenchmarks and cost-model calibration ([`calibrate`]).
//!
//! The arithmetic of a "distributed" run is bit-identical to the sequential
//! sharded execution — and, because both transport backends execute the
//! identical collective schedule, bit-identical across backends too — so
//! convergence histories are exactly what a real MPI run with the same
//! reduction order would produce.

pub mod calibrate;
pub mod collective;
pub mod comm;
pub mod cost;
pub mod halo;
pub mod layout;
pub mod op;
pub mod report;
pub mod spmd;
pub mod trace;
pub mod transport;

pub use calibrate::Calibration;
pub use comm::{CommInterval, CommSnapshot, CommStats};
pub use cost::{CostModel, ModeledTime};
pub use halo::HaloPlan;
pub use layout::Layout;
pub use op::{ApplyRows, DistOp, IdentityPrecond, LinOp, PrecondOp, PrecondPrecision, ProjectedOp};
pub use report::{
    calibration_table, comm_from_json, comm_to_json, per_rank_comm, phase_report,
    publish_imbalance, publish_wire, validation_table, ModeledRow, PhaseReport, PhaseRow,
    ValidationRow,
};
pub use spmd::{maybe_primitive_worker, reduce_stages, run_spmd, SpmdRun, SpmdWorld};
pub use trace::{gather_timeline, SPLIT_PHASE_BIT};
pub use transport::{ChannelTransport, SocketTransport, Transport, TransportError, TransportKind};
