//! α–β–γ communication/compute cost model.
//!
//! Converts the exact counters of [`crate::CommStats`] into modeled wall
//! times for an arbitrary rank count, so strong-scaling figures (Fig. 7) can
//! be regenerated on a laptop. The model is the textbook one:
//!
//! * a global reduction costs `α_r · stages(P)` where `stages(P)` is what
//!   the butterfly in [`crate::spmd`] actually executes
//!   ([`crate::spmd::reduce_stages`]: `log₂ P` for powers of two,
//!   `⌊log₂ P⌋ + 2` otherwise) — the charge and the executor are reconciled
//!   by test,
//! * a point-to-point message costs `α_m + bytes / β`,
//! * local work costs `flops / (γ · P)` (perfectly parallel local kernels —
//!   appropriate for the memory-bound SpMM and subdomain solves),
//! * halo messages **overlap** interior compute: the portion of the flops
//!   recorded as overlappable (interior rows of a split SpMM) hides the p2p
//!   time, so the model charges `max(interior_compute, halo_message)`
//!   instead of their sum — only the *exposed* remainder of the p2p term
//!   shows up in the total,
//! * split-phase (pipelined) reductions likewise overlap the local work
//!   issued between `ireduce_start` and `finish`: the model charges
//!   `max(overlapped_reduction, overlapped_compute)`, i.e. only the portion
//!   of the in-flight reductions' latency that exceeds the hiding flops is
//!   *exposed* and added to the synchronous reduction term. Both
//!   synchronous and overlapped reductions use the same butterfly-stage
//!   accounting (`reduce_stages`), for the classic and fused paths alike.
//!
//! Default constants approximate the paper's Curie system (Sandy Bridge +
//! InfiniBand QDR); they only set the absolute scale, the *shape* of the
//! curves comes from the measured counts.

use crate::comm::CommSnapshot;
use crate::spmd::reduce_stages;

/// Machine constants for the model.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Per-stage reduction latency (seconds).
    pub alpha_reduce: f64,
    /// Point-to-point message latency (seconds).
    pub alpha_msg: f64,
    /// Link bandwidth (bytes/second).
    pub beta: f64,
    /// Per-rank effective compute rate (flops/second).
    pub gamma: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::curie_like()
    }
}

impl CostModel {
    /// Constants approximating Curie (2.7 GHz Sandy Bridge, IB QDR).
    pub fn curie_like() -> Self {
        Self {
            alpha_reduce: 1.5e-6,
            alpha_msg: 1.2e-6,
            beta: 3.2e9,
            gamma: 4.0e9,
        }
    }

    /// Constants *measured* on an actual transport backend by the
    /// calibration pass ([`crate::calibrate::Calibration::measure`]) —
    /// replaces every assumed default with wire reality.
    pub fn calibrated(c: &crate::calibrate::Calibration) -> Self {
        Self {
            alpha_reduce: c.alpha_reduce,
            alpha_msg: c.alpha_msg,
            beta: c.beta,
            gamma: c.gamma,
        }
    }

    /// Model the time of the work captured in `snap` on `nranks` ranks.
    ///
    /// `p2p_messages`/`p2p_bytes` in the snapshot are totals over ranks; the
    /// per-rank halo traffic is the total divided by `nranks` (messages
    /// between distinct pairs proceed concurrently). Halo time is charged as
    /// `max(interior_compute, halo_message)`: the interior compute recorded
    /// in `overlap_flops` hides in-flight messages, so only the exposed
    /// remainder of the raw p2p term is reported.
    pub fn time(&self, snap: &CommSnapshot, nranks: usize) -> ModeledTime {
        let p = nranks.max(1) as f64;
        let stages = f64::from(reduce_stages(nranks.max(1))).max(1.0);
        // Synchronous reductions: always exposed. Classic and fused paths
        // differ only in the counted events/bytes, never in the per-event
        // stage charge.
        let reduction_sync = snap.reductions as f64 * self.alpha_reduce * stages
            + snap.reduction_bytes as f64 * stages / self.beta;
        // Split-phase reductions: same butterfly charge, but the local work
        // issued while they are in flight hides them — charge
        // max(reduction, overlapped_compute), i.e. only the exposed excess.
        let reduction_over_raw = snap.overlapped_reductions as f64 * self.alpha_reduce * stages
            + snap.overlapped_reduction_bytes as f64 * stages / self.beta;
        let pipeline_compute =
            snap.reduction_overlap_flops.min(snap.flops) as f64 / (self.gamma * p);
        let reduction_hidden = reduction_over_raw.min(pipeline_compute);
        let reduction = reduction_sync + (reduction_over_raw - reduction_hidden);
        let p2p_raw = (snap.p2p_messages as f64 / p) * self.alpha_msg
            + (snap.p2p_bytes as f64 / p) / self.beta;
        let compute = snap.flops as f64 / (self.gamma * p);
        let hidden = snap.overlap_flops.min(snap.flops) as f64 / (self.gamma * p);
        let p2p = (p2p_raw - hidden).max(0.0);
        ModeledTime {
            compute,
            reduction,
            p2p,
            reduction_hidden,
        }
    }
}

/// Decomposed modeled time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeledTime {
    /// Local compute component (seconds).
    pub compute: f64,
    /// *Exposed* global-reduction component (seconds): synchronous
    /// reductions plus the portion of split-phase reductions that exceeds
    /// the local work hiding them.
    pub reduction: f64,
    /// Point-to-point component (seconds).
    pub p2p: f64,
    /// Informational: split-phase reduction latency hidden behind pipelined
    /// local work (seconds). Not part of [`ModeledTime::total`] — the hiding
    /// compute is already charged in `compute`, so the total realizes
    /// `max(reduction, overlapped_compute)` for the pipelined stages.
    pub reduction_hidden: f64,
}

impl ModeledTime {
    /// Total modeled seconds (exposed terms only).
    pub fn total(&self) -> f64 {
        self.compute + self.reduction + self.p2p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommSnapshot;

    fn snap() -> CommSnapshot {
        CommSnapshot {
            reductions: 100,
            reduction_bytes: 100 * 8,
            fused_parts: 0,
            p2p_messages: 1024,
            p2p_bytes: 1024 * 4096,
            flops: 1_000_000_000,
            overlap_flops: 0,
            ..Default::default()
        }
    }

    #[test]
    fn compute_shrinks_with_ranks_reductions_grow() {
        let m = CostModel::default();
        let t64 = m.time(&snap(), 64);
        let t1024 = m.time(&snap(), 1024);
        assert!(t1024.compute < t64.compute);
        assert!(t1024.reduction > t64.reduction);
    }

    #[test]
    fn strong_scaling_saturates() {
        // With fixed work, speedup must be sublinear and eventually flat:
        // the reduction term becomes the floor.
        let m = CostModel::default();
        let t1 = m.time(&snap(), 1).total();
        let t256 = m.time(&snap(), 256).total();
        let t8192 = m.time(&snap(), 8192).total();
        let s256 = t1 / t256;
        let s8192 = t1 / t8192;
        assert!(s256 > 1.0);
        assert!(s8192 / s256 < 32.0, "speedup must not stay linear");
    }

    #[test]
    fn total_is_sum() {
        let m = CostModel::default();
        let t = m.time(&snap(), 16);
        assert!((t.total() - (t.compute + t.reduction + t.p2p)).abs() < 1e-15);
    }

    #[test]
    fn overlap_hides_p2p_behind_interior_compute() {
        let m = CostModel::default();
        let plain = snap();
        let mut overlapped = plain;
        overlapped.overlap_flops = plain.flops; // all compute overlappable
        for nranks in [16, 512, 8192] {
            let t_plain = m.time(&plain, nranks);
            let t_over = m.time(&overlapped, nranks);
            // Same compute and reduction; p2p charged as
            // max(interior, halo) − interior ≤ raw p2p.
            assert_eq!(t_over.compute, t_plain.compute);
            assert_eq!(t_over.reduction, t_plain.reduction);
            assert!(t_over.p2p <= t_plain.p2p, "P = {nranks}");
            let interior = overlapped.flops as f64 / (m.gamma * nranks as f64);
            let expect = (t_plain.p2p - interior).max(0.0);
            assert!((t_over.p2p - expect).abs() < 1e-18, "P = {nranks}");
            // Total equals max(interior, halo) + (compute − interior) + red.
            let combined =
                t_plain.p2p.max(interior) + (t_plain.compute - interior) + t_plain.reduction;
            assert!((t_over.total() - combined).abs() < 1e-15, "P = {nranks}");
        }
    }

    #[test]
    fn reduction_stages_match_the_executor() {
        // The α_r charge uses the butterfly's actual stage count, including
        // the non-power-of-two fold/unfold penalty.
        let m = CostModel::default();
        let s = CommSnapshot {
            reductions: 1,
            ..Default::default()
        };
        for p in [2usize, 3, 4, 7, 8, 16, 512, 8192] {
            let t = m.time(&s, p);
            let expect = f64::from(crate::spmd::reduce_stages(p)) * m.alpha_reduce;
            assert!((t.reduction - expect).abs() < 1e-18, "P = {p}");
        }
    }

    #[test]
    fn pipelined_reductions_hide_behind_overlap_flops() {
        let m = CostModel::default();
        // Same reduction traffic, once synchronous and once split-phase with
        // ample hiding work.
        let sync = CommSnapshot {
            reductions: 50,
            reduction_bytes: 50 * 96,
            flops: 10_000_000_000,
            ..Default::default()
        };
        let piped = CommSnapshot {
            overlapped_reductions: 50,
            overlapped_reduction_bytes: 50 * 96,
            overlapped_parts: 100,
            flops: 10_000_000_000,
            reduction_overlap_flops: 10_000_000_000,
            ..Default::default()
        };
        for p in [512usize, 1024, 8192] {
            let ts = m.time(&sync, p);
            let tp = m.time(&piped, p);
            assert_eq!(ts.compute, tp.compute, "P = {p}");
            assert!(tp.reduction <= ts.reduction, "P = {p}");
            // Hidden + exposed reconstructs the raw (synchronous) charge.
            assert!(
                (tp.reduction + tp.reduction_hidden - ts.reduction).abs() < 1e-15,
                "P = {p}"
            );
            // total() realizes max(reduction, overlapped_compute): with the
            // hiding compute already in `compute`, the pipelined total never
            // exceeds the synchronous one.
            assert!(tp.total() <= ts.total() + 1e-18, "P = {p}");
        }
        // With zero hiding flops nothing is hidden: split-phase degrades to
        // the synchronous charge exactly.
        let mut bare = piped;
        bare.reduction_overlap_flops = 0;
        for p in [512usize, 8192] {
            let tb = m.time(&bare, p);
            let ts = m.time(&sync, p);
            assert!((tb.reduction - ts.reduction).abs() < 1e-15, "P = {p}");
            assert_eq!(tb.reduction_hidden, 0.0, "P = {p}");
        }
    }

    #[test]
    fn classic_and_fused_share_per_event_stage_accounting() {
        // Satellite audit: the reduction charge is per *recorded event*
        // (α_r·stages + bytes·stages/β) regardless of path. Classic's 3
        // separate products and fused's 1 batched product carrying the same
        // payload must differ only by the event count — the per-event stage
        // factor is identical, matching the §III-D conformance counts.
        let m = CostModel::default();
        for p in [3usize, 7, 512, 4096, 8192] {
            let stages = f64::from(crate::spmd::reduce_stages(p));
            let one_event = CommSnapshot {
                reductions: 1,
                reduction_bytes: 240,
                ..Default::default()
            };
            let classic = CommSnapshot {
                reductions: 3,
                reduction_bytes: 3 * 240,
                ..Default::default()
            };
            let t1 = m.time(&one_event, p).reduction;
            let t3 = m.time(&classic, p).reduction;
            let expect1 = stages * (m.alpha_reduce + 240.0 / m.beta);
            assert!((t1 - expect1).abs() < 1e-15, "P = {p}");
            assert!(
                (t3 - 3.0 * t1).abs() < 1e-15,
                "P = {p}: classic is 3 events"
            );
        }
    }

    #[test]
    fn fused_reductions_cut_latency() {
        // One fused reduction carrying the same bytes as three separate ones
        // must model ≥2× less reduction latency at scale.
        let m = CostModel::default();
        let classic = CommSnapshot {
            reductions: 3,
            reduction_bytes: 3 * 240,
            ..Default::default()
        };
        let fused = CommSnapshot {
            reductions: 1,
            reduction_bytes: 3 * 240,
            fused_parts: 3,
            ..Default::default()
        };
        for p in [512usize, 1024, 2048, 4096, 8192] {
            let tc = m.time(&classic, p).reduction;
            let tf = m.time(&fused, p).reduction;
            assert!(tc / tf >= 2.0, "P = {p}: ratio {}", tc / tf);
        }
    }
}
