//! α–β–γ communication/compute cost model.
//!
//! Converts the exact counters of [`crate::CommStats`] into modeled wall
//! times for an arbitrary rank count, so strong-scaling figures (Fig. 7) can
//! be regenerated on a laptop. The model is the textbook one:
//!
//! * a global reduction costs `α_r · ⌈log₂ P⌉`,
//! * a point-to-point message costs `α_m + bytes / β`,
//! * local work costs `flops / (γ · P)` (perfectly parallel local kernels —
//!   appropriate for the memory-bound SpMM and subdomain solves).
//!
//! Default constants approximate the paper's Curie system (Sandy Bridge +
//! InfiniBand QDR); they only set the absolute scale, the *shape* of the
//! curves comes from the measured counts.

use crate::comm::CommSnapshot;

/// Machine constants for the model.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Per-stage reduction latency (seconds).
    pub alpha_reduce: f64,
    /// Point-to-point message latency (seconds).
    pub alpha_msg: f64,
    /// Link bandwidth (bytes/second).
    pub beta: f64,
    /// Per-rank effective compute rate (flops/second).
    pub gamma: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::curie_like()
    }
}

impl CostModel {
    /// Constants approximating Curie (2.7 GHz Sandy Bridge, IB QDR).
    pub fn curie_like() -> Self {
        Self {
            alpha_reduce: 1.5e-6,
            alpha_msg: 1.2e-6,
            beta: 3.2e9,
            gamma: 4.0e9,
        }
    }

    /// Model the time of the work captured in `snap` on `nranks` ranks.
    ///
    /// `p2p_messages`/`p2p_bytes` in the snapshot are totals over ranks; the
    /// per-rank halo traffic is the total divided by `nranks` (messages
    /// between distinct pairs proceed concurrently).
    pub fn time(&self, snap: &CommSnapshot, nranks: usize) -> ModeledTime {
        let p = nranks.max(1) as f64;
        let stages = (nranks.max(1) as f64).log2().ceil().max(1.0);
        let reduction = snap.reductions as f64 * self.alpha_reduce * stages
            + snap.reduction_bytes as f64 * stages / self.beta;
        let p2p = (snap.p2p_messages as f64 / p) * self.alpha_msg
            + (snap.p2p_bytes as f64 / p) / self.beta;
        let compute = snap.flops as f64 / (self.gamma * p);
        ModeledTime {
            compute,
            reduction,
            p2p,
        }
    }
}

/// Decomposed modeled time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeledTime {
    /// Local compute component (seconds).
    pub compute: f64,
    /// Global-reduction component (seconds).
    pub reduction: f64,
    /// Point-to-point component (seconds).
    pub p2p: f64,
}

impl ModeledTime {
    /// Total modeled seconds.
    pub fn total(&self) -> f64 {
        self.compute + self.reduction + self.p2p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommSnapshot;

    fn snap() -> CommSnapshot {
        CommSnapshot {
            reductions: 100,
            reduction_bytes: 100 * 8,
            p2p_messages: 1024,
            p2p_bytes: 1024 * 4096,
            flops: 1_000_000_000,
        }
    }

    #[test]
    fn compute_shrinks_with_ranks_reductions_grow() {
        let m = CostModel::default();
        let t64 = m.time(&snap(), 64);
        let t1024 = m.time(&snap(), 1024);
        assert!(t1024.compute < t64.compute);
        assert!(t1024.reduction > t64.reduction);
    }

    #[test]
    fn strong_scaling_saturates() {
        // With fixed work, speedup must be sublinear and eventually flat:
        // the reduction term becomes the floor.
        let m = CostModel::default();
        let t1 = m.time(&snap(), 1).total();
        let t256 = m.time(&snap(), 256).total();
        let t8192 = m.time(&snap(), 8192).total();
        let s256 = t1 / t256;
        let s8192 = t1 / t8192;
        assert!(s256 > 1.0);
        assert!(s8192 / s256 < 32.0, "speedup must not stay linear");
    }

    #[test]
    fn total_is_sum() {
        let m = CostModel::default();
        let t = m.time(&snap(), 16);
        assert!((t.total() - (t.compute + t.reduction + t.p2p)).abs() < 1e-15);
    }
}
