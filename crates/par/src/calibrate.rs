//! Measured machine constants for the cost model.
//!
//! The α–β–γ model in [`crate::cost`] ships with *assumed* Curie-like
//! constants; this module measures them on an actual [`SpmdWorld`] — either
//! backend — with the two textbook microbenchmarks:
//!
//! * **ping-pong**: a 1-double round trip gives the message latency
//!   (`alpha_msg` = RTT/2); the *extra* time of a large round trip over the
//!   small one gives the bandwidth (`beta` = extra bytes / extra time);
//! * **all-reduce**: a small butterfly all-reduce divided by its stage count
//!   ([`crate::spmd::reduce_stages`]) gives the per-stage reduction latency
//!   (`alpha_reduce`);
//!
//! plus a local daxpy sweep for the compute rate `gamma`. Feed the result to
//! [`CostModel::calibrated`](crate::cost::CostModel::calibrated) and the
//! strong-scaling projections are anchored to wire reality instead of
//! assumptions — the measured-vs-modeled table `kryst_prof` prints.

use crate::spmd::{reduce_stages, SpmdWorld};
use crate::transport::TransportError;
use kryst_obs::json::JsonValue;

/// Doubles in the large ping-pong payload (512 KiB: bandwidth-dominated).
const LARGE_LEN: usize = 65_536;

/// Measured machine constants for one transport backend.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Backend the constants were measured on (`"channel"` / `"socket"`).
    pub backend: String,
    /// World size of the measuring run.
    pub nranks: usize,
    /// Point-to-point message latency (seconds): half the small-message RTT.
    pub alpha_msg: f64,
    /// Per-stage reduction latency (seconds): small all-reduce time divided
    /// by its butterfly stage count.
    pub alpha_reduce: f64,
    /// Link bandwidth (bytes/second) from the large-vs-small ping-pong
    /// difference.
    pub beta: f64,
    /// Local compute rate (flops/second) from a daxpy sweep.
    pub gamma: f64,
}

fn positive_or(v: f64, fallback: f64) -> f64 {
    if v.is_finite() && v > 0.0 {
        v
    } else {
        fallback
    }
}

impl Calibration {
    /// Run the microbenchmarks on `world` (`reps` timed repetitions each,
    /// after a short warmup) and distill the constants. Measurements that
    /// come out non-positive (clock granularity on a very fast backend) fall
    /// back to the Curie-like defaults so the resulting model is always
    /// usable.
    pub fn measure(world: &SpmdWorld, reps: usize) -> Result<Self, TransportError> {
        let reps = reps.max(1);
        let defaults = crate::cost::CostModel::curie_like();

        // Warmup: touch every code path once so allocator and socket
        // buffers are primed before anything is timed.
        world.ping_pong(1, 4)?;
        world.ping_pong(LARGE_LEN, 2)?;
        world.all_reduce(8, 4)?;

        let rtt_small = world.ping_pong(1, reps)?.as_secs_f64() / reps as f64;
        let rtt_large = world.ping_pong(LARGE_LEN, reps)?.as_secs_f64() / reps as f64;
        let alpha_msg = positive_or(rtt_small / 2.0, defaults.alpha_msg);
        // A round trip moves the payload twice; only the excess over the
        // small RTT is bandwidth.
        let beta = positive_or(
            (2 * LARGE_LEN * 8) as f64 / (rtt_large - rtt_small),
            defaults.beta,
        );

        let stages = f64::from(reduce_stages(world.nranks())).max(1.0);
        let t_reduce = world.all_reduce(8, reps)?.as_secs_f64() / reps as f64;
        let alpha_reduce = positive_or(t_reduce / stages, defaults.alpha_reduce);

        let gamma = positive_or(measure_gamma(), defaults.gamma);

        Ok(Calibration {
            backend: world.kind().name().to_string(),
            nranks: world.nranks(),
            alpha_msg,
            alpha_reduce,
            beta,
            gamma,
        })
    }

    /// The calibration as a [`JsonValue`] object (for embedding in larger
    /// documents).
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("backend", self.backend.as_str().into()),
            ("nranks", self.nranks.into()),
            ("alpha_msg", self.alpha_msg.into()),
            ("alpha_reduce", self.alpha_reduce.into()),
            ("beta", self.beta.into()),
            ("gamma", self.gamma.into()),
        ])
    }

    /// Serialize as a single-line JSON object.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Parse a [`Calibration::to_json`] document. `None` on malformed input.
    pub fn from_json(src: &str) -> Option<Self> {
        let v = JsonValue::parse(src).ok()?;
        Some(Calibration {
            backend: v.get("backend")?.as_str()?.to_string(),
            nranks: v.get("nranks")?.as_usize()?,
            alpha_msg: v.get("alpha_msg")?.as_f64()?,
            alpha_reduce: v.get("alpha_reduce")?.as_f64()?,
            beta: v.get("beta")?.as_f64()?,
            gamma: v.get("gamma")?.as_f64()?,
        })
    }
}

/// Local compute rate from a daxpy sweep over an L2-busting vector.
fn measure_gamma() -> f64 {
    let n = 1 << 20;
    let x: Vec<f64> = (0..n).map(|i| (i % 17) as f64 * 0.25).collect();
    let mut y = vec![1.0f64; n];
    // Warmup pass.
    for (yi, xi) in y.iter_mut().zip(&x) {
        *yi += 1.000001 * *xi;
    }
    let passes = 8;
    let t0 = std::time::Instant::now();
    for k in 0..passes {
        let a = 1.0 + (k as f64 + 1.0) * 1e-9;
        for (yi, xi) in y.iter_mut().zip(&x) {
            *yi += a * *xi;
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    std::hint::black_box(&y);
    (2 * n * passes) as f64 / secs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::TransportKind;

    #[test]
    fn json_round_trips() {
        let c = Calibration {
            backend: "socket".into(),
            nranks: 4,
            alpha_msg: 1.25e-6,
            alpha_reduce: 2.5e-6,
            beta: 3.1e9,
            gamma: 7.2e9,
        };
        assert_eq!(Calibration::from_json(&c.to_json()), Some(c));
        assert_eq!(Calibration::from_json("{\"backend\":\"x\"}"), None);
    }

    #[test]
    fn channel_world_measures_positive_finite_constants() {
        let world = SpmdWorld::spawn(TransportKind::Channel, 2).expect("world spawns");
        let c = Calibration::measure(&world, 4).expect("calibration runs");
        world.shutdown().expect("clean shutdown");
        for (name, v) in [
            ("alpha_msg", c.alpha_msg),
            ("alpha_reduce", c.alpha_reduce),
            ("beta", c.beta),
            ("gamma", c.gamma),
        ] {
            assert!(v.is_finite() && v > 0.0, "{name} = {v}");
        }
        assert_eq!(c.backend, "channel");
        assert_eq!(c.nranks, 2);
    }
}
