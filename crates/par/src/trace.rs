//! Cross-rank timeline gather and collective span instrumentation.
//!
//! The recording side lives in `kryst_obs::span` (bounded per-rank rings,
//! local + logical clocks); this module supplies the two pieces that need a
//! [`Transport`]:
//!
//! * [`edge_begin`]/[`edge_end`] — open and close a *collective-edge* span
//!   around a collective call site, attaching the wire counters the
//!   transport measured inside the span (payload bytes and messages this
//!   rank actually sent). One relaxed load and no clock read when tracing is
//!   disabled, so solver results stay bit-identical on/off.
//! * [`gather_timeline`] — at solve end (or on demand), every rank drains
//!   its ring and ships it to rank 0 **over the transport's control plane**
//!   (`send_ctl`/`recv_ctl`, excluded from wire counters so the gather never
//!   perturbs the measured traffic); rank 0 merges the streams into one
//!   [`Timeline`]. A dead peer becomes an entry in `Timeline::missing` — a
//!   partial timeline, never a panic.
//!
//! If `KRYST_TRACE_TIMELINE=path` is set, rank 0 also writes the merged
//! timeline as Chrome-trace JSON (one track per rank, flow events linking
//! matching collective spans) to `path` as part of the gather.

use crate::transport::{Transport, TransportError};
use kryst_obs::span::{self, OpenSpan, TraceKind};
use kryst_obs::timeline::{RankStream, Timeline};
use kryst_obs::WireSnapshot;

/// `detail` bit marking a [`TraceKind::Reduction`] span as split-phase
/// (started by `ireduce_start`, finished later); the low 32 bits remain the
/// butterfly stage count.
pub const SPLIT_PHASE_BIT: u64 = 1 << 32;

/// An open collective-edge span plus the wire counters at entry; `None`
/// when tracing is disabled.
pub type OpenEdge = Option<(OpenSpan, WireSnapshot)>;

/// Open a collective-edge span (bumps this rank's logical clock) and
/// snapshot the endpoint's wire counters. Returns `None` — after one
/// relaxed load, with no clock read — when tracing is disabled.
#[inline]
pub fn edge_begin<T: Transport + ?Sized>(t: &T, kind: TraceKind) -> OpenEdge {
    let open = span::begin_edge(kind)?;
    Some((open, t.wire().snapshot()))
}

/// Close a collective-edge span, recording the payload bytes and messages
/// this rank put on the wire since [`edge_begin`]. No-op for `None`.
#[inline]
pub fn edge_end<T: Transport + ?Sized>(t: &T, open: OpenEdge, detail: u64) {
    let Some((open, at_entry)) = open else { return };
    let delta = t.wire().snapshot().since(&at_entry);
    span::end(Some(open), delta.bytes_sent, delta.msgs_sent, detail);
}

/// Gather every rank's drained span ring onto rank 0 and merge them into a
/// [`Timeline`]. Collective over the transport's control plane: every rank
/// must call it at the same point. Non-root ranks return `Ok(None)`; rank 0
/// returns the merged (possibly partial) timeline and, when
/// `KRYST_TRACE_TIMELINE` is set, writes the Chrome-trace export.
///
/// Dead peers are tolerated on the root: a failed control receive (or a
/// malformed frame) records the rank in `Timeline::missing` instead of
/// propagating the error.
pub fn gather_timeline<T: Transport + ?Sized>(t: &T) -> Result<Option<Timeline>, TransportError> {
    let (spans, dropped) = span::drain();
    let rank = t.rank();
    let nranks = t.nranks();
    let stream = RankStream {
        rank,
        dropped,
        spans,
    };
    if rank != 0 {
        t.send_ctl(0, &stream.encode())?;
        return Ok(None);
    }
    let mut streams = vec![stream];
    let mut missing = Vec::new();
    let mut buf = Vec::new();
    for r in 1..nranks {
        match t.recv_ctl(r, &mut buf) {
            Ok(()) => match RankStream::decode(&buf) {
                Some(s) if s.rank == r => streams.push(s),
                _ => missing.push(r),
            },
            Err(_) => missing.push(r),
        }
    }
    let tl = Timeline::merge(nranks, streams, missing);
    maybe_export(&tl);
    Ok(Some(tl))
}

/// Write `tl` as Chrome-trace JSON to `$KRYST_TRACE_TIMELINE` if that is
/// set (best effort — an unwritable path must not fail the solve).
pub fn maybe_export(tl: &Timeline) {
    if let Ok(path) = std::env::var("KRYST_TRACE_TIMELINE") {
        if !path.is_empty() {
            if let Err(e) = std::fs::write(&path, kryst_obs::chrome_trace(tl)) {
                eprintln!("kryst: could not write trace timeline to {path}: {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::all_reduce_sum;
    use crate::spmd::run_spmd;
    use crate::transport::TransportKind;

    // The trace flag is process-global; serialize the tests that flip it.
    fn with_tracing<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        span::set_trace_enabled(true);
        let r = f();
        span::set_trace_enabled(false);
        r
    }

    #[test]
    fn gather_merges_all_rank_streams() {
        with_tracing(|| {
            let p = 4;
            let run = run_spmd(TransportKind::Channel, p, |t| {
                let mut local = vec![t.rank() as f64];
                let mut scratch = Vec::new();
                all_reduce_sum(t, &mut local, &mut scratch)?;
                {
                    let _g = span::traced(TraceKind::PrecondApply);
                    std::hint::black_box(local[0] * 2.0);
                }
                let tl = gather_timeline(t)?;
                match tl {
                    Some(tl) => Ok(tl.encode()),
                    None => Ok(Vec::new()),
                }
            })
            .expect("traced run succeeds");
            let tl = Timeline::decode(&run.results[0]).expect("rank 0 returns a timeline");
            assert_eq!(tl.nranks, p);
            assert!(tl.missing.is_empty());
            assert_eq!(tl.streams.len(), p);
            // Every rank recorded the same collective (seq 0) plus one local
            // span.
            let groups = tl.collectives();
            assert_eq!(groups.len(), 1);
            assert_eq!(groups[0].members.len(), p);
            assert_eq!(groups[0].kind, TraceKind::Reduction);
            for s in &tl.streams {
                assert_eq!(s.spans.len(), 2);
                assert_eq!(s.spans[1].kind, TraceKind::PrecondApply);
            }
        });
    }

    #[test]
    fn gather_tolerates_a_dead_rank() {
        with_tracing(|| {
            let p = 3;
            let run = run_spmd(TransportKind::Channel, p, |t| {
                // Rank 1 dies before the gather: records a local span, then
                // returns without participating. Survivors use only local
                // spans (a collective would hang on the dead peer).
                {
                    let _g = span::traced(TraceKind::PrecondApply);
                    std::hint::black_box(t.rank());
                }
                if t.rank() == 1 {
                    return Ok(Vec::new());
                }
                let tl = gather_timeline(t)?;
                match tl {
                    Some(tl) => Ok(tl.encode()),
                    None => Ok(Vec::new()),
                }
            })
            .expect("run survives the dead rank");
            let tl = Timeline::decode(&run.results[0]).expect("partial timeline");
            assert_eq!(tl.missing, vec![1]);
            assert_eq!(tl.streams.len(), 2);
            assert_eq!(tl.stream(0).unwrap().spans.len(), 1);
            assert_eq!(tl.stream(2).unwrap().spans.len(), 1);
        });
    }

    #[test]
    fn edge_spans_carry_wire_deltas() {
        with_tracing(|| {
            let p = 2;
            let run = run_spmd(TransportKind::Channel, p, |t| {
                let mut local = vec![1.0, 2.0, 3.0];
                let mut scratch = Vec::new();
                all_reduce_sum(t, &mut local, &mut scratch)?;
                let tl = gather_timeline(t)?;
                match tl {
                    Some(tl) => Ok(tl.encode()),
                    None => Ok(Vec::new()),
                }
            })
            .expect("run succeeds");
            let tl = Timeline::decode(&run.results[0]).unwrap();
            for s in &tl.streams {
                let sp = &s.spans[0];
                assert_eq!(sp.kind, TraceKind::Reduction);
                // P = 2 butterfly: each rank sends one 3-double message.
                assert_eq!(sp.msgs, 1);
                assert_eq!(sp.bytes, 24);
                assert_eq!(sp.detail, 1); // one stage
            }
        });
    }

    #[test]
    fn disabled_tracing_gathers_empty_streams() {
        span::set_trace_enabled(false);
        let run = run_spmd(TransportKind::Channel, 2, |t| {
            let tl = gather_timeline(t)?;
            match tl {
                Some(tl) => Ok(tl.encode()),
                None => Ok(Vec::new()),
            }
        })
        .expect("run succeeds");
        let tl = Timeline::decode(&run.results[0]).unwrap();
        assert!(tl.streams.iter().all(|s| s.spans.is_empty()));
    }
}
