//! Halo-exchange plans derived from matrix sparsity.
//!
//! For a block-row distributed sparse matrix, each SpMV/SpMM requires every
//! rank to receive the off-rank vector entries its rows reference. This
//! module computes the exact communication pattern — which pairs of ranks
//! exchange, and how many entries — so the instrumented operator can report
//! exact message/byte counts to the cost model.

#![allow(clippy::needless_range_loop)] // index loops mirror the BLAS/LAPACK reference forms

use crate::transport::{Transport, TransportError};
use crate::Layout;
use kryst_scalar::Scalar;
use kryst_sparse::Csr;

/// Communication plan for one distributed operator.
#[derive(Debug, Clone)]
pub struct HaloPlan {
    /// Per rank: sorted list of (neighbor rank, number of entries received).
    pub recv: Vec<Vec<(usize, usize)>>,
    /// Total messages per exchange (sum of neighbor counts over ranks).
    pub messages_per_exchange: usize,
    /// Total scalar entries moved per exchange (one vector).
    pub entries_per_exchange: usize,
}

impl HaloPlan {
    /// Build the plan for `a` distributed by `layout`.
    pub fn build<S: Scalar>(a: &Csr<S>, layout: &Layout) -> Self {
        let nranks = layout.nranks();
        let mut recv: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nranks];
        let mut messages = 0usize;
        let mut entries = 0usize;
        for r in 0..nranks {
            // Collect off-rank columns referenced by rank r's rows.
            let mut ghost: Vec<usize> = Vec::new();
            let range = layout.range(r);
            for i in range.clone() {
                for &j in a.row_indices(i) {
                    if !range.contains(&j) {
                        ghost.push(j);
                    }
                }
            }
            ghost.sort_unstable();
            ghost.dedup();
            // Group by owner.
            let mut k = 0;
            while k < ghost.len() {
                let owner = layout.rank_of(ghost[k]);
                let mut cnt = 0;
                while k < ghost.len() && layout.rank_of(ghost[k]) == owner {
                    cnt += 1;
                    k += 1;
                }
                recv[r].push((owner, cnt));
                messages += 1;
                entries += cnt;
            }
        }
        Self {
            recv,
            messages_per_exchange: messages,
            entries_per_exchange: entries,
        }
    }

    /// Bytes moved by one exchange of a `p`-wide multivector with
    /// `bytes_per_scalar`-byte entries.
    pub fn bytes_per_exchange(&self, p: usize, bytes_per_scalar: usize) -> usize {
        self.entries_per_exchange * p * bytes_per_scalar
    }

    /// Maximum number of neighbors over all ranks (network contention proxy).
    pub fn max_neighbors(&self) -> usize {
        self.recv.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Execute one exchange of this plan over a [`Transport`], as the
    /// calling endpoint's rank: post every outgoing message (the plan is
    /// receive-oriented, so rank `r` sends to each rank `d` whose `recv[d]`
    /// lists `r` as an owner), then drain the incoming ones. Payloads are
    /// synthetic (`fill`, `cols` entries per ghost row) of exactly the sizes
    /// a real multivector exchange would move — this is the *measured* side
    /// of the plan's modeled message/byte counts. Returns the number of
    /// scalar entries received.
    pub fn execute<T: Transport + ?Sized>(
        &self,
        t: &T,
        cols: usize,
        fill: f64,
    ) -> Result<usize, TransportError> {
        let _g = kryst_obs::profile(kryst_obs::Phase::Halo);
        let r = t.rank();
        if t.nranks() != self.recv.len() {
            return Err(TransportError::Protocol {
                detail: format!(
                    "halo plan spans {} ranks, transport world is {}",
                    self.recv.len(),
                    t.nranks()
                ),
            });
        }
        let trace = crate::trace::edge_begin(t, kryst_obs::span::TraceKind::Halo);
        // Sends first (buffered on every backend — deadlock-free).
        for (d, wants) in self.recv.iter().enumerate() {
            for &(owner, entries) in wants {
                if owner == r {
                    t.send(d, &vec![fill; entries * cols])?;
                }
            }
        }
        let mut got = 0;
        let mut buf = Vec::new();
        for &(owner, entries) in &self.recv[r] {
            t.recv_into(owner, &mut buf)?;
            if buf.len() != entries * cols {
                return Err(TransportError::Protocol {
                    detail: format!(
                        "halo exchange: rank {r} expected {} entries from {owner}, got {}",
                        entries * cols,
                        buf.len()
                    ),
                });
            }
            got += buf.len();
        }
        crate::trace::edge_end(t, trace, got as u64);
        Ok(got)
    }

    /// Encode the plan as a flat `f64` frame so a primitive worker can
    /// rebuild it: `[nranks, then per rank: neighbor count followed by
    /// (owner, entries) pairs]`.
    pub fn encode(&self) -> Vec<f64> {
        let mut out = vec![self.recv.len() as f64];
        for wants in &self.recv {
            out.push(wants.len() as f64);
            for &(owner, entries) in wants {
                out.push(owner as f64);
                out.push(entries as f64);
            }
        }
        out
    }

    /// Rebuild a plan from its [`HaloPlan::encode`] frame (totals are
    /// recomputed). `None` on a malformed frame.
    pub fn decode(frame: &[f64]) -> Option<Self> {
        let mut it = frame.iter().copied();
        let nranks = it.next()? as usize;
        let mut recv = Vec::with_capacity(nranks);
        let mut messages = 0;
        let mut entries_total = 0;
        for _ in 0..nranks {
            let cnt = it.next()? as usize;
            let mut wants = Vec::with_capacity(cnt);
            for _ in 0..cnt {
                let owner = it.next()? as usize;
                let entries = it.next()? as usize;
                if owner >= nranks {
                    return None;
                }
                wants.push((owner, entries));
                messages += 1;
                entries_total += entries;
            }
            recv.push(wants);
        }
        if it.next().is_some() {
            return None;
        }
        Some(Self {
            recv,
            messages_per_exchange: messages,
            entries_per_exchange: entries_total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kryst_sparse::Coo;

    fn laplace1d(n: usize) -> Csr<f64> {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i > 0 {
                c.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                c.push(i, i + 1, -1.0);
            }
        }
        c.to_csr()
    }

    #[test]
    fn tridiagonal_has_chain_topology() {
        let a = laplace1d(100);
        let layout = Layout::even(100, 4);
        let plan = HaloPlan::build(&a, &layout);
        // Interior ranks have 2 neighbors, end ranks 1 → 2+2·... messages.
        assert_eq!(plan.messages_per_exchange, 2 + 2 + 1 + 1);
        // One ghost entry per neighbor for a tridiagonal stencil.
        assert_eq!(plan.entries_per_exchange, 6);
        assert_eq!(plan.max_neighbors(), 2);
        assert_eq!(plan.bytes_per_exchange(4, 8), 6 * 4 * 8);
    }

    #[test]
    fn single_rank_has_no_communication() {
        let a = laplace1d(50);
        let plan = HaloPlan::build(&a, &Layout::even(50, 1));
        assert_eq!(plan.messages_per_exchange, 0);
        assert_eq!(plan.entries_per_exchange, 0);
    }

    #[test]
    fn encode_decode_round_trips() {
        let a = laplace1d(100);
        let plan = HaloPlan::build(&a, &Layout::even(100, 4));
        let decoded = HaloPlan::decode(&plan.encode()).expect("well-formed frame");
        assert_eq!(decoded.recv, plan.recv);
        assert_eq!(decoded.messages_per_exchange, plan.messages_per_exchange);
        assert_eq!(decoded.entries_per_exchange, plan.entries_per_exchange);
        assert!(HaloPlan::decode(&plan.encode()[1..]).is_none());
    }

    #[test]
    fn execute_moves_exactly_the_planned_traffic() {
        let a = laplace1d(64);
        let p = 4;
        let plan = HaloPlan::build(&a, &Layout::even(64, p));
        let cols = 3;
        let run = crate::spmd::run_spmd(crate::TransportKind::Channel, p, |t| {
            let got = plan.execute(t, cols, 1.0)?;
            Ok(vec![got as f64])
        })
        .expect("halo exchange runs");
        let total_entries: f64 = run.results.iter().map(|r| r[0]).sum();
        assert_eq!(total_entries, (plan.entries_per_exchange * cols) as f64);
        assert_eq!(run.messages, plan.messages_per_exchange as u64);
        let bytes: u64 = run.wire.iter().map(|w| w.bytes_sent).sum();
        assert_eq!(bytes, plan.bytes_per_exchange(cols, 8) as u64);
    }

    #[test]
    fn more_ranks_more_messages() {
        let a = laplace1d(64);
        let m4 = HaloPlan::build(&a, &Layout::even(64, 4)).messages_per_exchange;
        let m16 = HaloPlan::build(&a, &Layout::even(64, 16)).messages_per_exchange;
        assert!(m16 > m4);
    }
}
