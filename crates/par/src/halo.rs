//! Halo-exchange plans derived from matrix sparsity.
//!
//! For a block-row distributed sparse matrix, each SpMV/SpMM requires every
//! rank to receive the off-rank vector entries its rows reference. This
//! module computes the exact communication pattern — which pairs of ranks
//! exchange, and how many entries — so the instrumented operator can report
//! exact message/byte counts to the cost model.

#![allow(clippy::needless_range_loop)] // index loops mirror the BLAS/LAPACK reference forms

use crate::Layout;
use kryst_scalar::Scalar;
use kryst_sparse::Csr;

/// Communication plan for one distributed operator.
#[derive(Debug, Clone)]
pub struct HaloPlan {
    /// Per rank: sorted list of (neighbor rank, number of entries received).
    pub recv: Vec<Vec<(usize, usize)>>,
    /// Total messages per exchange (sum of neighbor counts over ranks).
    pub messages_per_exchange: usize,
    /// Total scalar entries moved per exchange (one vector).
    pub entries_per_exchange: usize,
}

impl HaloPlan {
    /// Build the plan for `a` distributed by `layout`.
    pub fn build<S: Scalar>(a: &Csr<S>, layout: &Layout) -> Self {
        let nranks = layout.nranks();
        let mut recv: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nranks];
        let mut messages = 0usize;
        let mut entries = 0usize;
        for r in 0..nranks {
            // Collect off-rank columns referenced by rank r's rows.
            let mut ghost: Vec<usize> = Vec::new();
            let range = layout.range(r);
            for i in range.clone() {
                for &j in a.row_indices(i) {
                    if !range.contains(&j) {
                        ghost.push(j);
                    }
                }
            }
            ghost.sort_unstable();
            ghost.dedup();
            // Group by owner.
            let mut k = 0;
            while k < ghost.len() {
                let owner = layout.rank_of(ghost[k]);
                let mut cnt = 0;
                while k < ghost.len() && layout.rank_of(ghost[k]) == owner {
                    cnt += 1;
                    k += 1;
                }
                recv[r].push((owner, cnt));
                messages += 1;
                entries += cnt;
            }
        }
        Self {
            recv,
            messages_per_exchange: messages,
            entries_per_exchange: entries,
        }
    }

    /// Bytes moved by one exchange of a `p`-wide multivector with
    /// `bytes_per_scalar`-byte entries.
    pub fn bytes_per_exchange(&self, p: usize, bytes_per_scalar: usize) -> usize {
        self.entries_per_exchange * p * bytes_per_scalar
    }

    /// Maximum number of neighbors over all ranks (network contention proxy).
    pub fn max_neighbors(&self) -> usize {
        self.recv.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kryst_sparse::Coo;

    fn laplace1d(n: usize) -> Csr<f64> {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i > 0 {
                c.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                c.push(i, i + 1, -1.0);
            }
        }
        c.to_csr()
    }

    #[test]
    fn tridiagonal_has_chain_topology() {
        let a = laplace1d(100);
        let layout = Layout::even(100, 4);
        let plan = HaloPlan::build(&a, &layout);
        // Interior ranks have 2 neighbors, end ranks 1 → 2+2·... messages.
        assert_eq!(plan.messages_per_exchange, 2 + 2 + 1 + 1);
        // One ghost entry per neighbor for a tridiagonal stencil.
        assert_eq!(plan.entries_per_exchange, 6);
        assert_eq!(plan.max_neighbors(), 2);
        assert_eq!(plan.bytes_per_exchange(4, 8), 6 * 4 * 8);
    }

    #[test]
    fn single_rank_has_no_communication() {
        let a = laplace1d(50);
        let plan = HaloPlan::build(&a, &Layout::even(50, 1));
        assert_eq!(plan.messages_per_exchange, 0);
        assert_eq!(plan.entries_per_exchange, 0);
    }

    #[test]
    fn more_ranks_more_messages() {
        let a = laplace1d(64);
        let m4 = HaloPlan::build(&a, &Layout::even(64, 4)).messages_per_exchange;
        let m16 = HaloPlan::build(&a, &Layout::even(64, 16)).messages_per_exchange;
        assert!(m16 > m4);
    }
}
